//! The user-level message queue.
//!
//! The T3D provides direct network access: a four-word message is
//! composed and a PAL call injects it as a cache-line-sized transfer
//! (813 ns ≈ 122 cycles to send). The expensive half is reception: the
//! target processor takes an *interrupt* (measured 25 µs), after which
//! the message is placed in a user-level queue, optionally dispatching a
//! user handler (another 33 µs). Section 7.3's conclusion — build
//! message queues out of shared-memory primitives instead — follows
//! directly from these costs, which this module reproduces.

use crate::config::ShellConfig;
use std::collections::VecDeque;

/// What happens on message arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReceiveMode {
    /// The interrupt deposits the message in the user-level queue and
    /// returns control to the interrupted thread.
    #[default]
    Queue,
    /// The interrupt additionally switches to a user message handler.
    Handler,
}

/// A four-word T3D message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Sender PE.
    pub from: u32,
    /// Payload: four 64-bit words.
    pub words: [u64; 4],
    /// Virtual time at which the message reached the receiver's shell.
    pub arrival: u64,
}

/// The receive side of one node's message queue.
///
/// # Example
///
/// ```
/// use t3d_shell::{Message, MsgQueue, ReceiveMode, ShellConfig};
///
/// let cfg = ShellConfig::t3d();
/// let mut q = MsgQueue::new(&cfg, ReceiveMode::Queue);
/// q.deliver(Message { from: 1, words: [1, 2, 3, 4], arrival: 500 });
/// let (msg, cost) = q.receive(1_000).unwrap();
/// assert_eq!(msg.words[0], 1);
/// assert_eq!(cost, cfg.msg_interrupt_cy, "the 25 us interrupt dominates");
/// ```
#[derive(Debug, Clone)]
pub struct MsgQueue {
    queue: VecDeque<Message>,
    mode: ReceiveMode,
    interrupt_cy: u64,
    dispatch_cy: u64,
}

impl MsgQueue {
    /// Creates an empty queue with the given arrival behaviour.
    pub fn new(cfg: &ShellConfig, mode: ReceiveMode) -> Self {
        MsgQueue {
            queue: VecDeque::new(),
            mode,
            interrupt_cy: cfg.msg_interrupt_cy,
            dispatch_cy: cfg.msg_dispatch_cy,
        }
    }

    /// The configured arrival behaviour.
    pub fn mode(&self) -> ReceiveMode {
        self.mode
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The network delivers a message to this node (machine-layer hook).
    pub fn deliver(&mut self, msg: Message) {
        self.queue.push_back(msg);
    }

    /// Receives the oldest message at virtual time `now`, if one has
    /// arrived: returns the message and the processor cost (wait until
    /// arrival if the queue is empty-but-inbound is not modeled — the
    /// caller polls), charging the interrupt and, in handler mode, the
    /// dispatch switch.
    pub fn receive(&mut self, now: u64) -> Option<(Message, u64)> {
        let head_arrival = self.queue.front()?.arrival;
        if head_arrival > now {
            return None;
        }
        let msg = self.queue.pop_front().expect("head exists");
        let cost = match self.mode {
            ReceiveMode::Queue => self.interrupt_cy,
            ReceiveMode::Handler => self.interrupt_cy + self.dispatch_cy,
        };
        Some((msg, cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(arrival: u64) -> Message {
        Message {
            from: 0,
            words: [9, 8, 7, 6],
            arrival,
        }
    }

    #[test]
    fn receive_waits_for_arrival() {
        let mut q = MsgQueue::new(&ShellConfig::t3d(), ReceiveMode::Queue);
        q.deliver(msg(100));
        assert!(q.receive(50).is_none(), "not arrived yet");
        let (m, cost) = q.receive(100).unwrap();
        assert_eq!(m.words, [9, 8, 7, 6]);
        assert_eq!(cost, 3750);
    }

    #[test]
    fn handler_mode_adds_dispatch() {
        let mut q = MsgQueue::new(&ShellConfig::t3d(), ReceiveMode::Handler);
        q.deliver(msg(0));
        let (_, cost) = q.receive(0).unwrap();
        assert_eq!(cost, 3750 + 4950, "25 us + 33 us");
    }

    #[test]
    fn fifo_order() {
        let mut q = MsgQueue::new(&ShellConfig::t3d(), ReceiveMode::Queue);
        for i in 0..3u64 {
            q.deliver(Message {
                from: i as u32,
                words: [i; 4],
                arrival: 0,
            });
        }
        for i in 0..3u64 {
            let (m, _) = q.receive(0).unwrap();
            assert_eq!(m.words[0], i);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn receive_cost_dwarfs_send_cost() {
        // The Section 7.3 asymmetry that motivates shared-memory queues.
        let cfg = ShellConfig::t3d();
        assert!(cfg.msg_interrupt_cy > 30 * cfg.msg_send_cy);
    }
}
