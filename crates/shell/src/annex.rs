//! The DTB Annex: external segment registers extending the 21064's
//! physical address space.
//!
//! The 21064 can only generate 32-bit physical addresses — far too few
//! bits to name every byte on a 2048-node machine. The T3D therefore
//! performs a second level of translation: five bits of the physical
//! address index one of 32 *Annex* registers, each holding a target
//! processor number and a *function code* that selects the flavour of
//! remote access (cached, uncached, atomic swap, fetch&increment).
//! Annex register 0 always refers to the local processor. Registers are
//! updated from user code with the load-locked/store-conditional
//! sequence at a measured cost of 23 cycles (Section 3.2).
//!
//! Because the annex index sits in the *high* bits of the physical
//! address, two annex entries naming the same processor create physical
//! *synonyms* — distinct physical addresses for one memory location.
//! The cache tolerates them (direct-mapped, index from low bits); the
//! write buffer does not (see `t3d-memsys::wbuf`).

use crate::config::ShellConfig;

/// Flavour of remote access selected by an annex entry's function code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FuncCode {
    /// Uncached remote read / ordinary remote write.
    #[default]
    Uncached,
    /// Cached remote read: fills a local L1 line (incoherently).
    Cached,
    /// Atomic swap with the shell swap register.
    Swap,
    /// Fetch&increment on the target's F&I registers.
    FetchInc,
}

/// One annex register: target PE plus function code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnnexEntry {
    /// Target processing element.
    pub pe: u32,
    /// Access flavour.
    pub func: FuncCode,
}

/// The 32-entry DTB Annex of one node.
///
/// # Example
///
/// ```
/// use t3d_shell::{Annex, AnnexEntry, FuncCode, ShellConfig};
///
/// let mut annex = Annex::new(&ShellConfig::t3d(), 0);
/// let cost = annex.update(1, AnnexEntry { pe: 7, func: FuncCode::Uncached });
/// assert_eq!(cost, 23);
/// assert_eq!(annex.entry(1).pe, 7);
/// assert_eq!(annex.entry(0).pe, 0, "entry 0 is pinned to the local PE");
/// ```
#[derive(Debug, Clone)]
pub struct Annex {
    entries: Vec<AnnexEntry>,
    update_cy: u64,
    updates: u64,
}

impl Annex {
    /// Creates an annex whose entry 0 names `local_pe`.
    pub fn new(cfg: &ShellConfig, local_pe: u32) -> Self {
        let mut entries = vec![AnnexEntry::default(); cfg.annex_entries];
        entries[0] = AnnexEntry {
            pe: local_pe,
            func: FuncCode::Uncached,
        };
        Annex {
            entries,
            update_cy: cfg.annex_update_cy,
            updates: 0,
        }
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the annex has no registers (never true for a real shell).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reads a register.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn entry(&self, idx: usize) -> AnnexEntry {
        self.entries[idx]
    }

    /// Updates a register via the store-conditional sequence, returning
    /// the 23-cycle cost.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is 0 (pinned to the local PE) or out of range.
    pub fn update(&mut self, idx: usize, entry: AnnexEntry) -> u64 {
        assert!(
            idx != 0,
            "annex entry 0 always refers to the local processor"
        );
        assert!(idx < self.entries.len(), "annex index {idx} out of range");
        self.entries[idx] = entry;
        self.updates += 1;
        self.update_cy
    }

    /// Total updates performed (instrumentation: the paper argues the
    /// 23-cycle update is cheap enough that one register suffices).
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Returns the indices (excluding 0) currently naming `pe` — i.e. the
    /// synonym set for that processor.
    pub fn synonyms_of(&self, pe: u32) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, e)| e.pe == pe)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Packs an annex index into the high bits of a physical address whose
/// local offset occupies `offset_bits` bits.
pub fn pa_with_annex(offset: u64, annex_idx: usize, offset_bits: u32) -> u64 {
    debug_assert!(offset < (1 << offset_bits), "offset overflows the PA field");
    offset | ((annex_idx as u64) << offset_bits)
}

/// Extracts `(annex_idx, offset)` from a physical address.
pub fn split_pa(pa: u64, offset_bits: u32) -> (usize, u64) {
    ((pa >> offset_bits) as usize, pa & ((1 << offset_bits) - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn annex() -> Annex {
        Annex::new(&ShellConfig::t3d(), 3)
    }

    #[test]
    fn entry_zero_is_local() {
        let a = annex();
        assert_eq!(a.entry(0).pe, 3);
    }

    #[test]
    #[should_panic(expected = "entry 0")]
    fn updating_entry_zero_panics() {
        annex().update(0, AnnexEntry::default());
    }

    #[test]
    fn update_costs_23_and_counts() {
        let mut a = annex();
        assert_eq!(
            a.update(
                5,
                AnnexEntry {
                    pe: 9,
                    func: FuncCode::Cached
                }
            ),
            23
        );
        assert_eq!(a.updates(), 1);
        assert_eq!(
            a.entry(5),
            AnnexEntry {
                pe: 9,
                func: FuncCode::Cached
            }
        );
    }

    #[test]
    fn synonyms_detected() {
        let mut a = annex();
        a.update(
            1,
            AnnexEntry {
                pe: 7,
                func: FuncCode::Uncached,
            },
        );
        a.update(
            2,
            AnnexEntry {
                pe: 7,
                func: FuncCode::Cached,
            },
        );
        a.update(
            3,
            AnnexEntry {
                pe: 8,
                func: FuncCode::Uncached,
            },
        );
        assert_eq!(a.synonyms_of(7), vec![1, 2]);
        assert_eq!(a.synonyms_of(8), vec![3]);
        assert!(a.synonyms_of(42).is_empty());
    }

    #[test]
    fn pa_pack_unpack_roundtrip() {
        let pa = pa_with_annex(0x123456, 17, 27);
        assert_eq!(split_pa(pa, 27), (17, 0x123456));
    }

    #[test]
    fn annex_index_lands_in_high_bits() {
        // Two synonyms differ only above bit 27 — the property the
        // direct-mapped cache relies on and the write buffer trips over.
        let a = pa_with_annex(0x100, 1, 27);
        let b = pa_with_annex(0x100, 2, 27);
        assert_eq!(a & ((1 << 27) - 1), b & ((1 << 27) - 1));
        assert_ne!(a, b);
    }
}
