//! The global-OR "fuzzy" hardware barrier.
//!
//! The T3D provides dedicated global-AND/OR wires. The barrier is *fuzzy*
//! (Section 7.5): a `start-barrier` instruction announces arrival, the
//! processor may keep doing useful work, and an `end-barrier` completes
//! the synchronization and resets the global-OR bit for reuse. The paper
//! emphasizes that this composes well with remote memory access — unlike
//! the native barriers of other platforms of the era.
//!
//! [`BarrierUnit`] tracks one barrier episode across `n` participants in
//! virtual time; the machine layer owns one per machine.

use crate::config::ShellConfig;

/// One global barrier wire shared by all nodes.
///
/// # Example
///
/// ```
/// use t3d_shell::{BarrierUnit, ShellConfig};
///
/// let mut b = BarrierUnit::new(&ShellConfig::t3d(), 2);
/// b.start(0, 100);
/// b.start(1, 250);
/// // Both arrived by 250; the wire settles 50 cycles later.
/// assert_eq!(b.completion_time().unwrap(), 300);
/// ```
#[derive(Debug, Clone)]
pub struct BarrierUnit {
    arrivals: Vec<Option<u64>>,
    barrier_cy: u64,
    start_cy: u64,
    end_cy: u64,
    episodes: u64,
}

impl BarrierUnit {
    /// Creates a barrier for `nodes` participants.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(cfg: &ShellConfig, nodes: usize) -> Self {
        assert!(nodes > 0, "barrier needs at least one participant");
        BarrierUnit {
            arrivals: vec![None; nodes],
            barrier_cy: cfg.barrier_cy,
            start_cy: cfg.barrier_start_cy,
            end_cy: cfg.barrier_end_cy,
            episodes: 0,
        }
    }

    /// Cost of the start-barrier instruction.
    pub fn start_cost(&self) -> u64 {
        self.start_cy
    }

    /// Cost of the end-barrier instruction.
    pub fn end_cost(&self) -> u64 {
        self.end_cy
    }

    /// Node `pe` executes start-barrier at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range or already arrived this episode.
    pub fn start(&mut self, pe: usize, now: u64) {
        assert!(pe < self.arrivals.len(), "PE {pe} out of range");
        assert!(
            self.arrivals[pe].is_none(),
            "PE {pe} already executed start-barrier this episode"
        );
        self.arrivals[pe] = Some(now);
    }

    /// Whether every participant has arrived.
    pub fn all_arrived(&self) -> bool {
        self.arrivals.iter().all(Option::is_some)
    }

    /// Virtual time at which the barrier wire settles: the last arrival
    /// plus the wire latency. `None` until everyone has arrived.
    pub fn completion_time(&self) -> Option<u64> {
        if !self.all_arrived() {
            return None;
        }
        let last = self
            .arrivals
            .iter()
            .map(|a| a.expect("all arrived"))
            .max()?;
        Some(last + self.barrier_cy)
    }

    /// Resets the episode (the end-barrier of the last participant).
    ///
    /// # Panics
    ///
    /// Panics if not all participants arrived.
    pub fn reset(&mut self) {
        assert!(self.all_arrived(), "cannot reset an incomplete barrier");
        for a in &mut self.arrivals {
            *a = None;
        }
        self.episodes += 1;
    }

    /// Completed barrier episodes.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(n: usize) -> BarrierUnit {
        BarrierUnit::new(&ShellConfig::t3d(), n)
    }

    #[test]
    fn completion_is_last_arrival_plus_wire() {
        let mut b = unit(4);
        for (pe, t) in [(0, 10), (1, 500), (2, 20), (3, 30)] {
            b.start(pe, t);
        }
        assert_eq!(b.completion_time(), Some(550));
    }

    #[test]
    fn incomplete_barrier_has_no_completion() {
        let mut b = unit(2);
        b.start(0, 10);
        assert_eq!(b.completion_time(), None);
        assert!(!b.all_arrived());
    }

    #[test]
    fn reset_enables_reuse() {
        let mut b = unit(2);
        b.start(0, 1);
        b.start(1, 2);
        b.reset();
        assert_eq!(b.episodes(), 1);
        b.start(0, 100);
        b.start(1, 200);
        assert_eq!(b.completion_time(), Some(250));
    }

    #[test]
    #[should_panic(expected = "already executed start-barrier")]
    fn double_start_panics() {
        let mut b = unit(2);
        b.start(0, 1);
        b.start(0, 2);
    }

    #[test]
    #[should_panic(expected = "incomplete barrier")]
    fn premature_reset_panics() {
        let mut b = unit(2);
        b.start(0, 1);
        b.reset();
    }
}
