//! The atomic swap between a shell register and memory.
//!
//! The shell supports an atomic exchange of a local shell register with
//! any (possibly remote) memory word, selected through an annex entry
//! whose function code is `Swap`. The paper lists it among the shell's
//! synchronization provisions (Section 1.2); the Split-C runtime uses it
//! for locks and for the histogram example's atomic update fallback.

/// The swap operand register of one node.
///
/// The machine layer performs the actual memory exchange; this type holds
/// the register value and provides the exchange bookkeeping.
///
/// # Example
///
/// ```
/// use t3d_shell::SwapUnit;
///
/// let mut sw = SwapUnit::new();
/// sw.load(5);
/// // Exchange with a memory word holding 9.
/// let to_mem = sw.exchange(9);
/// assert_eq!(to_mem, 5, "register value goes to memory");
/// assert_eq!(sw.value(), 9, "memory value lands in the register");
/// ```
#[derive(Debug, Clone, Default)]
pub struct SwapUnit {
    reg: u64,
    swaps: u64,
}

impl SwapUnit {
    /// Creates a unit with a zeroed register.
    pub fn new() -> Self {
        SwapUnit::default()
    }

    /// Loads the operand register.
    pub fn load(&mut self, value: u64) {
        self.reg = value;
    }

    /// Reads the operand register.
    pub fn value(&self) -> u64 {
        self.reg
    }

    /// Performs the register half of an atomic exchange: the register
    /// takes `mem_value` and the previous register value is returned (to
    /// be written to memory by the caller).
    pub fn exchange(&mut self, mem_value: u64) -> u64 {
        self.swaps += 1;
        std::mem::replace(&mut self.reg, mem_value)
    }

    /// Number of exchanges performed.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_is_symmetric() {
        let mut sw = SwapUnit::new();
        sw.load(1);
        assert_eq!(sw.exchange(2), 1);
        assert_eq!(sw.exchange(3), 2);
        assert_eq!(sw.value(), 3);
        assert_eq!(sw.swaps(), 2);
    }

    #[test]
    fn lock_acquisition_pattern() {
        // Test-and-set via swap: write 1, acquire if the old value was 0.
        let mut sw = SwapUnit::new();
        let lock_word = 0u64; // lock free in memory
        sw.load(1);
        let to_mem = sw.exchange(lock_word);
        let lock_word = to_mem; // caller stores the register value back
        assert_eq!(sw.value(), 0, "we observed the lock free: acquired");
        assert_eq!(lock_word, 1, "the lock is now held in memory");
    }
}
