//! The CRAY-T3D "shell": the support circuitry Cray wrapped around the
//! DEC Alpha 21064 to turn it into a node of a globally addressed MPP.
//!
//! The paper's central observation is that the T3D shell is *elaborate*:
//! it provides many distinct mechanisms that can implement the same
//! language primitive, each with its own semantics and cost. This crate
//! models each mechanism as an explicit state machine:
//!
//! * [`annex`] — the DTB Annex: 32 user-writable segment registers that
//!   extend the 21064's small physical address space with a processor
//!   number and function code (Section 3).
//! * [`prefetch`] — the binding prefetch queue driven by the Alpha
//!   `fetch` hint (Section 5.2).
//! * [`status`] — the outstanding-remote-write counter and status bit
//!   polled by blocking writes (Section 4.3).
//! * [`blt`] — the system-level block transfer engine with its
//!   180 µs invocation overhead (Section 6.2).
//! * [`fetchinc`] — the per-node fetch&increment registers (Section 7.4).
//! * [`swap`] — the atomic swap between a shell register and memory.
//! * [`msgq`] — the user-level message queue whose receive side requires
//!   a 25 µs interrupt (Section 7.3).
//! * [`barrier`] — the global-OR "fuzzy" barrier with its split
//!   start-barrier / end-barrier (Section 7.5).
//!
//! The shell pieces here are per-node state plus cost formulas; the
//! `t3d-machine` crate wires them across nodes and to the memory system.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annex;
pub mod barrier;
pub mod blt;
pub mod config;
pub mod fetchinc;
pub mod msgq;
pub mod prefetch;
pub mod status;
pub mod swap;

pub use annex::{Annex, AnnexEntry, FuncCode};
pub use barrier::BarrierUnit;
pub use blt::BltUnit;
pub use config::ShellConfig;
pub use fetchinc::FetchIncRegs;
pub use msgq::{Message, MsgQueue, ReceiveMode};
pub use prefetch::{PopError, PrefetchUnit};
pub use status::AckTracker;
pub use swap::SwapUnit;
