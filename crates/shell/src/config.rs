//! Shell cost parameters, calibrated from the paper's measurements.
//!
//! These are the *primitive* costs of the shell mechanisms — the values
//! the paper either measures directly at the bottom of its gray-box
//! decomposition (annex update, prefetch issue, queue pop, BLT start-up,
//! message send/receive) or that we solved for so the composite
//! measurements land on the published numbers (the fixed shell round-trip
//! components). Composite costs — a 128-cycle Split-C read, the 31-cycle
//! pipelined prefetch, the 16 KB BLT crossover — are *not* in this table;
//! they emerge.

/// Calibrated shell costs, all in 150 MHz cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShellConfig {
    /// Number of DTB Annex registers (32).
    pub annex_entries: usize,
    /// Cost of updating an Annex register with the store-conditional
    /// sequence: "a measured cost typical of off-chip access, 23 cycles".
    pub annex_update_cy: u64,
    /// Fixed processor+shell component of an uncached remote read,
    /// excluding network hops and the remote DRAM access. Solved so that
    /// an adjacent-node page-hit uncached read totals ~91 cycles (610 ns).
    pub remote_read_shell_cy: u64,
    /// Extra cycles a *cached* remote read pays to move a full 32-byte
    /// line (measured difference: 765 ns − 610 ns ≈ 23 cycles).
    pub cached_read_extra_cy: u64,
    /// Network+shell time from a remote write leaving the write buffer to
    /// its acknowledgement returning, excluding hop time and the remote
    /// DRAM access. Solved so a blocking adjacent-node write totals
    /// ~130 cycles (850 ns).
    pub write_ack_rtt_cy: u64,
    /// Cost of reading the outstanding-writes status bit once.
    pub status_poll_cy: u64,
    /// Fixed injection interval of a remote write-buffer entry (the
    /// per-entry part; see `remote_write_word_cy` for the payload part).
    pub remote_write_base_cy: u64,
    /// Per-64-bit-word injection cost of a remote write-buffer entry.
    /// `5 + 12·words` gives the measured 17-cycle single-word interval
    /// and the 90 MB/s merged-line bulk-store bandwidth.
    pub remote_write_word_cy: u64,
    /// Prefetch (`fetch` hint) issue cost: 4 cycles (Section 5.2).
    pub prefetch_issue_cy: u64,
    /// Network round trip of a prefetch after it departs the processor,
    /// excluding hop time and the remote DRAM access; with one hop and a
    /// page-hit DRAM access this lands on the published 80-cycle round
    /// trip.
    pub prefetch_net_cy: u64,
    /// Cost of popping the memory-mapped prefetch queue: an off-chip
    /// access, 23 cycles (Section 5.2).
    pub prefetch_pop_cy: u64,
    /// Prefetch queue depth (16).
    pub prefetch_depth: usize,
    /// Fetches pending departure are pushed out of the write buffer once
    /// this many accumulate (below it, a memory barrier is required
    /// before popping — Section 5.2).
    pub prefetch_depart_threshold: usize,
    /// BLT invocation overhead: 180 µs of operating-system work
    /// (Section 6.3).
    pub blt_startup_cy: u64,
    /// BLT streaming cost per byte for reads: 140 MB/s peak → ~1.07
    /// cycles per byte at 150 MHz.
    pub blt_read_cy_per_byte: f64,
    /// BLT streaming cost per byte for writes. The paper finds
    /// non-blocking stores strictly superior to the BLT for writes
    /// (Section 6.2), implying a lower write-side rate; we use 75 MB/s.
    pub blt_write_cy_per_byte: f64,
    /// Message send (PAL call): 813 ns = 122 cycles (Section 7.3).
    pub msg_send_cy: u64,
    /// Message receive interrupt: 25 µs = 3750 cycles (Section 7.3).
    pub msg_interrupt_cy: u64,
    /// Switch to a user message handler: +33 µs = 4950 cycles.
    pub msg_dispatch_cy: u64,
    /// Extra processor-side cost of a fetch&increment or atomic swap over
    /// a plain uncached remote read; "essentially the cost of a remote
    /// read, i.e., about 1 microsecond" once annex setup and checks are
    /// included.
    pub amo_extra_cy: u64,
    /// Hardware barrier completion latency past the last arrival.
    pub barrier_cy: u64,
    /// Cost of executing the start-barrier instruction.
    pub barrier_start_cy: u64,
    /// Cost of the end-barrier (resetting the global-OR bit).
    pub barrier_end_cy: u64,
}

impl ShellConfig {
    /// The calibrated CRAY-T3D shell.
    pub fn t3d() -> Self {
        ShellConfig {
            annex_entries: 32,
            annex_update_cy: 23,
            remote_read_shell_cy: 64,
            cached_read_extra_cy: 23,
            write_ack_rtt_cy: 75,
            status_poll_cy: 5,
            remote_write_base_cy: 5,
            remote_write_word_cy: 12,
            prefetch_issue_cy: 4,
            prefetch_net_cy: 53,
            prefetch_pop_cy: 23,
            prefetch_depth: 16,
            prefetch_depart_threshold: 4,
            blt_startup_cy: 27_000,
            blt_read_cy_per_byte: 150.0 / 140.0,
            blt_write_cy_per_byte: 2.0,
            msg_send_cy: 122,
            msg_interrupt_cy: 3_750,
            msg_dispatch_cy: 4_950,
            amo_extra_cy: 40,
            barrier_cy: 50,
            barrier_start_cy: 5,
            barrier_end_cy: 5,
        }
    }
}

impl Default for ShellConfig {
    fn default() -> Self {
        ShellConfig::t3d()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_primitive_costs() {
        let c = ShellConfig::t3d();
        assert_eq!(c.annex_update_cy, 23);
        assert_eq!(c.prefetch_issue_cy, 4);
        assert_eq!(c.prefetch_pop_cy, 23);
        assert_eq!(c.prefetch_depth, 16);
        assert_eq!(c.msg_send_cy, 122); // 813 ns
        assert_eq!(c.msg_interrupt_cy, 3750); // 25 us
        assert_eq!(c.msg_dispatch_cy, 4950); // 33 us
        assert_eq!(c.blt_startup_cy, 27_000); // 180 us
    }

    #[test]
    fn blt_read_rate_is_140_mb_per_s() {
        let c = ShellConfig::t3d();
        let bytes_per_s = 150.0e6 / c.blt_read_cy_per_byte;
        assert!((bytes_per_s / 1e6 - 140.0).abs() < 1.0);
    }

    #[test]
    fn remote_write_intervals_match_measurements() {
        let c = ShellConfig::t3d();
        // Single word: 17 cycles (115 ns, Figure 7).
        assert_eq!(c.remote_write_base_cy + c.remote_write_word_cy, 17);
        // Merged full line: 53 cycles for 32 bytes = ~90 MB/s (Figure 8).
        let line_cy = c.remote_write_base_cy + 4 * c.remote_write_word_cy;
        let mb_per_s = 32.0 * 150.0 / line_cy as f64;
        assert!(
            (85.0..95.0).contains(&mb_per_s),
            "bulk store rate {mb_per_s} MB/s"
        );
    }
}
