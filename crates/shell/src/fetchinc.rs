//! Per-node fetch&increment registers.
//!
//! Each T3D node's shell provides two fetch&increment registers that any
//! node can access remotely at "essentially the cost of a remote read,
//! i.e., about 1 microsecond" (Section 7.4). The paper uses them as the
//! N-to-1 slot allocator when constructing an Active-Message-equivalent
//! remote queue out of shared-memory primitives — the fix for the 25 µs
//! interrupt cost of the native message queue.

/// The two fetch&increment registers of one node.
///
/// # Example
///
/// ```
/// use t3d_shell::FetchIncRegs;
///
/// let mut fi = FetchIncRegs::new();
/// assert_eq!(fi.fetch_inc(0), 0);
/// assert_eq!(fi.fetch_inc(0), 1);
/// assert_eq!(fi.fetch_inc(1), 0, "registers are independent");
/// ```
#[derive(Debug, Clone, Default)]
pub struct FetchIncRegs {
    regs: [u64; 2],
}

impl FetchIncRegs {
    /// Creates both registers zeroed.
    pub fn new() -> Self {
        FetchIncRegs::default()
    }

    /// Atomically returns the current value and increments.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not 0 or 1.
    pub fn fetch_inc(&mut self, reg: usize) -> u64 {
        assert!(
            reg < 2,
            "the T3D has two fetch&increment registers per node"
        );
        let old = self.regs[reg];
        self.regs[reg] = old.wrapping_add(1);
        old
    }

    /// Reads a register without modifying it.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not 0 or 1.
    pub fn get(&self, reg: usize) -> u64 {
        assert!(
            reg < 2,
            "the T3D has two fetch&increment registers per node"
        );
        self.regs[reg]
    }

    /// Sets a register (privileged initialization).
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not 0 or 1.
    pub fn set(&mut self, reg: usize, value: u64) {
        assert!(
            reg < 2,
            "the T3D has two fetch&increment registers per node"
        );
        self.regs[reg] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_sequence() {
        let mut fi = FetchIncRegs::new();
        for i in 0..100 {
            assert_eq!(fi.fetch_inc(0), i);
        }
        assert_eq!(fi.get(0), 100);
    }

    #[test]
    fn set_rebases() {
        let mut fi = FetchIncRegs::new();
        fi.set(1, 40);
        assert_eq!(fi.fetch_inc(1), 40);
        assert_eq!(fi.get(1), 41);
    }

    #[test]
    fn wraps_at_u64_max() {
        let mut fi = FetchIncRegs::new();
        fi.set(0, u64::MAX);
        assert_eq!(fi.fetch_inc(0), u64::MAX);
        assert_eq!(fi.get(0), 0);
    }

    #[test]
    #[should_panic(expected = "two fetch&increment registers")]
    fn third_register_panics() {
        FetchIncRegs::new().fetch_inc(2);
    }
}
