//! The Block Transfer Engine (BLT).
//!
//! The shell's system-level DMA engine moves large blocks of contiguous
//! or strided data between local and remote memory. Its sustained rate is
//! the best on the machine — the paper measures a 140 MB/s read peak —
//! but it is reachable only through an operating-system invocation whose
//! overhead the paper measures at 180 µs (Section 6.3). That start-up
//! cost is what pushes the Split-C crossover to 16 KB for blocking bulk
//! reads and ~7,900 bytes for non-blocking gets.

use crate::config::ShellConfig;

/// Direction of a BLT transfer, from the initiating node's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BltDirection {
    /// Remote memory into local memory.
    Read,
    /// Local memory into remote memory.
    Write,
}

/// Timing summary of one BLT transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BltTiming {
    /// Cycles the *initiating processor* is stalled in the OS invocation.
    pub startup_cy: u64,
    /// Cycles of DMA streaming after start-up (overlappable with
    /// computation for the non-blocking `bulk_get`/`bulk_put` forms).
    pub stream_cy: u64,
}

impl BltTiming {
    /// Total cycles until the transfer completes.
    pub fn total_cy(&self) -> u64 {
        self.startup_cy + self.stream_cy
    }
}

/// The BLT of one node: cost model plus busy tracking.
///
/// # Example
///
/// ```
/// use t3d_shell::{BltUnit, ShellConfig};
/// use t3d_shell::blt::BltDirection;
///
/// let mut blt = BltUnit::new(&ShellConfig::t3d());
/// let t = blt.start(0, BltDirection::Read, 64 * 1024);
/// assert_eq!(t.startup_cy, 27_000, "180 us OS invocation");
/// // 64 KB at ~140 MB/s:
/// assert!(t.stream_cy > 60_000 && t.stream_cy < 80_000);
/// ```
#[derive(Debug, Clone)]
pub struct BltUnit {
    startup_cy: u64,
    read_cy_per_byte: f64,
    write_cy_per_byte: f64,
    busy_until: u64,
    transfers: u64,
}

impl BltUnit {
    /// Creates an idle BLT.
    pub fn new(cfg: &ShellConfig) -> Self {
        BltUnit {
            startup_cy: cfg.blt_startup_cy,
            read_cy_per_byte: cfg.blt_read_cy_per_byte,
            write_cy_per_byte: cfg.blt_write_cy_per_byte,
            busy_until: 0,
            transfers: 0,
        }
    }

    /// Starts a transfer of `bytes` at time `now`, returning its timing.
    /// If the engine is still busy with a previous transfer the start-up
    /// is serialized behind it.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn start(&mut self, now: u64, dir: BltDirection, bytes: u64) -> BltTiming {
        assert!(bytes > 0, "BLT transfer must move at least one byte");
        let wait = self.busy_until.saturating_sub(now);
        let per_byte = match dir {
            BltDirection::Read => self.read_cy_per_byte,
            BltDirection::Write => self.write_cy_per_byte,
        };
        let stream = (bytes as f64 * per_byte).ceil() as u64;
        let timing = BltTiming {
            startup_cy: wait + self.startup_cy,
            stream_cy: stream,
        };
        self.busy_until = now + timing.total_cy();
        self.transfers += 1;
        timing
    }

    /// When the engine next becomes idle.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Transfers initiated so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blt() -> BltUnit {
        BltUnit::new(&ShellConfig::t3d())
    }

    #[test]
    fn startup_dominates_small_transfers() {
        let mut b = blt();
        let t = b.start(0, BltDirection::Read, 1024);
        assert!(t.startup_cy > 20 * t.stream_cy, "1 KB is all overhead");
    }

    #[test]
    fn read_peak_bandwidth_is_140_mb_per_s() {
        let mut b = blt();
        let bytes = 8 * 1024 * 1024u64;
        let t = b.start(0, BltDirection::Read, bytes);
        let secs = t.total_cy() as f64 / 150.0e6;
        let mbps = bytes as f64 / secs / 1e6;
        assert!(
            (130.0..141.0).contains(&mbps),
            "asymptotic BLT read rate {mbps} MB/s"
        );
    }

    #[test]
    fn write_rate_is_below_store_rate() {
        // Non-blocking merged stores sustain ~90 MB/s; the BLT write side
        // must be slower for the paper's "stores always win" finding.
        let mut b = blt();
        let bytes = 8 * 1024 * 1024u64;
        let t = b.start(0, BltDirection::Write, bytes);
        let mbps = bytes as f64 / (t.total_cy() as f64 / 150.0e6) / 1e6;
        assert!(mbps < 90.0, "BLT write rate {mbps} MB/s must trail stores");
    }

    #[test]
    fn back_to_back_transfers_serialize() {
        let mut b = blt();
        let t1 = b.start(0, BltDirection::Read, 1024);
        let t2 = b.start(100, BltDirection::Read, 1024);
        assert!(
            t2.startup_cy > t1.startup_cy,
            "second start-up includes waiting for the first transfer"
        );
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn zero_byte_transfer_panics() {
        blt().start(0, BltDirection::Read, 0);
    }
}
