//! The outstanding-remote-write counter and status bit.
//!
//! Every remote write is acknowledged by the target's shell; a counter of
//! un-acknowledged writes backs a status bit in a local shell register.
//! Section 4.3 documents the trap: the bit only covers writes that have
//! *left the processor* — a write still in the write buffer is invisible
//! to it, so a blocking write must fence (memory barrier) before polling.
//! [`AckTracker`] models the counter in virtual time; the machine layer
//! enforces the fence-before-poll discipline.

use crate::config::ShellConfig;

/// Tracks acknowledgement arrival times for remote writes in flight.
///
/// # Example
///
/// ```
/// use t3d_shell::{AckTracker, ShellConfig};
///
/// let mut acks = AckTracker::new(&ShellConfig::t3d());
/// acks.expect_ack(100);
/// assert_eq!(acks.outstanding(50), 1);
/// assert_eq!(acks.outstanding(100), 0);
/// ```
#[derive(Debug, Clone)]
pub struct AckTracker {
    /// Arrival times of acknowledgements not yet known to have landed.
    times: Vec<u64>,
    poll_cy: u64,
}

impl AckTracker {
    /// Creates a tracker with no writes in flight.
    pub fn new(cfg: &ShellConfig) -> Self {
        AckTracker {
            times: Vec::new(),
            poll_cy: cfg.status_poll_cy,
        }
    }

    /// Registers a write whose acknowledgement arrives at `arrival_cy`.
    pub fn expect_ack(&mut self, arrival_cy: u64) {
        self.times.push(arrival_cy);
    }

    /// Number of writes still unacknowledged at `now`.
    pub fn outstanding(&self, now: u64) -> usize {
        self.times.iter().filter(|&&t| t > now).count()
    }

    /// Reads the status bit once: `(clear?, cost)`.
    pub fn poll(&mut self, now: u64) -> (bool, u64) {
        self.compact(now);
        (self.times.is_empty(), self.poll_cy)
    }

    /// Spins on the status bit until it clears; returns the total cost
    /// (wait plus one final poll).
    pub fn wait_clear(&mut self, now: u64) -> u64 {
        let last = self.times.iter().copied().max().unwrap_or(0);
        self.times.clear();
        last.saturating_sub(now) + self.poll_cy
    }

    /// Time at which the bit clears, given no further writes.
    pub fn clear_time(&self) -> Option<u64> {
        self.times.iter().copied().max()
    }

    /// Arrival times of every acknowledgement not yet observed, in
    /// registration order. The event engine turns these into
    /// `AckArrival` events; [`AckTracker::wait_clear`] at the latest of
    /// them costs exactly one final poll.
    pub fn pending_times(&self) -> &[u64] {
        &self.times
    }

    fn compact(&mut self, now: u64) {
        self.times.retain(|&t| t > now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> AckTracker {
        AckTracker::new(&ShellConfig::t3d())
    }

    #[test]
    fn poll_clear_when_idle() {
        let mut a = tracker();
        let (clear, cost) = a.poll(0);
        assert!(clear);
        assert_eq!(cost, 5);
    }

    #[test]
    fn poll_set_while_in_flight() {
        let mut a = tracker();
        a.expect_ack(100);
        let (clear, _) = a.poll(50);
        assert!(!clear);
        let (clear, _) = a.poll(101);
        assert!(clear);
    }

    #[test]
    fn wait_clear_charges_until_last_ack() {
        let mut a = tracker();
        a.expect_ack(100);
        a.expect_ack(300);
        let cost = a.wait_clear(50);
        assert_eq!(cost, 250 + 5);
        assert_eq!(a.outstanding(0), 0);
    }

    #[test]
    fn wait_clear_after_acks_landed_costs_one_poll() {
        let mut a = tracker();
        a.expect_ack(10);
        assert_eq!(a.wait_clear(100), 5);
    }

    #[test]
    fn outstanding_counts_future_acks_only() {
        let mut a = tracker();
        a.expect_ack(10);
        a.expect_ack(20);
        a.expect_ack(30);
        assert_eq!(a.outstanding(15), 2);
        assert_eq!(a.clear_time(), Some(30));
    }
}
