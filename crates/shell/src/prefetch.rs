//! The binding prefetch queue.
//!
//! The Alpha `fetch` instruction is a hint; the T3D shell interprets it
//! as a *binding* prefetch: the addressed remote word is fetched into a
//! 16-entry off-chip FIFO, which the processor pops with loads from a
//! memory-mapped address. Section 5.2 of the paper decomposes the cost:
//! issue 4 cycles, network round trip 80 cycles, pop 23 cycles — so a
//! single prefetch is *slower* than a blocking read, but a group of 16
//! pipelines the network and hides almost all remote latency (31 cycles
//! per element).
//!
//! A subtle hazard the paper documents: the fetch request is placed in
//! the *write buffer*, so until enough traffic pushes it out (we model
//! the paper's threshold of 4) or a memory barrier is issued, the
//! request has not left the processor and popping the queue is invalid.
//! [`PrefetchUnit::pop`] returns [`PopError::NotDeparted`] in that case,
//! which is exactly the bug a compiler writer must avoid.

use crate::config::ShellConfig;
use std::collections::VecDeque;

/// Why a pop could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopError {
    /// The queue has no outstanding prefetches.
    Empty,
    /// The oldest prefetch is still sitting in the write buffer: a
    /// memory barrier (or more traffic) is required before popping.
    NotDeparted,
}

impl std::fmt::Display for PopError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PopError::Empty => write!(f, "prefetch queue is empty"),
            PopError::NotDeparted => {
                write!(
                    f,
                    "prefetch has not left the processor (memory barrier required)"
                )
            }
        }
    }
}

impl std::error::Error for PopError {}

#[derive(Debug, Clone)]
struct Slot {
    /// Value bound by the prefetch (bound at issue in this simulator).
    data: u64,
    /// Remote latency after departure: network round trip + remote DRAM.
    latency_cy: u64,
    /// When the fetch left the processor, if it has.
    departed: Option<u64>,
}

/// The 16-entry binding prefetch FIFO of one node.
///
/// # Example
///
/// ```
/// use t3d_shell::{PrefetchUnit, ShellConfig};
///
/// let cfg = ShellConfig::t3d();
/// let mut pf = PrefetchUnit::new(&cfg);
/// let issue = pf.issue(0, 42, 80).unwrap();
/// assert_eq!(issue, cfg.prefetch_issue_cy);
/// // Fewer than 4 outstanding: must fence before popping.
/// assert!(pf.pop(10).is_err());
/// pf.note_memory_barrier(10);
/// let (value, cost) = pf.pop(10).unwrap();
/// assert_eq!(value, 42);
/// assert!(cost >= cfg.prefetch_pop_cy);
/// ```
#[derive(Debug, Clone)]
pub struct PrefetchUnit {
    slots: VecDeque<Slot>,
    depth: usize,
    depart_threshold: usize,
    issue_cy: u64,
    pop_cy: u64,
}

impl PrefetchUnit {
    /// Creates an empty prefetch unit.
    pub fn new(cfg: &ShellConfig) -> Self {
        PrefetchUnit {
            slots: VecDeque::with_capacity(cfg.prefetch_depth),
            depth: cfg.prefetch_depth,
            depart_threshold: cfg.prefetch_depart_threshold,
            issue_cy: cfg.prefetch_issue_cy,
            pop_cy: cfg.prefetch_pop_cy,
        }
    }

    /// Outstanding prefetches.
    pub fn outstanding(&self) -> usize {
        self.slots.len()
    }

    /// Queue capacity (16 on the T3D).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Issues a prefetch binding `data`, whose post-departure latency
    /// (network round trip + remote DRAM) is `latency_cy`. Returns the
    /// issue cost, or `None` if the queue is full (the runtime must
    /// drain before issuing more).
    pub fn issue(&mut self, now: u64, data: u64, latency_cy: u64) -> Option<u64> {
        if self.slots.len() == self.depth {
            return None;
        }
        self.slots.push_back(Slot {
            data,
            latency_cy,
            departed: None,
        });
        // Write-buffer pressure pushes pending fetches out once enough
        // accumulate.
        let undeparted = self.slots.iter().filter(|s| s.departed.is_none()).count();
        if undeparted >= self.depart_threshold {
            let t = now + self.issue_cy;
            for s in self.slots.iter_mut().filter(|s| s.departed.is_none()) {
                s.departed = Some(t);
            }
        }
        Some(self.issue_cy)
    }

    /// A memory barrier flushes any fetches still in the write buffer.
    pub fn note_memory_barrier(&mut self, now: u64) {
        for s in self.slots.iter_mut().filter(|s| s.departed.is_none()) {
            s.departed = Some(now);
        }
    }

    /// Arrival time of the oldest prefetch (departure + remote latency),
    /// without popping it. The event engine fast-forwards a waiting PE's
    /// clock to this time, after which [`PrefetchUnit::pop`] costs
    /// exactly the off-chip pop.
    ///
    /// # Errors
    ///
    /// The same conditions as [`PrefetchUnit::pop`]: [`PopError::Empty`]
    /// if nothing is outstanding, [`PopError::NotDeparted`] if the
    /// oldest fetch is still in the write buffer.
    pub fn head_arrival(&self) -> Result<u64, PopError> {
        let head = self.slots.front().ok_or(PopError::Empty)?;
        let departed = head.departed.ok_or(PopError::NotDeparted)?;
        Ok(departed + head.latency_cy)
    }

    /// Pops the oldest prefetch: returns its bound value and the cost in
    /// cycles (wait-for-arrival, if any, plus the 23-cycle off-chip pop).
    ///
    /// # Errors
    ///
    /// [`PopError::Empty`] if nothing is outstanding;
    /// [`PopError::NotDeparted`] if the oldest fetch is still in the
    /// write buffer — the hazard Section 5.2 warns about.
    pub fn pop(&mut self, now: u64) -> Result<(u64, u64), PopError> {
        let head = self.slots.front().ok_or(PopError::Empty)?;
        let departed = head.departed.ok_or(PopError::NotDeparted)?;
        let arrival = departed + head.latency_cy;
        let wait = arrival.saturating_sub(now);
        let slot = self.slots.pop_front().expect("head exists");
        Ok((slot.data, wait + self.pop_cy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> PrefetchUnit {
        PrefetchUnit::new(&ShellConfig::t3d())
    }

    #[test]
    fn pop_empty_errors() {
        let mut pf = unit();
        assert_eq!(pf.pop(0), Err(PopError::Empty));
    }

    #[test]
    fn pop_before_departure_errors() {
        let mut pf = unit();
        pf.issue(0, 1, 80);
        assert_eq!(pf.pop(100), Err(PopError::NotDeparted));
    }

    #[test]
    fn memory_barrier_enables_pop() {
        let mut pf = unit();
        pf.issue(0, 7, 80);
        pf.note_memory_barrier(4);
        let (v, cost) = pf.pop(4).unwrap();
        assert_eq!(v, 7);
        // Wait (80) + pop (23).
        assert_eq!(cost, 80 + 23);
    }

    #[test]
    fn four_outstanding_depart_automatically() {
        let mut pf = unit();
        let mut now = 0;
        for i in 0..4u64 {
            now += pf.issue(now, i, 80).unwrap();
        }
        let (v, _) = pf.pop(now).unwrap();
        assert_eq!(v, 0, "FIFO order");
    }

    #[test]
    fn queue_full_rejects() {
        let mut pf = unit();
        for i in 0..16u64 {
            assert!(pf.issue(0, i, 80).is_some());
        }
        assert!(pf.issue(0, 99, 80).is_none());
        assert_eq!(pf.outstanding(), 16);
    }

    #[test]
    fn pipelined_group_of_16_hides_latency() {
        // The Figure 6 effect: 16 prefetches then 16 pops cost ~31
        // cycles per element, against ~111 for a single prefetch.
        let cfg = ShellConfig::t3d();
        let mut pf = PrefetchUnit::new(&cfg);
        let mut now = 0u64;
        for i in 0..16u64 {
            now += pf.issue(now, i, 80).unwrap();
        }
        for _ in 0..16 {
            let (_, cost) = pf.pop(now).unwrap();
            now += cost;
        }
        let per_elem = now as f64 / 16.0;
        assert!(
            (28.0..36.0).contains(&per_elem),
            "pipelined prefetch cost {per_elem} cy/element"
        );

        // Single prefetch with mandatory barrier: ~111 cycles.
        let mut pf = PrefetchUnit::new(&cfg);
        let mut t = pf.issue(0, 0, 80).unwrap();
        t += 4; // memory barrier issue
        pf.note_memory_barrier(t);
        let (_, cost) = pf.pop(t).unwrap();
        t += cost;
        assert!((100..120).contains(&t), "single prefetch cost {t} cy");
    }

    #[test]
    fn later_fetches_depart_with_later_groups() {
        let mut pf = unit();
        for i in 0..4u64 {
            pf.issue(i, i, 80);
        }
        pf.issue(100, 4, 80); // fifth: undeparted again
        for _ in 0..4 {
            pf.pop(200).unwrap();
        }
        assert_eq!(pf.pop(200), Err(PopError::NotDeparted));
    }
}
