//! The job-stream simulation driver.
//!
//! Virtual time advances event-style — the next event is the earlier
//! of the next arrival and the next job completion, the same
//! skip-to-next-event discipline the machine core uses under
//! `T3D_EVENT`. At each event the driver retires completions, admits
//! arrivals, and dispatches from the FCFS queue onto torus partitions;
//! each dispatched job runs its kernel on a right-sized simulated
//! machine and the kernel's elapsed virtual cycles become the job's
//! service time on the job-stream clock.
//!
//! Kernel runs are memoised by `(kernel, pe_count, size, seed)` in a
//! [`KernelCache`]: a kernel's timing depends only on those four (the
//! job's machine is built from its PE count alone — partition *shape*
//! does not change kernel timing, a documented modelling
//! simplification), so a load sweep that replays the same job bodies
//! under rescaled arrival times pays for each distinct kernel run once.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::alloc::{AllocStats, PartitionAllocator};
use crate::kernels::{ExecEnv, KernelRun};
use crate::metrics::{fnv1a, FleetMetrics, FNV_OFFSET};
use crate::trace::Trace;
use t3d_torus::subcube::Dims;
use t3d_torus::SubCube;

/// Scheduler configuration for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimParams {
    /// Machine shape (power-of-two extents).
    pub machine: Dims,
    /// When the queue head does not fit, allow later jobs that do fit
    /// to start (aggressive backfill, no reservations). Off = strict
    /// FCFS.
    pub backfill: bool,
    /// Phase driver and time-advance engine the kernels run under.
    pub env: ExecEnv,
}

/// What happened to one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobOutcome {
    /// The job's index in the trace.
    pub job_id: u32,
    /// When it entered the queue.
    pub arrival_cy: u64,
    /// When it was dispatched onto its partition.
    pub start_cy: u64,
    /// When it completed.
    pub finish_cy: u64,
    /// The partition it ran in.
    pub block: SubCube,
    /// Kernel result fingerprint (determinism evidence).
    pub result_fnv: u64,
}

impl JobOutcome {
    /// Queue wait: dispatch minus arrival.
    pub fn wait_cy(&self) -> u64 {
        self.start_cy - self.arrival_cy
    }

    /// Service time: completion minus dispatch.
    pub fn run_cy(&self) -> u64 {
        self.finish_cy - self.start_cy
    }

    /// Turnaround: completion minus arrival.
    pub fn turnaround_cy(&self) -> u64 {
        self.finish_cy - self.arrival_cy
    }
}

/// Memoised kernel runs, keyed by everything a kernel's timing and
/// result depend on.
#[derive(Debug, Default)]
pub struct KernelCache {
    runs: BTreeMap<(String, u32, u64, u64), KernelRun>,
    hits: u64,
    misses: u64,
}

impl KernelCache {
    /// An empty cache.
    pub fn new() -> KernelCache {
        KernelCache::default()
    }

    /// Runs `job`'s kernel under `env` on `pes` PEs, or returns the
    /// memoised result of an identical earlier run.
    pub fn run(&mut self, env: ExecEnv, job: &crate::trace::Job, pes: u32) -> KernelRun {
        let key = (job.kernel.name(), pes, job.size, job.seed);
        if let Some(r) = self.runs.get(&key) {
            self.hits += 1;
            return *r;
        }
        self.misses += 1;
        let r = job.kernel.run(env, pes, job.size, job.seed);
        self.runs.insert(key, r);
        r
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (actual kernel executions) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// The result of scheduling one trace.
#[derive(Debug, Clone)]
pub struct SchedRun {
    /// Per-job outcomes, in job-id order.
    pub outcomes: Vec<JobOutcome>,
    /// Fleet metrics over the run.
    pub metrics: FleetMetrics,
    /// Allocator counters.
    pub alloc_stats: AllocStats,
    /// Virtual cycle of the last completion.
    pub makespan_cy: u64,
    /// FNV-1a fingerprint of the whole job ledger — every field of
    /// every outcome, chained in job-id order. Two runs of the same
    /// trace agree on this iff they scheduled identically **and**
    /// every kernel computed identical results.
    pub ledger_fnv: u64,
}

impl SchedRun {
    /// Machine utilization: busy PE-cycles over `machine_pes ×
    /// makespan`.
    pub fn utilization(&self, machine_pes: u64) -> f64 {
        self.metrics.utilization(machine_pes, self.makespan_cy)
    }
}

/// Schedules `trace` on the machine described by `params`, running
/// every kernel through `cache`.
///
/// # Panics
///
/// Panics if a job asks for fewer than 2 PEs or more than the machine
/// holds (validate traces before running them), or if a kernel
/// self-check fails.
pub fn run_trace(trace: &Trace, params: &SimParams, cache: &mut KernelCache) -> SchedRun {
    let mut alloc = PartitionAllocator::new(params.machine);
    let total_pes = alloc.total_pes();
    for (i, j) in trace.jobs.iter().enumerate() {
        let want = u64::from(j.pe_count.max(1)).next_power_of_two();
        assert!(
            j.pe_count >= 2 && want <= total_pes,
            "job {i} asks for {} PEs on a {}-PE machine",
            j.pe_count,
            total_pes
        );
    }

    let n = trace.jobs.len();
    let mut outcomes: Vec<Option<JobOutcome>> = vec![None; n];
    let mut metrics = FleetMetrics::default();
    // Waiting job ids, FCFS.
    let mut queue: VecDeque<usize> = VecDeque::new();
    // Running jobs: ordered by (finish, job id) so same-cycle
    // completions retire deterministically.
    let mut running: BTreeSet<(u64, usize)> = BTreeSet::new();
    let mut placements: BTreeMap<usize, (SubCube, u64, u64)> = BTreeMap::new(); // id -> (block, start, result_fnv)
    let mut next_arrival = 0usize;
    let mut now = 0u64;
    let mut makespan = 0u64;

    while next_arrival < n || !running.is_empty() {
        let arrival = trace.jobs.get(next_arrival).map(|j| j.arrival_cy);
        let completion = running.iter().next().map(|&(t, _)| t);
        let next = match (arrival, completion) {
            (Some(a), Some(c)) => a.min(c),
            (Some(a), None) => a,
            (None, Some(c)) => c,
            (None, None) => unreachable!("loop condition"),
        };
        metrics.account_interval(next - now, alloc.allocated_pes(), queue.len() as u64);
        now = next;

        // Retire every completion due now.
        while let Some(&(t, id)) = running.iter().next() {
            if t > now {
                break;
            }
            running.remove(&(t, id));
            let (block, start, result_fnv) = placements.remove(&id).expect("running job placed");
            alloc.free(block);
            let job = &trace.jobs[id];
            metrics.record_job(start - job.arrival_cy, t - start);
            makespan = makespan.max(t);
            outcomes[id] = Some(JobOutcome {
                job_id: id as u32,
                arrival_cy: job.arrival_cy,
                start_cy: start,
                finish_cy: t,
                block,
                result_fnv,
            });
        }

        // Admit every arrival due now.
        while next_arrival < n && trace.jobs[next_arrival].arrival_cy <= now {
            queue.push_back(next_arrival);
            next_arrival += 1;
        }

        // Dispatch: the head while it fits, then (with backfill) a
        // single in-order scan of the rest.
        while let Some(&head) = queue.front() {
            let job = &trace.jobs[head];
            let Some(block) = alloc.alloc(job.pe_count) else {
                break;
            };
            queue.pop_front();
            let r = cache.run(params.env, job, block.pes() as u32);
            running.insert((now + r.cycles, head));
            placements.insert(head, (block, now, r.result_fnv));
        }
        if params.backfill {
            let mut idx = 0;
            while idx < queue.len() {
                let id = queue[idx];
                let job = &trace.jobs[id];
                if let Some(block) = alloc.alloc(job.pe_count) {
                    queue.remove(idx);
                    let r = cache.run(params.env, job, block.pes() as u32);
                    running.insert((now + r.cycles, id));
                    placements.insert(id, (block, now, r.result_fnv));
                } else {
                    idx += 1;
                }
            }
        }
    }

    let outcomes: Vec<JobOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every job completes"))
        .collect();
    let mut ledger = FNV_OFFSET;
    for o in &outcomes {
        ledger = fnv1a(ledger, &o.job_id.to_le_bytes());
        ledger = fnv1a(ledger, &o.arrival_cy.to_le_bytes());
        ledger = fnv1a(ledger, &o.start_cy.to_le_bytes());
        ledger = fnv1a(ledger, &o.finish_cy.to_le_bytes());
        ledger = fnv1a(ledger, &o.block.origin.x.to_le_bytes());
        ledger = fnv1a(ledger, &o.block.origin.y.to_le_bytes());
        ledger = fnv1a(ledger, &o.block.origin.z.to_le_bytes());
        ledger = fnv1a(ledger, &o.block.dims.0.to_le_bytes());
        ledger = fnv1a(ledger, &o.block.dims.1.to_le_bytes());
        ledger = fnv1a(ledger, &o.block.dims.2.to_le_bytes());
        ledger = fnv1a(ledger, &o.result_fnv.to_le_bytes());
    }
    SchedRun {
        outcomes,
        metrics,
        alloc_stats: alloc.stats(),
        makespan_cy: makespan,
        ledger_fnv: ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Kernel;
    use crate::trace::Job;
    use em3d::Version;

    fn params(backfill: bool) -> SimParams {
        SimParams {
            machine: (2, 2, 1),
            backfill,
            env: ExecEnv::from_env(),
        }
    }

    fn job(arrival_cy: u64, pe_count: u32, seed: u64) -> Job {
        Job {
            arrival_cy,
            pe_count,
            kernel: Kernel::Em3d(Version::Put),
            size: 8,
            seed,
        }
    }

    #[test]
    fn lone_job_starts_immediately() {
        let trace = Trace {
            jobs: vec![job(100, 4, 1)],
        };
        let run = run_trace(&trace, &params(false), &mut KernelCache::new());
        let o = &run.outcomes[0];
        assert_eq!(o.start_cy, 100);
        assert_eq!(o.wait_cy(), 0);
        assert!(o.run_cy() > 0);
        assert_eq!(run.makespan_cy, o.finish_cy);
    }

    #[test]
    fn whole_machine_jobs_serialize_fcfs() {
        let trace = Trace {
            jobs: vec![job(0, 4, 1), job(1, 4, 2), job(2, 4, 3)],
        };
        let run = run_trace(&trace, &params(false), &mut KernelCache::new());
        for w in run.outcomes.windows(2) {
            assert_eq!(
                w[1].start_cy, w[0].finish_cy,
                "each job starts when its predecessor finishes"
            );
        }
        assert!(run.outcomes[2].wait_cy() > 0);
    }

    #[test]
    fn backfill_lets_small_jobs_pass_a_blocked_head() {
        // Job 0 holds half the machine; job 1 (whole machine) blocks at
        // the head; job 2 (the other half) can only jump it with
        // backfill.
        let trace = Trace {
            jobs: vec![job(0, 2, 1), job(1, 4, 2), job(2, 2, 3)],
        };
        let strict = run_trace(&trace, &params(false), &mut KernelCache::new());
        let backfill = run_trace(&trace, &params(true), &mut KernelCache::new());
        assert!(
            strict.outcomes[2].start_cy >= strict.outcomes[1].start_cy,
            "strict FCFS keeps order"
        );
        assert!(
            backfill.outcomes[2].start_cy < backfill.outcomes[1].start_cy,
            "backfill dispatches the fitting job"
        );
        assert_eq!(backfill.outcomes[2].start_cy, 2, "immediately on arrival");
    }

    #[test]
    fn runs_are_deterministic_and_cache_is_transparent() {
        let trace = Trace {
            jobs: vec![job(0, 2, 1), job(50, 2, 1), job(60, 4, 2)],
        };
        let mut cache = KernelCache::new();
        let a = run_trace(&trace, &params(true), &mut cache);
        assert_eq!(cache.hits(), 1, "jobs 0 and 1 share a kernel run");
        let b = run_trace(&trace, &params(true), &mut cache);
        assert_eq!(a.ledger_fnv, b.ledger_fnv);
        assert_eq!(cache.misses(), 2, "second run is fully cached");
    }

    #[test]
    fn utilization_is_positive_and_bounded() {
        let trace = Trace {
            jobs: vec![job(0, 4, 1), job(1, 2, 2)],
        };
        let run = run_trace(&trace, &params(false), &mut KernelCache::new());
        let u = run.utilization(4);
        assert!(u > 0.0 && u <= 1.0, "utilization {u} out of range");
    }

    #[test]
    #[should_panic(expected = "PEs on a")]
    fn oversized_job_panics() {
        let trace = Trace {
            jobs: vec![job(0, 8, 1)],
        };
        run_trace(&trace, &params(false), &mut KernelCache::new());
    }
}
