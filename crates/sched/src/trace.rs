//! The job-stream trace model: what arrives, when, and how big.
//!
//! A trace is an ordered list of [`Job`]s, each asking for a
//! power-of-two block of PEs at a virtual-cycle arrival time. Traces
//! come from the seeded synthetic generator ([`Trace::generate`]) or
//! from JSON (`t3d-sched-trace-v1`), and the same trace always
//! schedules the same way — every number in a generated trace derives
//! from one `t3d-prng` stream, including the Poisson-ish arrival
//! process, which uses a *deterministic* natural log ([`ln_det`])
//! rather than libm's `ln` so checked-in traces and BENCH documents
//! reproduce bit-identically on any host.

use t3d_perf::json::{self, Value};

use crate::kernels::Kernel;
use crate::metrics::{fnv1a, FNV_OFFSET};
use t3d_prng::Rng;

/// Schema tag for trace JSON.
pub const TRACE_SCHEMA: &str = "t3d-sched-trace-v1";

/// One job in the stream. A job's id is its index in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Virtual cycle at which the job enters the queue.
    pub arrival_cy: u64,
    /// PEs requested (a power of two; the allocator rounds up anything
    /// else).
    pub pe_count: u32,
    /// The payload program.
    pub kernel: Kernel,
    /// Per-PE problem size (kernel-specific units: nodes, cells, keys
    /// or rows per PE).
    pub size: u64,
    /// Seed for the kernel's input data.
    pub seed: u64,
}

/// Parameters for the synthetic trace generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenParams {
    /// Number of jobs to generate.
    pub jobs: u32,
    /// Mean inter-arrival gap in cycles (geometric, so the arrival
    /// process is the discrete analogue of Poisson).
    pub mean_interarrival_cy: u64,
    /// Smallest job size as log2(PEs) (e.g. 1 = 2 PEs).
    pub min_order: u32,
    /// Largest job size as log2(PEs).
    pub max_order: u32,
    /// Master seed; every field of every job derives from it.
    pub seed: u64,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            jobs: 32,
            mean_interarrival_cy: 200_000,
            min_order: 1,
            max_order: 3,
            seed: 0x5EED,
        }
    }
}

/// An ordered job stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// Jobs in arrival order (non-decreasing `arrival_cy`).
    pub jobs: Vec<Job>,
}

impl Trace {
    /// Generates a synthetic trace: geometric inter-arrival gaps with
    /// the given mean, job sizes uniform over the order range, kernels
    /// drawn from [`Kernel::zoo`], per-PE problem sizes perturbed
    /// ±50% around each kernel's default. Deterministic in `params`.
    ///
    /// # Panics
    ///
    /// Panics if `min_order > max_order`.
    pub fn generate(params: GenParams) -> Trace {
        assert!(
            params.min_order <= params.max_order,
            "min_order {} > max_order {}",
            params.min_order,
            params.max_order
        );
        let mut rng = Rng::seed_from_u64(params.seed);
        let mut jobs = Vec::with_capacity(params.jobs as usize);
        let mut clock = 0u64;
        for _ in 0..params.jobs {
            clock += geometric(&mut rng, params.mean_interarrival_cy);
            let order = rng.gen_range(params.min_order..params.max_order + 1);
            let kernel = *rng.pick(Kernel::zoo());
            let base = kernel.default_size();
            let size = (base * rng.gen_range(50..151) / 100).max(4);
            jobs.push(Job {
                arrival_cy: clock,
                pe_count: 1u32 << order,
                kernel,
                size,
                seed: rng.next_u64(),
            });
        }
        Trace { jobs }
    }

    /// FNV-1a fingerprint of every field of every job — the identity
    /// of a trace for determinism checks.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for j in &self.jobs {
            h = fnv1a(h, &j.arrival_cy.to_le_bytes());
            h = fnv1a(h, &j.pe_count.to_le_bytes());
            h = fnv1a(h, j.kernel.name().as_bytes());
            h = fnv1a(h, &j.size.to_le_bytes());
            h = fnv1a(h, &j.seed.to_le_bytes());
        }
        h
    }

    /// The trace as a `t3d-sched-trace-v1` JSON document.
    pub fn to_json(&self) -> Value {
        let jobs = self
            .jobs
            .iter()
            .map(|j| {
                Value::obj(vec![
                    ("arrival_cy", Value::Int(j.arrival_cy as i64)),
                    ("pe_count", Value::Int(i64::from(j.pe_count))),
                    ("kernel", Value::Str(j.kernel.name())),
                    ("size", Value::Int(j.size as i64)),
                    // Hex: kernel seeds use the full u64 range, which a
                    // JSON integer (i64 here) cannot carry.
                    ("seed", Value::Str(format!("{:#018x}", j.seed))),
                ])
            })
            .collect();
        Value::obj(vec![
            ("schema", Value::Str(TRACE_SCHEMA.to_string())),
            ("jobs", Value::Arr(jobs)),
        ])
    }

    /// Parses a `t3d-sched-trace-v1` document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: wrong
    /// schema, missing field, unknown kernel, or arrivals out of order.
    pub fn from_json(v: &Value) -> Result<Trace, String> {
        let schema = v.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != TRACE_SCHEMA {
            return Err(format!("expected schema {TRACE_SCHEMA:?}, got {schema:?}"));
        }
        let raw = v
            .get("jobs")
            .and_then(Value::as_arr)
            .ok_or("trace missing jobs array")?;
        let mut jobs = Vec::with_capacity(raw.len());
        let mut last_arrival = 0u64;
        for (i, jv) in raw.iter().enumerate() {
            let int = |key: &str| -> Result<i64, String> {
                jv.get(key)
                    .and_then(Value::as_i64)
                    .ok_or(format!("job {i} missing {key}"))
            };
            let kernel_name = jv
                .get("kernel")
                .and_then(Value::as_str)
                .ok_or(format!("job {i} missing kernel"))?;
            let kernel = Kernel::parse(kernel_name)
                .ok_or(format!("job {i}: unknown kernel {kernel_name:?}"))?;
            let seed_text = jv
                .get("seed")
                .and_then(Value::as_str)
                .ok_or(format!("job {i} missing seed"))?;
            let digits = seed_text.strip_prefix("0x").unwrap_or(seed_text);
            let seed = u64::from_str_radix(digits, 16)
                .map_err(|e| format!("job {i}: bad seed {seed_text:?}: {e}"))?;
            let arrival_cy = int("arrival_cy")? as u64;
            if arrival_cy < last_arrival {
                return Err(format!("job {i}: arrivals out of order"));
            }
            last_arrival = arrival_cy;
            jobs.push(Job {
                arrival_cy,
                pe_count: u32::try_from(int("pe_count")?)
                    .map_err(|e| format!("job {i}: bad pe_count: {e}"))?,
                kernel,
                size: int("size")? as u64,
                seed,
            });
        }
        Ok(Trace { jobs })
    }

    /// Renders the trace as pretty JSON text.
    pub fn render(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Parses trace JSON text.
    ///
    /// # Errors
    ///
    /// Returns the first syntax or structural problem.
    pub fn parse(text: &str) -> Result<Trace, String> {
        Trace::from_json(&json::parse(text)?)
    }
}

/// A geometric inter-arrival gap with the given mean, in cycles (at
/// least 1). The discrete analogue of exponential inter-arrival times:
/// `k = 1 + floor(ln(1-u) / ln(1-1/mean))`.
fn geometric(rng: &mut Rng, mean: u64) -> u64 {
    if mean <= 1 {
        return 1;
    }
    let u = rng.gen_f64();
    let p = 1.0 / mean as f64;
    let k = (ln_det(1.0 - u) / ln_det(1.0 - p)).floor();
    1 + k as u64
}

/// Deterministic natural logarithm for `x` in (0, 1]: IEEE-754
/// bit-decomposition plus the atanh series, using only `f64`
/// multiply/add (whose results IEEE fully specifies). libm's `ln` is
/// correctly rounded on common hosts but not *guaranteed* identical
/// across platforms, and the arrival process feeds checked-in BENCH
/// documents that must reproduce bit-exactly everywhere.
///
/// # Panics
///
/// Panics on non-finite, non-positive, or subnormal input (arrival
/// sampling never produces those).
pub fn ln_det(x: f64) -> f64 {
    assert!(x.is_finite() && x > 0.0, "ln_det domain: got {x}");
    let bits = x.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64;
    assert!(exp != 0, "ln_det: subnormal input {x:e}");
    let e = exp - 1023;
    // Mantissa with the implicit leading 1: m in [1, 2).
    let m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    // ln m = 2 atanh(t), t = (m-1)/(m+1) in [0, 1/3); the series
    // t + t³/3 + t⁵/5 + … converges past f64 precision by t²⁷.
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let mut term = t;
    let mut sum = 0.0;
    for k in 0..14 {
        sum += term / f64::from(2 * k + 1);
        term *= t2;
    }
    2.0 * sum + e as f64 * std::f64::consts::LN_2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_det_matches_libm() {
        // On this host libm is correctly rounded; ln_det must agree
        // closely everywhere we sample. Near x = 1 the exponent and
        // series terms cancel, so the bound is absolute (a few ulps of
        // ln 2), not relative.
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_f64().max(1e-12);
            let got = ln_det(x);
            let want = x.ln();
            assert!(
                (got - want).abs() <= 1e-14 * want.abs().max(1.0),
                "ln_det({x:e}) = {got:e}, libm {want:e}"
            );
        }
        assert_eq!(ln_det(1.0), 0.0);
        assert!((ln_det(0.5) + std::f64::consts::LN_2).abs() < 1e-15);
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut rng = Rng::seed_from_u64(2);
        let mean = 1000u64;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| geometric(&mut rng, mean)).sum();
        let got = total as f64 / f64::from(n);
        assert!(
            (got - mean as f64).abs() < 0.05 * mean as f64,
            "sample mean {got} too far from {mean}"
        );
    }

    #[test]
    fn generate_is_deterministic_and_ordered() {
        let p = GenParams::default();
        let a = Trace::generate(p);
        let b = Trace::generate(p);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        for w in a.jobs.windows(2) {
            assert!(w[0].arrival_cy <= w[1].arrival_cy);
        }
        let mut p2 = p;
        p2.seed ^= 1;
        assert_ne!(Trace::generate(p2).fingerprint(), a.fingerprint());
    }

    #[test]
    fn json_round_trips() {
        let t = Trace::generate(GenParams::default());
        let back = Trace::parse(&t.render()).expect("round trip");
        assert_eq!(t, back);
        assert_eq!(t.fingerprint(), back.fingerprint());
    }

    #[test]
    fn parse_rejects_bad_documents() {
        assert!(Trace::parse("{}").is_err());
        let mut t = Trace::generate(GenParams {
            jobs: 2,
            ..GenParams::default()
        });
        t.jobs[1].arrival_cy = 0;
        t.jobs[0].arrival_cy = 10;
        let text = t.render();
        assert!(Trace::parse(&text).unwrap_err().contains("out of order"));
    }
}
