//! The kernel registry: every payload a scheduled job can run.
//!
//! Three of the kernels are the repository examples promoted into
//! library functions — the examples remain as thin self-checking
//! wrappers over these — and the rest are the EM3D versions from
//! `crates/em3d`. Every kernel:
//!
//! * builds its own right-sized simulated machine for the job's PE
//!   count (the scheduler charges the kernel's virtual cycles back
//!   into the job-stream clock);
//! * **self-checks** its numerical result against a host reference and
//!   panics on divergence (a wrong simulator never posts a timing);
//! * is bit-deterministic in `(pe_count, size, seed)` under both phase
//!   drivers and both time-advance engines, which is what makes the
//!   scheduler's job ledger reproducible and kernel-run memoisation
//!   ([`crate::sim::KernelCache`]) sound.

use em3d::{run_version_engine, Em3dParams, Version};
use splitc::{GlobalPtr, SplitC};
use t3d_machine::{EngineMode, MachineConfig, PhaseDriver};
use t3d_prng::Rng;

use crate::metrics::fnv1a;

/// Node memory for kernel machines: none of the kernels at scheduler
/// sizes touches more than a few hundred kilobytes per PE, and smaller
/// arenas make machine construction (the host-side cost of every job
/// launch) proportionally cheaper.
const KERNEL_MEM_BYTES: usize = 2 * 1024 * 1024;

/// Execution environment a kernel runs under: which phase driver and
/// which time-advance engine. Threading these explicitly (instead of
/// re-reading the environment) lets one process run the full
/// Seq/Par × Cycle/Event differential matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecEnv {
    /// Sequential or sharded-parallel phase driver.
    pub driver: PhaseDriver,
    /// Cycle-accurate or skip-to-next-event time advance.
    pub engine: EngineMode,
}

impl ExecEnv {
    /// The environment-selected defaults (`T3D_PAR`, `T3D_EVENT`).
    pub fn from_env() -> ExecEnv {
        ExecEnv {
            driver: PhaseDriver::from_env(),
            engine: EngineMode::from_env(),
        }
    }

    /// An explicit environment.
    pub fn new(driver: PhaseDriver, engine: EngineMode) -> ExecEnv {
        ExecEnv { driver, engine }
    }
}

impl Default for ExecEnv {
    fn default() -> Self {
        Self::from_env()
    }
}

/// How the stencil's ghost-cell halo travels (the three strategies the
/// `stencil` example compares).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StencilComm {
    /// Blocking remote writes (the naive port).
    Write,
    /// Signaling stores + `allStoreSync` (the paper's Section 7
    /// recommendation).
    Store,
    /// Bulk transfer of the halo.
    Bulk,
}

impl StencilComm {
    /// All strategies, naive first.
    pub fn all() -> [StencilComm; 3] {
        [StencilComm::Write, StencilComm::Store, StencilComm::Bulk]
    }

    fn tag(self) -> &'static str {
        match self {
            StencilComm::Write => "write",
            StencilComm::Store => "store",
            StencilComm::Bulk => "bulk",
        }
    }
}

/// A job payload: which program the scheduled partition runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// One EM3D version (`crates/em3d`), `size` = E/H nodes per PE.
    Em3d(Version),
    /// 1-D Jacobi stencil with ghost exchange, `size` = cells per PE.
    Stencil(StencilComm),
    /// Distributed sample sort, `size` = keys per PE.
    SampleSort,
    /// Conjugate-gradient Poisson solve, `size` = rows per PE.
    Cg,
}

/// What a kernel run produced: the figures the scheduler consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelRun {
    /// Elapsed virtual cycles on the job's machine — the job's service
    /// time, charged into the job-stream clock.
    pub cycles: u64,
    /// FNV-1a fingerprint of the kernel's numerical result (field
    /// values, sorted keys, solution vector, or EM3D's memory
    /// checksum) — determinism evidence carried into the job ledger.
    pub result_fnv: u64,
}

impl Kernel {
    /// The default kernel zoo the trace generator samples from: a mix
    /// of communication-bound (EM3D versions, all-to-all sample sort)
    /// and compute-leaning (stencil, CG) payloads.
    pub fn zoo() -> &'static [Kernel] {
        &[
            Kernel::Em3d(Version::Simple),
            Kernel::Em3d(Version::Get),
            Kernel::Em3d(Version::Put),
            Kernel::Em3d(Version::Bulk),
            Kernel::Em3d(Version::StoreSync),
            Kernel::Stencil(StencilComm::Store),
            Kernel::Stencil(StencilComm::Bulk),
            Kernel::SampleSort,
            Kernel::Cg,
        ]
    }

    /// Stable name, the kernel's key in trace JSON.
    pub fn name(self) -> String {
        match self {
            Kernel::Em3d(v) => format!("em3d.{}", v.label()),
            Kernel::Stencil(c) => format!("stencil.{}", c.tag()),
            Kernel::SampleSort => "sample_sort".to_string(),
            Kernel::Cg => "cg".to_string(),
        }
    }

    /// Parses a [`Kernel::name`] back. `None` on unknown names.
    pub fn parse(name: &str) -> Option<Kernel> {
        if let Some(v) = name.strip_prefix("em3d.") {
            return Version::all()
                .into_iter()
                .find(|k| k.label() == v)
                .map(Kernel::Em3d);
        }
        if let Some(c) = name.strip_prefix("stencil.") {
            return StencilComm::all()
                .into_iter()
                .find(|k| k.tag() == c)
                .map(Kernel::Stencil);
        }
        match name {
            "sample_sort" => Some(Kernel::SampleSort),
            "cg" => Some(Kernel::Cg),
            _ => None,
        }
    }

    /// A reasonable default `size` for this kernel in generated traces
    /// (the generator perturbs around it).
    pub fn default_size(self) -> u64 {
        match self {
            Kernel::Em3d(_) => 32,
            Kernel::Stencil(_) => 256,
            Kernel::SampleSort => 256,
            Kernel::Cg => 12,
        }
    }

    /// Runs the kernel on a fresh `pe_count`-PE machine and returns its
    /// service time and result fingerprint.
    ///
    /// # Panics
    ///
    /// Panics if the kernel's self-check fails — every kernel verifies
    /// its numerical result against a host reference.
    pub fn run(self, env: ExecEnv, pe_count: u32, size: u64, seed: u64) -> KernelRun {
        assert!(pe_count >= 2, "kernels need at least two PEs");
        match self {
            Kernel::Em3d(v) => {
                let mut params = Em3dParams::tiny(20.0);
                params.nodes_per_pe = size.max(4) as usize;
                params.seed = seed;
                // run_version verifies against the host reference
                // internally and panics on divergence.
                let r = run_version_engine(env.driver, env.engine, pe_count, params, v);
                KernelRun {
                    cycles: r.cycles,
                    result_fnv: r.mem_fnv,
                }
            }
            Kernel::Stencil(comm) => run_stencil(env, pe_count, size.max(4), 3, seed, comm).run,
            Kernel::SampleSort => run_sample_sort(env, pe_count, size.max(16), seed).run,
            Kernel::Cg => run_cg(env, pe_count, size.max(4), seed).run,
        }
    }
}

fn kernel_machine(env: ExecEnv, pe_count: u32) -> MachineConfig {
    let mut cfg = MachineConfig::t3d_with_mem(pe_count, KERNEL_MEM_BYTES);
    cfg.engine = env.engine;
    cfg
}

/// Result of a [`run_stencil`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StencilOut {
    /// Cycles and field fingerprint.
    pub run: KernelRun,
    /// Elapsed virtual microseconds.
    pub us: f64,
    /// Sum of the final field (identical across strategies).
    pub field_sum: f64,
}

/// The 1-D Jacobi stencil with ghost-cell exchange (the `stencil`
/// example's engine, promoted). Each PE owns `cells` cells of a global
/// array seeded with a spike plus `seed`-derived noise; every step it
/// exchanges boundary cells with its ring neighbours via `comm` and
/// relaxes its block. All three strategies compute a bit-identical
/// field — the example asserts exactly that across [`StencilComm`].
///
/// # Panics
///
/// Panics if the field leaves the finite range (a runtime bug).
pub fn run_stencil(
    env: ExecEnv,
    pe_count: u32,
    cells: u64,
    steps: usize,
    seed: u64,
    comm: StencilComm,
) -> StencilOut {
    let mut sc = SplitC::new(kernel_machine(env, pe_count));
    let nodes = pe_count as usize;
    // Block plus one ghost cell on each side.
    let cell_base = sc.alloc((cells + 2) * 8, 8);

    // Initialize: seeded noise everywhere, a spike on PE 0.
    let mut rng = Rng::seed_from_u64(seed);
    for p in 0..nodes {
        sc.machine().poke8(p, cell_base, 0f64.to_bits());
        sc.machine()
            .poke8(p, cell_base + (cells + 1) * 8, 0f64.to_bits());
        for i in 1..=cells {
            let v = rng.gen_f64();
            sc.machine().poke8(p, cell_base + i * 8, v.to_bits());
        }
    }
    sc.machine().poke8(0, cell_base + 8, 1000f64.to_bits());

    for _ in 0..steps {
        // Exchange: send my first/last interior cells to the
        // neighbours' ghost slots.
        sc.par_phase_with(env.driver, |ctx| {
            let pe = ctx.pe();
            let left = (pe + nodes - 1) % nodes;
            let right = (pe + 1) % nodes;
            let my_first = cell_base + 8;
            let my_last = cell_base + cells * 8;
            let left_ghost_at_right = cell_base; // their [0] is my last
            let right_ghost_at_left = cell_base + (cells + 1) * 8;
            match comm {
                StencilComm::Write => {
                    let v = ctx.ops().ld8(pe, my_last);
                    ctx.write_u64(GlobalPtr::new(right as u32, left_ghost_at_right), v);
                    let v = ctx.ops().ld8(pe, my_first);
                    ctx.write_u64(GlobalPtr::new(left as u32, right_ghost_at_left), v);
                }
                StencilComm::Store => {
                    let v = ctx.ops().ld8(pe, my_last);
                    ctx.store_u64(GlobalPtr::new(right as u32, left_ghost_at_right), v);
                    let v = ctx.ops().ld8(pe, my_first);
                    ctx.store_u64(GlobalPtr::new(left as u32, right_ghost_at_left), v);
                }
                StencilComm::Bulk => {
                    ctx.bulk_put(
                        GlobalPtr::new(right as u32, left_ghost_at_right),
                        my_last,
                        8,
                    );
                    ctx.bulk_put(
                        GlobalPtr::new(left as u32, right_ghost_at_left),
                        my_first,
                        8,
                    );
                    ctx.sync();
                }
            }
        });
        match comm {
            StencilComm::Store => sc.all_store_sync(),
            _ => sc.barrier(),
        }

        // Relax: new[i] = (old[i-1] + old[i+1]) / 2, in place with a
        // rolling previous value.
        sc.par_phase_with(env.driver, |ctx| {
            let pe = ctx.pe();
            let mut prev = f64::from_bits(ctx.ops().ld8(pe, cell_base));
            for i in 1..=cells {
                let here = f64::from_bits(ctx.ops().ld8(pe, cell_base + i * 8));
                let next = f64::from_bits(ctx.ops().ld8(pe, cell_base + (i + 1) * 8));
                let new = 0.5 * (prev + next);
                prev = here;
                ctx.ops().st8(pe, cell_base + i * 8, new.to_bits());
                ctx.advance(8); // FP add + multiply
            }
        });
        sc.barrier();
    }

    // Self-check + fingerprint over the final field.
    let mut total = 0.0;
    let mut fnv = fnv1a(0xcbf2_9ce4_8422_2325, &[]);
    for p in 0..nodes {
        for i in 1..=cells {
            let bits = sc.machine().peek8(p, cell_base + i * 8);
            total += f64::from_bits(bits);
            fnv = fnv1a(fnv, &bits.to_le_bytes());
        }
    }
    assert!(total.is_finite(), "stencil field diverged");
    let us = sc.max_clock() as f64 * sc.machine_ref().cycle_ns() / 1000.0;
    StencilOut {
        run: KernelRun {
            cycles: sc.max_clock(),
            result_fnv: fnv,
        },
        us,
        field_sum: total,
    }
}

/// Cycles charged for a host-side comparison sort of `n` keys (local
/// compute the simulator does not execute instruction by instruction).
fn sort_cost(n: u64) -> u64 {
    // ~12 cycles per comparison, n log2 n comparisons.
    12 * n * (64 - n.leading_zeros() as u64)
}

/// Result of a [`run_sample_sort`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleSortOut {
    /// Cycles and sorted-key fingerprint.
    pub run: KernelRun,
    /// Total keys sorted.
    pub keys: u64,
    /// Elapsed virtual microseconds.
    pub us: f64,
}

/// Distributed sample sort (the `sample_sort` example's engine,
/// promoted): local sorts, regular sampling to PE 0, splitter
/// broadcast with signaling stores, one bulk put per destination for
/// the all-to-all redistribution, final local sorts.
///
/// # Panics
///
/// Panics if the result is not a globally sorted permutation of the
/// input (verified against a host reference on every run).
pub fn run_sample_sort(env: ExecEnv, pe_count: u32, keys_per_pe: u64, seed: u64) -> SampleSortOut {
    const OVERSAMPLE: u64 = 8;
    let p_u64 = u64::from(pe_count);
    let mut sc = SplitC::new(kernel_machine(env, pe_count));
    let keys = sc.alloc(keys_per_pe * 8, 8);
    // Receive region: worst-case skew margin.
    let recv_cap = keys_per_pe * 4;
    let recv = sc.alloc(recv_cap * 8, 8);
    let samples = sc.alloc(p_u64 * OVERSAMPLE * 8, 8); // at PE 0
    let splitters = sc.alloc(p_u64 * 8, 8); // broadcast to all
    let counts = sc.alloc(p_u64 * p_u64 * 8, 8); // [src][dst] at PE 0

    // Generate keys.
    for pe in 0..pe_count as usize {
        let mut rng = Rng::seed_from_u64(seed.wrapping_add(pe as u64));
        for i in 0..keys_per_pe {
            sc.machine()
                .poke8(pe, keys + i * 8, rng.gen_range(0..1_000_000));
        }
    }

    // Phase 1: local sort + regular sampling to PE 0.
    sc.run_phase(|ctx| {
        let pe = ctx.pe();
        let mut local: Vec<u64> = (0..keys_per_pe)
            .map(|i| ctx.machine().ld8(pe, keys + i * 8))
            .collect();
        local.sort_unstable();
        ctx.advance(sort_cost(keys_per_pe));
        for (i, k) in local.iter().enumerate() {
            ctx.machine().st8(pe, keys + i as u64 * 8, *k);
        }
        // Regular samples.
        for s in 0..OVERSAMPLE {
            let idx = s * keys_per_pe / OVERSAMPLE;
            let slot = pe as u64 * OVERSAMPLE + s;
            ctx.store_u64(GlobalPtr::new(0, samples + slot * 8), local[idx as usize]);
        }
    });
    sc.all_store_sync();

    // Phase 2: PE 0 picks splitters, broadcasts.
    sc.on(0, |ctx| {
        let n = p_u64 * OVERSAMPLE;
        let mut all: Vec<u64> = (0..n)
            .map(|i| ctx.machine().ld8(0, samples + i * 8))
            .collect();
        all.sort_unstable();
        ctx.advance(sort_cost(n));
        for d in 1..p_u64 {
            let splitter = all[(d * n / p_u64) as usize];
            for target in 0..pe_count {
                ctx.store_u64(GlobalPtr::new(target, splitters + d * 8), splitter);
            }
        }
    });
    sc.all_store_sync();

    // Phase 3: partition, publish counts, then all-to-all bulk puts.
    sc.run_phase(|ctx| {
        let pe = ctx.pe();
        let splits: Vec<u64> = (1..p_u64)
            .map(|d| ctx.machine().ld8(pe, splitters + d * 8))
            .collect();
        let mut c = vec![0u64; pe_count as usize];
        for i in 0..keys_per_pe {
            let k = ctx.machine().ld8(pe, keys + i * 8);
            let dst = splits.partition_point(|&s| s <= k);
            c[dst] += 1;
            ctx.advance(6);
        }
        for (dst, n) in c.iter().enumerate() {
            let slot = pe as u64 * p_u64 + dst as u64;
            ctx.store_u64(GlobalPtr::new(0, counts + slot * 8), *n);
        }
    });
    sc.all_store_sync();
    // PE 0 computes per-destination receive offsets and broadcasts them
    // back as (src, dst) start slots.
    let offsets = sc.alloc(p_u64 * p_u64 * 8, 8);
    sc.on(0, |ctx| {
        for dst in 0..p_u64 {
            let mut cursor = 0u64;
            for src in 0..p_u64 {
                let n = ctx.machine().ld8(0, counts + (src * p_u64 + dst) * 8);
                for target in 0..pe_count {
                    ctx.store_u64(
                        GlobalPtr::new(target, offsets + (src * p_u64 + dst) * 8),
                        cursor,
                    );
                }
                cursor += n;
                assert!(cursor <= recv_cap, "receive region overflow");
            }
        }
    });
    sc.all_store_sync();

    sc.run_phase(|ctx| {
        let pe = ctx.pe();
        let splits: Vec<u64> = (1..p_u64)
            .map(|d| ctx.machine().ld8(pe, splitters + d * 8))
            .collect();
        // Keys are sorted, so each destination's partition is one
        // contiguous run: one bulk_put per destination.
        let mut start = 0u64;
        for dst in 0..p_u64 {
            let mut end = start;
            while end < keys_per_pe {
                let k = ctx.machine().ld8(pe, keys + end * 8);
                if splits.partition_point(|&s| s <= k) as u64 != dst {
                    break;
                }
                end += 1;
            }
            if end > start {
                let slot = ctx
                    .machine()
                    .ld8(pe, offsets + (pe as u64 * p_u64 + dst) * 8);
                ctx.bulk_put(
                    GlobalPtr::new(dst as u32, recv + slot * 8),
                    keys + start * 8,
                    (end - start) * 8,
                );
            }
            start = end;
        }
        ctx.sync();
    });
    sc.barrier();

    // Phase 4: final local sorts + verification against the host
    // reference (the regenerated input multiset).
    let mut boundaries = Vec::new();
    let mut total = Vec::new();
    for pe in 0..pe_count as usize {
        // How many keys landed here: recomputed from the counts matrix.
        let mut n = 0u64;
        for src in 0..p_u64 {
            n += sc
                .machine()
                .peek8(0, counts + (src * p_u64 + pe as u64) * 8);
        }
        let mut mine: Vec<u64> = (0..n)
            .map(|i| sc.machine().peek8(pe, recv + i * 8))
            .collect();
        mine.sort_unstable();
        sc.machine().advance(pe, sort_cost(n.max(1)));
        if let (Some(first), Some(last)) = (mine.first(), mine.last()) {
            boundaries.push((*first, *last));
        }
        total.extend(mine);
    }
    // Global order: each PE's range sits below the next PE's.
    for w in boundaries.windows(2) {
        assert!(w[0].1 <= w[1].0, "inter-PE order violated: {w:?}");
    }
    // Permutation check: the multiset of keys is preserved.
    let mut expected: Vec<u64> = (0..pe_count as usize)
        .flat_map(|pe| {
            let mut rng = Rng::seed_from_u64(seed.wrapping_add(pe as u64));
            (0..keys_per_pe).map(move |_| rng.gen_range(0..1_000_000))
        })
        .collect();
    expected.sort_unstable();
    total.sort_unstable();
    assert_eq!(total, expected, "sample sort must be a sorting permutation");

    let mut fnv = fnv1a(0xcbf2_9ce4_8422_2325, &[]);
    for k in &total {
        fnv = fnv1a(fnv, &k.to_le_bytes());
    }
    let us = sc.max_clock() as f64 * sc.machine_ref().cycle_ns() / 1000.0;
    SampleSortOut {
        run: KernelRun {
            cycles: sc.max_clock(),
            result_fnv: fnv,
        },
        keys: p_u64 * keys_per_pe,
        us,
    }
}

/// Result of a [`run_cg`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgOut {
    /// Cycles and solution fingerprint.
    pub run: KernelRun,
    /// Iterations to convergence.
    pub iters: usize,
    /// Maximum relative error against the direct (Thomas-algorithm)
    /// host solution.
    pub max_rel_err: f64,
    /// Elapsed virtual milliseconds.
    pub ms: f64,
}

/// Distributed conjugate gradient on the 1-D Poisson problem (the
/// `cg_solver` example's engine, promoted): halo exchange with
/// signaling stores, global dot products via all-reduce, block-row
/// distribution of the tridiagonal Laplacian. The right-hand side is
/// seeded noise; the converged solution is verified against a direct
/// host solve (Thomas algorithm) of the same system.
///
/// # Panics
///
/// Panics if CG fails to converge or diverges from the direct solve.
pub fn run_cg(env: ExecEnv, pe_count: u32, local_n: u64, seed: u64) -> CgOut {
    let n_total = u64::from(pe_count) * local_n;
    let max_iters = 3 * n_total as usize + 20;
    let mut sc = SplitC::new(kernel_machine(env, pe_count));
    let x = sc.alloc(local_n * 8, 8);
    let r = sc.alloc(local_n * 8, 8);
    // p with 2 halo cells: [halo_lo][local_n cells][halo_hi]
    let p = sc.alloc((local_n + 2) * 8, 8);
    let ap = sc.alloc(local_n * 8, 8);
    let scalar = sc.alloc(8, 8);
    let scratch = sc.alloc(8, 8);

    // b = seeded noise in [1, 2); x0 = 0; r = b; p = r.
    let mut rng = Rng::seed_from_u64(seed);
    let mut b_host = Vec::with_capacity(n_total as usize);
    for pe in 0..pe_count as usize {
        for i in 0..local_n {
            let b = 1.0 + rng.gen_f64();
            b_host.push(b);
            sc.machine().poke8(pe, x + i * 8, 0f64.to_bits());
            sc.machine().poke8(pe, r + i * 8, b.to_bits());
            sc.machine().poke8(pe, p + (i + 1) * 8, b.to_bits());
        }
        sc.machine().poke8(pe, p, 0f64.to_bits());
        sc.machine()
            .poke8(pe, p + (local_n + 1) * 8, 0f64.to_bits());
    }

    let halo_exchange = |sc: &mut SplitC| {
        let p_cells = p + 8; // first interior cell
        sc.run_phase(|ctx| {
            let pe = ctx.pe();
            if pe > 0 {
                let first = ctx.machine().ld8(pe, p_cells);
                ctx.store_u64(GlobalPtr::new(pe as u32 - 1, p + (local_n + 1) * 8), first);
            }
            if pe + 1 < ctx.nodes() {
                let last = ctx.machine().ld8(pe, p_cells + (local_n - 1) * 8);
                ctx.store_u64(GlobalPtr::new(pe as u32 + 1, p), last);
            }
        });
        sc.all_store_sync();
    };

    // ap = A * p (tridiagonal Laplacian), using the fresh halo.
    let matvec = |sc: &mut SplitC| {
        sc.run_phase(|ctx| {
            let pe = ctx.pe();
            let first_global = pe as u64 * local_n;
            for i in 0..local_n {
                let here = f64::from_bits(ctx.machine().ld8(pe, p + (i + 1) * 8));
                let lo = if first_global + i == 0 {
                    0.0
                } else {
                    f64::from_bits(ctx.machine().ld8(pe, p + i * 8))
                };
                let hi = if first_global + i == n_total - 1 {
                    0.0
                } else {
                    f64::from_bits(ctx.machine().ld8(pe, p + (i + 2) * 8))
                };
                let val = 2.0 * here - lo - hi;
                ctx.machine().st8(pe, ap + i * 8, val.to_bits());
                ctx.advance(20); // two FP adds + multiply + loop
            }
        });
        sc.barrier();
    };

    // Global dot product of two local arrays via all-reduce.
    let dot = |sc: &mut SplitC, a_off: u64, a_stride_halo: bool, b_off: u64| -> f64 {
        sc.run_phase(|ctx| {
            let pe = ctx.pe();
            let mut acc = 0.0;
            for i in 0..local_n {
                let a_idx = if a_stride_halo { (i + 1) * 8 } else { i * 8 };
                let a = f64::from_bits(ctx.machine().ld8(pe, a_off + a_idx));
                let b = f64::from_bits(ctx.machine().ld8(pe, b_off + i * 8));
                acc += a * b;
                ctx.advance(16);
            }
            ctx.machine().st8(pe, scalar, acc.to_bits());
            let pe2 = ctx.pe();
            ctx.machine().memory_barrier(pe2);
        });
        let bits = sc.all_reduce_u64(scalar, scratch, |a, b| {
            (f64::from_bits(a) + f64::from_bits(b)).to_bits()
        });
        f64::from_bits(bits)
    };

    let bb = b_host.iter().map(|b| b * b).sum::<f64>();
    let tol = 1e-10 * bb.sqrt();
    let mut rr = dot(&mut sc, r, false, r);
    let mut iters = 0;
    while rr.sqrt() > tol && iters < max_iters {
        halo_exchange(&mut sc);
        matvec(&mut sc);
        let pap = dot(&mut sc, p, true, ap);
        let alpha = rr / pap;
        sc.run_phase(|ctx| {
            let pe = ctx.pe();
            for i in 0..local_n {
                let xv = f64::from_bits(ctx.machine().ld8(pe, x + i * 8));
                let pi = f64::from_bits(ctx.machine().ld8(pe, p + (i + 1) * 8));
                let rv = f64::from_bits(ctx.machine().ld8(pe, r + i * 8));
                let apv = f64::from_bits(ctx.machine().ld8(pe, ap + i * 8));
                ctx.machine()
                    .st8(pe, x + i * 8, (xv + alpha * pi).to_bits());
                ctx.machine()
                    .st8(pe, r + i * 8, (rv - alpha * apv).to_bits());
                ctx.advance(24);
            }
        });
        sc.barrier();
        let rr_new = dot(&mut sc, r, false, r);
        let beta = rr_new / rr;
        rr = rr_new;
        sc.run_phase(|ctx| {
            let pe = ctx.pe();
            for i in 0..local_n {
                let rv = f64::from_bits(ctx.machine().ld8(pe, r + i * 8));
                let pi = f64::from_bits(ctx.machine().ld8(pe, p + (i + 1) * 8));
                ctx.machine()
                    .st8(pe, p + (i + 1) * 8, (rv + beta * pi).to_bits());
                ctx.advance(16);
            }
        });
        sc.barrier();
        iters += 1;
    }
    assert!(
        rr.sqrt() <= tol,
        "CG failed to converge in {max_iters} iterations (residual {:.2e})",
        rr.sqrt()
    );

    // Verify against the direct host solve of the same tridiagonal
    // system (Thomas algorithm).
    let x_ref = thomas_tridiag(&b_host);
    let scale = x_ref.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);
    let mut max_rel_err = 0.0f64;
    let mut fnv = fnv1a(0xcbf2_9ce4_8422_2325, &[]);
    for pe in 0..pe_count as usize {
        for i in 0..local_n {
            let gi = pe as u64 * local_n + i;
            let bits = sc.machine().peek8(pe, x + i * 8);
            let got = f64::from_bits(bits);
            max_rel_err = max_rel_err.max((got - x_ref[gi as usize]).abs() / scale);
            fnv = fnv1a(fnv, &bits.to_le_bytes());
        }
    }
    assert!(
        max_rel_err < 1e-6,
        "CG diverged from the direct solve (max rel err {max_rel_err:.2e})"
    );
    let ms = sc.max_clock() as f64 * sc.machine_ref().cycle_ns() / 1.0e6;
    CgOut {
        run: KernelRun {
            cycles: sc.max_clock(),
            result_fnv: fnv,
        },
        iters,
        max_rel_err,
        ms,
    }
}

/// Direct solve of the `[-1, 2, -1]` tridiagonal system (the host
/// reference for [`run_cg`]).
fn thomas_tridiag(b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let mut c_prime = vec![0.0; n];
    let mut d_prime = vec![0.0; n];
    c_prime[0] = -1.0 / 2.0;
    d_prime[0] = b[0] / 2.0;
    // Sub-diagonal a = -1, so the usual `- a * prev` terms are `+ prev`.
    for i in 1..n {
        let m = 2.0 + c_prime[i - 1];
        c_prime[i] = -1.0 / m;
        d_prime[i] = (b[i] + d_prime[i - 1]) / m;
    }
    let mut x = vec![0.0; n];
    x[n - 1] = d_prime[n - 1];
    for i in (0..n - 1).rev() {
        x[i] = d_prime[i] - c_prime[i] * x[i + 1];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_names_round_trip() {
        for k in Kernel::zoo() {
            assert_eq!(Kernel::parse(&k.name()), Some(*k), "{}", k.name());
        }
        assert_eq!(
            Kernel::parse("em3d.Bulk"),
            Some(Kernel::Em3d(Version::Bulk))
        );
        assert_eq!(Kernel::parse("nope"), None);
        assert_eq!(Kernel::parse("em3d.Nope"), None);
        assert_eq!(Kernel::parse("stencil.nope"), None);
    }

    #[test]
    fn thomas_solves_the_poisson_problem() {
        // b = 1 has the closed form x_i = (i+1)(n-i)/2.
        let n = 64;
        let x = thomas_tridiag(&vec![1.0; n]);
        for (i, &v) in x.iter().enumerate() {
            let expect = (i as f64 + 1.0) * (n as f64 - i as f64) / 2.0;
            assert!(
                (v - expect).abs() < 1e-8 * expect,
                "x[{i}] = {v} != {expect}"
            );
        }
    }

    #[test]
    fn stencil_strategies_agree_bitwise() {
        let env = ExecEnv::from_env();
        let runs: Vec<StencilOut> = StencilComm::all()
            .into_iter()
            .map(|c| run_stencil(env, 4, 32, 2, 7, c))
            .collect();
        for w in runs.windows(2) {
            assert_eq!(
                w[0].run.result_fnv, w[1].run.result_fnv,
                "strategies must compute the same field"
            );
        }
        // The halo strategies genuinely differ in timing.
        assert_ne!(runs[0].run.cycles, runs[1].run.cycles);
    }

    #[test]
    fn sample_sort_and_cg_self_check() {
        let env = ExecEnv::from_env();
        let sort = run_sample_sort(env, 4, 64, 11);
        assert_eq!(sort.keys, 256);
        assert!(sort.run.cycles > 0);
        let cg = run_cg(env, 4, 8, 11);
        assert!(cg.iters > 0 && cg.max_rel_err < 1e-6);
    }

    #[test]
    fn kernel_runs_are_deterministic() {
        let env = ExecEnv::from_env();
        for k in [
            Kernel::Em3d(Version::Put),
            Kernel::Stencil(StencilComm::Store),
            Kernel::SampleSort,
            Kernel::Cg,
        ] {
            let a = k.run(env, 4, k.default_size() / 4, 3);
            let b = k.run(env, 4, k.default_size() / 4, 3);
            assert_eq!(a, b, "{} must be deterministic", k.name());
            let c = k.run(env, 4, k.default_size() / 4, 4);
            assert_ne!(
                a.result_fnv,
                c.result_fnv,
                "{} must depend on its seed",
                k.name()
            );
        }
    }
}
