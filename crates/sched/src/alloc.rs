//! The torus partition allocator: buddy carving of the machine into
//! power-of-two sub-cubes.
//!
//! Free space is a set of canonical blocks per order (origin only —
//! the shape of an order-`k` block is fixed by
//! [`shape_of_order`]). Allocation is **first fit**: the
//! smallest sufficient order with a free block, smallest origin first
//! (coordinate-lexicographic), splitting larger blocks down as needed.
//! Freeing coalesces buddies greedily back up, so an idle machine
//! always collapses to one whole-machine block. Both policies are
//! deterministic, which the scheduler's bit-identical job ledger
//! depends on.

use std::collections::BTreeSet;

use t3d_torus::subcube::{dims_pow2, shape_of_order, Dims};
use t3d_torus::{Coord, SubCube};

/// Counters describing the allocator's life so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Blocks returned.
    pub frees: u64,
    /// Block splits performed to satisfy allocations.
    pub splits: u64,
    /// Buddy coalesces performed on free.
    pub coalesces: u64,
    /// Allocation attempts that found no block (including requests
    /// larger than the machine).
    pub fit_failures: u64,
}

/// A buddy allocator over the sub-cubes of one torus.
#[derive(Debug, Clone)]
pub struct PartitionAllocator {
    machine: Dims,
    max_order: u32,
    /// Free-block origins, indexed by order.
    free: Vec<BTreeSet<Coord>>,
    free_pes: u64,
    stats: AllocStats,
}

impl PartitionAllocator {
    /// An empty machine: one whole-machine free block.
    ///
    /// # Panics
    ///
    /// Panics if any machine extent is not a power of two.
    pub fn new(machine: Dims) -> PartitionAllocator {
        assert!(
            dims_pow2(machine),
            "machine extents must be powers of two, got {machine:?}"
        );
        let total = SubCube::whole(machine).pes();
        let max_order = total.trailing_zeros();
        let mut free = vec![BTreeSet::new(); max_order as usize + 1];
        free[max_order as usize].insert(Coord::default());
        PartitionAllocator {
            machine,
            max_order,
            free,
            free_pes: total,
            stats: AllocStats::default(),
        }
    }

    /// The machine shape this allocator carves.
    pub fn machine(&self) -> Dims {
        self.machine
    }

    /// Total PEs in the machine.
    pub fn total_pes(&self) -> u64 {
        1u64 << self.max_order
    }

    /// PEs currently free.
    pub fn free_pes(&self) -> u64 {
        self.free_pes
    }

    /// PEs currently allocated.
    pub fn allocated_pes(&self) -> u64 {
        self.total_pes() - self.free_pes
    }

    /// Counters so far.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// External fragmentation: the fraction of free PEs *not* reachable
    /// through the largest free block (`1 − largest_free/free`).
    /// 0 when the free space is empty or one block.
    pub fn fragmentation(&self) -> f64 {
        if self.free_pes == 0 {
            return 0.0;
        }
        let largest = self
            .free
            .iter()
            .enumerate()
            .rev()
            .find(|(_, s)| !s.is_empty())
            .map_or(0u64, |(k, _)| 1u64 << k);
        1.0 - largest as f64 / self.free_pes as f64
    }

    /// Allocates a block for `pe_count` PEs (rounded up to a power of
    /// two): smallest sufficient order, smallest origin, splitting as
    /// needed. `None` (and a `fit_failures` tick) when nothing fits.
    pub fn alloc(&mut self, pe_count: u32) -> Option<SubCube> {
        let want = u64::from(pe_count.max(1)).next_power_of_two();
        let order = want.trailing_zeros();
        if order > self.max_order {
            self.stats.fit_failures += 1;
            return None;
        }
        // First order >= the request with a free block.
        let Some(from) = (order..=self.max_order).find(|&k| !self.free[k as usize].is_empty())
        else {
            self.stats.fit_failures += 1;
            return None;
        };
        let origin = *self.free[from as usize]
            .iter()
            .next()
            .expect("order was found non-empty");
        self.free[from as usize].remove(&origin);
        let mut block = SubCube {
            origin,
            dims: shape_of_order(self.machine, from),
        };
        // Split down to the requested order, keeping the lower half
        // (the origin) and freeing the upper.
        for _ in order..from {
            let (lo, hi) = block.split();
            self.free[hi.order() as usize].insert(hi.origin);
            self.stats.splits += 1;
            block = lo;
        }
        self.free_pes -= block.pes();
        self.stats.allocs += 1;
        Some(block)
    }

    /// Returns a block, coalescing it with free buddies as far up as
    /// possible.
    ///
    /// # Panics
    ///
    /// Panics if the block is not a canonical block of this machine or
    /// overlaps free space (a double free).
    pub fn free(&mut self, block: SubCube) {
        assert_eq!(
            block.dims,
            shape_of_order(self.machine, block.order()),
            "{block} is not a canonical block of machine {:?}",
            self.machine
        );
        // A returned block must be wholly allocated: any overlap with
        // free space is a double free (possibly of a block that has
        // since coalesced into a larger one).
        for (k, set) in self.free.iter().enumerate() {
            for &origin in set {
                let f = SubCube {
                    origin,
                    dims: shape_of_order(self.machine, k as u32),
                };
                assert!(
                    !f.overlaps(&block),
                    "double free: {block} overlaps free block {f}"
                );
            }
        }
        self.free_pes += block.pes();
        self.stats.frees += 1;
        let mut cur = block;
        loop {
            let k = cur.order() as usize;
            match cur.buddy(self.machine) {
                Some(b) if self.free[k].contains(&b.origin) => {
                    self.free[k].remove(&b.origin);
                    self.stats.coalesces += 1;
                    cur = cur.parent(self.machine).expect("buddy implies parent");
                }
                _ => {
                    self.free[k].insert(cur.origin);
                    return;
                }
            }
        }
    }

    /// Whether an allocation of `pe_count` PEs would currently succeed
    /// (without performing it).
    pub fn would_fit(&self, pe_count: u32) -> bool {
        let want = u64::from(pe_count.max(1)).next_power_of_two();
        let order = want.trailing_zeros();
        order <= self.max_order
            && (order..=self.max_order).any(|k| !self.free[k as usize].is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: Dims = (4, 4, 2);

    #[test]
    fn whole_machine_round_trips() {
        let mut a = PartitionAllocator::new(M);
        assert_eq!(a.total_pes(), 32);
        let b = a.alloc(32).expect("whole machine fits");
        assert_eq!(b.pes(), 32);
        assert_eq!(a.free_pes(), 0);
        assert!(!a.would_fit(1));
        a.free(b);
        assert_eq!(a.free_pes(), 32);
        assert!(a.would_fit(32));
    }

    #[test]
    fn rounds_up_to_power_of_two() {
        let mut a = PartitionAllocator::new(M);
        let b = a.alloc(3).expect("fits");
        assert_eq!(b.pes(), 4);
    }

    #[test]
    fn first_fit_prefers_smallest_origin() {
        let mut a = PartitionAllocator::new(M);
        let b1 = a.alloc(4).expect("fits");
        let b2 = a.alloc(4).expect("fits");
        assert_eq!(b1.origin, Coord::default());
        assert!(b1.origin < b2.origin);
        assert!(!b1.overlaps(&b2));
    }

    #[test]
    fn free_coalesces_back_to_one_block() {
        let mut a = PartitionAllocator::new(M);
        let blocks: Vec<SubCube> = (0..8).map(|_| a.alloc(4).expect("fits")).collect();
        assert_eq!(a.free_pes(), 0);
        for b in blocks {
            a.free(b);
        }
        assert_eq!(a.free_pes(), 32);
        assert_eq!(a.fragmentation(), 0.0);
        // Fully coalesced: the whole machine allocates again.
        assert_eq!(a.alloc(32).expect("whole").pes(), 32);
        let s = a.stats();
        assert_eq!(s.allocs, 9);
        assert_eq!(s.frees, 8);
        assert_eq!(s.splits, s.coalesces, "every split was undone");
    }

    #[test]
    fn fragmentation_reflects_split_free_space() {
        let mut a = PartitionAllocator::new(M);
        let small = a.alloc(2).expect("fits");
        // Free space is 30 PEs but the largest block is 16.
        assert!(a.fragmentation() > 0.0);
        a.free(small);
        assert_eq!(a.fragmentation(), 0.0);
    }

    #[test]
    fn too_big_requests_fail_cleanly() {
        let mut a = PartitionAllocator::new(M);
        assert_eq!(a.alloc(64), None);
        assert_eq!(a.stats().fit_failures, 1);
    }

    #[test]
    fn canonical_shapes_agree_with_phase_shard_partition() {
        // One source of truth: the phase engine's sub-cube shards
        // (`t3d_torus::subcube::partition`) and the blocks this buddy
        // allocator carves are the same geometry, because both reduce
        // to `shape_of_order`. Carve an empty machine into 2^k equal
        // first-fit blocks and they must tile it exactly like the
        // shard partition of the same block count — for every order,
        // including the 256-PE machine the `sweep --pes 256` ladder
        // schedules onto.
        use t3d_torus::subcube::partition;
        for machine in [(4, 4, 2), (8, 8, 4), (8, 8, 8)] {
            let total = SubCube::whole(machine).pes();
            let mut nblocks = 1usize;
            while nblocks as u64 <= total {
                let shards = partition(machine, nblocks);
                assert_eq!(shards.len(), nblocks, "machine {machine:?}");
                let per = u32::try_from(total).expect("small machines") / nblocks as u32;
                assert_eq!(
                    shards[0].dims,
                    shape_of_order(machine, per.trailing_zeros()),
                    "shards carry the canonical shape of their order"
                );
                let mut a = PartitionAllocator::new(machine);
                let mut carved: Vec<SubCube> = (0..nblocks)
                    .map(|_| a.alloc(per).expect("equal blocks tile"))
                    .collect();
                assert_eq!(a.free_pes(), 0, "blocks cover the machine");
                carved.sort_by_key(|b| (b.origin.z, b.origin.y, b.origin.x));
                assert_eq!(
                    carved, shards,
                    "machine {machine:?}: allocator blocks != {nblocks} shard partition"
                );
                nblocks *= 2;
            }
        }
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = PartitionAllocator::new(M);
        let b = a.alloc(4).expect("fits");
        a.free(b);
        let mut a2 = a.clone();
        a2.free(b);
    }
}
