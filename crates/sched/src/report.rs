//! The `t3d-sched-v1` saturation-sweep document and its comparator.
//!
//! A sweep runs the same job bodies at a ladder of offered loads and
//! records one [`SweepPoint`] per load: the wait/run/turnaround
//! distributions (log₂-bucket percentiles), utilization, queue depth,
//! and the job-ledger FNV fingerprint. The checked-in
//! `BENCH_sched.json` is such a document; [`compare`] holds the
//! ledger fingerprints **strictly** (the whole scheduling run is
//! virtual-time deterministic) and the latency figures to a tolerance
//! that only absorbs deliberate timing-model changes — the same
//! two-discipline split as `t3d_perf::bench`.

use t3d_perf::json::{self, Value};

use crate::metrics::HistSummary;
use t3d_torus::subcube::Dims;

/// Document schema tag, bumped on incompatible layout changes.
pub const SCHED_SCHEMA: &str = "t3d-sched-v1";

/// One load point of a saturation sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Target offered load (mean PE demand over machine capacity).
    pub load: f64,
    /// Mean inter-arrival gap the generator was given, cycles.
    pub mean_interarrival_cy: u64,
    /// Jobs in the trace.
    pub jobs: u32,
    /// Queue-wait distribution, cycles.
    pub wait: HistSummary,
    /// Service-time distribution, cycles.
    pub run: HistSummary,
    /// Turnaround distribution, cycles.
    pub turnaround: HistSummary,
    /// Machine utilization over the run (0–1).
    pub utilization: f64,
    /// Time-averaged queue depth.
    pub queue_mean: f64,
    /// Peak queue depth.
    pub queue_max: u64,
    /// Virtual cycle of the last completion.
    pub makespan_cy: u64,
    /// Job-ledger FNV fingerprint — compared strictly.
    pub ledger_fnv: u64,
}

/// A full sweep document.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedDoc {
    /// Machine shape the sweep ran on.
    pub machine: Dims,
    /// Master seed the traces derive from.
    pub seed: u64,
    /// Whether backfill was enabled.
    pub backfill: bool,
    /// The load ladder, lightest first.
    pub points: Vec<SweepPoint>,
}

fn summary_json(s: &HistSummary) -> Value {
    Value::obj(vec![
        ("p50", Value::Int(s.p50 as i64)),
        ("p95", Value::Int(s.p95 as i64)),
        ("p99", Value::Int(s.p99 as i64)),
        ("mean", Value::Float(s.mean)),
    ])
}

fn summary_from(v: Option<&Value>, what: &str) -> Result<HistSummary, String> {
    let v = v.ok_or(format!("point missing {what} summary"))?;
    let int = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Value::as_i64)
            .map(|x| x as u64)
            .ok_or(format!("{what} summary missing {key}"))
    };
    Ok(HistSummary {
        p50: int("p50")?,
        p95: int("p95")?,
        p99: int("p99")?,
        mean: v
            .get("mean")
            .and_then(Value::as_f64)
            .ok_or(format!("{what} summary missing mean"))?,
    })
}

impl SchedDoc {
    /// The document as JSON.
    pub fn to_json(&self) -> Value {
        let points = self
            .points
            .iter()
            .map(|p| {
                Value::obj(vec![
                    ("load", Value::Float(p.load)),
                    (
                        "mean_interarrival_cy",
                        Value::Int(p.mean_interarrival_cy as i64),
                    ),
                    ("jobs", Value::Int(i64::from(p.jobs))),
                    ("wait_cy", summary_json(&p.wait)),
                    ("run_cy", summary_json(&p.run)),
                    ("turnaround_cy", summary_json(&p.turnaround)),
                    ("utilization", Value::Float(p.utilization)),
                    ("queue_mean", Value::Float(p.queue_mean)),
                    ("queue_max", Value::Int(p.queue_max as i64)),
                    ("makespan_cy", Value::Int(p.makespan_cy as i64)),
                    // Hex string: ledger fingerprints use the full u64
                    // range, which a JSON i64 cannot carry.
                    ("ledger_fnv", Value::Str(format!("{:#018x}", p.ledger_fnv))),
                ])
            })
            .collect();
        Value::obj(vec![
            ("schema", Value::Str(SCHED_SCHEMA.to_string())),
            (
                "machine",
                Value::Arr(vec![
                    Value::Int(i64::from(self.machine.0)),
                    Value::Int(i64::from(self.machine.1)),
                    Value::Int(i64::from(self.machine.2)),
                ]),
            ),
            ("seed", Value::Str(format!("{:#018x}", self.seed))),
            ("backfill", Value::Bool(self.backfill)),
            ("points", Value::Arr(points)),
        ])
    }

    /// Parses a `t3d-sched-v1` document.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem.
    pub fn from_json(v: &Value) -> Result<SchedDoc, String> {
        let schema = v.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != SCHED_SCHEMA {
            return Err(format!("expected schema {SCHED_SCHEMA:?}, got {schema:?}"));
        }
        let m = v
            .get("machine")
            .and_then(Value::as_arr)
            .ok_or("document missing machine")?;
        if m.len() != 3 {
            return Err(format!("machine must have 3 extents, got {}", m.len()));
        }
        let ext = |i: usize| -> Result<u32, String> {
            m[i].as_i64()
                .and_then(|x| u32::try_from(x).ok())
                .ok_or(format!("bad machine extent {:?}", m[i]))
        };
        let seed_text = v
            .get("seed")
            .and_then(Value::as_str)
            .ok_or("document missing seed")?;
        let seed = parse_hex(seed_text).map_err(|e| format!("bad seed: {e}"))?;
        let backfill = match v.get("backfill") {
            Some(Value::Bool(b)) => *b,
            _ => return Err("document missing backfill flag".to_string()),
        };
        let raw = v
            .get("points")
            .and_then(Value::as_arr)
            .ok_or("document missing points")?;
        let mut points = Vec::with_capacity(raw.len());
        for pv in raw {
            let f = |key: &str| -> Result<f64, String> {
                pv.get(key)
                    .and_then(Value::as_f64)
                    .ok_or(format!("point missing {key}"))
            };
            let int = |key: &str| -> Result<u64, String> {
                pv.get(key)
                    .and_then(Value::as_i64)
                    .map(|x| x as u64)
                    .ok_or(format!("point missing {key}"))
            };
            let fnv_text = pv
                .get("ledger_fnv")
                .and_then(Value::as_str)
                .ok_or("point missing ledger_fnv")?;
            points.push(SweepPoint {
                load: f("load")?,
                mean_interarrival_cy: int("mean_interarrival_cy")?,
                jobs: u32::try_from(int("jobs")?).map_err(|e| format!("bad jobs: {e}"))?,
                wait: summary_from(pv.get("wait_cy"), "wait_cy")?,
                run: summary_from(pv.get("run_cy"), "run_cy")?,
                turnaround: summary_from(pv.get("turnaround_cy"), "turnaround_cy")?,
                utilization: f("utilization")?,
                queue_mean: f("queue_mean")?,
                queue_max: int("queue_max")?,
                makespan_cy: int("makespan_cy")?,
                ledger_fnv: parse_hex(fnv_text).map_err(|e| format!("bad ledger_fnv: {e}"))?,
            });
        }
        Ok(SchedDoc {
            machine: (ext(0)?, ext(1)?, ext(2)?),
            seed,
            backfill,
            points,
        })
    }

    /// Renders the document as pretty JSON text.
    pub fn render(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Parses document text.
    ///
    /// # Errors
    ///
    /// Returns the first syntax or structural problem.
    pub fn parse(text: &str) -> Result<SchedDoc, String> {
        SchedDoc::from_json(&json::parse(text)?)
    }

    /// The point for a given target load, matched at per-mille
    /// resolution (loads are ladder labels like 0.25, not measured
    /// values; exact f64 comparison would be brittle across edits).
    pub fn point_at(&self, load: f64) -> Option<&SweepPoint> {
        let key = load_key(load);
        self.points.iter().find(|p| load_key(p.load) == key)
    }
}

fn load_key(load: f64) -> i64 {
    (load * 1000.0).round() as i64
}

fn parse_hex(text: &str) -> Result<u64, String> {
    let digits = text.strip_prefix("0x").unwrap_or(text);
    u64::from_str_radix(digits, 16).map_err(|e| format!("{text:?}: {e}"))
}

/// Compares a fresh sweep against the checked-in baseline. Returns one
/// message per problem; empty = pass.
///
/// Gates, in decreasing strictness:
///
/// * machine shape, seed and backfill flag must match exactly — a
///   sweep against a different configuration is not comparable;
/// * every baseline load point must be present (matched by target
///   load); new points never fail;
/// * **ledger fingerprints** compare strictly: scheduling is
///   virtual-time deterministic, so any difference means the scheduler
///   or a kernel computed something else;
/// * **p99 turnaround** may grow by at most `tol` (fractional) — the
///   headline saturation figure, with the tolerance only absorbing
///   deliberate timing-model changes;
/// * **utilization** may drop by at most `tol` (absolute).
pub fn compare(baseline: &SchedDoc, fresh: &SchedDoc, tol: f64) -> Vec<String> {
    let mut problems = Vec::new();
    if baseline.machine != fresh.machine {
        problems.push(format!(
            "machine {:?} -> {:?}: sweeps are not comparable",
            baseline.machine, fresh.machine
        ));
        return problems;
    }
    if baseline.seed != fresh.seed {
        problems.push(format!(
            "seed {:#018x} -> {:#018x}: sweeps are not comparable",
            baseline.seed, fresh.seed
        ));
        return problems;
    }
    if baseline.backfill != fresh.backfill {
        problems.push(format!(
            "backfill {} -> {}: sweeps are not comparable",
            baseline.backfill, fresh.backfill
        ));
        return problems;
    }
    for old in &baseline.points {
        let Some(new) = fresh.point_at(old.load) else {
            problems.push(format!(
                "load {:.2}: present in baseline but missing from new sweep",
                old.load
            ));
            continue;
        };
        if old.ledger_fnv != new.ledger_fnv {
            problems.push(format!(
                "load {:.2}: job ledger {:#018x} -> {:#018x} (strict; the \
                 scheduler's virtual-time behaviour diverged from the baseline)",
                old.load, old.ledger_fnv, new.ledger_fnv
            ));
        }
        let limit = old.turnaround.p99 as f64 * (1.0 + tol);
        if new.turnaround.p99 as f64 > limit {
            problems.push(format!(
                "load {:.2}: p99 turnaround {} -> {} cycles (> allowed {:+.1}%)",
                old.load,
                old.turnaround.p99,
                new.turnaround.p99,
                tol * 100.0
            ));
        }
        if new.utilization < old.utilization - tol {
            problems.push(format!(
                "load {:.2}: utilization {:.3} -> {:.3} (dropped more than {tol})",
                old.load, old.utilization, new.utilization
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(load: f64, p99: u64, fnv: u64) -> SweepPoint {
        let s = HistSummary {
            p50: p99 / 2,
            p95: p99,
            p99,
            mean: p99 as f64 / 2.0,
        };
        SweepPoint {
            load,
            mean_interarrival_cy: 1000,
            jobs: 16,
            wait: s,
            run: s,
            turnaround: s,
            utilization: load.min(0.9),
            queue_mean: load,
            queue_max: 3,
            makespan_cy: 1_000_000,
            ledger_fnv: fnv,
        }
    }

    fn doc() -> SchedDoc {
        SchedDoc {
            machine: (4, 4, 2),
            seed: 0x5EED,
            backfill: false,
            points: vec![point(0.25, 1000, 0xAA), point(0.75, 8000, 0xBB)],
        }
    }

    #[test]
    fn json_round_trips() {
        let d = doc();
        let back = SchedDoc::parse(&d.render()).expect("round trip");
        assert_eq!(d, back);
    }

    #[test]
    fn identical_sweeps_pass() {
        assert!(compare(&doc(), &doc(), 0.1).is_empty());
    }

    #[test]
    fn ledger_divergence_fails_strictly() {
        let mut fresh = doc();
        fresh.points[1].ledger_fnv ^= 1;
        let problems = compare(&doc(), &fresh, 10.0);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("job ledger"), "{problems:?}");
    }

    #[test]
    fn p99_regression_fails_past_tolerance() {
        let mut fresh = doc();
        fresh.points[0].turnaround.p99 = 1200;
        assert!(!compare(&doc(), &fresh, 0.1).is_empty());
        assert!(compare(&doc(), &fresh, 0.25).is_empty());
    }

    #[test]
    fn missing_point_and_mismatched_config_fail() {
        let mut fresh = doc();
        fresh.points.pop();
        assert!(compare(&doc(), &fresh, 0.1)
            .iter()
            .any(|p| p.contains("missing")));
        let mut other = doc();
        other.seed ^= 1;
        assert!(compare(&doc(), &other, 0.1)[0].contains("not comparable"));
    }

    #[test]
    fn extra_points_never_fail() {
        let mut fresh = doc();
        fresh.points.push(point(0.95, 100_000, 0xCC));
        assert!(compare(&doc(), &fresh, 0.1).is_empty());
    }
}
