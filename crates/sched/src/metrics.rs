//! Per-job and fleet-level scheduling metrics.
//!
//! Wait, run and turnaround times go into the log₂ [`Hist`]ograms from
//! `t3d-perf` — the same bucket-resolution percentiles the micro-probe
//! suite reports, so a saturation curve's p99 means the same thing as a
//! latency probe's p99. Utilization and queue depth are time-weighted
//! integrals accumulated between scheduler events.

use t3d_perf::hist::Hist;

/// One FNV-1a step over `bytes`, continuing from `state`. Seed with
/// [`FNV_OFFSET`]; the scheduler chains every job's ledger entry
/// through one running state to fingerprint the whole run.
pub fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// A histogram compressed to the figures a BENCH document keeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Median (bucket upper bound), cycles.
    pub p50: u64,
    /// 95th percentile, cycles.
    pub p95: u64,
    /// 99th percentile, cycles.
    pub p99: u64,
    /// Exact mean, cycles.
    pub mean: f64,
}

impl HistSummary {
    /// Summarises a histogram. An empty histogram summarises to all
    /// zeros (the [`Hist::percentile`] empty convention).
    pub fn of(h: &Hist) -> HistSummary {
        HistSummary {
            p50: h.p50(),
            p95: h.p95(),
            p99: h.p99(),
            mean: h.mean(),
        }
    }
}

/// Fleet-level metrics accumulated over one trace run.
#[derive(Debug, Clone, Default)]
pub struct FleetMetrics {
    /// Per-job queue wait (arrival → dispatch), cycles.
    pub wait: Hist,
    /// Per-job service time (dispatch → completion), cycles.
    pub run: Hist,
    /// Per-job turnaround (arrival → completion), cycles.
    pub turnaround: Hist,
    /// PE-cycles spent running jobs (the utilization numerator).
    busy_pe_cy: u128,
    /// Queue-depth integral: Σ depth × dt over the run.
    queue_cy: u128,
    /// Highest queue depth observed.
    pub queue_max: u64,
}

impl FleetMetrics {
    /// Records one completed job.
    pub fn record_job(&mut self, wait_cy: u64, run_cy: u64) {
        self.wait.record(wait_cy);
        self.run.record(run_cy);
        self.turnaround.record(wait_cy + run_cy);
    }

    /// Accounts an interval of `dt` cycles during which `busy_pes` PEs
    /// were running jobs and `queued` jobs were waiting.
    pub fn account_interval(&mut self, dt: u64, busy_pes: u64, queued: u64) {
        self.busy_pe_cy += u128::from(dt) * u128::from(busy_pes);
        self.queue_cy += u128::from(dt) * u128::from(queued);
        self.queue_max = self.queue_max.max(queued);
    }

    /// Machine utilization over a run of `makespan_cy` cycles on
    /// `machine_pes` PEs: busy PE-cycles over available PE-cycles.
    pub fn utilization(&self, machine_pes: u64, makespan_cy: u64) -> f64 {
        let avail = u128::from(machine_pes) * u128::from(makespan_cy);
        if avail == 0 {
            0.0
        } else {
            self.busy_pe_cy as f64 / avail as f64
        }
    }

    /// Time-averaged queue depth over a run of `makespan_cy` cycles.
    pub fn queue_mean(&self, makespan_cy: u64) -> f64 {
        if makespan_cy == 0 {
            0.0
        } else {
            self.queue_cy as f64 / makespan_cy as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(FNV_OFFSET, b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(FNV_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(FNV_OFFSET, b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_chains() {
        let whole = fnv1a(FNV_OFFSET, b"foobar");
        let chained = fnv1a(fnv1a(FNV_OFFSET, b"foo"), b"bar");
        assert_eq!(whole, chained);
    }

    #[test]
    fn utilization_and_queue_depth_are_time_weighted() {
        let mut m = FleetMetrics::default();
        // 100 cycles fully busy on 4 PEs with 2 queued, then 100 idle.
        m.account_interval(100, 4, 2);
        m.account_interval(100, 0, 0);
        assert!((m.utilization(4, 200) - 0.5).abs() < 1e-12);
        assert!((m.queue_mean(200) - 1.0).abs() < 1e-12);
        assert_eq!(m.queue_max, 2);
    }

    #[test]
    fn empty_hist_summary_is_zero() {
        let s = HistSummary::of(&Hist::default());
        assert_eq!((s.p50, s.p95, s.p99), (0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn record_job_feeds_all_three_hists() {
        let mut m = FleetMetrics::default();
        m.record_job(100, 900);
        assert_eq!(m.wait.count(), 1);
        assert_eq!(m.run.count(), 1);
        assert_eq!(m.turnaround.sum(), 1000);
    }
}
