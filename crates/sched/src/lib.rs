//! t3d-sched — the machine as a shared service.
//!
//! The paper evaluates one SPMD program owning the whole T3D; real T3D
//! sites ran the machine multi-tenant: jobs arrived in a stream, each
//! asked for a power-of-two block of PEs, and the operating system
//! carved the X×Y×Z torus into sub-cube partitions and *gang-scheduled*
//! each job onto one (a job runs only when a whole sub-cube is free for
//! it). This crate reproduces that layer on top of the simulator:
//!
//! * [`kernels`] — the job payloads: the EM3D versions plus the
//!   stencil, sample-sort and CG solver kernels (promoted from the
//!   repository examples), all self-checking and bit-deterministic;
//! * [`trace`] — the `Job{arrival_cy, pe_count, kernel, size, seed}`
//!   model, a seeded synthetic trace generator (Poisson-ish arrivals
//!   via geometric inter-arrival times) and a JSON trace format;
//! * [`alloc`] — a first-fit buddy allocator over canonical
//!   power-of-two torus sub-cubes (`t3d_torus::subcube`), with
//!   allocation/fragmentation counters;
//! * [`sim`] — the event-driven simulation driver: virtual time
//!   advances to the next arrival or job completion (the same
//!   skip-to-next-event discipline as the machine core), each scheduled
//!   job runs its kernel on a right-sized simulated machine, and the
//!   job's simulated cycles are charged back into the global job-stream
//!   clock;
//! * [`metrics`] — per-job wait/run/turnaround into the log₂
//!   histograms of `t3d-perf` (p50/p95/p99), fleet utilization and
//!   queue-depth accounting, and the FNV job-ledger fingerprint;
//! * [`report`] — the `t3d-sched-v1` saturation-sweep document
//!   (`BENCH_sched.json`) and its regression comparator.
//!
//! Everything is virtual-time deterministic: the same trace produces a
//! bit-identical job ledger under both phase drivers (`T3D_PAR`) and
//! both time-advance engines (`T3D_EVENT`) — the scheduler inherits the
//! simulator's determinism contract, and CI pins it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod kernels;
pub mod metrics;
pub mod report;
pub mod sim;
pub mod trace;

pub use alloc::{AllocStats, PartitionAllocator};
pub use kernels::{ExecEnv, Kernel, KernelRun, StencilComm};
pub use metrics::{fnv1a, FleetMetrics, HistSummary};
pub use report::{compare, SchedDoc, SweepPoint, SCHED_SCHEMA};
pub use sim::{run_trace, JobOutcome, KernelCache, SchedRun, SimParams};
pub use trace::{GenParams, Job, Trace};
