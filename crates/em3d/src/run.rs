//! The six EM3D versions and the Figure 9 sweep.
//!
//! All versions compute bit-identical values (verified against a host
//! reference on every run); they differ only in *how* remote H/E values
//! reach the consumer, which is the whole point of the study.

use crate::graph::{Em3dGraph, Em3dParams, Endpoint};
use splitc::{GlobalPtr, RecEvent, SplitC};
use std::collections::HashMap;
use t3d_machine::{EngineMode, MachineConfig, OpStats, PerfMode, PerfReport, PhaseDriver};

/// Which optimization level to run (Section 8, in paper order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Version {
    /// Blocking read per edge, duplicates re-fetched.
    Simple,
    /// Ghost nodes + separated phases (blocking ghost fill).
    Bundle,
    /// Bundle plus unrolled/software-pipelined compute.
    Unroll,
    /// Ghost fill pipelined with split-phase gets.
    Get,
    /// Producers push ghost values with puts.
    Put,
    /// Per-destination gather + one bulk transfer per source.
    Bulk,
    /// Extension beyond the paper's six: message-driven execution —
    /// producers push with one-way signaling stores and consumers wait
    /// with `storeSync`, eliding the global barrier (Section 7.1's
    /// second completion style).
    StoreSync,
}

impl Version {
    /// The paper's six versions, in paper order.
    pub fn paper() -> [Version; 6] {
        [
            Version::Simple,
            Version::Bundle,
            Version::Unroll,
            Version::Get,
            Version::Put,
            Version::Bulk,
        ]
    }

    /// All versions including the message-driven extension.
    pub fn all() -> [Version; 7] {
        [
            Version::Simple,
            Version::Bundle,
            Version::Unroll,
            Version::Get,
            Version::Put,
            Version::Bulk,
            Version::StoreSync,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Version::Simple => "Simple",
            Version::Bundle => "Bundle",
            Version::Unroll => "Unroll",
            Version::Get => "Get",
            Version::Put => "Put",
            Version::Bulk => "Bulk",
            Version::StoreSync => "StoreSync",
        }
    }

    /// Per-edge loop overhead (cycles) of the compute phase. `Simple`
    /// pays naive gcc codegen; `Bundle` separates communication from
    /// computation, which alone improves the generated loop; the
    /// remaining versions add unrolling and software pipelining.
    fn loop_cy(self) -> u64 {
        match self {
            Version::Simple => 20,
            Version::Bundle => 14,
            _ => 8,
        }
    }
}

/// Cycles charged for the two floating-point operations per edge (the
/// multiply-add chain is not dual-issued with the loads on the 21064).
const FLOP_CY: u64 = 24;
/// Per-node bookkeeping (index load, final store setup).
const NODE_CY: u64 = 10;

/// Result of one EM3D run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Em3dResult {
    /// Average time per edge, microseconds (the Figure 9 y-axis).
    pub us_per_edge: f64,
    /// Total edges processed per PE over the measured steps.
    pub edges: u64,
    /// Elapsed virtual cycles over the measured steps.
    pub cycles: u64,
    /// Machine-wide operation counters over the measured steps (the
    /// communication breakdown behind the curve).
    pub ops: OpStats,
    /// FNV-1a hash of the per-PE virtual clocks at the end of the
    /// measured steps (before the verification fence) — a determinism
    /// fingerprint: two runs agree on every node's timing iff the
    /// hashes match.
    pub clock_fnv: u64,
    /// FNV-1a checksum over the settled working set and virtual clocks
    /// after the post-measurement fence (via `Machine::snapshot_region`)
    /// — the state fingerprint the throughput bench gates on, so a
    /// fast-but-wrong engine fails the run.
    pub mem_fnv: u64,
}

/// One source's contiguous slice of a consumer's ghost region.
#[derive(Debug, Clone)]
struct BulkRegion {
    src: u32,
    first_slot: u64,
    /// H/E indices at the source, in slot order.
    indices: Vec<u32>,
    /// Byte offset of this slice in the source's send buffer.
    src_off: u64,
}

/// Communication plan for one half step (E-update or H-update).
#[derive(Debug, Clone)]
struct HalfPlan {
    /// Consumer PE -> endpoint -> ghost slot.
    slot_of: Vec<HashMap<Endpoint, u64>>,
    /// Consumer PE -> regions grouped by source.
    regions: Vec<Vec<BulkRegion>>,
    /// Producer PE -> (consumer, my index, consumer slot).
    push_list: Vec<Vec<(u32, u32, u64)>>,
    /// Producer PE -> (consumer, my send-buffer byte offset, indices).
    gather_list: Vec<Vec<(u32, u64, Vec<u32>)>>,
}

impl HalfPlan {
    fn build(deps: &[Vec<Vec<Endpoint>>], nprocs: u32) -> Self {
        let n = nprocs as usize;
        let mut slot_of = vec![HashMap::new(); n];
        let mut regions: Vec<Vec<BulkRegion>> = vec![Vec::new(); n];
        for c in 0..n {
            // Unique remote endpoints, grouped by source PE, first-seen
            // order within each source.
            let mut per_src: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut seen = std::collections::HashSet::new();
            for node in &deps[c] {
                for ep in node {
                    if ep.pe as usize != c && seen.insert(*ep) {
                        per_src[ep.pe as usize].push(ep.idx);
                    }
                }
            }
            let mut slot = 0u64;
            for (s, indices) in per_src.into_iter().enumerate() {
                if indices.is_empty() {
                    continue;
                }
                for (k, idx) in indices.iter().enumerate() {
                    slot_of[c].insert(
                        Endpoint {
                            pe: s as u32,
                            idx: *idx,
                        },
                        slot + k as u64,
                    );
                }
                regions[c].push(BulkRegion {
                    src: s as u32,
                    first_slot: slot,
                    src_off: 0, // fixed up below
                    indices: indices.clone(),
                });
                slot += indices.len() as u64;
            }
        }
        // Send-buffer offsets at each source: consumers in PE order.
        let mut send_cursor = vec![0u64; n];
        for consumer_regions in &mut regions {
            for r in consumer_regions.iter_mut() {
                r.src_off = send_cursor[r.src as usize];
                send_cursor[r.src as usize] += r.indices.len() as u64 * 8;
            }
        }
        // Producer-side views.
        let mut push_list: Vec<Vec<(u32, u32, u64)>> = vec![Vec::new(); n];
        let mut gather_list: Vec<Vec<(u32, u64, Vec<u32>)>> = vec![Vec::new(); n];
        for (c, consumer_regions) in regions.iter().enumerate() {
            for r in consumer_regions {
                for (k, idx) in r.indices.iter().enumerate() {
                    push_list[r.src as usize].push((c as u32, *idx, r.first_slot + k as u64));
                }
                gather_list[r.src as usize].push((c as u32, r.src_off, r.indices.clone()));
            }
        }
        HalfPlan {
            slot_of,
            regions,
            push_list,
            gather_list,
        }
    }
}

/// Symmetric memory layout.
#[derive(Debug, Clone, Copy)]
struct Layout {
    e_vals: u64,
    h_vals: u64,
    e_w: u64,
    h_w: u64,
    /// Adjacency lists: one packed endpoint word per edge, loaded during
    /// the compute phase exactly as the pointer-based graph walk does.
    e_adj: u64,
    h_adj: u64,
    ghost_h: u64,
    ghost_e: u64,
    send: u64,
}

fn initial_e(p: usize, i: usize) -> f64 {
    (p as f64 * 1000.0 + i as f64) * 1.0e-3 + 1.0
}

fn initial_h(p: usize, i: usize) -> f64 {
    (p as f64 * 1000.0 + i as f64) * 2.0e-3 + 2.0
}

fn weight(j: usize) -> f64 {
    1.0 / (j as f64 + 2.0)
}

fn pack_endpoint(ep: Endpoint) -> u64 {
    ((ep.pe as u64) << 32) | ep.idx as u64
}

/// Host reference: runs `steps` leapfrog steps and returns the final E
/// and H values per PE.
#[allow(clippy::needless_range_loop)] // index-parallel updates read clearest
fn reference(g: &Em3dGraph, steps: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let n = g.nprocs as usize;
    let npp = g.params.nodes_per_pe;
    let mut e: Vec<Vec<f64>> = (0..n)
        .map(|p| (0..npp).map(|i| initial_e(p, i)).collect())
        .collect();
    let mut h: Vec<Vec<f64>> = (0..n)
        .map(|p| (0..npp).map(|i| initial_h(p, i)).collect())
        .collect();
    for _ in 0..steps {
        let mut e2 = e.clone();
        for p in 0..n {
            for i in 0..npp {
                let mut acc = 0.0;
                for (j, ep) in g.e_deps[p][i].iter().enumerate() {
                    acc += weight(j) * h[ep.pe as usize][ep.idx as usize];
                }
                e2[p][i] = acc;
            }
        }
        e = e2;
        let mut h2 = h.clone();
        for p in 0..n {
            for i in 0..npp {
                let mut acc = 0.0;
                for (j, ep) in g.h_deps[p][i].iter().enumerate() {
                    acc += weight(j) * e[ep.pe as usize][ep.idx as usize];
                }
                h2[p][i] = acc;
            }
        }
        h = h2;
    }
    (e, h)
}

/// Fills the ghost region for one half step on one node, using the
/// version's communication mechanism.
#[allow(clippy::too_many_arguments)]
fn fill_ghosts(
    ctx: &mut splitc::ScCtx<'_>,
    version: Version,
    plan: &HalfPlan,
    vals_off: u64,
    ghost_off: u64,
    send_off: u64,
    phase: CommPhase,
) {
    let pe = ctx.pe();
    match (version, phase) {
        (Version::Bundle | Version::Unroll, CommPhase::Pull) => {
            for regions in &plan.regions[pe] {
                for (k, idx) in regions.indices.iter().enumerate() {
                    let gp = GlobalPtr::new(regions.src, vals_off + *idx as u64 * 8);
                    let v = ctx.read_u64(gp);
                    ctx.ops()
                        .st8(pe, ghost_off + (regions.first_slot + k as u64) * 8, v);
                }
            }
        }
        (Version::Get, CommPhase::Pull) => {
            for regions in &plan.regions[pe] {
                for (k, idx) in regions.indices.iter().enumerate() {
                    let gp = GlobalPtr::new(regions.src, vals_off + *idx as u64 * 8);
                    ctx.get(ghost_off + (regions.first_slot + k as u64) * 8, gp);
                }
            }
            ctx.sync();
        }
        (Version::Put, CommPhase::Push) => {
            for &(consumer, my_idx, slot) in &plan.push_list[pe] {
                let v = ctx.ops().ld8(pe, vals_off + my_idx as u64 * 8);
                ctx.put(GlobalPtr::new(consumer, ghost_off + slot * 8), v);
            }
            ctx.sync();
        }
        (Version::StoreSync, CommPhase::Push) => {
            // One-way signaling stores: no acknowledgement wait, just a
            // fence so everything leaves the processor (and gets its
            // arrival logged at the consumers).
            for &(consumer, my_idx, slot) in &plan.push_list[pe] {
                let v = ctx.ops().ld8(pe, vals_off + my_idx as u64 * 8);
                ctx.store_u64(GlobalPtr::new(consumer, ghost_off + slot * 8), v);
            }
            ctx.ops().memory_barrier(pe);
        }
        (Version::StoreSync, CommPhase::Pull) => {
            // Message-driven completion: wait for exactly the ghost
            // bytes this half step owes us.
            let expected: u64 = plan.regions[pe]
                .iter()
                .map(|r| r.indices.len() as u64 * 8)
                .sum();
            ctx.store_sync(expected);
        }
        (Version::Bulk, CommPhase::Push) => {
            // Gather values destined for each consumer into the send
            // buffer (local copies).
            for (_, src_off, indices) in &plan.gather_list[pe] {
                for (k, idx) in indices.iter().enumerate() {
                    let v = ctx.ops().ld8(pe, vals_off + *idx as u64 * 8);
                    ctx.ops().st8(pe, send_off + src_off + k as u64 * 8, v);
                }
            }
            ctx.ops().memory_barrier(pe);
        }
        (Version::Bulk, CommPhase::Pull) => {
            for region in &plan.regions[pe] {
                let bytes = region.indices.len() as u64 * 8;
                ctx.bulk_get(
                    ghost_off + region.first_slot * 8,
                    GlobalPtr::new(region.src, send_off + region.src_off),
                    bytes,
                );
            }
            ctx.sync();
        }
        _ => {}
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CommPhase {
    Push,
    Pull,
}

/// One compute half step on one node: update `dst_vals` from neighbour
/// values (`src_vals` locally, ghosts or blocking reads remotely).
#[allow(clippy::too_many_arguments)]
fn compute_half(
    ctx: &mut splitc::ScCtx<'_>,
    version: Version,
    deps: &[Vec<Endpoint>],
    plan: &HalfPlan,
    dst_vals: u64,
    src_vals: u64,
    weights: u64,
    adj: u64,
    ghost_off: u64,
) {
    let pe = ctx.pe();
    for (i, node) in deps.iter().enumerate() {
        let mut acc = 0.0f64;
        ctx.advance(NODE_CY);
        for (j, ep) in node.iter().enumerate() {
            // The graph is pointer-based: each edge costs a load of the
            // neighbour's (packed) global pointer from the edge list.
            let packed = ctx.ops().ld8(pe, adj + (i * node.len() + j) as u64 * 8);
            debug_assert_eq!(packed, pack_endpoint(*ep), "adjacency list layout");
            let w = f64::from_bits(ctx.ops().ld8(pe, weights + (i * node.len() + j) as u64 * 8));
            let v = if ep.pe as usize == pe {
                f64::from_bits(ctx.ops().ld8(pe, src_vals + ep.idx as u64 * 8))
            } else if version == Version::Simple {
                f64::from_bits(ctx.read_u64(GlobalPtr::new(ep.pe, src_vals + ep.idx as u64 * 8)))
            } else {
                let slot = plan.slot_of[pe][ep];
                f64::from_bits(ctx.ops().ld8(pe, ghost_off + slot * 8))
            };
            acc += w * v;
            ctx.advance(FLOP_CY + version.loop_cy());
        }
        ctx.ops().st8(pe, dst_vals + i as u64 * 8, acc.to_bits());
    }
}

/// Runs one EM3D version on `nprocs` simulated processors and returns
/// the timing result. Values are verified against a host reference —
/// every version must compute the same answer.
///
/// Phases execute through the sharded engine, with the sequential or
/// parallel driver chosen by the `T3D_PAR` environment variable (see
/// [`PhaseDriver::from_env`]). Results are bit-identical under every
/// driver.
///
/// # Panics
///
/// Panics if the simulated values diverge from the reference (a bug in
/// the runtime under test, which is the point of the check).
pub fn run_version(nprocs: u32, params: Em3dParams, version: Version) -> Em3dResult {
    run_version_with(PhaseDriver::from_env(), nprocs, params, version)
}

/// [`run_version`] with an explicit phase driver ([`PhaseDriver::Seq`]
/// is the determinism oracle for [`PhaseDriver::Par`]).
pub fn run_version_with(
    driver: PhaseDriver,
    nprocs: u32,
    params: Em3dParams,
    version: Version,
) -> Em3dResult {
    run_version_inner(
        driver,
        EngineMode::from_env(),
        nprocs,
        params,
        version,
        false,
        false,
        false,
    )
    .0
}

/// [`run_version_with`] pinning the time-advance engine explicitly —
/// the in-process cross-engine differential oracle
/// ([`EngineMode::Cycle`] checks [`EngineMode::Event`]).
pub fn run_version_engine(
    driver: PhaseDriver,
    engine: EngineMode,
    nprocs: u32,
    params: Em3dParams,
    version: Version,
) -> Em3dResult {
    run_version_inner(driver, engine, nprocs, params, version, false, false, false).0
}

/// [`run_version_profiled`] pinning the time-advance engine explicitly,
/// so attribution ledgers can be compared across engines in one
/// process.
pub fn run_version_profiled_engine(
    driver: PhaseDriver,
    engine: EngineMode,
    nprocs: u32,
    params: Em3dParams,
    version: Version,
) -> (Em3dResult, PerfReport) {
    let (r, p, _) = run_version_inner(driver, engine, nprocs, params, version, true, false, false);
    (r, p.expect("profiling was requested"))
}

/// [`run_version_profiled_engine`] with the opt-in contention models
/// enabled (target-shell queueing plus per-link occupancy on every
/// dimension-order route, as in
/// [`MachineConfig::t3d_link_contended`]). The contended arm of the
/// `t3d-perf scale` sweep; values still verify against the host
/// reference — contention reshapes time, never data.
pub fn run_version_profiled_contended(
    driver: PhaseDriver,
    engine: EngineMode,
    nprocs: u32,
    params: Em3dParams,
    version: Version,
) -> (Em3dResult, PerfReport) {
    let (r, p, _) = run_version_inner(driver, engine, nprocs, params, version, true, false, true);
    (r, p.expect("profiling was requested"))
}

/// [`run_version_with`], with op recording: every runtime primitive the
/// version issues (plus phase and barrier markers) is captured as
/// per-PE [`RecEvent`] streams, the input `t3d-lint` analyzes. The
/// result is bit-identical to an unrecorded run — recording is pure
/// observation.
pub fn run_version_recorded(
    driver: PhaseDriver,
    nprocs: u32,
    params: Em3dParams,
    version: Version,
) -> (Em3dResult, Vec<Vec<RecEvent>>) {
    let (r, _, log) = run_version_inner(
        driver,
        EngineMode::from_env(),
        nprocs,
        params,
        version,
        false,
        true,
        false,
    );
    (r, log)
}

/// [`run_version_with`], with cycle attribution: the measured steps run
/// under [`PerfMode::Counters`] (rebased after the warm-up step, so the
/// report covers exactly the timed region), with the comm and compute
/// halves marked as named phases. Attribution is pure observation — the
/// returned [`Em3dResult`] is bit-identical to an unprofiled run.
pub fn run_version_profiled(
    driver: PhaseDriver,
    nprocs: u32,
    params: Em3dParams,
    version: Version,
) -> (Em3dResult, PerfReport) {
    let (r, p, _) = run_version_inner(
        driver,
        EngineMode::from_env(),
        nprocs,
        params,
        version,
        true,
        false,
        false,
    );
    (r, p.expect("profiling was requested"))
}

#[allow(clippy::too_many_arguments)]
fn run_version_inner(
    driver: PhaseDriver,
    engine: EngineMode,
    nprocs: u32,
    params: Em3dParams,
    version: Version,
    profile: bool,
    record: bool,
    contended: bool,
) -> (Em3dResult, Option<PerfReport>, Vec<Vec<RecEvent>>) {
    let g = Em3dGraph::generate(params, nprocs);
    let mut cfg = MachineConfig::t3d_with_mem(nprocs, 4 * 1024 * 1024);
    cfg.engine = engine;
    if contended {
        cfg.contention = true;
        cfg.link_contention = true;
    }
    let mut sc = SplitC::new(cfg);
    if record {
        sc.record_ops(true);
    }
    let npp = params.nodes_per_pe as u64;
    let deg = params.degree as u64;
    let layout = Layout {
        e_vals: sc.alloc(npp * 8, 8),
        h_vals: sc.alloc(npp * 8, 8),
        e_w: sc.alloc(npp * deg * 8, 8),
        h_w: sc.alloc(npp * deg * 8, 8),
        e_adj: sc.alloc(npp * deg * 8, 8),
        h_adj: sc.alloc(npp * deg * 8, 8),
        ghost_h: sc.alloc(npp * deg * 8, 8),
        ghost_e: sc.alloc(npp * deg * 8, 8),
        send: sc.alloc(npp * deg * 8, 8),
    };
    let e_plan = HalfPlan::build(&g.e_deps, nprocs); // H values consumed by E update
    let h_plan = HalfPlan::build(&g.h_deps, nprocs);

    // Initialize values, weights and the in-memory adjacency lists.
    for p in 0..nprocs as usize {
        for i in 0..params.nodes_per_pe {
            sc.machine()
                .poke8(p, layout.e_vals + i as u64 * 8, initial_e(p, i).to_bits());
            sc.machine()
                .poke8(p, layout.h_vals + i as u64 * 8, initial_h(p, i).to_bits());
            for j in 0..params.degree {
                let w = weight(j).to_bits();
                let off = (i * params.degree + j) as u64 * 8;
                sc.machine().poke8(p, layout.e_w + off, w);
                sc.machine().poke8(p, layout.h_w + off, w);
                let e_ep = g.e_deps[p][i][j];
                let h_ep = g.h_deps[p][i][j];
                sc.machine()
                    .poke8(p, layout.e_adj + off, pack_endpoint(e_ep));
                sc.machine()
                    .poke8(p, layout.h_adj + off, pack_endpoint(h_ep));
            }
        }
    }

    // Phase markers for the profiler (no-ops unless profiling is on).
    let mark = |sc: &mut SplitC, label: &str| {
        if profile {
            sc.machine().perf_begin_phase(label);
        }
    };
    let step = |sc: &mut SplitC| {
        if version == Version::StoreSync {
            // Message-driven: no global barriers inside the step.
            mark(sc, "comm.e");
            sc.par_phase_with(driver, |ctx| {
                fill_ghosts(
                    ctx,
                    version,
                    &e_plan,
                    layout.h_vals,
                    layout.ghost_h,
                    layout.send,
                    CommPhase::Push,
                )
            });
            mark(sc, "compute.e");
            sc.par_phase_with(driver, |ctx| {
                fill_ghosts(
                    ctx,
                    version,
                    &e_plan,
                    layout.h_vals,
                    layout.ghost_h,
                    layout.send,
                    CommPhase::Pull,
                );
                compute_half(
                    ctx,
                    version,
                    &g.e_deps[ctx.pe()],
                    &e_plan,
                    layout.e_vals,
                    layout.h_vals,
                    layout.e_w,
                    layout.e_adj,
                    layout.ghost_h,
                );
            });
            mark(sc, "comm.h");
            sc.par_phase_with(driver, |ctx| {
                fill_ghosts(
                    ctx,
                    version,
                    &h_plan,
                    layout.e_vals,
                    layout.ghost_e,
                    layout.send,
                    CommPhase::Push,
                )
            });
            mark(sc, "compute.h");
            sc.par_phase_with(driver, |ctx| {
                fill_ghosts(
                    ctx,
                    version,
                    &h_plan,
                    layout.e_vals,
                    layout.ghost_e,
                    layout.send,
                    CommPhase::Pull,
                );
                compute_half(
                    ctx,
                    version,
                    &g.h_deps[ctx.pe()],
                    &h_plan,
                    layout.h_vals,
                    layout.e_vals,
                    layout.h_w,
                    layout.h_adj,
                    layout.ghost_e,
                );
            });
            return;
        }
        // E half: H values flow to E consumers.
        mark(sc, "comm.e");
        if matches!(version, Version::Put | Version::Bulk) {
            sc.par_phase_with(driver, |ctx| {
                fill_ghosts(
                    ctx,
                    version,
                    &e_plan,
                    layout.h_vals,
                    layout.ghost_h,
                    layout.send,
                    CommPhase::Push,
                )
            });
            sc.barrier();
        }
        sc.par_phase_with(driver, |ctx| {
            fill_ghosts(
                ctx,
                version,
                &e_plan,
                layout.h_vals,
                layout.ghost_h,
                layout.send,
                CommPhase::Pull,
            )
        });
        sc.barrier();
        mark(sc, "compute.e");
        sc.par_phase_with(driver, |ctx| {
            compute_half(
                ctx,
                version,
                &g.e_deps[ctx.pe()],
                &e_plan,
                layout.e_vals,
                layout.h_vals,
                layout.e_w,
                layout.e_adj,
                layout.ghost_h,
            )
        });
        sc.barrier();
        // H half: E values flow to H consumers.
        mark(sc, "comm.h");
        if matches!(version, Version::Put | Version::Bulk) {
            sc.par_phase_with(driver, |ctx| {
                fill_ghosts(
                    ctx,
                    version,
                    &h_plan,
                    layout.e_vals,
                    layout.ghost_e,
                    layout.send,
                    CommPhase::Push,
                )
            });
            sc.barrier();
        }
        sc.par_phase_with(driver, |ctx| {
            fill_ghosts(
                ctx,
                version,
                &h_plan,
                layout.e_vals,
                layout.ghost_e,
                layout.send,
                CommPhase::Pull,
            )
        });
        sc.barrier();
        mark(sc, "compute.h");
        sc.par_phase_with(driver, |ctx| {
            compute_half(
                ctx,
                version,
                &g.h_deps[ctx.pe()],
                &h_plan,
                layout.h_vals,
                layout.e_vals,
                layout.h_w,
                layout.h_adj,
                layout.ghost_e,
            )
        });
        sc.barrier();
    };

    // Warm-up step, then measured steps.
    step(&mut sc);
    for pe in 0..nprocs as usize {
        sc.machine().clear_op_stats(pe);
    }
    if profile {
        // Rebase attribution here so the report covers exactly the
        // measured region (the warm-up step is excluded).
        sc.machine().set_perf_mode(PerfMode::Counters);
    }
    let t0 = sc.max_clock();
    for _ in 0..params.steps {
        step(&mut sc);
    }
    let report = if profile {
        sc.machine().perf_end_phase();
        Some(sc.machine_ref().perf())
    } else {
        None
    };
    let cycles = sc.max_clock() - t0;
    let clock_fnv = (0..nprocs as usize)
        .map(|pe| sc.machine_ref().clock(pe))
        .fold(0xcbf2_9ce4_8422_2325u64, |h, c| {
            (h ^ c).wrapping_mul(0x100_0000_01b3)
        });
    let mut ops = OpStats::default();
    for pe in 0..nprocs as usize {
        ops.accumulate(&sc.machine_ref().node(pe).ops);
    }

    // Fence everything (outside the timed region) so the verification
    // below reads settled memory — the message-driven version never
    // barriers on its own.
    sc.barrier();

    // State fingerprint over the whole working set (the send buffer is
    // the last allocation, so the region covers every layout field).
    let snap_end = layout.send + npp * deg * 8;
    let mem_fnv = sc.machine_ref().snapshot_region(0, snap_end).fnv64();

    // Verify against the host reference (warm-up + measured steps).
    let (e_ref, h_ref) = reference(&g, params.steps + 1);
    for p in 0..nprocs as usize {
        for i in 0..params.nodes_per_pe {
            let e = f64::from_bits(sc.machine().peek8(p, layout.e_vals + i as u64 * 8));
            let h = f64::from_bits(sc.machine().peek8(p, layout.h_vals + i as u64 * 8));
            assert_eq!(
                e,
                e_ref[p][i],
                "{}: E[{p}][{i}] diverged from reference",
                version.label()
            );
            assert_eq!(
                h,
                h_ref[p][i],
                "{}: H[{p}][{i}] diverged from reference",
                version.label()
            );
        }
    }

    // Negative sanitizer corpus: every EM3D version is properly
    // synchronized, so a run with `T3D_SAN` set must report nothing.
    if let Some(report) = sc.san_report() {
        assert!(
            report.is_empty(),
            "{}: sanitizer flagged a correct program:\n{}",
            version.label(),
            report.render_table()
        );
    }

    let edges = params.edges_per_step_per_pe() * params.steps as u64;
    let op_log = if record { sc.take_op_log() } else { Vec::new() };
    (
        Em3dResult {
            us_per_edge: cycles as f64 * 6.666_666_666_666_667e-3 / edges as f64,
            edges,
            cycles,
            ops,
            clock_fnv,
            mem_fnv,
        },
        report,
        op_log,
    )
}

/// Scaling study: µs per edge as the machine grows at fixed per-PE
/// problem size (the paper's "scaling both problem and machine size"
/// framing). Returns `(pes, us/edge)` per machine size.
pub fn scaling_sweep(pes_list: &[u32], base: Em3dParams, version: Version) -> Vec<(u32, f64)> {
    pes_list
        .iter()
        .map(|&pes| (pes, run_version(pes, base, version).us_per_edge))
        .collect()
}

/// Figure 9: µs per edge for every version over a sweep of remote-edge
/// percentages. Returns `(version label, Vec<(pct, us/edge)>)`.
pub fn fig9_sweep(nprocs: u32, base: Em3dParams, pcts: &[f64]) -> Vec<(String, Vec<(f64, f64)>)> {
    Version::all()
        .iter()
        .map(|&v| {
            let pts = pcts
                .iter()
                .map(|&pct| {
                    let mut p = base;
                    p.pct_remote = pct;
                    (pct, run_version(nprocs, p, v).us_per_edge)
                })
                .collect();
            (v.label().to_string(), pts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const NPROCS: u32 = 4;

    #[test]
    fn all_versions_compute_the_reference_answer() {
        // run_version panics internally on divergence; exercising every
        // version at a communication-heavy setting is the assertion.
        for v in Version::all() {
            let r = run_version(NPROCS, Em3dParams::tiny(50.0), v);
            assert!(r.us_per_edge > 0.0, "{} produced a timing", v.label());
        }
    }

    #[test]
    fn multi_step_runs_stay_correct() {
        // Three leapfrog steps: the reference check inside run_version
        // verifies every intermediate half-step fed the next correctly.
        let mut p = Em3dParams::tiny(30.0);
        p.steps = 3;
        for v in [Version::Simple, Version::Put, Version::StoreSync] {
            let r = run_version(NPROCS, p, v);
            assert!(r.edges == p.edges_per_step_per_pe() * 3);
        }
    }

    #[test]
    fn local_only_all_optimized_versions_tie() {
        let base = run_version(NPROCS, Em3dParams::tiny(0.0), Version::Unroll).us_per_edge;
        for v in [Version::Get, Version::Put, Version::Bulk] {
            let r = run_version(NPROCS, Em3dParams::tiny(0.0), v).us_per_edge;
            assert!(
                (r - base).abs() / base < 0.05,
                "{} at 0% remote: {r:.3} vs Unroll {base:.3} us/edge",
                v.label()
            );
        }
    }

    #[test]
    fn paper_ordering_at_heavy_communication() {
        let p = Em3dParams::tiny(40.0);
        let us = |v| run_version(NPROCS, p, v).us_per_edge;
        let simple = us(Version::Simple);
        let bundle = us(Version::Bundle);
        let unroll = us(Version::Unroll);
        let get = us(Version::Get);
        let put = us(Version::Put);
        let bulk = us(Version::Bulk);
        assert!(
            bundle < simple,
            "ghost caching helps: {bundle:.3} < {simple:.3}"
        );
        assert!(
            unroll < bundle,
            "unrolling helps: {unroll:.3} < {bundle:.3}"
        );
        assert!(get < unroll, "pipelined gets help: {get:.3} < {unroll:.3}");
        assert!(put < get, "puts beat gets: {put:.3} < {get:.3}");
        assert!(bulk < put, "bulk beats puts: {bulk:.3} < {put:.3}");
    }

    #[test]
    fn op_breakdown_matches_each_versions_mechanism() {
        let p = Em3dParams::tiny(50.0);
        let simple = run_version(NPROCS, p, Version::Simple).ops;
        assert!(simple.loads_remote > 0, "Simple reads remotely per edge");
        assert_eq!(simple.fetches, 0);
        assert_eq!(simple.blts, 0);

        let get = run_version(NPROCS, p, Version::Get).ops;
        assert!(get.fetches > 0, "Get pipelines through the prefetch queue");
        assert_eq!(get.fetches, get.pops, "every fetch gets popped");

        let put = run_version(NPROCS, p, Version::Put).ops;
        assert!(put.stores_remote > 0);
        assert_eq!(put.loads_remote, 0, "Put never issues a remote read");

        let bulk = run_version(NPROCS, p, Version::Bulk).ops;
        assert!(
            bulk.fetches > 0 || bulk.blts > 0,
            "Bulk moves ghosts with prefetch loops or the BLT"
        );

        let ss = run_version(NPROCS, p, Version::StoreSync).ops;
        assert_eq!(ss.ack_waits, 0, "one-way stores never wait for acks");
    }

    #[test]
    fn store_sync_version_is_correct_and_competitive() {
        let p = Em3dParams::tiny(40.0);
        let ss = run_version(NPROCS, p, Version::StoreSync).us_per_edge;
        let put = run_version(NPROCS, p, Version::Put).us_per_edge;
        // Message-driven execution elides the global barrier; it should
        // be at least in Put's neighbourhood.
        assert!(
            ss < put * 1.15,
            "StoreSync {ss:.3} us/edge should be competitive with Put {put:.3}"
        );
    }

    #[test]
    fn weak_scaling_is_mild_for_bulk() {
        // Fixed per-PE work and remote fraction: growing the machine
        // only adds network distance, so us/edge should grow slowly.
        let sweep = scaling_sweep(&[2, 8, 32], Em3dParams::tiny(20.0), Version::Bulk);
        let (small, large) = (sweep[0].1, sweep[2].1);
        assert!(
            large < small * 1.6,
            "bulk version scales: {small:.3} at 2 PEs vs {large:.3} at 32 PEs"
        );
        // Bulk stays absolutely faster than Simple at every size, even
        // though its per-source transfers fragment as the machine grows
        // (a real effect: 31 small gets instead of 1 large one).
        let simple = scaling_sweep(&[2, 32], Em3dParams::tiny(20.0), Version::Simple);
        assert!(sweep[0].1 < simple[0].1, "Bulk wins at 2 PEs");
        assert!(sweep[2].1 < simple[1].1, "Bulk wins at 32 PEs");
    }

    #[test]
    fn cost_rises_with_remote_fraction() {
        let lo = run_version(NPROCS, Em3dParams::tiny(0.0), Version::Get).us_per_edge;
        let hi = run_version(NPROCS, Em3dParams::tiny(60.0), Version::Get).us_per_edge;
        assert!(hi > lo, "more remote edges cost more: {lo:.3} -> {hi:.3}");
    }

    #[test]
    fn simple_blows_up_with_remote_edges() {
        let local = run_version(NPROCS, Em3dParams::tiny(0.0), Version::Simple).us_per_edge;
        let remote = run_version(NPROCS, Em3dParams::tiny(60.0), Version::Simple).us_per_edge;
        assert!(
            remote > local * 2.0,
            "blocking reads dominate: {local:.3} -> {remote:.3}"
        );
    }
}
