//! EM3D on the simulated CRAY-T3D — the paper's Section 8 case study.
//!
//! EM3D models electromagnetic wave propagation on an irregular
//! bipartite graph of E and H nodes: on alternate half steps each E
//! value is replaced by a weighted sum of its neighbouring H values, and
//! vice versa. The parallel version spreads the graph over the
//! processors and represents cross-processor dependencies with global
//! pointers; the fraction of *remote edges* is the tunable communication
//! load.
//!
//! Six versions, in the paper's order of increasing sophistication:
//!
//! 1. [`Version::Simple`] — a blocking read per edge, re-fetching
//!    duplicated values.
//! 2. [`Version::Bundle`] — ghost nodes cache each unique remote value
//!    once per half step; communication and computation separate.
//! 3. [`Version::Unroll`] — the compute phase is unrolled and software
//!    pipelined.
//! 4. [`Version::Get`] — the ghost fill is pipelined with split-phase
//!    `get`s.
//! 5. [`Version::Put`] — producers *push* values into consumers' ghost
//!    slots with `put` (less overhead than `get`).
//! 6. [`Version::Bulk`] — producers gather per-destination buffers and
//!    consumers fetch them with one bulk transfer each, avoiding
//!    repeated annex set-up.
//!
//! The headline metric is average time per edge versus the percentage
//! of remote edges (Figure 9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod run;

pub use graph::{Em3dGraph, Em3dParams};
pub use run::{
    fig9_sweep, run_version, run_version_engine, run_version_profiled,
    run_version_profiled_contended, run_version_profiled_engine, run_version_recorded,
    run_version_with, Em3dResult, Version,
};
