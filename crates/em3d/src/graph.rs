//! Synthetic bipartite EM3D graphs.
//!
//! The paper's inputs: 500 nodes per processor, degree 20, with the
//! communication load scaled by the fraction of edges that cross
//! processors. The graph *structure* lives host-side (it is the
//! program's pointer structure); the *values and weights* live in
//! simulated memory and are accessed through the Split-C runtime, so
//! every cache and communication effect is charged.

use t3d_prng::Rng;

/// Graph generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Em3dParams {
    /// E (and H) nodes per processor (paper: 500).
    pub nodes_per_pe: usize,
    /// Edges per node (paper: 20).
    pub degree: usize,
    /// Percentage of edges that cross processors (0–100).
    pub pct_remote: f64,
    /// Leapfrog steps to run (each step updates E then H).
    pub steps: usize,
    /// RNG seed for the synthetic graph.
    pub seed: u64,
}

impl Em3dParams {
    /// The paper's configuration: 500 nodes of degree 20 per processor.
    pub fn paper(pct_remote: f64) -> Self {
        Em3dParams {
            nodes_per_pe: 500,
            degree: 20,
            pct_remote,
            steps: 1,
            seed: 0xE3D,
        }
    }

    /// A miniature configuration for tests.
    pub fn tiny(pct_remote: f64) -> Self {
        Em3dParams {
            nodes_per_pe: 40,
            degree: 5,
            pct_remote,
            steps: 1,
            seed: 7,
        }
    }

    /// Edges traversed per processor per full step (both halves).
    pub fn edges_per_step_per_pe(&self) -> u64 {
        2 * (self.nodes_per_pe * self.degree) as u64
    }
}

/// An edge endpoint: which processor owns the neighbour, and its index
/// in the owner's value array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// Owning processor.
    pub pe: u32,
    /// Index within the owner's E or H array.
    pub idx: u32,
}

/// The bipartite dependency structure, per processor.
#[derive(Debug, Clone)]
pub struct Em3dGraph {
    /// Parameters it was generated with.
    pub params: Em3dParams,
    /// Number of processors.
    pub nprocs: u32,
    /// `e_deps[p][i]` — the H endpoints that E node `i` on PE `p` reads.
    pub e_deps: Vec<Vec<Vec<Endpoint>>>,
    /// `h_deps[p][i]` — the E endpoints that H node `i` on PE `p` reads.
    pub h_deps: Vec<Vec<Vec<Endpoint>>>,
}

impl Em3dGraph {
    /// Generates the synthetic graph.
    ///
    /// # Panics
    ///
    /// Panics if `pct_remote` is outside 0–100, or if a remote edge is
    /// requested on a single-processor machine.
    pub fn generate(params: Em3dParams, nprocs: u32) -> Self {
        assert!(
            (0.0..=100.0).contains(&params.pct_remote),
            "pct_remote must be a percentage"
        );
        assert!(
            params.pct_remote == 0.0 || nprocs > 1,
            "remote edges need more than one processor"
        );
        let mut rng = Rng::seed_from_u64(params.seed);
        let mut gen_side = |_side: u8| {
            (0..nprocs)
                .map(|p| {
                    (0..params.nodes_per_pe)
                        .map(|_| {
                            (0..params.degree)
                                .map(|_| {
                                    let remote = rng.gen_range(0.0..100.0) < params.pct_remote;
                                    let pe = if remote {
                                        let mut t = rng.gen_range(0..nprocs - 1);
                                        if t >= p {
                                            t += 1;
                                        }
                                        t
                                    } else {
                                        p
                                    };
                                    Endpoint {
                                        pe,
                                        idx: rng.gen_range(0..params.nodes_per_pe as u32),
                                    }
                                })
                                .collect()
                        })
                        .collect()
                })
                .collect()
        };
        let e_deps = gen_side(0);
        let h_deps = gen_side(1);
        Em3dGraph {
            params,
            nprocs,
            e_deps,
            h_deps,
        }
    }

    /// Fraction of edges that actually cross processors (sanity metric).
    pub fn measured_remote_fraction(&self) -> f64 {
        let mut remote = 0u64;
        let mut total = 0u64;
        for (p, nodes) in self
            .e_deps
            .iter()
            .enumerate()
            .chain(self.h_deps.iter().enumerate())
        {
            for deps in nodes {
                for ep in deps {
                    total += 1;
                    if ep.pe as usize != p {
                        remote += 1;
                    }
                }
            }
        }
        remote as f64 / total as f64
    }

    /// Unique remote endpoints PE `p` needs for its E-update (H values),
    /// in deterministic order.
    pub fn unique_remote_h(&self, p: u32) -> Vec<Endpoint> {
        Self::unique_remote(&self.e_deps[p as usize], p)
    }

    /// Unique remote endpoints PE `p` needs for its H-update (E values).
    pub fn unique_remote_e(&self, p: u32) -> Vec<Endpoint> {
        Self::unique_remote(&self.h_deps[p as usize], p)
    }

    fn unique_remote(deps: &[Vec<Endpoint>], p: u32) -> Vec<Endpoint> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for node in deps {
            for ep in node {
                if ep.pe != p && seen.insert(*ep) {
                    out.push(*ep);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Em3dGraph::generate(Em3dParams::tiny(20.0), 4);
        let b = Em3dGraph::generate(Em3dParams::tiny(20.0), 4);
        assert_eq!(a.e_deps[0][0], b.e_deps[0][0]);
        assert_eq!(a.h_deps[3][5], b.h_deps[3][5]);
    }

    #[test]
    fn remote_fraction_tracks_parameter() {
        for pct in [0.0, 10.0, 50.0, 100.0] {
            let g = Em3dGraph::generate(Em3dParams::paper(pct), 8);
            let measured = g.measured_remote_fraction() * 100.0;
            assert!(
                (measured - pct).abs() < 3.0,
                "requested {pct}%, generated {measured:.1}%"
            );
        }
    }

    #[test]
    fn remote_edges_never_point_home() {
        let g = Em3dGraph::generate(Em3dParams::tiny(100.0), 4);
        for (p, nodes) in g.e_deps.iter().enumerate() {
            for deps in nodes {
                for ep in deps {
                    assert_ne!(ep.pe as usize, p, "100% remote graph has no local edges");
                }
            }
        }
    }

    #[test]
    fn unique_remote_deduplicates() {
        let g = Em3dGraph::generate(Em3dParams::tiny(100.0), 2);
        let uniq = g.unique_remote_h(0);
        let mut seen = std::collections::HashSet::new();
        for ep in &uniq {
            assert!(seen.insert(*ep), "duplicate endpoint in unique list");
        }
        // With 40 nodes x 5 edges onto 40 targets, duplicates are certain.
        assert!(
            uniq.len() < 200,
            "dedup actually removed something: {}",
            uniq.len()
        );
        assert!(!uniq.is_empty());
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn bad_percentage_panics() {
        Em3dGraph::generate(Em3dParams::tiny(150.0), 4);
    }
}
