//! `em3d` — run the EM3D application study from the command line.
//!
//! ```sh
//! em3d [--pes N] [--nodes N] [--degree D] [--steps S] [--seed X]
//!      [--remote P1,P2,...] [--versions V1,V2,...]
//! ```
//!
//! Defaults reproduce a reduced Figure 9; `--pes 32 --nodes 500
//! --degree 20` is the paper's configuration.

use em3d::{run_version, Em3dParams, Version};

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn parse_list(args: &[String], flag: &str, default: &str) -> Vec<String> {
    let raw = args
        .iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string());
    raw.split(',').map(str::trim).map(String::from).collect()
}

fn version_by_name(name: &str) -> Option<Version> {
    Version::all()
        .into_iter()
        .find(|v| v.label().eq_ignore_ascii_case(name))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: em3d [--pes N] [--nodes N] [--degree D] [--steps S] [--seed X]\n\
             \x20           [--remote P1,P2,...] [--versions Simple,Bundle,...]\n\
             versions: {}",
            Version::all().map(|v| v.label()).join(", ")
        );
        return;
    }
    let pes: u32 = parse_flag(&args, "--pes", 8);
    let base = Em3dParams {
        nodes_per_pe: parse_flag(&args, "--nodes", 100),
        degree: parse_flag(&args, "--degree", 10),
        pct_remote: 0.0,
        steps: parse_flag(&args, "--steps", 1),
        seed: parse_flag(&args, "--seed", 0xE3D),
    };
    let pcts: Vec<f64> = parse_list(&args, "--remote", "0,5,10,20,40")
        .iter()
        .map(|s| s.parse().expect("--remote takes numbers"))
        .collect();
    let versions: Vec<Version> = parse_list(
        &args,
        "--versions",
        "Simple,Bundle,Unroll,Get,Put,Bulk,StoreSync",
    )
    .iter()
    .map(|s| version_by_name(s).unwrap_or_else(|| panic!("unknown version `{s}`")))
    .collect();

    let show_stats = args.iter().any(|a| a == "--stats");
    println!(
        "EM3D: {pes} PEs, {} nodes/PE, degree {}, {} step(s) (us per edge)\n",
        base.nodes_per_pe, base.degree, base.steps
    );
    print!("{:>9}", "% remote");
    for v in &versions {
        print!("{:>10}", v.label());
    }
    println!();
    for &pct in &pcts {
        print!("{pct:>9.0}");
        let mut stats = Vec::new();
        for &v in &versions {
            let mut p = base;
            p.pct_remote = pct;
            let r = run_version(pes, p, v);
            print!("{:>10.3}", r.us_per_edge);
            stats.push((v, r.ops));
        }
        println!();
        if show_stats {
            for (v, ops) in stats {
                println!(
                    "          {:>10}: remote ops {} (loads {}, stores {}, fetches {}, blts {}), barriers via {} fences",
                    v.label(),
                    ops.remote_ops(),
                    ops.loads_remote,
                    ops.stores_remote,
                    ops.fetches,
                    ops.blts,
                    ops.memory_barriers,
                );
            }
        }
    }
}
