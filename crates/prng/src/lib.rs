//! A small, deterministic pseudo-random number generator.
//!
//! The workspace must build offline, so instead of pulling in `rand`
//! this crate provides the few primitives the reproduction actually
//! needs: seeding from a `u64`, uniform integers in a half-open range,
//! and uniform `f64` in a half-open range. The generator is
//! xoshiro256** seeded through splitmix64 — the standard public-domain
//! construction — which is more than adequate for synthetic graph
//! generation and randomized tests. It is **not** cryptographic.
//!
//! Determinism contract: for a given seed, the sequence of values is
//! fixed forever. Graph generators and tests rely on this, so any
//! change to the algorithm is a breaking change to recorded results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A seedable xoshiro256** generator.
///
/// # Example
///
/// ```
/// use t3d_prng::Rng;
///
/// let mut rng = Rng::seed_from_u64(7);
/// let die = rng.gen_range(1u64..7);
/// assert!((1..7).contains(&die));
/// let pct = rng.gen_range(0.0..100.0);
/// assert!((0.0..100.0).contains(&pct));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Expands a 64-bit seed into the full generator state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, bound)` (Lemire-style without bias
    /// correction beyond rejection; `bound` must be non-zero).
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound != 0, "empty range");
        // Rejection sampling over the largest multiple of `bound`.
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// A uniform value in the half-open range, matching the call shape
    /// of `rand`'s `gen_range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high bits → the standard [0,1) double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Runs `n` seeded cases through `f`, passing the case index and a
    /// generator.
    ///
    /// All cases draw from *one* generator seeded once from `seed`, so
    /// the value stream is identical to the hand-written loop this
    /// helper replaces (`let mut rng = Rng::seed_from_u64(seed); for
    /// case in 0..n { ... }`). Randomized tests use it to keep their
    /// recorded behaviour while losing the boilerplate.
    ///
    /// # Example
    ///
    /// ```
    /// use t3d_prng::Rng;
    ///
    /// let mut sum = 0u64;
    /// Rng::cases(7, 16, |case, rng| {
    ///     assert!(case < 16);
    ///     sum += rng.gen_range(0u64..10);
    /// });
    /// assert!(sum < 160);
    /// ```
    pub fn cases(seed: u64, n: usize, mut f: impl FnMut(usize, &mut Rng)) {
        let mut rng = Rng::seed_from_u64(seed);
        for case in 0..n {
            f(case, &mut rng);
        }
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "empty choice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

/// Types that can be drawn uniformly from a half-open `Range`.
pub trait SampleRange: Sized {
    /// Draws one value from `range`.
    fn sample(rng: &mut Rng, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Rng, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as u64) - (range.start as u64);
                range.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize);

impl SampleRange for f64 {
    fn sample(rng: &mut Rng, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let v = range.start + rng.gen_f64() * (range.end - range.start);
        // Guard against round-up to the excluded endpoint.
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = Rng::seed_from_u64(0xE3D);
        let mut b = Rng::seed_from_u64(0xE3D);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_hit_everything() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.gen_range(0u32..6);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range drawn");
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..11);
            assert_eq!(v, 10, "single-element range");
        }
    }

    #[test]
    fn f64_range_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(3);
        let n = 20_000;
        let mut below_half = 0;
        for _ in 0..n {
            let v = rng.gen_range(0.0..100.0);
            assert!((0.0..100.0).contains(&v));
            if v < 50.0 {
                below_half += 1;
            }
        }
        let frac = below_half as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "median near 50: {frac}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(5u32..5);
    }

    #[test]
    fn cases_matches_the_manual_loop() {
        // `cases` must preserve the exact stream of the loop it replaces.
        let mut manual = Vec::new();
        let mut rng = Rng::seed_from_u64(0xABC);
        for case in 0..10 {
            manual.push((case, rng.next_u64()));
        }
        let mut helper = Vec::new();
        Rng::cases(0xABC, 10, |case, rng| helper.push((case, rng.next_u64())));
        assert_eq!(manual, helper);
    }

    #[test]
    fn pick_draws_every_element() {
        let mut rng = Rng::seed_from_u64(5);
        let items = [10u32, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = *rng.pick(&items);
            seen[(v / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty choice")]
    fn pick_from_empty_panics() {
        Rng::seed_from_u64(0).pick::<u64>(&[]);
    }

    #[test]
    fn chance_tracks_probability() {
        let mut rng = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "P(hit) near 0.25: {frac}");
        assert!(!Rng::seed_from_u64(0).chance(0.0));
        assert!(Rng::seed_from_u64(0).chance(1.1));
    }
}
