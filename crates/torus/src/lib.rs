//! 3-D torus interconnect model for the CRAY-T3D reproduction.
//!
//! The T3D network is a 3-D torus of processing-element pairs with
//! dimension-order (X then Y then Z) routing. The paper measures the
//! network contribution to remote latency as "roughly a 13 to 20 ns
//! (2–3 cycle) cost per hop" (Section 4.2); all of its other probes run
//! between *adjacent* nodes. This crate provides the geometry: node ↔
//! coordinate mapping, minimal wraparound hop counts, the dimension-order
//! route itself, and per-link traffic accounting used by the bulk-transfer
//! instrumentation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod subcube;
pub mod traffic;

pub use subcube::SubCube;
pub use traffic::TrafficMatrix;

/// A position in the torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Coord {
    /// X position.
    pub x: u32,
    /// Y position.
    pub y: u32,
    /// Z position.
    pub z: u32,
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{},{})", self.x, self.y, self.z)
    }
}

/// Torus geometry and per-hop cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TorusConfig {
    /// Extent in each dimension.
    pub dims: (u32, u32, u32),
    /// Network cost per hop per direction, in cycles (the paper measures
    /// 2–3; we use 2.5).
    pub hop_cy: f64,
}

impl TorusConfig {
    /// A torus with near-cubic dimensions for `nodes` processors.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn for_nodes(nodes: u32) -> Self {
        assert!(nodes > 0, "torus must have at least one node");
        // Factor into three near-equal power-of-two-friendly dimensions.
        let mut dims = (1u32, 1u32, 1u32);
        let mut rem = nodes;
        let mut axis = 0;
        while rem > 1 {
            let f = smallest_factor(rem);
            match axis % 3 {
                0 => dims.0 *= f,
                1 => dims.1 *= f,
                _ => dims.2 *= f,
            }
            rem /= f;
            axis += 1;
        }
        TorusConfig { dims, hop_cy: 2.5 }
    }
}

fn smallest_factor(n: u32) -> u32 {
    for f in 2..=n {
        if n.is_multiple_of(f) {
            return f;
        }
    }
    n
}

impl Default for TorusConfig {
    fn default() -> Self {
        TorusConfig {
            dims: (2, 1, 1),
            hop_cy: 2.5,
        }
    }
}

/// The torus: geometry plus routing.
///
/// # Example
///
/// ```
/// use t3d_torus::{Torus, TorusConfig};
///
/// let t = Torus::new(TorusConfig { dims: (4, 4, 2), hop_cy: 2.5 });
/// assert_eq!(t.nodes(), 32);
/// assert_eq!(t.hops(0, 1), 1);
/// // Wraparound: node 0 to node 3 along a ring of 4 is one hop the
/// // other way.
/// assert_eq!(t.hops(0, 3), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Torus {
    cfg: TorusConfig,
}

impl Torus {
    /// Creates a torus.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(cfg: TorusConfig) -> Self {
        assert!(
            cfg.dims.0 > 0 && cfg.dims.1 > 0 && cfg.dims.2 > 0,
            "all torus dimensions must be positive"
        );
        Torus { cfg }
    }

    /// The configuration this torus was built with.
    pub fn config(&self) -> &TorusConfig {
        &self.cfg
    }

    /// Total number of nodes.
    pub fn nodes(&self) -> u32 {
        self.cfg.dims.0 * self.cfg.dims.1 * self.cfg.dims.2
    }

    /// Coordinate of a node id (X varies fastest).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coord_of(&self, node: u32) -> Coord {
        assert!(node < self.nodes(), "node {node} out of range");
        let (nx, ny, _) = self.cfg.dims;
        Coord {
            x: node % nx,
            y: (node / nx) % ny,
            z: node / (nx * ny),
        }
    }

    /// Node id of a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn node_of(&self, c: Coord) -> u32 {
        let (nx, ny, nz) = self.cfg.dims;
        assert!(
            c.x < nx && c.y < ny && c.z < nz,
            "coordinate {c} out of range"
        );
        c.x + nx * (c.y + ny * c.z)
    }

    fn ring_dist(extent: u32, a: u32, b: u32) -> u32 {
        let d = a.abs_diff(b);
        d.min(extent - d)
    }

    /// Minimal hop count between two nodes (dimension-order routing on a
    /// torus is minimal in each dimension independently).
    pub fn hops(&self, a: u32, b: u32) -> u32 {
        let ca = self.coord_of(a);
        let cb = self.coord_of(b);
        let (nx, ny, nz) = self.cfg.dims;
        Self::ring_dist(nx, ca.x, cb.x)
            + Self::ring_dist(ny, ca.y, cb.y)
            + Self::ring_dist(nz, ca.z, cb.z)
    }

    /// One-way network cost between two nodes, in (fractional) cycles.
    pub fn one_way_cy(&self, a: u32, b: u32) -> f64 {
        self.hops(a, b) as f64 * self.cfg.hop_cy
    }

    /// Round-trip network cost between two nodes, in (fractional) cycles.
    pub fn round_trip_cy(&self, a: u32, b: u32) -> f64 {
        2.0 * self.one_way_cy(a, b)
    }

    /// The dimension-order route from `a` to `b`, inclusive of both
    /// endpoints. X is resolved first, then Y, then Z, taking the shorter
    /// way around each ring.
    pub fn route(&self, a: u32, b: u32) -> Vec<Coord> {
        let mut cur = self.coord_of(a);
        let dst = self.coord_of(b);
        let mut path = vec![cur];
        let (nx, ny, nz) = self.cfg.dims;
        for dim in 0..3 {
            let (extent, cur_v, dst_v) = match dim {
                0 => (nx, cur.x, dst.x),
                1 => (ny, cur.y, dst.y),
                _ => (nz, cur.z, dst.z),
            };
            let mut v = cur_v;
            while v != dst_v {
                let fwd = (dst_v + extent - v) % extent;
                let bwd = (v + extent - dst_v) % extent;
                v = if fwd <= bwd {
                    (v + 1) % extent
                } else {
                    (v + extent - 1) % extent
                };
                match dim {
                    0 => cur.x = v,
                    1 => cur.y = v,
                    _ => cur.z = v,
                }
                path.push(cur);
            }
        }
        path
    }

    /// Number of directed links: six per node (±X, ±Y, ±Z). Dense link
    /// ids from [`link_id`](Self::link_id) index `0..num_links()`.
    pub fn num_links(&self) -> usize {
        self.nodes() as usize * 6
    }

    /// Dense id of the directed link leaving `c` along dimension `dim`
    /// (0 = X, 1 = Y, 2 = Z) in direction `dir` (0 = plus, 1 = minus):
    /// `node_of(c) * 6 + dim * 2 + dir`. Deterministic and
    /// hash-free, so per-link accounting can use a flat array.
    ///
    /// # Panics
    ///
    /// Panics if `dim > 2`, `dir > 1`, or `c` is out of range.
    pub fn link_id(&self, c: Coord, dim: usize, dir: usize) -> usize {
        assert!(dim < 3, "dimension {dim} out of range");
        assert!(dir < 2, "direction {dir} out of range");
        self.node_of(c) as usize * 6 + dim * 2 + dir
    }

    /// Inverse of [`link_id`](Self::link_id): the source coordinate,
    /// dimension and direction of a dense link id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link_of(&self, id: usize) -> (Coord, usize, usize) {
        assert!(id < self.num_links(), "link id {id} out of range");
        (self.coord_of((id / 6) as u32), (id % 6) / 2, id % 2)
    }

    /// The `(src, dst)` coordinates joined by a dense link id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link_endpoints(&self, id: usize) -> (Coord, Coord) {
        let (c, dim, dir) = self.link_of(id);
        let (nx, ny, nz) = self.cfg.dims;
        let mut d = c;
        match (dim, dir) {
            (0, 0) => d.x = (c.x + 1) % nx,
            (0, _) => d.x = (c.x + nx - 1) % nx,
            (1, 0) => d.y = (c.y + 1) % ny,
            (1, _) => d.y = (c.y + ny - 1) % ny,
            (_, 0) => d.z = (c.z + 1) % nz,
            _ => d.z = (c.z + nz - 1) % nz,
        }
        (c, d)
    }

    /// The dense link id of one adjacent route step `a → b` (as produced
    /// by consecutive [`route`](Self::route) entries). On an extent-2
    /// ring both directions are the same physical wire; the step is
    /// canonicalized to the plus direction.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` are not adjacent along exactly one
    /// dimension.
    pub fn step_link_id(&self, a: Coord, b: Coord) -> usize {
        let (nx, ny, nz) = self.cfg.dims;
        let (dim, dir) = if a.x != b.x {
            assert!(a.y == b.y && a.z == b.z, "step {a} -> {b} moves two dims");
            (0, usize::from((a.x + 1) % nx != b.x))
        } else if a.y != b.y {
            assert!(a.z == b.z, "step {a} -> {b} moves two dims");
            (1, usize::from((a.y + 1) % ny != b.y))
        } else {
            assert!(a.z != b.z, "step {a} -> {b} does not move");
            (2, usize::from((a.z + 1) % nz != b.z))
        };
        self.link_id(a, dim, dir)
    }

    /// A neighbour of `node` at exactly one hop (used by the adjacent-node
    /// probes, which mirror the paper's measurement setup).
    ///
    /// # Panics
    ///
    /// Panics if the torus has a single node.
    pub fn adjacent(&self, node: u32) -> u32 {
        assert!(self.nodes() > 1, "single-node torus has no neighbour");
        let c = self.coord_of(node);
        let (nx, ny, _) = self.cfg.dims;
        let n = if nx > 1 {
            Coord {
                x: (c.x + 1) % nx,
                ..c
            }
        } else if ny > 1 {
            Coord {
                y: (c.y + 1) % ny,
                ..c
            }
        } else {
            Coord {
                z: (c.z + 1) % self.cfg.dims.2,
                ..c
            }
        };
        self.node_of(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn torus32() -> Torus {
        Torus::new(TorusConfig {
            dims: (4, 4, 2),
            hop_cy: 2.5,
        })
    }

    #[test]
    fn coord_roundtrip() {
        let t = torus32();
        for n in 0..t.nodes() {
            assert_eq!(t.node_of(t.coord_of(n)), n);
        }
    }

    #[test]
    fn hops_symmetric_and_zero_on_self() {
        let t = torus32();
        for a in 0..t.nodes() {
            assert_eq!(t.hops(a, a), 0);
            for b in 0..t.nodes() {
                assert_eq!(t.hops(a, b), t.hops(b, a));
            }
        }
    }

    #[test]
    fn wraparound_shortens_paths() {
        let t = Torus::new(TorusConfig {
            dims: (8, 1, 1),
            hop_cy: 2.5,
        });
        assert_eq!(t.hops(0, 7), 1);
        assert_eq!(t.hops(0, 4), 4, "antipodal distance on a ring of 8");
    }

    #[test]
    fn max_diameter_is_sum_of_half_extents() {
        let t = torus32();
        let max = (0..t.nodes())
            .flat_map(|a| (0..t.nodes()).map(move |b| (a, b)))
            .map(|(a, b)| t.hops(a, b))
            .max()
            .unwrap();
        assert_eq!(max, 2 + 2 + 1);
    }

    #[test]
    fn route_length_matches_hops_and_is_dimension_ordered() {
        let t = torus32();
        for a in [0u32, 5, 13, 31] {
            for b in [0u32, 1, 17, 30] {
                let r = t.route(a, b);
                assert_eq!(r.len() as u32, t.hops(a, b) + 1);
                assert_eq!(r[0], t.coord_of(a));
                assert_eq!(*r.last().unwrap(), t.coord_of(b));
                // Dimension order: once Y changes, X must be final; once Z
                // changes, X and Y must be final.
                let dst = t.coord_of(b);
                let mut y_moved = false;
                let mut z_moved = false;
                for w in r.windows(2) {
                    let (p, q) = (w[0], w[1]);
                    if p.y != q.y {
                        y_moved = true;
                        assert_eq!(p.x, dst.x, "X settled before Y moves");
                    }
                    if p.z != q.z {
                        z_moved = true;
                        assert_eq!(p.x, dst.x);
                        assert_eq!(p.y, dst.y, "Y settled before Z moves");
                    }
                    if y_moved && p.x != q.x {
                        panic!("X moved after Y");
                    }
                    if z_moved && (p.x != q.x || p.y != q.y) {
                        panic!("X or Y moved after Z");
                    }
                }
            }
        }
    }

    #[test]
    fn adjacent_is_one_hop() {
        let t = torus32();
        for n in 0..t.nodes() {
            assert_eq!(t.hops(n, t.adjacent(n)), 1);
        }
    }

    #[test]
    fn network_cost_is_2_5_cycles_per_hop() {
        let t = torus32();
        assert_eq!(t.one_way_cy(0, 1), 2.5);
        assert_eq!(t.round_trip_cy(0, 1), 5.0);
    }

    #[test]
    fn for_nodes_builds_exact_sizes() {
        for n in [1u32, 2, 8, 27, 32, 64, 100, 128] {
            let cfg = TorusConfig::for_nodes(n);
            let t = Torus::new(cfg);
            assert_eq!(t.nodes(), n, "for_nodes({n}) gave dims {:?}", cfg.dims);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_panics() {
        torus32().coord_of(32);
    }
}
