//! Power-of-two sub-cube arithmetic for torus partitioning.
//!
//! A real T3D ran as a shared service: the machine's X×Y×Z torus was
//! carved into rectangular sub-cubes and each job gang-ran inside one.
//! This module is the geometry half of that story — canonical
//! power-of-two sub-cube shapes, the deterministic split order, and
//! buddy identification — consumed by the partition allocator in
//! `crates/sched`. Everything here is pure integer math: splitting
//! always halves the *largest* dimension (ties broken X, then Y, then
//! Z), so every block of a given PE count has exactly one shape, which
//! is what makes buddy coalescing and job-cycle memoisation sound.

use crate::Coord;

/// Extents of a (sub-)torus in each dimension.
pub type Dims = (u32, u32, u32);

/// Number of PEs inside `dims`.
fn pes(dims: Dims) -> u64 {
    u64::from(dims.0) * u64::from(dims.1) * u64::from(dims.2)
}

/// True when every extent is a power of two (the precondition for the
/// whole buddy scheme).
pub fn dims_pow2(dims: Dims) -> bool {
    dims.0.is_power_of_two() && dims.1.is_power_of_two() && dims.2.is_power_of_two()
}

/// The dimension a block of shape `dims` is split along: the largest
/// extent, ties broken X before Y before Z. Returns `None` for a
/// single-PE block.
pub fn split_axis(dims: Dims) -> Option<usize> {
    if pes(dims) <= 1 {
        return None;
    }
    let exts = [dims.0, dims.1, dims.2];
    let max = *exts.iter().max().expect("three extents");
    exts.iter().position(|&e| e == max)
}

/// The canonical shape of an order-`k` block (2^k PEs) inside a machine
/// of shape `machine`: obtained by repeatedly halving the largest
/// dimension of the full machine. The result is the same for every
/// block of that order, which is what lets blocks be identified by
/// `(order, origin)` alone.
///
/// # Panics
///
/// Panics if `machine` has a non-power-of-two extent or `2^k` exceeds
/// the machine size.
pub fn shape_of_order(machine: Dims, k: u32) -> Dims {
    assert!(dims_pow2(machine), "machine extents must be powers of two");
    let total = pes(machine);
    assert!(
        u64::from(1u32) << k <= total,
        "order {k} exceeds machine of {total} PEs"
    );
    let mut d = machine;
    while pes(d) > 1u64 << k {
        let axis = split_axis(d).expect("block larger than one PE splits");
        match axis {
            0 => d.0 /= 2,
            1 => d.1 /= 2,
            _ => d.2 /= 2,
        }
    }
    d
}

/// Partitions the machine into the canonical sub-cube blocks used for
/// phase-engine sharding: the largest power-of-two block count that is
/// `<= max_blocks` (and `<=` the machine size), produced by repeatedly
/// splitting every block along its canonical axis. All blocks share the
/// canonical [`shape_of_order`] shape of their order — the same shapes
/// the buddy allocator in `crates/sched` carves — and are returned in
/// origin order (X fastest, matching torus node-id order of the
/// origins).
///
/// This is the one source of truth for shard geometry: the scheduler's
/// allocator and the phase engine both consume these shapes, which a
/// cross-crate test pins.
///
/// # Panics
///
/// Panics if `machine` has a non-power-of-two extent or `max_blocks`
/// is zero.
pub fn partition(machine: Dims, max_blocks: usize) -> Vec<SubCube> {
    assert!(dims_pow2(machine), "machine extents must be powers of two");
    assert!(max_blocks > 0, "cannot partition into zero blocks");
    let mut blocks = vec![SubCube::whole(machine)];
    while blocks.len() * 2 <= max_blocks && blocks[0].pes() > 1 {
        blocks = blocks
            .into_iter()
            .flat_map(|b| {
                let (lo, hi) = b.split();
                [lo, hi]
            })
            .collect();
    }
    blocks.sort_by_key(|b| (b.origin.z, b.origin.y, b.origin.x));
    blocks
}

/// A rectangular sub-cube of a torus: an origin corner plus extents.
/// Canonical blocks are aligned — each origin coordinate is a multiple
/// of the corresponding extent — so aligned blocks never wrap around
/// the torus and two blocks either nest or are disjoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubCube {
    /// The low corner.
    pub origin: Coord,
    /// Extent in each dimension.
    pub dims: Dims,
}

impl std::fmt::Display for SubCube {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{}x{}@{}",
            self.dims.0, self.dims.1, self.dims.2, self.origin
        )
    }
}

impl SubCube {
    /// The whole machine as one block.
    pub fn whole(machine: Dims) -> SubCube {
        SubCube {
            origin: Coord { x: 0, y: 0, z: 0 },
            dims: machine,
        }
    }

    /// Number of PEs in this block.
    pub fn pes(&self) -> u64 {
        pes(self.dims)
    }

    /// `log2(pes)` for power-of-two blocks.
    ///
    /// # Panics
    ///
    /// Panics if the block's PE count is not a power of two.
    pub fn order(&self) -> u32 {
        let n = self.pes();
        assert!(n.is_power_of_two(), "{self} is not a power-of-two block");
        n.trailing_zeros()
    }

    /// Whether every origin coordinate is a multiple of its extent (the
    /// canonical-buddy alignment invariant).
    pub fn aligned(&self) -> bool {
        self.origin.x.is_multiple_of(self.dims.0)
            && self.origin.y.is_multiple_of(self.dims.1)
            && self.origin.z.is_multiple_of(self.dims.2)
    }

    /// Whether `c` lies inside this block.
    pub fn contains(&self, c: Coord) -> bool {
        c.x >= self.origin.x
            && c.x < self.origin.x + self.dims.0
            && c.y >= self.origin.y
            && c.y < self.origin.y + self.dims.1
            && c.z >= self.origin.z
            && c.z < self.origin.z + self.dims.2
    }

    /// Whether two aligned blocks share any PE.
    pub fn overlaps(&self, other: &SubCube) -> bool {
        let axis = |a0: u32, ae: u32, b0: u32, be: u32| a0 < b0 + be && b0 < a0 + ae;
        axis(self.origin.x, self.dims.0, other.origin.x, other.dims.0)
            && axis(self.origin.y, self.dims.1, other.origin.y, other.dims.1)
            && axis(self.origin.z, self.dims.2, other.origin.z, other.dims.2)
    }

    /// Every coordinate inside the block, X varying fastest (matching
    /// the torus node-id order).
    pub fn coords(&self) -> Vec<Coord> {
        let mut out = Vec::with_capacity(self.pes() as usize);
        for z in self.origin.z..self.origin.z + self.dims.2 {
            for y in self.origin.y..self.origin.y + self.dims.1 {
                for x in self.origin.x..self.origin.x + self.dims.0 {
                    out.push(Coord { x, y, z });
                }
            }
        }
        out
    }

    /// Splits the block in half along its canonical split axis,
    /// returning `(lower, upper)` — lower keeps the origin. The two
    /// halves are buddies of each other.
    ///
    /// # Panics
    ///
    /// Panics on a single-PE block.
    pub fn split(&self) -> (SubCube, SubCube) {
        let axis = split_axis(self.dims).expect("cannot split a single-PE block");
        let mut lo = *self;
        let mut hi = *self;
        match axis {
            0 => {
                lo.dims.0 /= 2;
                hi.dims.0 /= 2;
                hi.origin.x += hi.dims.0;
            }
            1 => {
                lo.dims.1 /= 2;
                hi.dims.1 /= 2;
                hi.origin.y += hi.dims.1;
            }
            _ => {
                lo.dims.2 /= 2;
                hi.dims.2 /= 2;
                hi.origin.z += hi.dims.2;
            }
        }
        (lo, hi)
    }

    /// The buddy of this block inside `machine`: the sibling half of
    /// the parent block that `split` produced it from. The parent's
    /// split axis is recovered from the canonical shape sequence —
    /// the parent of an order-`k` block is the order-`k+1` shape, and
    /// the axis where the shapes differ is the one that was halved.
    ///
    /// Returns `None` when the block already spans the machine.
    ///
    /// # Panics
    ///
    /// Panics if the block is misaligned or its shape is not the
    /// canonical shape of its order.
    pub fn buddy(&self, machine: Dims) -> Option<SubCube> {
        assert!(self.aligned(), "{self} is not aligned");
        let k = self.order();
        assert_eq!(
            self.dims,
            shape_of_order(machine, k),
            "{self} is not the canonical order-{k} shape"
        );
        if self.pes() == pes(machine) {
            return None;
        }
        let parent_dims = shape_of_order(machine, k + 1);
        let mut b = *self;
        if parent_dims.0 != self.dims.0 {
            b.origin.x ^= self.dims.0;
        } else if parent_dims.1 != self.dims.1 {
            b.origin.y ^= self.dims.1;
        } else {
            b.origin.z ^= self.dims.2;
        }
        Some(b)
    }

    /// The parent block this one and its buddy coalesce into.
    ///
    /// Returns `None` when the block already spans the machine.
    pub fn parent(&self, machine: Dims) -> Option<SubCube> {
        let b = self.buddy(machine)?;
        Some(SubCube {
            origin: Coord {
                x: self.origin.x.min(b.origin.x),
                y: self.origin.y.min(b.origin.y),
                z: self.origin.z.min(b.origin.z),
            },
            dims: shape_of_order(machine, self.order() + 1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: Dims = (8, 4, 4);

    #[test]
    fn shape_sequence_halves_largest_dimension_first() {
        assert_eq!(shape_of_order(M, 7), (8, 4, 4));
        assert_eq!(shape_of_order(M, 6), (4, 4, 4));
        assert_eq!(shape_of_order(M, 5), (2, 4, 4));
        assert_eq!(shape_of_order(M, 4), (2, 2, 4));
        assert_eq!(shape_of_order(M, 3), (2, 2, 2));
        assert_eq!(shape_of_order(M, 2), (1, 2, 2));
        assert_eq!(shape_of_order(M, 1), (1, 1, 2));
        assert_eq!(shape_of_order(M, 0), (1, 1, 1));
    }

    #[test]
    fn split_halves_are_aligned_buddies_and_coalesce() {
        let whole = SubCube::whole(M);
        let (lo, hi) = whole.split();
        assert!(lo.aligned() && hi.aligned());
        assert!(!lo.overlaps(&hi));
        assert_eq!(lo.pes() + hi.pes(), whole.pes());
        assert_eq!(lo.buddy(M), Some(hi));
        assert_eq!(hi.buddy(M), Some(lo));
        assert_eq!(lo.parent(M), Some(whole));
        assert_eq!(hi.parent(M), Some(whole));
        assert_eq!(whole.buddy(M), None);
    }

    #[test]
    fn recursive_splits_partition_the_machine() {
        // Split all the way down to single PEs; the leaves must tile
        // the machine exactly.
        fn leaves(c: SubCube, out: &mut Vec<SubCube>) {
            if c.pes() == 1 {
                out.push(c);
            } else {
                let (lo, hi) = c.split();
                leaves(lo, out);
                leaves(hi, out);
            }
        }
        let mut all = Vec::new();
        leaves(SubCube::whole(M), &mut all);
        assert_eq!(all.len(), 128);
        let mut seen: Vec<Coord> = all.iter().map(|c| c.origin).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 128, "leaves tile without overlap");
    }

    #[test]
    fn contains_and_coords_agree() {
        let (lo, hi) = SubCube::whole(M).split();
        for c in lo.coords() {
            assert!(lo.contains(c));
            assert!(!hi.contains(c));
        }
        assert_eq!(lo.coords().len() as u64, lo.pes());
    }

    #[test]
    fn partition_tiles_the_machine_with_canonical_shapes() {
        for want in [1usize, 2, 3, 4, 7, 8, 16, 128, 1000] {
            let blocks = partition(M, want);
            let n = blocks.len();
            assert!(n.is_power_of_two() && n <= want.max(1));
            assert!(n * 2 > want || n as u64 == SubCube::whole(M).pes());
            let shape = shape_of_order(M, blocks[0].order());
            let mut covered = 0u64;
            for b in &blocks {
                assert_eq!(b.dims, shape, "all blocks share the canonical shape");
                assert!(b.aligned());
                covered += b.pes();
            }
            assert_eq!(covered, SubCube::whole(M).pes(), "blocks tile exactly");
            for (i, w) in blocks.windows(2).enumerate() {
                assert!(
                    (w[0].origin.z, w[0].origin.y, w[0].origin.x)
                        < (w[1].origin.z, w[1].origin.y, w[1].origin.x),
                    "blocks {i},{} out of order",
                    i + 1
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn misaligned_buddy_panics() {
        let c = SubCube {
            origin: Coord { x: 1, y: 0, z: 0 },
            dims: (2, 4, 4),
        };
        let _ = c.buddy(M);
    }
}
