//! Per-link traffic accounting.
//!
//! The paper's bulk-transfer study (Section 6) reasons about sustained
//! bandwidth; [`TrafficMatrix`] lets benches and tests account bytes per
//! directed link along dimension-order routes, e.g. to verify that the
//! EM3D communication volume scales with the remote-edge fraction.

use crate::{Coord, Torus};
use std::collections::HashMap;

/// Accumulates bytes carried by each directed link.
///
/// # Example
///
/// ```
/// use t3d_torus::{Torus, TorusConfig, TrafficMatrix};
///
/// let t = Torus::new(TorusConfig { dims: (4, 1, 1), hop_cy: 2.5 });
/// let mut tm = TrafficMatrix::new();
/// tm.record(&t, 0, 2, 64);
/// assert_eq!(tm.total_bytes(), 128, "two hops times 64 bytes");
/// ```
#[derive(Debug, Clone, Default)]
pub struct TrafficMatrix {
    links: HashMap<(Coord, Coord), u64>,
    messages: u64,
}

impl TrafficMatrix {
    /// Creates an empty traffic matrix.
    pub fn new() -> Self {
        TrafficMatrix::default()
    }

    /// Records `bytes` flowing from `src` to `dst` along the
    /// dimension-order route.
    pub fn record(&mut self, torus: &Torus, src: u32, dst: u32, bytes: u64) {
        self.messages += 1;
        let path = torus.route(src, dst);
        for w in path.windows(2) {
            *self.links.entry((w[0], w[1])).or_insert(0) += bytes;
        }
    }

    /// Bytes carried by the directed link `a -> b`, zero if untouched.
    pub fn link_bytes(&self, a: Coord, b: Coord) -> u64 {
        self.links.get(&(a, b)).copied().unwrap_or(0)
    }

    /// Sum of bytes over all links (bytes × hops).
    pub fn total_bytes(&self) -> u64 {
        self.links.values().sum()
    }

    /// The most heavily loaded link and its byte count, if any traffic
    /// was recorded.
    pub fn hottest_link(&self) -> Option<((Coord, Coord), u64)> {
        self.links
            .iter()
            .map(|(k, v)| (*k, *v))
            .max_by_key(|&(_, v)| v)
    }

    /// Number of messages recorded.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Clears all recorded traffic.
    pub fn clear(&mut self) {
        self.links.clear();
        self.messages = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TorusConfig;

    #[test]
    fn self_traffic_touches_no_links() {
        let t = Torus::new(TorusConfig {
            dims: (4, 1, 1),
            hop_cy: 2.5,
        });
        let mut tm = TrafficMatrix::new();
        tm.record(&t, 1, 1, 1024);
        assert_eq!(tm.total_bytes(), 0);
        assert_eq!(tm.messages(), 1);
    }

    #[test]
    fn hottest_link_found() {
        let t = Torus::new(TorusConfig {
            dims: (4, 1, 1),
            hop_cy: 2.5,
        });
        let mut tm = TrafficMatrix::new();
        tm.record(&t, 0, 1, 10);
        tm.record(&t, 0, 1, 10);
        tm.record(&t, 1, 2, 5);
        let ((a, b), bytes) = tm.hottest_link().unwrap();
        assert_eq!((a, b), (t.coord_of(0), t.coord_of(1)));
        assert_eq!(bytes, 20);
    }

    #[test]
    fn clear_resets() {
        let t = Torus::new(TorusConfig {
            dims: (2, 1, 1),
            hop_cy: 2.5,
        });
        let mut tm = TrafficMatrix::new();
        tm.record(&t, 0, 1, 10);
        tm.clear();
        assert_eq!(tm.total_bytes(), 0);
        assert_eq!(tm.messages(), 0);
        assert!(tm.hottest_link().is_none());
    }
}
