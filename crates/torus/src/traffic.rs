//! Per-link traffic accounting.
//!
//! The paper's bulk-transfer study (Section 6) reasons about sustained
//! bandwidth; [`TrafficMatrix`] lets benches and tests account bytes per
//! directed link along dimension-order routes, e.g. to verify that the
//! EM3D communication volume scales with the remote-edge fraction.
//!
//! Counts live in a dense `Vec<u64>` indexed by
//! [`Torus::link_id`](crate::Torus::link_id) — no hashing on the
//! accounting path, and iteration order (hence `hottest_link`
//! tie-breaking) is the deterministic link-id order.

use crate::{Coord, Torus};

/// Accumulates bytes carried by each directed link.
///
/// # Example
///
/// ```
/// use t3d_torus::{Torus, TorusConfig, TrafficMatrix};
///
/// let t = Torus::new(TorusConfig { dims: (4, 1, 1), hop_cy: 2.5 });
/// let mut tm = TrafficMatrix::new();
/// tm.record(&t, 0, 2, 64);
/// assert_eq!(tm.total_bytes(), 128, "two hops times 64 bytes");
/// ```
#[derive(Debug, Clone, Default)]
pub struct TrafficMatrix {
    /// Bytes per directed link, indexed by dense link id. Sized on
    /// first record.
    links: Vec<u64>,
    messages: u64,
}

impl TrafficMatrix {
    /// Creates an empty traffic matrix.
    pub fn new() -> Self {
        TrafficMatrix::default()
    }

    /// Records `bytes` flowing from `src` to `dst` along the
    /// dimension-order route.
    pub fn record(&mut self, torus: &Torus, src: u32, dst: u32, bytes: u64) {
        if self.links.is_empty() {
            self.links = vec![0; torus.num_links()];
        }
        self.messages += 1;
        let path = torus.route(src, dst);
        for w in path.windows(2) {
            self.links[torus.step_link_id(w[0], w[1])] += bytes;
        }
    }

    /// Bytes carried by the directed link `a -> b` (adjacent
    /// coordinates), zero if untouched.
    pub fn link_bytes(&self, torus: &Torus, a: Coord, b: Coord) -> u64 {
        self.links
            .get(torus.step_link_id(a, b))
            .copied()
            .unwrap_or(0)
    }

    /// Bytes carried by a dense link id, zero if untouched.
    pub fn link_id_bytes(&self, id: usize) -> u64 {
        self.links.get(id).copied().unwrap_or(0)
    }

    /// Sum of bytes over all links (bytes × hops).
    pub fn total_bytes(&self) -> u64 {
        self.links.iter().sum()
    }

    /// Every link with nonzero traffic, in ascending link-id order.
    pub fn loaded_links(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.links
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b > 0)
            .map(|(i, &b)| (i, b))
    }

    /// The most heavily loaded link and its byte count, if any traffic
    /// was recorded. Ties break to the **lowest link id** — a fixed,
    /// host-independent order (node id, then dimension X<Y<Z, then
    /// direction +<−), pinned by test.
    pub fn hottest_link(&self, torus: &Torus) -> Option<((Coord, Coord), u64)> {
        let (id, &bytes) = self
            .links
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))?;
        if bytes == 0 {
            return None;
        }
        Some((torus.link_endpoints(id), bytes))
    }

    /// Number of messages recorded.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Clears all recorded traffic.
    pub fn clear(&mut self) {
        self.links.clear();
        self.messages = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TorusConfig;

    #[test]
    fn self_traffic_touches_no_links() {
        let t = Torus::new(TorusConfig {
            dims: (4, 1, 1),
            hop_cy: 2.5,
        });
        let mut tm = TrafficMatrix::new();
        tm.record(&t, 1, 1, 1024);
        assert_eq!(tm.total_bytes(), 0);
        assert_eq!(tm.messages(), 1);
    }

    #[test]
    fn hottest_link_found() {
        let t = Torus::new(TorusConfig {
            dims: (4, 1, 1),
            hop_cy: 2.5,
        });
        let mut tm = TrafficMatrix::new();
        tm.record(&t, 0, 1, 10);
        tm.record(&t, 0, 1, 10);
        tm.record(&t, 1, 2, 5);
        let ((a, b), bytes) = tm.hottest_link(&t).unwrap();
        assert_eq!((a, b), (t.coord_of(0), t.coord_of(1)));
        assert_eq!(bytes, 20);
    }

    #[test]
    fn hottest_link_ties_break_to_lowest_link_id() {
        // Two links with identical load: node 0's +X and node 1's +X.
        // The winner must be the lower link id (node 0), every run.
        let t = Torus::new(TorusConfig {
            dims: (4, 1, 1),
            hop_cy: 2.5,
        });
        let mut tm = TrafficMatrix::new();
        tm.record(&t, 1, 2, 10);
        tm.record(&t, 0, 1, 10);
        let ((a, b), bytes) = tm.hottest_link(&t).unwrap();
        assert_eq!((a, b), (t.coord_of(0), t.coord_of(1)));
        assert_eq!(bytes, 10);
        // And on a tie within one node, +X (dir 0) beats −X (dir 1):
        // on a ring of 4, 0→1 is +X and 0→3 is −X.
        let mut tm = TrafficMatrix::new();
        tm.record(&t, 0, 3, 7);
        tm.record(&t, 0, 1, 7);
        let ((a, b), _) = tm.hottest_link(&t).unwrap();
        assert_eq!((a, b), (t.coord_of(0), t.coord_of(1)), "+X wins the tie");
    }

    #[test]
    fn link_accounting_is_dense_and_queryable_by_id() {
        let t = Torus::new(TorusConfig {
            dims: (4, 2, 2),
            hop_cy: 2.5,
        });
        let mut tm = TrafficMatrix::new();
        tm.record(&t, 0, 1, 64);
        let id = t.link_id(t.coord_of(0), 0, 0);
        assert_eq!(tm.link_id_bytes(id), 64);
        assert_eq!(tm.link_bytes(&t, t.coord_of(0), t.coord_of(1)), 64);
        let loaded: Vec<(usize, u64)> = tm.loaded_links().collect();
        assert_eq!(loaded, vec![(id, 64)]);
    }

    #[test]
    fn all_to_all_personalized_4x4x4_pins_per_link_bytes() {
        // The worst-case pattern of the paper's network section: every
        // PE sends a personalized 8 B payload to every other PE.
        // Dimension-order routing with the plus-direction tie-break
        // (`fwd <= bwd` on a 4-ary ring) loads every +dim link with
        // exactly 384 B and every −dim link with 128 B.
        let t = Torus::new(TorusConfig {
            dims: (4, 4, 4),
            hop_cy: 2.5,
        });
        let mut tm = TrafficMatrix::new();
        for a in 0..64 {
            for b in 0..64 {
                if a != b {
                    tm.record(&t, a, b, 8);
                }
            }
        }
        for node in 0..64 {
            let c = t.coord_of(node);
            for dim in 0..3 {
                assert_eq!(
                    tm.link_id_bytes(t.link_id(c, dim, 0)),
                    384,
                    "+dim {dim} link out of {c:?}"
                );
                assert_eq!(
                    tm.link_id_bytes(t.link_id(c, dim, 1)),
                    128,
                    "−dim {dim} link out of {c:?}"
                );
            }
        }
        assert_eq!(tm.total_bytes(), 98_304, "64 PEs × 63 peers × 8 B × hops");
        assert_eq!(tm.messages(), 64 * 63);
        // All 192 +dim links tie at 384 B; the winner is pinned to the
        // lowest link id — node 0's +X.
        let ((a, b), bytes) = tm.hottest_link(&t).unwrap();
        assert_eq!(bytes, 384);
        assert_eq!((a, b), (t.coord_of(0), t.coord_of(1)));
    }

    #[test]
    fn clear_resets() {
        let t = Torus::new(TorusConfig {
            dims: (2, 1, 1),
            hop_cy: 2.5,
        });
        let mut tm = TrafficMatrix::new();
        tm.record(&t, 0, 1, 10);
        tm.clear();
        assert_eq!(tm.total_bytes(), 0);
        assert_eq!(tm.messages(), 0);
        assert!(tm.hottest_link(&t).is_none());
    }
}
