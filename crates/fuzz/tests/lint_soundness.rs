//! Differential validation of the static analyzer against the dynamic
//! sanitizer (layer 4 of the lint design).
//!
//! Soundness direction: on straight-line-with-barriers programs, every
//! hazard `t3dsan` reports on a *run* must be reported by `t3d-lint` on
//! the *program*, with a rule from the [`Rule::covers`] map. The
//! converse is not required — the static analyzer over-approximates
//! interleavings — but clean-by-construction programs must lint free of
//! hazard rules (that direction is also enforced per-case inside
//! `check_case`).
//!
//! The sweep: 300 seeded generator programs. Each is linted statically
//! (hazard-free or the test fails with the table), then mutated with
//! every applicable hazard injection; each mutant is executed under the
//! sanitizer and linted, and every dynamic finding must be covered.

use t3d_fuzz::{case_seed, inject, lint_case, program_for_seed, run_program, Mutation};
use t3d_lint::Rule;
use t3d_machine::PhaseDriver;
use t3dsan::DiagKind;

const CASES: usize = 300;
const MASTER: u64 = 0x11D7_50D1;

fn kind_of(name: &str) -> DiagKind {
    DiagKind::ALL
        .into_iter()
        .find(|k| format!("{k:?}") == name)
        .unwrap_or_else(|| panic!("unknown dynamic kind {name:?}"))
}

#[test]
fn dynamic_hazards_are_statically_covered() {
    let mut mutants = 0usize;
    let mut dynamic_findings = 0usize;
    for case in 0..CASES {
        let seed = case_seed(MASTER, case);
        let prog = program_for_seed(seed);
        // Clean direction: the generator's zone discipline lints clean.
        let clean = lint_case(&prog, 0x100);
        assert!(
            clean.is_hazard_free(),
            "seed {seed:#x}: clean program has static hazards:\n{}",
            clean.render_table()
        );
        for m in Mutation::ALL {
            let Some(bad) = inject(&prog, m) else {
                continue;
            };
            mutants += 1;
            // A mutation may make the runtime reject the program
            // outright (also a detection, just not san's).
            let Ok(run) = run_program(&bad, PhaseDriver::Seq, None) else {
                continue;
            };
            let report = lint_case(&bad, run.base);
            let static_rules = report.rules();
            // The injected defect itself must be seen statically.
            assert!(
                static_rules.contains(&m.expected_rule()),
                "seed {seed:#x} {m:?}: lint missed {}:\n{}",
                m.expected_rule(),
                report.render_table()
            );
            // Soundness: every dynamic finding is covered statically.
            for name in &run.san {
                dynamic_findings += 1;
                let covering = Rule::covers(kind_of(name));
                assert!(
                    !covering.is_empty(),
                    "seed {seed:#x} {m:?}: dynamic {name} has no static cover (by design \
                     only AnnexSynonymHazard may be uncoverable, and these programs \
                     cannot trip it)"
                );
                assert!(
                    covering.iter().any(|r| static_rules.contains(r)),
                    "seed {seed:#x} {m:?}: dynamic {name} not covered — static rules \
                     {static_rules:?}, expected one of {covering:?}:\n{}",
                    report.render_table()
                );
            }
        }
    }
    // The sweep must actually exercise the contract.
    assert!(
        mutants >= CASES,
        "only {mutants} mutants over {CASES} cases"
    );
    assert!(
        dynamic_findings >= 50,
        "only {dynamic_findings} dynamic findings — mutations are not biting"
    );
}
