//! Replays the checked-in corpus through the full differential oracle
//! on every `cargo test`, and self-tests the fault-injection path.

use std::collections::HashSet;
use t3d_fuzz::{
    case_seed, check_case, fault_for_seed, parse_seed, program_for_seed, shrink, ActionKind,
    DEFAULT_BUDGET,
};

const CORPUS: &str = include_str!("../corpus/seeds.txt");

/// `(master seed, case count)` pairs from `corpus/seeds.txt`.
fn corpus_entries() -> Vec<(u64, usize)> {
    CORPUS
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut it = l.split_whitespace();
            let seed = parse_seed(it.next().expect("seed column"));
            let cases = it
                .next()
                .expect("case-count column")
                .parse()
                .expect("case count");
            (seed, cases)
        })
        .collect()
}

#[test]
fn the_corpus_is_not_empty() {
    let entries = corpus_entries();
    assert!(entries.len() >= 3, "corpus shrank: {entries:?}");
    assert!(
        entries.iter().any(|&(s, _)| s == parse_seed("0xT3D")),
        "the CI smoke seed must stay in the corpus"
    );
}

#[test]
fn corpus_replays_clean() {
    for (master, cases) in corpus_entries() {
        for i in 0..cases {
            let seed = case_seed(master, i);
            let prog = program_for_seed(seed);
            assert_eq!(
                check_case(&prog, 3, None),
                None,
                "corpus case {i} of master {master:#x} (replay --cases 1 --seed {seed:#x})"
            );
        }
    }
}

#[test]
fn corpus_exercises_every_action_kind() {
    let mut seen: HashSet<std::mem::Discriminant<ActionKind>> = HashSet::new();
    for (master, cases) in corpus_entries() {
        for i in 0..cases {
            for phase in program_for_seed(case_seed(master, i)).phases {
                for a in phase.actions {
                    seen.insert(std::mem::discriminant(&a.kind));
                }
            }
        }
    }
    assert_eq!(
        seen.len(),
        21,
        "corpus covers {} of 21 action kinds",
        seen.len()
    );
}

/// The acceptance self-test: one flipped byte in the Par run's settled
/// memory is detected and shrinks to a reproducer of at most 12
/// lowered ops.
#[test]
fn injected_fault_is_caught_and_shrunk_small() {
    let seed = case_seed(parse_seed("0xT3D"), 0);
    let prog = program_for_seed(seed);
    let fault = fault_for_seed(seed);
    let caught = check_case(&prog, 2, Some(fault));
    assert!(caught.is_some(), "injected fault must be detected");
    let small = shrink(&prog, 2, Some(fault), DEFAULT_BUDGET);
    assert!(
        check_case(&small, 2, Some(fault)).is_some(),
        "shrunk program still fails"
    );
    let ops: usize = small.lower(0x100).iter().map(|p| p.op_count()).sum();
    assert!(ops <= 12, "shrunk reproducer has {ops} lowered ops (> 12)");
}
