//! Executes a program three ways and compares.
//!
//! One [`run_program`] call builds a fresh `SplitC` (allocation is
//! deterministic, so every run sees the same region base), lowers the
//! program, executes it under the given phase driver — sharded phases
//! through `par_phase_with`, direct phases as sequential `on` calls —
//! and snapshots memory *and* virtual clocks at every terminator. The
//! sanitizer runs in `Collect` mode on every execution regardless of
//! `T3D_SAN` (generated programs are clean by construction, so any
//! diagnostic is a finding).
//!
//! [`check_case`] is the oracle: Seq and Par drivers must agree
//! bit-identically on memory, clocks and results; both must agree with
//! the flat reference model's memory at every barrier and its predicted
//! results; and the sanitizer report must be empty. The optional
//! [`Fault`] flips one byte of the Par run's settled memory — exactly
//! what an effect-log merge bug would look like — to prove the oracle
//! and shrinker bite.

use crate::program::{LoweredPhase, Program, Terminator};
use crate::refmodel::{interpret, RefOutcome};
use splitc::{SplitC, SplitcConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use t3d_machine::{
    EngineMode, MachineConfig, MemSnapshot, OpStats, PerfMode, PerfReport, PhaseDriver,
};
use t3dsan::SanitizeMode;

/// Fault injection: after phase `phase`'s terminator (clamped to the
/// last phase), flip every bit of one settled byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Phase after whose terminator the byte is flipped.
    pub phase: usize,
    /// Node whose memory is corrupted (mod `nodes`).
    pub pe: usize,
    /// Byte offset within the region (mod the region size).
    pub off: u64,
}

/// Event-schedule fault injection: before phase `phase`'s body runs
/// (clamped to the last phase), arm a due-time skew on one PE's next
/// event. The event engine consumes at least one `BarrierSettle` per PE
/// at the phase terminator, so the skew is guaranteed to fire by then,
/// stretching that PE's clock — which the engine-matrix oracle must
/// catch as a snapshot divergence. Inert under the cycle engine (there
/// is no queue to skew), which is exactly why detection proves the
/// differential bites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventSkew {
    /// Phase before whose body the skew is armed.
    pub phase: usize,
    /// Node whose next event is delayed (mod `nodes`).
    pub pe: usize,
    /// Cycles of delay. Large values make the divergence unmissable.
    pub extra_cy: u64,
}

/// What one execution produced.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Memory + clock snapshot at each phase terminator.
    pub snaps: Vec<MemSnapshot>,
    /// Per PE: results of value-producing ops, in issue order.
    pub results: Vec<Vec<u64>>,
    /// Sanitizer findings (rendered kinds; empty = clean).
    pub san: Vec<String>,
    /// Region base the program was lowered at (deterministic; the
    /// static analyzer lints the same lowering).
    pub base: u64,
    /// Per-PE operation counters at program end.
    pub ops: Vec<OpStats>,
    /// The cycle-attribution report (collected on every run; the
    /// engine-matrix oracle compares ledgers bit-for-bit).
    pub perf: PerfReport,
}

/// Runs `prog` under `driver`, optionally injecting `fault` (the
/// self-test hook). Returns the run record, or the panic message if the
/// runtime rejected the program.
pub fn run_program(
    prog: &Program,
    driver: PhaseDriver,
    fault: Option<Fault>,
) -> Result<RunRecord, String> {
    run_program_engine(prog, driver, EngineMode::from_env(), fault, None)
}

/// [`run_program`] with the time-advance engine pinned and an optional
/// [`EventSkew`] (the engine-matrix self-test hook).
pub fn run_program_engine(
    prog: &Program,
    driver: PhaseDriver,
    engine: EngineMode,
    fault: Option<Fault>,
    skew: Option<EventSkew>,
) -> Result<RunRecord, String> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_program_inner(prog, driver, engine, fault, skew)
    }));
    result.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic".to_string()
        }
    })
}

fn run_program_inner(
    prog: &Program,
    driver: PhaseDriver,
    engine: EngineMode,
    fault: Option<Fault>,
    skew: Option<EventSkew>,
) -> RunRecord {
    let n = prog.nodes as usize;
    let cfg = SplitcConfig {
        sanitize: SanitizeMode::Collect,
        ..SplitcConfig::t3d()
    };
    let mut mcfg = MachineConfig::t3d(prog.nodes);
    mcfg.engine = engine;
    let mut sc = SplitC::with_config(mcfg, cfg);
    sc.machine().set_perf_mode(PerfMode::Counters);
    let base = sc.alloc(prog.region_bytes(), 8);
    let lowered = prog.lower(base);
    let results: Vec<Mutex<Vec<u64>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
    let mut snaps = Vec::with_capacity(lowered.len());
    let last = lowered.len().saturating_sub(1);
    for (i, phase) in lowered.iter().enumerate() {
        if let Some(k) = skew {
            if i == k.phase.min(last) {
                sc.machine().perturb_next_event(k.pe % n, k.extra_cy);
            }
        }
        let terminator = match phase {
            LoweredPhase::Sharded { ops, terminator } => {
                sc.par_phase_with(driver, |ctx| {
                    let pe = ctx.pe();
                    let mut local = Vec::new();
                    for op in &ops[pe] {
                        if let Some(v) = ctx.exec_op(op) {
                            local.push(v);
                        }
                    }
                    if !local.is_empty() {
                        results[pe].lock().unwrap().extend(local);
                    }
                });
                *terminator
            }
            LoweredPhase::Direct { ops, terminator } => {
                for (pe, op) in ops {
                    if let Some(v) = sc.on(*pe as usize, |ctx| ctx.exec_op(op)) {
                        results[*pe as usize].lock().unwrap().push(v);
                    }
                }
                *terminator
            }
        };
        match terminator {
            Terminator::Barrier => sc.barrier(),
            Terminator::AllStoreSync => sc.all_store_sync(),
        }
        if let Some(f) = fault {
            if i == f.phase.min(last) {
                sc.machine()
                    .corrupt_byte(f.pe % n, base + f.off % prog.region_bytes());
            }
        }
        snaps.push(sc.machine_ref().snapshot_region(base, prog.region_bytes()));
    }
    let san = sc
        .san_report()
        .map(|r| r.kinds().iter().map(|k| format!("{k:?}")).collect())
        .unwrap_or_default();
    let ops = (0..n).map(|pe| sc.machine_ref().op_stats(pe)).collect();
    let perf = sc.machine_ref().perf();
    RunRecord {
        snaps,
        results: results
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect(),
        san,
        base,
        ops,
        perf,
    }
}

/// First mismatch between a machine snapshot and the reference model's
/// per-PE word arrays for one phase.
fn ref_mismatch(snap: &MemSnapshot, ref_mem: &[Vec<u64>]) -> Option<String> {
    for (pe, words) in ref_mem.iter().enumerate() {
        let bytes = snap.mem(pe);
        for (w, &expect) in words.iter().enumerate() {
            let got = u64::from_le_bytes(bytes[w * 8..w * 8 + 8].try_into().unwrap());
            if got != expect {
                return Some(format!(
                    "PE {pe} word {w}: machine {got:#x} vs reference {expect:#x}"
                ));
            }
        }
    }
    None
}

/// The full differential oracle. Returns `None` when the case is clean,
/// or a description of the first divergence.
pub fn check_case(prog: &Program, threads: usize, fault: Option<Fault>) -> Option<String> {
    let seq = run_program(prog, PhaseDriver::Seq, None);
    let par = run_program(prog, PhaseDriver::Par(threads), fault);
    let (seq, par) = match (seq, par) {
        (Err(e), _) => return Some(format!("panic under Seq driver: {e}")),
        (_, Err(e)) => return Some(format!("panic under Par driver: {e}")),
        (Ok(s), Ok(p)) => (s, p),
    };
    // (a) Seq and Par are bit-identical: memory, virtual time, results.
    for (i, (a, b)) in seq.snaps.iter().zip(&par.snaps).enumerate() {
        if let Some(d) = a.diff(b) {
            return Some(format!("Seq/Par divergence at phase {i}: {d}"));
        }
    }
    if seq.results != par.results {
        return Some(format!(
            "Seq/Par result divergence: {:?} vs {:?}",
            seq.results, par.results
        ));
    }
    // (b) Both agree with the flat reference model at every barrier.
    let RefOutcome {
        phase_mems,
        results,
    } = interpret(prog);
    for (i, (snap, ref_mem)) in seq.snaps.iter().zip(&phase_mems).enumerate() {
        if let Some(d) = ref_mismatch(snap, ref_mem) {
            return Some(format!("reference divergence at phase {i}: {d}"));
        }
    }
    if seq.results != results {
        return Some(format!(
            "reference result divergence: machine {:?} vs reference {:?}",
            seq.results, results
        ));
    }
    // (c) Zone-disciplined programs are sanitizer-clean.
    if !seq.san.is_empty() || !par.san.is_empty() {
        return Some(format!(
            "sanitizer findings on a clean-by-construction program: {:?}",
            if seq.san.is_empty() {
                &par.san
            } else {
                &seq.san
            }
        ));
    }
    // (d) The static analyzer agrees the program is hazard-free
    // (advisories are fine — the generator trips BLT crossovers on
    // purpose).
    let report = crate::lintbridge::lint_case(prog, seq.base);
    if !report.is_hazard_free() {
        return Some(format!(
            "static hazards on a clean-by-construction program:\n{}",
            report.render_table()
        ));
    }
    None
}

/// The first divergence between two run records, or `None` if they are
/// bit-identical in every compared dimension: snapshots (memory AND
/// virtual clocks), op results, per-PE operation counters, the full
/// attribution report, and the sanitizer findings.
fn record_divergence(label: &str, a: &RunRecord, b: &RunRecord) -> Option<String> {
    for (i, (x, y)) in a.snaps.iter().zip(&b.snaps).enumerate() {
        if let Some(d) = x.diff(y) {
            return Some(format!("{label}: snapshot divergence at phase {i}: {d}"));
        }
    }
    if a.snaps.len() != b.snaps.len() {
        return Some(format!(
            "{label}: phase count {} vs {}",
            a.snaps.len(),
            b.snaps.len()
        ));
    }
    if a.results != b.results {
        return Some(format!(
            "{label}: result divergence: {:?} vs {:?}",
            a.results, b.results
        ));
    }
    if a.ops != b.ops {
        return Some(format!(
            "{label}: op-counter divergence: {:?} vs {:?}",
            a.ops, b.ops
        ));
    }
    if a.perf != b.perf {
        return Some(format!("{label}: attribution ledgers diverge"));
    }
    if a.san != b.san {
        return Some(format!(
            "{label}: sanitizer divergence: {:?} vs {:?}",
            a.san, b.san
        ));
    }
    None
}

/// The engine-matrix oracle: one program under every combination of
/// time-advance engine (cycle, event) and phase driver (Seq,
/// Par(`threads`)), all four runs compared bit-for-bit against the
/// cycle/Seq baseline — snapshots (memory and clocks), results, op
/// counters, attribution ledgers and sanitizer reports. `skew` arms an
/// event due-time perturbation on the event-engine runs only (the
/// self-test; the cycle baseline stays clean so the divergence is
/// attributable). Returns `None` when all four runs agree.
pub fn check_case_engine_matrix(
    prog: &Program,
    threads: usize,
    skew: Option<EventSkew>,
) -> Option<String> {
    let baseline = match run_program_engine(prog, PhaseDriver::Seq, EngineMode::Cycle, None, None) {
        Err(e) => return Some(format!("panic under cycle/Seq: {e}")),
        Ok(r) => r,
    };
    let legs = [
        (PhaseDriver::Par(threads), EngineMode::Cycle, None),
        (PhaseDriver::Seq, EngineMode::Event, skew),
        (PhaseDriver::Par(threads), EngineMode::Event, skew),
    ];
    for (driver, engine, leg_skew) in legs {
        let label = format!("{engine:?}/{driver:?}");
        let run = match run_program_engine(prog, driver, engine, None, leg_skew) {
            Err(e) => return Some(format!("panic under {label}: {e}")),
            Ok(r) => r,
        };
        if let Some(d) = record_divergence(&label, &baseline, &run) {
            return Some(d);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Action, ActionKind, Cell, Phase, PhaseKind, Terminator};

    fn two_phase_prog() -> Program {
        Program {
            // 4 nodes (power-of-two machines only); PE 3 stays idle.
            nodes: 4,
            slots: 12,
            locks: 2,
            phases: vec![
                Phase {
                    kind: PhaseKind::Sharded,
                    terminator: Terminator::Barrier,
                    await_stores: false,
                    actions: vec![
                        Action {
                            pe: 0,
                            kind: ActionKind::Store {
                                dst: Cell { pe: 1, slot: 3 },
                                value: 41,
                            },
                        },
                        Action {
                            pe: 1,
                            kind: ActionKind::Put {
                                dst: Cell { pe: 2, slot: 4 },
                                value: 42,
                            },
                        },
                        Action {
                            pe: 2,
                            kind: ActionKind::Get {
                                src: Cell { pe: 0, slot: 0 },
                                land: 5,
                            },
                        },
                        Action {
                            pe: 0,
                            kind: ActionKind::AmAdd {
                                dst: Cell { pe: 2, slot: 6 },
                                delta: 7,
                            },
                        },
                    ],
                },
                Phase {
                    kind: PhaseKind::Direct,
                    terminator: Terminator::AllStoreSync,
                    await_stores: true,
                    actions: vec![
                        Action {
                            pe: 1,
                            kind: ActionKind::Read {
                                src: Cell { pe: 1, slot: 3 },
                            },
                        },
                        Action {
                            pe: 0,
                            kind: ActionKind::LockGuardedWrite {
                                lock: 1,
                                dst_pe: 2,
                                value: 9,
                            },
                        },
                        Action {
                            pe: 2,
                            kind: ActionKind::Read {
                                src: Cell { pe: 2, slot: 6 },
                            },
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn a_clean_program_passes_the_full_oracle() {
        assert_eq!(check_case(&two_phase_prog(), 2, None), None);
    }

    #[test]
    fn the_engine_matrix_passes_on_a_clean_program() {
        assert_eq!(check_case_engine_matrix(&two_phase_prog(), 2, None), None);
    }

    #[test]
    fn a_skewed_event_due_time_is_caught() {
        let skew = EventSkew {
            phase: 0,
            pe: 1,
            extra_cy: 1 << 20,
        };
        let failure = check_case_engine_matrix(&two_phase_prog(), 2, Some(skew));
        let msg = failure.expect("a skewed due-time must be detected");
        assert!(msg.contains("Event"), "{msg}");
    }

    #[test]
    fn engine_runs_agree_with_the_default_oracle_view() {
        // run_program (env engine) and the pinned-engine runs land on
        // the same snapshots — the engine is invisible to timing.
        let p = two_phase_prog();
        let a = run_program_engine(&p, PhaseDriver::Seq, EngineMode::Cycle, None, None).unwrap();
        let b = run_program_engine(&p, PhaseDriver::Seq, EngineMode::Event, None, None).unwrap();
        assert!(record_divergence("test", &a, &b).is_none());
    }

    #[test]
    fn the_reference_model_agrees_with_the_machine() {
        let p = two_phase_prog();
        let run = run_program(&p, PhaseDriver::Seq, None).unwrap();
        assert_eq!(run.results[1], vec![41], "store visible after barrier");
        assert_eq!(run.results[2], vec![7], "AM add landed at the barrier");
        assert_eq!(run.results[0], vec![1], "lock was free");
        assert!(run.san.is_empty(), "sanitizer clean: {:?}", run.san);
    }

    #[test]
    fn an_injected_fault_is_caught() {
        let p = two_phase_prog();
        let fault = Fault {
            phase: 0,
            pe: 1,
            off: 3 * 8,
        };
        let failure = check_case(&p, 2, Some(fault));
        assert!(failure.is_some(), "flipped byte must be detected");
        let msg = failure.unwrap();
        assert!(msg.contains("divergence"), "{msg}");
    }

    #[test]
    fn fault_phase_is_clamped_to_the_last_phase() {
        let p = two_phase_prog();
        let fault = Fault {
            phase: 99,
            pe: 0,
            off: 1,
        };
        assert!(check_case(&p, 2, Some(fault)).is_some());
    }

    #[test]
    fn empty_programs_are_clean() {
        let p = Program {
            nodes: 2,
            slots: 4,
            locks: 1,
            phases: vec![Phase {
                kind: PhaseKind::Sharded,
                terminator: Terminator::Barrier,
                await_stores: false,
                actions: vec![],
            }],
        };
        assert_eq!(check_case(&p, 2, None), None);
    }
}
