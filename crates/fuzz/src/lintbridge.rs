//! Lowers a generated [`Program`] into the static analyzer's input.
//!
//! The bridge reproduces exactly the event streams the runtime's op
//! recorder would capture for the harness's execution strategy, without
//! executing anything:
//!
//! * a **sharded** phase contributes each PE's op list followed by one
//!   [`RecEvent::PhaseEnd`] (the `par_phase_with` boundary);
//! * a **direct** phase runs its ops one `SplitC::on` call at a time,
//!   and the sanitizer ingests each call's effects before the next
//!   starts — so the bridge places a [`RecEvent::PhaseEnd`] after
//!   *every* direct op, giving the analyzer the same
//!   sequenced-but-not-synchronizing order;
//! * a [`Terminator::Barrier`] contributes a [`RecEvent::Barrier`], and
//!   a [`Terminator::AllStoreSync`] contributes
//!   [`RecEvent::AllStoreSync`] then [`RecEvent::Barrier`] (the runtime
//!   collective ends in a barrier), matching recorded-run streams.
//!
//! This is layer 4 of the lint design: every generated program is
//! linted as well as executed, and the differential soundness test in
//! `tests/lint_soundness.rs` checks that dynamic sanitizer findings are
//! always covered by static rules.

use crate::program::{LoweredPhase, Program, Terminator};
use splitc::{RecEvent, SplitcConfig};
use t3d_lint::{lint, LintProgram, LintReport};
use t3d_machine::MachineConfig;

/// The static-analyzer view of `prog`, lowered at region base `base`.
pub fn lint_program(prog: &Program, base: u64) -> LintProgram {
    let mut lp = LintProgram::new(prog.nodes);
    for phase in prog.lower(base) {
        let terminator = match phase {
            LoweredPhase::Sharded { ops, terminator } => {
                for (pe, list) in ops.into_iter().enumerate() {
                    for op in list {
                        lp.push(pe as u32, op);
                    }
                }
                lp.push_all(RecEvent::PhaseEnd);
                terminator
            }
            LoweredPhase::Direct { ops, terminator } => {
                for (pe, op) in ops {
                    lp.push(pe, op);
                    lp.push_all(RecEvent::PhaseEnd);
                }
                terminator
            }
        };
        match terminator {
            Terminator::Barrier => lp.push_all(RecEvent::Barrier),
            Terminator::AllStoreSync => {
                lp.push_all(RecEvent::AllStoreSync);
                lp.push_all(RecEvent::Barrier);
            }
        }
    }
    lp
}

/// Lints `prog` under the same machine/runtime configuration the
/// harness executes it with.
pub fn lint_case(prog: &Program, base: u64) -> LintReport {
    let mcfg = MachineConfig::t3d(prog.nodes);
    let scfg = SplitcConfig::t3d();
    lint(&lint_program(prog, base), &mcfg, &scfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Action, ActionKind, Cell, Phase, PhaseKind};

    #[test]
    fn bridge_emits_the_recorded_stream_shape() {
        let p = Program {
            nodes: 2,
            slots: 8,
            locks: 1,
            phases: vec![
                Phase {
                    kind: PhaseKind::Sharded,
                    terminator: Terminator::AllStoreSync,
                    await_stores: false,
                    actions: vec![Action {
                        pe: 0,
                        kind: ActionKind::Put {
                            dst: Cell { pe: 1, slot: 0 },
                            value: 1,
                        },
                    }],
                },
                Phase {
                    kind: PhaseKind::Direct,
                    terminator: Terminator::Barrier,
                    await_stores: false,
                    actions: vec![
                        Action {
                            pe: 1,
                            kind: ActionKind::Read {
                                src: Cell { pe: 1, slot: 0 },
                            },
                        },
                        Action {
                            pe: 0,
                            kind: ActionKind::Advance { cycles: 5 },
                        },
                    ],
                },
            ],
        };
        let lp = lint_program(&p, 0x100);
        // PE0: Put, Sync, PhaseEnd, AllStoreSync, Barrier,
        //      PhaseEnd (after PE1's read), Advance, PhaseEnd, Barrier.
        let markers = |pe: usize| {
            lp.streams[pe]
                .iter()
                .filter(|e| !matches!(e, RecEvent::Op(_)))
                .count()
        };
        assert_eq!(markers(0), markers(1), "markers are collective");
        assert_eq!(markers(0), 6);
        assert!(lp.streams[0].len() >= 8);
    }

    #[test]
    fn generated_programs_lint_hazard_free() {
        use t3d_prng::Rng;
        Rng::cases(0x11D7, 40, |_, rng| {
            let p = crate::gen_program(rng);
            let r = lint_case(&p, 0x100);
            assert!(
                r.is_hazard_free(),
                "clean-by-construction program has static hazards:\n{}",
                r.render_table()
            );
        });
    }
}
