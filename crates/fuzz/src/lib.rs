//! t3d-fuzz — differential fuzzing of the Split-C runtime against a
//! flat reference model.
//!
//! The fuzzer closes the loop the hand-written test suites can't: it
//! *generates* SPMD Split-C programs over the full primitive surface —
//! reads and writes, split-phase get/put, signaling stores, dense and
//! strided bulk transfers, AM-queue adds, locks, barriers — and checks
//! every program three ways:
//!
//! 1. **Seq vs Par**: the same program under [`PhaseDriver::Seq`] and
//!    `PhaseDriver::Par(n)` must produce bit-identical memory, virtual
//!    clocks and results at every barrier (the phase engine's merge
//!    determinism contract).
//! 2. **Machine vs reference**: both must match [`refmodel`], a
//!    flat per-PE word-array interpreter with none of the runtime's
//!    machinery — if they disagree at a barrier, a mechanism broke.
//! 3. **Sanitizer silence**: generated programs are zone-disciplined
//!    (disjoint read/write spans per sharded phase, one writer per
//!    cell, single AM depositor per target, locks only in direct
//!    phases), so `t3dsan` in `Collect` mode must report nothing.
//!
//! Failures are auto-[`shrink()`]-ed to a minimal reproducer replayable
//! from its printed seed: every case's seed is derived as
//! [`case_seed`]`(master, index)` and case 0 of a master seed is the
//! master itself, so `t3d-fuzz --cases 1 --seed <case seed>` replays
//! exactly one program.
//!
//! [`PhaseDriver::Seq`]: t3d_machine::PhaseDriver

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod genprog;
pub mod harness;
pub mod lintbridge;
pub mod mutate;
pub mod program;
pub mod refmodel;
pub mod shrink;

pub use genprog::gen_program;
pub use harness::{
    check_case, check_case_engine_matrix, run_program, run_program_engine, EventSkew, Fault,
    RunRecord,
};
pub use lintbridge::{lint_case, lint_program};
pub use mutate::{inject, Mutation};
pub use program::{
    Action, ActionKind, Cell, LoweredPhase, Phase, PhaseKind, Program, Terminator, WORD,
};
pub use refmodel::{interpret, RefOutcome};
pub use shrink::{shrink, shrink_with, DEFAULT_BUDGET};

use t3d_prng::Rng;

/// Weyl step between consecutive case seeds (odd, so all 2^64 seeds
/// cycle before repeating).
const CASE_STEP: u64 = 0x9E37_79B9_7F4A_7C15;

/// The seed of case `case` in a `--seed master` run. Case 0 *is* the
/// master seed, so any failing case replays alone via
/// `--cases 1 --seed <case seed>`.
pub fn case_seed(master: u64, case: usize) -> u64 {
    master.wrapping_add((case as u64).wrapping_mul(CASE_STEP))
}

/// Parses a seed argument: `0x…` hex first, then decimal, and as a
/// last resort the FNV-1a hash of the string — so mnemonic seeds like
/// `0xT3D` (not valid hex) still name a reproducible run.
pub fn parse_seed(s: &str) -> u64 {
    let t = s.trim();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        if let Ok(v) = u64::from_str_radix(hex, 16) {
            return v;
        }
    }
    if let Ok(v) = t.parse::<u64>() {
        return v;
    }
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in t.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The program a single case seed denotes: one fresh generator stream,
/// one program. This is the replay entry point — the whole fuzzer is a
/// loop over `program_for_seed(case_seed(master, i))`.
pub fn program_for_seed(seed: u64) -> Program {
    let mut rng = Rng::seed_from_u64(seed);
    gen_program(&mut rng)
}

/// The deterministic fault a seed denotes for `--inject-fault` runs:
/// drawn from a stream decorrelated from the program's so the corrupted
/// (phase, PE, byte) doesn't track program shape.
pub fn fault_for_seed(seed: u64) -> Fault {
    let mut rng = Rng::seed_from_u64(seed ^ 0xFA17_FA17_FA17_FA17);
    Fault {
        phase: rng.gen_range(0u64..8) as usize,
        pe: rng.gen_range(0u64..8) as usize,
        off: rng.gen_range(0u64..4096),
    }
}

/// The deterministic event-skew a seed denotes for `--inject-skew`
/// runs: phase and PE from a stream decorrelated from both the
/// program's and the byte-fault's, with a delay large enough that the
/// stretched clock cannot be mistaken for timing noise.
pub fn skew_for_seed(seed: u64) -> EventSkew {
    let mut rng = Rng::seed_from_u64(seed ^ 0x5CE3_5CE3_5CE3_5CE3);
    EventSkew {
        phase: rng.gen_range(0u64..8) as usize,
        pe: rng.gen_range(0u64..8) as usize,
        extra_cy: 1 << 20,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_zero_is_the_master_seed() {
        assert_eq!(case_seed(0xABCD, 0), 0xABCD);
        assert_ne!(case_seed(0xABCD, 1), 0xABCD);
    }

    #[test]
    fn case_seeds_replay_as_their_own_case_zero() {
        let master = 0x5EED;
        for i in [1usize, 7, 300] {
            let s = case_seed(master, i);
            assert_eq!(program_for_seed(s), program_for_seed(case_seed(s, 0)));
        }
    }

    #[test]
    fn parse_seed_accepts_hex_decimal_and_mnemonics() {
        assert_eq!(parse_seed("0x10"), 16);
        assert_eq!(parse_seed("0X10"), 16);
        assert_eq!(parse_seed("42"), 42);
        // Not valid hex, not decimal: hashed, but stable.
        assert_eq!(parse_seed("0xT3D"), parse_seed("0xT3D"));
        assert_ne!(parse_seed("0xT3D"), parse_seed("0xT3E"));
    }

    #[test]
    fn faults_are_seed_deterministic() {
        assert_eq!(fault_for_seed(9), fault_for_seed(9));
    }
}
