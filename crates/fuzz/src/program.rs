//! The fuzzer's program representation and its deterministic lowering.
//!
//! A [`Program`] is a phase-structured SPMD Split-C program over a small
//! per-PE data region: `slots` words of data plus one word per lock.
//! Phases are either *sharded* (every PE's actions run inside one
//! `par_phase`, so they must be zone-disciplined — see the generator) or
//! *direct* (actions run one after another against the whole machine,
//! which is where locks and contended AM traffic live). Every phase ends
//! in a collective terminator (barrier or `all_store_sync`), which is
//! where the differential harness compares memory.
//!
//! The representation is *actions*, not raw ops: an action is a
//! well-formed mini-unit (a lock critical section is one action, a get
//! is one action whose completing `sync` is implied). [`Program::lower`]
//! turns actions into per-PE [`ScOp`] lists and re-derives every
//! consistency obligation — trailing `sync`s for split-phase issuers,
//! `store_sync` byte counts from the stores that actually remain — so a
//! shrinker can delete *any* subset of actions and the lowered program
//! is still well-formed. That structural re-lowering is what makes
//! automatic shrinking sound.

use splitc::{GlobalPtr, ScOp};
use std::fmt::Write as _;

/// Bytes per data word.
pub const WORD: u64 = 8;

/// One word of the fuzzed region: `slot` on node `pe`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cell {
    /// Owning node.
    pub pe: u32,
    /// Word index within the region.
    pub slot: u64,
}

/// One generated action. See [`Program`] for the phase discipline that
/// makes these safe to compose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    /// Charge local compute cycles.
    Advance {
        /// Cycles charged.
        cycles: u64,
    },
    /// Blocking word read; result recorded.
    Read {
        /// Word read.
        src: Cell,
    },
    /// Aligned 32-bit read of one half of a word; result recorded.
    ReadU32 {
        /// Word read.
        src: Cell,
        /// High (`true`) or low half.
        hi: bool,
    },
    /// Single-byte read; result recorded.
    ByteRead {
        /// Word read.
        src: Cell,
        /// Byte within the word (0..8).
        byte: u8,
    },
    /// Blocking word write.
    Write {
        /// Word written.
        dst: Cell,
        /// Value stored.
        value: u64,
    },
    /// Aligned 32-bit write of one half of a word (remote via AM).
    WriteU32 {
        /// Word written.
        dst: Cell,
        /// High (`true`) or low half.
        hi: bool,
        /// Value stored.
        value: u32,
    },
    /// Correct byte write (remote via AM).
    ByteWrite {
        /// Word written.
        dst: Cell,
        /// Byte within the word (0..8).
        byte: u8,
        /// Value stored.
        value: u8,
    },
    /// Split-phase put.
    Put {
        /// Word written.
        dst: Cell,
        /// Value stored.
        value: u64,
    },
    /// Signaling store.
    Store {
        /// Word written.
        dst: Cell,
        /// Value stored.
        value: u64,
    },
    /// Split-phase get into the issuer's `land` slot.
    Get {
        /// Word fetched.
        src: Cell,
        /// Issuer-local landing slot.
        land: u64,
    },
    /// Blocking bulk read of `words` words into the issuer's `land`.
    BulkRead {
        /// First word read.
        src: Cell,
        /// Word count.
        words: u64,
        /// Issuer-local landing slot.
        land: u64,
    },
    /// Non-blocking bulk get of `words` words into the issuer's `land`.
    BulkGet {
        /// First word read.
        src: Cell,
        /// Word count.
        words: u64,
        /// Issuer-local landing slot.
        land: u64,
    },
    /// Blocking bulk write of `words` issuer words starting at `from`.
    BulkWrite {
        /// First word written.
        dst: Cell,
        /// Word count.
        words: u64,
        /// Issuer-local source slot.
        from: u64,
    },
    /// Non-blocking bulk put of `words` issuer words starting at `from`.
    BulkPut {
        /// First word written.
        dst: Cell,
        /// Word count.
        words: u64,
        /// Issuer-local source slot.
        from: u64,
    },
    /// Strided gather of `count` words, `stride` words apart, into the
    /// issuer's dense `land`.
    BulkReadStrided {
        /// First element read.
        src: Cell,
        /// Element count.
        count: u64,
        /// Stride in words (≥ 1).
        stride: u64,
        /// Issuer-local landing slot.
        land: u64,
    },
    /// Strided scatter of `count` issuer words from dense `from` to
    /// elements `stride` words apart.
    BulkWriteStrided {
        /// First element written.
        dst: Cell,
        /// Element count.
        count: u64,
        /// Stride in words (≥ 1).
        stride: u64,
        /// Issuer-local source slot.
        from: u64,
    },
    /// AM-queue remote add: `delta` lands on `dst` when its owner polls
    /// (at the phase terminator).
    AmAdd {
        /// Word added to.
        dst: Cell,
        /// Added (wrapping) at dispatch.
        delta: u64,
    },
    /// Critical section (direct phases only): try-acquire lock, write
    /// `value` into the lock's group cell on `dst_pe`, release. Records
    /// whether the lock was won.
    LockGuardedWrite {
        /// Lock index.
        lock: u32,
        /// Node whose group cell is written.
        dst_pe: u32,
        /// Value stored.
        value: u64,
    },
    /// Try-acquire and *keep* the lock (direct phases only); records
    /// whether it was won.
    LockHold {
        /// Lock index.
        lock: u32,
    },
    /// Release the lock if currently held (direct phases only); records
    /// whether a release happened.
    LockFree {
        /// Lock index.
        lock: u32,
    },
    /// Functional probe of the lock word; records held/free.
    LockProbe {
        /// Lock index.
        lock: u32,
    },
}

/// An action with its issuing PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Action {
    /// Issuing PE.
    pub pe: u32,
    /// What it does.
    pub kind: ActionKind,
}

/// How a phase executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// All PEs inside one `par_phase` (zone-disciplined).
    Sharded,
    /// Actions one after another against the whole machine.
    Direct,
}

/// The collective that ends a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// `SplitC::barrier`.
    Barrier,
    /// `SplitC::all_store_sync` (ends in a barrier too).
    AllStoreSync,
}

/// One phase: actions plus its terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Execution regime.
    pub kind: PhaseKind,
    /// Closing collective.
    pub terminator: Terminator,
    /// When set, every PE that received signaling-store bytes in the
    /// *previous* phase opens this one with a matching `store_sync`.
    /// The byte counts are re-derived at lowering time from the stores
    /// that actually remain, so shrinking keeps this sound.
    pub await_stores: bool,
    /// The phase body.
    pub actions: Vec<Action>,
}

/// A complete generated program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Number of PEs.
    pub nodes: u32,
    /// Data words per PE.
    pub slots: u64,
    /// Lock count; lock `l` lives on PE `l % nodes` at word `slots + l`,
    /// and guards group cell `l` on every PE.
    pub locks: u32,
    /// The phases.
    pub phases: Vec<Phase>,
}

/// One lowered phase: per-PE op lists for sharded phases, a global
/// (pe, op) sequence for direct ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoweredPhase {
    /// Runs under `par_phase_with`; `ops[pe]` is PE `pe`'s list.
    Sharded {
        /// Per-PE op lists.
        ops: Vec<Vec<ScOp>>,
        /// Closing collective.
        terminator: Terminator,
    },
    /// Runs as a sequence of `SplitC::on` calls, in order.
    Direct {
        /// The (pe, op) sequence.
        ops: Vec<(u32, ScOp)>,
        /// Closing collective.
        terminator: Terminator,
    },
}

impl LoweredPhase {
    /// Number of ops in this phase.
    pub fn op_count(&self) -> usize {
        match self {
            LoweredPhase::Sharded { ops, .. } => ops.iter().map(Vec::len).sum(),
            LoweredPhase::Direct { ops, .. } => ops.len(),
        }
    }
}

impl Program {
    /// Region size in words: data slots plus one word per lock.
    pub fn region_words(&self) -> u64 {
        self.slots + self.locks as u64
    }

    /// Region size in bytes.
    pub fn region_bytes(&self) -> u64 {
        self.region_words() * WORD
    }

    /// Total action count (the shrinker's size metric).
    pub fn action_count(&self) -> usize {
        self.phases.iter().map(|p| p.actions.len()).sum()
    }

    /// The global pointer of a data cell, given the region base.
    pub fn cell_ptr(&self, base: u64, c: Cell) -> GlobalPtr {
        GlobalPtr::new(c.pe, base + c.slot * WORD)
    }

    /// The global pointer of lock `l`'s word.
    pub fn lock_word(&self, base: u64, l: u32) -> GlobalPtr {
        GlobalPtr::new(l % self.nodes, base + (self.slots + l as u64) * WORD)
    }

    /// Signaling-store bytes each PE receives from *other* PEs in phase
    /// `i` (what an `await_stores` prefix of phase `i + 1` waits for).
    pub fn store_bytes_received(&self, i: usize) -> Vec<u64> {
        let mut bytes = vec![0u64; self.nodes as usize];
        for a in &self.phases[i].actions {
            if let ActionKind::Store { dst, .. } = a.kind {
                if dst.pe != a.pe {
                    bytes[dst.pe as usize] += WORD;
                }
            }
        }
        bytes
    }

    /// Lowers every phase to executable [`ScOp`]s. `base` is the local
    /// offset of the allocated region (identical on every PE and in
    /// every run, because allocation is deterministic).
    pub fn lower(&self, base: u64) -> Vec<LoweredPhase> {
        let n = self.nodes as usize;
        let mut out = Vec::with_capacity(self.phases.len());
        for (i, phase) in self.phases.iter().enumerate() {
            // store_sync prefix: what arrived during the previous phase.
            let awaited = if phase.await_stores && i > 0 {
                self.store_bytes_received(i - 1)
            } else {
                vec![0; n]
            };
            match phase.kind {
                PhaseKind::Sharded => {
                    let mut ops: Vec<Vec<ScOp>> = vec![Vec::new(); n];
                    for (pe, &bytes) in awaited.iter().enumerate() {
                        if bytes > 0 {
                            ops[pe].push(ScOp::StoreSync { bytes });
                        }
                    }
                    let mut needs_sync = vec![false; n];
                    for a in &phase.actions {
                        let pe = a.pe as usize;
                        ops[pe].push(self.lower_action(base, a));
                        if matches!(
                            a.kind,
                            ActionKind::Get { .. }
                                | ActionKind::Put { .. }
                                | ActionKind::BulkGet { .. }
                                | ActionKind::BulkPut { .. }
                        ) {
                            needs_sync[pe] = true;
                        }
                    }
                    for (pe, &s) in needs_sync.iter().enumerate() {
                        if s {
                            ops[pe].push(ScOp::Sync);
                        }
                    }
                    out.push(LoweredPhase::Sharded {
                        ops,
                        terminator: phase.terminator,
                    });
                }
                PhaseKind::Direct => {
                    let mut ops: Vec<(u32, ScOp)> = Vec::new();
                    for (pe, &bytes) in awaited.iter().enumerate() {
                        if bytes > 0 {
                            ops.push((pe as u32, ScOp::StoreSync { bytes }));
                        }
                    }
                    for a in &phase.actions {
                        ops.push((a.pe, self.lower_action(base, a)));
                    }
                    out.push(LoweredPhase::Direct {
                        ops,
                        terminator: phase.terminator,
                    });
                }
            }
        }
        out
    }

    fn lower_action(&self, base: u64, a: &Action) -> ScOp {
        let ptr = |c: Cell| self.cell_ptr(base, c);
        match a.kind {
            ActionKind::Advance { cycles } => ScOp::Advance { cycles },
            ActionKind::Read { src } => ScOp::ReadU64 { src: ptr(src) },
            ActionKind::ReadU32 { src, hi } => ScOp::ReadU32 {
                src: ptr(src).local_add(if hi { 4 } else { 0 }),
            },
            ActionKind::ByteRead { src, byte } => ScOp::ByteRead {
                src: ptr(src).local_add(byte as u64),
            },
            ActionKind::Write { dst, value } => ScOp::WriteU64 {
                dst: ptr(dst),
                value,
            },
            ActionKind::WriteU32 { dst, hi, value } => ScOp::WriteU32 {
                dst: ptr(dst).local_add(if hi { 4 } else { 0 }),
                value,
            },
            ActionKind::ByteWrite { dst, byte, value } => ScOp::ByteWrite {
                dst: ptr(dst).local_add(byte as u64),
                value,
            },
            ActionKind::Put { dst, value } => ScOp::Put {
                dst: ptr(dst),
                value,
            },
            ActionKind::Store { dst, value } => ScOp::StoreU64 {
                dst: ptr(dst),
                value,
            },
            ActionKind::Get { src, land } => ScOp::Get {
                local_off: base + land * WORD,
                src: ptr(src),
            },
            ActionKind::BulkRead { src, words, land } => ScOp::BulkRead {
                local_off: base + land * WORD,
                src: ptr(src),
                bytes: words * WORD,
            },
            ActionKind::BulkGet { src, words, land } => ScOp::BulkGet {
                local_off: base + land * WORD,
                src: ptr(src),
                bytes: words * WORD,
            },
            ActionKind::BulkWrite { dst, words, from } => ScOp::BulkWrite {
                dst: ptr(dst),
                local_off: base + from * WORD,
                bytes: words * WORD,
            },
            ActionKind::BulkPut { dst, words, from } => ScOp::BulkPut {
                dst: ptr(dst),
                local_off: base + from * WORD,
                bytes: words * WORD,
            },
            ActionKind::BulkReadStrided {
                src,
                count,
                stride,
                land,
            } => ScOp::BulkReadStrided {
                local_off: base + land * WORD,
                src: ptr(src),
                count,
                elem_bytes: WORD,
                stride_bytes: stride * WORD,
            },
            ActionKind::BulkWriteStrided {
                dst,
                count,
                stride,
                from,
            } => ScOp::BulkWriteStrided {
                dst: ptr(dst),
                local_off: base + from * WORD,
                count,
                elem_bytes: WORD,
                stride_bytes: stride * WORD,
            },
            ActionKind::AmAdd { dst, delta } => ScOp::AmAdd {
                target_pe: dst.pe,
                off: base + dst.slot * WORD,
                delta,
            },
            ActionKind::LockGuardedWrite {
                lock,
                dst_pe,
                value,
            } => ScOp::LockGuardedWrite {
                word: self.lock_word(base, lock),
                dst: self.cell_ptr(
                    base,
                    Cell {
                        pe: dst_pe,
                        slot: lock as u64,
                    },
                ),
                value,
            },
            ActionKind::LockHold { lock } => ScOp::LockTryAcquire {
                word: self.lock_word(base, lock),
            },
            ActionKind::LockFree { lock } => ScOp::LockFreeIfHeld {
                word: self.lock_word(base, lock),
            },
            ActionKind::LockProbe { lock } => ScOp::LockIsHeld {
                word: self.lock_word(base, lock),
            },
        }
    }

    /// Renders a self-contained reproducer: the seed line plus the full
    /// action and lowered-op listing.
    pub fn render_reproducer(&self, seed: u64, base: u64) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "# t3d-fuzz reproducer — replay with: t3d-fuzz --cases 1 --seed {seed:#x}"
        );
        let _ = writeln!(
            s,
            "nodes={} slots={} locks={} region_base={base:#x}",
            self.nodes, self.slots, self.locks
        );
        for (i, p) in self.phases.iter().enumerate() {
            let _ = writeln!(
                s,
                "phase {i}: {:?}, terminator={:?}, await_stores={}",
                p.kind, p.terminator, p.await_stores
            );
            for a in &p.actions {
                let _ = writeln!(s, "  pe{}: {:?}", a.pe, a.kind);
            }
        }
        let _ = writeln!(s, "lowered ops:");
        for (i, lp) in self.lower(base).iter().enumerate() {
            match lp {
                LoweredPhase::Sharded { ops, terminator } => {
                    let _ = writeln!(s, "  phase {i} (sharded, {terminator:?}):");
                    for (pe, list) in ops.iter().enumerate() {
                        if !list.is_empty() {
                            let _ = writeln!(s, "    pe{pe}: {list:?}");
                        }
                    }
                }
                LoweredPhase::Direct { ops, terminator } => {
                    let _ = writeln!(s, "  phase {i} (direct, {terminator:?}):");
                    for (pe, op) in ops {
                        let _ = writeln!(s, "    pe{pe}: {op:?}");
                    }
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Program {
        Program {
            nodes: 2,
            slots: 8,
            locks: 1,
            phases: vec![
                Phase {
                    kind: PhaseKind::Sharded,
                    terminator: Terminator::Barrier,
                    await_stores: false,
                    actions: vec![
                        Action {
                            pe: 0,
                            kind: ActionKind::Store {
                                dst: Cell { pe: 1, slot: 2 },
                                value: 7,
                            },
                        },
                        Action {
                            pe: 1,
                            kind: ActionKind::Get {
                                src: Cell { pe: 0, slot: 0 },
                                land: 3,
                            },
                        },
                    ],
                },
                Phase {
                    kind: PhaseKind::Direct,
                    terminator: Terminator::AllStoreSync,
                    await_stores: true,
                    actions: vec![Action {
                        pe: 0,
                        kind: ActionKind::LockProbe { lock: 0 },
                    }],
                },
            ],
        }
    }

    #[test]
    fn lowering_appends_sync_for_split_phase_issuers() {
        let p = tiny();
        let lowered = p.lower(0x100);
        let LoweredPhase::Sharded { ops, .. } = &lowered[0] else {
            panic!("phase 0 is sharded");
        };
        assert!(
            matches!(ops[0].as_slice(), [ScOp::StoreU64 { .. }]),
            "{:?}",
            ops[0]
        );
        assert!(
            matches!(ops[1].as_slice(), [ScOp::Get { .. }, ScOp::Sync]),
            "get issuer syncs: {:?}",
            ops[1]
        );
    }

    #[test]
    fn await_stores_waits_for_exactly_the_surviving_bytes() {
        let mut p = tiny();
        let lowered = p.lower(0x100);
        let LoweredPhase::Direct { ops, .. } = &lowered[1] else {
            panic!("phase 1 is direct");
        };
        assert_eq!(
            ops[0],
            (1, ScOp::StoreSync { bytes: 8 }),
            "PE 1 awaits one store"
        );
        // Delete the store (what a shrinker does): the prefix disappears.
        p.phases[0].actions.remove(0);
        let lowered = p.lower(0x100);
        let LoweredPhase::Direct { ops, .. } = &lowered[1] else {
            panic!("phase 1 is direct");
        };
        assert!(
            !ops.iter()
                .any(|(_, op)| matches!(op, ScOp::StoreSync { .. })),
            "no stores → no store_sync: {ops:?}"
        );
    }

    #[test]
    fn local_stores_do_not_count_as_arrivals() {
        let mut p = tiny();
        p.phases[0].actions[0].pe = 1; // store to self
        assert_eq!(p.store_bytes_received(0), vec![0, 0]);
    }

    #[test]
    fn lock_words_sit_after_the_data_slots() {
        let p = tiny();
        assert_eq!(p.region_words(), 9);
        let w = p.lock_word(0x100, 0);
        assert_eq!(w.pe(), 0);
        assert_eq!(w.addr(), 0x100 + 8 * WORD);
    }

    #[test]
    fn reproducer_mentions_seed_and_ops() {
        let p = tiny();
        let r = p.render_reproducer(0xBEEF, 0x100);
        assert!(r.contains("--seed 0xbeef"));
        assert!(r.contains("StoreU64"));
        assert!(r.contains("lowered ops:"));
    }
}
