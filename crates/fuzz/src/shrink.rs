//! Automatic reproducer minimization.
//!
//! Given a failing case, [`shrink`] repeats two passes to a fixpoint
//! (or an oracle-call budget): structural deletion — whole phases, then
//! per-phase action chunks halving down to singles — and operand
//! simplification, which rewrites surviving actions toward the smallest
//! equivalent form (`value → 1`, `words → 1`, `stride → 1`, …).
//!
//! Every candidate is re-lowered from scratch, so trailing `Sync`s and
//! `StoreSync` byte counts are always consistent with the surviving
//! actions — a shrunk program is well formed by construction, and every
//! simplification keeps spans inside their originally zoned extents, so
//! a zone-disciplined program stays disciplined while it shrinks.

use crate::harness::{check_case, Fault};
use crate::program::{ActionKind, Program, Terminator};

/// Oracle calls a default [`shrink`] may spend.
pub const DEFAULT_BUDGET: usize = 400;

/// Minimizes `prog` while `check_case(_, threads, fault)` keeps
/// failing. Returns the smallest failing program found within `budget`
/// oracle calls.
pub fn shrink(prog: &Program, threads: usize, fault: Option<Fault>, budget: usize) -> Program {
    shrink_with(prog, budget, &|cand| {
        check_case(cand, threads, fault).is_some()
    })
}

/// [`shrink`] against an arbitrary failure oracle — the engine-matrix
/// mode shrinks against its own four-way differential, other callers
/// against [`check_case`]. `oracle` returns `true` while the candidate
/// still fails.
pub fn shrink_with(prog: &Program, budget: usize, oracle: &dyn Fn(&Program) -> bool) -> Program {
    let mut best = prog.clone();
    let mut calls = budget;
    let still_fails = |cand: &Program, calls: &mut usize| -> bool {
        if *calls == 0 {
            return false;
        }
        *calls -= 1;
        oracle(cand)
    };
    loop {
        let before = size_of(&best);

        // Pass 1a: drop whole phases (keep at least one so the fault
        // self-test still has a terminator to corrupt after).
        let mut i = 0;
        while best.phases.len() > 1 && i < best.phases.len() {
            let mut cand = best.clone();
            cand.phases.remove(i);
            if still_fails(&cand, &mut calls) {
                best = cand;
            } else {
                i += 1;
            }
        }

        // Pass 1b: per phase, delete action chunks, halving the chunk
        // size down to single actions.
        for pi in 0..best.phases.len() {
            let mut chunk = best.phases[pi].actions.len().div_ceil(2).max(1);
            loop {
                let mut start = 0;
                while start < best.phases[pi].actions.len() {
                    let end = (start + chunk).min(best.phases[pi].actions.len());
                    let mut cand = best.clone();
                    cand.phases[pi].actions.drain(start..end);
                    if still_fails(&cand, &mut calls) {
                        best = cand;
                    } else {
                        start = end;
                    }
                }
                if chunk == 1 {
                    break;
                }
                chunk = (chunk / 2).max(1);
            }
        }

        // Pass 2: simplify operands and phase attributes in place.
        for pi in 0..best.phases.len() {
            if best.phases[pi].terminator != Terminator::Barrier {
                let mut cand = best.clone();
                cand.phases[pi].terminator = Terminator::Barrier;
                if still_fails(&cand, &mut calls) {
                    best = cand;
                }
            }
            if best.phases[pi].await_stores {
                let mut cand = best.clone();
                cand.phases[pi].await_stores = false;
                if still_fails(&cand, &mut calls) {
                    best = cand;
                }
            }
            for ai in 0..best.phases[pi].actions.len() {
                for simpler in simpler_kinds(best.phases[pi].actions[ai].kind) {
                    let mut cand = best.clone();
                    cand.phases[pi].actions[ai].kind = simpler;
                    if still_fails(&cand, &mut calls) {
                        best = cand;
                        break;
                    }
                }
            }
        }

        if calls == 0 || size_of(&best) == before {
            return best;
        }
    }
}

/// Size metric driving the fixpoint: structure first, then operand
/// magnitude via the debug rendering's length.
fn size_of(p: &Program) -> (usize, usize, usize) {
    (p.phases.len(), p.action_count(), format!("{p:?}").len())
}

/// Strictly-simpler variants of one action, most aggressive first.
/// Every rewrite keeps the touched span inside the original's, so zone
/// discipline survives shrinking.
fn simpler_kinds(kind: ActionKind) -> Vec<ActionKind> {
    use ActionKind::*;
    let mut out = Vec::new();
    match kind {
        Advance { cycles } if cycles > 1 => out.push(Advance { cycles: 1 }),
        Write { dst, value } if value != 1 => out.push(Write { dst, value: 1 }),
        Put { dst, value } if value != 1 => out.push(Put { dst, value: 1 }),
        Store { dst, value } if value != 1 => out.push(Store { dst, value: 1 }),
        WriteU32 { dst, hi, value } => {
            if value != 1 {
                out.push(WriteU32 { dst, hi, value: 1 });
            }
            if hi {
                out.push(WriteU32 {
                    dst,
                    hi: false,
                    value,
                });
            }
        }
        ByteWrite { dst, byte, value } => {
            if value != 1 {
                out.push(ByteWrite {
                    dst,
                    byte,
                    value: 1,
                });
            }
            if byte != 0 {
                out.push(ByteWrite {
                    dst,
                    byte: 0,
                    value,
                });
            }
        }
        ReadU32 { src, hi } if hi => out.push(ReadU32 { src, hi: false }),
        ByteRead { src, byte } if byte != 0 => out.push(ByteRead { src, byte: 0 }),
        BulkRead { src, words, land } if words > 1 => out.push(BulkRead {
            src,
            words: 1,
            land,
        }),
        BulkGet { src, words, land } if words > 1 => out.push(BulkGet {
            src,
            words: 1,
            land,
        }),
        BulkWrite { dst, words, from } if words > 1 => out.push(BulkWrite {
            dst,
            words: 1,
            from,
        }),
        BulkPut { dst, words, from } if words > 1 => out.push(BulkPut {
            dst,
            words: 1,
            from,
        }),
        BulkReadStrided {
            src,
            count,
            stride,
            land,
        } => {
            if count > 2 {
                out.push(BulkReadStrided {
                    src,
                    count: 2,
                    stride,
                    land,
                });
            }
            if stride > 1 {
                out.push(BulkReadStrided {
                    src,
                    count,
                    stride: 1,
                    land,
                });
            }
        }
        BulkWriteStrided {
            dst,
            count,
            stride,
            from,
        } => {
            if count > 2 {
                out.push(BulkWriteStrided {
                    dst,
                    count: 2,
                    stride,
                    from,
                });
            }
            if stride > 1 {
                out.push(BulkWriteStrided {
                    dst,
                    count,
                    stride: 1,
                    from,
                });
            }
        }
        AmAdd { dst, delta } if delta != 1 => out.push(AmAdd { dst, delta: 1 }),
        LockGuardedWrite {
            lock,
            dst_pe,
            value,
        } if value != 1 => {
            out.push(LockGuardedWrite {
                lock,
                dst_pe,
                value: 1,
            });
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Action, Cell, Phase, PhaseKind};

    fn noisy_prog() -> Program {
        let mut phases = Vec::new();
        for i in 0..4 {
            phases.push(Phase {
                kind: PhaseKind::Sharded,
                terminator: if i == 2 {
                    Terminator::AllStoreSync
                } else {
                    Terminator::Barrier
                },
                await_stores: i > 0,
                actions: vec![
                    Action {
                        pe: 0,
                        kind: ActionKind::Store {
                            dst: Cell { pe: 1, slot: i },
                            value: 0xDEAD + i,
                        },
                    },
                    Action {
                        pe: 1,
                        kind: ActionKind::Put {
                            dst: Cell { pe: 0, slot: 4 + i },
                            value: 77,
                        },
                    },
                    Action {
                        pe: 1,
                        kind: ActionKind::AmAdd {
                            dst: Cell { pe: 0, slot: 8 + i },
                            delta: 1000,
                        },
                    },
                ],
            });
        }
        Program {
            nodes: 2,
            slots: 16,
            locks: 1,
            phases,
        }
    }

    #[test]
    fn an_injected_fault_shrinks_to_almost_nothing() {
        let p = noisy_prog();
        let fault = Fault {
            phase: 3,
            pe: 0,
            off: 9,
        };
        assert!(
            check_case(&p, 2, Some(fault)).is_some(),
            "fault must reproduce"
        );
        let small = shrink(&p, 2, Some(fault), DEFAULT_BUDGET);
        assert!(
            check_case(&small, 2, Some(fault)).is_some(),
            "shrunk case still fails"
        );
        assert_eq!(small.phases.len(), 1, "one phase survives");
        assert!(small.action_count() <= 1, "actions deleted: {small:?}");
        let ops: usize = small.lower(0x1000).iter().map(|p| p.op_count()).sum();
        assert!(ops <= 12, "lowered ops within the acceptance bound: {ops}");
    }

    #[test]
    fn simplification_reduces_operands() {
        use ActionKind::*;
        let k = Store {
            dst: Cell { pe: 1, slot: 0 },
            value: 0xFFFF,
        };
        assert_eq!(
            simpler_kinds(k),
            vec![Store {
                dst: Cell { pe: 1, slot: 0 },
                value: 1
            }]
        );
        let s = BulkWriteStrided {
            dst: Cell { pe: 1, slot: 0 },
            count: 5,
            stride: 3,
            from: 0,
        };
        assert_eq!(simpler_kinds(s).len(), 2, "count and stride variants");
        assert!(simpler_kinds(Read {
            src: Cell { pe: 0, slot: 0 }
        })
        .is_empty());
    }

    #[test]
    fn shrink_respects_the_budget() {
        let p = noisy_prog();
        let fault = Fault {
            phase: 0,
            pe: 0,
            off: 0,
        };
        // Zero budget: nothing shrinks, input returned unchanged.
        let same = shrink(&p, 2, Some(fault), 0);
        assert_eq!(same, p);
    }
}
