//! The flat reference interpreter.
//!
//! A deliberately boring model of what a generated program *means*: one
//! `u64` array per PE (data slots followed by lock words), every
//! operation applied immediately and sequentially in action order, with
//! the single timing-flavored nuance the runtime's semantics force —
//! AM-routed effects (remote adds, remote byte and u32 writes) are
//! buffered and land at the phase-ending barrier, when the target polls
//! its queue. There are no caches, no write buffers, no clocks and no
//! network: if the real runtime's memory disagrees with this model at a
//! barrier, some mechanism (or the phase engine merging its effects)
//! broke.
//!
//! The model also predicts every value-producing op's result (reads,
//! lock outcomes), which the harness compares against both drivers.

use crate::program::{ActionKind, Cell, Phase, PhaseKind, Program};

/// An AM effect parked until the phase-ending barrier.
enum AmEffect {
    Add { dst: Cell, delta: u64 },
    Byte { dst: Cell, byte: u8, value: u8 },
    U32 { dst: Cell, hi: bool, value: u32 },
}

/// What the reference model expects of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefOutcome {
    /// Per phase, per PE: the full region (data slots then lock words)
    /// as settled at that phase's terminator.
    pub phase_mems: Vec<Vec<Vec<u64>>>,
    /// Per PE: every value-producing op's result, in issue order.
    pub results: Vec<Vec<u64>>,
}

struct FlatRef {
    slots: u64,
    /// `mem[pe][slot]`; lock `l`'s word is `mem[l % nodes][slots + l]`.
    mem: Vec<Vec<u64>>,
    pending_am: Vec<AmEffect>,
    results: Vec<Vec<u64>>,
}

/// Interprets a program, returning the expected memory at every barrier
/// and the expected results.
pub fn interpret(prog: &Program) -> RefOutcome {
    let mut r = FlatRef {
        slots: prog.slots,
        mem: vec![vec![0u64; prog.region_words() as usize]; prog.nodes as usize],
        pending_am: Vec::new(),
        results: vec![Vec::new(); prog.nodes as usize],
    };
    let mut phase_mems = Vec::with_capacity(prog.phases.len());
    for phase in &prog.phases {
        r.run_phase(prog, phase);
        phase_mems.push(r.mem.clone());
    }
    RefOutcome {
        phase_mems,
        results: r.results,
    }
}

impl FlatRef {
    fn word(&self, c: Cell) -> u64 {
        self.mem[c.pe as usize][c.slot as usize]
    }

    fn word_mut(&mut self, c: Cell) -> &mut u64 {
        &mut self.mem[c.pe as usize][c.slot as usize]
    }

    fn lock_cell(&self, prog: &Program, l: u32) -> Cell {
        Cell {
            pe: l % prog.nodes,
            slot: self.slots + l as u64,
        }
    }

    fn run_phase(&mut self, prog: &Program, phase: &Phase) {
        for a in &phase.actions {
            self.run_action(prog, phase.kind, a.pe, a.kind);
        }
        // The terminator: every queue is polled, parked AM effects land
        // in deposit order.
        for eff in std::mem::take(&mut self.pending_am) {
            match eff {
                AmEffect::Add { dst, delta } => {
                    *self.word_mut(dst) = self.word(dst).wrapping_add(delta);
                }
                AmEffect::Byte { dst, byte, value } => {
                    *self.word_mut(dst) = set_byte(self.word(dst), byte, value);
                }
                AmEffect::U32 { dst, hi, value } => {
                    *self.word_mut(dst) = set_half(self.word(dst), hi, value);
                }
            }
        }
    }

    fn run_action(&mut self, prog: &Program, _kind: PhaseKind, pe: u32, a: ActionKind) {
        let me = pe as usize;
        match a {
            ActionKind::Advance { .. } => {}
            ActionKind::Read { src } => {
                let v = self.word(src);
                self.results[me].push(v);
            }
            ActionKind::ReadU32 { src, hi } => {
                let w = self.word(src);
                let v = if hi { (w >> 32) as u32 } else { w as u32 };
                self.results[me].push(v as u64);
            }
            ActionKind::ByteRead { src, byte } => {
                let v = (self.word(src) >> (8 * byte as u32)) & 0xFF;
                self.results[me].push(v);
            }
            ActionKind::Write { dst, value }
            | ActionKind::Put { dst, value }
            | ActionKind::Store { dst, value } => {
                *self.word_mut(dst) = value;
            }
            ActionKind::WriteU32 { dst, hi, value } => {
                if dst.pe == pe {
                    *self.word_mut(dst) = set_half(self.word(dst), hi, value);
                } else {
                    self.pending_am.push(AmEffect::U32 { dst, hi, value });
                }
            }
            ActionKind::ByteWrite { dst, byte, value } => {
                if dst.pe == pe {
                    *self.word_mut(dst) = set_byte(self.word(dst), byte, value);
                } else {
                    self.pending_am.push(AmEffect::Byte { dst, byte, value });
                }
            }
            ActionKind::Get { src, land } => {
                let v = self.word(src);
                self.mem[me][land as usize] = v;
            }
            ActionKind::BulkRead { src, words, land }
            | ActionKind::BulkGet { src, words, land } => {
                for k in 0..words {
                    let v = self.word(Cell {
                        pe: src.pe,
                        slot: src.slot + k,
                    });
                    self.mem[me][(land + k) as usize] = v;
                }
            }
            ActionKind::BulkWrite { dst, words, from }
            | ActionKind::BulkPut { dst, words, from } => {
                for k in 0..words {
                    let v = self.mem[me][(from + k) as usize];
                    *self.word_mut(Cell {
                        pe: dst.pe,
                        slot: dst.slot + k,
                    }) = v;
                }
            }
            ActionKind::BulkReadStrided {
                src,
                count,
                stride,
                land,
            } => {
                for k in 0..count {
                    let v = self.word(Cell {
                        pe: src.pe,
                        slot: src.slot + k * stride,
                    });
                    self.mem[me][(land + k) as usize] = v;
                }
            }
            ActionKind::BulkWriteStrided {
                dst,
                count,
                stride,
                from,
            } => {
                for k in 0..count {
                    let v = self.mem[me][(from + k) as usize];
                    *self.word_mut(Cell {
                        pe: dst.pe,
                        slot: dst.slot + k * stride,
                    }) = v;
                }
            }
            ActionKind::AmAdd { dst, delta } => {
                self.pending_am.push(AmEffect::Add { dst, delta });
            }
            ActionKind::LockGuardedWrite {
                lock,
                dst_pe,
                value,
            } => {
                let word = self.lock_cell(prog, lock);
                if self.word(word) == 0 {
                    *self.word_mut(Cell {
                        pe: dst_pe,
                        slot: lock as u64,
                    }) = value;
                    self.results[me].push(1);
                } else {
                    self.results[me].push(0);
                }
            }
            ActionKind::LockHold { lock } => {
                let word = self.lock_cell(prog, lock);
                if self.word(word) == 0 {
                    *self.word_mut(word) = 1;
                    self.results[me].push(1);
                } else {
                    self.results[me].push(0);
                }
            }
            ActionKind::LockFree { lock } => {
                let word = self.lock_cell(prog, lock);
                if self.word(word) == 1 {
                    *self.word_mut(word) = 0;
                    self.results[me].push(1);
                } else {
                    self.results[me].push(0);
                }
            }
            ActionKind::LockProbe { lock } => {
                let v = self.word(self.lock_cell(prog, lock));
                self.results[me].push(v);
            }
        }
    }
}

fn set_byte(w: u64, byte: u8, v: u8) -> u64 {
    let sh = 8 * byte as u32;
    (w & !(0xFFu64 << sh)) | ((v as u64) << sh)
}

fn set_half(w: u64, hi: bool, v: u32) -> u64 {
    if hi {
        (w & 0x0000_0000_FFFF_FFFF) | ((v as u64) << 32)
    } else {
        (w & 0xFFFF_FFFF_0000_0000) | v as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Action, Phase, PhaseKind, Terminator};

    fn prog(actions: Vec<Action>, kind: PhaseKind) -> Program {
        Program {
            nodes: 2,
            slots: 8,
            locks: 1,
            phases: vec![Phase {
                kind,
                terminator: Terminator::Barrier,
                await_stores: false,
                actions,
            }],
        }
    }

    #[test]
    fn am_adds_land_at_the_barrier_not_before() {
        let p = prog(
            vec![
                Action {
                    pe: 0,
                    kind: ActionKind::AmAdd {
                        dst: Cell { pe: 1, slot: 2 },
                        delta: 5,
                    },
                },
                // A read of the same cell inside the phase sees the
                // pre-add value (the queue is polled at the barrier).
                Action {
                    pe: 1,
                    kind: ActionKind::Read {
                        src: Cell { pe: 1, slot: 2 },
                    },
                },
            ],
            PhaseKind::Direct,
        );
        let out = interpret(&p);
        assert_eq!(out.results[1], vec![0], "read precedes the dispatch");
        assert_eq!(out.phase_mems[0][1][2], 5, "add landed by the barrier");
    }

    #[test]
    fn sub_word_writes_edit_the_containing_word() {
        let p = prog(
            vec![
                Action {
                    pe: 0,
                    kind: ActionKind::Write {
                        dst: Cell { pe: 0, slot: 1 },
                        value: u64::MAX,
                    },
                },
                Action {
                    pe: 0,
                    kind: ActionKind::ByteWrite {
                        dst: Cell { pe: 0, slot: 1 },
                        byte: 2,
                        value: 0,
                    },
                },
                Action {
                    pe: 0,
                    kind: ActionKind::WriteU32 {
                        dst: Cell { pe: 0, slot: 1 },
                        hi: true,
                        value: 7,
                    },
                },
            ],
            PhaseKind::Direct,
        );
        let out = interpret(&p);
        assert_eq!(out.phase_mems[0][0][1], 0x0000_0007_FF00_FFFF);
    }

    #[test]
    fn lock_state_machine_matches_word_semantics() {
        let p = prog(
            vec![
                Action {
                    pe: 0,
                    kind: ActionKind::LockHold { lock: 0 },
                },
                Action {
                    pe: 1,
                    kind: ActionKind::LockGuardedWrite {
                        lock: 0,
                        dst_pe: 1,
                        value: 9,
                    },
                },
                Action {
                    pe: 1,
                    kind: ActionKind::LockProbe { lock: 0 },
                },
                Action {
                    pe: 0,
                    kind: ActionKind::LockFree { lock: 0 },
                },
                Action {
                    pe: 1,
                    kind: ActionKind::LockGuardedWrite {
                        lock: 0,
                        dst_pe: 1,
                        value: 9,
                    },
                },
            ],
            PhaseKind::Direct,
        );
        let out = interpret(&p);
        assert_eq!(out.results[0], vec![1, 1], "hold wins, free releases");
        assert_eq!(
            out.results[1],
            vec![0, 1, 1],
            "busy, probed held, then wins"
        );
        assert_eq!(out.phase_mems[0][1][0], 9, "guarded write landed on retry");
        assert_eq!(out.phase_mems[0][0][8], 0, "lock word free at the end");
    }

    #[test]
    fn strided_scatter_gather_use_word_strides() {
        let p = prog(
            vec![
                Action {
                    pe: 0,
                    kind: ActionKind::Write {
                        dst: Cell { pe: 0, slot: 0 },
                        value: 10,
                    },
                },
                Action {
                    pe: 0,
                    kind: ActionKind::Write {
                        dst: Cell { pe: 0, slot: 1 },
                        value: 11,
                    },
                },
                Action {
                    pe: 0,
                    kind: ActionKind::BulkWriteStrided {
                        dst: Cell { pe: 1, slot: 1 },
                        count: 2,
                        stride: 3,
                        from: 0,
                    },
                },
            ],
            PhaseKind::Sharded,
        );
        let out = interpret(&p);
        assert_eq!(out.phase_mems[0][1][1], 10);
        assert_eq!(out.phase_mems[0][1][4], 11);
        assert_eq!(out.phase_mems[0][1][2], 0, "gap untouched");
    }
}
