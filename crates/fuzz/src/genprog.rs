//! Grammar-based generation of well-formed Split-C programs.
//!
//! The generator composes the full primitive surface, but under a *zone
//! discipline* that makes every program sanitizer-clean and
//! reference-equivalent by construction:
//!
//! * **Sharded phases** (run inside `par_phase`, so any PE interleaving
//!   must be equivalent): each region cell is written by at most one
//!   action per phase, and no action reads a cell any action writes in
//!   the same phase — all communication crosses a phase boundary, which
//!   is exactly the bulk-synchronous discipline the runtime's barrier
//!   (a full happens-before edge) synchronizes. Strided transfers zone
//!   their whole span, gaps included, mirroring the sanitizer's
//!   conservative span events. AM-routed ops (remote adds, remote byte
//!   and u32 writes) additionally honor the engine's documented
//!   single-depositor-per-target rule: per-shard fetch&inc tickets make
//!   multi-sender deposits to one queue collide inside one phase.
//! * **Direct phases** (actions run sequentially against the whole
//!   machine): reads are unrestricted and plain writes stay exclusive
//!   per cell; locks live only here (remote atomic swap is illegal in a
//!   shard), with each lock guarding its own group cell so concurrent
//!   critical sections are ordered by the lock's happens-before edge;
//!   AM adds may contend freely (they commute).
//! * **Split-phase issuers sync before the phase ends** (enforced
//!   structurally by lowering), and `store_sync` waits are derived from
//!   the stores that actually arrived — cumulative, so they can never
//!   deadlock.
//!
//! Occasionally the region is sized in the thousands of words so bulk
//! transfers cross the prefetch→BLT mechanism crossovers (7,900 B for
//! gets, 16 KB for reads).

use crate::program::{Action, ActionKind, Cell, Phase, PhaseKind, Program, Terminator};
use std::collections::{HashMap, HashSet};
use t3d_prng::Rng;

/// Hard cap on AM deposits per target per phase (queue has 256 slots;
/// every deposit is drained at the phase-ending barrier).
const MAX_DEPOSITS_PER_TARGET: u32 = 48;
/// Cap on split-phase gets per PE per phase.
const MAX_GETS_PER_PE: u32 = 12;

/// Generates one random well-formed program.
pub fn gen_program(rng: &mut Rng) -> Program {
    // Machine sizes must be powers of two (`Machine::try_new` rejects
    // the rest); one draw rounded up keeps the RNG stream layout and
    // yields 2/4/8-node machines.
    let nodes = rng.gen_range(2u32..6).next_power_of_two();
    // ~10% of programs get a big region so bulk ops cross the BLT
    // thresholds (988 words for gets, 2,048 for reads).
    let slots = if rng.chance(0.1) {
        rng.gen_range(4300u64..4800)
    } else {
        rng.gen_range(16u64..64)
    };
    let locks = rng.gen_range(1u32..4);
    let n_phases = rng.gen_range(1usize..5);
    let mut phases = Vec::with_capacity(n_phases);
    for i in 0..n_phases {
        let kind = if rng.chance(0.3) {
            PhaseKind::Direct
        } else {
            PhaseKind::Sharded
        };
        let actions = match kind {
            PhaseKind::Sharded => gen_sharded_actions(rng, nodes, slots),
            PhaseKind::Direct => gen_direct_actions(rng, nodes, slots, locks),
        };
        phases.push(Phase {
            kind,
            terminator: if rng.chance(0.3) {
                Terminator::AllStoreSync
            } else {
                Terminator::Barrier
            },
            await_stores: i > 0 && rng.chance(0.5),
            actions,
        });
    }
    Program {
        nodes,
        slots,
        locks,
        phases,
    }
}

/// A value with a bias toward interesting shapes.
fn value(rng: &mut Rng) -> u64 {
    match rng.gen_range(0u32..4) {
        0 => rng.gen_range(0u64..16),
        1 => u64::MAX,
        2 => 1u64 << rng.gen_range(0u32..64),
        _ => rng.next_u64(),
    }
}

struct Zone {
    /// Cells written this phase (one writer, no readers).
    written: HashSet<Cell>,
    /// Cells read this phase. Inside a sharded phase a remote read
    /// observes *phase-start* state no matter where the writing action
    /// sits in the generated list (shards are isolated, and merged
    /// effect timestamps need not follow generation order), so reads
    /// and writes of a cell exclude each other in *both* directions.
    read: HashSet<Cell>,
    depositor: HashMap<u32, u32>,
    deposits: HashMap<u32, u32>,
    gets: HashMap<u32, u32>,
    slots: u64,
    nodes: u32,
}

impl Zone {
    fn new(nodes: u32, slots: u64) -> Self {
        Zone {
            written: HashSet::new(),
            read: HashSet::new(),
            depositor: HashMap::new(),
            deposits: HashMap::new(),
            gets: HashMap::new(),
            slots,
            nodes,
        }
    }

    fn cell(&self, rng: &mut Rng) -> Cell {
        Cell {
            pe: rng.gen_range(0..self.nodes),
            slot: rng.gen_range(0..self.slots),
        }
    }

    /// Whether `[slot, slot + len)` on `pe` may be read this phase.
    fn read_ok(&self, pe: u32, slot: u64, len: u64) -> bool {
        slot + len <= self.slots
            && (0..len).all(|k| !self.written.contains(&Cell { pe, slot: slot + k }))
    }

    fn claim_read(&mut self, pe: u32, slot: u64, len: u64) {
        for k in 0..len {
            self.read.insert(Cell { pe, slot: slot + k });
        }
    }

    /// Whether `[slot, slot + len)` on `pe` may be written this phase
    /// (nobody else wrote it, nobody reads it).
    fn write_ok(&self, pe: u32, slot: u64, len: u64) -> bool {
        slot + len <= self.slots
            && (0..len).all(|k| {
                let c = Cell { pe, slot: slot + k };
                !self.written.contains(&c) && !self.read.contains(&c)
            })
    }

    fn claim_write(&mut self, pe: u32, slot: u64, len: u64) {
        for k in 0..len {
            self.written.insert(Cell { pe, slot: slot + k });
        }
    }

    /// Reserves an AM deposit from `sender` to `target`'s queue under
    /// the single-depositor-per-target rule (sharded phases only pass
    /// `exclusive = true`).
    fn claim_deposit(&mut self, sender: u32, target: u32, exclusive: bool) -> bool {
        if exclusive {
            match self.depositor.get(&target) {
                Some(&s) if s != sender => return false,
                _ => {}
            }
        }
        let n = self.deposits.entry(target).or_insert(0);
        if *n >= MAX_DEPOSITS_PER_TARGET {
            return false;
        }
        *n += 1;
        if exclusive {
            self.depositor.insert(target, sender);
        }
        true
    }
}

fn gen_sharded_actions(rng: &mut Rng, nodes: u32, slots: u64) -> Vec<Action> {
    let mut zone = Zone::new(nodes, slots);
    let n_actions = rng.gen_range(0..(nodes as usize * 6));
    let mut actions = Vec::new();
    for _ in 0..n_actions {
        let pe = rng.gen_range(0..nodes);
        for _attempt in 0..10 {
            if let Some(kind) = gen_sharded_action(rng, pe, &mut zone) {
                actions.push(Action { pe, kind });
                break;
            }
        }
    }
    actions
}

/// Whether `[a, a + alen)` and `[b, b + blen)` intersect.
fn overlaps(a: u64, alen: u64, b: u64, blen: u64) -> bool {
    a < b + blen && b < a + alen
}

/// One zone-disciplined sharded action, or `None` when the random pick
/// could not be placed (caller retries). An action's own read and write
/// spans must not intersect either — `read_ok`/`write_ok` are checked
/// before anything is claimed, so self-overlap needs an explicit test.
fn gen_sharded_action(rng: &mut Rng, pe: u32, z: &mut Zone) -> Option<ActionKind> {
    let big = z.slots > 1024;
    let bulk_words = |rng: &mut Rng, z: &Zone| -> u64 {
        if big && rng.chance(0.5) {
            rng.gen_range(700u64..(z.slots / 2))
        } else {
            rng.gen_range(1u64..9)
        }
    };
    match rng.gen_range(0u32..17) {
        0 => Some(ActionKind::Advance {
            cycles: rng.gen_range(1u64..400),
        }),
        // Reads: any cell nobody writes this phase.
        1 | 2 => {
            let src = z.cell(rng);
            z.read_ok(src.pe, src.slot, 1).then(|| {
                z.claim_read(src.pe, src.slot, 1);
                ActionKind::Read { src }
            })
        }
        3 => {
            let src = z.cell(rng);
            z.read_ok(src.pe, src.slot, 1).then(|| {
                z.claim_read(src.pe, src.slot, 1);
                ActionKind::ReadU32 {
                    src,
                    hi: rng.chance(0.5),
                }
            })
        }
        4 => {
            let src = z.cell(rng);
            z.read_ok(src.pe, src.slot, 1).then(|| {
                z.claim_read(src.pe, src.slot, 1);
                ActionKind::ByteRead {
                    src,
                    byte: rng.gen_range(0u8..8),
                }
            })
        }
        // Word writes: exclusive cell.
        5 | 6 => {
            let dst = z.cell(rng);
            z.write_ok(dst.pe, dst.slot, 1).then(|| {
                z.claim_write(dst.pe, dst.slot, 1);
                ActionKind::Write {
                    dst,
                    value: value(rng),
                }
            })
        }
        7 => {
            let dst = z.cell(rng);
            if !z.write_ok(dst.pe, dst.slot, 1) {
                return None;
            }
            // Remote sub-word writes ride the AM queue.
            if dst.pe != pe && !z.claim_deposit(pe, dst.pe, true) {
                return None;
            }
            z.claim_write(dst.pe, dst.slot, 1);
            Some(ActionKind::WriteU32 {
                dst,
                hi: rng.chance(0.5),
                value: value(rng) as u32,
            })
        }
        8 => {
            let dst = z.cell(rng);
            if !z.write_ok(dst.pe, dst.slot, 1) {
                return None;
            }
            if dst.pe != pe && !z.claim_deposit(pe, dst.pe, true) {
                return None;
            }
            z.claim_write(dst.pe, dst.slot, 1);
            Some(ActionKind::ByteWrite {
                dst,
                byte: rng.gen_range(0u8..8),
                value: value(rng) as u8,
            })
        }
        9 => {
            let dst = z.cell(rng);
            z.write_ok(dst.pe, dst.slot, 1).then(|| {
                z.claim_write(dst.pe, dst.slot, 1);
                ActionKind::Put {
                    dst,
                    value: value(rng),
                }
            })
        }
        10 => {
            let dst = z.cell(rng);
            z.write_ok(dst.pe, dst.slot, 1).then(|| {
                z.claim_write(dst.pe, dst.slot, 1);
                ActionKind::Store {
                    dst,
                    value: value(rng),
                }
            })
        }
        11 => {
            let gets = z.gets.entry(pe).or_insert(0);
            if *gets >= MAX_GETS_PER_PE {
                return None;
            }
            let src = z.cell(rng);
            let land = rng.gen_range(0..z.slots);
            if !z.read_ok(src.pe, src.slot, 1)
                || !z.write_ok(pe, land, 1)
                || (src.pe == pe && src.slot == land)
            {
                return None;
            }
            *z.gets.get_mut(&pe).unwrap() += 1;
            z.claim_read(src.pe, src.slot, 1);
            z.claim_write(pe, land, 1);
            Some(ActionKind::Get { src, land })
        }
        12 | 13 => {
            // Dense bulk: reads/gets land locally, writes/puts go out.
            let words = bulk_words(rng, z);
            let inbound = rng.chance(0.5);
            if inbound {
                let src = z.cell(rng);
                let land = rng.gen_range(0..z.slots);
                if !z.read_ok(src.pe, src.slot, words)
                    || !z.write_ok(pe, land, words)
                    || (src.pe == pe && overlaps(src.slot, words, land, words))
                {
                    return None;
                }
                z.claim_read(src.pe, src.slot, words);
                z.claim_write(pe, land, words);
                Some(if rng.chance(0.5) {
                    ActionKind::BulkRead { src, words, land }
                } else {
                    ActionKind::BulkGet { src, words, land }
                })
            } else {
                let dst = z.cell(rng);
                let from = rng.gen_range(0..z.slots);
                if !z.write_ok(dst.pe, dst.slot, words)
                    || !z.read_ok(pe, from, words)
                    || (dst.pe == pe && overlaps(dst.slot, words, from, words))
                {
                    return None;
                }
                z.claim_read(pe, from, words);
                z.claim_write(dst.pe, dst.slot, words);
                Some(if rng.chance(0.5) {
                    ActionKind::BulkWrite { dst, words, from }
                } else {
                    ActionKind::BulkPut { dst, words, from }
                })
            }
        }
        14 => {
            // Strided: zone the whole remote span, gaps included (the
            // sanitizer's span events are equally conservative).
            let count = rng.gen_range(2u64..6);
            let stride = rng.gen_range(1u64..4);
            let span = (count - 1) * stride + 1;
            let inbound = rng.chance(0.5);
            if inbound {
                let src = z.cell(rng);
                let land = rng.gen_range(0..z.slots);
                if !z.read_ok(src.pe, src.slot, span)
                    || !z.write_ok(pe, land, count)
                    || (src.pe == pe && overlaps(src.slot, span, land, count))
                {
                    return None;
                }
                z.claim_read(src.pe, src.slot, span);
                z.claim_write(pe, land, count);
                Some(ActionKind::BulkReadStrided {
                    src,
                    count,
                    stride,
                    land,
                })
            } else {
                let dst = z.cell(rng);
                let from = rng.gen_range(0..z.slots);
                if !z.write_ok(dst.pe, dst.slot, span)
                    || !z.read_ok(pe, from, count)
                    || (dst.pe == pe && overlaps(dst.slot, span, from, count))
                {
                    return None;
                }
                z.claim_read(pe, from, count);
                z.claim_write(dst.pe, dst.slot, span);
                Some(ActionKind::BulkWriteStrided {
                    dst,
                    count,
                    stride,
                    from,
                })
            }
        }
        _ => {
            // AM add: commutes with everything that lands at the same
            // barrier, so the cell needs no exclusivity — only the
            // depositor rule.
            let dst = z.cell(rng);
            z.claim_deposit(pe, dst.pe, true)
                .then(|| ActionKind::AmAdd {
                    dst,
                    delta: value(rng),
                })
        }
    }
}

fn gen_direct_actions(rng: &mut Rng, nodes: u32, slots: u64, locks: u32) -> Vec<Action> {
    let mut zone = Zone::new(nodes, slots);
    let n_actions = rng.gen_range(0..(nodes as usize * 5));
    let mut actions = Vec::new();
    for _ in 0..n_actions {
        let pe = rng.gen_range(0..nodes);
        for _attempt in 0..10 {
            if let Some(kind) = gen_direct_action(rng, pe, locks, &mut zone) {
                actions.push(Action { pe, kind });
                break;
            }
        }
    }
    actions
}

/// One direct-phase action. Reads are unrestricted (execution is
/// sequential in action order); plain writes stay exclusive per cell and
/// avoid the lock-group slots `0..locks`, whose writes flow through
/// their lock's critical section instead.
fn gen_direct_action(rng: &mut Rng, pe: u32, locks: u32, z: &mut Zone) -> Option<ActionKind> {
    match rng.gen_range(0u32..12) {
        0 => Some(ActionKind::Advance {
            cycles: rng.gen_range(1u64..400),
        }),
        1 | 2 => Some(ActionKind::Read { src: z.cell(rng) }),
        3 => Some(ActionKind::ReadU32 {
            src: z.cell(rng),
            hi: rng.chance(0.5),
        }),
        4 => Some(ActionKind::ByteRead {
            src: z.cell(rng),
            byte: rng.gen_range(0u8..8),
        }),
        5 | 6 => {
            if z.slots <= locks as u64 {
                return None;
            }
            let dst = Cell {
                pe: rng.gen_range(0..z.nodes),
                slot: rng.gen_range(locks as u64..z.slots),
            };
            z.write_ok(dst.pe, dst.slot, 1).then(|| {
                z.claim_write(dst.pe, dst.slot, 1);
                ActionKind::Write {
                    dst,
                    value: value(rng),
                }
            })
        }
        7 | 8 => {
            // Contended AM adds are legal here: the direct engine gives
            // every deposit a real ticket.
            let dst = z.cell(rng);
            z.claim_deposit(pe, dst.pe, false)
                .then(|| ActionKind::AmAdd {
                    dst,
                    delta: value(rng),
                })
        }
        9 => Some(ActionKind::LockGuardedWrite {
            lock: rng.gen_range(0..locks),
            dst_pe: rng.gen_range(0..z.nodes),
            value: value(rng),
        }),
        10 => Some(if rng.chance(0.5) {
            ActionKind::LockHold {
                lock: rng.gen_range(0..locks),
            }
        } else {
            ActionKind::LockFree {
                lock: rng.gen_range(0..locks),
            }
        }),
        _ => Some(ActionKind::LockProbe {
            lock: rng.gen_range(0..locks),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every generated sharded phase obeys the zone discipline the
    /// module documents: single writer per cell, no read of a written
    /// cell, one depositor per AM target.
    #[test]
    fn sharded_phases_are_zone_disciplined() {
        Rng::cases(0x51AD, 200, |_, rng| {
            let p = gen_program(rng);
            for phase in p.phases.iter().filter(|p| p.kind == PhaseKind::Sharded) {
                let mut written: HashSet<Cell> = HashSet::new();
                let mut read: HashSet<Cell> = HashSet::new();
                let mut depositor: HashMap<u32, u32> = HashMap::new();
                for a in &phase.actions {
                    let (r, w, dep) = spans(a, p.slots);
                    for c in &r {
                        read.insert(*c);
                    }
                    for c in &w {
                        assert!(written.insert(*c), "double write of {c:?}");
                    }
                    if let Some(t) = dep {
                        let prev = depositor.insert(t, a.pe);
                        assert!(
                            prev.is_none() || prev == Some(a.pe),
                            "two depositors for PE {t}"
                        );
                    }
                }
                for c in &read {
                    assert!(!written.contains(c), "read of written cell {c:?}");
                }
            }
        });
    }

    /// Read/write/deposit footprint of one action (test-local mirror of
    /// the generator's rules).
    fn spans(a: &Action, _slots: u64) -> (Vec<Cell>, Vec<Cell>, Option<u32>) {
        let me = a.pe;
        let cells = |pe: u32, slot: u64, len: u64, stride: u64| -> Vec<Cell> {
            (0..len)
                .map(|k| Cell {
                    pe,
                    slot: slot + k * stride,
                })
                .collect()
        };
        match a.kind {
            ActionKind::Advance { .. } => (vec![], vec![], None),
            ActionKind::Read { src }
            | ActionKind::ReadU32 { src, .. }
            | ActionKind::ByteRead { src, .. } => (vec![src], vec![], None),
            ActionKind::Write { dst, .. }
            | ActionKind::Put { dst, .. }
            | ActionKind::Store { dst, .. } => (vec![], vec![dst], None),
            ActionKind::WriteU32 { dst, .. } | ActionKind::ByteWrite { dst, .. } => {
                (vec![], vec![dst], (dst.pe != me).then_some(dst.pe))
            }
            ActionKind::Get { src, land } => (vec![src], vec![Cell { pe: me, slot: land }], None),
            ActionKind::BulkRead { src, words, land }
            | ActionKind::BulkGet { src, words, land } => (
                cells(src.pe, src.slot, words, 1),
                cells(me, land, words, 1),
                None,
            ),
            ActionKind::BulkWrite { dst, words, from }
            | ActionKind::BulkPut { dst, words, from } => (
                cells(me, from, words, 1),
                cells(dst.pe, dst.slot, words, 1),
                None,
            ),
            ActionKind::BulkReadStrided {
                src,
                count,
                stride,
                land,
            } => (
                cells(src.pe, src.slot, (count - 1) * stride + 1, 1),
                cells(me, land, count, 1),
                None,
            ),
            ActionKind::BulkWriteStrided {
                dst,
                count,
                stride,
                from,
            } => (
                cells(me, from, count, 1),
                cells(dst.pe, dst.slot, (count - 1) * stride + 1, 1),
                None,
            ),
            ActionKind::AmAdd { dst, .. } => (vec![], vec![], Some(dst.pe)),
            ActionKind::LockGuardedWrite { .. }
            | ActionKind::LockHold { .. }
            | ActionKind::LockFree { .. }
            | ActionKind::LockProbe { .. } => {
                panic!("lock ops never appear in sharded phases")
            }
        }
    }

    #[test]
    fn generator_exercises_every_action_kind() {
        let mut seen: HashSet<std::mem::Discriminant<ActionKind>> = HashSet::new();
        Rng::cases(0xC0FE, 400, |_, rng| {
            for phase in gen_program(rng).phases {
                for a in phase.actions {
                    seen.insert(std::mem::discriminant(&a.kind));
                }
            }
        });
        assert!(seen.len() >= 20, "saw {} of 21 action kinds", seen.len());
    }

    #[test]
    fn programs_replay_identically_by_seed() {
        let a = gen_program(&mut Rng::seed_from_u64(42));
        let b = gen_program(&mut Rng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn big_regions_cross_the_blt_thresholds() {
        let mut crossed = false;
        Rng::cases(0xB16, 300, |_, rng| {
            for phase in gen_program(rng).phases {
                for a in phase.actions {
                    if let ActionKind::BulkGet { words, .. } | ActionKind::BulkRead { words, .. } =
                        a.kind
                    {
                        crossed |= words * 8 >= 7_900;
                    }
                }
            }
        });
        assert!(crossed, "some bulk transfer crosses the 7,900 B threshold");
    }

    #[test]
    fn locks_only_in_direct_phases() {
        Rng::cases(0x10C5, 200, |_, rng| {
            for phase in gen_program(rng).phases {
                if phase.kind == PhaseKind::Sharded {
                    assert!(!phase.actions.iter().any(|a| matches!(
                        a.kind,
                        ActionKind::LockGuardedWrite { .. }
                            | ActionKind::LockHold { .. }
                            | ActionKind::LockFree { .. }
                            | ActionKind::LockProbe { .. }
                    )));
                }
            }
        });
    }
}
