//! The `t3d-fuzz` command line.
//!
//! ```text
//! t3d-fuzz [--cases N] [--seed S] [--threads T] [--out DIR]
//!          [--engine-matrix] [--inject-fault] [--inject-skew]
//! ```
//!
//! Runs `N` generated programs through the full differential oracle
//! (Seq driver vs Par driver vs flat reference model vs sanitizer).
//! Failures are shrunk and written to `DIR` as self-contained
//! reproducers; the exit code is the failure count (clamped to 1).
//!
//! `--engine-matrix` additionally runs every case under the full
//! engine × driver matrix — cycle and event time-advance engines, each
//! under the Seq and Par drivers — asserting bit-identical snapshots
//! (memory and clocks), results, op counters and attribution ledgers
//! across all four runs.
//!
//! `--inject-fault` is the self-test: it flips one byte of the Par
//! run's settled memory, requires the oracle to catch it, shrinks the
//! case and fails unless the reproducer lowers to at most 12 ops.
//! `--inject-skew` is the engine-matrix analogue: it delays one event's
//! due-time in the event-engine runs and requires the matrix oracle to
//! catch the stretched clock.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use t3d_fuzz::{
    case_seed, check_case, check_case_engine_matrix, fault_for_seed, parse_seed, program_for_seed,
    shrink, shrink_with, skew_for_seed, Program, DEFAULT_BUDGET,
};

struct Args {
    cases: usize,
    seed: u64,
    threads: usize,
    out: PathBuf,
    engine_matrix: bool,
    inject_fault: bool,
    inject_skew: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cases: 100,
        seed: 0x7E3D,
        threads: 3,
        out: PathBuf::from("target/fuzz-reproducers"),
        engine_matrix: false,
        inject_fault: false,
        inject_skew: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--cases" => {
                args.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?
            }
            "--seed" => args.seed = parse_seed(&value("--seed")?),
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if args.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--engine-matrix" => args.engine_matrix = true,
            "--inject-fault" => args.inject_fault = true,
            "--inject-skew" => args.inject_skew = true,
            "--help" | "-h" => {
                println!(
                    "t3d-fuzz [--cases N] [--seed S] [--threads T] [--out DIR] \
                     [--engine-matrix] [--inject-fault] [--inject-skew]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Silences the default panic printer for the process lifetime: the
/// harness converts panics into oracle messages, and a 300-case run
/// that probes panic paths shouldn't spray backtraces.
fn hush_panics() {
    std::panic::set_hook(Box::new(|_| {}));
}

/// The first token of an action's debug form ("Store", "BulkGet", …).
fn kind_name(prog: &Program) -> Vec<&'static str> {
    prog.phases
        .iter()
        .flat_map(|p| p.actions.iter())
        .map(|a| {
            let d = format!("{:?}", a.kind);
            // Leak-free static mapping: match on the leading token.
            let tok = d.split([' ', '{']).next().unwrap_or("").to_string();
            NAMES.iter().find(|n| **n == tok).copied().unwrap_or("?")
        })
        .collect()
}

const NAMES: [&str; 21] = [
    "Advance",
    "Read",
    "ReadU32",
    "ByteRead",
    "Write",
    "WriteU32",
    "ByteWrite",
    "Put",
    "Store",
    "Get",
    "BulkRead",
    "BulkGet",
    "BulkWrite",
    "BulkPut",
    "BulkReadStrided",
    "BulkWriteStrided",
    "AmAdd",
    "LockGuardedWrite",
    "LockHold",
    "LockFree",
    "LockProbe",
];

fn region_base(prog: &Program) -> u64 {
    use splitc::{SplitC, SplitcConfig};
    use t3d_machine::MachineConfig;
    let mut sc = SplitC::with_config(MachineConfig::t3d(prog.nodes), SplitcConfig::t3d());
    sc.alloc(prog.region_bytes(), 8)
}

fn save_reproducer(out: &PathBuf, seed: u64, prog: &Program, why: &str) -> PathBuf {
    let path = out.join(format!("case-{seed:#018x}.txt"));
    let mut text = prog.render_reproducer(seed, region_base(prog));
    text.push_str(&format!("\n# failure: {why}\n"));
    if let Err(e) = std::fs::create_dir_all(out).and_then(|()| std::fs::write(&path, text)) {
        eprintln!("warning: could not save reproducer {}: {e}", path.display());
    }
    path
}

fn run_fuzz(args: &Args) -> ExitCode {
    let mut histogram: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut failures = 0usize;
    for i in 0..args.cases {
        let seed = case_seed(args.seed, i);
        let prog = program_for_seed(seed);
        for name in kind_name(&prog) {
            *histogram.entry(name).or_default() += 1;
        }
        let failure = check_case(&prog, args.threads, None).or_else(|| {
            if args.engine_matrix {
                check_case_engine_matrix(&prog, args.threads, None)
            } else {
                None
            }
        });
        if let Some(why) = failure {
            failures += 1;
            eprintln!("case {i} (seed {seed:#x}) FAILED: {why}");
            let threads = args.threads;
            let small = if args.engine_matrix {
                shrink_with(&prog, DEFAULT_BUDGET, &|cand| {
                    check_case(cand, threads, None).is_some()
                        || check_case_engine_matrix(cand, threads, None).is_some()
                })
            } else {
                shrink(&prog, threads, None, DEFAULT_BUDGET)
            };
            let why_small = check_case(&small, args.threads, None).unwrap_or_else(|| why.clone());
            let path = save_reproducer(&args.out, seed, &small, &why_small);
            eprintln!(
                "  shrunk reproducer ({} actions): {}",
                small.action_count(),
                path.display()
            );
            println!("{}", small.render_reproducer(seed, region_base(&small)));
        }
    }
    println!(
        "t3d-fuzz: {} cases, seed {:#x}, {} threads{}, {} failure(s)",
        args.cases,
        args.seed,
        args.threads,
        if args.engine_matrix {
            ", engine matrix"
        } else {
            ""
        },
        failures
    );
    let covered = histogram.len();
    let actions: usize = histogram.values().sum();
    println!(
        "  action mix ({actions} actions, {covered}/{} kinds):",
        NAMES.len()
    );
    for (name, count) in &histogram {
        println!("    {name:<18} {count}");
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_inject_fault(args: &Args) -> ExitCode {
    let seed = case_seed(args.seed, 0);
    let prog = program_for_seed(seed);
    let fault = fault_for_seed(seed);
    println!(
        "self-test: flipping one byte after phase {} on PE {} (seed {seed:#x})",
        fault.phase, fault.pe
    );
    let Some(why) = check_case(&prog, args.threads, Some(fault)) else {
        eprintln!("self-test FAILED: the injected fault was not detected");
        return ExitCode::FAILURE;
    };
    println!("caught: {why}");
    let small = shrink(&prog, args.threads, Some(fault), DEFAULT_BUDGET);
    let ops: usize = small
        .lower(region_base(&small))
        .iter()
        .map(|p| p.op_count())
        .sum();
    println!("{}", small.render_reproducer(seed, region_base(&small)));
    let path = save_reproducer(&args.out, seed, &small, &why);
    println!("self-test reproducer saved to {}", path.display());
    if ops > 12 {
        eprintln!("self-test FAILED: shrunk reproducer has {ops} lowered ops (> 12)");
        return ExitCode::FAILURE;
    }
    println!("self-test OK: shrunk to {ops} lowered ops");
    ExitCode::SUCCESS
}

fn run_inject_skew(args: &Args) -> ExitCode {
    let seed = case_seed(args.seed, 0);
    let prog = program_for_seed(seed);
    let skew = skew_for_seed(seed);
    println!(
        "self-test: delaying one event by {} cycles before phase {} on PE {} (seed {seed:#x})",
        skew.extra_cy, skew.phase, skew.pe
    );
    let Some(why) = check_case_engine_matrix(&prog, args.threads, Some(skew)) else {
        eprintln!("self-test FAILED: the skewed event due-time was not detected");
        return ExitCode::FAILURE;
    };
    println!("caught: {why}");
    let threads = args.threads;
    let small = shrink_with(&prog, DEFAULT_BUDGET, &|cand| {
        check_case_engine_matrix(cand, threads, Some(skew)).is_some()
    });
    let ops: usize = small
        .lower(region_base(&small))
        .iter()
        .map(|p| p.op_count())
        .sum();
    println!("{}", small.render_reproducer(seed, region_base(&small)));
    let path = save_reproducer(&args.out, seed, &small, &why);
    println!("self-test reproducer saved to {}", path.display());
    if ops > 12 {
        eprintln!("self-test FAILED: shrunk reproducer has {ops} lowered ops (> 12)");
        return ExitCode::FAILURE;
    }
    println!("self-test OK: shrunk to {ops} lowered ops");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("t3d-fuzz: {e}");
            return ExitCode::FAILURE;
        }
    };
    hush_panics();
    if args.inject_fault {
        run_inject_fault(&args)
    } else if args.inject_skew {
        run_inject_skew(&args)
    } else {
        run_fuzz(&args)
    }
}
