//! Hazard injection: turns a clean generated program into one with a
//! single, known defect.
//!
//! The differential soundness test uses these to prove the static
//! analyzer *bites*: each mutation breaks the zone discipline in one
//! specific way, and `t3d-lint` must flag the matching rule on the
//! mutated program. Injection is deterministic (first suitable anchor)
//! so a failing seed replays exactly.

use crate::program::{Action, ActionKind, PhaseKind, Program};
use t3d_lint::Rule;

/// One way of breaking a clean program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// The get issuer reads its own landing slot before the sync.
    ReadLanding,
    /// A second PE puts to a cell another PE already puts to in the
    /// same sharded phase.
    ConflictPut,
    /// Another PE reads a signaling store's target cell in the same
    /// sharded phase, before anything settles it.
    StaleRead,
    /// Another PE writes a bound get's source cell in the same phase.
    WriteGetSource,
}

impl Mutation {
    /// All mutations.
    pub const ALL: [Mutation; 4] = [
        Mutation::ReadLanding,
        Mutation::ConflictPut,
        Mutation::StaleRead,
        Mutation::WriteGetSource,
    ];

    /// The static rule the mutation must trip.
    pub fn expected_rule(self) -> Rule {
        match self {
            Mutation::ReadLanding => Rule::H001ReadBeforeGetSync,
            Mutation::ConflictPut => Rule::H004ConflictingPuts,
            Mutation::StaleRead => Rule::H005StaleStoreRead,
            Mutation::WriteGetSource => Rule::H006PrefetchOrderMisuse,
        }
    }
}

/// Applies `m` to the first suitable anchor in `prog`. Returns `None`
/// when the program has no action the mutation can attach to.
pub fn inject(prog: &Program, m: Mutation) -> Option<Program> {
    let mut out = prog.clone();
    for phase in out
        .phases
        .iter_mut()
        .filter(|p| p.kind == PhaseKind::Sharded)
    {
        for i in 0..phase.actions.len() {
            let a = phase.actions[i];
            let other = (a.pe + 1) % prog.nodes;
            let injected = match (m, a.kind) {
                (Mutation::ReadLanding, ActionKind::Get { land, .. }) => Some(Action {
                    pe: a.pe,
                    kind: ActionKind::Read {
                        src: crate::program::Cell {
                            pe: a.pe,
                            slot: land,
                        },
                    },
                }),
                (Mutation::ConflictPut, ActionKind::Put { dst, .. }) => Some(Action {
                    pe: other,
                    kind: ActionKind::Put { dst, value: 0x5A },
                }),
                (Mutation::StaleRead, ActionKind::Store { dst, .. }) => Some(Action {
                    pe: other,
                    kind: ActionKind::Read { src: dst },
                }),
                (Mutation::WriteGetSource, ActionKind::Get { src, .. }) => Some(Action {
                    pe: if src.pe == a.pe {
                        other
                    } else {
                        (src.pe + 1) % prog.nodes
                    },
                    kind: ActionKind::Write {
                        dst: src,
                        value: 0xA5,
                    },
                }),
                _ => None,
            };
            if let Some(act) = injected {
                // The issuer must differ from the anchor for the
                // cross-PE hazards.
                if matches!(
                    m,
                    Mutation::ConflictPut | Mutation::StaleRead | Mutation::WriteGetSource
                ) && act.pe == a.pe
                {
                    continue;
                }
                phase.actions.insert(i + 1, act);
                return Some(out);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lintbridge::lint_case;
    use t3d_prng::Rng;

    /// Every mutation, applied wherever an anchor exists, trips exactly
    /// its expected rule in the static analyzer.
    #[test]
    fn mutations_trip_their_rule() {
        let mut tripped = [0u32; Mutation::ALL.len()];
        Rng::cases(0x05EE_DBAD, 60, |_, rng| {
            let p = crate::gen_program(rng);
            for (mi, &m) in Mutation::ALL.iter().enumerate() {
                let Some(bad) = inject(&p, m) else { continue };
                let report = lint_case(&bad, 0x100);
                assert!(
                    report.rules().contains(&m.expected_rule()),
                    "{m:?} did not trip {}:\n{}",
                    m.expected_rule(),
                    report.render_table()
                );
                tripped[mi] += 1;
            }
        });
        for (mi, &n) in tripped.iter().enumerate() {
            assert!(
                n > 0,
                "{:?} never found an anchor in 60 programs",
                Mutation::ALL[mi]
            );
        }
    }
}
