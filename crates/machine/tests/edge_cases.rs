//! Edge-case and misuse tests for the machine layer: the places where a
//! compiler writer gets bitten.

use t3d_machine::{Cpu, Machine, MachineConfig, Spmd};
use t3d_shell::blt::BltDirection;
use t3d_shell::{AnnexEntry, FuncCode};

fn machine(n: u32) -> Machine {
    Machine::new(MachineConfig::t3d(n))
}

#[test]
fn sub_word_remote_loads_work_within_a_line() {
    let mut m = machine(2);
    m.poke8(1, 0x100, 0x0807_0605_0403_0201);
    m.annex_set(
        0,
        1,
        AnnexEntry {
            pe: 1,
            func: FuncCode::Uncached,
        },
    );
    let mut b4 = [0u8; 4];
    m.ld(0, m.va(1, 0x100), &mut b4);
    assert_eq!(u32::from_le_bytes(b4), 0x0403_0201);
    let mut b2 = [0u8; 2];
    m.ld(0, m.va(1, 0x104), &mut b2);
    assert_eq!(u16::from_le_bytes(b2), 0x0605);
}

#[test]
#[should_panic(expected = "must not cross a cache line")]
fn remote_load_across_a_line_panics() {
    let mut m = machine(2);
    m.annex_set(
        0,
        1,
        AnnexEntry {
            pe: 1,
            func: FuncCode::Uncached,
        },
    );
    let mut buf = [0u8; 8];
    m.ld(0, m.va(1, 28), &mut buf);
}

#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "not a load flavour")]
fn loading_through_a_swap_entry_panics_in_debug() {
    let mut m = machine(2);
    m.annex_set(
        0,
        1,
        AnnexEntry {
            pe: 1,
            func: FuncCode::Swap,
        },
    );
    let _ = m.ld8(0, m.va(1, 0x100));
}

#[test]
#[cfg(not(debug_assertions))]
fn loading_through_a_swap_entry_reads_uncached_in_release() {
    // Defined behavior for the misuse: the access is performed as an
    // Uncached read (debug builds catch it with a debug_assert).
    let mut m = machine(2);
    m.poke8(1, 0x100, 31);
    m.annex_set(
        0,
        1,
        AnnexEntry {
            pe: 1,
            func: FuncCode::Swap,
        },
    );
    assert_eq!(m.ld8(0, m.va(1, 0x100)), 31);
}

#[test]
#[should_panic(expected = "does not exist")]
fn annex_to_nonexistent_pe_panics() {
    let mut m = machine(2);
    m.annex_set(
        0,
        1,
        AnnexEntry {
            pe: 9,
            func: FuncCode::Uncached,
        },
    );
}

#[test]
fn multi_line_local_reads_cross_lines_fine() {
    let mut m = machine(1);
    for i in 0..16u64 {
        m.poke8(0, 0x200 + i * 8, i);
    }
    let mut buf = [0u8; 64];
    m.ld(0, 0x208, &mut buf); // crosses two line boundaries
    for (w, chunk) in buf.chunks(8).enumerate() {
        assert_eq!(u64::from_le_bytes(chunk.try_into().unwrap()), w as u64 + 1);
    }
}

#[test]
fn sub_word_stores_merge_into_the_word() {
    let mut m = machine(1);
    m.st8(0, 0x300, 0);
    m.st(0, 0x302, &[0xAB, 0xCD]);
    m.memory_barrier(0);
    assert_eq!(m.ld8(0, 0x300), 0x0000_0000_CDAB_0000);
}

#[test]
fn va_split_roundtrip() {
    let m = machine(2);
    for idx in [0usize, 1, 17, 31] {
        for off in [0u64, 8, 0x7FF_FFF8] {
            let va = m.va(idx, off);
            assert_eq!(m.split_va(va), (idx, off));
        }
    }
}

#[test]
fn blt_zero_handle_waits_are_idempotent() {
    let mut m = machine(2);
    let h = m.blt_start(0, BltDirection::Read, 0x1000, 1, 0x2000, 64);
    m.blt_wait(0, h);
    let t = m.clock(0);
    m.blt_wait(0, h); // second wait is free
    assert_eq!(m.clock(0), t);
}

#[test]
fn spmd_on_a_single_node_machine() {
    let mut m = machine(1);
    let mut spmd = Spmd::new(&mut m);
    let mut count = 0;
    spmd.phase(|cpu| {
        cpu.st8(0x10, 5);
        count += 1;
    });
    spmd.barrier();
    assert_eq!(count, 1);
    assert_eq!(spmd.machine().peek8(0, 0x10), 5);
}

#[test]
fn cpu_handle_exposes_clock_in_ns() {
    let mut m = machine(1);
    let mut cpu = Cpu::new(&mut m, 0);
    cpu.advance(150);
    assert!((cpu.clock_ns() - 1000.0).abs() < 1.0, "150 cycles = 1 us");
}

#[test]
fn self_targeting_annex_goes_through_the_shell() {
    // An annex entry can name the issuing PE; the access loops through
    // the shell (and costs remote time) rather than the local path.
    let mut m = machine(2);
    m.poke8(0, 0x400, 77);
    m.annex_set(
        0,
        1,
        AnnexEntry {
            pe: 0,
            func: FuncCode::Uncached,
        },
    );
    let t0 = m.clock(0);
    assert_eq!(m.ld8(0, m.va(1, 0x400)), 77);
    let cost = m.clock(0) - t0;
    assert!(cost > 50, "shell loop-back is not a local load: {cost} cy");
}

#[test]
fn incoming_log_clears_between_epochs() {
    let mut m = machine(2);
    m.annex_set(
        0,
        1,
        AnnexEntry {
            pe: 1,
            func: FuncCode::Uncached,
        },
    );
    m.st8(0, m.va(1, 0x500), 1);
    m.memory_barrier(0);
    assert!(m.arrival_time_of(1, 8).is_some());
    m.clear_incoming(1);
    assert!(m.arrival_time_of(1, 8).is_none());
}

#[test]
fn barrier_requires_no_stragglers_in_flight() {
    // barrier_all fences every node, so a remote write issued just
    // before the barrier is visible just after it.
    let mut m = machine(4);
    m.annex_set(
        2,
        1,
        AnnexEntry {
            pe: 3,
            func: FuncCode::Uncached,
        },
    );
    m.st8(2, m.va(1, 0x600), 9);
    m.barrier_all();
    assert_eq!(m.ld8(3, 0x600), 9);
}

#[test]
fn op_stats_track_every_category() {
    let mut m = machine(2);
    m.annex_set(
        0,
        1,
        AnnexEntry {
            pe: 1,
            func: FuncCode::Uncached,
        },
    );
    m.st8(0, 0x10, 1); // local store
    m.st8(0, m.va(1, 0x10), 1); // remote store
    let _ = m.ld8(0, 0x10); // local load
    let _ = m.ld8(0, m.va(1, 0x10)); // remote load
    m.fetch(0, m.va(1, 0x20));
    m.memory_barrier(0);
    let _ = m.pop_prefetch(0);
    m.msg_send(0, 1, [0; 4]);
    let _ = m.fetch_inc(0, 1, 0);
    let s = m.op_stats(0);
    assert_eq!(s.stores_local, 1);
    assert_eq!(s.stores_remote, 1);
    assert_eq!(s.loads_local, 1);
    assert_eq!(s.loads_remote, 1);
    assert_eq!(s.fetches, 1);
    assert_eq!(s.pops, 1);
    assert_eq!(s.memory_barriers, 1);
    assert_eq!(s.msgs_sent, 1);
    assert_eq!(s.atomics, 1);
    assert_eq!(s.remote_ops(), 4);
    m.clear_op_stats(0);
    assert_eq!(m.op_stats(0).remote_ops(), 0);
}
