//! Trace coverage audit: every architectural operation on [`Machine`]
//! must emit exactly one trace event per invocation — no silent ops.
//!
//! This pins the fixes for the paths that used to record nothing:
//! remote loads satisfied by a stale L1 line, `poll_status`, `blt_wait`,
//! `annex_set`, `swap_load` and the fuzzy barrier pair.

use t3d_machine::{Machine, MachineConfig, TraceKind, Tracer};
use t3d_shell::blt::BltDirection;
use t3d_shell::{AnnexEntry, FuncCode};

fn count(m: &Machine, f: impl Fn(TraceKind) -> bool) -> usize {
    m.tracer().events().filter(|e| f(e.kind)).count()
}

fn set_annex(m: &mut Machine, pe: usize, idx: usize, target: u32, func: FuncCode) {
    m.annex_set(pe, idx, AnnexEntry { pe: target, func });
}

#[test]
fn every_architectural_op_emits_exactly_one_trace_event() {
    let mut m = Machine::new(MachineConfig::t3d(2));
    m.enable_trace(Tracer::env_cap(4096));
    let mut expected = 0usize;

    // Annex updates (3: two load flavours plus the swap flavour later).
    set_annex(&mut m, 0, 1, 1, FuncCode::Uncached);
    set_annex(&mut m, 0, 2, 1, FuncCode::Cached);
    set_annex(&mut m, 0, 3, 1, FuncCode::Swap);
    expected += 3;
    assert_eq!(count(&m, |k| matches!(k, TraceKind::AnnexSet(1))), 3);

    // Loads: local, remote uncached, remote cached (fill), and the
    // once-silent path — a remote load satisfied by the resident line.
    let _ = m.ld8(0, 0x40);
    let _ = m.ld8(0, m.va(1, 0x100));
    let _ = m.ld8(0, m.va(2, 0x200));
    let _ = m.ld8(0, m.va(2, 0x200)); // L1 hit: early return must still trace
    expected += 4;
    assert_eq!(count(&m, |k| matches!(k, TraceKind::LoadLocal)), 1);
    assert_eq!(
        count(&m, |k| matches!(k, TraceKind::LoadRemote(1))),
        3,
        "the L1-hit early return must emit a LoadRemote event too"
    );

    // Stores: one local, one remote.
    m.st8(0, 0x48, 7);
    m.st8(0, m.va(1, 0x108), 9);
    expected += 2;
    assert_eq!(count(&m, |k| matches!(k, TraceKind::StoreLocal)), 1);
    assert_eq!(count(&m, |k| matches!(k, TraceKind::StoreRemote(1))), 1);

    // Fence / status machinery.
    m.memory_barrier(0);
    let _ = m.poll_status(0);
    m.wait_write_acks(0);
    expected += 3;
    assert_eq!(count(&m, |k| matches!(k, TraceKind::MemoryBarrier)), 1);
    assert_eq!(count(&m, |k| matches!(k, TraceKind::StatusPoll)), 1);
    assert_eq!(count(&m, |k| matches!(k, TraceKind::AckWait)), 1);

    // Prefetch issue + pop (fence in between so the pop succeeds).
    assert!(m.fetch(0, m.va(1, 0x300)));
    m.memory_barrier(0);
    let _ = m.pop_prefetch(0).unwrap();
    expected += 3; // fetch + mb + pop
    assert_eq!(count(&m, |k| matches!(k, TraceKind::Fetch(1))), 1);
    assert_eq!(count(&m, |k| matches!(k, TraceKind::Pop)), 1);

    // BLT: start (contiguous + strided) and the completion waits.
    let h = m.blt_start(0, BltDirection::Write, 0x1000, 1, 0x2000, 256);
    m.blt_wait(0, h);
    let hs = m.blt_start_strided(0, BltDirection::Read, 0x3000, 1, 0x4000, 4, 8, 64);
    m.blt_wait(0, hs);
    expected += 4;
    assert_eq!(count(&m, |k| matches!(k, TraceKind::Blt(1))), 2);
    assert_eq!(
        count(&m, |k| matches!(k, TraceKind::BltWait)),
        2,
        "BLT completion waits must be traced"
    );

    // Messages (advance the receiver past the arrival time first).
    m.msg_send(0, 1, [1, 2, 3, 4]);
    m.advance(1, 1_000_000);
    let _ = m.msg_receive(1).unwrap();
    expected += 2;
    assert_eq!(count(&m, |k| matches!(k, TraceKind::MsgSend(1))), 1);
    assert_eq!(count(&m, |k| matches!(k, TraceKind::MsgRecv)), 1);

    // Atomics: fetch&inc, swap-register load, atomic swap.
    let _ = m.fetch_inc(0, 1, 0);
    m.swap_load(0, 5);
    let _ = m.atomic_swap(0, m.va(3, 0x400));
    expected += 3;
    assert_eq!(count(&m, |k| matches!(k, TraceKind::FetchInc(1))), 1);
    assert_eq!(count(&m, |k| matches!(k, TraceKind::SwapLoad)), 1);
    assert_eq!(count(&m, |k| matches!(k, TraceKind::Swap(1))), 1);

    // Fuzzy barrier: one start per node, one end per node.
    m.fuzzy_barrier_start(0);
    m.fuzzy_barrier_start(1);
    m.fuzzy_barrier_end_all();
    expected += 4;
    assert_eq!(count(&m, |k| matches!(k, TraceKind::FuzzyBarrierStart)), 2);
    assert_eq!(count(&m, |k| matches!(k, TraceKind::FuzzyBarrierEnd)), 2);

    // Hardware barrier: fences every node (one MemoryBarrier each) and
    // records one Barrier episode per node.
    m.barrier_all();
    expected += 4; // 2 MemoryBarrier + 2 Barrier on a 2-node machine
    assert_eq!(count(&m, |k| matches!(k, TraceKind::Barrier)), 2);
    assert_eq!(count(&m, |k| matches!(k, TraceKind::MemoryBarrier)), 4);

    // The whole stream is accounted for: nothing silent, nothing extra.
    assert_eq!(m.tracer().dropped(), 0);
    assert_eq!(m.tracer().len(), expected, "{}", m.tracer().dump());
}

#[test]
fn failed_pop_is_not_an_architectural_completion() {
    // A pop that returns NotDeparted/Empty performs no operation; the
    // trace stays op-accurate by not recording it.
    let mut m = Machine::new(MachineConfig::t3d(2));
    m.enable_trace(Tracer::env_cap(64));
    assert!(m.pop_prefetch(0).is_err());
    assert_eq!(count(&m, |k| matches!(k, TraceKind::Pop)), 0);
}
