//! The operation surface a simulated processor programs against,
//! abstracted over execution backends.
//!
//! Two backends implement [`MachineOps`]:
//!
//! * [`Machine`] — the direct engine: every operation
//!   acts on the whole machine immediately (remote stores charge the
//!   target's DRAM inline, and so on). Node closures run strictly
//!   sequentially.
//! * [`PhasePe`](crate::phase::PhasePe) — one PE's shard of a
//!   *sharded phase*: the node mutates only its own state, remote
//!   effects are appended to a timestamped log, and the logs are merged
//!   deterministically at the end of the phase. Shards are independent,
//!   so a phase can run its PEs on parallel threads with results
//!   bit-identical to running them one after another.
//!
//! [`Cpu`](crate::Cpu) and the Split-C runtime hold `&mut dyn
//! MachineOps`, so probe and application code is written once and runs
//! under either engine.

use crate::machine::{BltHandle, Machine};
use crate::node::{Node, OpStats};
use t3d_shell::blt::BltDirection;
use t3d_shell::{AnnexEntry, Message, PopError};

/// Processor-visible operations of the simulated T3D, with the issuing
/// PE passed explicitly (mirrors [`Machine`]'s inherent methods).
///
/// A backend may restrict which PEs it accepts: a [`Machine`] accepts
/// all of them, a `PhasePe` only its own (calls naming another PE
/// panic — that is the sharded-phase correctness contract surfacing).
pub trait MachineOps {
    /// Number of processing elements.
    fn nodes(&self) -> usize;
    /// Nanoseconds per cycle.
    fn cycle_ns(&self) -> f64;
    /// Number of physical-address bits forming the local offset.
    fn offset_bits(&self) -> u32;

    /// Immutable access to a node's state.
    fn node(&self, pe: usize) -> &Node;
    /// Mutable access to a node's state.
    fn node_mut(&mut self, pe: usize) -> &mut Node;

    /// A node's virtual time, in cycles.
    fn clock(&self, pe: usize) -> u64;
    /// Charges `cycles` of computation to a node.
    fn advance(&mut self, pe: usize, cycles: u64);

    /// Updates an annex register (23 cycles).
    fn annex_set(&mut self, pe: usize, idx: usize, entry: AnnexEntry);
    /// Reads an annex register (free: it is processor state).
    fn annex_entry(&self, pe: usize, idx: usize) -> AnnexEntry;

    /// Loads `buf.len()` bytes at `va` (annex-translated).
    fn ld(&mut self, pe: usize, va: u64, buf: &mut [u8]);
    /// Stores `bytes` at `va` (annex-translated, non-blocking).
    fn st(&mut self, pe: usize, va: u64, bytes: &[u8]);
    /// Issues a memory barrier (drains the write buffer).
    fn memory_barrier(&mut self, pe: usize);
    /// Polls the remote-write status bit once.
    fn poll_status(&mut self, pe: usize) -> bool;
    /// Spins until every departed remote write is acknowledged.
    fn wait_write_acks(&mut self, pe: usize);

    /// Issues a binding prefetch; `false` if the queue is full.
    fn fetch(&mut self, pe: usize, va: u64) -> bool;
    /// Pops the prefetch queue.
    ///
    /// # Errors
    ///
    /// See [`Machine::pop_prefetch`].
    fn pop_prefetch(&mut self, pe: usize) -> Result<u64, PopError>;

    /// Starts a BLT transfer.
    fn blt_start(
        &mut self,
        pe: usize,
        dir: BltDirection,
        local_off: u64,
        target_pe: usize,
        remote_off: u64,
        bytes: u64,
    ) -> BltHandle;
    /// Starts a strided BLT transfer.
    #[allow(clippy::too_many_arguments)]
    fn blt_start_strided(
        &mut self,
        pe: usize,
        dir: BltDirection,
        local_off: u64,
        target_pe: usize,
        remote_off: u64,
        count: u64,
        elem_bytes: u64,
        stride_bytes: u64,
    ) -> BltHandle;
    /// Blocks until a BLT transfer completes.
    fn blt_wait(&mut self, pe: usize, handle: BltHandle);

    /// Sends a four-word message.
    fn msg_send(&mut self, pe: usize, dst: usize, words: [u64; 4]);
    /// Receives the oldest arrived message, if any.
    fn msg_receive(&mut self, pe: usize) -> Option<Message>;

    /// Remote fetch&increment on `target_pe`'s register `reg`.
    fn fetch_inc(&mut self, pe: usize, target_pe: usize, reg: usize) -> u64;
    /// Loads this node's swap operand register.
    fn swap_load(&mut self, pe: usize, value: u64);
    /// Atomic exchange of the swap register with the word at `va`.
    fn atomic_swap(&mut self, pe: usize, va: u64) -> u64;

    /// Reads a node's memory functionally (no timing).
    fn peek_mem(&self, pe: usize, off: u64, buf: &mut [u8]);
    /// Writes a node's memory functionally (no timing), flushing any
    /// cached copy.
    fn poke_mem(&mut self, pe: usize, off: u64, bytes: &[u8]);

    /// A node's operation counters.
    fn op_stats(&self, pe: usize) -> OpStats;
    /// A node's event-engine counters (zero under the cycle engine).
    fn event_stats(&self, pe: usize) -> crate::event::EventStats {
        self.node(pe).events.stats
    }
    /// Earliest virtual time at which `target_bytes` of remote-write
    /// data had arrived at `pe`.
    fn arrival_time_of(&self, pe: usize, target_bytes: u64) -> Option<u64>;
    /// Clears a node's arrival log (a new `storeSync` epoch).
    fn clear_incoming(&mut self, pe: usize);

    /// The whole machine, when this backend is the direct engine.
    /// `None` inside a sharded phase — whole-machine access would break
    /// shard isolation.
    fn as_machine(&mut self) -> Option<&mut Machine>;

    // ---- derived helpers (same for every backend) --------------------

    /// Builds a virtual address from an annex index and local offset.
    fn va(&self, annex_idx: usize, offset: u64) -> u64 {
        t3d_shell::annex::pa_with_annex(offset, annex_idx, self.offset_bits())
    }

    /// Splits a virtual address into `(annex index, local offset)`.
    fn split_va(&self, va: u64) -> (usize, u64) {
        t3d_shell::annex::split_pa(va, self.offset_bits())
    }

    /// Loads a 64-bit word at `va`.
    fn ld8(&mut self, pe: usize, va: u64) -> u64 {
        let mut buf = [0u8; 8];
        self.ld(pe, va, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Stores a 64-bit word at `va`.
    fn st8(&mut self, pe: usize, va: u64, value: u64) {
        self.st(pe, va, &value.to_le_bytes());
    }

    /// Reads a u64 functionally.
    fn peek8(&self, pe: usize, off: u64) -> u64 {
        let mut b = [0u8; 8];
        self.peek_mem(pe, off, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a u64 functionally.
    fn poke8(&mut self, pe: usize, off: u64, v: u64) {
        self.poke_mem(pe, off, &v.to_le_bytes());
    }
}

impl MachineOps for Machine {
    fn nodes(&self) -> usize {
        Machine::nodes(self)
    }
    fn cycle_ns(&self) -> f64 {
        Machine::cycle_ns(self)
    }
    fn offset_bits(&self) -> u32 {
        Machine::offset_bits(self)
    }
    fn node(&self, pe: usize) -> &Node {
        Machine::node(self, pe)
    }
    fn node_mut(&mut self, pe: usize) -> &mut Node {
        Machine::node_mut(self, pe)
    }
    fn clock(&self, pe: usize) -> u64 {
        Machine::clock(self, pe)
    }
    fn advance(&mut self, pe: usize, cycles: u64) {
        Machine::advance(self, pe, cycles);
    }
    fn annex_set(&mut self, pe: usize, idx: usize, entry: AnnexEntry) {
        Machine::annex_set(self, pe, idx, entry);
    }
    fn annex_entry(&self, pe: usize, idx: usize) -> AnnexEntry {
        Machine::annex_entry(self, pe, idx)
    }
    fn ld(&mut self, pe: usize, va: u64, buf: &mut [u8]) {
        Machine::ld(self, pe, va, buf);
    }
    fn st(&mut self, pe: usize, va: u64, bytes: &[u8]) {
        Machine::st(self, pe, va, bytes);
    }
    fn memory_barrier(&mut self, pe: usize) {
        Machine::memory_barrier(self, pe);
    }
    fn poll_status(&mut self, pe: usize) -> bool {
        Machine::poll_status(self, pe)
    }
    fn wait_write_acks(&mut self, pe: usize) {
        Machine::wait_write_acks(self, pe);
    }
    fn fetch(&mut self, pe: usize, va: u64) -> bool {
        Machine::fetch(self, pe, va)
    }
    fn pop_prefetch(&mut self, pe: usize) -> Result<u64, PopError> {
        Machine::pop_prefetch(self, pe)
    }
    fn blt_start(
        &mut self,
        pe: usize,
        dir: BltDirection,
        local_off: u64,
        target_pe: usize,
        remote_off: u64,
        bytes: u64,
    ) -> BltHandle {
        Machine::blt_start(self, pe, dir, local_off, target_pe, remote_off, bytes)
    }
    fn blt_start_strided(
        &mut self,
        pe: usize,
        dir: BltDirection,
        local_off: u64,
        target_pe: usize,
        remote_off: u64,
        count: u64,
        elem_bytes: u64,
        stride_bytes: u64,
    ) -> BltHandle {
        Machine::blt_start_strided(
            self,
            pe,
            dir,
            local_off,
            target_pe,
            remote_off,
            count,
            elem_bytes,
            stride_bytes,
        )
    }
    fn blt_wait(&mut self, pe: usize, handle: BltHandle) {
        Machine::blt_wait(self, pe, handle);
    }
    fn msg_send(&mut self, pe: usize, dst: usize, words: [u64; 4]) {
        Machine::msg_send(self, pe, dst, words);
    }
    fn msg_receive(&mut self, pe: usize) -> Option<Message> {
        Machine::msg_receive(self, pe)
    }
    fn fetch_inc(&mut self, pe: usize, target_pe: usize, reg: usize) -> u64 {
        Machine::fetch_inc(self, pe, target_pe, reg)
    }
    fn swap_load(&mut self, pe: usize, value: u64) {
        Machine::swap_load(self, pe, value);
    }
    fn atomic_swap(&mut self, pe: usize, va: u64) -> u64 {
        Machine::atomic_swap(self, pe, va)
    }
    fn peek_mem(&self, pe: usize, off: u64, buf: &mut [u8]) {
        Machine::peek_mem(self, pe, off, buf);
    }
    fn poke_mem(&mut self, pe: usize, off: u64, bytes: &[u8]) {
        Machine::poke_mem(self, pe, off, bytes);
    }
    fn op_stats(&self, pe: usize) -> OpStats {
        Machine::op_stats(self, pe)
    }
    fn arrival_time_of(&self, pe: usize, target_bytes: u64) -> Option<u64> {
        Machine::arrival_time_of(self, pe, target_bytes)
    }
    fn clear_incoming(&mut self, pe: usize) {
        Machine::clear_incoming(self, pe);
    }
    fn as_machine(&mut self) -> Option<&mut Machine> {
        Some(self)
    }
}
