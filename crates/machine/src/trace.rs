//! Optional event tracing.
//!
//! When enabled, the machine records every architectural operation with
//! its issuing node, virtual start time and cost — the simulator
//! equivalent of the logic-analyzer traces a gray-box study leans on
//! when a probe's numbers look wrong. Tracing is off by default and
//! costs nothing when off.

use std::collections::VecDeque;

/// What kind of operation an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Local load.
    LoadLocal,
    /// Remote load via the annex (target PE attached).
    LoadRemote(u32),
    /// Local store.
    StoreLocal,
    /// Remote store via the annex.
    StoreRemote(u32),
    /// Memory barrier.
    MemoryBarrier,
    /// Prefetch issue.
    Fetch(u32),
    /// Prefetch queue pop.
    Pop,
    /// Acknowledgement wait (status-bit spin).
    AckWait,
    /// BLT invocation.
    Blt(u32),
    /// Message send.
    MsgSend(u32),
    /// Message receive (interrupt).
    MsgRecv,
    /// Fetch&increment.
    FetchInc(u32),
    /// Atomic swap.
    Swap(u32),
    /// Swap-buffer readback after an atomic swap.
    SwapLoad,
    /// Global barrier episode.
    Barrier,
    /// Write-ack status-bit poll (non-blocking).
    StatusPoll,
    /// BLT completion wait.
    BltWait,
    /// DTB annex register write (target PE attached).
    AnnexSet(u32),
    /// Fuzzy barrier arrival (work may continue until the wait).
    FuzzyBarrierStart,
    /// Fuzzy barrier completion wait.
    FuzzyBarrierEnd,
}

impl TraceKind {
    /// Short text label (used by the dump and the Chrome-trace export).
    pub fn label(self) -> String {
        match self {
            TraceKind::LoadLocal => "ld.local".into(),
            TraceKind::LoadRemote(t) => format!("ld.remote->{t}"),
            TraceKind::StoreLocal => "st.local".into(),
            TraceKind::StoreRemote(t) => format!("st.remote->{t}"),
            TraceKind::MemoryBarrier => "mb".into(),
            TraceKind::Fetch(t) => format!("fetch->{t}"),
            TraceKind::Pop => "pop".into(),
            TraceKind::AckWait => "ack.wait".into(),
            TraceKind::Blt(t) => format!("blt->{t}"),
            TraceKind::MsgSend(t) => format!("msg.send->{t}"),
            TraceKind::MsgRecv => "msg.recv".into(),
            TraceKind::FetchInc(t) => format!("f&i->{t}"),
            TraceKind::Swap(t) => format!("swap->{t}"),
            TraceKind::SwapLoad => "swap.load".into(),
            TraceKind::Barrier => "barrier".into(),
            TraceKind::StatusPoll => "status.poll".into(),
            TraceKind::BltWait => "blt.wait".into(),
            TraceKind::AnnexSet(t) => format!("annex.set->{t}"),
            TraceKind::FuzzyBarrierStart => "fbar.start".into(),
            TraceKind::FuzzyBarrierEnd => "fbar.end".into(),
        }
    }
}

/// One recorded operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Issuing node.
    pub pe: u32,
    /// Operation kind.
    pub kind: TraceKind,
    /// Address operand (virtual address or offset; 0 where meaningless).
    pub addr: u64,
    /// Node clock when the operation began.
    pub start: u64,
    /// Cycles the operation cost the issuing node.
    pub cycles: u64,
}

/// A bounded trace buffer (oldest events drop when full).
///
/// # Example
///
/// ```
/// use t3d_machine::{Machine, MachineConfig};
///
/// let mut m = Machine::new(MachineConfig::t3d(2));
/// m.enable_trace(128);
/// m.st8(0, 0x40, 7);
/// m.memory_barrier(0);
/// assert_eq!(m.tracer().len(), 2);
/// print!("{}", m.tracer().dump());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    enabled: bool,
    cap: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Tracer {
    /// Trace-buffer capacity from the `T3D_TRACE_CAP` environment
    /// variable, or `fallback` when unset. Enable sites pass their old
    /// hard-coded capacity as the fallback, so long runs can widen the
    /// buffer without a rebuild.
    ///
    /// # Panics
    ///
    /// A set-but-broken knob panics instead of silently falling back:
    /// `T3D_TRACE_CAP=abc` or `=0` is a misconfiguration the user must
    /// see, matching the other env-knob conventions.
    pub fn env_cap(fallback: usize) -> usize {
        Self::cap_from(std::env::var("T3D_TRACE_CAP").ok().as_deref(), fallback)
    }

    /// [`Tracer::env_cap`] with the variable's value passed explicitly
    /// (`None` = unset), so the policy is testable without mutating the
    /// process environment under threaded tests.
    pub fn cap_from(value: Option<&str>, fallback: usize) -> usize {
        let Some(raw) = value else {
            return fallback;
        };
        match raw.trim().parse::<usize>() {
            Ok(cap) if cap > 0 => cap,
            _ => panic!(
                "T3D_TRACE_CAP={raw:?} is not a positive event count; \
                 unset it or pass an integer >= 1"
            ),
        }
    }

    /// Enables tracing with space for `cap` events.
    pub fn enable(&mut self, cap: usize) {
        assert!(cap > 0, "trace buffer needs capacity");
        self.enabled = true;
        self.cap = cap;
    }

    /// Disables tracing (the buffer is kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of recorded events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears the buffer and the drop counter.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    /// Renders the trace as text: a header with the buffer state (so a
    /// truncated trace announces itself up front), then one line per
    /// event.
    pub fn dump(&self) -> String {
        let mut out = format!(
            "trace: {} events held, {} dropped (cap {})\n",
            self.events.len(),
            self.dropped,
            self.cap
        );
        for e in &self.events {
            out.push_str(&format!(
                "[{:>10}] PE{:<3} {:<16} addr={:#010x} cost={} cy\n",
                e.start,
                e.pe,
                e.kind.label(),
                e.addr,
                e.cycles
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pe: u32, start: u64) -> TraceEvent {
        TraceEvent {
            pe,
            kind: TraceKind::LoadLocal,
            addr: 0x40,
            start,
            cycles: 1,
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::default();
        t.record(ev(0, 0));
        assert!(t.is_empty());
    }

    #[test]
    fn bounded_buffer_drops_oldest() {
        let mut t = Tracer::default();
        t.enable(3);
        for i in 0..5 {
            t.record(ev(0, i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(
            t.events().next().unwrap().start,
            2,
            "oldest surviving event"
        );
    }

    #[test]
    fn dump_is_readable() {
        let mut t = Tracer::default();
        t.enable(8);
        t.record(TraceEvent {
            pe: 1,
            kind: TraceKind::FetchInc(0),
            addr: 0,
            start: 100,
            cycles: 109,
        });
        let d = t.dump();
        assert!(d.contains("PE1"));
        assert!(d.contains("f&i->0"));
        assert!(d.contains("cost=109"));
        assert!(
            d.starts_with("trace: 1 events held, 0 dropped (cap 8)"),
            "header announces buffer state: {d}"
        );
    }

    #[test]
    fn dump_header_reports_drops() {
        let mut t = Tracer::default();
        t.enable(2);
        for i in 0..5 {
            t.record(ev(0, i));
        }
        assert!(t
            .dump()
            .starts_with("trace: 2 events held, 3 dropped (cap 2)"));
    }

    #[test]
    fn env_cap_falls_back_when_unset() {
        // The suite never sets T3D_TRACE_CAP (tests run threaded, so the
        // live env path is exercised against the unset default only;
        // the set paths go through cap_from below).
        assert_eq!(Tracer::env_cap(4096), 4096);
        assert_eq!(Tracer::cap_from(None, 4096), 4096);
    }

    #[test]
    fn cap_from_accepts_positive_integers() {
        assert_eq!(Tracer::cap_from(Some("128"), 4096), 128);
        assert_eq!(Tracer::cap_from(Some("  7 "), 4096), 7);
    }

    #[test]
    #[should_panic(expected = "T3D_TRACE_CAP=\"abc\"")]
    fn cap_from_rejects_garbage_loudly() {
        Tracer::cap_from(Some("abc"), 4096);
    }

    #[test]
    #[should_panic(expected = "T3D_TRACE_CAP=\"0\"")]
    fn cap_from_rejects_zero_loudly() {
        Tracer::cap_from(Some("0"), 4096);
    }

    #[test]
    fn clear_resets() {
        let mut t = Tracer::default();
        t.enable(1);
        t.record(ev(0, 0));
        t.record(ev(0, 1));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }
}
