//! The composed CRAY-T3D machine: Alpha 21064 nodes, Cray shell, 3-D
//! torus — in deterministic virtual time.
//!
//! Each node owns a cycle clock; every operation's cost is a
//! deterministic function of machine state, so runs are exactly
//! repeatable. The "assembly level" interface the paper's probes are
//! written against is [`Cpu`]: loads and stores on (annex-translated)
//! virtual addresses, `fetch` hints, memory barriers, annex updates,
//! message sends, BLT invocations, atomic operations and barriers.
//!
//! Cross-node programs use the [`spmd`] phase driver: within a phase the
//! per-node closure runs for node 0..P−1 sequentially against the shared
//! machine, and barriers align the clocks — deterministic and correct for
//! the race-free bulk-synchronous programs the paper studies.
//!
//! # Example
//!
//! ```
//! use t3d_machine::{Machine, MachineConfig};
//! use t3d_shell::{AnnexEntry, FuncCode};
//!
//! let mut m = Machine::new(MachineConfig::t3d(2));
//! // Point annex register 1 at PE 1 and read its word 0x1000.
//! m.poke_mem(1, 0x1000, &99u64.to_le_bytes());
//! m.annex_set(0, 1, AnnexEntry { pe: 1, func: FuncCode::Uncached });
//! let va = m.va(1, 0x1000);
//! let v = m.ld8(0, va);
//! assert_eq!(v, 99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cpu;
pub mod event;
pub mod machine;
pub mod node;
pub mod ops;
pub mod phase;
pub mod snapshot;
pub mod spmd;
pub mod trace;

pub use config::MachineConfig;
pub use cpu::Cpu;
pub use event::{EngineMode, Event, EventKind, EventQueue, EventStats};
pub use machine::{BltHandle, Machine, MachineSizeError};
pub use node::{Node, NodeHot, OpStats};
pub use ops::MachineOps;
pub use phase::PhaseDriver;
pub use snapshot::{MemSnapshot, SnapshotDiff};
pub use spmd::Spmd;
pub use trace::{TraceEvent, TraceKind, Tracer};

pub use t3d_perf as perf;
pub use t3d_perf::{CostClass, PerfMode, PerfReport};

pub use t3d_memsys as memsys;
pub use t3d_shell as shell;
pub use t3d_torus as torus;
