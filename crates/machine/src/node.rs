//! One node: Alpha core state, memory port and shell units.

use crate::config::MachineConfig;
use crate::event::EventQueue;
use t3d_memsys::MemPort;
use t3d_perf::PerfAccum;

/// Counters of the operations a node has issued (instrumentation: the
/// communication/computation breakdowns in the application study).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Local loads.
    pub loads_local: u64,
    /// Remote (annex-translated) loads, cached or uncached.
    pub loads_remote: u64,
    /// Local stores.
    pub stores_local: u64,
    /// Remote stores.
    pub stores_remote: u64,
    /// Prefetch issues.
    pub fetches: u64,
    /// Prefetch queue pops.
    pub pops: u64,
    /// Memory barriers.
    pub memory_barriers: u64,
    /// BLT invocations (contiguous or strided).
    pub blts: u64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages received.
    pub msgs_received: u64,
    /// Atomic operations (fetch&increment, swap).
    pub atomics: u64,
    /// Acknowledgement waits (status-bit spins).
    pub ack_waits: u64,
}

impl OpStats {
    /// Accumulates another node's counters into this one.
    pub fn accumulate(&mut self, other: &OpStats) {
        self.loads_local += other.loads_local;
        self.loads_remote += other.loads_remote;
        self.stores_local += other.stores_local;
        self.stores_remote += other.stores_remote;
        self.fetches += other.fetches;
        self.pops += other.pops;
        self.memory_barriers += other.memory_barriers;
        self.blts += other.blts;
        self.msgs_sent += other.msgs_sent;
        self.msgs_received += other.msgs_received;
        self.atomics += other.atomics;
        self.ack_waits += other.ack_waits;
    }

    /// Remote communication operations of all kinds.
    pub fn remote_ops(&self) -> u64 {
        self.loads_remote + self.stores_remote + self.fetches + self.blts + self.atomics
    }
}
use t3d_shell::{AckTracker, Annex, BltUnit, FetchIncRegs, MsgQueue, PrefetchUnit, SwapUnit};

/// The hot scalar state of one PE, held in a struct-of-arrays arena on
/// the machine (`Vec<NodeHot>`) rather than inside the pointer-rich
/// [`Node`]. The whole-machine scans — "max clock across PEs", "any
/// in-flight traffic in this sub-cube", contention-window checks —
/// stride over these few words per PE instead of ~500-byte nodes, so a
/// 1024-PE machine's scan state stays cache-hot.
///
/// `wbuf_pending`/`acks_inflight`/`prefetch_outstanding` mirror the
/// authoritative unit state in the cold node; the machine re-syncs them
/// at every point where that state can change, and debug builds assert
/// the mirror against the units on every contention-window scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeHot {
    /// Virtual time, in cycles.
    pub clock: u64,
    /// When this node's shell finishes servicing its current remote
    /// request (used only when contention modeling is on).
    pub shell_busy_until: u64,
    /// Mirror of `port.wbuf_pending()`.
    pub wbuf_pending: u32,
    /// Mirror of `acks.clear_time().is_some()`.
    pub acks_inflight: bool,
    /// Mirror of `prefetch.outstanding()`.
    pub prefetch_outstanding: u32,
}

impl NodeHot {
    /// Whether this PE has in-flight remote traffic that shell queueing
    /// could couple to another PE's timing.
    pub fn inflight(&self) -> bool {
        self.wbuf_pending > 0 || self.acks_inflight
    }
}

/// A processing element: memory system + shell units. The per-PE hot
/// scalars (clock, shell occupancy) live in the machine's [`NodeHot`]
/// arena.
#[derive(Debug)]
pub struct Node {
    /// Local memory system.
    pub port: MemPort,
    /// DTB Annex segment registers.
    pub annex: Annex,
    /// Binding prefetch queue.
    pub prefetch: PrefetchUnit,
    /// Outstanding-remote-write tracker (status bit).
    pub acks: AckTracker,
    /// Fetch&increment registers.
    pub fetchinc: FetchIncRegs,
    /// Atomic-swap operand register.
    pub swap: SwapUnit,
    /// User-level message queue (receive side).
    pub msgq: MsgQueue,
    /// Block transfer engine.
    pub blt: BltUnit,
    /// Log of remote-write arrivals `(virtual time, bytes)` — the basis
    /// for Split-C `storeSync` (data-counting completion detection).
    pub incoming: Vec<(u64, u64)>,
    /// Operation counters.
    pub ops: OpStats,
    /// Cycle-attribution accumulator for costs the machine layer charges
    /// directly (shell, network, waits); the memory port keeps its own
    /// ledger for the costs it returns. Node-owned so the sharded phase
    /// engine carries it thread-privately.
    pub perf: PerfAccum,
    /// Pending-completion queue for the event engine (empty between
    /// operations; see [`crate::event`]).
    pub events: EventQueue,
}

impl Node {
    /// Creates a node with identity `pe`.
    pub fn new(cfg: &MachineConfig, pe: u32) -> Self {
        Node {
            port: MemPort::new(cfg.mem),
            annex: Annex::new(&cfg.shell, pe),
            prefetch: PrefetchUnit::new(&cfg.shell),
            acks: AckTracker::new(&cfg.shell),
            fetchinc: FetchIncRegs::new(),
            swap: SwapUnit::new(),
            msgq: MsgQueue::new(&cfg.shell, cfg.msg_mode),
            blt: BltUnit::new(&cfg.shell),
            incoming: Vec::new(),
            ops: OpStats::default(),
            perf: PerfAccum::default(),
            events: EventQueue::default(),
        }
    }

    /// Total bytes of remote-write data that had arrived by `now`.
    pub fn bytes_arrived_by(&self, now: u64) -> u64 {
        self.incoming
            .iter()
            .filter(|&&(t, _)| t <= now)
            .map(|&(_, b)| b)
            .sum()
    }

    /// Earliest virtual time at which cumulative arrivals reach
    /// `target_bytes`, if they ever do.
    pub fn arrival_time_of(&self, target_bytes: u64) -> Option<u64> {
        if target_bytes == 0 {
            return Some(0);
        }
        let mut log: Vec<(u64, u64)> = self.incoming.clone();
        log.sort_unstable();
        let mut acc = 0u64;
        for (t, b) in log {
            acc += b;
            if acc >= target_bytes {
                return Some(t);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_accounting() {
        let mut n = Node::new(&MachineConfig::t3d(2), 0);
        n.incoming.push((100, 8));
        n.incoming.push((50, 8));
        n.incoming.push((200, 16));
        assert_eq!(n.bytes_arrived_by(99), 8);
        assert_eq!(n.bytes_arrived_by(100), 16);
        assert_eq!(n.arrival_time_of(16), Some(100));
        assert_eq!(n.arrival_time_of(32), Some(200));
        assert_eq!(n.arrival_time_of(33), None);
    }
}
