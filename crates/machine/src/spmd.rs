//! Deterministic SPMD phase driver.
//!
//! Split-C programs are SPMD: one thread of control per processor. The
//! paper's application study (EM3D, Section 8) is bulk-synchronous —
//! phases of local computation and communication separated by global
//! barriers. [`Spmd`] executes such programs deterministically: within a
//! phase, the per-node closure runs for node 0..P−1 *sequentially*
//! against the shared machine, each accumulating its own virtual clock;
//! [`Spmd::barrier`] aligns the clocks (and fences all outstanding
//! writes), exactly as the hardware barrier plus `allStoreSync` would.
//!
//! Correctness contract: within a phase, a node must not *wait on* values
//! produced by a higher-numbered node in the same phase (bulk-synchronous
//! programs never do — cross-node data is consumed only after a barrier).
//! Arrival *times* of stores are recorded precisely, so `storeSync`-style
//! waiting across a phase boundary is exact.

use crate::cpu::Cpu;
use crate::machine::Machine;
use crate::phase::PhaseDriver;

/// Phase-structured SPMD execution over a machine.
///
/// # Example
///
/// ```
/// use t3d_machine::{Machine, MachineConfig, Spmd};
///
/// let mut m = Machine::new(MachineConfig::t3d(4));
/// let mut spmd = Spmd::new(&mut m);
/// spmd.phase(|cpu| {
///     let me = cpu.pe() as u64;
///     cpu.st8(0x100, me);
/// });
/// spmd.barrier();
/// spmd.phase(|cpu| {
///     assert_eq!(cpu.ld8(0x100), cpu.pe() as u64);
/// });
/// ```
#[derive(Debug)]
pub struct Spmd<'m> {
    m: &'m mut Machine,
    phases: u64,
}

impl<'m> Spmd<'m> {
    /// Creates a driver over a machine.
    pub fn new(m: &'m mut Machine) -> Self {
        Spmd { m, phases: 0 }
    }

    /// The underlying machine.
    pub fn machine(&mut self) -> &mut Machine {
        self.m
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.m.nodes()
    }

    /// Runs one phase: the closure executes once per node, in node order.
    pub fn phase<F: FnMut(&mut Cpu)>(&mut self, mut f: F) {
        for pe in 0..self.m.nodes() {
            let mut cpu = Cpu::new(self.m, pe);
            f(&mut cpu);
        }
        self.phases += 1;
    }

    /// Runs one phase through the sharded engine, with the driver chosen
    /// by the `T3D_PAR` environment variable (see
    /// [`PhaseDriver::from_env`]): PEs execute concurrently on a thread
    /// pool, bit-identical to the sequential shard order.
    ///
    /// Unlike [`Spmd::phase`], the closure is `Fn + Sync` (it runs on
    /// worker threads) and may not touch the whole machine — only the
    /// per-PE operations on [`Cpu`]. See [`crate::phase`] for the
    /// bulk-synchronous contract.
    pub fn par_phase(&mut self, f: impl Fn(&mut Cpu) + Sync) {
        self.par_phase_with(PhaseDriver::from_env(), f);
    }

    /// [`Spmd::par_phase`] with an explicit driver (e.g.
    /// [`PhaseDriver::Seq`] as the determinism oracle).
    pub fn par_phase_with(&mut self, driver: PhaseDriver, f: impl Fn(&mut Cpu) + Sync) {
        self.m.sharded_phase(driver, f);
        self.phases += 1;
    }

    /// Global barrier: fences all writes and aligns all clocks.
    pub fn barrier(&mut self) {
        self.m.barrier_all();
    }

    /// Fuzzy barrier around a slice of overlappable work: every node
    /// fences, executes start-barrier, runs `overlapped`, and the
    /// end-barrier completes — so `overlapped` hides in the wait for the
    /// slowest node (Section 7.5).
    pub fn fuzzy_barrier<F: FnMut(&mut Cpu)>(&mut self, mut overlapped: F) {
        for pe in 0..self.m.nodes() {
            self.m.memory_barrier(pe);
            self.m.fuzzy_barrier_start(pe);
            let mut cpu = Cpu::new(self.m, pe);
            overlapped(&mut cpu);
        }
        self.m.fuzzy_barrier_end_all();
    }

    /// Phases executed so far.
    pub fn phases(&self) -> u64 {
        self.phases
    }

    /// The maximum clock across nodes (total elapsed virtual time).
    pub fn max_clock(&self) -> u64 {
        (0..self.m.nodes())
            .map(|pe| self.m.clock(pe))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use t3d_shell::FuncCode;

    #[test]
    fn phases_run_every_node() {
        let mut m = Machine::new(MachineConfig::t3d(4));
        let mut spmd = Spmd::new(&mut m);
        let mut seen = Vec::new();
        spmd.phase(|cpu| seen.push(cpu.pe()));
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(spmd.phases(), 1);
    }

    #[test]
    fn barrier_aligns_after_uneven_work() {
        let mut m = Machine::new(MachineConfig::t3d(4));
        let mut spmd = Spmd::new(&mut m);
        spmd.phase(|cpu| {
            let work = 100 * (cpu.pe() as u64 + 1);
            cpu.advance(work);
        });
        spmd.barrier();
        let clocks: Vec<u64> = (0..4).map(|pe| spmd.machine().clock(pe)).collect();
        assert!(clocks.windows(2).all(|w| w[0] == w[1]));
        assert!(clocks[0] >= 400);
    }

    #[test]
    fn fuzzy_barrier_runs_overlapped_work_and_synchronizes() {
        let mut m = Machine::new(MachineConfig::t3d(4));
        let mut spmd = Spmd::new(&mut m);
        spmd.phase(|cpu| {
            let skew = 1000 * cpu.pe() as u64;
            cpu.advance(skew);
        });
        let mut ran = 0;
        spmd.fuzzy_barrier(|cpu| {
            cpu.advance(500);
            ran += 1;
        });
        assert_eq!(ran, 4);
        let clocks: Vec<u64> = (0..4).map(|pe| spmd.machine().clock(pe)).collect();
        // Unlike a plain barrier, the fuzzy barrier does NOT align the
        // clocks: each node merely cannot pass before the wire settled
        // (last arrival ~3009 + 50). The fast nodes' overlapped work is
        // hidden inside the wait.
        let settle = 3_000 + 4 + 5 + 50;
        assert!(clocks.iter().all(|&c| c >= settle), "{clocks:?}");
        assert!(
            clocks[0] < clocks[3],
            "fast node exits near the wire settle, straggler later: {clocks:?}"
        );
        assert!(
            clocks[3] >= 3_500 && clocks[3] < 3_600,
            "straggler clock {}",
            clocks[3]
        );
    }

    #[test]
    fn par_phase_matches_its_sequential_oracle() {
        use crate::phase::PhaseDriver;
        let run = |driver: PhaseDriver| {
            let mut m = Machine::new(MachineConfig::t3d(4));
            let mut spmd = Spmd::new(&mut m);
            spmd.par_phase_with(driver, |cpu| {
                let right = (cpu.pe() + 1) % cpu.nodes();
                cpu.annex_set(1, right as u32, FuncCode::Uncached);
                cpu.st8(cpu.va(1, 0x200), cpu.pe() as u64 + 100);
                cpu.memory_barrier();
                cpu.wait_write_acks();
            });
            spmd.barrier();
            let mut out = Vec::new();
            spmd.par_phase_with(driver, |cpu| {
                let left = (cpu.pe() + cpu.nodes() - 1) % cpu.nodes();
                assert_eq!(cpu.ld8(0x200), left as u64 + 100);
            });
            for pe in 0..4 {
                out.push(spmd.machine().clock(pe));
            }
            out
        };
        assert_eq!(run(PhaseDriver::Seq), run(PhaseDriver::Par(4)));
    }

    #[test]
    fn neighbour_exchange_is_visible_after_barrier() {
        let mut m = Machine::new(MachineConfig::t3d(4));
        let mut spmd = Spmd::new(&mut m);
        spmd.phase(|cpu| {
            let right = (cpu.pe() + 1) % cpu.nodes();
            cpu.annex_set(1, right as u32, FuncCode::Uncached);
            let va = cpu.va(1, 0x200);
            cpu.st8(va, cpu.pe() as u64 + 100);
        });
        spmd.barrier();
        spmd.phase(|cpu| {
            let left = (cpu.pe() + cpu.nodes() - 1) % cpu.nodes();
            assert_eq!(cpu.ld8(0x200), left as u64 + 100);
        });
    }
}
