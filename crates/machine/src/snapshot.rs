//! Deterministic memory/clock snapshots for differential checking.
//!
//! A [`MemSnapshot`] captures one region of every node's memory plus the
//! per-node virtual clocks, all functionally (no timing charged, caches
//! untouched). Two snapshots of the same region compare with
//! [`MemSnapshot::diff`], which reports the *first* divergence — the
//! anchor the `t3d-fuzz` differential harness shrinks failures around.
//!
//! [`Machine::corrupt_byte`] is the matching fault-injection hook: it
//! flips one settled byte, exactly what a bug in the sharded phase
//! engine's effect-log merge would look like, so the harness can prove
//! its oracle actually detects (and its shrinker minimizes) a
//! single-byte divergence.

use crate::machine::Machine;

/// A functional capture of `[base, base + bytes)` on every node, plus
/// the virtual clocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemSnapshot {
    base: u64,
    clocks: Vec<u64>,
    mem: Vec<Vec<u8>>,
}

/// The first divergence between two snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotDiff {
    /// Virtual clocks disagree on a node.
    Clock {
        /// The diverging node.
        pe: usize,
        /// Clock in the first snapshot.
        a: u64,
        /// Clock in the second snapshot.
        b: u64,
    },
    /// A memory byte disagrees on a node.
    Byte {
        /// The diverging node.
        pe: usize,
        /// Absolute local offset of the byte.
        off: u64,
        /// Value in the first snapshot.
        a: u8,
        /// Value in the second snapshot.
        b: u8,
    },
}

impl std::fmt::Display for SnapshotDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SnapshotDiff::Clock { pe, a, b } => {
                write!(f, "PE {pe}: clock {a} vs {b}")
            }
            SnapshotDiff::Byte { pe, off, a, b } => {
                write!(f, "PE {pe}: byte at {off:#x} is {a:#04x} vs {b:#04x}")
            }
        }
    }
}

impl MemSnapshot {
    /// First local offset captured.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Captured bytes of one node.
    pub fn mem(&self, pe: usize) -> &[u8] {
        &self.mem[pe]
    }

    /// Captured virtual clock of one node.
    pub fn clock(&self, pe: usize) -> u64 {
        self.clocks[pe]
    }

    /// The first divergence from `other` — clocks first (they order the
    /// nodes' virtual time), then memory bytes in address order.
    ///
    /// # Panics
    ///
    /// Panics if the snapshots cover different shapes (node count,
    /// base, or length).
    pub fn diff(&self, other: &MemSnapshot) -> Option<SnapshotDiff> {
        assert_eq!(self.base, other.base, "snapshots cover the same region");
        assert_eq!(self.mem.len(), other.mem.len(), "same node count");
        for (pe, (&a, &b)) in self.clocks.iter().zip(&other.clocks).enumerate() {
            if a != b {
                return Some(SnapshotDiff::Clock { pe, a, b });
            }
        }
        self.mem_diff(other)
    }

    /// FNV-1a fingerprint of the snapshot: every node's captured bytes
    /// in PE order, then every virtual clock. Two snapshots of the same
    /// region hash equal iff [`MemSnapshot::diff`] finds no divergence,
    /// so the single `u64` stands in for a full comparison when only a
    /// determinism verdict is needed (the throughput bench records it so
    /// a fast-but-wrong engine fails the run).
    ///
    /// The hash runs over little-endian 64-bit *words* of each node's
    /// region (a zero-padded final word if the length is not a multiple
    /// of eight), then the clocks, using the same FNV-1a parameters as
    /// the EM3D clock fingerprint. Word granularity keeps the hash one
    /// multiply per eight bytes — snapshots cover megabytes, and the
    /// byte-serial variant dominated the throughput bench's host time.
    pub fn fnv64(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut step = |word: u64| {
            h = (h ^ word).wrapping_mul(0x100_0000_01b3);
        };
        for bytes in &self.mem {
            let mut chunks = bytes.chunks_exact(8);
            for c in &mut chunks {
                step(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
            }
            let rem = chunks.remainder();
            if !rem.is_empty() {
                let mut w = [0u8; 8];
                w[..rem.len()].copy_from_slice(rem);
                step(u64::from_le_bytes(w));
            }
        }
        for &c in &self.clocks {
            step(c);
        }
        h
    }

    /// Like [`MemSnapshot::diff`] but ignoring clocks — the comparison
    /// against a reference model that has no notion of virtual time.
    pub fn mem_diff(&self, other: &MemSnapshot) -> Option<SnapshotDiff> {
        assert_eq!(self.base, other.base, "snapshots cover the same region");
        for (pe, (ma, mb)) in self.mem.iter().zip(&other.mem).enumerate() {
            assert_eq!(ma.len(), mb.len(), "same region length");
            for (i, (&a, &b)) in ma.iter().zip(mb).enumerate() {
                if a != b {
                    return Some(SnapshotDiff::Byte {
                        pe,
                        off: self.base + i as u64,
                        a,
                        b,
                    });
                }
            }
        }
        None
    }
}

impl Machine {
    /// Functionally captures `[base, base + bytes)` on every node plus
    /// the virtual clocks. Charges no time and perturbs no caches, so
    /// snapshotting is invisible to the simulation.
    pub fn snapshot_region(&self, base: u64, bytes: u64) -> MemSnapshot {
        let n = self.nodes();
        let mut mem = Vec::with_capacity(n);
        let mut clocks = Vec::with_capacity(n);
        for pe in 0..n {
            let mut buf = vec![0u8; bytes as usize];
            self.peek_mem(pe, base, &mut buf);
            mem.push(buf);
            clocks.push(self.clock(pe));
        }
        MemSnapshot { base, clocks, mem }
    }

    /// Fault-injection hook: flips every bit of the byte at `off` on
    /// `pe` (functionally, flushing any cached copy). Differential
    /// harnesses use this to prove their memory-equivalence oracle
    /// detects a single corrupted byte.
    pub fn corrupt_byte(&mut self, pe: usize, off: u64) {
        let mut b = [0u8; 1];
        self.peek_mem(pe, off, &mut b);
        self.poke_mem(pe, off, &[b[0] ^ 0xFF]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    #[test]
    fn identical_machines_have_no_diff() {
        let m = Machine::new(MachineConfig::t3d(4));
        let a = m.snapshot_region(0x100, 64);
        let b = m.snapshot_region(0x100, 64);
        assert_eq!(a.diff(&b), None);
        assert_eq!(a.base(), 0x100);
        assert_eq!(a.mem(0).len(), 64);
    }

    #[test]
    fn a_byte_change_is_found_at_its_offset() {
        let mut m = Machine::new(MachineConfig::t3d(2));
        let a = m.snapshot_region(0x100, 64);
        m.poke_mem(1, 0x120, &[0xAB]);
        let b = m.snapshot_region(0x100, 64);
        assert_eq!(
            a.mem_diff(&b),
            Some(SnapshotDiff::Byte {
                pe: 1,
                off: 0x120,
                a: 0,
                b: 0xAB
            })
        );
        // diff() reports it too (clocks are equal).
        assert_eq!(
            a.diff(&b),
            Some(SnapshotDiff::Byte {
                pe: 1,
                off: 0x120,
                a: 0,
                b: 0xAB
            })
        );
    }

    #[test]
    fn fresh_machine_snapshot_fnv_is_pinned() {
        // Guards the arena's zeroed-allocation fast path: a fresh
        // machine's entire memory (and clocks) must hash exactly as it
        // did under element-wise zero initialization.
        let cfg = MachineConfig::t3d(2);
        let bytes = cfg.mem.mem_bytes as u64;
        let m = Machine::new(cfg);
        assert_eq!(m.snapshot_region(0, bytes).fnv64(), 0xbf38_e16e_e1eb_6fed);
    }

    #[test]
    fn clock_divergence_is_reported_before_memory() {
        let mut m = Machine::new(MachineConfig::t3d(2));
        let a = m.snapshot_region(0x100, 8);
        m.advance(0, 10);
        m.poke_mem(0, 0x100, &[1]);
        let b = m.snapshot_region(0x100, 8);
        assert_eq!(a.diff(&b), Some(SnapshotDiff::Clock { pe: 0, a: 0, b: 10 }));
        assert!(matches!(a.mem_diff(&b), Some(SnapshotDiff::Byte { .. })));
    }

    #[test]
    fn corrupt_byte_flips_and_is_visible() {
        let mut m = Machine::new(MachineConfig::t3d(2));
        m.poke_mem(0, 0x140, &[0x0F]);
        m.corrupt_byte(0, 0x140);
        let mut b = [0u8; 1];
        m.peek_mem(0, 0x140, &mut b);
        assert_eq!(b[0], 0xF0);
    }

    #[test]
    fn fnv64_tracks_diff_and_sees_every_byte() {
        // Odd region length exercises the zero-padded tail word.
        let m = Machine::new(MachineConfig::t3d(2));
        let a = m.snapshot_region(0x100, 61);
        assert_eq!(
            a.fnv64(),
            m.snapshot_region(0x100, 61).fnv64(),
            "identical snapshots hash equal"
        );
        // Any single corrupted byte in the region changes the hash —
        // including one in the final partial word.
        for off in [0x100u64, 0x120, 0x100 + 60] {
            let mut mm = Machine::new(MachineConfig::t3d(2));
            mm.corrupt_byte(1, off);
            let b = mm.snapshot_region(0x100, 61);
            assert!(a.diff(&b).is_some());
            assert_ne!(a.fnv64(), b.fnv64(), "byte at {off:#x} must change hash");
        }
        // Clocks feed the hash too.
        let mut mc = Machine::new(MachineConfig::t3d(2));
        mc.advance(0, 1);
        assert_ne!(a.fnv64(), mc.snapshot_region(0x100, 61).fnv64());
    }

    #[test]
    fn diff_renders_readably() {
        let d = SnapshotDiff::Byte {
            pe: 3,
            off: 0x108,
            a: 1,
            b: 2,
        };
        assert_eq!(d.to_string(), "PE 3: byte at 0x108 is 0x01 vs 0x02");
        let c = SnapshotDiff::Clock { pe: 1, a: 5, b: 6 };
        assert_eq!(c.to_string(), "PE 1: clock 5 vs 6");
    }
}
