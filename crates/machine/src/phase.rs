//! Sharded bulk-synchronous phases: run every PE of a phase concurrently
//! with results bit-identical to running them one after another.
//!
//! # The model
//!
//! The direct engine ([`Machine`]) interleaves remote effects eagerly: a
//! remote store charges the target's DRAM the moment the source's write
//! buffer retires it. That is simple and exact, but it serializes the
//! phase — node 1's closure cannot run until node 0's has finished
//! mutating the shared machine.
//!
//! The sharded engine splits a phase into independent *shards*. Each
//! shard ([`PhasePe`]) owns its node's entire state — caches, write
//! buffer, DRAM timing, clock, prefetch queue — plus *private snapshots*
//! of every other node's DRAM timing, shell occupancy and
//! fetch&increment registers, taken at phase start. During the phase a
//! shard:
//!
//! * mutates only its own node,
//! * reads other nodes' memory bytes through shared [`MemArena`] handles
//!   (safe: the BSP contract below),
//! * computes remote *timing* against its private snapshots, and
//! * appends outbound effects — remote stores, DRAM touches, message
//!   deliveries, fetch&increment bumps, BLT deposits — to a per-shard
//!   log stamped with virtual time.
//!
//! When every shard has run, the logs are merged in deterministic order
//! — `(virtual time, source PE, issue sequence)` — and applied to the
//! real nodes. Because each shard's execution depends only on the phase
//! entry state, and the merge order is a pure function of the logs, the
//! result is **bit-identical whether the shards run sequentially or on
//! any number of threads**. [`PhaseDriver::Seq`] is therefore a true
//! oracle for [`PhaseDriver::Par`].
//!
//! # The contract
//!
//! The engine is exact for programs that follow the bulk-synchronous
//! discipline the paper's benchmarks use (and [`crate::Spmd`] assumes):
//! within a phase, no node may read a location that another node writes
//! in the same phase — communication produced in phase *k* is consumed
//! in phase *k + 1*, after a barrier. Under that contract the sharded
//! engine differs from the direct engine only in second-order timing
//! (a shard sees other nodes' DRAM-page and shell-occupancy state as of
//! phase start rather than live). Those deviations are deterministic and
//! identical under both sharded drivers.
//!
//! Two operations are deliberately restricted inside a sharded phase:
//! `atomic_swap` on a *remote* PE panics (swap-based locks serialize by
//! nature; take them through [`Machine`] directly), and a remote
//! `fetch_inc` returns the phase-start value plus this shard's own
//! increments — concurrent increments from *other* shards are merged
//! afterwards, so tickets are only unique per shard within one phase.

use crate::config::MachineConfig;
use crate::cpu::Cpu;
use crate::machine::{link_occupancy_cy, BltHandle, Machine};
use crate::node::{Node, NodeHot, OpStats};
use crate::ops::MachineOps;
use std::sync::Arc;
use t3d_memsys::{Dram, MemArena, RemoteSink, WriteTarget};
use t3d_perf::{CostClass, OpKind};
use t3d_shell::blt::BltDirection;
use t3d_shell::{AnnexEntry, FetchIncRegs, FuncCode, Message, PopError};
use t3d_torus::{subcube, Torus};

/// Which execution engine drives a sharded phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseDriver {
    /// Run the shards one after another on the calling thread (the
    /// determinism oracle).
    Seq,
    /// Run the shards on up to this many worker threads. `Par(1)` uses
    /// the sequential path; results are identical for every value.
    Par(usize),
}

impl PhaseDriver {
    /// Selects a driver from the `T3D_PAR` environment variable:
    ///
    /// * unset or `1` — parallel, one thread per available core;
    /// * `0` — sequential (shards still run through the sharded engine,
    ///   so results match the parallel driver bit for bit);
    /// * `N > 1` — parallel with `N` threads.
    ///
    /// Unparsable values fall back to the parallel default.
    pub fn from_env() -> Self {
        match std::env::var("T3D_PAR") {
            Err(_) => PhaseDriver::Par(Self::auto_threads()),
            Ok(s) => match s.trim() {
                "0" => PhaseDriver::Seq,
                "" | "1" => PhaseDriver::Par(Self::auto_threads()),
                n => PhaseDriver::Par(n.parse().unwrap_or_else(|_| Self::auto_threads())),
            },
        }
    }

    fn auto_threads() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    fn threads_for(self, pes: usize) -> usize {
        match self {
            PhaseDriver::Seq => 1,
            PhaseDriver::Par(n) => n.clamp(1, pes.max(1)),
        }
    }
}

/// An outbound effect recorded by a shard, applied at merge time.
#[derive(Debug)]
enum Effect {
    /// A retired remote write: service the target's DRAM, update memory
    /// under the mask, invalidate the covered cache line, and (if
    /// `arrival` is set) log the data arrival for `storeSync`.
    Write {
        off: u64,
        data: Vec<u8>,
        mask: Option<u64>,
        arrival: Option<(u64, u64)>,
    },
    /// A functional deposit (BLT): write bytes and invalidate covered
    /// lines, no DRAM timing.
    Poke { off: u64, data: Vec<u8> },
    /// Replay of a remote read's DRAM access (page-state evolution).
    DramTouch { off: u64 },
    /// A message delivery into the target's queue.
    Msg(Message),
    /// A fetch&increment bump of the target's register.
    FetchInc { reg: usize },
    /// Pure link-occupancy replay with no node-side effect (BLT reads:
    /// the stream holds its route but deposits locally).
    LinkReserve,
}

/// An [`Effect`] with its deterministic merge key.
#[derive(Debug)]
struct TimedEffect {
    /// Virtual time at which the effect reaches the target.
    time: u64,
    /// Issuing PE.
    src: u32,
    /// Issue order within the source shard (merge tiebreaker).
    seq: u64,
    /// Target PE.
    target: u32,
    /// Shell-occupancy replay `(ready, occupancy_cy)` for contention
    /// modeling, when the effect occupies the target's shell.
    busy: Option<(u64, u64)>,
    /// Link-occupancy replay `(ready, occupancy_cy)` for link-contention
    /// modeling: at merge time the dimension-order route `src -> target`
    /// is re-reserved against the global link clocks.
    link: Option<(u64, u64)>,
    eff: Effect,
}

/// Read-only state shared by every shard of one phase.
struct PhaseShared {
    cfg: MachineConfig,
    torus: Torus,
    /// Every node's memory bytes (shared, interior-mutable).
    mems: Vec<Arc<MemArena>>,
    /// Phase-start snapshot of every node's DRAM timing state.
    dram: Vec<Dram>,
    /// Phase-start snapshot of every node's shell occupancy.
    busy: Vec<u64>,
    /// Phase-start snapshot of the per-link occupancy clocks.
    links: Vec<u64>,
    /// Phase-start snapshot of every node's fetch&increment registers.
    finc: Vec<FetchIncRegs>,
}

impl PhaseShared {
    fn capture(
        cfg: &MachineConfig,
        torus: &Torus,
        nodes: &[Node],
        hot: &[NodeHot],
        links: &[u64],
    ) -> Self {
        PhaseShared {
            cfg: *cfg,
            torus: torus.clone(),
            mems: nodes
                .iter()
                .map(|n| Arc::clone(n.port.mem_arena()))
                .collect(),
            dram: nodes.iter().map(|n| n.port.dram().clone()).collect(),
            busy: hot.iter().map(|h| h.shell_busy_until).collect(),
            links: links.to_vec(),
            finc: nodes.iter().map(|n| n.fetchinc.clone()).collect(),
        }
    }
}

/// One PE's shard of a sharded phase: a [`MachineOps`] backend that owns
/// its node exclusively and logs outbound effects.
///
/// All operations must name this shard's own PE (except the explicit
/// `target_pe` of `fetch_inc`, BLT transfers and `msg_send`, and
/// annex-translated loads and stores, which are the point).
pub struct PhasePe<'a> {
    pe: usize,
    node: &'a mut Node,
    /// This PE's hot scalars (clock, shell occupancy), owned exclusively
    /// for the phase like the node itself.
    hot: &'a mut NodeHot,
    sh: &'a PhaseShared,
    /// Private evolution of every other node's DRAM timing, seeded from
    /// the phase-start snapshot.
    rdram: Vec<Dram>,
    /// Private evolution of every other node's shell occupancy.
    rbusy: Vec<u64>,
    /// Private evolution of the link-occupancy clocks.
    rlink: Vec<u64>,
    /// This shard's own increments of remote fetch&increment registers.
    finc_bumps: Vec<[u64; 2]>,
    effects: Vec<TimedEffect>,
    seq: u64,
}

impl<'a> PhasePe<'a> {
    fn new(pe: usize, node: &'a mut Node, hot: &'a mut NodeHot, sh: &'a PhaseShared) -> Self {
        let n = sh.mems.len();
        PhasePe {
            pe,
            node,
            hot,
            sh,
            rdram: sh.dram.clone(),
            rbusy: sh.busy.clone(),
            rlink: sh.links.clone(),
            finc_bumps: vec![[0u64; 2]; n],
            effects: Vec::new(),
            seq: 0,
        }
    }

    #[inline]
    fn own(&self, pe: usize) {
        assert_eq!(
            pe, self.pe,
            "a sharded phase closure may only drive its own PE (got {pe}, shard owns {})",
            self.pe
        );
    }

    fn split(&self, va: u64) -> (usize, u64) {
        t3d_shell::annex::split_pa(va, self.sh.cfg.mem.offset_bits)
    }

    /// Mirrors `Machine::use_event_path`. A shard cannot see other
    /// shards' in-flight traffic, so with contention modeling on (shell
    /// or link) it conservatively stays cycle-accurate for the whole
    /// phase; with contention off (the default) the fast-forward is
    /// exact and the gate reduces to the engine mode.
    fn use_event_path(&self) -> bool {
        self.sh.cfg.engine == crate::event::EngineMode::Event
            && !self.sh.cfg.contention
            && !self.sh.cfg.link_contention
    }

    fn line_mask(&self) -> u64 {
        self.sh.cfg.mem.l1.line as u64 - 1
    }

    /// Mirrors `Machine::rtt_cy`: exactly twice the rounded one-way
    /// latency (not the rounded double), keeping Seq/Par bit-identical.
    fn rtt(&self, b: usize) -> u64 {
        2 * self.one_way(b)
    }

    fn one_way(&self, b: usize) -> u64 {
        self.sh.torus.one_way_cy(self.pe as u32, b as u32).round() as u64
    }

    /// The shard-local mirror of `Machine::contend`: queueing against the
    /// real occupancy for this shard's own shell, against the private
    /// snapshot for a remote one.
    fn contend(&mut self, target: usize, ready: u64, occupancy_cy: u64) -> u64 {
        if !self.sh.cfg.contention {
            return 0;
        }
        let busy = if target == self.pe {
            &mut self.hot.shell_busy_until
        } else {
            &mut self.rbusy[target]
        };
        let start = ready.max(*busy);
        *busy = start + occupancy_cy;
        start - ready
    }

    /// The shard-local mirror of `Machine::link_contend`: queueing on the
    /// dimension-order route against the private phase-start link
    /// snapshot. The reservation is replayed against the global link
    /// clocks at merge time via [`TimedEffect::link`].
    fn link_contend(&mut self, target: usize, ready: u64, occupancy_cy: u64) -> u64 {
        if !self.sh.cfg.link_contention || target == self.pe {
            return 0;
        }
        let path = self.sh.torus.route(self.pe as u32, target as u32);
        let mut start = ready;
        for w in path.windows(2) {
            start = start.max(self.rlink[self.sh.torus.step_link_id(w[0], w[1])]);
        }
        for w in path.windows(2) {
            self.rlink[self.sh.torus.step_link_id(w[0], w[1])] = start + occupancy_cy;
        }
        start - ready
    }

    fn push(
        &mut self,
        time: u64,
        target: usize,
        busy: Option<(u64, u64)>,
        link: Option<(u64, u64)>,
        eff: Effect,
    ) {
        let seq = self.seq;
        self.seq += 1;
        self.effects.push(TimedEffect {
            time,
            src: self.pe as u32,
            seq,
            target: target as u32,
            busy,
            link,
            eff,
        });
    }

    /// Reads target memory bytes functionally: own port for the own PE,
    /// the shared arena for a remote one.
    fn read_target_mem(&self, target: usize, off: u64, buf: &mut [u8]) {
        if target == self.pe {
            self.node.port.peek_mem(off, buf);
        } else {
            self.sh.mems[target].read(off, buf);
        }
    }

    fn poke_own(&mut self, off: u64, data: &[u8]) {
        self.node.port.poke_mem(off, data);
        let line = self.sh.cfg.mem.l1.line as u64;
        let mut a = off & !self.line_mask();
        while a < off + data.len() as u64 {
            self.node.port.l1_mut().invalidate(a);
            a += line;
        }
    }

    /// The shard-side mirror of `Machine::deliver_outbox`: remote writes
    /// retired by this node's write buffer become merge effects (the ack
    /// is registered source-side immediately, with the delivery timing
    /// computed against the private target snapshots).
    fn flush_outbox(&mut self) {
        let retired = self.node.port.take_outbox();
        for r in retired {
            let WriteTarget::Remote(sink) = r.target else {
                unreachable!("outbox only carries remote writes")
            };
            let target = sink.pe as usize;
            let bytes = r.mask.count_ones() as u64;
            if target == self.pe {
                let dram =
                    self.node
                        .port
                        .service_remote_write(sink.remote_line_pa, &r.data, Some(r.mask));
                let queue = self.contend(target, r.completion + sink.ack_rtt_cy / 2, dram + 5);
                let arrival = r.completion + sink.ack_rtt_cy / 2 + dram + queue;
                let ack = r.completion + sink.ack_rtt_cy + dram + queue;
                self.node.incoming.push((arrival, bytes));
                self.node.acks.expect_ack(ack);
            } else {
                let dram = self.rdram[target].access(sink.remote_line_pa);
                let ready = r.completion + sink.ack_rtt_cy / 2;
                let lqueue = self.link_contend(target, ready, link_occupancy_cy(bytes));
                let queue = self.contend(target, ready + lqueue, dram + 5);
                let arrival = ready + lqueue + dram + queue;
                let ack = r.completion + sink.ack_rtt_cy + lqueue + dram + queue;
                self.push(
                    arrival,
                    target,
                    Some((ready + lqueue, dram + 5)),
                    Some((ready, link_occupancy_cy(bytes))),
                    Effect::Write {
                        off: sink.remote_line_pa,
                        data: r.data,
                        mask: Some(r.mask),
                        arrival: Some((arrival, bytes)),
                    },
                );
                self.node.acks.expect_ack(ack);
            }
        }
    }

    fn into_effects(self) -> Vec<TimedEffect> {
        self.effects
    }
}

impl MachineOps for PhasePe<'_> {
    fn nodes(&self) -> usize {
        self.sh.mems.len()
    }

    fn cycle_ns(&self) -> f64 {
        self.sh.cfg.cycle_ns()
    }

    fn offset_bits(&self) -> u32 {
        self.sh.cfg.mem.offset_bits
    }

    fn node(&self, pe: usize) -> &Node {
        self.own(pe);
        self.node
    }

    fn node_mut(&mut self, pe: usize) -> &mut Node {
        self.own(pe);
        self.node
    }

    fn clock(&self, pe: usize) -> u64 {
        self.own(pe);
        self.hot.clock
    }

    fn advance(&mut self, pe: usize, cycles: u64) {
        self.own(pe);
        self.hot.clock += cycles;
        self.node.perf.credit(CostClass::Compute, cycles);
    }

    fn annex_set(&mut self, pe: usize, idx: usize, entry: AnnexEntry) {
        self.own(pe);
        assert!(
            (entry.pe as usize) < self.sh.mems.len(),
            "annex target PE {} does not exist",
            entry.pe
        );
        let cost = self.node.annex.update(idx, entry);
        self.hot.clock += cost;
        self.node.perf.credit(CostClass::AnnexUpdate, cost);
    }

    fn annex_entry(&self, pe: usize, idx: usize) -> AnnexEntry {
        self.own(pe);
        self.node.annex.entry(idx)
    }

    fn ld(&mut self, pe: usize, va: u64, buf: &mut [u8]) {
        self.own(pe);
        let (aidx, off) = self.split(va);
        if aidx == 0 {
            self.node.ops.loads_local += 1;
            let now = self.hot.clock;
            let cost = self.node.port.read(now, va, buf);
            self.hot.clock = now + cost;
            self.node.perf.sample(OpKind::LdLocal, cost);
            self.flush_outbox();
            return;
        }
        let line_pa = va & !self.line_mask();
        assert!(
            (va - line_pa) as usize + buf.len() <= self.sh.cfg.mem.l1.line,
            "remote load must not cross a cache line"
        );
        self.node.ops.loads_remote += 1;
        let entry = self.node.annex.entry(aidx);
        let target = entry.pe as usize;
        let now = self.hot.clock;
        self.node.port.apply_due(now);
        self.flush_outbox();

        let mut cost = self.node.port.tlb_access(va);
        if let Some(line) = self.node.port.l1().lookup(va) {
            let o = (va - line_pa) as usize;
            buf.copy_from_slice(&line[o..o + buf.len()]);
            self.hot.clock = now + cost + self.sh.cfg.mem.l1.hit_cy;
            let hit = self.sh.cfg.mem.l1.hit_cy;
            self.node.perf.credit(CostClass::L1Hit, hit);
            self.node.perf.sample(OpKind::LdRemote, cost + hit);
            return;
        }
        let shell = self.sh.cfg.shell;
        if entry.func == FuncCode::Cached {
            let line_off = off & !self.line_mask();
            let mut line_buf = vec![0u8; self.sh.cfg.mem.l1.line];
            let occ = link_occupancy_cy(self.sh.cfg.mem.l1.line as u64);
            let (dram, queue, lqueue);
            if target == self.pe {
                dram = self.node.port.service_remote_read(line_off, &mut line_buf);
                let ready = now + cost + shell.remote_read_shell_cy / 2 + self.one_way(target);
                lqueue = self.link_contend(target, ready, occ);
                queue = self.contend(target, ready + lqueue, dram + 5);
            } else {
                dram = self.rdram[target].access(line_off);
                self.sh.mems[target].read(line_off, &mut line_buf);
                let ready = now + cost + shell.remote_read_shell_cy / 2 + self.one_way(target);
                lqueue = self.link_contend(target, ready, occ);
                queue = self.contend(target, ready + lqueue, dram + 5);
                self.push(
                    ready,
                    target,
                    Some((ready + lqueue, dram + 5)),
                    Some((ready, occ)),
                    Effect::DramTouch { off: line_off },
                );
            }
            cost += shell.remote_read_shell_cy
                + shell.cached_read_extra_cy
                + self.rtt(target)
                + dram
                + queue
                + lqueue;
            let launch = shell.remote_read_shell_cy + shell.cached_read_extra_cy;
            let rtt = self.rtt(target);
            let p = &mut self.node.perf;
            p.credit(CostClass::ShellLaunch, launch);
            p.credit(CostClass::NetHop, rtt);
            p.credit(CostClass::RemoteDram, dram);
            p.credit(CostClass::Contention, queue + lqueue);
            if self.node.port.has_pending_line(line_pa) {
                self.node.port.forward_pending(line_pa, &mut line_buf);
            }
            self.node.port.install_remote_line(line_pa, &line_buf);
            let o = (va - line_pa) as usize;
            buf.copy_from_slice(&line_buf[o..o + buf.len()]);
        } else {
            debug_assert!(
                entry.func == FuncCode::Uncached,
                "annex function code {:?} is not a load flavour",
                entry.func
            );
            let occ = link_occupancy_cy(buf.len() as u64);
            let (dram, queue, lqueue);
            if target == self.pe {
                dram = self.node.port.service_remote_read(off, buf);
                let ready = now + cost + shell.remote_read_shell_cy / 2 + self.one_way(target);
                lqueue = self.link_contend(target, ready, occ);
                queue = self.contend(target, ready + lqueue, dram + 5);
            } else {
                dram = self.rdram[target].access(off);
                self.sh.mems[target].read(off, buf);
                let ready = now + cost + shell.remote_read_shell_cy / 2 + self.one_way(target);
                lqueue = self.link_contend(target, ready, occ);
                queue = self.contend(target, ready + lqueue, dram + 5);
                self.push(
                    ready,
                    target,
                    Some((ready + lqueue, dram + 5)),
                    Some((ready, occ)),
                    Effect::DramTouch { off },
                );
            }
            cost += shell.remote_read_shell_cy + self.rtt(target) + dram + queue + lqueue;
            let rtt = self.rtt(target);
            let p = &mut self.node.perf;
            p.credit(CostClass::ShellLaunch, shell.remote_read_shell_cy);
            p.credit(CostClass::NetHop, rtt);
            p.credit(CostClass::RemoteDram, dram);
            p.credit(CostClass::Contention, queue + lqueue);
            // Our own pending stores to the same full PA forward.
            if self.node.port.has_pending_line(line_pa) {
                let mut line_buf = vec![0u8; self.sh.cfg.mem.l1.line];
                let line_off = off & !self.line_mask();
                self.read_target_mem(target, line_off, &mut line_buf);
                self.node.port.forward_pending(line_pa, &mut line_buf);
                let o = (va - line_pa) as usize;
                buf.copy_from_slice(&line_buf[o..o + buf.len()]);
            }
        }
        self.hot.clock = now + cost;
        self.node.perf.sample(OpKind::LdRemote, cost);
    }

    fn st(&mut self, pe: usize, va: u64, bytes: &[u8]) {
        self.own(pe);
        let (aidx, off) = self.split(va);
        let now = self.hot.clock;
        let cost = if aidx == 0 {
            self.node.ops.stores_local += 1;
            self.node.port.write(now, va, bytes)
        } else {
            self.node.ops.stores_remote += 1;
            let entry = self.node.annex.entry(aidx);
            let target = entry.pe as usize;
            assert!(
                target < self.sh.mems.len(),
                "store to nonexistent PE {target}"
            );
            let line_off = off & !self.line_mask();
            let page_cy = if target == self.pe {
                self.node.port.dram().peek(line_off)
            } else {
                self.rdram[target].peek(line_off)
            };
            let page_penalty = page_cy.saturating_sub(self.sh.cfg.mem.dram.page_hit_cy);
            let sink = RemoteSink {
                pe: entry.pe,
                remote_line_pa: line_off,
                base_cy: self.sh.cfg.shell.remote_write_base_cy + page_penalty,
                per_word_cy: self.sh.cfg.shell.remote_write_word_cy,
                ack_rtt_cy: self.sh.cfg.shell.write_ack_rtt_cy + self.rtt(target),
            };
            self.node
                .port
                .write_to(now, va, bytes, WriteTarget::Remote(sink))
        };
        self.hot.clock = now + cost;
        let kind_op = if aidx == 0 {
            OpKind::StLocal
        } else {
            OpKind::StRemote
        };
        self.node.perf.sample(kind_op, cost);
        self.flush_outbox();
    }

    fn memory_barrier(&mut self, pe: usize) {
        self.own(pe);
        self.node.ops.memory_barriers += 1;
        let now = self.hot.clock;
        let cost = if self.use_event_path() {
            crate::event::memory_barrier_event(self.hot, self.node)
        } else {
            let c = self.node.port.memory_barrier(now);
            self.hot.clock = now + c;
            c
        };
        self.node.perf.sample(OpKind::Fence, cost);
        let t = self.hot.clock;
        self.node.prefetch.note_memory_barrier(t);
        self.flush_outbox();
    }

    fn poll_status(&mut self, pe: usize) -> bool {
        self.own(pe);
        let now = self.hot.clock;
        let (clear, cost) = self.node.acks.poll(now);
        self.hot.clock = now + cost;
        self.node.perf.credit(CostClass::AckWait, cost);
        clear
    }

    fn wait_write_acks(&mut self, pe: usize) {
        self.own(pe);
        self.node.ops.ack_waits += 1;
        let now = self.hot.clock;
        let cost = if self.use_event_path() {
            crate::event::wait_write_acks_event(self.hot, self.node)
        } else {
            let c = self.node.acks.wait_clear(now);
            self.hot.clock = now + c;
            self.node.perf.credit(CostClass::AckWait, c);
            c
        };
        self.node.perf.sample(OpKind::AckWait, cost);
        let _ = now;
    }

    fn fetch(&mut self, pe: usize, va: u64) -> bool {
        self.own(pe);
        self.node.ops.fetches += 1;
        let (aidx, off) = self.split(va);
        let target = if aidx == 0 {
            pe
        } else {
            self.node.annex.entry(aidx).pe as usize
        };
        let now = self.hot.clock;
        let tlb = self.node.port.tlb_access(va);
        let mut buf = [0u8; 8];
        let dram;
        if target == self.pe {
            let clk = self.hot.clock;
            self.node.port.apply_due(clk);
            self.flush_outbox();
            dram = self.node.port.service_remote_read(off, &mut buf);
        } else {
            dram = self.rdram[target].access(off);
            self.sh.mems[target].read(off, &mut buf);
        }
        let ready = now + tlb + self.sh.cfg.shell.prefetch_net_cy / 2 + self.one_way(target);
        let lqueue = self.link_contend(target, ready, link_occupancy_cy(8));
        let queue = self.contend(target, ready + lqueue, dram + 5);
        if target != self.pe {
            self.push(
                ready,
                target,
                Some((ready + lqueue, dram + 5)),
                Some((ready, link_occupancy_cy(8))),
                Effect::DramTouch { off },
            );
        }
        let latency = self.sh.cfg.shell.prefetch_net_cy + self.rtt(target) + dram + queue + lqueue;
        match self
            .node
            .prefetch
            .issue(now + tlb, u64::from_le_bytes(buf), latency)
        {
            Some(c) => {
                self.hot.clock = now + tlb + c;
                self.node.perf.credit(CostClass::PrefetchIssue, c);
                self.node.perf.sample(OpKind::Fetch, tlb + c);
                true
            }
            None => {
                self.hot.clock = now + tlb;
                self.node.perf.sample(OpKind::Fetch, tlb);
                false
            }
        }
    }

    fn pop_prefetch(&mut self, pe: usize) -> Result<u64, PopError> {
        self.own(pe);
        self.node.ops.pops += 1;
        let now = self.hot.clock;
        let (value, cost) = if self.use_event_path() {
            crate::event::pop_prefetch_event(self.hot, self.node)?
        } else {
            let (v, c) = self.node.prefetch.pop(now)?;
            self.hot.clock = now + c;
            self.node.perf.credit(CostClass::PrefetchWait, c);
            (v, c)
        };
        self.node.perf.sample(OpKind::Pop, cost);
        Ok(value)
    }

    fn blt_start(
        &mut self,
        pe: usize,
        dir: BltDirection,
        local_off: u64,
        target_pe: usize,
        remote_off: u64,
        bytes: u64,
    ) -> BltHandle {
        self.own(pe);
        self.node.ops.blts += 1;
        let mut data = vec![0u8; bytes as usize];
        let now = self.hot.clock;
        let timing = self.node.blt.start(now, dir, bytes);
        // The DMA stream holds its route from the moment it starts
        // injecting (after the OS startup stall) until the last byte.
        let inject = now + timing.startup_cy;
        let occ = link_occupancy_cy(bytes);
        let lqueue = self.link_contend(target_pe, inject, occ);
        let completion = now + timing.total_cy() + lqueue;
        match dir {
            BltDirection::Read => {
                self.read_target_mem(target_pe, remote_off, &mut data);
                self.poke_own(local_off, &data);
                if self.sh.cfg.link_contention && target_pe != self.pe {
                    self.push(
                        inject,
                        target_pe,
                        None,
                        Some((inject, occ)),
                        Effect::LinkReserve,
                    );
                }
            }
            BltDirection::Write => {
                self.node.port.peek_mem(local_off, &mut data);
                if target_pe == self.pe {
                    self.poke_own(remote_off, &data);
                } else {
                    self.push(
                        completion,
                        target_pe,
                        None,
                        Some((inject, occ)),
                        Effect::Poke {
                            off: remote_off,
                            data,
                        },
                    );
                }
            }
        }
        self.hot.clock = now + timing.startup_cy;
        self.node
            .perf
            .credit(CostClass::BltStartup, timing.startup_cy);
        self.node.perf.sample(OpKind::BltStart, timing.startup_cy);
        BltHandle {
            completion,
            startup_cy: timing.startup_cy,
            stream_cy: timing.stream_cy,
        }
    }

    fn blt_start_strided(
        &mut self,
        pe: usize,
        dir: BltDirection,
        local_off: u64,
        target_pe: usize,
        remote_off: u64,
        count: u64,
        elem_bytes: u64,
        stride_bytes: u64,
    ) -> BltHandle {
        self.own(pe);
        self.node.ops.blts += 1;
        assert!(count > 0 && elem_bytes > 0, "strided BLT must move data");
        assert!(
            stride_bytes >= elem_bytes,
            "stride must not overlap elements"
        );
        let now = self.hot.clock;
        let mut elem = vec![0u8; elem_bytes as usize];
        let mut extra = 0u64;
        let mut deposits: Vec<(u64, Vec<u8>)> = Vec::new();
        for i in 0..count {
            let r_off = remote_off + i * stride_bytes;
            let l_off = local_off + i * elem_bytes;
            match dir {
                BltDirection::Read => {
                    self.read_target_mem(target_pe, r_off, &mut elem);
                    self.poke_own(l_off, &elem);
                }
                BltDirection::Write => {
                    self.node.port.peek_mem(l_off, &mut elem);
                    if target_pe == self.pe {
                        self.poke_own(r_off, &elem);
                    } else {
                        deposits.push((r_off, elem.clone()));
                    }
                }
            }
            let line = r_off & !self.line_mask();
            let dram = if target_pe == self.pe {
                self.node.port.dram_mut().access(line)
            } else {
                let d = self.rdram[target_pe].access(line);
                self.push(now, target_pe, None, None, Effect::DramTouch { off: line });
                d
            };
            extra += dram.saturating_sub(self.sh.cfg.mem.dram.page_hit_cy);
        }
        let timing = self.node.blt.start(now, dir, count * elem_bytes);
        let inject = now + timing.startup_cy;
        let occ = link_occupancy_cy(count * elem_bytes);
        let lqueue = self.link_contend(target_pe, inject, occ);
        let completion = now + timing.total_cy() + extra + lqueue;
        if self.sh.cfg.link_contention && target_pe != self.pe {
            self.push(
                inject,
                target_pe,
                None,
                Some((inject, occ)),
                Effect::LinkReserve,
            );
        }
        for (off, data) in deposits {
            self.push(
                completion,
                target_pe,
                None,
                None,
                Effect::Poke { off, data },
            );
        }
        self.hot.clock = now + timing.startup_cy;
        self.node
            .perf
            .credit(CostClass::BltStartup, timing.startup_cy);
        self.node.perf.sample(OpKind::BltStart, timing.startup_cy);
        BltHandle {
            completion,
            startup_cy: timing.startup_cy,
            stream_cy: timing.stream_cy + extra,
        }
    }

    fn blt_wait(&mut self, pe: usize, handle: BltHandle) {
        self.own(pe);
        let now = self.hot.clock;
        let waited = if self.use_event_path() {
            crate::event::blt_wait_event(self.hot, self.node, handle.completion)
        } else {
            self.hot.clock = self.hot.clock.max(handle.completion);
            let w = self.hot.clock - now;
            self.node.perf.credit(CostClass::BltWait, w);
            w
        };
        self.node.perf.sample(OpKind::BltWait, waited);
    }

    fn msg_send(&mut self, pe: usize, dst: usize, words: [u64; 4]) {
        self.own(pe);
        self.node.ops.msgs_sent += 1;
        self.hot.clock += self.sh.cfg.shell.msg_send_cy;
        let send_cy = self.sh.cfg.shell.msg_send_cy;
        self.node.perf.credit(CostClass::MsgSend, send_cy);
        self.node.perf.sample(OpKind::MsgSend, send_cy);
        let sent = self.hot.clock;
        let lqueue = self.link_contend(dst, sent, link_occupancy_cy(32));
        let arrival = sent + lqueue + self.one_way(dst);
        let msg = Message {
            from: pe as u32,
            words,
            arrival,
        };
        if dst == self.pe {
            self.node.msgq.deliver(msg);
        } else {
            self.push(
                arrival,
                dst,
                None,
                Some((sent, link_occupancy_cy(32))),
                Effect::Msg(msg),
            );
        }
    }

    fn msg_receive(&mut self, pe: usize) -> Option<Message> {
        self.own(pe);
        let now = self.hot.clock;
        self.node.ops.msgs_received += 1;
        let (msg, cost) = self.node.msgq.receive(now)?;
        self.hot.clock = now + cost;
        self.node.perf.credit(CostClass::MsgRecv, cost);
        self.node.perf.sample(OpKind::MsgRecv, cost);
        Some(msg)
    }

    fn fetch_inc(&mut self, pe: usize, target_pe: usize, reg: usize) -> u64 {
        self.own(pe);
        self.node.ops.atomics += 1;
        let now = self.hot.clock;
        let shell = self.sh.cfg.shell;
        let ready = now + shell.remote_read_shell_cy / 2 + self.one_way(target_pe);
        let lqueue = self.link_contend(target_pe, ready, link_occupancy_cy(8));
        let queue = self.contend(target_pe, ready + lqueue, 20);
        let cost =
            shell.remote_read_shell_cy + self.rtt(target_pe) + shell.amo_extra_cy + queue + lqueue;
        self.hot.clock += cost;
        let rtt = self.rtt(target_pe);
        let p = &mut self.node.perf;
        p.credit(CostClass::ShellLaunch, shell.remote_read_shell_cy);
        p.credit(CostClass::NetHop, rtt);
        p.credit(CostClass::Amo, shell.amo_extra_cy);
        p.credit(CostClass::Contention, queue + lqueue);
        p.sample(OpKind::FetchInc, cost);
        if target_pe == self.pe {
            self.node.fetchinc.fetch_inc(reg)
        } else {
            let value = self.sh.finc[target_pe].get(reg) + self.finc_bumps[target_pe][reg];
            self.finc_bumps[target_pe][reg] += 1;
            self.push(
                ready,
                target_pe,
                Some((ready + lqueue, 20)),
                Some((ready, link_occupancy_cy(8))),
                Effect::FetchInc { reg },
            );
            value
        }
    }

    fn swap_load(&mut self, pe: usize, value: u64) {
        self.own(pe);
        self.node.swap.load(value);
    }

    fn atomic_swap(&mut self, pe: usize, va: u64) -> u64 {
        self.own(pe);
        self.node.ops.atomics += 1;
        let (aidx, off) = self.split(va);
        let target = if aidx == 0 {
            pe
        } else {
            let entry = self.node.annex.entry(aidx);
            assert_eq!(
                entry.func,
                FuncCode::Swap,
                "annex entry must select the swap flavour"
            );
            entry.pe as usize
        };
        assert_eq!(
            target, self.pe,
            "atomic_swap on a remote PE is not supported inside a sharded phase \
             (swap-based locks serialize; take them through the direct engine)"
        );
        let clk = self.hot.clock;
        self.node.port.apply_due(clk);
        self.flush_outbox();
        let mut buf = [0u8; 8];
        let dram = self.node.port.service_remote_read(off, &mut buf);
        let old_mem = u64::from_le_bytes(buf);
        let to_mem = self.node.swap.exchange(old_mem);
        self.node
            .port
            .service_remote_write(off, &to_mem.to_le_bytes(), None);
        let now = self.hot.clock;
        let shell = self.sh.cfg.shell;
        let ready = now + shell.remote_read_shell_cy / 2 + self.one_way(target);
        let lqueue = self.link_contend(target, ready, link_occupancy_cy(8));
        let queue = self.contend(target, ready + lqueue, dram + 20);
        let cost = shell.remote_read_shell_cy
            + self.rtt(target)
            + shell.amo_extra_cy
            + dram
            + queue
            + lqueue;
        self.hot.clock += cost;
        let rtt = self.rtt(target);
        let p = &mut self.node.perf;
        p.credit(CostClass::ShellLaunch, shell.remote_read_shell_cy);
        p.credit(CostClass::NetHop, rtt);
        p.credit(CostClass::Amo, shell.amo_extra_cy);
        p.credit(CostClass::RemoteDram, dram);
        p.credit(CostClass::Contention, queue + lqueue);
        p.sample(OpKind::Swap, cost);
        old_mem
    }

    fn peek_mem(&self, pe: usize, off: u64, buf: &mut [u8]) {
        self.read_target_mem(pe, off, buf);
    }

    fn poke_mem(&mut self, pe: usize, off: u64, bytes: &[u8]) {
        assert_eq!(
            pe, self.pe,
            "poke_mem on a remote PE is not supported inside a sharded phase \
             (it could not invalidate the target's cache deterministically)"
        );
        self.poke_own(off, bytes);
    }

    fn op_stats(&self, pe: usize) -> OpStats {
        self.own(pe);
        self.node.ops
    }

    fn arrival_time_of(&self, pe: usize, target_bytes: u64) -> Option<u64> {
        self.own(pe);
        self.node.arrival_time_of(target_bytes)
    }

    fn clear_incoming(&mut self, pe: usize) {
        self.own(pe);
        self.node.incoming.clear();
    }

    fn as_machine(&mut self) -> Option<&mut Machine> {
        None
    }
}

fn run_shard<T>(
    pe: usize,
    node: &mut Node,
    hot: &mut NodeHot,
    sh: &PhaseShared,
    state: &mut T,
    f: &(impl Fn(&mut dyn MachineOps, usize, &mut T) + Sync),
) -> Vec<TimedEffect> {
    let mut shard = PhasePe::new(pe, node, hot, sh);
    f(&mut shard, pe, state);
    shard.into_effects()
}

/// Reorders `items` in place so position `i` holds the element that was
/// at `order[i]` (cycle-walking swaps, no scratch buffer of `T`).
fn permute_in_place<T>(items: &mut [T], order: &[usize]) {
    debug_assert_eq!(items.len(), order.len());
    let mut visited = vec![false; order.len()];
    for start in 0..order.len() {
        if visited[start] {
            continue;
        }
        let mut i = start;
        loop {
            visited[i] = true;
            let next = order[i];
            if next == start {
                break;
            }
            items.swap(i, next);
            i = next;
        }
    }
}

fn run_parallel<T: Send>(
    nodes: &mut [Node],
    hot: &mut [NodeHot],
    states: &mut [T],
    sh: &PhaseShared,
    threads: usize,
    f: &(impl Fn(&mut dyn MachineOps, usize, &mut T) + Sync),
) -> Vec<TimedEffect> {
    // Partition the torus into canonical sub-cubes — the same shapes the
    // gang scheduler allocates — and give each worker one sub-cube. A
    // worker's PEs are topological neighbours, so the snapshot lines its
    // shards touch stay hot within one worker instead of striding the
    // whole machine. The node/hot/state arrays are permuted into
    // sub-cube order for the duration of the phase (merge keys carry
    // real PE ids, so the permutation cannot affect results).
    let blocks = subcube::partition(sh.torus.config().dims, threads);
    let order: Vec<usize> = blocks
        .iter()
        .flat_map(|b| b.coords().into_iter().map(|c| sh.torus.node_of(c) as usize))
        .collect();
    debug_assert_eq!(order.len(), nodes.len());
    permute_in_place(nodes, &order);
    permute_in_place(hot, &order);
    permute_in_place(states, &order);
    let mut results: Vec<Vec<TimedEffect>> = Vec::with_capacity(blocks.len());
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        let mut node_rest = &mut *nodes;
        let mut hot_rest = &mut *hot;
        let mut state_rest = &mut *states;
        let mut base = 0usize;
        for b in &blocks {
            let take = b.pes() as usize;
            let (nchunk, nrest) = node_rest.split_at_mut(take);
            let (hchunk, hrest) = hot_rest.split_at_mut(take);
            let (schunk, srest) = state_rest.split_at_mut(take);
            node_rest = nrest;
            hot_rest = hrest;
            state_rest = srest;
            let pes = &order[base..base + take];
            base += take;
            handles.push(s.spawn(move || {
                let mut out = Vec::new();
                for (((node, hot), state), &pe) in nchunk
                    .iter_mut()
                    .zip(hchunk.iter_mut())
                    .zip(schunk.iter_mut())
                    .zip(pes.iter())
                {
                    out.append(&mut run_shard(pe, node, hot, sh, state, f));
                }
                out
            }));
        }
        for h in handles {
            match h.join() {
                Ok(v) => results.push(v),
                Err(e) => std::panic::resume_unwind(e),
            }
        }
    });
    let mut inv = vec![0usize; order.len()];
    for (i, &o) in order.iter().enumerate() {
        inv[o] = i;
    }
    permute_in_place(nodes, &inv);
    permute_in_place(hot, &inv);
    permute_in_place(states, &inv);
    results.into_iter().flatten().collect()
}

impl Machine {
    /// Runs one sharded SPMD phase: the closure runs once per PE against
    /// a [`Cpu`] bound to that PE's shard, sequentially or on threads
    /// per `driver` — the results are bit-identical either way.
    ///
    /// See the [module docs](self) for the execution model and the
    /// bulk-synchronous contract phase closures must follow.
    pub fn sharded_phase(&mut self, driver: PhaseDriver, f: impl Fn(&mut Cpu) + Sync) {
        let mut unit = vec![(); self.nodes()];
        self.sharded_phase_zip(driver, &mut unit, |ops, pe, ()| {
            let mut cpu = Cpu::new(ops, pe);
            f(&mut cpu);
        });
    }

    /// Runs one sharded SPMD phase with per-PE state: `states[pe]` is
    /// handed to the closure alongside PE `pe`'s shard. This is the
    /// building block runtimes (Split-C) use to carry their own per-node
    /// structures through a parallel phase.
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from the number of PEs.
    pub fn sharded_phase_zip<T: Send>(
        &mut self,
        driver: PhaseDriver,
        states: &mut [T],
        f: impl Fn(&mut dyn MachineOps, usize, &mut T) + Sync,
    ) {
        let n = self.nodes();
        assert_eq!(
            states.len(),
            n,
            "need exactly one state per PE ({} for {n} PEs)",
            states.len()
        );
        self.normalize_for_phase();
        let mut effects = {
            let (cfg, torus, nodes, hot, links) = self.phase_parts();
            let sh = PhaseShared::capture(cfg, torus, nodes, hot, links);
            let threads = driver.threads_for(n);
            if threads <= 1 {
                let mut all = Vec::new();
                for (pe, ((node, hot), state)) in nodes
                    .iter_mut()
                    .zip(hot.iter_mut())
                    .zip(states.iter_mut())
                    .enumerate()
                {
                    all.append(&mut run_shard(pe, node, hot, &sh, state, &f));
                }
                all
            } else {
                run_parallel(nodes, hot, states, &sh, threads, &f)
            }
        };
        effects.sort_by_key(|e| (e.time, e.src, e.seq));
        self.apply_effects(effects);
        self.resync_inflight_all();
    }

    /// Applies merged shard effects to the real nodes, in the already
    /// deterministic order. Consecutive records for the same target are
    /// applied as one run against a single node borrow, so a burst of
    /// effects landing on one PE (the common shape after the
    /// `(time, src, seq)` sort) resolves the node once per run instead
    /// of once per record.
    fn apply_effects(&mut self, effects: Vec<TimedEffect>) {
        let contention = self.config().contention;
        let link_contention = self.config().link_contention;
        let line = self.config().mem.l1.line as u64;
        let mut it = effects.into_iter().peekable();
        while let Some(first) = it.next() {
            let t = first.target as usize;
            let mut run = vec![first];
            while let Some(e) = it.next_if(|e| e.target as usize == t) {
                run.push(e);
            }
            if link_contention {
                for e in &run {
                    if let Some((ready, occ)) = e.link {
                        self.replay_link(e.src as usize, t, ready, occ);
                    }
                }
            }
            let (node, hot) = self.node_and_hot_mut(t);
            for e in run {
                apply_effect(node, hot, e, line, contention);
            }
        }
    }
}

/// Applies one merged shard effect to its target node.
fn apply_effect(node: &mut Node, hot: &mut NodeHot, e: TimedEffect, line: u64, contention: bool) {
    match e.eff {
        Effect::Write {
            off,
            data,
            mask,
            arrival,
        } => {
            let _ = node.port.service_remote_write(off, &data, mask);
            if let Some((at, bytes)) = arrival {
                node.incoming.push((at, bytes));
            }
        }
        Effect::Poke { off, data } => {
            node.port.poke_mem(off, &data);
            let mut a = off & !(line - 1);
            while a < off + data.len() as u64 {
                node.port.l1_mut().invalidate(a);
                a += line;
            }
        }
        Effect::DramTouch { off } => {
            let _ = node.port.dram_mut().access(off);
        }
        Effect::Msg(msg) => node.msgq.deliver(msg),
        Effect::FetchInc { reg } => {
            let _ = node.fetchinc.fetch_inc(reg);
        }
        Effect::LinkReserve => {}
    }
    if contention {
        if let Some((ready, occ)) = e.busy {
            let start = ready.max(hot.shell_busy_until);
            hot.shell_busy_until = start + occ;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn fingerprint(m: &Machine) -> Vec<u64> {
        let mut fp = Vec::new();
        for pe in 0..m.nodes() {
            fp.push(m.clock(pe));
            let mut buf = vec![0u8; 4096];
            m.peek_mem(pe, 0, &mut buf);
            fp.push(buf.iter().fold(0u64, |h, &b| {
                h.wrapping_mul(1099511628211).wrapping_add(b as u64)
            }));
        }
        fp
    }

    /// A communication-heavy phase body: every PE stores a word to its
    /// right neighbour, fences, and reads a word from its left.
    fn exchange(cpu: &mut Cpu) {
        let pe = cpu.pe();
        let n = cpu.nodes();
        let right = ((pe + 1) % n) as u32;
        cpu.annex_set(1, right, t3d_shell::FuncCode::Uncached);
        let va = cpu.va(1, 0x1000);
        cpu.st8(va, (pe as u64) << 8);
        cpu.memory_barrier();
        cpu.wait_write_acks();
        cpu.annex_set(1, right, t3d_shell::FuncCode::Uncached);
        let _ = cpu.ld8(cpu.va(1, 0x2000));
    }

    #[test]
    fn seq_and_par_shards_are_bit_identical() {
        let run = |driver: PhaseDriver| {
            let mut m = Machine::new(MachineConfig::t3d(8));
            for _ in 0..3 {
                m.sharded_phase(driver, exchange);
                m.barrier_all();
            }
            fingerprint(&m)
        };
        let seq = run(PhaseDriver::Seq);
        for threads in [2, 3, 8] {
            assert_eq!(
                seq,
                run(PhaseDriver::Par(threads)),
                "parallel shards with {threads} threads diverged from the oracle"
            );
        }
    }

    #[test]
    fn link_contended_shards_stay_bit_identical() {
        // Link-contention timing rides the same effect-merge machinery:
        // queueing is computed against the phase-start link snapshot in
        // each shard and replayed at merge, so Seq remains a bit-exact
        // oracle for Par at any thread count.
        let run = |driver: PhaseDriver| {
            let mut cfg = MachineConfig::t3d(8);
            cfg.link_contention = true;
            let mut m = Machine::new(cfg);
            for _ in 0..2 {
                m.sharded_phase(driver, exchange);
                m.barrier_all();
            }
            fingerprint(&m)
        };
        let seq = run(PhaseDriver::Seq);
        for threads in [2, 3, 8] {
            assert_eq!(
                seq,
                run(PhaseDriver::Par(threads)),
                "link-contended shards with {threads} threads diverged"
            );
        }
    }

    #[test]
    fn sharded_writes_land_after_merge() {
        let mut m = Machine::new(MachineConfig::t3d(4));
        m.sharded_phase(PhaseDriver::Par(4), |cpu| {
            let right = ((cpu.pe() + 1) % cpu.nodes()) as u32;
            cpu.annex_set(1, right, t3d_shell::FuncCode::Uncached);
            let va = cpu.va(1, 0x500);
            cpu.st8(va, 7000 + cpu.pe() as u64);
            cpu.memory_barrier();
            cpu.wait_write_acks();
        });
        for pe in 0..4usize {
            let left = (pe + 3) % 4;
            assert_eq!(m.peek8(pe, 0x500), 7000 + left as u64);
        }
    }

    #[test]
    fn sharded_messages_and_fetch_inc_merge() {
        let mut m = Machine::new(MachineConfig::t3d(4));
        m.sharded_phase(PhaseDriver::Par(2), |cpu| {
            let pe = cpu.pe();
            if pe != 0 {
                // Everyone takes a ticket at PE 0 and messages it.
                let _ = cpu.fetch_inc(0, 0);
                cpu.msg_send(0, [pe as u64, 0, 0, 0]);
            }
        });
        assert_eq!(m.node(0).fetchinc.get(0), 3, "three merged increments");
        m.advance(0, 1_000_000);
        let mut froms = Vec::new();
        while let Some(msg) = m.msg_receive(0) {
            froms.push(msg.from);
        }
        froms.sort_unstable();
        assert_eq!(froms, vec![1, 2, 3]);
    }

    #[test]
    fn sharded_phase_matches_on_fetch_and_blt() {
        let body = |cpu: &mut Cpu| {
            let pe = cpu.pe();
            let n = cpu.nodes();
            let right = ((pe + 1) % n) as u32;
            cpu.annex_set(1, right, t3d_shell::FuncCode::Uncached);
            for i in 0..4u64 {
                cpu.fetch(cpu.va(1, 0x3000 + i * 8));
            }
            cpu.memory_barrier();
            for _ in 0..4 {
                let _ = cpu.pop_prefetch();
            }
            let h = cpu.blt_start(
                t3d_shell::blt::BltDirection::Write,
                0x4000,
                right as usize,
                0x5000,
                256,
            );
            cpu.blt_wait(h);
        };
        let run = |driver: PhaseDriver| {
            let mut m = Machine::new(MachineConfig::t3d(4));
            for pe in 0..4 {
                for i in 0..32u64 {
                    m.poke8(pe, 0x4000 + i * 8, (pe as u64) * 1000 + i);
                }
            }
            m.sharded_phase(driver, body);
            m.barrier_all();
            fingerprint(&m)
        };
        assert_eq!(run(PhaseDriver::Seq), run(PhaseDriver::Par(4)));
    }

    #[test]
    #[should_panic(expected = "may only drive its own PE")]
    fn shard_rejects_foreign_pe() {
        let mut m = Machine::new(MachineConfig::t3d(2));
        m.sharded_phase(PhaseDriver::Seq, |cpu| {
            if cpu.pe() == 0 {
                let _ = cpu.ops().clock(1);
            }
        });
    }

    #[test]
    fn driver_from_env_parses() {
        // No env mutation (tests run threaded): just exercise the
        // constructors and clamping.
        assert_eq!(PhaseDriver::Seq.threads_for(8), 1);
        assert_eq!(PhaseDriver::Par(0).threads_for(8), 1);
        assert_eq!(PhaseDriver::Par(64).threads_for(8), 8);
        assert_eq!(PhaseDriver::Par(3).threads_for(8), 3);
    }
}
