//! A processor-eye view of the machine: the handle micro-benchmark
//! probes are written against.

use crate::machine::{BltHandle, Machine};
use crate::ops::MachineOps;
use t3d_shell::blt::BltDirection;
use t3d_shell::{AnnexEntry, FuncCode, Message, PopError};

/// Exclusive access to the machine from the point of view of one node.
///
/// Probes written against `Cpu` read like the paper's assembly probes:
/// loads, stores, `fetch` hints, memory barriers, annex updates.
///
/// A `Cpu` borrows any [`MachineOps`] backend — the whole [`Machine`]
/// (direct engine) or one shard of a sharded phase — so the same probe
/// code runs under both.
///
/// # Example
///
/// ```
/// use t3d_machine::{Cpu, Machine, MachineConfig};
///
/// let mut m = Machine::new(MachineConfig::t3d(2));
/// let mut cpu = Cpu::new(&mut m, 0);
/// cpu.st8(0x100, 7);
/// assert_eq!(cpu.ld8(0x100), 7);
/// ```
pub struct Cpu<'m> {
    m: &'m mut dyn MachineOps,
    pe: usize,
}

impl<'m> Cpu<'m> {
    /// Binds a CPU handle to node `pe`.
    ///
    /// # Panics
    ///
    /// Panics if `pe` does not exist.
    pub fn new(m: &'m mut dyn MachineOps, pe: usize) -> Self {
        assert!(pe < m.nodes(), "PE {pe} out of range");
        Cpu { m, pe }
    }

    /// This node's id.
    pub fn pe(&self) -> usize {
        self.pe
    }

    /// Number of nodes in the machine.
    pub fn nodes(&self) -> usize {
        self.m.nodes()
    }

    /// The underlying machine.
    ///
    /// # Panics
    ///
    /// Panics inside a sharded phase, where whole-machine access would
    /// break shard isolation; use the per-op methods instead.
    pub fn machine(&mut self) -> &mut Machine {
        self.m
            .as_machine()
            .expect("whole-machine access is not available inside a sharded phase")
    }

    /// The operation backend this CPU is bound to.
    pub fn ops(&mut self) -> &mut dyn MachineOps {
        self.m
    }

    /// This node's virtual time in cycles.
    pub fn clock(&self) -> u64 {
        self.m.clock(self.pe)
    }

    /// This node's virtual time in nanoseconds.
    pub fn clock_ns(&self) -> f64 {
        self.m.clock(self.pe) as f64 * self.m.cycle_ns()
    }

    /// Charges computation cycles.
    pub fn advance(&mut self, cycles: u64) {
        self.m.advance(self.pe, cycles);
    }

    /// Builds a virtual address from an annex index and offset.
    pub fn va(&self, annex_idx: usize, offset: u64) -> u64 {
        self.m.va(annex_idx, offset)
    }

    /// Updates an annex register (23 cycles).
    pub fn annex_set(&mut self, idx: usize, pe: u32, func: FuncCode) {
        self.m.annex_set(self.pe, idx, AnnexEntry { pe, func });
    }

    /// Loads a 64-bit word.
    pub fn ld8(&mut self, va: u64) -> u64 {
        self.m.ld8(self.pe, va)
    }

    /// Loads bytes.
    pub fn ld(&mut self, va: u64, buf: &mut [u8]) {
        self.m.ld(self.pe, va, buf);
    }

    /// Stores a 64-bit word (non-blocking).
    pub fn st8(&mut self, va: u64, value: u64) {
        self.m.st8(self.pe, va, value);
    }

    /// Stores bytes (non-blocking, within one cache line).
    pub fn st(&mut self, va: u64, bytes: &[u8]) {
        self.m.st(self.pe, va, bytes);
    }

    /// Memory barrier.
    pub fn memory_barrier(&mut self) {
        self.m.memory_barrier(self.pe);
    }

    /// Polls the remote-write status bit once.
    pub fn poll_status(&mut self) -> bool {
        self.m.poll_status(self.pe)
    }

    /// Waits for all remote writes that left the processor to be
    /// acknowledged.
    pub fn wait_write_acks(&mut self) {
        self.m.wait_write_acks(self.pe);
    }

    /// Issues a binding prefetch; `false` if the queue is full.
    pub fn fetch(&mut self, va: u64) -> bool {
        self.m.fetch(self.pe, va)
    }

    /// Pops the prefetch queue.
    ///
    /// # Errors
    ///
    /// See [`Machine::pop_prefetch`].
    pub fn pop_prefetch(&mut self) -> Result<u64, PopError> {
        self.m.pop_prefetch(self.pe)
    }

    /// Starts a BLT transfer.
    pub fn blt_start(
        &mut self,
        dir: BltDirection,
        local_off: u64,
        target_pe: usize,
        remote_off: u64,
        bytes: u64,
    ) -> BltHandle {
        self.m
            .blt_start(self.pe, dir, local_off, target_pe, remote_off, bytes)
    }

    /// Starts a strided BLT transfer.
    #[allow(clippy::too_many_arguments)]
    pub fn blt_start_strided(
        &mut self,
        dir: BltDirection,
        local_off: u64,
        target_pe: usize,
        remote_off: u64,
        count: u64,
        elem_bytes: u64,
        stride_bytes: u64,
    ) -> BltHandle {
        self.m.blt_start_strided(
            self.pe,
            dir,
            local_off,
            target_pe,
            remote_off,
            count,
            elem_bytes,
            stride_bytes,
        )
    }

    /// Waits for a BLT transfer to complete.
    pub fn blt_wait(&mut self, handle: BltHandle) {
        self.m.blt_wait(self.pe, handle);
    }

    /// Sends a four-word message.
    pub fn msg_send(&mut self, dst: usize, words: [u64; 4]) {
        self.m.msg_send(self.pe, dst, words);
    }

    /// Receives a message, if one has arrived.
    pub fn msg_receive(&mut self) -> Option<Message> {
        self.m.msg_receive(self.pe)
    }

    /// Remote fetch&increment.
    pub fn fetch_inc(&mut self, target_pe: usize, reg: usize) -> u64 {
        self.m.fetch_inc(self.pe, target_pe, reg)
    }

    /// Loads the swap operand register.
    pub fn swap_load(&mut self, value: u64) {
        self.m.swap_load(self.pe, value);
    }

    /// Atomic exchange of the swap register with the word at `va`.
    pub fn atomic_swap(&mut self, va: u64) -> u64 {
        self.m.atomic_swap(self.pe, va)
    }

    /// Functional memory read (no timing).
    pub fn peek8(&self, off: u64) -> u64 {
        self.m.peek8(self.pe, off)
    }

    /// Functional memory write (no timing).
    pub fn poke8(&mut self, off: u64, v: u64) {
        self.m.poke8(self.pe, off, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    #[test]
    fn cpu_forwards_to_machine() {
        let mut m = Machine::new(MachineConfig::t3d(2));
        let mut cpu = Cpu::new(&mut m, 1);
        cpu.st8(0x40, 5);
        cpu.memory_barrier();
        assert_eq!(cpu.ld8(0x40), 5);
        assert!(cpu.clock() > 0);
        assert_eq!(cpu.pe(), 1);
        assert_eq!(cpu.nodes(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_pe_panics() {
        let mut m = Machine::new(MachineConfig::t3d(2));
        let _ = Cpu::new(&mut m, 5);
    }
}
