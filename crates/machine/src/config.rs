//! Whole-machine configuration.

use crate::event::EngineMode;
use t3d_memsys::MemConfig;
use t3d_shell::{ReceiveMode, ShellConfig};
use t3d_torus::TorusConfig;

/// Configuration of a simulated machine: node memory system, shell and
/// interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Per-node memory system.
    pub mem: MemConfig,
    /// Shell cost parameters.
    pub shell: ShellConfig,
    /// Torus geometry.
    pub torus: TorusConfig,
    /// Model contention for the target node's shell: concurrent remote
    /// operations against one node serialize through its memory
    /// controller. Off by default — the paper's probes run with a single
    /// active processor — but hot-spot application patterns need it.
    pub contention: bool,
    /// Model queueing on torus links: each remote operation occupies the
    /// links of its dimension-order route for `bytes / 2` cycles (the
    /// T3D's two bytes per link per cycle), and a transfer whose route
    /// crosses a still-occupied link waits for the hottest one to clear.
    /// Off by default, and bit-identical to the uncontended machine when
    /// off.
    pub link_contention: bool,
    /// What happens when a native message arrives: queue it (25 µs
    /// interrupt) or additionally switch to a user handler (+33 µs).
    pub msg_mode: ReceiveMode,
    /// Which time-advance engine the machine runs. Constructors read
    /// `T3D_EVENT` (the event engine unless `T3D_EVENT=0`); tests set
    /// the field directly to pin a mode regardless of the environment.
    pub engine: EngineMode,
}

impl MachineConfig {
    /// A T3D of `nodes` processing elements with 16 MB nodes.
    pub fn t3d(nodes: u32) -> Self {
        MachineConfig {
            mem: MemConfig::t3d(),
            shell: ShellConfig::t3d(),
            torus: TorusConfig::for_nodes(nodes),
            contention: false,
            link_contention: false,
            msg_mode: ReceiveMode::Queue,
            engine: EngineMode::from_env(),
        }
    }

    /// A T3D with smaller (`mem_bytes`) node memories — useful for
    /// many-node application runs.
    pub fn t3d_with_mem(nodes: u32, mem_bytes: usize) -> Self {
        let mut cfg = Self::t3d(nodes);
        cfg.mem.mem_bytes = mem_bytes;
        cfg
    }

    /// A T3D with target-shell contention modeling enabled.
    pub fn t3d_contended(nodes: u32) -> Self {
        let mut cfg = Self::t3d(nodes);
        cfg.contention = true;
        cfg
    }

    /// A T3D with both target-shell and torus-link contention modeling
    /// enabled.
    pub fn t3d_link_contended(nodes: u32) -> Self {
        let mut cfg = Self::t3d_contended(nodes);
        cfg.link_contention = true;
        cfg
    }

    /// The single-node DEC Alpha workstation used as the Figure 1
    /// comparison machine (same 21064 core, 512 KB L2, 8 KB pages,
    /// 300 ns memory). Only local operations are meaningful.
    pub fn dec_workstation() -> Self {
        MachineConfig {
            mem: MemConfig::dec_workstation(),
            shell: ShellConfig::t3d(),
            torus: TorusConfig::for_nodes(1),
            contention: false,
            link_contention: false,
            msg_mode: ReceiveMode::Queue,
            engine: EngineMode::from_env(),
        }
    }

    /// Number of nodes this configuration describes.
    pub fn nodes(&self) -> u32 {
        self.torus.dims.0 * self.torus.dims.1 * self.torus.dims.2
    }

    /// Nanoseconds per cycle.
    pub fn cycle_ns(&self) -> f64 {
        self.mem.cycle_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t3d_sizes() {
        assert_eq!(MachineConfig::t3d(32).nodes(), 32);
        assert_eq!(MachineConfig::t3d(1).nodes(), 1);
    }

    #[test]
    fn workstation_is_single_node_with_l2() {
        let c = MachineConfig::dec_workstation();
        assert_eq!(c.nodes(), 1);
        assert!(c.mem.l2.is_some());
    }

    #[test]
    fn with_mem_overrides_size() {
        let c = MachineConfig::t3d_with_mem(8, 1 << 20);
        assert_eq!(c.mem.mem_bytes, 1 << 20);
    }
}
