//! Event-driven time advance: the skip-to-next-event engine core.
//!
//! The paper's dominant cost classes on communication-heavy kernels are
//! the quiescent ones — barrier waits, write-ack drains, prefetch
//! stalls. This module makes the event structure of those waits
//! explicit: every completion a PE can block on (write-buffer retires,
//! ack arrivals, prefetch arrivals, BLT completions, barrier
//! settlements) becomes a typed [`Event`] with a due-time in a per-node
//! [`EventQueue`], and each wait class fast-forwards the PE's clock
//! event by event in O(pending events) instead of conceptually spinning
//! through the interval.
//!
//! **Bit-identity contract.** For every wait class the event path must
//! reproduce the cycle-accurate path exactly: same final clock, same
//! retired-write completions (hence same remote-store arrival and ack
//! times), same attribution totals in the merged per-PE ledger, same
//! latency-histogram samples. The helpers below achieve this by
//! construction — they fast-forward to each pending completion's
//! integer due-time (`⌈c⌉ − now == ⌈c − now⌉` for integer `now`) and
//! then let the *existing* unit method run at the fast-forwarded time,
//! where its wait term is zero and only its fixed issue/poll/pop cost
//! remains. The differential suites (`tests/event_core.rs`, the
//! fuzzer's `--engine-matrix` mode) enforce the contract end to end.
//!
//! **Contention rule.** Shell-queueing contention couples PEs through
//! shared node state, so windows where ≥2 PEs have in-flight remote
//! traffic stay on the cycle-accurate path (see
//! `Machine::use_event_path`). With contention off — the default, as in
//! the paper's uncongested measurements — every wait is closed over the
//! local node's pending events and the fast-forward is exact.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::OnceLock;

/// Which time-advance engine a machine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// The original path: every wait computes its cost in one closed
    /// form and advances the clock once.
    Cycle,
    /// The skip-to-next-event path: waits schedule typed events and
    /// fast-forward the clock due-time by due-time.
    Event,
}

impl EngineMode {
    /// Reads `T3D_EVENT` once per process: `0` selects the
    /// cycle-accurate engine, anything else (including unset) the event
    /// engine — the event core is the default now that the differential
    /// suite proves it bit-identical.
    pub fn from_env() -> EngineMode {
        static MODE: OnceLock<EngineMode> = OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("T3D_EVENT") {
            Ok(v) if v.trim() == "0" => EngineMode::Cycle,
            _ => EngineMode::Event,
        })
    }
}

/// What a scheduled completion is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A write-buffer entry finishes retiring.
    WbufRetire,
    /// A remote-write acknowledgement arrives at the status bit.
    AckArrival,
    /// The oldest binding prefetch's data arrives in the queue.
    PrefetchArrival,
    /// An outstanding BLT stream completes.
    BltComplete,
    /// The global barrier (or fuzzy-barrier end) settles for this PE.
    BarrierSettle,
}

/// A typed completion with a due-time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Virtual time at which the completion happens.
    pub due: u64,
    /// What completes.
    pub kind: EventKind,
    /// Tie-break: insertion order among equal due-times.
    seq: u64,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Counters of event-engine activity. Deliberately *not* part of the
/// perf registry or report: reports are compared bit-for-bit across
/// engine modes, and these counters are the one thing that legitimately
/// differs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventStats {
    /// Events consumed by fast-forwarding waits.
    pub events_fast_forwarded: u64,
    /// Cycles the clock skipped over in those waits.
    pub cycles_fast_forwarded: u64,
}

/// One node's pending-completion queue, ordered by `(due, seq)`.
///
/// The queue is empty between operations by construction: each wait
/// helper harvests the relevant unit's pending completions into events
/// and then drains them fully, so no stale event survives an op.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    /// Engine-activity counters (never compared across modes).
    pub stats: EventStats,
    /// Fault-injection hook: extra cycles added to the due-time of the
    /// next event popped. Set by `Machine::perturb_next_event`; the
    /// differential harness must catch the resulting divergence.
    pending_skew: Option<u64>,
}

impl EventQueue {
    /// Schedules a completion of `kind` at `due`.
    pub fn push(&mut self, due: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event { due, kind, seq }));
    }

    /// Pops the earliest pending event, applying (and consuming) any
    /// pending due-time skew.
    pub fn pop(&mut self) -> Option<Event> {
        let Reverse(mut ev) = self.heap.pop()?;
        if let Some(extra) = self.pending_skew.take() {
            ev.due += extra;
        }
        Some(ev)
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Arms the fault-injection hook: the next popped event's due-time
    /// is pushed `extra_cy` cycles late.
    pub fn skew_next(&mut self, extra_cy: u64) {
        self.pending_skew = Some(extra_cy);
    }

    /// Drops any scheduled events and skew (counters are kept; they are
    /// cumulative instrumentation, not timing state).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending_skew = None;
    }
}

use crate::node::{Node, NodeHot};
use t3d_perf::CostClass;
use t3d_shell::PopError;

/// Fast-forwards `hot.clock` through every scheduled event, crediting
/// each skipped span to `class` in the node ledger. `WbufRetire` events
/// additionally retire due write-buffer entries at exactly their
/// due-times, so retired completions (and therefore remote-store
/// arrival/ack times) match the cycle path's. Returns the cycles
/// skipped.
fn drain_events(hot: &mut NodeHot, node: &mut Node, class: CostClass) -> u64 {
    let start = hot.clock;
    while let Some(ev) = node.events.pop() {
        if ev.due > hot.clock {
            let skipped = ev.due - hot.clock;
            hot.clock = ev.due;
            node.perf.credit(class, skipped);
            node.events.stats.cycles_fast_forwarded += skipped;
        }
        node.events.stats.events_fast_forwarded += 1;
        if ev.kind == EventKind::WbufRetire {
            node.port.apply_due(hot.clock);
        }
    }
    hot.clock - start
}

/// Event-path memory barrier: one `WbufRetire` event per pending entry,
/// fast-forward through them, then issue the barrier on the (now empty)
/// buffer. Returns the total cost; bit-identical to
/// `MemPort::memory_barrier` at the original clock because the FIFO
/// due-times are nondecreasing and `⌈c⌉ − now == ⌈c − now⌉` for integer
/// `now`. The skipped span lands in the node ledger and the issue cost
/// in the port ledger — both under `WbufDrain`, so the merged per-PE
/// ledger matches the cycle path's.
pub(crate) fn memory_barrier_event(hot: &mut NodeHot, node: &mut Node) -> u64 {
    debug_assert!(node.events.is_empty(), "no stale events between ops");
    let start = hot.clock;
    let dues: Vec<u64> = node.port.wbuf_due_times().collect();
    for due in dues {
        node.events.push(due, EventKind::WbufRetire);
    }
    drain_events(hot, node, CostClass::WbufDrain);
    let issue = node.port.memory_barrier(hot.clock);
    hot.clock += issue;
    hot.clock - start
}

/// Event-path write-acknowledgement wait: one `AckArrival` event per
/// outstanding ack, fast-forward to the last of them, then one final
/// status poll. Total cost equals `AckTracker::wait_clear` at the
/// original clock; every cycle is credited to `AckWait`.
pub(crate) fn wait_write_acks_event(hot: &mut NodeHot, node: &mut Node) -> u64 {
    debug_assert!(node.events.is_empty(), "no stale events between ops");
    let start = hot.clock;
    let times: Vec<u64> = node.acks.pending_times().to_vec();
    for t in times {
        node.events.push(t, EventKind::AckArrival);
    }
    drain_events(hot, node, CostClass::AckWait);
    let poll = node.acks.wait_clear(hot.clock);
    hot.clock += poll;
    node.perf.credit(CostClass::AckWait, poll);
    hot.clock - start
}

/// Event-path prefetch pop: fast-forward to the head's arrival, then
/// pop at zero wait. Total cost equals `PrefetchUnit::pop` at the
/// original clock; every cycle is credited to `PrefetchWait`.
///
/// # Errors
///
/// The same conditions as `PrefetchUnit::pop`, checked *before* any
/// clock motion.
pub(crate) fn pop_prefetch_event(
    hot: &mut NodeHot,
    node: &mut Node,
) -> Result<(u64, u64), PopError> {
    debug_assert!(node.events.is_empty(), "no stale events between ops");
    let start = hot.clock;
    let arrival = node.prefetch.head_arrival()?;
    if arrival > hot.clock {
        node.events.push(arrival, EventKind::PrefetchArrival);
        drain_events(hot, node, CostClass::PrefetchWait);
    }
    let (value, cost) = node
        .prefetch
        .pop(hot.clock)
        .expect("head checked by head_arrival");
    hot.clock += cost;
    node.perf.credit(CostClass::PrefetchWait, cost);
    Ok((value, hot.clock - start))
}

/// Event-path BLT wait: fast-forward to the stream's completion (the
/// cycle path's `clock.max(completion)`), crediting the wait to
/// `BltWait`. Returns the cycles waited.
pub(crate) fn blt_wait_event(hot: &mut NodeHot, node: &mut Node, completion: u64) -> u64 {
    debug_assert!(node.events.is_empty(), "no stale events between ops");
    let start = hot.clock;
    if completion > hot.clock {
        node.events.push(completion, EventKind::BltComplete);
        drain_events(hot, node, CostClass::BltWait);
    }
    hot.clock - start
}

/// Event-path barrier settlement: schedules and consumes one
/// `BarrierSettle` event at `done` and returns the aligned time
/// `clock.max(due)`. The caller owns the clock update and the
/// `BarrierOverhead`/`BarrierWait` credits, which stay identical to the
/// cycle path's. This is also the guaranteed consumption point for a
/// pending due-time skew: every barrier pops one settle event per PE,
/// so an armed `perturb_next_event` always fires by the next barrier.
pub(crate) fn barrier_settle_event(hot: &NodeHot, node: &mut Node, done: u64) -> u64 {
    debug_assert!(node.events.is_empty(), "no stale events between ops");
    node.events.push(done, EventKind::BarrierSettle);
    let ev = node.events.pop().expect("just pushed");
    let aligned = hot.clock.max(ev.due);
    node.events.stats.events_fast_forwarded += 1;
    node.events.stats.cycles_fast_forwarded += aligned - hot.clock;
    aligned
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_due_then_insertion_order() {
        let mut q = EventQueue::default();
        q.push(30, EventKind::AckArrival);
        q.push(10, EventKind::WbufRetire);
        q.push(10, EventKind::PrefetchArrival);
        let order: Vec<(u64, EventKind)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.due, e.kind))
            .collect();
        assert_eq!(
            order,
            vec![
                (10, EventKind::WbufRetire),
                (10, EventKind::PrefetchArrival),
                (30, EventKind::AckArrival),
            ]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn skew_applies_to_exactly_one_pop() {
        let mut q = EventQueue::default();
        q.push(10, EventKind::BarrierSettle);
        q.push(20, EventKind::BarrierSettle);
        q.skew_next(5);
        assert_eq!(q.pop().unwrap().due, 15, "first pop is skewed");
        assert_eq!(q.pop().unwrap().due, 20, "skew was consumed");
    }

    #[test]
    fn clear_drops_events_and_skew_but_keeps_stats() {
        let mut q = EventQueue::default();
        q.push(10, EventKind::BltComplete);
        q.skew_next(7);
        q.stats.events_fast_forwarded = 3;
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pending_skew, None);
        assert_eq!(q.stats.events_fast_forwarded, 3);
        q.push(10, EventKind::BltComplete);
        assert_eq!(q.pop().unwrap().due, 10, "no stale skew");
    }

    #[test]
    fn engine_mode_from_env_is_stable() {
        // Whatever the ambient T3D_EVENT, repeated reads agree (OnceLock).
        assert_eq!(EngineMode::from_env(), EngineMode::from_env());
    }
}
