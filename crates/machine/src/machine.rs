//! The machine: N nodes wired through the shell and torus, in
//! deterministic virtual time.

use crate::config::MachineConfig;
use crate::event::{self, EngineMode, EventStats};
use crate::node::{Node, NodeHot};
use crate::trace::{TraceEvent, TraceKind, Tracer};
use t3d_memsys::{RemoteSink, WriteTarget};
use t3d_perf::{
    chrome_trace, CostClass, Ledger, OpHists, OpKind, PePerf, PerfMode, PerfReport, PhaseLog,
    Registry, Span,
};
use t3d_shell::blt::BltDirection;
use t3d_shell::{AnnexEntry, BarrierUnit, FuncCode, Message, PopError};
use t3d_torus::{subcube, Torus};

/// Cycles a transfer of `bytes` occupies each link of its route: the
/// T3D moves two bytes per link per cycle, and even a one-byte request
/// holds the link for a cycle.
pub(crate) fn link_occupancy_cy(bytes: u64) -> u64 {
    bytes.div_ceil(2).max(1)
}

/// Sub-cube granularity of the contention-window scan: PEs are grouped
/// into canonical torus sub-cubes of (at most) this many PEs, and a
/// contended window triggers the cycle-accurate fallback only for the
/// sub-cube whose PEs are actually coupled.
const CONTENTION_BLOCK_PES: usize = 8;

/// Error from [`Machine::try_new`]: the torus construction and the
/// sub-cube machinery (shard partition, buddy allocation) require a
/// power-of-two node count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineSizeError {
    nodes: u32,
}

impl std::fmt::Display for MachineSizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "machine size must be a power of two >= 1, got {} nodes",
            self.nodes
        )
    }
}

impl std::error::Error for MachineSizeError {}

/// Handle to an in-flight BLT transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BltHandle {
    /// Virtual time at which the DMA completes.
    pub completion: u64,
    /// Cycles the initiating processor was stalled in the OS invocation.
    pub startup_cy: u64,
    /// Cycles of overlappable DMA streaming.
    pub stream_cy: u64,
}

/// The simulated CRAY-T3D.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    torus: Torus,
    nodes: Vec<Node>,
    /// Struct-of-arrays hot state: one small record per PE (clock, shell
    /// occupancy, in-flight mirrors) so the whole-machine scans stay on
    /// contiguous cache lines.
    hot: Vec<NodeHot>,
    /// Per-directed-link occupancy-until clocks (indexed by
    /// [`Torus::link_id`]); all zero unless `cfg.link_contention`.
    link_busy: Vec<u64>,
    /// Contention-window sub-cube of each PE.
    block_of: Vec<u32>,
    /// PEs of each contention-window sub-cube, in canonical order.
    block_pes: Vec<Vec<u32>>,
    barrier: BarrierUnit,
    tracer: Tracer,
    perf_mode: PerfMode,
    phase_log: PhaseLog,
}

impl Machine {
    /// Builds a machine from a configuration. Profiling defaults to the
    /// `T3D_PERF` environment variable (off when unset), mirroring the
    /// sanitizer's `T3D_SAN` convention.
    ///
    /// # Panics
    ///
    /// Panics if the node count is not a power of two ≥ 1 (see
    /// [`Machine::try_new`] for the non-panicking form).
    pub fn new(cfg: MachineConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds a machine from a configuration, rejecting node counts that
    /// are not a power of two ≥ 1 with a typed error instead of a
    /// downstream panic in the torus or sub-cube machinery.
    pub fn try_new(cfg: MachineConfig) -> Result<Self, MachineSizeError> {
        let n_cfg = cfg.nodes();
        if n_cfg == 0 || !n_cfg.is_power_of_two() {
            return Err(MachineSizeError { nodes: n_cfg });
        }
        let torus = Torus::new(cfg.torus);
        let n = torus.nodes();
        let blocks = subcube::partition(cfg.torus.dims, (n as usize / CONTENTION_BLOCK_PES).max(1));
        let mut block_of = vec![0u32; n as usize];
        let mut block_pes = Vec::with_capacity(blocks.len());
        for (bi, b) in blocks.iter().enumerate() {
            let pes: Vec<u32> = b.coords().into_iter().map(|c| torus.node_of(c)).collect();
            for &pe in &pes {
                block_of[pe as usize] = bi as u32;
            }
            block_pes.push(pes);
        }
        let mut m = Machine {
            nodes: (0..n).map(|pe| Node::new(&cfg, pe)).collect(),
            hot: vec![NodeHot::default(); n as usize],
            link_busy: vec![0; torus.num_links()],
            block_of,
            block_pes,
            barrier: BarrierUnit::new(&cfg.shell, n as usize),
            torus,
            cfg,
            tracer: Tracer::default(),
            perf_mode: PerfMode::Off,
            phase_log: PhaseLog::default(),
        };
        let mode = PerfMode::effective(PerfMode::Off);
        if mode.counters() {
            m.set_perf_mode(mode);
        }
        Ok(m)
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Number of processing elements.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The torus geometry.
    pub fn torus(&self) -> &Torus {
        &self.torus
    }

    /// Immutable access to a node (instrumentation and tests).
    pub fn node(&self, pe: usize) -> &Node {
        &self.nodes[pe]
    }

    /// Mutable access to a node (advanced probes and setup).
    pub fn node_mut(&mut self, pe: usize) -> &mut Node {
        &mut self.nodes[pe]
    }

    /// Nanoseconds per cycle.
    pub fn cycle_ns(&self) -> f64 {
        self.cfg.cycle_ns()
    }

    /// A node's virtual time, in cycles.
    pub fn clock(&self, pe: usize) -> u64 {
        self.hot[pe].clock
    }

    /// Charges `cycles` of computation to a node.
    pub fn advance(&mut self, pe: usize, cycles: u64) {
        self.hot[pe].clock += cycles;
        self.nodes[pe].perf.credit(CostClass::Compute, cycles);
    }

    /// Number of physical-address bits forming the local offset.
    pub fn offset_bits(&self) -> u32 {
        self.cfg.mem.offset_bits
    }

    /// Builds a virtual address from an annex index and local offset.
    pub fn va(&self, annex_idx: usize, offset: u64) -> u64 {
        t3d_shell::annex::pa_with_annex(offset, annex_idx, self.offset_bits())
    }

    /// Splits a virtual address into `(annex index, local offset)`.
    pub fn split_va(&self, va: u64) -> (usize, u64) {
        t3d_shell::annex::split_pa(va, self.offset_bits())
    }

    fn line_mask(&self) -> u64 {
        self.cfg.mem.l1.line as u64 - 1
    }

    /// Integer round-trip latency: exactly twice the rounded one-way
    /// latency, so `rtt_cy(a,b) == 2 * one_way_cy(a,b)` even when the
    /// fractional one-way lands on a half cycle (2.5 rounds to 3, and
    /// the round trip is 6, not `5.0.round()`).
    fn rtt_cy(&self, a: usize, b: usize) -> u64 {
        2 * self.one_way_cy(a, b)
    }

    fn one_way_cy(&self, a: usize, b: usize) -> u64 {
        self.torus.one_way_cy(a as u32, b as u32).round() as u64
    }

    /// Enables event tracing with a buffer of `cap` events.
    pub fn enable_trace(&mut self, cap: usize) {
        self.tracer.enable(cap);
    }

    /// Disables event tracing.
    pub fn disable_trace(&mut self) {
        self.tracer.disable();
    }

    /// The trace buffer (events, drop count, text dump).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Clears the trace buffer.
    pub fn clear_trace(&mut self) {
        self.tracer.clear();
    }

    #[inline]
    fn trace(&mut self, pe: usize, kind: TraceKind, addr: u64, start: u64) {
        if self.tracer.is_enabled() {
            let cycles = self.hot[pe].clock - start;
            self.tracer.record(TraceEvent {
                pe: pe as u32,
                kind,
                addr,
                start,
                cycles,
            });
        }
    }

    /// Whether `pe`'s next wait takes the skip-to-next-event path: the
    /// event engine is selected and no contended window is in progress
    /// in `pe`'s sub-cube.
    fn use_event_path(&self, pe: usize) -> bool {
        self.cfg.engine == EngineMode::Event && !self.contended_window(pe)
    }

    /// A contended window: contention modeling is on and ≥2 PEs of
    /// `pe`'s sub-cube have in-flight remote traffic (pending buffered
    /// writes or outstanding acks), so shell or link queueing can couple
    /// their timing through shared state. Conservative — any such window
    /// runs cycle-accurate. The scan reads the [`NodeHot`] in-flight
    /// mirrors (contiguous, a few words per PE) and is regional: a
    /// contended sub-cube on one corner of a 1024-PE machine does not
    /// knock the opposite corner off the event path.
    fn contended_window(&self, pe: usize) -> bool {
        if !(self.cfg.contention || self.cfg.link_contention) {
            return false;
        }
        let pes = &self.block_pes[self.block_of[pe] as usize];
        debug_assert!(
            pes.iter().all(|&p| {
                let n = &self.nodes[p as usize];
                self.hot[p as usize].inflight()
                    == (n.port.wbuf_pending() > 0 || n.acks.clear_time().is_some())
            }),
            "hot in-flight mirror out of sync with node units"
        );
        pes.iter()
            .filter(|&&p| self.hot[p as usize].inflight())
            .count()
            >= 2
    }

    /// Re-syncs `pe`'s hot in-flight mirrors from the authoritative
    /// units. Called wherever the write buffer or ack tracker can change
    /// population.
    fn sync_inflight(&mut self, pe: usize) {
        let n = &self.nodes[pe];
        let h = &mut self.hot[pe];
        h.wbuf_pending = n.port.wbuf_pending() as u32;
        h.acks_inflight = n.acks.clear_time().is_some();
    }

    /// Event-engine activity counters for one PE (both zero under the
    /// cycle engine).
    pub fn event_stats(&self, pe: usize) -> EventStats {
        self.nodes[pe].events.stats
    }

    /// Fault-injection hook for the differential harness: the next event
    /// the PE pops is due `extra_cy` cycles late. Under the event engine
    /// this perturbs virtual time — every barrier consumes a settle
    /// event per PE, so an armed skew always fires — and the engine
    /// matrix must catch the divergence. A no-op under the cycle engine
    /// (nothing pops events), which is exactly the point: only a
    /// *detected* difference proves the oracle bites.
    pub fn perturb_next_event(&mut self, pe: usize, extra_cy: u64) {
        self.nodes[pe].events.skew_next(extra_cy);
    }

    /// Queueing delay at `target`'s shell for a request that becomes
    /// eligible at `ready` and occupies the shell for `occupancy_cy`.
    /// Zero unless contention modeling is enabled.
    fn contend(&mut self, target: usize, ready: u64, occupancy_cy: u64) -> u64 {
        if !self.cfg.contention {
            return 0;
        }
        let start = ready.max(self.hot[target].shell_busy_until);
        self.hot[target].shell_busy_until = start + occupancy_cy;
        start - ready
    }

    /// Queueing delay on the dimension-order route `pe -> target` for a
    /// transfer that reaches the network at `ready` and occupies each
    /// route link for `occupancy_cy` (its bytes at two per cycle). The
    /// transfer waits for the hottest link of its route to clear, then
    /// holds every link of the route until it finishes. Zero unless link
    /// contention modeling is enabled.
    fn link_contend(&mut self, pe: usize, target: usize, ready: u64, occupancy_cy: u64) -> u64 {
        if !self.cfg.link_contention || pe == target {
            return 0;
        }
        let path = self.torus.route(pe as u32, target as u32);
        let mut start = ready;
        for w in path.windows(2) {
            start = start.max(self.link_busy[self.torus.step_link_id(w[0], w[1])]);
        }
        for w in path.windows(2) {
            self.link_busy[self.torus.step_link_id(w[0], w[1])] = start + occupancy_cy;
        }
        start - ready
    }

    // ------------------------------------------------------------------
    // Annex management
    // ------------------------------------------------------------------

    /// Updates an annex register (23 cycles).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is 0 or the target PE does not exist.
    pub fn annex_set(&mut self, pe: usize, idx: usize, entry: AnnexEntry) {
        assert!(
            (entry.pe as usize) < self.nodes.len(),
            "annex target PE {} does not exist",
            entry.pe
        );
        let now = self.hot[pe].clock;
        let cost = self.nodes[pe].annex.update(idx, entry);
        self.hot[pe].clock += cost;
        self.nodes[pe].perf.credit(CostClass::AnnexUpdate, cost);
        self.trace(pe, TraceKind::AnnexSet(entry.pe), idx as u64, now);
    }

    /// Reads an annex register (free: it is processor state).
    pub fn annex_entry(&self, pe: usize, idx: usize) -> AnnexEntry {
        self.nodes[pe].annex.entry(idx)
    }

    // ------------------------------------------------------------------
    // Loads and stores
    // ------------------------------------------------------------------

    /// Loads a 64-bit word at `va`.
    pub fn ld8(&mut self, pe: usize, va: u64) -> u64 {
        let mut buf = [0u8; 8];
        self.ld(pe, va, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Loads `buf.len()` bytes at `va` (annex-translated). Remote loads
    /// must not cross a cache line.
    ///
    /// Issuing a remote load through an annex entry whose function code
    /// is not a read flavour (e.g. `Swap`) is a program error: debug
    /// builds fail a `debug_assert!`; release builds perform the access
    /// as `Uncached` (the defined behavior — the real shell would issue
    /// the request with the flavour bits it was given).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range accesses.
    pub fn ld(&mut self, pe: usize, va: u64, buf: &mut [u8]) {
        let (aidx, off) = self.split_va(va);
        if aidx == 0 {
            self.nodes[pe].ops.loads_local += 1;
            let now = self.hot[pe].clock;
            let cost = self.nodes[pe].port.read(now, va, buf);
            self.hot[pe].clock = now + cost;
            self.nodes[pe].perf.sample(OpKind::LdLocal, cost);
            self.deliver_outbox(pe);
            self.trace(pe, TraceKind::LoadLocal, va, now);
            return;
        }
        let line_pa = va & !self.line_mask();
        assert!(
            (va - line_pa) as usize + buf.len() <= self.cfg.mem.l1.line,
            "remote load must not cross a cache line"
        );
        self.nodes[pe].ops.loads_remote += 1;
        let entry = self.nodes[pe].annex.entry(aidx);
        let target = entry.pe as usize;
        let now = self.hot[pe].clock;
        // Push out anything due, so our own earlier stores can land.
        self.nodes[pe].port.apply_due(now);
        self.deliver_outbox(pe);

        let mut cost = self.nodes[pe].port.tlb_access(va);
        // A line previously brought over by a cached read may satisfy
        // this load entirely locally (and possibly stale!).
        if let Some(line) = self.nodes[pe].port.l1().lookup(va) {
            let o = (va - line_pa) as usize;
            buf.copy_from_slice(&line[o..o + buf.len()]);
            self.hot[pe].clock = now + cost + self.cfg.mem.l1.hit_cy;
            let hit = self.cfg.mem.l1.hit_cy;
            self.nodes[pe].perf.credit(CostClass::L1Hit, hit);
            self.nodes[pe].perf.sample(OpKind::LdRemote, cost + hit);
            self.trace(pe, TraceKind::LoadRemote(entry.pe), va, now);
            return;
        }
        match entry.func {
            FuncCode::Cached => {
                let target_clock = self.hot[target].clock;
                self.nodes[target].port.apply_due(target_clock);
                self.deliver_outbox(target);
                let line_off = off & !self.line_mask();
                let mut line_buf = vec![0u8; self.cfg.mem.l1.line];
                let dram = self.nodes[target]
                    .port
                    .service_remote_read(line_off, &mut line_buf);
                let ready = now
                    + cost
                    + self.cfg.shell.remote_read_shell_cy / 2
                    + self.one_way_cy(pe, target);
                let lqueue = self.link_contend(
                    pe,
                    target,
                    ready,
                    link_occupancy_cy(self.cfg.mem.l1.line as u64),
                );
                let queue = self.contend(target, ready + lqueue, dram + 5);
                cost += self.cfg.shell.remote_read_shell_cy
                    + self.cfg.shell.cached_read_extra_cy
                    + self.rtt_cy(pe, target)
                    + dram
                    + queue
                    + lqueue;
                let shell =
                    self.cfg.shell.remote_read_shell_cy + self.cfg.shell.cached_read_extra_cy;
                let rtt = self.rtt_cy(pe, target);
                let p = &mut self.nodes[pe].perf;
                p.credit(CostClass::ShellLaunch, shell);
                p.credit(CostClass::NetHop, rtt);
                p.credit(CostClass::RemoteDram, dram);
                p.credit(CostClass::Contention, queue + lqueue);
                if self.nodes[pe].port.has_pending_line(line_pa) {
                    self.nodes[pe].port.forward_pending(line_pa, &mut line_buf);
                }
                self.nodes[pe].port.install_remote_line(line_pa, &line_buf);
                let o = (va - line_pa) as usize;
                buf.copy_from_slice(&line_buf[o..o + buf.len()]);
            }
            other => {
                debug_assert!(
                    other == FuncCode::Uncached,
                    "annex function code {other:?} is not a load flavour"
                );
                let target_clock = self.hot[target].clock;
                self.nodes[target].port.apply_due(target_clock);
                self.deliver_outbox(target);
                let dram = self.nodes[target].port.service_remote_read(off, buf);
                let ready = now
                    + cost
                    + self.cfg.shell.remote_read_shell_cy / 2
                    + self.one_way_cy(pe, target);
                let lqueue =
                    self.link_contend(pe, target, ready, link_occupancy_cy(buf.len() as u64));
                let queue = self.contend(target, ready + lqueue, dram + 5);
                cost += self.cfg.shell.remote_read_shell_cy
                    + self.rtt_cy(pe, target)
                    + dram
                    + queue
                    + lqueue;
                let shell = self.cfg.shell.remote_read_shell_cy;
                let rtt = self.rtt_cy(pe, target);
                let p = &mut self.nodes[pe].perf;
                p.credit(CostClass::ShellLaunch, shell);
                p.credit(CostClass::NetHop, rtt);
                p.credit(CostClass::RemoteDram, dram);
                p.credit(CostClass::Contention, queue + lqueue);
                // Our own pending stores to the same full PA forward.
                if self.nodes[pe].port.has_pending_line(line_pa) {
                    let mut line_buf = vec![0u8; self.cfg.mem.l1.line];
                    let line_off = off & !self.line_mask();
                    self.nodes[target].port.peek_mem(line_off, &mut line_buf);
                    self.nodes[pe].port.forward_pending(line_pa, &mut line_buf);
                    let o = (va - line_pa) as usize;
                    buf.copy_from_slice(&line_buf[o..o + buf.len()]);
                }
            }
        }
        self.hot[pe].clock = now + cost;
        self.nodes[pe].perf.sample(OpKind::LdRemote, cost);
        self.trace(pe, TraceKind::LoadRemote(entry.pe), va, now);
    }

    /// Stores a 64-bit word at `va`.
    pub fn st8(&mut self, pe: usize, va: u64, value: u64) {
        self.st(pe, va, &value.to_le_bytes());
    }

    /// Stores `bytes` at `va` (annex-translated). The store is
    /// non-blocking: it enters the write buffer and, for remote targets,
    /// is acknowledged asynchronously (poll with
    /// [`Machine::wait_write_acks`] after a [`Machine::memory_barrier`]).
    ///
    /// # Panics
    ///
    /// Panics if the store crosses a cache line or is out of range.
    pub fn st(&mut self, pe: usize, va: u64, bytes: &[u8]) {
        let (aidx, off) = self.split_va(va);
        let now = self.hot[pe].clock;
        let cost = if aidx == 0 {
            self.nodes[pe].ops.stores_local += 1;
            self.nodes[pe].port.write(now, va, bytes)
        } else {
            self.nodes[pe].ops.stores_remote += 1;
            let entry = self.nodes[pe].annex.entry(aidx);
            let target = entry.pe as usize;
            assert!(
                target < self.nodes.len(),
                "store to nonexistent PE {target}"
            );
            // Off-page accesses at the target slow the injection stream:
            // the Figure 7 sensitivity at 16 KB strides.
            let line_off = off & !self.line_mask();
            let page_penalty = self.nodes[target]
                .port
                .dram()
                .peek(line_off)
                .saturating_sub(self.cfg.mem.dram.page_hit_cy);
            let sink = RemoteSink {
                pe: entry.pe,
                remote_line_pa: line_off,
                base_cy: self.cfg.shell.remote_write_base_cy + page_penalty,
                per_word_cy: self.cfg.shell.remote_write_word_cy,
                ack_rtt_cy: self.cfg.shell.write_ack_rtt_cy + self.rtt_cy(pe, target),
            };
            self.nodes[pe]
                .port
                .write_to(now, va, bytes, WriteTarget::Remote(sink))
        };
        self.hot[pe].clock = now + cost;
        let kind_op = if aidx == 0 {
            OpKind::StLocal
        } else {
            OpKind::StRemote
        };
        self.nodes[pe].perf.sample(kind_op, cost);
        self.deliver_outbox(pe);
        let kind = if aidx == 0 {
            TraceKind::StoreLocal
        } else {
            TraceKind::StoreRemote(self.nodes[pe].annex.entry(aidx).pe)
        };
        self.trace(pe, kind, va, now);
    }

    /// Issues a memory barrier: drains the write buffer (pushing out any
    /// pending prefetch requests with it).
    pub fn memory_barrier(&mut self, pe: usize) {
        self.nodes[pe].ops.memory_barriers += 1;
        let now = self.hot[pe].clock;
        let cost = if self.use_event_path(pe) {
            event::memory_barrier_event(&mut self.hot[pe], &mut self.nodes[pe])
        } else {
            let c = self.nodes[pe].port.memory_barrier(now);
            self.hot[pe].clock = now + c;
            c
        };
        self.nodes[pe].perf.sample(OpKind::Fence, cost);
        let t = self.hot[pe].clock;
        self.nodes[pe].prefetch.note_memory_barrier(t);
        self.deliver_outbox(pe);
        self.trace(pe, TraceKind::MemoryBarrier, 0, now);
    }

    /// Polls the remote-write status bit once: `true` if no remote write
    /// *known to the shell* is outstanding. Writes still in the write
    /// buffer are invisible — the Section 4.3 trap.
    pub fn poll_status(&mut self, pe: usize) -> bool {
        let now = self.hot[pe].clock;
        let (clear, cost) = self.nodes[pe].acks.poll(now);
        self.hot[pe].clock = now + cost;
        self.nodes[pe].perf.credit(CostClass::AckWait, cost);
        self.sync_inflight(pe);
        self.trace(pe, TraceKind::StatusPoll, 0, now);
        clear
    }

    /// Spins until every remote write that has left the processor is
    /// acknowledged. (Fence first — see [`Machine::poll_status`].)
    pub fn wait_write_acks(&mut self, pe: usize) {
        self.nodes[pe].ops.ack_waits += 1;
        let now = self.hot[pe].clock;
        let cost = if self.use_event_path(pe) {
            event::wait_write_acks_event(&mut self.hot[pe], &mut self.nodes[pe])
        } else {
            let c = self.nodes[pe].acks.wait_clear(now);
            self.hot[pe].clock = now + c;
            self.nodes[pe].perf.credit(CostClass::AckWait, c);
            c
        };
        self.sync_inflight(pe);
        self.nodes[pe].perf.sample(OpKind::AckWait, cost);
        self.trace(pe, TraceKind::AckWait, 0, now);
    }

    /// Delivers retired remote writes from `pe`'s write buffer to their
    /// targets, charging target DRAM and scheduling acknowledgements.
    fn deliver_outbox(&mut self, pe: usize) {
        let retired = self.nodes[pe].port.take_outbox();
        for r in retired {
            let WriteTarget::Remote(sink) = r.target else {
                unreachable!("outbox only carries remote writes")
            };
            let target = sink.pe as usize;
            let dram = self.nodes[target].port.service_remote_write(
                sink.remote_line_pa,
                &r.data,
                Some(r.mask),
            );
            let bytes = r.mask.count_ones() as u64;
            let ready = r.completion + sink.ack_rtt_cy / 2;
            let lqueue = self.link_contend(pe, target, ready, link_occupancy_cy(bytes));
            let queue = self.contend(target, ready + lqueue, dram + 5);
            let arrival = ready + lqueue + dram + queue;
            let ack = r.completion + sink.ack_rtt_cy + lqueue + dram + queue;
            self.nodes[target].incoming.push((arrival, bytes));
            self.nodes[pe].acks.expect_ack(ack);
        }
        self.sync_inflight(pe);
    }

    // ------------------------------------------------------------------
    // Prefetch
    // ------------------------------------------------------------------

    /// Issues a binding prefetch of the word at `va`. Returns `false` if
    /// the 16-entry queue is full (the caller must pop first).
    pub fn fetch(&mut self, pe: usize, va: u64) -> bool {
        self.nodes[pe].ops.fetches += 1;
        let (aidx, off) = self.split_va(va);
        let target = if aidx == 0 {
            pe
        } else {
            self.nodes[pe].annex.entry(aidx).pe as usize
        };
        let now = self.hot[pe].clock;
        let tlb = self.nodes[pe].port.tlb_access(va);
        let target_clock = self.hot[target].clock;
        self.nodes[target].port.apply_due(target_clock);
        self.deliver_outbox(target);
        let mut buf = [0u8; 8];
        let dram = self.nodes[target].port.service_remote_read(off, &mut buf);
        let ready = now + tlb + self.cfg.shell.prefetch_net_cy / 2 + self.one_way_cy(pe, target);
        let lqueue = self.link_contend(pe, target, ready, link_occupancy_cy(8));
        let queue = self.contend(target, ready + lqueue, dram + 5);
        let latency =
            self.cfg.shell.prefetch_net_cy + self.rtt_cy(pe, target) + dram + queue + lqueue;
        let issued =
            match self.nodes[pe]
                .prefetch
                .issue(now + tlb, u64::from_le_bytes(buf), latency)
            {
                Some(c) => {
                    self.hot[pe].clock = now + tlb + c;
                    self.nodes[pe].perf.credit(CostClass::PrefetchIssue, c);
                    self.nodes[pe].perf.sample(OpKind::Fetch, tlb + c);
                    true
                }
                None => {
                    self.hot[pe].clock = now + tlb;
                    self.nodes[pe].perf.sample(OpKind::Fetch, tlb);
                    false
                }
            };
        self.hot[pe].prefetch_outstanding = self.nodes[pe].prefetch.outstanding() as u32;
        self.trace(pe, TraceKind::Fetch(target as u32), va, now);
        issued
    }

    /// Pops the prefetch queue (a 23-cycle off-chip load), waiting for
    /// the data to arrive if necessary.
    ///
    /// # Errors
    ///
    /// [`PopError::Empty`] if nothing is outstanding;
    /// [`PopError::NotDeparted`] if the oldest fetch is still in the
    /// write buffer (fence first).
    pub fn pop_prefetch(&mut self, pe: usize) -> Result<u64, PopError> {
        self.nodes[pe].ops.pops += 1;
        let now = self.hot[pe].clock;
        let (value, cost) = if self.use_event_path(pe) {
            event::pop_prefetch_event(&mut self.hot[pe], &mut self.nodes[pe])?
        } else {
            let (v, c) = self.nodes[pe].prefetch.pop(now)?;
            self.hot[pe].clock = now + c;
            self.nodes[pe].perf.credit(CostClass::PrefetchWait, c);
            (v, c)
        };
        self.hot[pe].prefetch_outstanding = self.nodes[pe].prefetch.outstanding() as u32;
        self.nodes[pe].perf.sample(OpKind::Pop, cost);
        self.trace(pe, TraceKind::Pop, 0, now);
        Ok(value)
    }

    /// Outstanding prefetches on a node.
    pub fn prefetch_outstanding(&self, pe: usize) -> usize {
        self.nodes[pe].prefetch.outstanding()
    }

    // ------------------------------------------------------------------
    // Block transfer engine
    // ------------------------------------------------------------------

    /// Starts a BLT transfer of `bytes` between `pe`'s local memory at
    /// `local_off` and `target_pe`'s memory at `remote_off`. The
    /// initiating processor is stalled for the OS invocation (180 µs);
    /// the DMA itself completes at `BltHandle::completion` and can be
    /// overlapped. Data moves immediately in simulation; destination
    /// cache lines are invalidated (DMA bypasses caches).
    pub fn blt_start(
        &mut self,
        pe: usize,
        dir: BltDirection,
        local_off: u64,
        target_pe: usize,
        remote_off: u64,
        bytes: u64,
    ) -> BltHandle {
        self.nodes[pe].ops.blts += 1;
        let mut data = vec![0u8; bytes as usize];
        match dir {
            BltDirection::Read => {
                self.nodes[target_pe].port.peek_mem(remote_off, &mut data);
                self.poke_and_invalidate(pe, local_off, &data);
            }
            BltDirection::Write => {
                self.nodes[pe].port.peek_mem(local_off, &mut data);
                self.poke_and_invalidate(target_pe, remote_off, &data);
            }
        }
        let now = self.hot[pe].clock;
        let timing = self.nodes[pe].blt.start(now, dir, bytes);
        // The DMA stream holds its route from the moment it starts
        // injecting (after the OS startup stall) until the last byte.
        let lqueue = self.link_contend(
            pe,
            target_pe,
            now + timing.startup_cy,
            link_occupancy_cy(bytes),
        );
        self.hot[pe].clock = now + timing.startup_cy;
        self.nodes[pe]
            .perf
            .credit(CostClass::BltStartup, timing.startup_cy);
        self.nodes[pe]
            .perf
            .sample(OpKind::BltStart, timing.startup_cy);
        self.trace(pe, TraceKind::Blt(target_pe as u32), remote_off, now);
        BltHandle {
            completion: now + timing.total_cy() + lqueue,
            startup_cy: timing.startup_cy,
            stream_cy: timing.stream_cy,
        }
    }

    /// Starts a *strided* BLT transfer: `count` elements of
    /// `elem_bytes`, read from consecutive positions on the local side
    /// and placed `stride_bytes` apart on the remote side (`Write`), or
    /// gathered from `stride_bytes` apart remotely into consecutive
    /// local positions (`Read`). The engine moves the same number of
    /// bytes as the contiguous form but pays the remote DRAM's page
    /// behaviour on every element.
    ///
    /// # Panics
    ///
    /// Panics if `count` or `elem_bytes` is zero, or if
    /// `stride_bytes < elem_bytes` (overlapping elements).
    #[allow(clippy::too_many_arguments)]
    pub fn blt_start_strided(
        &mut self,
        pe: usize,
        dir: BltDirection,
        local_off: u64,
        target_pe: usize,
        remote_off: u64,
        count: u64,
        elem_bytes: u64,
        stride_bytes: u64,
    ) -> BltHandle {
        self.nodes[pe].ops.blts += 1;
        assert!(count > 0 && elem_bytes > 0, "strided BLT must move data");
        assert!(
            stride_bytes >= elem_bytes,
            "stride must not overlap elements"
        );
        let mut elem = vec![0u8; elem_bytes as usize];
        // Strided access defeats the remote controller's open page when
        // the stride crosses DRAM pages; charge it element by element.
        let mut extra = 0u64;
        for i in 0..count {
            let r_off = remote_off + i * stride_bytes;
            let l_off = local_off + i * elem_bytes;
            match dir {
                BltDirection::Read => {
                    self.nodes[target_pe].port.peek_mem(r_off, &mut elem);
                    self.poke_and_invalidate(pe, l_off, &elem);
                }
                BltDirection::Write => {
                    self.nodes[pe].port.peek_mem(l_off, &mut elem);
                    self.poke_and_invalidate(target_pe, r_off, &elem);
                }
            }
            let line = r_off & !self.line_mask();
            let dram = self.nodes[target_pe].port.dram_mut().access(line);
            extra += dram.saturating_sub(self.cfg.mem.dram.page_hit_cy);
        }
        let now = self.hot[pe].clock;
        let timing = self.nodes[pe].blt.start(now, dir, count * elem_bytes);
        let lqueue = self.link_contend(
            pe,
            target_pe,
            now + timing.startup_cy,
            link_occupancy_cy(count * elem_bytes),
        );
        self.hot[pe].clock = now + timing.startup_cy;
        self.nodes[pe]
            .perf
            .credit(CostClass::BltStartup, timing.startup_cy);
        self.nodes[pe]
            .perf
            .sample(OpKind::BltStart, timing.startup_cy);
        self.trace(pe, TraceKind::Blt(target_pe as u32), remote_off, now);
        BltHandle {
            completion: now + timing.total_cy() + extra + lqueue,
            startup_cy: timing.startup_cy,
            stream_cy: timing.stream_cy + extra,
        }
    }

    /// Blocks until a BLT transfer completes.
    pub fn blt_wait(&mut self, pe: usize, handle: BltHandle) {
        let now = self.hot[pe].clock;
        let waited = if self.use_event_path(pe) {
            event::blt_wait_event(&mut self.hot[pe], &mut self.nodes[pe], handle.completion)
        } else {
            let h = &mut self.hot[pe];
            h.clock = h.clock.max(handle.completion);
            let w = h.clock - now;
            self.nodes[pe].perf.credit(CostClass::BltWait, w);
            w
        };
        self.nodes[pe].perf.sample(OpKind::BltWait, waited);
        self.trace(pe, TraceKind::BltWait, 0, now);
    }

    fn poke_and_invalidate(&mut self, pe: usize, off: u64, data: &[u8]) {
        self.nodes[pe].port.poke_mem(off, data);
        let line = self.cfg.mem.l1.line as u64;
        let mut a = off & !self.line_mask();
        while a < off + data.len() as u64 {
            self.nodes[pe].port.l1_mut().invalidate(a);
            a += line;
        }
    }

    // ------------------------------------------------------------------
    // Messages
    // ------------------------------------------------------------------

    /// Sends a four-word message (the 122-cycle PAL call).
    pub fn msg_send(&mut self, pe: usize, dst: usize, words: [u64; 4]) {
        self.nodes[pe].ops.msgs_sent += 1;
        let now = self.hot[pe].clock;
        self.hot[pe].clock += self.cfg.shell.msg_send_cy;
        let send_cy = self.cfg.shell.msg_send_cy;
        self.nodes[pe].perf.credit(CostClass::MsgSend, send_cy);
        self.nodes[pe].perf.sample(OpKind::MsgSend, send_cy);
        let sent = self.hot[pe].clock;
        let lqueue = self.link_contend(pe, dst, sent, link_occupancy_cy(32));
        let arrival = sent + lqueue + self.one_way_cy(pe, dst);
        self.nodes[dst].msgq.deliver(Message {
            from: pe as u32,
            words,
            arrival,
        });
        self.trace(pe, TraceKind::MsgSend(dst as u32), 0, now);
    }

    /// Receives the oldest arrived message, paying the 25 µs interrupt
    /// (plus dispatch, in handler mode). `None` if nothing has arrived.
    pub fn msg_receive(&mut self, pe: usize) -> Option<Message> {
        let now = self.hot[pe].clock;
        self.nodes[pe].ops.msgs_received += 1;
        let (msg, cost) = self.nodes[pe].msgq.receive(now)?;
        self.hot[pe].clock = now + cost;
        self.nodes[pe].perf.credit(CostClass::MsgRecv, cost);
        self.nodes[pe].perf.sample(OpKind::MsgRecv, cost);
        self.trace(pe, TraceKind::MsgRecv, 0, now);
        Some(msg)
    }

    // ------------------------------------------------------------------
    // Atomic operations
    // ------------------------------------------------------------------

    /// Remote fetch&increment on `target_pe`'s register `reg`.
    pub fn fetch_inc(&mut self, pe: usize, target_pe: usize, reg: usize) -> u64 {
        self.nodes[pe].ops.atomics += 1;
        let now = self.hot[pe].clock;
        let ready = now + self.cfg.shell.remote_read_shell_cy / 2 + self.one_way_cy(pe, target_pe);
        let lqueue = self.link_contend(pe, target_pe, ready, link_occupancy_cy(8));
        let queue = self.contend(target_pe, ready + lqueue, 20);
        let cost = self.cfg.shell.remote_read_shell_cy
            + self.rtt_cy(pe, target_pe)
            + self.cfg.shell.amo_extra_cy
            + queue
            + lqueue;
        self.hot[pe].clock += cost;
        let shell = self.cfg.shell.remote_read_shell_cy;
        let rtt = self.rtt_cy(pe, target_pe);
        let amo = self.cfg.shell.amo_extra_cy;
        let p = &mut self.nodes[pe].perf;
        p.credit(CostClass::ShellLaunch, shell);
        p.credit(CostClass::NetHop, rtt);
        p.credit(CostClass::Amo, amo);
        p.credit(CostClass::Contention, queue + lqueue);
        p.sample(OpKind::FetchInc, cost);
        self.trace(pe, TraceKind::FetchInc(target_pe as u32), reg as u64, now);
        self.nodes[target_pe].fetchinc.fetch_inc(reg)
    }

    /// Loads this node's swap operand register.
    pub fn swap_load(&mut self, pe: usize, value: u64) {
        let now = self.hot[pe].clock;
        self.nodes[pe].swap.load(value);
        self.trace(pe, TraceKind::SwapLoad, 0, now);
    }

    /// Atomically exchanges the swap register with the word at `va`
    /// (annex function code `Swap` for remote targets). Returns the old
    /// memory value (now also in the register).
    pub fn atomic_swap(&mut self, pe: usize, va: u64) -> u64 {
        self.nodes[pe].ops.atomics += 1;
        let (aidx, off) = self.split_va(va);
        let target = if aidx == 0 {
            pe
        } else {
            let entry = self.nodes[pe].annex.entry(aidx);
            assert_eq!(
                entry.func,
                FuncCode::Swap,
                "annex entry must select the swap flavour"
            );
            entry.pe as usize
        };
        let target_clock = self.hot[target].clock;
        self.nodes[target].port.apply_due(target_clock);
        self.deliver_outbox(target);
        let mut buf = [0u8; 8];
        let dram = self.nodes[target].port.service_remote_read(off, &mut buf);
        let old_mem = u64::from_le_bytes(buf);
        let to_mem = self.nodes[pe].swap.exchange(old_mem);
        self.nodes[target]
            .port
            .service_remote_write(off, &to_mem.to_le_bytes(), None);
        let now = self.hot[pe].clock;
        let ready = now + self.cfg.shell.remote_read_shell_cy / 2 + self.one_way_cy(pe, target);
        let lqueue = self.link_contend(pe, target, ready, link_occupancy_cy(8));
        let queue = self.contend(target, ready + lqueue, dram + 20);
        let cost = self.cfg.shell.remote_read_shell_cy
            + self.rtt_cy(pe, target)
            + self.cfg.shell.amo_extra_cy
            + dram
            + queue
            + lqueue;
        self.hot[pe].clock += cost;
        let shell = self.cfg.shell.remote_read_shell_cy;
        let rtt = self.rtt_cy(pe, target);
        let amo = self.cfg.shell.amo_extra_cy;
        let p = &mut self.nodes[pe].perf;
        p.credit(CostClass::ShellLaunch, shell);
        p.credit(CostClass::NetHop, rtt);
        p.credit(CostClass::Amo, amo);
        p.credit(CostClass::RemoteDram, dram);
        p.credit(CostClass::Contention, queue + lqueue);
        p.sample(OpKind::Swap, cost);
        self.trace(pe, TraceKind::Swap(target as u32), va, now);
        old_mem
    }

    // ------------------------------------------------------------------
    // Barriers
    // ------------------------------------------------------------------

    /// Global hardware barrier: aligns every node's clock to the last
    /// arrival plus the wire latency (plus start/end instruction costs).
    /// All pending writes are fenced first, as `allStoreSync` requires.
    pub fn barrier_all(&mut self) {
        for pe in 0..self.nodes.len() {
            self.memory_barrier(pe);
        }
        for pe in 0..self.nodes.len() {
            let t = self.hot[pe].clock + self.cfg.shell.barrier_start_cy;
            self.barrier.start(pe, t);
        }
        let done = self.barrier.completion_time().expect("all nodes arrived");
        self.barrier.reset();
        let overhead = self.cfg.shell.barrier_start_cy + self.cfg.shell.barrier_end_cy;
        for pe in 0..self.nodes.len() {
            let start = self.hot[pe].clock;
            // The wire settles at `done` ≥ every arrival ≥ this clock, so
            // aligning via the settle event reproduces `done` exactly —
            // unless a perturbed due-time skews it, which the
            // differential harness must then catch.
            let aligned = if self.use_event_path(pe) {
                event::barrier_settle_event(&self.hot[pe], &mut self.nodes[pe], done)
            } else {
                done
            };
            self.hot[pe].clock = aligned + self.cfg.shell.barrier_end_cy;
            let delta = self.hot[pe].clock - start;
            let p = &mut self.nodes[pe].perf;
            p.credit(CostClass::BarrierOverhead, overhead);
            p.credit(CostClass::BarrierWait, delta - overhead);
            p.sample(OpKind::Barrier, delta);
            self.trace(pe, TraceKind::Barrier, 0, start);
        }
    }

    /// Completed machine-wide barrier episodes.
    pub fn barrier_episodes(&self) -> u64 {
        self.barrier.episodes()
    }

    // ------------------------------------------------------------------
    // Fuzzy barrier (Section 7.5)
    // ------------------------------------------------------------------

    /// Executes the start-barrier instruction: announces arrival on the
    /// global-OR wire and returns immediately — the processor may keep
    /// doing useful work before [`Machine::fuzzy_barrier_end_all`].
    ///
    /// # Panics
    ///
    /// Panics if this node already started the current episode.
    pub fn fuzzy_barrier_start(&mut self, pe: usize) {
        let now = self.hot[pe].clock;
        self.hot[pe].clock += self.cfg.shell.barrier_start_cy;
        let start_cy = self.cfg.shell.barrier_start_cy;
        self.nodes[pe]
            .perf
            .credit(CostClass::BarrierOverhead, start_cy);
        let t = self.hot[pe].clock;
        self.barrier.start(pe, t);
        self.trace(pe, TraceKind::FuzzyBarrierStart, 0, now);
    }

    /// Completes the fuzzy barrier for *all* nodes (driver-level: every
    /// node must have executed start-barrier). Each node's clock
    /// advances only if the wire settled after its own work finished —
    /// work placed between start and end is overlapped with the wait.
    ///
    /// # Panics
    ///
    /// Panics if some node has not executed start-barrier.
    pub fn fuzzy_barrier_end_all(&mut self) {
        let done = self
            .barrier
            .completion_time()
            .expect("every node must start-barrier before end-barrier");
        self.barrier.reset();
        for pe in 0..self.nodes.len() {
            let start = self.hot[pe].clock;
            let aligned = if self.use_event_path(pe) {
                event::barrier_settle_event(&self.hot[pe], &mut self.nodes[pe], done)
            } else {
                start.max(done)
            };
            self.hot[pe].clock = aligned + self.cfg.shell.barrier_end_cy;
            let end_cy = self.cfg.shell.barrier_end_cy;
            let delta = self.hot[pe].clock - start;
            let p = &mut self.nodes[pe].perf;
            p.credit(CostClass::BarrierOverhead, end_cy);
            // `aligned - start == done.saturating_sub(start)` on both
            // unperturbed paths; using `aligned` keeps conservation even
            // when a skew fault stretches the settle.
            p.credit(CostClass::BarrierWait, aligned - start);
            p.sample(OpKind::Barrier, delta);
            self.trace(pe, TraceKind::FuzzyBarrierEnd, 0, start);
        }
    }

    // ------------------------------------------------------------------
    // Functional helpers
    // ------------------------------------------------------------------

    /// Reads a node's memory functionally (no timing).
    pub fn peek_mem(&self, pe: usize, off: u64, buf: &mut [u8]) {
        self.nodes[pe].port.peek_mem(off, buf);
    }

    /// Writes a node's memory functionally (no timing); flushes any
    /// cached copy so the value is authoritative.
    pub fn poke_mem(&mut self, pe: usize, off: u64, bytes: &[u8]) {
        self.poke_and_invalidate(pe, off, bytes);
    }

    /// Reads a u64 functionally.
    pub fn peek8(&self, pe: usize, off: u64) -> u64 {
        let mut b = [0u8; 8];
        self.peek_mem(pe, off, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a u64 functionally.
    pub fn poke8(&mut self, pe: usize, off: u64, v: u64) {
        self.poke_mem(pe, off, &v.to_le_bytes());
    }

    /// Resets every node's timing state (caches, TLB, DRAM pages, write
    /// buffers, clocks) while preserving memory contents. Probes call
    /// this between trials.
    pub fn reset_timing(&mut self) {
        for pe in 0..self.nodes.len() {
            self.nodes[pe].port.reset_timing();
            self.deliver_outbox(pe);
        }
        for node in &mut self.nodes {
            node.incoming.clear();
            node.acks.wait_clear(u64::MAX / 2);
            node.events.clear();
            // Rebase attribution at the zeroed clock (collection state is
            // preserved; accumulated credits from before the reset would
            // otherwise break conservation against the new clocks).
            let on = node.perf.on;
            node.perf.restart(on, 0);
            node.port.set_perf(on);
        }
        for hot in &mut self.hot {
            hot.clock = 0;
            hot.shell_busy_until = 0;
        }
        self.link_busy.fill(0);
        for pe in 0..self.nodes.len() {
            self.sync_inflight(pe);
        }
        self.phase_log.clear();
    }

    /// A node's operation counters.
    pub fn op_stats(&self, pe: usize) -> crate::node::OpStats {
        self.nodes[pe].ops
    }

    /// Clears a node's operation counters.
    pub fn clear_op_stats(&mut self, pe: usize) {
        self.nodes[pe].ops = crate::node::OpStats::default();
    }

    // ------------------------------------------------------------------
    // Profiling (t3d-perf)
    // ------------------------------------------------------------------

    /// The profiling mode in force.
    pub fn perf_mode(&self) -> PerfMode {
        self.perf_mode
    }

    /// Sets the profiling mode, restarting collection: every PE's
    /// ledgers and histograms clear and rebase at its current clock, and
    /// the phase log empties. `Timeline` also enables the tracer (with
    /// the `T3D_TRACE_CAP` capacity, default 65536) if it is not already
    /// on. Attribution is pure observation — no virtual time changes.
    pub fn set_perf_mode(&mut self, mode: PerfMode) {
        self.perf_mode = mode;
        let on = mode.counters();
        for (node, hot) in self.nodes.iter_mut().zip(&self.hot) {
            node.perf.restart(on, hot.clock);
            node.port.set_perf(on);
        }
        self.phase_log.clear();
        if mode.timeline() && !self.tracer.is_enabled() {
            self.tracer.enable(Tracer::env_cap(65_536));
        }
    }

    /// All PEs' attribution ledgers (node + memory port) merged.
    fn merged_perf_ledger(&self) -> Ledger {
        let mut out = Ledger::default();
        for node in &self.nodes {
            out.merge(&node.perf.ledger);
            out.merge(node.port.perf_ledger());
        }
        out
    }

    /// The reference clock for phase spans: the maximum PE clock (a
    /// contiguous scan over the hot arena).
    fn perf_ref_clock(&self) -> u64 {
        self.hot.iter().map(|h| h.clock).max().unwrap_or(0)
    }

    /// Opens a named phase in the perf report (no-op unless profiling).
    /// Phases are flat: beginning a phase ends any open one.
    pub fn perf_begin_phase(&mut self, label: &str) {
        if !self.perf_mode.counters() {
            return;
        }
        let now = self.perf_ref_clock();
        let snap = self.merged_perf_ledger();
        self.phase_log.begin(label, now, snap);
    }

    /// Closes the open phase (no-op unless profiling / nothing is open).
    pub fn perf_end_phase(&mut self) {
        if !self.perf_mode.counters() {
            return;
        }
        let now = self.perf_ref_clock();
        let snap = self.merged_perf_ledger();
        self.phase_log.end(now, snap);
    }

    /// Assembles the perf report: per-PE attribution (node + memory-port
    /// ledgers), per-phase attribution, and the metrics registry
    /// (operation counters, memory-system counters, latency histograms).
    /// Deterministic: PEs are visited in order and the registry sorts by
    /// name, so Seq and Par phase-driver runs report bit-identically.
    pub fn perf(&self) -> PerfReport {
        let mut pes = Vec::with_capacity(self.nodes.len());
        let mut registry = Registry::default();
        let mut hists = OpHists::default();
        let mut wbuf_pending = 0i64;
        for (pe, node) in self.nodes.iter().enumerate() {
            let mut ledger = node.perf.ledger;
            ledger.merge(node.port.perf_ledger());
            pes.push(PePerf {
                pe,
                elapsed: self.hot[pe].clock.saturating_sub(node.perf.base_clock),
                ledger,
            });
            hists.merge(&node.perf.hists);
            let ops = node.ops;
            registry.count("ops.ld.local", ops.loads_local);
            registry.count("ops.ld.remote", ops.loads_remote);
            registry.count("ops.st.local", ops.stores_local);
            registry.count("ops.st.remote", ops.stores_remote);
            registry.count("ops.fetch", ops.fetches);
            registry.count("ops.pop", ops.pops);
            registry.count("ops.fence", ops.memory_barriers);
            registry.count("ops.blt", ops.blts);
            registry.count("ops.msg.send", ops.msgs_sent);
            registry.count("ops.msg.recv", ops.msgs_received);
            registry.count("ops.atomic", ops.atomics);
            registry.count("ops.ack.wait", ops.ack_waits);
            let mem = node.port.stats();
            registry.count("mem.l1.hits", mem.l1_hits);
            registry.count("mem.l1.misses", mem.l1_misses);
            registry.count("mem.l2.hits", mem.l2_hits);
            registry.count("mem.wbuf.merges", mem.wbuf_merges);
            registry.count("mem.wbuf.stalls", mem.wbuf_stalls);
            registry.count("mem.tlb.misses", mem.tlb_misses);
            wbuf_pending += node.port.wbuf_pending() as i64;
        }
        registry.count("barrier.episodes", self.barrier.episodes());
        registry.count("trace.dropped", self.tracer.dropped());
        registry.gauge("wbuf.pending", wbuf_pending);
        for kind in t3d_perf::OpKind::ALL {
            let h = hists.get(kind);
            if h.count() > 0 {
                registry.observe_hist(&format!("lat.{}", kind.label()), h);
            }
        }
        PerfReport {
            mode: self.perf_mode,
            pes,
            phases: self.phase_log.records().to_vec(),
            registry,
        }
    }

    /// Exports a `chrome://tracing` timeline: one row per PE built from
    /// the tracer's events (enable `Timeline` mode or the tracer), plus
    /// a machine-wide row (tid 10000) carrying the named phase spans.
    /// Returns pretty-printed Chrome-trace JSON.
    pub fn perf_chrome_trace(&self) -> String {
        let mut spans: Vec<Span> = self
            .tracer
            .events()
            .map(|e| Span {
                name: e.kind.label(),
                cat: "event".to_string(),
                tid: e.pe as u64,
                start: e.start,
                dur: e.cycles,
            })
            .collect();
        for rec in self.phase_log.records() {
            for &(start, end) in &rec.spans {
                spans.push(Span {
                    name: rec.label.clone(),
                    cat: "phase".to_string(),
                    tid: 10_000,
                    start,
                    dur: end - start,
                });
            }
        }
        chrome_trace(&spans).render_pretty()
    }

    /// Earliest virtual time at which `target_bytes` of remote-write data
    /// had arrived at `pe` (for `storeSync`).
    pub fn arrival_time_of(&self, pe: usize, target_bytes: u64) -> Option<u64> {
        self.nodes[pe].arrival_time_of(target_bytes)
    }

    /// Clears a node's arrival log (a new `storeSync` epoch).
    pub fn clear_incoming(&mut self, pe: usize) {
        self.nodes[pe].incoming.clear();
    }

    /// Pushes every write already due out of each node's write buffer and
    /// delivers it, through the direct-engine path. The sharded phase
    /// driver calls this before splitting the machine into shards so no
    /// pre-phase state is pending when the shards start.
    pub(crate) fn normalize_for_phase(&mut self) {
        for pe in 0..self.nodes.len() {
            let now = self.hot[pe].clock;
            self.nodes[pe].port.apply_due(now);
            self.deliver_outbox(pe);
        }
    }

    /// Split borrow of the pieces the sharded phase driver needs: the
    /// configuration and torus (shared, read-only), the node and hot
    /// arrays (split per-PE across shards), and the link-occupancy
    /// clocks (snapshotted read-only; shards queue privately).
    pub(crate) fn phase_parts(
        &mut self,
    ) -> (&MachineConfig, &Torus, &mut [Node], &mut [NodeHot], &[u64]) {
        (
            &self.cfg,
            &self.torus,
            &mut self.nodes,
            &mut self.hot,
            &self.link_busy,
        )
    }

    /// Replays one sharded-phase link reservation against the global
    /// link-occupancy clocks (merge-order deterministic, so Seq and Par
    /// runs evolve identical link state).
    pub(crate) fn replay_link(&mut self, src: usize, target: usize, ready: u64, occupancy_cy: u64) {
        let _ = self.link_contend(src, target, ready, occupancy_cy);
    }

    /// Split borrow of one PE's cold node and hot record (effect
    /// application after a sharded phase).
    pub(crate) fn node_and_hot_mut(&mut self, pe: usize) -> (&mut Node, &mut NodeHot) {
        (&mut self.nodes[pe], &mut self.hot[pe])
    }

    /// Re-syncs every PE's hot in-flight mirrors (the sharded phase
    /// driver mutates unit state through its own shard borrows).
    pub(crate) fn resync_inflight_all(&mut self) {
        for pe in 0..self.nodes.len() {
            self.sync_inflight(pe);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine2() -> Machine {
        Machine::new(MachineConfig::t3d(2))
    }

    fn set_annex(m: &mut Machine, pe: usize, idx: usize, target: u32, func: FuncCode) {
        m.annex_set(pe, idx, AnnexEntry { pe: target, func });
    }

    #[test]
    fn local_load_store_roundtrip() {
        let mut m = machine2();
        m.st8(0, 0x1000, 77);
        assert_eq!(m.ld8(0, 0x1000), 77);
    }

    #[test]
    fn rtt_is_twice_rounded_one_way_for_all_pairs() {
        // 2x2x2 torus: hop_cy = 2.5 puts odd hop counts on half cycles,
        // exactly where rounding the doubled latency used to diverge
        // from doubling the rounded one-way (1 hop: one-way 2.5 -> 3,
        // rtt must be 6, not 5.0.round() = 5).
        let m = Machine::new(MachineConfig::t3d(8));
        assert_eq!(m.cfg.torus.dims, (2, 2, 2));
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(m.rtt_cy(a, b), 2 * m.one_way_cy(a, b), "pair ({a},{b})");
            }
        }
        // Pin the adjacent-pair values the rest of the calibration
        // suite builds on.
        assert_eq!(m.one_way_cy(0, 1), 3);
        assert_eq!(m.rtt_cy(0, 1), 6);
    }

    #[test]
    fn uncached_remote_read_costs_about_91_cycles() {
        let mut m = machine2();
        m.poke8(1, 0x2000, 5);
        set_annex(&mut m, 0, 1, 1, FuncCode::Uncached);
        // Warm the TLB so we measure the steady-state cost the paper plots.
        let _ = m.ld8(0, m.va(1, 0x2008));
        let t0 = m.clock(0);
        let v = m.ld8(0, m.va(1, 0x2000));
        let cost = m.clock(0) - t0;
        assert_eq!(v, 5);
        assert!(
            (85..=97).contains(&cost),
            "uncached adjacent remote read cost {cost} cy (paper: ~91)"
        );
    }

    #[test]
    fn cached_remote_read_costs_more_but_then_hits() {
        let mut m = machine2();
        m.poke8(1, 0x3000, 9);
        m.poke8(1, 0x3008, 10);
        set_annex(&mut m, 0, 1, 1, FuncCode::Cached);
        let _ = m.ld8(0, m.va(1, 0x4000)); // TLB warm
        let t0 = m.clock(0);
        assert_eq!(m.ld8(0, m.va(1, 0x3000)), 9);
        let first = m.clock(0) - t0;
        assert!(
            (105..=125).contains(&first),
            "cached adjacent remote read cost {first} cy (paper: ~114)"
        );
        let t1 = m.clock(0);
        assert_eq!(
            m.ld8(0, m.va(1, 0x3008)),
            10,
            "next word came with the line"
        );
        assert_eq!(m.clock(0) - t1, 1, "line hit");
    }

    #[test]
    fn cached_remote_line_goes_stale() {
        let mut m = machine2();
        m.poke8(1, 0x3000, 1);
        set_annex(&mut m, 0, 1, 1, FuncCode::Cached);
        assert_eq!(m.ld8(0, m.va(1, 0x3000)), 1);
        // Owner updates its memory; no coherence traffic.
        m.st8(1, 0x3000, 2);
        m.memory_barrier(1);
        assert_eq!(m.ld8(0, m.va(1, 0x3000)), 1, "stale cached copy");
        // Explicit flush (23 cycles) makes the next read fresh.
        let va = m.va(1, 0x3000);
        let flush = m.node_mut(0).port.flush_line(va);
        m.advance(0, flush);
        assert_eq!(m.ld8(0, va), 2);
    }

    #[test]
    fn blocking_remote_write_costs_about_130_cycles() {
        let mut m = machine2();
        set_annex(&mut m, 0, 1, 1, FuncCode::Uncached);
        let va = m.va(1, 0x5000);
        // Warm TLB.
        m.st8(0, va, 1);
        m.memory_barrier(0);
        m.wait_write_acks(0);
        let t0 = m.clock(0);
        m.st8(0, va, 42);
        m.memory_barrier(0);
        m.wait_write_acks(0);
        let cost = m.clock(0) - t0;
        assert!(
            (120..=140).contains(&cost),
            "blocking remote write cost {cost} cy (paper: ~130)"
        );
        assert_eq!(m.peek8(1, 0x5000), 42);
    }

    #[test]
    fn nonblocking_remote_write_sustains_17_cycles() {
        let mut m = machine2();
        set_annex(&mut m, 0, 1, 1, FuncCode::Uncached);
        let t0 = m.clock(0);
        let n = 128u64;
        for i in 0..n {
            let va = m.va(1, 0x8000 + i * 64);
            m.st8(0, va, i);
        }
        let avg = (m.clock(0) - t0) as f64 / n as f64;
        assert!(
            (15.0..20.0).contains(&avg),
            "non-blocking remote write interval {avg} cy (paper: ~17)"
        );
    }

    #[test]
    fn status_bit_invisible_to_buffered_writes() {
        // Section 4.3: poll without fencing sees a clear bit even though
        // a write sits in the buffer.
        let mut m = machine2();
        set_annex(&mut m, 0, 1, 1, FuncCode::Uncached);
        let va = m.va(1, 0x6000);
        m.st8(0, va, 1);
        assert!(
            m.poll_status(0),
            "bit appears clear: the write is still buffered"
        );
        m.memory_barrier(0);
        assert!(
            !m.poll_status(0),
            "after the fence the write is visible in flight"
        );
    }

    #[test]
    fn prefetch_roundtrip() {
        let mut m = machine2();
        m.poke8(1, 0x7000, 123);
        set_annex(&mut m, 0, 1, 1, FuncCode::Uncached);
        let va = m.va(1, 0x7000);
        assert!(m.fetch(0, va));
        m.memory_barrier(0);
        assert_eq!(m.pop_prefetch(0), Ok(123));
    }

    #[test]
    fn prefetch_pop_without_fence_is_a_hazard() {
        let mut m = machine2();
        set_annex(&mut m, 0, 1, 1, FuncCode::Uncached);
        m.fetch(0, m.va(1, 0x7000));
        assert_eq!(m.pop_prefetch(0), Err(PopError::NotDeparted));
    }

    #[test]
    fn blt_moves_data_and_charges_startup() {
        let mut m = machine2();
        for i in 0..64u64 {
            m.poke8(1, 0x9000 + i * 8, i);
        }
        let t0 = m.clock(0);
        let h = m.blt_start(0, BltDirection::Read, 0xA000, 1, 0x9000, 512);
        assert!(
            m.clock(0) - t0 >= 27_000,
            "OS invocation stalls the processor"
        );
        m.blt_wait(0, h);
        for i in 0..64u64 {
            assert_eq!(m.peek8(0, 0xA000 + i * 8), i);
        }
    }

    #[test]
    fn strided_blt_gathers_columns() {
        let mut m = machine2();
        // A 8x8 matrix of u64 on PE 1, row-major; gather column 3.
        for r in 0..8u64 {
            for c in 0..8u64 {
                m.poke8(1, 0x4000 + (r * 8 + c) * 8, r * 100 + c);
            }
        }
        let h = m.blt_start_strided(
            0,
            BltDirection::Read,
            0x5000,
            1,
            0x4000 + 3 * 8,
            8,  // count
            8,  // elem bytes
            64, // stride: one row
        );
        m.blt_wait(0, h);
        for r in 0..8u64 {
            assert_eq!(m.peek8(0, 0x5000 + r * 8), r * 100 + 3, "row {r}");
        }
        assert!(h.startup_cy >= 27_000, "still an OS invocation");
    }

    #[test]
    fn strided_blt_scatter_writes() {
        let mut m = machine2();
        for i in 0..4u64 {
            m.poke8(0, 0x6000 + i * 8, 7 + i);
        }
        let h = m.blt_start_strided(0, BltDirection::Write, 0x6000, 1, 0x7000, 4, 8, 256);
        m.blt_wait(0, h);
        for i in 0..4u64 {
            assert_eq!(m.peek8(1, 0x7000 + i * 256), 7 + i);
        }
    }

    #[test]
    fn strided_blt_page_misses_slow_the_stream() {
        let mut m = machine2();
        let contiguous = m.blt_start_strided(0, BltDirection::Read, 0x1000, 1, 0x0, 64, 8, 8);
        let mut m2 = machine2();
        let strided = m2.blt_start_strided(0, BltDirection::Read, 0x1000, 1, 0x0, 64, 8, 16 * 1024);
        assert!(
            strided.stream_cy > contiguous.stream_cy,
            "page-missing stride streams slower: {} vs {}",
            strided.stream_cy,
            contiguous.stream_cy
        );
    }

    #[test]
    fn message_send_receive() {
        let mut m = machine2();
        m.msg_send(0, 1, [1, 2, 3, 4]);
        // Receiver polls; arrival takes network time.
        m.advance(1, 200);
        let msg = m.msg_receive(1).expect("message arrived");
        assert_eq!(msg.words, [1, 2, 3, 4]);
        assert_eq!(msg.from, 0);
    }

    #[test]
    fn message_receive_costs_the_interrupt() {
        let mut m = machine2();
        m.msg_send(0, 1, [0; 4]);
        m.advance(1, 1000);
        let t0 = m.clock(1);
        m.msg_receive(1).unwrap();
        assert!(m.clock(1) - t0 >= 3750, "25 us interrupt");
    }

    #[test]
    fn handler_mode_charges_the_dispatch_switch() {
        let mut cfg = MachineConfig::t3d(2);
        cfg.msg_mode = t3d_shell::ReceiveMode::Handler;
        let mut m = Machine::new(cfg);
        m.msg_send(0, 1, [0; 4]);
        m.advance(1, 1_000);
        let t0 = m.clock(1);
        m.msg_receive(1).unwrap();
        assert!(
            m.clock(1) - t0 >= 3_750 + 4_950,
            "interrupt + handler switch charged"
        );
    }

    #[test]
    fn fetch_inc_is_remote_and_atomic() {
        let mut m = machine2();
        assert_eq!(m.fetch_inc(0, 1, 0), 0);
        assert_eq!(m.fetch_inc(0, 1, 0), 1);
        assert_eq!(m.fetch_inc(1, 1, 0), 2, "owner sees the same counter");
        let t0 = m.clock(0);
        m.fetch_inc(0, 1, 1);
        let cost = m.clock(0) - t0;
        assert!(
            (100..200).contains(&cost),
            "f&i cost {cost} cy (paper: ~1 us incl. overheads)"
        );
    }

    #[test]
    fn atomic_swap_exchanges() {
        let mut m = machine2();
        m.poke8(1, 0xB000, 5);
        set_annex(&mut m, 0, 1, 1, FuncCode::Swap);
        m.swap_load(0, 9);
        let old = m.atomic_swap(0, m.va(1, 0xB000));
        assert_eq!(old, 5);
        assert_eq!(m.peek8(1, 0xB000), 9);
    }

    #[test]
    fn fuzzy_barrier_overlaps_work() {
        // Plain barrier: arrive, wait, then do 2000 cycles of work.
        let mut m = machine2();
        m.advance(0, 100);
        m.advance(1, 3_000); // the straggler
        m.barrier_all();
        m.advance(0, 2_000);
        let plain = m.clock(0);

        // Fuzzy barrier: announce arrival, do the 2000 cycles while the
        // straggler arrives, then complete.
        let mut m = machine2();
        m.advance(0, 100);
        m.advance(1, 3_000);
        m.fuzzy_barrier_start(0);
        m.fuzzy_barrier_start(1);
        m.advance(0, 2_000); // overlapped with the wait
        m.fuzzy_barrier_end_all();
        let fuzzy = m.clock(0);

        assert!(
            fuzzy + 1_500 < plain,
            "fuzzy barrier hides the overlapped work: {fuzzy} vs {plain} cy"
        );
    }

    #[test]
    #[should_panic(expected = "start-barrier before end-barrier")]
    fn fuzzy_end_requires_all_starts() {
        let mut m = machine2();
        m.fuzzy_barrier_start(0);
        m.fuzzy_barrier_end_all();
    }

    #[test]
    fn barrier_aligns_clocks() {
        let mut m = machine2();
        m.advance(0, 100);
        m.advance(1, 5000);
        m.barrier_all();
        assert_eq!(m.clock(0), m.clock(1));
        assert!(m.clock(0) >= 5000 + 50);
        assert_eq!(m.barrier_episodes(), 1);
    }

    #[test]
    fn trace_records_the_operation_stream() {
        let mut m = machine2();
        m.enable_trace(64);
        set_annex(&mut m, 0, 1, 1, FuncCode::Uncached);
        m.st8(0, m.va(1, 0x100), 1);
        m.memory_barrier(0);
        m.wait_write_acks(0);
        let _ = m.ld8(0, m.va(1, 0x100));
        let kinds: Vec<TraceKind> = m.tracer().events().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::AnnexSet(1),
                TraceKind::StoreRemote(1),
                TraceKind::MemoryBarrier,
                TraceKind::AckWait,
                TraceKind::LoadRemote(1),
            ]
        );
        let total: u64 = m.tracer().events().map(|e| e.cycles).sum();
        assert!(total > 0);
        assert!(m.tracer().dump().contains("st.remote->1"));
        m.clear_trace();
        assert!(m.tracer().is_empty());
    }

    #[test]
    fn tracing_off_costs_nothing_and_records_nothing() {
        let mut m = machine2();
        m.st8(0, 0x40, 1);
        assert!(m.tracer().is_empty());
    }

    #[test]
    fn contention_serializes_a_hot_spot() {
        // All nodes fetch&increment PE 0's counter at the same virtual
        // time: with contention on, the later requests queue.
        let run = |contend: bool| -> u64 {
            let cfg = if contend {
                MachineConfig::t3d_contended(8)
            } else {
                MachineConfig::t3d(8)
            };
            let mut m = Machine::new(cfg);
            for pe in 1..8 {
                let _ = m.fetch_inc(pe, 0, 0);
            }
            (1..8).map(|pe| m.clock(pe)).max().unwrap()
        };
        let free = run(false);
        let contended = run(true);
        assert!(
            contended > free + 100,
            "hot-spot queueing must show: {contended} vs {free} cy"
        );
        // The counter still counts correctly either way.
    }

    #[test]
    fn contention_off_by_default_changes_nothing() {
        let mut m = machine2();
        set_annex(&mut m, 0, 1, 1, FuncCode::Uncached);
        let _ = m.ld8(0, m.va(1, 0x2008));
        let t0 = m.clock(0);
        let _ = m.ld8(0, m.va(1, 0x2000));
        let cost = m.clock(0) - t0;
        assert!((85..=97).contains(&cost), "calibration intact: {cost} cy");
    }

    #[test]
    fn write_buffer_synonym_hazard_end_to_end() {
        // Two annex entries name PE 1; a store through one is invisible
        // to an immediately following load through the other.
        let mut m = machine2();
        m.poke8(1, 0xC000, 1);
        set_annex(&mut m, 0, 1, 1, FuncCode::Uncached);
        set_annex(&mut m, 0, 2, 1, FuncCode::Uncached);
        m.st8(0, m.va(1, 0xC000), 2);
        let stale = m.ld8(0, m.va(2, 0xC000));
        assert_eq!(stale, 1, "synonym read bypassed the buffered store");
        // Same-annex read forwards correctly.
        let fresh = m.ld8(0, m.va(1, 0xC000));
        assert_eq!(fresh, 2);
        // After fencing and acknowledgement everything agrees.
        m.memory_barrier(0);
        m.wait_write_acks(0);
        assert_eq!(m.ld8(0, m.va(2, 0xC000)), 2);
    }

    #[test]
    fn store_arrivals_logged_for_store_sync() {
        let mut m = machine2();
        set_annex(&mut m, 0, 1, 1, FuncCode::Uncached);
        for i in 0..4u64 {
            m.st8(0, m.va(1, 0xD000 + i * 64), i);
        }
        m.memory_barrier(0);
        let t = m.arrival_time_of(1, 32).expect("32 bytes arrived");
        assert!(t > 0);
        assert_eq!(m.arrival_time_of(1, 33), None);
    }

    #[test]
    fn non_power_of_two_machine_is_rejected() {
        let err = Machine::try_new(MachineConfig::t3d(24)).unwrap_err();
        assert_eq!(
            err.to_string(),
            "machine size must be a power of two >= 1, got 24 nodes"
        );
        for n in [1u32, 2, 8, 64, 1024] {
            assert!(Machine::try_new(MachineConfig::t3d(n)).is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "machine size must be a power of two >= 1, got 24 nodes")]
    fn new_panics_on_non_power_of_two() {
        let _ = Machine::new(MachineConfig::t3d(24));
    }

    #[test]
    fn fresh_machine_commits_no_node_memory() {
        // Construction must not touch the demand-chunked arenas: a
        // 64-PE machine with 16 MB nodes is a 1 GB address space but a
        // few-KB allocation until programs store to it.
        let m = Machine::new(MachineConfig::t3d(64));
        let resident: usize = (0..m.nodes())
            .map(|pe| m.node(pe).port.mem_arena().resident_bytes())
            .sum();
        assert_eq!(resident, 0, "fresh machines commit no chunks");
    }

    #[test]
    fn contended_window_is_per_sub_cube() {
        // 16 nodes factor to dims (4, 2, 2); the contention window
        // splits them along X into two canonical (2, 2, 2) sub-cubes —
        // the same shapes the gang scheduler's buddy allocator hands
        // out.
        let mut m = Machine::new(MachineConfig::t3d_contended(16));
        assert_eq!(m.block_pes.len(), 2);
        assert_eq!(m.block_pes[0], vec![0, 1, 4, 5, 8, 9, 12, 13]);
        assert_eq!(m.block_pes[1], vec![2, 3, 6, 7, 10, 11, 14, 15]);
        // Two PEs of the first sub-cube leave stores in flight.
        for pe in [0usize, 1] {
            set_annex(&mut m, pe, 1, 3, FuncCode::Uncached);
            let va = m.va(1, 0x100);
            m.st8(pe, va, 9);
        }
        assert!(m.contended_window(0), "sender is inside the window");
        assert!(
            m.contended_window(5),
            "an idle PE of a busy sub-cube is inside the window"
        );
        assert!(
            !m.contended_window(2),
            "the other sub-cube stays uncontended"
        );
        assert!(!m.contended_window(15));
    }

    #[test]
    fn link_contention_is_free_for_a_lone_sender() {
        // With one PE sending, every route link is idle at `ready`:
        // the queueing term is zero and the clocks match the
        // uncontended machine exactly.
        let run = |link: bool| {
            let mut cfg = MachineConfig::t3d(8);
            cfg.link_contention = link;
            let mut m = Machine::new(cfg);
            set_annex(&mut m, 0, 1, 7, FuncCode::Uncached);
            for i in 0..4u64 {
                m.st8(0, m.va(1, 0x2000 + i * 8), i);
            }
            m.memory_barrier(0);
            m.wait_write_acks(0);
            let _ = m.ld8(0, m.va(1, 0x2000));
            let _ = m.fetch_inc(0, 7, 0);
            m.clock(0)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn link_contention_queues_streams_sharing_a_link() {
        // On the (2, 2, 2) torus both 5 → 0 and 7 → 0 dimension-order
        // routes finish over the Z link (0,0,1) → (0,0,0); two
        // simultaneous 2 KB BLT streams must serialize on it (1024 cy
        // of occupancy each at two bytes per cycle).
        let run = |link: bool| {
            let mut cfg = MachineConfig::t3d(8);
            cfg.link_contention = link;
            let mut m = Machine::new(cfg);
            let h5 = m.blt_start(5, BltDirection::Write, 0x1000, 0, 0x8000, 2048);
            let h7 = m.blt_start(7, BltDirection::Write, 0x1000, 0, 0x9000, 2048);
            m.blt_wait(5, h5);
            m.blt_wait(7, h7);
            m.clock(5).max(m.clock(7))
        };
        let free = run(false);
        let queued = run(true);
        assert!(
            queued >= free + 1000,
            "shared final link must queue the second stream: {queued} vs {free} cy"
        );
    }

    #[test]
    fn remote_write_invalidate_keeps_owner_coherent() {
        let mut m = machine2();
        // Owner caches its own line.
        m.poke8(1, 0xE000, 1);
        assert_eq!(m.ld8(1, 0xE000), 1);
        // Remote write arrives; owner's next read must see it.
        set_annex(&mut m, 0, 1, 1, FuncCode::Uncached);
        m.st8(0, m.va(1, 0xE000), 2);
        m.memory_barrier(0);
        m.wait_write_acks(0);
        assert_eq!(
            m.ld8(1, 0xE000),
            2,
            "cache-invalidate mode flushed the line"
        );
    }
}
