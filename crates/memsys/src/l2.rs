//! Board-level second-level cache (DEC workstation configuration only).
//!
//! The T3D deliberately omits an L2 so that vector-style streaming codes
//! get the full DRAM bandwidth (Section 2.2); the DEC Alpha workstation
//! used as the Figure 1 comparison machine has a 512 KB direct-mapped L2.
//! Because the workstation configuration is used only for local read/write
//! probes (where write-through keeps every level consistent), this model
//! tracks tags and timing but not data.

use crate::config::L2Config;

/// Direct-mapped, tags-only L2 timing model.
///
/// # Example
///
/// ```
/// use t3d_memsys::{L2Cache, MemConfig};
///
/// let cfg = MemConfig::dec_workstation().l2.unwrap();
/// let mut l2 = L2Cache::new(cfg);
/// assert!(!l2.access(0x1000), "cold miss");
/// assert!(l2.access(0x1008), "line now resident");
/// ```
#[derive(Debug, Clone)]
pub struct L2Cache {
    cfg: L2Config,
    tags: Vec<Option<u64>>,
    line_shift: u32,
    index_mask: u64,
}

impl L2Cache {
    /// Creates an empty L2.
    ///
    /// # Panics
    ///
    /// Panics if capacity or line size is not a power of two.
    pub fn new(cfg: L2Config) -> Self {
        assert!(
            cfg.bytes.is_power_of_two(),
            "L2 capacity must be a power of two"
        );
        assert!(cfg.line.is_power_of_two(), "L2 line must be a power of two");
        let nlines = cfg.bytes / cfg.line;
        L2Cache {
            cfg,
            tags: vec![None; nlines],
            line_shift: cfg.line.trailing_zeros(),
            index_mask: (nlines - 1) as u64,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &L2Config {
        &self.cfg
    }

    /// Accesses `pa`: returns `true` on a hit; on a miss the line is
    /// allocated (evicting any conflicting line).
    pub fn access(&mut self, pa: u64) -> bool {
        let tag = pa >> self.line_shift;
        let idx = ((pa >> self.line_shift) & self.index_mask) as usize;
        if self.tags[idx] == Some(tag) {
            true
        } else {
            self.tags[idx] = Some(tag);
            false
        }
    }

    /// Whether `pa`'s line is resident, without allocating.
    pub fn contains(&self, pa: u64) -> bool {
        let tag = pa >> self.line_shift;
        let idx = ((pa >> self.line_shift) & self.index_mask) as usize;
        self.tags[idx] == Some(tag)
    }

    /// Invalidates every line.
    pub fn invalidate_all(&mut self) {
        for t in &mut self.tags {
            *t = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemConfig;

    fn l2() -> L2Cache {
        L2Cache::new(MemConfig::dec_workstation().l2.unwrap())
    }

    #[test]
    fn working_set_within_capacity_hits_after_warmup() {
        let mut c = l2();
        let n = 256 * 1024u64; // 256 KB fits in 512 KB
        let mut a = 0;
        while a < n {
            c.access(a);
            a += 32;
        }
        let mut a = 0;
        while a < n {
            assert!(c.access(a), "warm access at {a} must hit");
            a += 32;
        }
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = l2();
        let n = 1024 * 1024u64; // 1 MB exceeds 512 KB direct-mapped
        for round in 0..2 {
            let mut a = 0;
            while a < n {
                let hit = c.access(a);
                if round == 1 {
                    assert!(!hit, "direct-mapped 1 MB sweep must always miss");
                }
                a += 32;
            }
        }
    }

    #[test]
    fn contains_does_not_allocate() {
        let mut c = l2();
        assert!(!c.contains(64));
        assert!(!c.contains(64), "still absent");
        c.access(64);
        assert!(c.contains(64));
    }

    #[test]
    fn invalidate_all_empties() {
        let mut c = l2();
        c.access(0);
        c.invalidate_all();
        assert!(!c.contains(0));
    }
}
