//! The backing byte array of one node's local memory, shareable across
//! threads.
//!
//! During a sharded (parallel) phase, each processing element's thread
//! owns its node's caches, write buffer and DRAM timing state
//! exclusively, but *remote reads must still observe other nodes' memory
//! bytes*. [`MemArena`] makes that possible: the bytes live in
//! `AtomicU8` cells accessed with `Relaxed` ordering, so a port can hand
//! out `Arc` clones of its arena to every other shard.
//!
//! The arena is **demand-chunked**: the byte space is divided into
//! fixed-size chunks that are allocated lazily, zero-filled, on first
//! write. A fresh 16 MB arena is a table of empty [`OnceLock`] slots —
//! a few hundred bytes — so constructing a 1024-PE machine no longer
//! eagerly commits gigabytes. Reads of untouched chunks observe zeros,
//! exactly as the old eager allocation did, which keeps
//! `snapshot_region`/`fnv64` checksums bit-identical.
//!
//! Relaxed per-byte atomics compile to plain loads and stores on every
//! platform we care about; there is no synchronization cost on the hot
//! path. Determinism is *not* provided by this type — it comes from the
//! sharded phase contract (a location written by its owner during a
//! phase must not be read remotely in the same phase), enforced by
//! convention and checked by the determinism oracle tests. Chunk
//! *initialization* is thread-safe regardless: `OnceLock` guarantees a
//! single zeroed allocation wins even under racing first writes.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Bytes per lazily-allocated chunk. 64 KB: big enough that chunk-table
/// indexing is invisible next to DRAM-model costs, small enough that a
/// microbenchmark touching one page commits one chunk, not a node's
/// whole memory.
pub const CHUNK_BYTES: usize = 64 * 1024;

/// Allocates `len` zeroed bytes as an atomic slice.
///
/// The allocation is requested as a zeroed `Box<[u8]>` — which the
/// allocator satisfies from the OS's pre-zeroed pages (calloc fast
/// path) — and reinterpreted in place, rather than initializing `len`
/// atomic cells one by one.
#[allow(unsafe_code)]
fn zeroed_atomic(len: usize) -> Box<[AtomicU8]> {
    let zeroed: Box<[u8]> = vec![0u8; len].into_boxed_slice();
    let raw = Box::into_raw(zeroed);
    // SAFETY: `AtomicU8` is documented to have the same size,
    // alignment and bit validity as `u8`, so a zeroed `u8`
    // allocation is a valid `[AtomicU8]` of the same length. The
    // pointer comes from `Box::into_raw` and ownership passes
    // directly back into `Box::from_raw`, with no aliasing in
    // between.
    unsafe { Box::from_raw(raw as *mut [AtomicU8]) }
}

/// A fixed-size, zero-initialized byte array with interior mutability
/// and demand-allocated backing chunks.
#[derive(Debug)]
pub struct MemArena {
    len: usize,
    chunks: Box<[OnceLock<Box<[AtomicU8]>>]>,
}

impl MemArena {
    /// Creates an arena of `len` zeroed bytes. No chunk is allocated
    /// until first written; reads of unallocated chunks return zeros.
    pub fn new(len: usize) -> Self {
        let n = len.div_ceil(CHUNK_BYTES);
        let chunks = (0..n).map(|_| OnceLock::new()).collect();
        MemArena { len, chunks }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes actually committed to allocated chunks — the demand-paged
    /// footprint, as opposed to [`len`](Self::len), the addressable
    /// size.
    pub fn resident_bytes(&self) -> usize {
        self.chunks
            .iter()
            .filter_map(|c| c.get())
            .map(|c| c.len())
            .sum()
    }

    /// The byte length of chunk `i` (the last chunk may be short).
    fn chunk_len(&self, i: usize) -> usize {
        CHUNK_BYTES.min(self.len - i * CHUNK_BYTES)
    }

    /// The chunk backing byte `i * CHUNK_BYTES`, allocating it (zeroed)
    /// on first use.
    fn chunk_mut(&self, i: usize) -> &[AtomicU8] {
        self.chunks[i].get_or_init(|| zeroed_atomic(self.chunk_len(i)))
    }

    /// Copies `buf.len()` bytes starting at `offset` into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the span exceeds the arena.
    pub fn read(&self, offset: u64, buf: &mut [u8]) {
        let off = offset as usize;
        assert!(
            off + buf.len() <= self.len,
            "read of {}..{} exceeds arena of {} bytes",
            off,
            off + buf.len(),
            self.len
        );
        let mut pos = off;
        let mut out = buf;
        while !out.is_empty() {
            let ci = pos / CHUNK_BYTES;
            let co = pos % CHUNK_BYTES;
            let span = out.len().min(self.chunk_len(ci) - co);
            let (head, tail) = out.split_at_mut(span);
            match self.chunks[ci].get() {
                Some(chunk) => {
                    for (d, s) in head.iter_mut().zip(&chunk[co..co + span]) {
                        *d = s.load(Ordering::Relaxed);
                    }
                }
                None => head.fill(0),
            }
            out = tail;
            pos += span;
        }
    }

    /// Reads one byte.
    pub fn get(&self, offset: u64) -> u8 {
        let off = offset as usize;
        assert!(
            off < self.len,
            "byte {off} exceeds arena of {} bytes",
            self.len
        );
        match self.chunks[off / CHUNK_BYTES].get() {
            Some(chunk) => chunk[off % CHUNK_BYTES].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Writes `bytes` starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the span exceeds the arena.
    pub fn write(&self, offset: u64, bytes: &[u8]) {
        let off = offset as usize;
        assert!(
            off + bytes.len() <= self.len,
            "write of {}..{} exceeds arena of {} bytes",
            off,
            off + bytes.len(),
            self.len
        );
        let mut pos = off;
        let mut src = bytes;
        while !src.is_empty() {
            let ci = pos / CHUNK_BYTES;
            let co = pos % CHUNK_BYTES;
            let span = src.len().min(self.chunk_len(ci) - co);
            let chunk = self.chunk_mut(ci);
            for (d, s) in chunk[co..co + span].iter().zip(src) {
                d.store(*s, Ordering::Relaxed);
            }
            src = &src[span..];
            pos += span;
        }
    }

    /// Writes one byte.
    pub fn set(&self, offset: u64, byte: u8) {
        let off = offset as usize;
        assert!(
            off < self.len,
            "byte {off} exceeds arena of {} bytes",
            self.len
        );
        self.chunk_mut(off / CHUNK_BYTES)[off % CHUNK_BYTES].store(byte, Ordering::Relaxed);
    }

    /// Writes the bytes of `bytes` selected by the low bits of `mask`
    /// (bit `i` set → byte `i` written).
    ///
    /// # Panics
    ///
    /// Panics if the span exceeds the arena.
    pub fn write_masked(&self, offset: u64, bytes: &[u8], mask: u64) {
        let off = offset as usize;
        assert!(
            off + bytes.len() <= self.len,
            "masked write of {}..{} exceeds arena of {} bytes",
            off,
            off + bytes.len(),
            self.len
        );
        for (i, b) in bytes.iter().enumerate() {
            if mask & (1 << i) != 0 {
                let pos = off + i;
                self.chunk_mut(pos / CHUNK_BYTES)[pos % CHUNK_BYTES].store(*b, Ordering::Relaxed);
            }
        }
    }

    /// A deep copy with the same contents (used by `MemPort::clone`).
    /// Only chunks the source has committed are allocated in the copy,
    /// so cloning a mostly-untouched arena stays cheap.
    pub fn deep_clone(&self) -> Self {
        let clone = MemArena::new(self.len);
        for (i, slot) in self.chunks.iter().enumerate() {
            if let Some(src) = slot.get() {
                let dst = clone.chunk_mut(i);
                for (d, s) in dst.iter().zip(src.iter()) {
                    d.store(s.load(Ordering::Relaxed), Ordering::Relaxed);
                }
            }
        }
        clone
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_arena_reads_all_zero() {
        // Pins the demand-zeroed contract: a fresh arena must be
        // indistinguishable from the old eager zeroed allocation.
        let a = MemArena::new(4096 + 3); // odd size: no alignment luck
        let mut buf = vec![0xAAu8; a.len()];
        a.read(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(a.get(4096 + 2), 0);
    }

    #[test]
    fn fresh_arena_commits_nothing() {
        let a = MemArena::new(16 << 20);
        assert_eq!(a.resident_bytes(), 0, "construction allocates no chunks");
        let mut buf = [0u8; 64];
        a.read(1 << 20, &mut buf);
        assert_eq!(a.resident_bytes(), 0, "reads allocate no chunks");
        a.set(1 << 20, 1);
        assert_eq!(
            a.resident_bytes(),
            CHUNK_BYTES,
            "first write commits one chunk"
        );
    }

    #[test]
    fn read_write_roundtrip() {
        let a = MemArena::new(64);
        a.write(8, &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        a.read(8, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
        assert_eq!(a.get(9), 2);
    }

    #[test]
    fn spans_crossing_chunk_boundaries_roundtrip() {
        let a = MemArena::new(3 * CHUNK_BYTES + 7);
        let off = CHUNK_BYTES as u64 - 3; // straddles chunks 0 and 1
        let data: Vec<u8> = (0..16u8).collect();
        a.write(off, &data);
        let mut buf = [0u8; 16];
        a.read(off, &mut buf);
        assert_eq!(&buf[..], &data[..]);
        // A long read over committed, uncommitted and short-tail chunks.
        let mut all = vec![0xAAu8; a.len()];
        a.read(0, &mut all);
        assert_eq!(&all[CHUNK_BYTES - 3..CHUNK_BYTES + 13], &data[..]);
        assert!(all[..CHUNK_BYTES - 3].iter().all(|&b| b == 0));
        assert!(all[CHUNK_BYTES + 13..].iter().all(|&b| b == 0));
    }

    #[test]
    fn short_tail_chunk_is_addressable() {
        let a = MemArena::new(2 * CHUNK_BYTES + 5);
        a.write(2 * CHUNK_BYTES as u64, &[9, 8, 7, 6, 5]);
        assert_eq!(a.get(2 * CHUNK_BYTES as u64 + 4), 5);
        assert_eq!(a.resident_bytes(), 5, "tail chunk is allocated short");
    }

    #[test]
    fn masked_write_touches_selected_bytes_only() {
        let a = MemArena::new(16);
        a.write(0, &[0xFF; 8]);
        a.write_masked(0, &[0u8; 8], 0b0101_0101);
        let mut buf = [0u8; 8];
        a.read(0, &mut buf);
        assert_eq!(buf, [0, 0xFF, 0, 0xFF, 0, 0xFF, 0, 0xFF]);
    }

    #[test]
    fn deep_clone_is_independent() {
        let a = MemArena::new(8);
        a.set(0, 7);
        let b = a.deep_clone();
        a.set(0, 9);
        assert_eq!(b.get(0), 7);
        assert_eq!(a.get(0), 9);
    }

    #[test]
    fn deep_clone_copies_only_committed_chunks() {
        let a = MemArena::new(4 * CHUNK_BYTES);
        a.set(3 * CHUNK_BYTES as u64, 42);
        let b = a.deep_clone();
        assert_eq!(b.resident_bytes(), CHUNK_BYTES);
        assert_eq!(b.get(3 * CHUNK_BYTES as u64), 42);
        assert_eq!(b.get(0), 0);
    }

    #[test]
    fn shared_across_threads() {
        let a = std::sync::Arc::new(MemArena::new(1024));
        std::thread::scope(|s| {
            for t in 0..4u8 {
                let a = std::sync::Arc::clone(&a);
                s.spawn(move || {
                    // Disjoint spans per thread: the sharded-phase contract.
                    a.write(t as u64 * 256, &[t + 1; 256]);
                });
            }
        });
        for t in 0..4u8 {
            assert_eq!(a.get(t as u64 * 256 + 100), t + 1);
        }
    }

    #[test]
    fn racing_first_writes_to_one_chunk_all_land() {
        // OnceLock must arbitrate racing chunk initializations.
        let a = std::sync::Arc::new(MemArena::new(CHUNK_BYTES));
        std::thread::scope(|s| {
            for t in 0..8u8 {
                let a = std::sync::Arc::clone(&a);
                s.spawn(move || {
                    a.write(t as u64 * 128, &[t + 1; 128]);
                });
            }
        });
        for t in 0..8u8 {
            assert_eq!(a.get(t as u64 * 128 + 64), t + 1);
        }
        assert_eq!(a.resident_bytes(), CHUNK_BYTES);
    }

    #[test]
    #[should_panic(expected = "exceeds arena")]
    fn out_of_bounds_write_panics() {
        let a = MemArena::new(16);
        a.write(10, &[0u8; 8]);
    }
}
