//! The backing byte array of one node's local memory, shareable across
//! threads.
//!
//! During a sharded (parallel) phase, each processing element's thread
//! owns its node's caches, write buffer and DRAM timing state
//! exclusively, but *remote reads must still observe other nodes' memory
//! bytes*. [`MemArena`] makes that possible without `unsafe`: the bytes
//! live in `AtomicU8` cells accessed with `Relaxed` ordering, so a port
//! can hand out `Arc` clones of its arena to every other shard.
//!
//! Relaxed per-byte atomics compile to plain loads and stores on every
//! platform we care about; there is no synchronization cost on the hot
//! path. Determinism is *not* provided by this type — it comes from the
//! sharded phase contract (a location written by its owner during a
//! phase must not be read remotely in the same phase), enforced by
//! convention and checked by the determinism oracle tests.

use std::sync::atomic::{AtomicU8, Ordering};

/// A fixed-size, zero-initialized byte array with interior mutability.
#[derive(Debug)]
pub struct MemArena {
    bytes: Box<[AtomicU8]>,
}

impl MemArena {
    /// Allocates `len` zeroed bytes.
    ///
    /// The allocation is requested as a zeroed `Box<[u8]>` — which the
    /// allocator satisfies from the OS's pre-zeroed pages (calloc fast
    /// path) — and reinterpreted in place, rather than initializing
    /// `len` atomic cells one by one. Machine construction allocates
    /// one arena per node at the full per-node memory size, so the
    /// element-wise loop dominated simulator start-up.
    #[allow(unsafe_code)]
    pub fn new(len: usize) -> Self {
        let zeroed: Box<[u8]> = vec![0u8; len].into_boxed_slice();
        let raw = Box::into_raw(zeroed);
        // SAFETY: `AtomicU8` is documented to have the same size,
        // alignment and bit validity as `u8`, so a zeroed `u8`
        // allocation is a valid `[AtomicU8]` of the same length. The
        // pointer comes from `Box::into_raw` and ownership passes
        // directly back into `Box::from_raw`, with no aliasing in
        // between.
        let bytes = unsafe { Box::from_raw(raw as *mut [AtomicU8]) };
        MemArena { bytes }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Copies `buf.len()` bytes starting at `offset` into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the span exceeds the arena.
    pub fn read(&self, offset: u64, buf: &mut [u8]) {
        let off = offset as usize;
        let src = &self.bytes[off..off + buf.len()];
        for (d, s) in buf.iter_mut().zip(src) {
            *d = s.load(Ordering::Relaxed);
        }
    }

    /// Reads one byte.
    pub fn get(&self, offset: u64) -> u8 {
        self.bytes[offset as usize].load(Ordering::Relaxed)
    }

    /// Writes `bytes` starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the span exceeds the arena.
    pub fn write(&self, offset: u64, bytes: &[u8]) {
        let off = offset as usize;
        let dst = &self.bytes[off..off + bytes.len()];
        for (d, s) in dst.iter().zip(bytes) {
            d.store(*s, Ordering::Relaxed);
        }
    }

    /// Writes one byte.
    pub fn set(&self, offset: u64, byte: u8) {
        self.bytes[offset as usize].store(byte, Ordering::Relaxed);
    }

    /// Writes the bytes of `bytes` selected by the low bits of `mask`
    /// (bit `i` set → byte `i` written).
    ///
    /// # Panics
    ///
    /// Panics if the span exceeds the arena.
    pub fn write_masked(&self, offset: u64, bytes: &[u8], mask: u64) {
        let off = offset as usize;
        for (i, b) in bytes.iter().enumerate() {
            if mask & (1 << i) != 0 {
                self.bytes[off + i].store(*b, Ordering::Relaxed);
            }
        }
    }

    /// A deep copy with the same contents (used by `MemPort::clone`).
    pub fn deep_clone(&self) -> Self {
        let mut v = Vec::with_capacity(self.bytes.len());
        for b in &self.bytes {
            v.push(AtomicU8::new(b.load(Ordering::Relaxed)));
        }
        MemArena {
            bytes: v.into_boxed_slice(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_arena_reads_all_zero() {
        // Pins the zeroed-allocation fast path: a fresh arena must be
        // indistinguishable from the old element-wise initialization.
        let a = MemArena::new(4096 + 3); // odd size: no alignment luck
        let mut buf = vec![0xAAu8; a.len()];
        a.read(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(a.get(4096 + 2), 0);
    }

    #[test]
    fn read_write_roundtrip() {
        let a = MemArena::new(64);
        a.write(8, &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        a.read(8, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
        assert_eq!(a.get(9), 2);
    }

    #[test]
    fn masked_write_touches_selected_bytes_only() {
        let a = MemArena::new(16);
        a.write(0, &[0xFF; 8]);
        a.write_masked(0, &[0u8; 8], 0b0101_0101);
        let mut buf = [0u8; 8];
        a.read(0, &mut buf);
        assert_eq!(buf, [0, 0xFF, 0, 0xFF, 0, 0xFF, 0, 0xFF]);
    }

    #[test]
    fn deep_clone_is_independent() {
        let a = MemArena::new(8);
        a.set(0, 7);
        let b = a.deep_clone();
        a.set(0, 9);
        assert_eq!(b.get(0), 7);
        assert_eq!(a.get(0), 9);
    }

    #[test]
    fn shared_across_threads() {
        let a = std::sync::Arc::new(MemArena::new(1024));
        std::thread::scope(|s| {
            for t in 0..4u8 {
                let a = std::sync::Arc::clone(&a);
                s.spawn(move || {
                    // Disjoint spans per thread: the sharded-phase contract.
                    a.write(t as u64 * 256, &[t + 1; 256]);
                });
            }
        });
        for t in 0..4u8 {
            assert_eq!(a.get(t as u64 * 256 + 100), t + 1);
        }
    }
}
