//! Direct-mapped, write-through, read-allocate L1 data cache with data.
//!
//! The Alpha 21064's 8 KB on-chip data cache is direct-mapped with 32-byte
//! lines, write-through and read-allocate (stores that miss do not
//! allocate). Lines carry real bytes because the T3D caches *remote* data
//! without hardware coherence: a cached remote line can go stale when its
//! owner updates memory, and the paper's compiler analysis (Section 4.4)
//! hinges on exactly that behaviour being observable.
//!
//! Tags cover the *full* physical address, including the DTB-Annex index
//! bits in the high part of the address. Because the index is taken from
//! the low bits and the cache is direct-mapped, two annex synonyms always
//! map to the same line — which is why, as the paper notes in Section 3.4,
//! caching does not admit synonym inconsistencies (the write buffer does).

use crate::config::L1Config;

/// Direct-mapped L1 data cache holding real bytes.
///
/// Line storage is one flat allocation (line `i` at
/// `i * line_bytes..`), with tags and valid bits in parallel vectors —
/// three allocations per cache instead of one per line, which is what
/// keeps constructing the thousand caches of a 1024-PE machine cheap.
///
/// # Example
///
/// ```
/// use t3d_memsys::{L1Cache, MemConfig};
///
/// let mut l1 = L1Cache::new(MemConfig::t3d().l1);
/// assert!(l1.lookup(0x100).is_none());
/// l1.fill(0x100, &[7u8; 32]);
/// assert_eq!(l1.lookup(0x108).unwrap()[8], 7);
/// ```
#[derive(Debug, Clone)]
pub struct L1Cache {
    cfg: L1Config,
    /// `tags[i]` is meaningful iff `valid[i]`.
    tags: Vec<u64>,
    valid: Vec<bool>,
    /// All line data, flat; line `i` occupies `i * cfg.line..(i + 1) * cfg.line`.
    data: Vec<u8>,
    line_shift: u32,
    index_mask: u64,
}

impl L1Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configured capacity or line size is not a power of
    /// two, or if the line size does not divide the capacity.
    pub fn new(cfg: L1Config) -> Self {
        assert!(
            cfg.bytes.is_power_of_two(),
            "cache capacity must be a power of two"
        );
        assert!(
            cfg.line.is_power_of_two(),
            "cache line must be a power of two"
        );
        let nlines = cfg.bytes / cfg.line;
        assert!(nlines > 0, "cache must have at least one line");
        L1Cache {
            cfg,
            tags: vec![0; nlines],
            valid: vec![false; nlines],
            data: vec![0; nlines * cfg.line],
            line_shift: cfg.line.trailing_zeros(),
            index_mask: (nlines - 1) as u64,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &L1Config {
        &self.cfg
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.cfg.line
    }

    /// Physical address of the start of the line containing `pa`.
    pub fn line_base(&self, pa: u64) -> u64 {
        pa & !((self.cfg.line as u64) - 1)
    }

    fn index(&self, pa: u64) -> usize {
        ((pa >> self.line_shift) & self.index_mask) as usize
    }

    fn tag(&self, pa: u64) -> u64 {
        pa >> self.line_shift
    }

    /// Byte range of line `idx` in the flat data arena.
    fn span(&self, idx: usize) -> std::ops::Range<usize> {
        idx * self.cfg.line..(idx + 1) * self.cfg.line
    }

    /// Returns the line data if `pa`'s line is resident.
    pub fn lookup(&self, pa: u64) -> Option<&[u8]> {
        let idx = self.index(pa);
        (self.valid[idx] && self.tags[idx] == self.tag(pa)).then(|| &self.data[self.span(idx)])
    }

    /// Whether `pa`'s line is resident (tag match on the full address).
    pub fn contains(&self, pa: u64) -> bool {
        self.lookup(pa).is_some()
    }

    /// Installs a line (read allocation), evicting whatever shared its
    /// index. `data` must be exactly one line.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one line long.
    pub fn fill(&mut self, pa: u64, data: &[u8]) {
        assert_eq!(data.len(), self.cfg.line, "fill must supply one full line");
        let tag = self.tag(pa);
        let idx = self.index(pa);
        self.valid[idx] = true;
        self.tags[idx] = tag;
        let span = self.span(idx);
        self.data[span].copy_from_slice(data);
    }

    /// Write-through update: if the line is resident, update its bytes in
    /// place (stores that miss do not allocate). Returns whether it hit.
    pub fn update(&mut self, pa: u64, bytes: &[u8]) -> bool {
        let tag = self.tag(pa);
        let idx = self.index(pa);
        let off = (pa & ((self.cfg.line as u64) - 1)) as usize;
        assert!(
            off + bytes.len() <= self.cfg.line,
            "update must not cross a line boundary"
        );
        if self.valid[idx] && self.tags[idx] == tag {
            let base = idx * self.cfg.line + off;
            self.data[base..base + bytes.len()].copy_from_slice(bytes);
            true
        } else {
            false
        }
    }

    /// Flushes (invalidates) the line containing `pa`, if resident.
    ///
    /// Used both by the explicit cache-line flush the compiler must emit
    /// after cached remote reads, and by the shell's cache-invalidate mode
    /// on incoming remote writes.
    pub fn invalidate(&mut self, pa: u64) -> bool {
        let tag = self.tag(pa);
        let idx = self.index(pa);
        if self.valid[idx] && self.tags[idx] == tag {
            self.valid[idx] = false;
            true
        } else {
            false
        }
    }

    /// Invalidates every line (whole-cache flush, used by the batched
    /// flush that makes bulk cached reads cheaper above 8 KB).
    pub fn invalidate_all(&mut self) {
        self.valid.fill(false);
    }

    /// Number of currently valid lines.
    pub fn valid_lines(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemConfig;

    fn cache() -> L1Cache {
        L1Cache::new(MemConfig::t3d().l1)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = cache();
        assert!(!c.contains(0x40));
        c.fill(0x40, &[1; 32]);
        assert!(c.contains(0x40));
        assert!(c.contains(0x5f), "whole line resident");
        assert!(!c.contains(0x60), "next line not resident");
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = cache();
        let way_apart = 8 * 1024; // capacity: same index, different tag
        c.fill(0x80, &[1; 32]);
        c.fill(0x80 + way_apart, &[2; 32]);
        assert!(!c.contains(0x80), "conflicting fill evicted the first line");
        assert!(c.contains(0x80 + way_apart));
    }

    #[test]
    fn annex_synonyms_map_to_the_same_line() {
        // Synonyms differ only in high (annex) bits, so they share an
        // index; a direct-mapped cache can hold at most one of them.
        let mut c = cache();
        let annex_bit = 1u64 << 27;
        c.fill(0x100, &[1; 32]);
        c.fill(0x100 | annex_bit, &[2; 32]);
        assert!(!c.contains(0x100));
        assert!(c.contains(0x100 | annex_bit));
    }

    #[test]
    fn update_hits_only_resident_lines() {
        let mut c = cache();
        assert!(!c.update(0x200, &[9; 8]), "write miss does not allocate");
        c.fill(0x200, &[0; 32]);
        assert!(c.update(0x208, &[9; 8]));
        assert_eq!(&c.lookup(0x200).unwrap()[8..16], &[9; 8]);
    }

    #[test]
    fn invalidate_single_and_all() {
        let mut c = cache();
        c.fill(0x0, &[0; 32]);
        c.fill(0x20, &[0; 32]);
        assert!(c.invalidate(0x0));
        assert!(!c.invalidate(0x0), "second invalidate is a no-op");
        assert_eq!(c.valid_lines(), 1);
        c.invalidate_all();
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    #[should_panic(expected = "one full line")]
    fn fill_requires_full_line() {
        let mut c = cache();
        c.fill(0, &[0; 8]);
    }

    #[test]
    #[should_panic(expected = "line boundary")]
    fn update_must_not_cross_lines() {
        let mut c = cache();
        c.fill(0, &[0; 32]);
        c.update(28, &[0; 8]);
    }
}
