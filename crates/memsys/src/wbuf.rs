//! The Alpha 21064 four-entry merging write buffer.
//!
//! Stores are non-blocking on the 21064: they enter a four-entry write
//! buffer, each entry one cache line (32 B) wide, and retire to memory in
//! FIFO order through a pipelined memory path. Consecutive stores to the
//! same line *merge* into one entry (Section 2.3 of the paper derives both
//! the merge behaviour and the entry count of 4 from the write-latency
//! profile).
//!
//! Two properties of this buffer drive compiler decisions in the paper:
//!
//! * **Reads can bypass writes.** A load is matched against pending
//!   entries by *full physical address* (which on the T3D includes the
//!   DTB-Annex index bits). Two annex synonyms — different physical
//!   addresses naming the same memory location — therefore do not match,
//!   and a read can observe the stale memory value while the newer value
//!   sits in the buffer (Section 3.4). This module reproduces that hazard
//!   byte-for-byte.
//! * **Remote stores retire more slowly than local ones** and acknowledge
//!   asynchronously, which is what makes the non-blocking remote write the
//!   fastest communication primitive on the machine (Section 5.3).
//!
//! Time inside the buffer is tracked in fractional cycles so that the
//! pipelined retire interval (DRAM cost / 4) reproduces the measured
//! 35 ns steady-state store cost.

use crate::config::WbufConfig;
use std::collections::VecDeque;

/// Where a buffered write is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteTarget {
    /// Local memory on this node.
    Local,
    /// A remote node, via the shell.
    Remote(RemoteSink),
}

/// Destination and cost parameters for a buffered *remote* write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteSink {
    /// Destination processing element.
    pub pe: u32,
    /// Line-aligned physical address in the destination's local memory.
    pub remote_line_pa: u64,
    /// Fixed part of the shell injection interval, in cycles.
    pub base_cy: u64,
    /// Per-64-bit-word part of the injection interval, in cycles.
    pub per_word_cy: u64,
    /// Cycles from injection until the hardware acknowledgement returns
    /// and decrements the outstanding-writes counter.
    pub ack_rtt_cy: u64,
}

impl RemoteSink {
    /// Injection interval for an entry carrying `words` valid quadwords.
    pub fn interval_cy(&self, words: u64) -> u64 {
        self.base_cy + self.per_word_cy * words
    }
}

/// A write that has retired from the buffer.
#[derive(Debug, Clone)]
pub struct Retired {
    /// Line-aligned physical address the entry was buffered under.
    pub line_pa: u64,
    /// Per-byte valid mask within the line.
    pub mask: u64,
    /// Line-sized data; only bytes with a set mask bit are meaningful.
    pub data: Vec<u8>,
    /// Destination of the write.
    pub target: WriteTarget,
    /// Virtual time (cycles) at which the entry left the buffer.
    pub completion: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    line_pa: u64,
    mask: u64,
    data: Vec<u8>,
    target: WriteTarget,
    /// Earliest time the retire pipeline could begin serving this entry
    /// (issue time or the predecessor's completion, whichever is later) —
    /// fixed at push so merges cannot jump the FIFO.
    base: f64,
    /// Interval this entry occupies the retire pipeline.
    interval: f64,
    /// Time the entry finishes retiring.
    completion: f64,
}

impl Entry {
    fn words(&self, line: usize) -> u64 {
        let mut words = 0;
        for q in 0..(line / 8) {
            if (self.mask >> (q * 8)) & 0xFF != 0 {
                words += 1;
            }
        }
        words.max(1)
    }
}

/// Outcome of pushing a store into the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushOutcome {
    /// Cycles the store cost the issuing processor (issue + any stall for
    /// a free entry).
    pub cycles: u64,
    /// Whether the store merged into an existing entry.
    pub merged: bool,
}

/// The four-entry merging write buffer.
///
/// # Example
///
/// ```
/// use t3d_memsys::{MemConfig, WriteBuffer, WriteTarget};
///
/// let cfg = MemConfig::t3d();
/// let mut wb = WriteBuffer::new(cfg.wbuf, cfg.l1.line);
/// // Two stores to the same 32 B line merge into one entry.
/// wb.push(0, 0x100, &[1u8; 8], WriteTarget::Local, 22);
/// let (out, _retired) = wb.push(3, 0x108, &[2u8; 8], WriteTarget::Local, 22);
/// assert!(out.merged);
/// assert_eq!(wb.pending(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    cfg: WbufConfig,
    line: usize,
    entries: VecDeque<Entry>,
    /// Completion time of the most recently scheduled entry (the retire
    /// pipeline is strictly FIFO).
    pipe_tail: f64,
}

impl WriteBuffer {
    /// Creates an empty buffer for `line`-byte cache lines.
    pub fn new(cfg: WbufConfig, line: usize) -> Self {
        assert!(line <= 64, "line size must fit the 64-bit byte mask");
        WriteBuffer {
            cfg,
            line,
            entries: VecDeque::new(),
            pipe_tail: 0.0,
        }
    }

    /// Number of entries currently pending.
    pub fn pending(&self) -> usize {
        self.entries.len()
    }

    /// Whether any entry is pending for exactly this full physical line
    /// address (annex bits included).
    pub fn has_pending_line(&self, line_pa: u64) -> bool {
        self.entries.iter().any(|e| e.line_pa == line_pa)
    }

    /// Completion time of the last pending entry, if any.
    pub fn drain_time(&self) -> Option<u64> {
        self.entries.back().map(|e| e.completion.ceil() as u64)
    }

    /// Earliest cycle at which [`WriteBuffer::drain_due`] could retire
    /// anything, if an entry is pending. The retire pipeline is FIFO, so
    /// this is the head's completion; for integer `now`,
    /// `now >= next_due()` exactly when the head is due (`⌈c⌉ <= now` iff
    /// `c <= now`). The port caches this to skip the drain call on the
    /// per-operation fast path.
    pub fn next_due(&self) -> Option<u64> {
        self.entries.front().map(|e| e.completion.ceil() as u64)
    }

    /// Integer completion times of every pending entry, in FIFO (retire)
    /// order. These are the due-times the event engine turns into
    /// `WbufRetire` events: the pipeline is strictly FIFO, so the
    /// sequence is nondecreasing, and each value is exactly the
    /// `completion` the entry will carry when it retires through
    /// [`WriteBuffer::drain_due`] or [`WriteBuffer::drain_all`].
    pub fn due_times(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|e| e.completion.ceil() as u64)
    }

    fn line_base(&self, pa: u64) -> u64 {
        pa & !((self.line as u64) - 1)
    }

    /// Pushes a store of `bytes` at physical address `pa`.
    ///
    /// `local_dram_cy` is the DRAM service cost the entry will pay when it
    /// retires locally (ignored for remote targets, whose interval comes
    /// from their [`RemoteSink`]). Returns the processor-visible cost.
    ///
    /// # Panics
    ///
    /// Panics if the store crosses a line boundary or is empty.
    pub fn push(
        &mut self,
        now: u64,
        pa: u64,
        bytes: &[u8],
        target: WriteTarget,
        local_dram_cy: u64,
    ) -> (PushOutcome, Vec<Retired>) {
        assert!(!bytes.is_empty(), "store must carry at least one byte");
        let line_pa = self.line_base(pa);
        let off = (pa - line_pa) as usize;
        assert!(
            off + bytes.len() <= self.line,
            "store must not cross a line boundary"
        );

        let mut retired = Vec::new();
        let mut cost = self.cfg.store_issue_cy;
        let tnow = now as f64;

        // Write merging: the youngest entry can absorb the store if it is
        // for the same line and destination and is still in the buffer.
        let can_merge = self.cfg.merge
            && self.entries.back().is_some_and(|tail| {
                tail.line_pa == line_pa && tail.target == target && tail.completion > tnow
            });
        if can_merge {
            let line = self.line;
            let tail = self.entries.back_mut().expect("tail exists");
            for (i, b) in bytes.iter().enumerate() {
                tail.data[off + i] = *b;
                tail.mask |= 1 << (off + i);
            }
            if let WriteTarget::Remote(sink) = tail.target {
                // A wider entry takes longer to inject through the shell.
                tail.interval = sink.interval_cy(tail.words(line)) as f64;
                tail.completion = tail.base + tail.interval;
                self.pipe_tail = tail.completion;
            }
            return (
                PushOutcome {
                    cycles: cost,
                    merged: true,
                },
                retired,
            );
        }

        // Stall for a free entry, retiring the head if the buffer is full.
        if self.entries.len() == self.cfg.entries {
            let head_done = self.entries.front().expect("buffer full").completion;
            if head_done > tnow {
                cost += (head_done - tnow).ceil() as u64;
            }
            let head = self.entries.pop_front().expect("buffer full");
            retired.push(Retired {
                line_pa: head.line_pa,
                mask: head.mask,
                data: head.data,
                target: head.target,
                completion: head.completion.ceil() as u64,
            });
        }

        let issue = (now + cost) as f64;
        let mut data = vec![0u8; self.line];
        let mut mask = 0u64;
        for (i, b) in bytes.iter().enumerate() {
            data[off + i] = *b;
            mask |= 1 << (off + i);
        }
        let interval = match target {
            WriteTarget::Local => local_dram_cy as f64 / self.cfg.pipeline as f64,
            WriteTarget::Remote(sink) => {
                let words = bytes.len().div_ceil(8).max(1) as u64;
                sink.interval_cy(words) as f64
            }
        };
        let base = issue.max(self.pipe_tail);
        let completion = base + interval;
        self.pipe_tail = completion;
        self.entries.push_back(Entry {
            line_pa,
            mask,
            data,
            target,
            base,
            interval,
            completion,
        });
        (
            PushOutcome {
                cycles: cost,
                merged: false,
            },
            retired,
        )
    }

    /// Retires every entry whose completion time is at or before `now`.
    pub fn drain_due(&mut self, now: u64) -> Vec<Retired> {
        let mut out = Vec::new();
        while let Some(head) = self.entries.front() {
            if head.completion <= now as f64 {
                let e = self.entries.pop_front().expect("head exists");
                out.push(Retired {
                    line_pa: e.line_pa,
                    mask: e.mask,
                    data: e.data,
                    target: e.target,
                    completion: e.completion.ceil() as u64,
                });
            } else {
                break;
            }
        }
        out
    }

    /// Drains the whole buffer (memory-barrier semantics): returns the
    /// retired entries and the cost in cycles to the issuing processor
    /// (barrier issue + wait for the last entry).
    pub fn drain_all(&mut self, now: u64) -> (u64, Vec<Retired>) {
        let mut cost = self.cfg.mb_issue_cy;
        if let Some(last) = self.entries.back() {
            if last.completion > now as f64 {
                cost += (last.completion - now as f64).ceil() as u64;
            }
        }
        let mut out = Vec::new();
        while let Some(e) = self.entries.pop_front() {
            out.push(Retired {
                line_pa: e.line_pa,
                mask: e.mask,
                data: e.data,
                target: e.target,
                completion: e.completion.ceil() as u64,
            });
        }
        (cost, out)
    }

    /// Resets the retire pipeline (entries must already be drained).
    /// Used by probe harnesses between trials, together with the clock
    /// reset.
    ///
    /// # Panics
    ///
    /// Panics if entries are still pending.
    pub fn reset(&mut self) {
        assert!(
            self.entries.is_empty(),
            "drain the buffer before resetting it"
        );
        self.pipe_tail = 0.0;
    }

    /// Read forwarding: overlays every pending byte for exactly this full
    /// physical line address onto `line_buf` (oldest entries first).
    ///
    /// Annex synonyms have *different* physical addresses and therefore do
    /// not forward — which is precisely the stale-read hazard of
    /// Section 3.4.
    pub fn forward(&self, line_pa: u64, line_buf: &mut [u8]) -> bool {
        let mut any = false;
        for e in &self.entries {
            if e.line_pa == line_pa {
                for (i, b) in line_buf.iter_mut().enumerate().take(self.line) {
                    if e.mask & (1 << i) != 0 {
                        *b = e.data[i];
                    }
                }
                any = true;
            }
        }
        any
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemConfig;

    fn wbuf() -> WriteBuffer {
        let cfg = MemConfig::t3d();
        WriteBuffer::new(cfg.wbuf, cfg.l1.line)
    }

    fn sink() -> RemoteSink {
        RemoteSink {
            pe: 1,
            remote_line_pa: 0x100,
            base_cy: 5,
            per_word_cy: 12,
            ack_rtt_cy: 60,
        }
    }

    #[test]
    fn stores_to_one_line_merge() {
        let mut wb = wbuf();
        for i in 0..4u64 {
            let (out, _) = wb.push(i, 0x100 + i * 8, &[i as u8; 8], WriteTarget::Local, 22);
            assert_eq!(out.merged, i != 0);
        }
        assert_eq!(wb.pending(), 1);
    }

    #[test]
    fn back_to_back_same_line_stores_average_three_cycles() {
        // The 20 ns small-stride plateau of Figure 2: at issue pace, every
        // other store merges and none stall, so the average cost is the
        // 3-cycle issue cost.
        let mut wb = wbuf();
        let mut now = 0u64;
        let n = 256u64;
        for i in 0..n {
            let (out, _) = wb.push(
                now,
                (i / 4) * 32 + (i % 4) * 8,
                &[1; 8],
                WriteTarget::Local,
                22,
            );
            now += out.cycles;
        }
        let avg = now as f64 / n as f64;
        assert!(
            (2.5..4.0).contains(&avg),
            "small-stride store cost {avg} cy"
        );
    }

    #[test]
    fn distinct_lines_occupy_distinct_entries() {
        let mut wb = wbuf();
        for i in 0..4u64 {
            wb.push(i, 0x100 + i * 32, &[1; 8], WriteTarget::Local, 22);
        }
        assert_eq!(wb.pending(), 4);
    }

    #[test]
    fn full_buffer_stalls_until_head_retires() {
        let mut wb = wbuf();
        for i in 0..4u64 {
            wb.push(i, i * 64, &[1; 8], WriteTarget::Local, 22);
        }
        let (out, retired) = wb.push(4, 4 * 64, &[1; 8], WriteTarget::Local, 22);
        assert_eq!(retired.len(), 1, "head was forced out");
        assert!(
            out.cycles > MemConfig::t3d().wbuf.store_issue_cy,
            "store stalled"
        );
    }

    #[test]
    fn steady_state_local_interval_is_quarter_dram_cost() {
        // With back-to-back stores to distinct lines, throughput is
        // limited to one entry per dram/4 = 5.5 cycles: the 35 ns plateau
        // in Figure 2.
        let mut wb = wbuf();
        let mut now = 0u64;
        let n = 64u64;
        for i in 0..n {
            let (out, _) = wb.push(now, i * 64, &[1; 8], WriteTarget::Local, 22);
            now += out.cycles;
        }
        let avg = now as f64 / n as f64;
        assert!(
            (5.0..7.0).contains(&avg),
            "steady-state store cost {avg} cy"
        );
    }

    #[test]
    fn remote_single_word_interval_is_17_cycles() {
        let mut wb = wbuf();
        let mut now = 0u64;
        let n = 64u64;
        for i in 0..n {
            let (out, _) = wb.push(now, i * 64, &[1; 8], WriteTarget::Remote(sink()), 22);
            now += out.cycles;
        }
        let avg = now as f64 / n as f64;
        assert!(
            (16.0..19.0).contains(&avg),
            "steady-state remote store cost {avg} cy"
        );
    }

    #[test]
    fn merged_remote_line_is_cheaper_per_word_than_four_singles() {
        // 4 merged words: 5 + 12*4 = 53 cy per line = ~90 MB/s;
        // 4 single-word entries: 4 * 17 = 68 cy.
        let s = sink();
        assert!(s.interval_cy(4) < 4 * s.interval_cy(1));
    }

    #[test]
    fn forward_matches_only_exact_physical_line() {
        let mut wb = wbuf();
        wb.push(0, 0x100, &[7; 8], WriteTarget::Local, 22);
        let mut buf = [0u8; 32];
        assert!(wb.forward(0x100, &mut buf));
        assert_eq!(buf[0], 7);
        let mut buf2 = [0u8; 32];
        let synonym = 0x100 | (1 << 27); // same location, different annex bits
        assert!(!wb.forward(synonym, &mut buf2), "synonym must NOT forward");
        assert_eq!(buf2[0], 0, "synonym read sees stale bytes");
    }

    #[test]
    fn forward_overlays_youngest_value() {
        let mut wb = wbuf();
        wb.push(0, 0x100, &[1; 8], WriteTarget::Local, 22);
        // A second, non-mergeable write to the same line (force by filling
        // with a different target) — emulate by draining merge window:
        // push to another line in between.
        wb.push(1, 0x200, &[9; 8], WriteTarget::Local, 22);
        wb.push(2, 0x100, &[2; 8], WriteTarget::Local, 22);
        let mut buf = [0u8; 32];
        wb.forward(0x100, &mut buf);
        assert_eq!(buf[0], 2, "youngest pending value wins");
    }

    #[test]
    fn drain_all_reports_cost_and_empties() {
        let mut wb = wbuf();
        for i in 0..4u64 {
            wb.push(i, i * 64, &[1; 8], WriteTarget::Local, 22);
        }
        let (cost, retired) = wb.drain_all(4);
        assert_eq!(retired.len(), 4);
        assert!(cost > MemConfig::t3d().wbuf.mb_issue_cy);
        assert_eq!(wb.pending(), 0);
        // Barrier on an empty buffer costs just the issue.
        let (cost, retired) = wb.drain_all(100);
        assert!(retired.is_empty());
        assert_eq!(cost, MemConfig::t3d().wbuf.mb_issue_cy);
    }

    #[test]
    fn drain_due_respects_completion_times() {
        let mut wb = wbuf();
        wb.push(0, 0, &[1; 8], WriteTarget::Local, 22);
        assert!(wb.drain_due(0).is_empty(), "not yet complete");
        assert_eq!(wb.drain_due(1000).len(), 1);
    }

    #[test]
    fn next_due_agrees_with_drain_due_at_the_boundary() {
        let mut wb = wbuf();
        assert_eq!(wb.next_due(), None, "empty buffer has nothing due");
        wb.push(0, 0, &[1; 8], WriteTarget::Local, 22);
        let due = wb.next_due().expect("one entry pending");
        assert!(
            wb.drain_due(due - 1).is_empty(),
            "one cycle early nothing retires"
        );
        assert_eq!(wb.drain_due(due).len(), 1, "at next_due the head retires");
        assert_eq!(wb.next_due(), None);
    }

    #[test]
    fn merging_remote_entry_extends_interval() {
        let mut wb = wbuf();
        wb.push(0, 0x100, &[1; 8], WriteTarget::Remote(sink()), 22);
        let t1 = wb.drain_time().unwrap();
        wb.push(1, 0x108, &[2; 8], WriteTarget::Remote(sink()), 22);
        let t2 = wb.drain_time().unwrap();
        assert_eq!(wb.pending(), 1, "merged");
        assert!(t2 > t1, "wider entry takes longer to inject");
    }

    #[test]
    fn merging_can_be_disabled() {
        let mut cfg = MemConfig::t3d();
        cfg.wbuf.merge = false;
        let mut wb = WriteBuffer::new(cfg.wbuf, cfg.l1.line);
        wb.push(0, 0x100, &[1; 8], WriteTarget::Local, 22);
        let (out, _) = wb.push(1, 0x108, &[2; 8], WriteTarget::Local, 22);
        assert!(!out.merged, "ablated buffer never merges");
        assert_eq!(wb.pending(), 2);
    }

    #[test]
    #[should_panic(expected = "line boundary")]
    fn push_across_line_panics() {
        let mut wb = wbuf();
        wb.push(0, 28, &[0; 8], WriteTarget::Local, 22);
    }
}
