//! Page-mode DRAM with interleaved banks.
//!
//! The T3D node's memory controller keeps one DRAM page "open" per bank.
//! An access that hits the open page of its bank costs
//! [`DramConfig::page_hit_cy`]; an access that must open a new page costs
//! [`DramConfig::page_miss_cy`]; and a new-page access that lands on the
//! *same bank as the immediately preceding access* cannot overlap the
//! precharge and pays the full memory-cycle time
//! [`DramConfig::bank_busy_cy`].
//!
//! With the T3D parameters this reproduces the three latency plateaus the
//! paper measures in Figure 1: 145 ns for in-page accesses, 205 ns for
//! strides of 16 KB and above (every access off-page, banks rotating), and
//! 264 ns at 64 KB strides (every access off-page on the same bank).

use crate::config::DramConfig;

/// Stateful page-mode DRAM timing model.
///
/// # Example
///
/// ```
/// use t3d_memsys::{Dram, MemConfig};
///
/// let cfg = MemConfig::t3d().dram;
/// let mut dram = Dram::new(cfg);
/// // Cold access opens a page on a fresh bank.
/// assert_eq!(dram.access(0), cfg.page_miss_cy);
/// // Second access to the same page hits it.
/// assert_eq!(dram.access(8), cfg.page_hit_cy);
/// // 64 KB away: same bank, different page -> full memory cycle.
/// assert_eq!(dram.access(64 * 1024), cfg.bank_busy_cy);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    /// Open page id per bank (`None` until first touched).
    open: Vec<Option<u64>>,
    /// Bank used by the most recent access.
    last_bank: Option<u64>,
    /// `log2(page_bytes)` when the page size is a power of two (it is in
    /// every shipped configuration), so the per-access decode is a shift
    /// instead of a division.
    page_shift: Option<u32>,
    /// `banks - 1` when the bank count is a power of two.
    bank_mask: Option<u64>,
}

impl Dram {
    /// Creates a DRAM model with all pages closed.
    pub fn new(cfg: DramConfig) -> Self {
        Dram {
            open: vec![None; cfg.banks as usize],
            last_bank: None,
            page_shift: (cfg.page_bytes.is_power_of_two()).then(|| cfg.page_bytes.trailing_zeros()),
            bank_mask: (cfg.banks.is_power_of_two()).then(|| cfg.banks - 1),
            cfg,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Decodes a physical address to `(page, bank)` in one pass.
    #[inline]
    fn decode(&self, pa: u64) -> (u64, u64) {
        let page = match self.page_shift {
            Some(s) => pa >> s,
            None => pa / self.cfg.page_bytes,
        };
        let bank = match self.bank_mask {
            Some(m) => page & m,
            None => page % self.cfg.banks,
        };
        (page, bank)
    }

    /// Bank addressed by a physical address.
    pub fn bank_of(&self, pa: u64) -> u64 {
        self.decode(pa).1
    }

    /// DRAM page id addressed by a physical address.
    pub fn page_of(&self, pa: u64) -> u64 {
        self.decode(pa).0
    }

    /// Performs one access and returns its cost in cycles, updating the
    /// open-page and last-bank state.
    pub fn access(&mut self, pa: u64) -> u64 {
        let (page, bank) = self.decode(pa);
        let open = self.open[bank as usize];
        let cost = if open == Some(page) {
            self.cfg.page_hit_cy
        } else if self.last_bank == Some(bank) {
            self.cfg.bank_busy_cy
        } else {
            self.cfg.page_miss_cy
        };
        self.open[bank as usize] = Some(page);
        self.last_bank = Some(bank);
        cost
    }

    /// Cost the next access to `pa` *would* pay, without changing state.
    pub fn peek(&self, pa: u64) -> u64 {
        let (page, bank) = self.decode(pa);
        if self.open[bank as usize] == Some(page) {
            self.cfg.page_hit_cy
        } else if self.last_bank == Some(bank) {
            self.cfg.bank_busy_cy
        } else {
            self.cfg.page_miss_cy
        }
    }

    /// Closes all pages (e.g. after a refresh); timing state is reset.
    pub fn reset(&mut self) {
        for p in &mut self.open {
            *p = None;
        }
        self.last_bank = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemConfig;

    fn dram() -> Dram {
        Dram::new(MemConfig::t3d().dram)
    }

    #[test]
    fn sequential_accesses_hit_open_page() {
        let mut d = dram();
        d.access(0);
        for i in 1..100 {
            assert_eq!(
                d.access(i * 32),
                22,
                "sequential access {i} should page-hit"
            );
        }
    }

    #[test]
    fn stride_16k_misses_page_every_access_on_rotating_banks() {
        let mut d = dram();
        d.access(0);
        for i in 1..16 {
            assert_eq!(d.access(i * 16 * 1024), 31, "16 KB stride access {i}");
        }
    }

    #[test]
    fn stride_64k_hits_same_bank_every_access() {
        let mut d = dram();
        d.access(0);
        for i in 1..16 {
            assert_eq!(d.access(i * 64 * 1024), 40, "64 KB stride access {i}");
        }
    }

    #[test]
    fn stride_32k_alternates_banks_and_avoids_worst_case() {
        let mut d = dram();
        d.access(0);
        for i in 1..16 {
            assert_eq!(d.access(i * 32 * 1024), 31, "32 KB stride access {i}");
        }
    }

    #[test]
    fn reopening_a_closed_page_costs_a_miss() {
        let mut d = dram();
        d.access(0);
        d.access(16 * 1024); // bank 1
        d.access(4 * 16 * 1024); // bank 0 again, new page: closes page 0
        d.access(16 * 1024 + 8); // bank 1 page hit, moves last-bank off 0
        assert_eq!(
            d.peek(0),
            31,
            "original page was closed by the bank-0 access"
        );
    }

    #[test]
    fn peek_does_not_change_state() {
        let mut d = dram();
        d.access(0);
        let before = d.clone();
        let _ = d.peek(123456);
        assert_eq!(d.open, before.open);
        assert_eq!(d.last_bank, before.last_bank);
    }

    #[test]
    fn reset_closes_everything() {
        let mut d = dram();
        d.access(0);
        d.reset();
        assert_eq!(d.access(0), 31, "after reset the first access misses again");
    }

    #[test]
    fn bank_mapping_interleaves_at_page_granularity() {
        let d = dram();
        assert_eq!(d.bank_of(0), 0);
        assert_eq!(d.bank_of(16 * 1024), 1);
        assert_eq!(d.bank_of(32 * 1024), 2);
        assert_eq!(d.bank_of(48 * 1024), 3);
        assert_eq!(d.bank_of(64 * 1024), 0);
    }

    #[test]
    fn decode_falls_back_to_division_for_odd_geometries() {
        // No shipped configuration uses these, but the fast shift/mask
        // decode must not be load-bearing: a 3-bank, 3000-byte-page DRAM
        // still maps addresses by plain division.
        let mut cfg = MemConfig::t3d().dram;
        cfg.page_bytes = 3000;
        cfg.banks = 3;
        let d = Dram::new(cfg);
        for pa in [0u64, 2999, 3000, 8999, 9000, 123_456] {
            assert_eq!(d.page_of(pa), pa / 3000, "page of {pa}");
            assert_eq!(d.bank_of(pa), (pa / 3000) % 3, "bank of {pa}");
        }
    }
}
