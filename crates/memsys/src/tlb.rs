//! TLB model with configurable page size and LRU replacement.
//!
//! The paper's Figure 1 analysis shows that the T3D exhibits *no*
//! TLB-attributable latency rise — the designers chose very large pages —
//! while the DEC workstation shows a clear inflection at a stride of 8 KB
//! (its page size). Both behaviours fall out of this one model under the
//! two configurations in [`crate::config`].
//!
//! Because the DTB-Annex index occupies high virtual-address bits on the
//! T3D, remote segments occupy TLB entries of their own; with huge pages,
//! 32 entries comfortably cover all 32 annex segments, which is how the
//! paper resolves its concern in Section 3.4.

use crate::config::TlbConfig;

/// An LRU TLB.
///
/// # Example
///
/// ```
/// use t3d_memsys::{MemConfig, Tlb};
///
/// let mut tlb = Tlb::new(MemConfig::dec_workstation().tlb);
/// assert!(tlb.access(0) > 0, "cold access misses");
/// assert_eq!(tlb.access(4096), 0, "same 8 KB page hits");
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    /// Resident page numbers, most recently used last.
    pages: Vec<u64>,
    misses: u64,
    hits: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.entries > 0, "TLB must have at least one entry");
        Tlb {
            cfg,
            pages: Vec::with_capacity(cfg.entries),
            misses: 0,
            hits: 0,
        }
    }

    /// The configuration this TLB was built with.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Page number containing the given address.
    pub fn page_of(&self, pa: u64) -> u64 {
        pa / self.cfg.page_bytes
    }

    /// Translates one access, returning its cost in cycles (0 on a hit,
    /// [`TlbConfig::miss_cy`] on a miss).
    pub fn access(&mut self, pa: u64) -> u64 {
        let page = self.page_of(pa);
        if let Some(pos) = self.pages.iter().position(|&p| p == page) {
            self.pages.remove(pos);
            self.pages.push(page);
            self.hits += 1;
            0
        } else {
            if self.pages.len() == self.cfg.entries {
                self.pages.remove(0);
            }
            self.pages.push(page);
            self.misses += 1;
            self.cfg.miss_cy
        }
    }

    /// Total misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Drops all translations and resets counters.
    pub fn reset(&mut self) {
        self.pages.clear();
        self.misses = 0;
        self.hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemConfig;

    #[test]
    fn t3d_huge_pages_make_misses_negligible() {
        let mut tlb = Tlb::new(MemConfig::t3d().tlb);
        // Stream over 8 MB — the largest array in Figure 1 — at 8 KB stride.
        let mut cost = 0;
        for i in 0..1024u64 {
            cost += tlb.access(i * 8192);
        }
        // 8 MB / 4 MB pages = 2 compulsory misses only.
        assert_eq!(tlb.misses(), 2);
        assert_eq!(cost, 2 * MemConfig::t3d().tlb.miss_cy);
    }

    #[test]
    fn workstation_pages_thrash_at_large_stride() {
        let cfg = MemConfig::dec_workstation().tlb;
        let mut tlb = Tlb::new(cfg);
        // 64 pages touched round-robin exceed the 32 entries: every access
        // misses, which is the 8 KB-stride inflection in Figure 1 (right).
        for round in 0..3 {
            for i in 0..64u64 {
                let cost = tlb.access(i * cfg.page_bytes);
                if round > 0 {
                    assert_eq!(cost, cfg.miss_cy, "LRU thrash must miss every time");
                }
            }
        }
    }

    #[test]
    fn small_strides_amortize_misses() {
        let cfg = MemConfig::dec_workstation().tlb;
        let mut tlb = Tlb::new(cfg);
        for i in 0..1024u64 {
            tlb.access(i * 32); // 256 accesses per page
        }
        assert_eq!(tlb.misses(), 4, "only compulsory misses");
        assert_eq!(tlb.hits(), 1020);
    }

    #[test]
    fn lru_keeps_hot_page() {
        let mut tlb = Tlb::new(TlbConfig {
            entries: 2,
            page_bytes: 4096,
            miss_cy: 10,
        });
        tlb.access(0); // page 0
        tlb.access(4096); // page 1
        tlb.access(0); // touch page 0 again
        tlb.access(8192); // page 2 evicts page 1 (LRU)
        assert_eq!(tlb.access(0), 0, "page 0 survived");
        assert_eq!(tlb.access(4096), 10, "page 1 was evicted");
    }

    #[test]
    fn reset_clears_state() {
        let mut tlb = Tlb::new(MemConfig::t3d().tlb);
        tlb.access(0);
        tlb.reset();
        assert_eq!(tlb.misses(), 0);
        assert!(tlb.access(0) > 0);
    }
}
