//! Functional + cycle-timing model of the CRAY-T3D local node memory system.
//!
//! This crate models the memory hierarchy that sits underneath the T3D
//! "shell": the DEC Alpha 21064's on-chip direct-mapped, write-through,
//! read-allocate L1 data cache; its four-entry merging write buffer; the
//! Cray-designed page-mode DRAM subsystem with four interleaved banks and
//! *no* second-level cache; and the TLB (huge pages on the T3D). A second
//! configuration models the DEC Alpha *workstation* used as the comparison
//! machine in Figure 1 of the paper (512 KB L2, 8 KB pages).
//!
//! The model is *functional as well as timed*: memory, cache lines and
//! write-buffer entries carry real bytes, so the semantic hazards the paper
//! documents (write-buffer synonym staleness, incoherent cached remote
//! lines) are observable as values, not just as costs.
//!
//! All timing is deterministic virtual time measured in CPU cycles
//! (150 MHz, 6.67 ns on the T3D). The caller owns the clock and passes
//! `now` into each operation; operations return the number of cycles they
//! consumed.
//!
//! # Example
//!
//! ```
//! use t3d_memsys::{MemConfig, MemPort, WriteTarget};
//!
//! let mut port = MemPort::new(MemConfig::t3d());
//! let mut now = 0u64;
//! // A cold read misses the L1 and pays the full DRAM access (~22 cycles).
//! let mut buf = [0u8; 8];
//! let cost = port.read(now, 0x1000, &mut buf);
//! assert!(cost >= port.config().dram.page_hit_cy);
//! now += cost;
//! // The second read of the same line hits in the cache (1 cycle).
//! let cost = port.read(now, 0x1008, &mut buf);
//! assert_eq!(cost, port.config().l1.hit_cy);
//! ```

// `deny` rather than `forbid`: `MemArena::new` carries the crate's one
// audited `#[allow(unsafe_code)]` block (an in-place `Box<[u8]>` →
// `Box<[AtomicU8]>` reinterpretation that keeps the zeroed allocation
// on the calloc fast path). Everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod cache;
pub mod config;
pub mod dram;
pub mod l2;
pub mod port;
pub mod tlb;
pub mod wbuf;

pub use arena::MemArena;
pub use cache::L1Cache;
pub use config::{DramConfig, L2Config, MemConfig, TlbConfig, WbufConfig, CYCLE_NS};
pub use dram::Dram;
pub use l2::L2Cache;
pub use port::{MemPort, PortStats};
pub use tlb::Tlb;
pub use wbuf::{RemoteSink, Retired, WriteBuffer, WriteTarget};

/// Converts a cycle count to nanoseconds at the given clock (MHz).
///
/// ```
/// assert!((t3d_memsys::cycles_to_ns(150, 150.0) - 1000.0).abs() < 1e-9);
/// ```
pub fn cycles_to_ns(cycles: u64, clock_mhz: f64) -> f64 {
    cycles as f64 * 1000.0 / clock_mhz
}

/// Converts nanoseconds to (rounded) cycles at the given clock (MHz).
///
/// ```
/// assert_eq!(t3d_memsys::ns_to_cycles(1000.0, 150.0), 150);
/// ```
pub fn ns_to_cycles(ns: f64, clock_mhz: f64) -> u64 {
    (ns * clock_mhz / 1000.0).round() as u64
}
