//! Configuration of the simulated memory hierarchy.
//!
//! Two stock configurations are provided, matching the two machines the
//! paper profiles in Section 2:
//!
//! * [`MemConfig::t3d`] — the CRAY-T3D node: 8 KB direct-mapped L1,
//!   no L2, fast page-mode DRAM (145 ns), huge pages (no TLB cost in
//!   practice).
//! * [`MemConfig::dec_workstation`] — the DEC Alpha workstation used as
//!   the comparison machine in Figure 1: same 21064 core and L1, plus a
//!   512 KB L2 and a conventional 8 KB-page TLB, but slower main memory
//!   (300 ns).
//!
//! The *primitive* numbers here are the bottom-most measurements reported
//! by the paper; everything else the paper reports is emergent from the
//! mechanisms in this crate.

/// Nanoseconds per cycle on the 150 MHz Alpha 21064 used by the T3D.
pub const CYCLE_NS: f64 = 1000.0 / 150.0;

/// Geometry and hit cost of the on-chip L1 data cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Total capacity in bytes (8 KB on the 21064).
    pub bytes: usize,
    /// Line size in bytes (32 B on the 21064).
    pub line: usize,
    /// Average cost of a load hit, in cycles.
    pub hit_cy: u64,
}

/// Timing of the page-mode DRAM subsystem behind the caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Bytes covered by one DRAM page (and one bank-interleave chunk).
    ///
    /// The paper infers 16 KB: "strides of 16 KB or greater result in
    /// off-page DRAM accesses with each subsequent load".
    pub page_bytes: u64,
    /// Number of interleaved banks (4 on the T3D node).
    pub banks: u64,
    /// Cost in cycles of an access that hits the open page (22 cy /
    /// 145 ns on the T3D).
    pub page_hit_cy: u64,
    /// Cost of an access that misses the open page but lands on a
    /// different bank than the previous access (31 cy / 205 ns).
    pub page_miss_cy: u64,
    /// Cost of an access that misses the open page on the *same* bank as
    /// the previous access, exposing the full memory-cycle time
    /// (40 cy / 264 ns).
    pub bank_busy_cy: u64,
}

/// TLB geometry and miss cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of data-TLB entries (32 on the 21064).
    pub entries: usize,
    /// Page size in bytes. The T3D uses huge pages (we model 4 MB, which
    /// makes TLB misses unobservable, as the paper found); the DEC
    /// workstation uses 8 KB pages.
    pub page_bytes: u64,
    /// Cost of a TLB miss, in cycles.
    pub miss_cy: u64,
}

/// Optional board-level L2 cache (present only on the DEC workstation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Total capacity in bytes (512 KB on the workstation).
    pub bytes: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Cost of an L2 hit, in cycles.
    pub hit_cy: u64,
}

/// Write buffer geometry and costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WbufConfig {
    /// Number of entries (4 on the 21064, each one cache line wide).
    pub entries: usize,
    /// Cycles to issue a store that finds buffer space (or merges).
    pub store_issue_cy: u64,
    /// Depth of the memory pipeline draining the buffer: in steady state
    /// one local entry retires every `dram_cost / pipeline` cycles. The
    /// paper derives the value 4 from the 145 ns / 35 ns ratio.
    pub pipeline: u64,
    /// Issue cost of a memory-barrier instruction (4 cy, from the
    /// prefetch cost breakdown in Section 5.2).
    pub mb_issue_cy: u64,
    /// Whether stores to the same line merge into one entry (true on
    /// the real 21064; disable for the merging ablation).
    pub merge: bool,
}

/// Complete configuration of a node's local memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Clock rate in MHz (150 on both machines modeled).
    pub clock_mhz: u64,
    /// L1 data cache.
    pub l1: L1Config,
    /// Optional second-level cache.
    pub l2: Option<L2Config>,
    /// Write buffer.
    pub wbuf: WbufConfig,
    /// DRAM subsystem.
    pub dram: DramConfig,
    /// TLB.
    pub tlb: TlbConfig,
    /// Size of the node's local memory in bytes.
    pub mem_bytes: usize,
    /// Number of low physical-address bits that form the local memory
    /// offset; bits above them carry the DTB-Annex index (27 on the T3D,
    /// giving the 128 MB per-segment regions described in Section 3.2).
    pub offset_bits: u32,
}

impl MemConfig {
    /// The CRAY-T3D node configuration (Section 2 of the paper).
    pub fn t3d() -> Self {
        MemConfig {
            clock_mhz: 150,
            l1: L1Config {
                bytes: 8 * 1024,
                line: 32,
                hit_cy: 1,
            },
            l2: None,
            wbuf: WbufConfig {
                entries: 4,
                store_issue_cy: 3,
                pipeline: 4,
                mb_issue_cy: 4,
                merge: true,
            },
            dram: DramConfig {
                page_bytes: 16 * 1024,
                banks: 4,
                page_hit_cy: 22,
                page_miss_cy: 31,
                bank_busy_cy: 40,
            },
            tlb: TlbConfig {
                entries: 32,
                page_bytes: 4 * 1024 * 1024,
                miss_cy: 25,
            },
            mem_bytes: 16 * 1024 * 1024,
            offset_bits: 27,
        }
    }

    /// The DEC Alpha workstation configuration used as the Figure 1
    /// comparison machine: same 21064 core, plus a 512 KB L2, 8 KB pages
    /// and 300 ns (45 cycle) main memory.
    pub fn dec_workstation() -> Self {
        MemConfig {
            clock_mhz: 150,
            l1: L1Config {
                bytes: 8 * 1024,
                line: 32,
                hit_cy: 1,
            },
            l2: Some(L2Config {
                bytes: 512 * 1024,
                line: 32,
                hit_cy: 10,
            }),
            wbuf: WbufConfig {
                entries: 4,
                store_issue_cy: 3,
                pipeline: 4,
                mb_issue_cy: 4,
                merge: true,
            },
            dram: DramConfig {
                page_bytes: 16 * 1024,
                banks: 4,
                page_hit_cy: 45,
                page_miss_cy: 54,
                bank_busy_cy: 63,
            },
            tlb: TlbConfig {
                entries: 32,
                page_bytes: 8 * 1024,
                miss_cy: 25,
            },
            mem_bytes: 16 * 1024 * 1024,
            offset_bits: 32,
        }
    }

    /// Nanoseconds per cycle for this configuration.
    pub fn cycle_ns(&self) -> f64 {
        1000.0 / self.clock_mhz as f64
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::t3d()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t3d_matches_published_geometry() {
        let c = MemConfig::t3d();
        assert_eq!(c.l1.bytes, 8192);
        assert_eq!(c.l1.line, 32);
        assert!(c.l2.is_none());
        assert_eq!(c.wbuf.entries, 4);
        assert_eq!(c.dram.page_hit_cy, 22); // 145 ns
        assert_eq!(c.dram.bank_busy_cy, 40); // 264 ns worst case
    }

    #[test]
    fn workstation_has_l2_and_small_pages() {
        let c = MemConfig::dec_workstation();
        assert_eq!(c.l2.unwrap().bytes, 512 * 1024);
        assert_eq!(c.tlb.page_bytes, 8 * 1024);
        assert_eq!(c.dram.page_hit_cy, 45); // 300 ns
    }

    #[test]
    fn cycle_ns_is_6_67_at_150mhz() {
        let c = MemConfig::t3d();
        assert!((c.cycle_ns() - 6.6667).abs() < 1e-3);
    }
}
