//! The node's memory port: L1 + write buffer + TLB (+ optional L2) in
//! front of page-mode DRAM and the actual memory array.
//!
//! [`MemPort`] is the single gateway between a simulated processor and its
//! local memory, exactly as the paper observes ("the memory system is the
//! primary gateway to the shell", Section 2). All the composite local
//! behaviours measured in Figures 1 and 2 — the 6.67 ns cached plateau,
//! the 145/205/264 ns DRAM plateaus, write-merging, the 35 ns steady-state
//! store cost and the full-buffer stall — emerge here from the component
//! models, with no curve-specific code.
//!
//! Physical addresses passed to the timed operations are *full* physical
//! addresses: on the T3D the DTB-Annex index occupies the bits above
//! [`MemConfig::offset_bits`]. The cache, write buffer and TLB key on the
//! full address (synonym semantics); DRAM and the memory array key on the
//! local offset only.

use crate::arena::MemArena;
use crate::cache::L1Cache;
use crate::config::MemConfig;
use std::sync::Arc;
use t3d_perf::{CostClass, Ledger};

/// Counters of memory-system events (instrumentation for the gray-box
/// analyses: hit ratios, merge rates, stall rates).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStats {
    /// L1 load hits.
    pub l1_hits: u64,
    /// L1 load misses.
    pub l1_misses: u64,
    /// L2 hits (workstation configuration only).
    pub l2_hits: u64,
    /// Stores that merged into a pending write-buffer entry.
    pub wbuf_merges: u64,
    /// Stores that stalled for a free write-buffer entry.
    pub wbuf_stalls: u64,
    /// TLB misses observed by this port's accesses.
    pub tlb_misses: u64,
}

impl PortStats {
    /// Load hit ratio (0..1); zero when no loads were issued.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }
}
use crate::dram::Dram;
use crate::l2::L2Cache;
use crate::tlb::Tlb;
use crate::wbuf::{Retired, WriteBuffer, WriteTarget};

/// A node's complete local memory system, functional and timed.
///
/// # Example
///
/// ```
/// use t3d_memsys::{MemConfig, MemPort};
///
/// let mut port = MemPort::new(MemConfig::t3d());
/// let c1 = port.write(0, 0x2000, &7u64.to_le_bytes());
/// let mut buf = [0u8; 8];
/// let _ = port.read(c1, 0x2000, &mut buf);
/// assert_eq!(u64::from_le_bytes(buf), 7, "store forwards to the load");
/// ```
#[derive(Debug)]
pub struct MemPort {
    cfg: MemConfig,
    tlb: Tlb,
    l1: L1Cache,
    l2: Option<L2Cache>,
    wbuf: WriteBuffer,
    dram: Dram,
    mem: Arc<MemArena>,
    offset_mask: u64,
    /// Remote writes that have retired from the write buffer and await
    /// delivery by the machine layer.
    outbox: Vec<Retired>,
    /// Cached [`WriteBuffer::next_due`] (`u64::MAX` when the buffer is
    /// empty). Every timed operation calls [`MemPort::apply_due`]; this
    /// cache lets that call return without touching the write buffer at
    /// all while nothing can be due — the common case between drains.
    /// Refreshed after every operation that mutates the buffer.
    wbuf_next_due: u64,
    stats: PortStats,
    /// Whether the attribution ledger collects (see [`MemPort::set_perf`]).
    perf_on: bool,
    /// Cycle attribution for the costs this port *returns* to its caller.
    /// The machine layer adds every returned cost to the PE clock, so
    /// crediting exactly the returned cycles here keeps the conservation
    /// invariant: port ledger + node ledger = elapsed clock.
    perf: Ledger,
}

impl MemPort {
    /// Creates a memory port with zero-filled memory.
    pub fn new(cfg: MemConfig) -> Self {
        assert!(
            (cfg.mem_bytes as u64) <= (1u64 << cfg.offset_bits.min(63)),
            "memory must fit in the local offset field"
        );
        MemPort {
            tlb: Tlb::new(cfg.tlb),
            l1: L1Cache::new(cfg.l1),
            l2: cfg.l2.map(L2Cache::new),
            wbuf: WriteBuffer::new(cfg.wbuf, cfg.l1.line),
            dram: Dram::new(cfg.dram),
            mem: Arc::new(MemArena::new(cfg.mem_bytes)),
            outbox: Vec::new(),
            wbuf_next_due: u64::MAX,
            stats: PortStats::default(),
            perf_on: false,
            perf: Ledger::default(),
            offset_mask: if cfg.offset_bits >= 64 {
                u64::MAX
            } else {
                (1u64 << cfg.offset_bits) - 1
            },
            cfg,
        }
    }

    /// The configuration this port was built with.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Local-memory offset named by a full physical address.
    pub fn offset_of(&self, pa: u64) -> u64 {
        pa & self.offset_mask
    }

    fn line_mask(&self) -> u64 {
        (self.cfg.l1.line as u64) - 1
    }

    fn check_range(&self, pa: u64, len: usize) {
        let off = self.offset_of(pa) as usize;
        assert!(
            off + len <= self.mem.len(),
            "access at offset {off:#x} len {len} exceeds local memory ({} bytes)",
            self.mem.len()
        );
    }

    /// Reads `buf.len()` bytes at `pa` through the cache hierarchy,
    /// returning the cost in cycles.
    ///
    /// Reads bypass independent pending writes; bytes pending in the write
    /// buffer under the *same* full physical address are forwarded, but a
    /// synonym's bytes are not (the Section 3.4 hazard).
    ///
    /// # Panics
    ///
    /// Panics if the access exceeds local memory.
    pub fn read(&mut self, now: u64, pa: u64, buf: &mut [u8]) -> u64 {
        self.check_range(pa, buf.len());
        self.apply_due(now);
        let tlb_cost = self.tlb.access(pa);
        if tlb_cost > 0 {
            self.stats.tlb_misses += 1;
        }
        self.credit(CostClass::Tlb, tlb_cost);
        let mut cost = tlb_cost;
        let line = self.cfg.l1.line as u64;
        let mut done = 0usize;
        while done < buf.len() {
            let cur = pa + done as u64;
            let line_pa = cur & !self.line_mask();
            let off_in_line = (cur & self.line_mask()) as usize;
            let take = (buf.len() - done).min(self.cfg.l1.line - off_in_line);
            if let Some(data) = self.l1.lookup(cur) {
                buf[done..done + take].copy_from_slice(&data[off_in_line..off_in_line + take]);
                cost += self.cfg.l1.hit_cy;
                self.stats.l1_hits += 1;
                self.credit(CostClass::L1Hit, self.cfg.l1.hit_cy);
            } else {
                // L1 miss: go to L2 (workstation) or DRAM, fill the line.
                self.stats.l1_misses += 1;
                let l2_hit = self
                    .l2
                    .as_mut()
                    .map(|l2| (l2.access(cur), l2.config().hit_cy));
                if matches!(l2_hit, Some((true, _))) {
                    self.stats.l2_hits += 1;
                }
                cost += match l2_hit {
                    Some((true, hit_cy)) => {
                        self.credit(CostClass::L2Hit, hit_cy);
                        hit_cy
                    }
                    _ => {
                        let dram_cy = self.dram.access(self.offset_of(line_pa));
                        self.credit(self.classify_dram(dram_cy), dram_cy);
                        dram_cy
                    }
                };
                let mut line_buf = vec![0u8; line as usize];
                self.mem.read(self.offset_of(line_pa), &mut line_buf);
                // Same-PA pending stores forward into the fill.
                self.wbuf.forward(line_pa, &mut line_buf);
                self.l1.fill(line_pa, &line_buf);
                buf[done..done + take].copy_from_slice(&line_buf[off_in_line..off_in_line + take]);
            }
            done += take;
        }
        cost
    }

    /// Writes `bytes` at `pa` into local memory through the write buffer,
    /// returning the cost in cycles (issue plus any full-buffer stall).
    ///
    /// # Panics
    ///
    /// Panics if the access exceeds local memory or crosses a cache line.
    pub fn write(&mut self, now: u64, pa: u64, bytes: &[u8]) -> u64 {
        self.write_to(now, pa, bytes, WriteTarget::Local)
    }

    /// Writes `bytes` at `pa` with an explicit target (the machine layer
    /// uses this to route remote stores through the shell). Returns the
    /// processor cost; any *remote* entries that retire as a side effect
    /// are queued in the outbox (local retires are applied to memory
    /// internally).
    pub fn write_to(&mut self, now: u64, pa: u64, bytes: &[u8], target: WriteTarget) -> u64 {
        if matches!(target, WriteTarget::Local) {
            self.check_range(pa, bytes.len());
        }
        self.apply_due(now);
        let mut cost = self.tlb.access(pa);
        self.credit(CostClass::Tlb, cost);
        // Write-through: a store that hits updates the cached line in
        // place. (Remote stores do not touch the local cache.)
        if matches!(target, WriteTarget::Local) {
            self.l1.update(pa, bytes);
        }
        let dram_cy = match target {
            WriteTarget::Local => self.dram.access(self.offset_of(pa & !self.line_mask())),
            WriteTarget::Remote(_) => 0,
        };
        let (out, retired) = self.wbuf.push(now + cost, pa, bytes, target, dram_cy);
        self.refresh_next_due();
        if out.merged {
            self.stats.wbuf_merges += 1;
        }
        if out.cycles > self.cfg.wbuf.store_issue_cy {
            self.stats.wbuf_stalls += 1;
        }
        let issue = out.cycles.min(self.cfg.wbuf.store_issue_cy);
        self.credit(CostClass::WbufIssue, issue);
        self.credit(CostClass::WbufStall, out.cycles - issue);
        cost += out.cycles;
        self.apply_retired(retired);
        cost
    }

    /// Issues a memory barrier: drains the write buffer and returns the
    /// cost in cycles. Retired remote entries land in the outbox.
    pub fn memory_barrier(&mut self, now: u64) -> u64 {
        let (cost, retired) = self.wbuf.drain_all(now);
        self.wbuf_next_due = u64::MAX;
        self.apply_retired(retired);
        self.credit(CostClass::WbufDrain, cost);
        cost
    }

    /// Applies every write whose retire time has passed; remote entries
    /// land in the outbox.
    pub fn apply_due(&mut self, now: u64) {
        if now < self.wbuf_next_due {
            return;
        }
        let retired = self.wbuf.drain_due(now);
        self.refresh_next_due();
        self.apply_retired(retired);
    }

    fn refresh_next_due(&mut self) {
        self.wbuf_next_due = self.wbuf.next_due().unwrap_or(u64::MAX);
    }

    /// Takes the remote writes that have retired since the last call; the
    /// machine layer delivers them to their target nodes.
    pub fn take_outbox(&mut self) -> Vec<Retired> {
        std::mem::take(&mut self.outbox)
    }

    fn apply_retired(&mut self, retired: Vec<Retired>) {
        for r in retired {
            match r.target {
                WriteTarget::Local => {
                    let base = self.offset_of(r.line_pa);
                    self.mem
                        .write_masked(base, &r.data[..self.cfg.l1.line], r.mask);
                }
                WriteTarget::Remote(_) => self.outbox.push(r),
            }
        }
    }

    /// Charges one TLB translation for `pa` (the remote-access path
    /// translates through the local TLB before reaching the shell).
    pub fn tlb_access(&mut self, pa: u64) -> u64 {
        let cost = self.tlb.access(pa);
        self.credit(CostClass::Tlb, cost);
        cost
    }

    /// Overlays bytes pending in the write buffer for exactly this full
    /// physical line address onto `line_buf`. Used by the machine layer
    /// to forward same-PA pending remote stores to remote reads.
    pub fn forward_pending(&self, line_pa: u64, line_buf: &mut [u8]) -> bool {
        self.wbuf.forward(line_pa, line_buf)
    }

    /// Whether a write is pending for this full physical line address.
    pub fn has_pending_line(&self, line_pa: u64) -> bool {
        self.wbuf.has_pending_line(line_pa)
    }

    /// Number of pending write-buffer entries.
    pub fn wbuf_pending(&self) -> usize {
        self.wbuf.pending()
    }

    /// Integer completion times of every pending write-buffer entry, in
    /// FIFO retire order (nondecreasing). The event engine schedules one
    /// `WbufRetire` event per value and retires each via
    /// [`MemPort::apply_due`] at exactly its due time.
    pub fn wbuf_due_times(&self) -> impl Iterator<Item = u64> + '_ {
        self.wbuf.due_times()
    }

    /// Services a read request arriving from a *remote* node: reads
    /// straight from DRAM (never this node's cache or write buffer — the
    /// shell path goes to the memory controller) and returns the DRAM
    /// cost in cycles.
    ///
    /// # Panics
    ///
    /// Panics if the access exceeds local memory.
    pub fn service_remote_read(&mut self, offset: u64, buf: &mut [u8]) -> u64 {
        assert!(
            offset as usize + buf.len() <= self.mem.len(),
            "remote read beyond local memory"
        );
        let cost = self.dram.access(offset);
        self.mem.read(offset, buf);
        cost
    }

    /// Services a write arriving from a remote node: updates memory and —
    /// in the cache-invalidate mode the Split-C implementation must run in
    /// (Section 4.4) — blindly flushes the corresponding local cache line.
    /// Returns the DRAM cost in cycles.
    ///
    /// # Panics
    ///
    /// Panics if the access exceeds local memory.
    pub fn service_remote_write(&mut self, offset: u64, bytes: &[u8], mask: Option<u64>) -> u64 {
        assert!(
            offset as usize + bytes.len() <= self.mem.len(),
            "remote write beyond local memory"
        );
        let cost = self.dram.access(offset);
        match mask {
            None => self.mem.write(offset, bytes),
            Some(m) => self.mem.write_masked(offset, bytes, m),
        }
        // Cache-invalidate mode: flush the line whether or not it is
        // cached (a "spurious" flush when it is not).
        self.l1.invalidate(offset);
        cost
    }

    /// Installs a line fetched from a remote node into the local L1 under
    /// its full (annex-bearing) physical address. Used by cached remote
    /// reads; such lines are *not* kept coherent by any hardware.
    pub fn install_remote_line(&mut self, pa: u64, data: &[u8]) {
        self.l1.fill(pa & !self.line_mask(), data);
    }

    /// Flushes one local cache line (the explicit flush the compiler must
    /// emit after cached remote reads). Returns the paper's measured cost
    /// of 23 cycles — "equivalent to accessing main memory".
    pub fn flush_line(&mut self, pa: u64) -> u64 {
        self.l1.invalidate(pa);
        23
    }

    /// Reads bytes functionally (no timing, no cache effects). Test and
    /// setup helper.
    pub fn peek_mem(&self, offset: u64, buf: &mut [u8]) {
        self.mem.read(offset, buf);
    }

    /// Writes bytes functionally (no timing, no cache effects), flushing
    /// any stale cached copy. Test and setup helper.
    pub fn poke_mem(&mut self, offset: u64, bytes: &[u8]) {
        self.mem.write(offset, bytes);
    }

    /// Shared handle to the raw memory bytes. The sharded phase engine
    /// clones this `Arc` so remote reads can observe other nodes' memory
    /// while each node's timing state stays thread-private.
    pub fn mem_arena(&self) -> &Arc<MemArena> {
        &self.mem
    }

    /// The L1 cache (for instrumentation and tests).
    pub fn l1(&self) -> &L1Cache {
        &self.l1
    }

    /// Mutable access to the L1 cache (whole-cache flushes etc.).
    pub fn l1_mut(&mut self) -> &mut L1Cache {
        &mut self.l1
    }

    /// The TLB (for instrumentation and tests).
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// The DRAM model (for instrumentation and tests).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Mutable DRAM access (the shell's BLT and remote-service paths
    /// charge DRAM time directly).
    pub fn dram_mut(&mut self) -> &mut Dram {
        &mut self.dram
    }

    #[inline]
    fn credit(&mut self, class: CostClass, cycles: u64) {
        if self.perf_on && cycles > 0 {
            self.perf.add(class, cycles);
        }
    }

    /// Classifies a cost returned by [`Dram::access`] against the
    /// configured plateau values. `Dram::access` returns exactly one of
    /// the three configured costs, so equality is a faithful decode;
    /// `bank_busy` is checked first in case configurations alias values.
    fn classify_dram(&self, cy: u64) -> CostClass {
        let d = &self.cfg.dram;
        if cy == d.bank_busy_cy {
            CostClass::DramBankBusy
        } else if cy == d.page_miss_cy {
            CostClass::DramPageMiss
        } else {
            CostClass::DramPageHit
        }
    }

    /// Switches attribution collection on or off, clearing the ledger
    /// either way. The machine layer drives this from its perf mode.
    pub fn set_perf(&mut self, on: bool) {
        self.perf_on = on;
        self.perf.clear();
    }

    /// The cycle-attribution ledger for costs this port has returned
    /// since [`MemPort::set_perf`] last ran.
    pub fn perf_ledger(&self) -> &Ledger {
        &self.perf
    }

    /// The event counters accumulated so far.
    pub fn stats(&self) -> PortStats {
        self.stats
    }

    /// Clears the event counters.
    pub fn clear_stats(&mut self) {
        self.stats = PortStats::default();
    }

    /// Resets all timing state (caches, TLB, write buffer, DRAM pages)
    /// while preserving memory contents. Probes use this between trials.
    pub fn reset_timing(&mut self) {
        self.l1.invalidate_all();
        if let Some(l2) = &mut self.l2 {
            l2.invalidate_all();
        }
        self.tlb.reset();
        self.dram.reset();
        // Any pending writes are applied instantly; remote entries land
        // in the outbox for the machine layer to deliver.
        let (_, retired) = self.wbuf.drain_all(u64::MAX / 2);
        self.wbuf_next_due = u64::MAX;
        self.apply_retired(retired);
        self.wbuf.reset();
    }
}

impl Clone for MemPort {
    /// Deep copy: the clone gets its **own** memory arena. Ports are
    /// never implicitly aliased; explicit cross-thread sharing goes
    /// through [`MemPort::mem_arena`].
    fn clone(&self) -> Self {
        MemPort {
            cfg: self.cfg,
            tlb: self.tlb.clone(),
            l1: self.l1.clone(),
            l2: self.l2.clone(),
            wbuf: self.wbuf.clone(),
            dram: self.dram.clone(),
            mem: Arc::new(self.mem.deep_clone()),
            offset_mask: self.offset_mask,
            outbox: self.outbox.clone(),
            wbuf_next_due: self.wbuf_next_due,
            stats: self.stats,
            perf_on: self.perf_on,
            perf: self.perf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port() -> MemPort {
        MemPort::new(MemConfig::t3d())
    }

    #[test]
    fn cold_read_pays_dram_then_hits() {
        let mut p = port();
        let mut buf = [0u8; 8];
        let c0 = p.read(0, 0x4000, &mut buf);
        assert!(c0 >= 22);
        let c1 = p.read(c0, 0x4008, &mut buf);
        assert_eq!(c1, 1, "same line now cached");
    }

    #[test]
    fn store_then_load_same_pa_forwards() {
        let mut p = port();
        let c = p.write(0, 0x5000, &0xDEADBEEFu64.to_le_bytes());
        let mut buf = [0u8; 8];
        p.read(c, 0x5000, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 0xDEADBEEF);
    }

    #[test]
    fn synonym_read_sees_stale_memory() {
        // The Section 3.4 hazard: a write in the buffer under one PA is
        // invisible to a read under a synonym PA.
        let mut p = port();
        p.poke_mem(0x6000, &1u64.to_le_bytes());
        let annex_bit = 1u64 << 27;
        let c = p.write(0, 0x6000, &2u64.to_le_bytes());
        let mut buf = [0u8; 8];
        p.read(c, 0x6000 | annex_bit, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 1, "synonym read must be stale");
        // After a memory barrier the write is visible to everyone.
        let mb = p.memory_barrier(c);
        let mut buf = [0u8; 8];
        // The stale line cached under the synonym must be flushed first
        // (direct-mapped: the barrier does not invalidate it, but a fresh
        // synonym read after invalidation sees memory).
        p.l1_mut().invalidate(0x6000 | annex_bit);
        p.read(c + mb, 0x6000 | annex_bit, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 2);
    }

    #[test]
    fn write_hit_updates_cache_line() {
        let mut p = port();
        let mut buf = [0u8; 8];
        let mut now = p.read(0, 0x7000, &mut buf); // allocate line
        now += p.write(now, 0x7000, &9u64.to_le_bytes());
        let c = p.read(now, 0x7000, &mut buf);
        assert_eq!(c, 1, "read hits the updated line");
        assert_eq!(u64::from_le_bytes(buf), 9);
    }

    #[test]
    fn write_miss_does_not_allocate() {
        let mut p = port();
        let now = p.write(0, 0x8000, &1u64.to_le_bytes());
        assert!(!p.l1().contains(0x8000));
        let mut buf = [0u8; 8];
        let c = p.read(now, 0x8000, &mut buf);
        assert!(c >= 22, "read after write-miss still misses");
        assert_eq!(u64::from_le_bytes(buf), 1, "but forwards the pending value");
    }

    #[test]
    fn remote_write_service_invalidates_cached_line() {
        let mut p = port();
        let mut buf = [0u8; 8];
        let now = p.read(0, 0x9000, &mut buf); // cache the line
        assert!(p.l1().contains(0x9000));
        p.service_remote_write(0x9000, &5u64.to_le_bytes(), None);
        assert!(!p.l1().contains(0x9000), "cache-invalidate mode flushed it");
        p.read(now + 100, 0x9000, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 5);
    }

    #[test]
    fn remote_read_service_bypasses_cache_and_wbuf() {
        let mut p = port();
        p.poke_mem(0xA000, &3u64.to_le_bytes());
        p.write(0, 0xA000, &4u64.to_le_bytes()); // pending in wbuf
        let mut buf = [0u8; 8];
        let cost = p.service_remote_read(0xA000, &mut buf);
        assert!(cost >= 22);
        assert_eq!(
            u64::from_le_bytes(buf),
            3,
            "remote sees memory, not the buffer"
        );
    }

    #[test]
    fn install_remote_line_goes_stale_when_owner_updates() {
        let mut p = port();
        let remote_pa = (3u64 << 27) | 0x100;
        p.install_remote_line(remote_pa, &[7u8; 32]);
        let mut buf = [0u8; 8];
        let warm = p.read(0, remote_pa, &mut buf); // warms the TLB entry
        let c = p.read(warm, remote_pa, &mut buf);
        assert_eq!(c, 1, "cached remote line hits locally");
        assert_eq!(buf[0], 7, "value is the (possibly stale) cached copy");
    }

    #[test]
    fn streaming_large_array_shows_memory_plateau() {
        // Miniature Figure 1: 64 KB array, 32 B stride -> every access a
        // page-hit DRAM miss (~22 cycles + hit cost).
        let mut p = port();
        let mut now = 0u64;
        let n = 2048u64;
        // Warm pass (allocates nothing useful: array >> cache).
        for i in 0..n {
            let mut b = [0u8; 8];
            now += p.read(now, i * 32, &mut b);
        }
        let start = now;
        for i in 0..n {
            let mut b = [0u8; 8];
            now += p.read(now, i * 32, &mut b);
        }
        let avg = (now - start) as f64 / n as f64;
        assert!((21.0..25.0).contains(&avg), "average miss cost {avg} cy");
    }

    #[test]
    fn small_array_fits_in_cache_at_one_cycle() {
        let mut p = port();
        let mut now = 0u64;
        for _ in 0..2 {
            for i in 0..256u64 {
                let mut b = [0u8; 8];
                now += p.read(now, i * 32, &mut b); // 8 KB working set
            }
        }
        // Second pass must have been all hits.
        let mut cost = 0;
        for i in 0..256u64 {
            let mut b = [0u8; 8];
            cost += p.read(now + cost, i * 32, &mut b);
        }
        assert_eq!(cost, 256, "one cycle per cached read");
    }

    #[test]
    fn reset_timing_preserves_memory() {
        let mut p = port();
        let c = p.write(0, 0xB000, &42u64.to_le_bytes());
        let _ = p.memory_barrier(c);
        p.reset_timing();
        let mut buf = [0u8; 8];
        p.peek_mem(0xB000, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 42);
        assert_eq!(p.l1().valid_lines(), 0);
    }

    #[test]
    fn apply_due_retires_exactly_at_the_buffered_completion() {
        // The port caches the write buffer's next-due time to skip the
        // drain call between events; the cache must not delay retirement.
        let mut p = port();
        let _ = p.write(0, 0xC000, &7u64.to_le_bytes());
        assert_eq!(p.wbuf_pending(), 1);
        let mut t = 0;
        while p.wbuf_pending() > 0 {
            t += 1;
            p.apply_due(t);
            assert!(t < 1000, "entry never retired");
        }
        let mut buf = [0u8; 8];
        p.peek_mem(0xC000, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 7, "retired write reached memory");
    }

    #[test]
    fn stats_track_hits_misses_merges_and_stalls() {
        let mut p = port();
        let mut now = 0u64;
        // Stride-8 sweep of 2 KB: 1 miss + 3 hits per 32 B line.
        for i in 0..256u64 {
            let mut b = [0u8; 8];
            now += p.read(now, i * 8, &mut b);
        }
        let s = p.stats();
        assert_eq!(s.l1_misses, 64);
        assert_eq!(s.l1_hits, 192);
        assert!((s.hit_ratio() - 0.75).abs() < 1e-9);
        // Same-line stores merge (issue outpaces nothing: no stalls)...
        p.clear_stats();
        for i in 0..64u64 {
            now += p.write(now, 0x4000 + i * 8, &[1; 8]);
        }
        assert!(
            p.stats().wbuf_merges >= 24,
            "merges: {}",
            p.stats().wbuf_merges
        );
        // ...while distinct-line bursts outpace the retire pipeline and
        // stall for entries.
        p.clear_stats();
        for i in 0..64u64 {
            now += p.write(now, 0x8000 + i * 64, &[1; 8]);
        }
        assert_eq!(p.stats().wbuf_merges, 0);
        assert!(
            p.stats().wbuf_stalls > 0,
            "stalls: {}",
            p.stats().wbuf_stalls
        );
    }

    #[test]
    fn perf_ledger_conserves_returned_costs() {
        let mut p = port();
        p.set_perf(true);
        let mut now = 0u64;
        let mut total = 0u64;
        // Reads: misses and hits, both DRAM plateaus.
        for i in 0..256u64 {
            let mut b = [0u8; 8];
            let c = p.read(now, i * 8, &mut b);
            now += c;
            total += c;
        }
        // Stores: merges, steady issue and full-buffer stalls.
        for i in 0..64u64 {
            let c = p.write(now, 0x8000 + i * 64, &[1; 8]);
            now += c;
            total += c;
        }
        let c = p.memory_barrier(now);
        now += c;
        total += c;
        total += p.tlb_access(0xC000);
        let l = *p.perf_ledger();
        assert_eq!(l.total(), total, "every returned cycle is attributed");
        assert!(l.get(CostClass::L1Hit) > 0);
        assert!(l.get(CostClass::DramPageHit) > 0);
        assert!(l.get(CostClass::DramPageMiss) > 0);
        assert!(l.get(CostClass::WbufIssue) > 0);
        assert!(l.get(CostClass::WbufStall) > 0);
        assert!(l.get(CostClass::WbufDrain) > 0);
        // Off by default: a fresh port ignores everything.
        let mut q = port();
        let mut b = [0u8; 8];
        let _ = q.read(0, 0x100, &mut b);
        assert_eq!(q.perf_ledger().total(), 0);
        let _ = now;
    }

    #[test]
    #[should_panic(expected = "exceeds local memory")]
    fn out_of_range_read_panics() {
        let mut p = port();
        let mut buf = [0u8; 8];
        p.read(0, (1 << 27) - 4, &mut buf);
    }
}
