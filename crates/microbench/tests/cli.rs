//! End-to-end tests of the `t3d-bench` report binary.

use std::process::Command;

fn bench_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_t3d-bench"))
}

#[test]
fn tab_prefetch_prints_the_breakdown() {
    let out = bench_cmd()
        .arg("tab-prefetch")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("prefetch issue"));
    assert!(s.contains("round trip"));
}

#[test]
fn tab_sync_prints_paper_columns() {
    let out = bench_cmd().arg("tab-sync").output().expect("binary runs");
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("annex register update"));
    assert!(s.contains("25 us"));
}

#[test]
fn fast_fig6_runs() {
    let out = bench_cmd()
        .args(["fig6", "--fast"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("raw prefetch"));
    assert!(s.contains("Split-C get"));
}

#[test]
fn unknown_command_exits_nonzero() {
    let out = bench_cmd().arg("fig99").output().expect("binary runs");
    assert!(!out.status.success());
    let s = String::from_utf8_lossy(&out.stderr);
    assert!(s.contains("unknown command"));
}

#[test]
fn out_dir_receives_reports() {
    let dir = std::env::temp_dir().join(format!("t3d-bench-test-{}", std::process::id()));
    let out = bench_cmd()
        .args(["tab-prefetch", "--out", dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let report = std::fs::read_to_string(dir.join("tab-prefetch.txt")).expect("report written");
    assert!(report.contains("prefetch pop"));
    let _ = std::fs::remove_dir_all(&dir);
}
