//! Gray-box parameter inference (the Section 2 analysis).
//!
//! The paper's methodology does not *assume* machine parameters — it
//! infers them from probe responses. This module runs the same
//! inferences on our simulated profiles: cache size from the first size
//! whose latency leaves the hit plateau, line size from the stride where
//! miss cost stops growing, memory latency from the plateau value,
//! write-buffer depth from the memory-to-steady-store ratio. The unit
//! tests close the loop: the inferred parameters must equal the
//! configured ones.

use crate::report::{StrideProfile, Table};

/// Parameters inferred from the local read and write profiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferredParams {
    /// First-level cache capacity (bytes).
    pub cache_bytes: u64,
    /// Cache line size (bytes).
    pub line_bytes: u64,
    /// Cache hit latency (ns).
    pub hit_ns: f64,
    /// Main memory access latency (ns), in-page.
    pub mem_ns: f64,
    /// Worst-case memory latency (ns) — off-page, same bank.
    pub worst_ns: f64,
    /// Estimated write-buffer depth (memory latency / steady store
    /// cost, the paper's Section 2.3 calculation).
    pub wbuf_entries: u64,
    /// Steady-state store cost at line stride (ns).
    pub store_ns: f64,
}

/// Infers local-node parameters from a read and a write profile.
///
/// The profiles must cover sizes from within the cache to several times
/// it, and strides up to at least 64 KB for the worst-case plateau.
///
/// # Panics
///
/// Panics if the profiles are too sparse to analyze.
pub fn infer_local_params(read: &StrideProfile, write: &StrideProfile) -> InferredParams {
    // Hit latency: small array, small stride.
    let smallest = *read.sizes.first().expect("profile has sizes");
    let hit_ns = read.at(smallest, 8).expect("smallest cell probed");

    // Cache size: first size whose stride-8 latency clearly leaves the
    // hit plateau.
    let cache_bytes = read
        .sizes
        .iter()
        .copied()
        .find(|&s| read.at(s, 8).is_some_and(|ns| ns > hit_ns * 1.5))
        .map(|s| s / 2)
        .expect("some size exceeds the cache");

    // Line size: with a >cache array, miss cost rises with stride until
    // one access per line; the first stride at which latency stops
    // growing (within 5%) is the line size.
    let big = read
        .sizes
        .iter()
        .copied()
        .find(|&s| s >= cache_bytes * 8)
        .expect("profile includes a large array");
    let mut line_bytes = 8;
    for w in read.strides.windows(2) {
        let (a, b) = (read.at(big, w[0]), read.at(big, w[1]));
        if let (Some(a), Some(b)) = (a, b) {
            if b < a * 1.05 {
                line_bytes = w[0];
                break;
            }
        }
    }

    // Memory latency: the plateau at line stride (minus the hit the
    // probe can't separate — negligible here).
    let mem_ns = read.at(big, line_bytes).expect("line-stride cell probed");

    // Worst case: the largest latency anywhere in the surface.
    let worst_ns = read
        .avg_ns
        .iter()
        .flatten()
        .flatten()
        .copied()
        .fold(0.0f64, f64::max);

    // Write buffer: steady store cost at line stride on a large array.
    let store_ns = write.at(big, line_bytes).expect("write cell probed");
    let wbuf_entries = (mem_ns / store_ns).round() as u64;

    InferredParams {
        cache_bytes,
        line_bytes,
        hit_ns,
        mem_ns,
        worst_ns,
        wbuf_entries,
        store_ns,
    }
}

/// Renders the Section 2 parameter table, measured vs published.
pub fn local_params_table(p: &InferredParams) -> Table {
    Table {
        title: "Inferred local-node parameters (Section 2)".into(),
        headers: vec!["parameter".into(), "inferred".into(), "paper".into()],
        rows: vec![
            vec![
                "L1 cache size".into(),
                format!("{} KB", p.cache_bytes / 1024),
                "8 KB".into(),
            ],
            vec![
                "cache line".into(),
                format!("{} B", p.line_bytes),
                "32 B".into(),
            ],
            vec![
                "read hit".into(),
                format!("{:.1} ns", p.hit_ns),
                "6.67 ns (1 cy)".into(),
            ],
            vec![
                "memory access".into(),
                format!("{:.0} ns", p.mem_ns),
                "145 ns (22 cy)".into(),
            ],
            vec![
                "worst case (off-page, same bank)".into(),
                format!("{:.0} ns", p.worst_ns),
                "264 ns (40 cy)".into(),
            ],
            vec![
                "steady store (line stride)".into(),
                format!("{:.0} ns", p.store_ns),
                "35 ns".into(),
            ],
            vec![
                "write buffer entries".into(),
                p.wbuf_entries.to_string(),
                "4".into(),
            ],
        ],
    }
}

/// Memory-to-processor streaming bandwidth (MB/s) from a profile: one
/// 32-byte line per full memory access, measured on the largest array
/// (which must exceed every cache level). The paper reports ~220 MB/s
/// for the T3D (32 B / 145 ns) and about half for the workstation.
pub fn stream_bandwidth_mb(read: &StrideProfile) -> f64 {
    let big = *read.sizes.last().expect("profile has sizes");
    let ns_per_line = read.at(big, 32).expect("line-stride cell probed");
    32.0 / ns_per_line * 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probes::local;

    fn profiles() -> (StrideProfile, StrideProfile) {
        let sizes: Vec<u64> = vec![4096, 8192, 16384, 65536, 262_144];
        (
            local::read_profile(&sizes, 1 << 20),
            local::write_profile(&sizes, 1 << 20),
        )
    }

    #[test]
    fn inference_closes_the_loop() {
        let (r, w) = profiles();
        let p = infer_local_params(&r, &w);
        assert_eq!(p.cache_bytes, 8 * 1024, "cache size recovered");
        assert_eq!(p.line_bytes, 32, "line size recovered");
        assert!((6.0..8.0).contains(&p.hit_ns));
        assert!((140.0..160.0).contains(&p.mem_ns));
        assert!((250.0..285.0).contains(&p.worst_ns));
        assert_eq!(p.wbuf_entries, 4, "the paper's 145/35 calculation");
    }

    #[test]
    fn t3d_streams_about_220_mb_per_s() {
        let (r, _) = profiles();
        let bw = stream_bandwidth_mb(&r);
        assert!(
            (200.0..240.0).contains(&bw),
            "T3D stream bandwidth {bw:.0} MB/s"
        );
    }

    #[test]
    fn workstation_streams_about_half() {
        let sizes: Vec<u64> = vec![4096, 2 * 1024 * 1024];
        let ws = local::workstation_read_profile(&sizes, 1 << 21);
        let t3d = local::read_profile(&sizes, 1 << 21);
        let ratio = stream_bandwidth_mb(&t3d) / stream_bandwidth_mb(&ws);
        assert!(
            (1.5..2.6).contains(&ratio),
            "T3D/workstation stream ratio {ratio:.2} (paper: ~2)"
        );
    }

    #[test]
    fn table_renders() {
        let (r, w) = profiles();
        let t = local_params_table(&infer_local_params(&r, &w));
        assert!(t.to_string().contains("write buffer"));
    }
}
