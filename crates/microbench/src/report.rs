//! Plain-data result containers and text rendering.

use std::fmt;

/// A latency surface over (array size, stride) — the shape of Figures 1,
/// 2, 4, 5 and 7.
#[derive(Debug, Clone, PartialEq)]
pub struct StrideProfile {
    /// What was probed.
    pub label: String,
    /// Array sizes (bytes), one row each.
    pub sizes: Vec<u64>,
    /// Strides (bytes), one column each.
    pub strides: Vec<u64>,
    /// Average access latency in nanoseconds; `None` where the stride
    /// exceeds half the size (not probed, as in the paper).
    pub avg_ns: Vec<Vec<Option<f64>>>,
}

impl StrideProfile {
    /// The cell for a given size and stride, if probed.
    pub fn at(&self, size: u64, stride: u64) -> Option<f64> {
        let r = self.sizes.iter().position(|&s| s == size)?;
        let c = self.strides.iter().position(|&s| s == stride)?;
        self.avg_ns[r][c]
    }

    /// Renders as an aligned text matrix (sizes down, strides across).
    pub fn to_table(&self) -> Table {
        let mut headers = vec!["size\\stride".to_string()];
        headers.extend(self.strides.iter().map(|s| human_bytes(*s)));
        let rows = self
            .sizes
            .iter()
            .zip(&self.avg_ns)
            .map(|(size, row)| {
                let mut r = vec![human_bytes(*size)];
                r.extend(row.iter().map(|c| match c {
                    Some(ns) => format!("{ns:.1}"),
                    None => "-".to_string(),
                }));
                r
            })
            .collect();
        Table {
            title: format!("{} (avg ns per access)", self.label),
            headers,
            rows,
        }
    }
}

/// A labelled (x, y) series — bandwidth curves, group sweeps, EM3D lines.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// What the series measures.
    pub label: String,
    /// Points in x order.
    pub points: Vec<(u64, f64)>,
}

impl Series {
    /// The y value at an exact x, if present.
    pub fn at(&self, x: u64) -> Option<f64> {
        self.points.iter().find(|(px, _)| *px == x).map(|(_, y)| *y)
    }

    /// The first x at which this series' y exceeds `other`'s (a
    /// crossover point), if any.
    pub fn crossover_with(&self, other: &Series) -> Option<u64> {
        for (x, y) in &self.points {
            if let Some(oy) = other.at(*x) {
                if *y > oy {
                    return Some(*x);
                }
            }
        }
        None
    }
}

/// Renders several series sharing an x axis as one table.
pub fn series_table(title: &str, x_label: &str, series: &[Series]) -> Table {
    let mut headers = vec![x_label.to_string()];
    headers.extend(series.iter().map(|s| s.label.clone()));
    let mut xs: Vec<u64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(x, _)| *x))
        .collect();
    xs.sort_unstable();
    xs.dedup();
    let rows = xs
        .iter()
        .map(|x| {
            let mut r = vec![human_bytes(*x)];
            r.extend(series.iter().map(|s| match s.at(*x) {
                Some(y) => format!("{y:.2}"),
                None => "-".to_string(),
            }));
            r
        })
        .collect();
    Table {
        title: title.to_string(),
        headers,
        rows,
    }
}

/// A generic text table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Caption printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        for (i, h) in self.headers.iter().enumerate() {
            write!(f, "{:>w$}  ", h, w = widths[i])?;
        }
        writeln!(f)?;
        for (i, _) in self.headers.iter().enumerate() {
            write!(f, "{:>w$}  ", "-".repeat(widths[i]), w = widths[i])?;
        }
        writeln!(f)?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                write!(f, "{:>w$}  ", cell, w = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Renders several series sharing an x axis as CSV (header row, one
/// line per x; empty cells where a series lacks the x).
pub fn series_csv(x_label: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(x_label);
    for s in series {
        out.push(',');
        out.push_str(&s.label.replace(',', ";"));
    }
    out.push('\n');
    let mut xs: Vec<u64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(x, _)| *x))
        .collect();
    xs.sort_unstable();
    xs.dedup();
    for x in xs {
        out.push_str(&x.to_string());
        for s in series {
            out.push(',');
            if let Some(y) = s.at(x) {
                out.push_str(&format!("{y}"));
            }
        }
        out.push('\n');
    }
    out
}

impl StrideProfile {
    /// Renders the surface as CSV (strides as columns).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("size_bytes");
        for st in &self.strides {
            out.push_str(&format!(",stride_{st}"));
        }
        out.push('\n');
        for (size, row) in self.sizes.iter().zip(&self.avg_ns) {
            out.push_str(&size.to_string());
            for cell in row {
                out.push(',');
                if let Some(ns) = cell {
                    out.push_str(&format!("{ns}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Renders one or more series as a rough ASCII chart (linear y, x in
/// series order), one glyph per series. Good enough to eyeball the
/// shapes the paper plots.
pub fn ascii_plot(title: &str, series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 4, "plot must be at least 8x4");
    let glyphs = ['*', 'o', '+', 'x', '#', '@', '%'];
    let mut xs: Vec<u64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(x, _)| *x))
        .collect();
    xs.sort_unstable();
    xs.dedup();
    if xs.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let ymax = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(_, y)| *y))
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let g = glyphs[si % glyphs.len()];
        for (x, y) in &s.points {
            let xi = xs.iter().position(|v| v == x).expect("x collected");
            let col = if xs.len() == 1 {
                0
            } else {
                xi * (width - 1) / (xs.len() - 1)
            };
            let row = ((1.0 - y / ymax) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col] = g;
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{ymax:>9.1} |")
        } else if i == height - 1 {
            format!("{:>9.1} |", 0.0)
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>9} +{}\n{:>11}{}  ..  {}\n",
        "",
        "-".repeat(width),
        "x: ",
        human_bytes(xs[0]),
        human_bytes(*xs.last().expect("non-empty")),
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "{:>11}{} = {}\n",
            "",
            glyphs[si % glyphs.len()],
            s.label
        ));
    }
    out
}

/// Formats a byte count compactly (8, 32, 4K, 16K, 8M...).
pub fn human_bytes(b: u64) -> String {
    if b >= 1024 * 1024 && b.is_multiple_of(1024 * 1024) {
        format!("{}M", b / (1024 * 1024))
    } else if b >= 1024 && b.is_multiple_of(1024) {
        format!("{}K", b / 1024)
    } else {
        format!("{b}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(8), "8");
        assert_eq!(human_bytes(4096), "4K");
        assert_eq!(human_bytes(8 * 1024 * 1024), "8M");
        assert_eq!(human_bytes(1500), "1500");
    }

    #[test]
    fn profile_lookup_and_table() {
        let p = StrideProfile {
            label: "x".into(),
            sizes: vec![4096, 8192],
            strides: vec![8, 16],
            avg_ns: vec![vec![Some(6.7), Some(6.7)], vec![Some(6.7), None]],
        };
        assert_eq!(p.at(8192, 8), Some(6.7));
        assert_eq!(p.at(8192, 16), None);
        assert_eq!(p.at(123, 8), None);
        let t = p.to_table();
        assert_eq!(t.headers.len(), 3);
        assert_eq!(t.rows.len(), 2);
        let s = t.to_string();
        assert!(s.contains("4K"));
        assert!(s.contains('-'));
    }

    #[test]
    fn series_crossover() {
        let a = Series {
            label: "a".into(),
            points: vec![(1, 1.0), (2, 5.0), (4, 10.0)],
        };
        let b = Series {
            label: "b".into(),
            points: vec![(1, 2.0), (2, 3.0), (4, 4.0)],
        };
        assert_eq!(a.crossover_with(&b), Some(2), "a first exceeds b at x=2");
        assert_eq!(b.crossover_with(&a), Some(1));
    }

    #[test]
    fn csv_outputs_are_parseable() {
        let a = Series {
            label: "a,b".into(),
            points: vec![(1, 1.5), (2, 2.5)],
        };
        let csv = series_csv("x", &[a]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("x,a;b"), "commas in labels are escaped");
        assert_eq!(lines.next(), Some("1,1.5"));
        assert_eq!(lines.next(), Some("2,2.5"));

        let p = StrideProfile {
            label: "x".into(),
            sizes: vec![4096],
            strides: vec![8, 16],
            avg_ns: vec![vec![Some(6.7), None]],
        };
        let csv = p.to_csv();
        assert!(csv.starts_with("size_bytes,stride_8,stride_16"));
        assert!(csv.contains("4096,6.7,"));
    }

    #[test]
    fn ascii_plot_renders_all_series() {
        let a = Series {
            label: "up".into(),
            points: vec![(1, 1.0), (2, 2.0), (4, 4.0)],
        };
        let b = Series {
            label: "down".into(),
            points: vec![(1, 4.0), (2, 2.0), (4, 1.0)],
        };
        let p = ascii_plot("test", &[a, b], 20, 8);
        assert!(p.contains('*') && p.contains('o'));
        assert!(p.contains("up") && p.contains("down"));
        assert!(p.lines().count() > 10);
    }

    #[test]
    #[should_panic(expected = "at least 8x4")]
    fn tiny_plot_panics() {
        ascii_plot("t", &[], 2, 2);
    }

    #[test]
    fn series_table_merges_x() {
        let a = Series {
            label: "a".into(),
            points: vec![(8, 1.0)],
        };
        let b = Series {
            label: "b".into(),
            points: vec![(16, 2.0)],
        };
        let t = series_table("t", "bytes", &[a, b]);
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows[0].contains(&"-".to_string()));
    }
}
