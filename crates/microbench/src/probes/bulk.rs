//! Figure 8: bulk transfer bandwidth by mechanism.
//!
//! Four read mechanisms (uncached, cached-with-flush, prefetch queue,
//! BLT) and two write mechanisms (non-blocking merging stores, BLT) are
//! swept over transfer sizes; the Split-C `bulk_read`/`bulk_write`
//! policy curve should track the upper envelope. Expected shape, from
//! the paper: uncached best at 8 B; cached best at 32–64 B; prefetch
//! best from 128 B to ~16 KB; BLT best beyond (peaking near 140 MB/s);
//! stores beat the BLT for writes at every size (peaking near 90 MB/s).

use crate::report::Series;
use splitc::{GlobalPtr, SplitC};
use t3d_machine::MachineConfig;

/// A bulk mechanism under test: `(runtime, src offset, dst offset, bytes)`.
type Mechanism = fn(&mut SplitC, u64, u64, u64);

/// Bandwidth (MB/s) achieved moving `bytes` with the given closure, on
/// a fresh two-node runtime.
fn bandwidth_of(bytes: u64, f: impl FnOnce(&mut SplitC, u64, u64)) -> f64 {
    let mut sc = SplitC::new(MachineConfig::t3d(2));
    let src = sc.alloc(bytes.max(8), 8);
    let dst = sc.alloc(bytes.max(8), 8);
    f(&mut sc, src, dst);
    let cycles = sc.machine_ref().clock(0);
    let secs = cycles as f64 / 150.0e6;
    bytes as f64 / secs / 1.0e6
}

/// Transfer sizes for the Figure 8 sweep: 8 B to 1 MB.
pub fn default_transfer_sizes() -> Vec<u64> {
    let mut v = Vec::new();
    let mut s = 8u64;
    while s <= 1024 * 1024 {
        v.push(s);
        s *= 2;
    }
    v
}

/// Figure 8, left: read bandwidth by mechanism plus the Split-C policy.
pub fn read_bandwidth(sizes: &[u64]) -> Vec<Series> {
    let mech: Vec<(&str, Mechanism)> = vec![
        ("uncached", |sc, src, dst, n| {
            sc.on(0, |ctx| {
                ctx.bulk_read_uncached(dst, GlobalPtr::new(1, src), n)
            })
        }),
        ("cached", |sc, src, dst, n| {
            sc.on(0, |ctx| {
                ctx.bulk_read_cached(dst, GlobalPtr::new(1, src), n)
            })
        }),
        ("prefetch", |sc, src, dst, n| {
            sc.on(0, |ctx| {
                ctx.bulk_read_prefetch(dst, GlobalPtr::new(1, src), n)
            })
        }),
        ("BLT", |sc, src, dst, n| {
            sc.on(0, |ctx| ctx.bulk_read_blt(dst, GlobalPtr::new(1, src), n))
        }),
        ("Split-C bulk_read", |sc, src, dst, n| {
            sc.on(0, |ctx| ctx.bulk_read(dst, GlobalPtr::new(1, src), n))
        }),
    ];
    mech.into_iter()
        .map(|(label, f)| Series {
            label: label.to_string(),
            points: sizes
                .iter()
                .map(|&n| (n, bandwidth_of(n, |sc, src, dst| f(sc, src, dst, n))))
                .collect(),
        })
        .collect()
}

/// Figure 8, right: write bandwidth by mechanism plus the Split-C
/// policy.
pub fn write_bandwidth(sizes: &[u64]) -> Vec<Series> {
    let mech: Vec<(&str, Mechanism)> = vec![
        ("stores", |sc, src, dst, n| {
            sc.on(0, |ctx| {
                ctx.bulk_write_stores(GlobalPtr::new(1, dst), src, n);
                ctx.sync();
            })
        }),
        ("BLT", |sc, src, dst, n| {
            sc.on(0, |ctx| ctx.bulk_write_blt(GlobalPtr::new(1, dst), src, n))
        }),
        ("Split-C bulk_write", |sc, src, dst, n| {
            sc.on(0, |ctx| ctx.bulk_write(GlobalPtr::new(1, dst), src, n))
        }),
    ];
    mech.into_iter()
        .map(|(label, f)| Series {
            label: label.to_string(),
            points: sizes
                .iter()
                .map(|&n| (n, bandwidth_of(n, |sc, src, dst| f(sc, src, dst, n))))
                .collect(),
        })
        .collect()
}

/// Best mechanism label at each size (the policy the compiler should
/// emit).
pub fn best_read_mechanism(series: &[Series], size: u64) -> String {
    series
        .iter()
        .filter(|s| s.label != "Split-C bulk_read")
        .max_by(|a, b| {
            a.at(size)
                .unwrap_or(0.0)
                .partial_cmp(&b.at(size).unwrap_or(0.0))
                .expect("bandwidths are finite")
        })
        .map(|s| s.label.clone())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes_small() -> Vec<u64> {
        vec![8, 32, 64, 128, 1024, 8 * 1024, 32 * 1024, 128 * 1024]
    }

    #[test]
    fn uncached_wins_at_8_bytes() {
        let s = read_bandwidth(&[8]);
        assert_eq!(best_read_mechanism(&s, 8), "uncached");
    }

    #[test]
    fn cached_wins_at_32_bytes_and_stays_competitive_at_64() {
        let s = read_bandwidth(&[32, 64]);
        assert_eq!(best_read_mechanism(&s, 32), "cached");
        // At 64 B the paper gives cached the edge; in our model it is
        // within a few percent of the best mechanism.
        let cached = s
            .iter()
            .find(|x| x.label == "cached")
            .unwrap()
            .at(64)
            .unwrap();
        let best = s
            .iter()
            .filter(|x| x.label != "Split-C bulk_read")
            .map(|x| x.at(64).unwrap())
            .fold(0.0f64, f64::max);
        assert!(
            cached > best * 0.9,
            "cached {cached:.1} MB/s vs best {best:.1} MB/s at 64 B"
        );
    }

    #[test]
    fn prefetch_wins_in_the_middle() {
        let s = read_bandwidth(&[1024, 4096]);
        assert_eq!(best_read_mechanism(&s, 1024), "prefetch");
        assert_eq!(best_read_mechanism(&s, 4096), "prefetch");
    }

    #[test]
    fn blt_wins_beyond_16k_and_peaks_near_140mb() {
        let s = read_bandwidth(&[32 * 1024, 1024 * 1024]);
        assert_eq!(best_read_mechanism(&s, 32 * 1024), "BLT");
        let blt = s.iter().find(|x| x.label == "BLT").unwrap();
        let peak = blt.at(1024 * 1024).unwrap();
        assert!(
            (115.0..141.0).contains(&peak),
            "BLT peak {peak} MB/s (paper: ~140)"
        );
    }

    #[test]
    fn splitc_policy_tracks_the_envelope() {
        let sizes = sizes_small();
        let s = read_bandwidth(&sizes);
        let policy = s.iter().find(|x| x.label == "Split-C bulk_read").unwrap();
        for &n in &sizes {
            let best = s
                .iter()
                .filter(|x| x.label != "Split-C bulk_read")
                .map(|x| x.at(n).unwrap())
                .fold(0.0f64, f64::max);
            let got = policy.at(n).unwrap();
            // The policy keeps the prefetch queue even at 32/64 B (the
            // paper's simplification), so allow the cached-read edge.
            assert!(
                got >= best * 0.55,
                "policy at {n} B: {got:.1} MB/s vs best {best:.1} MB/s"
            );
        }
    }

    #[test]
    fn store_writes_peak_near_90mb_and_beat_blt_everywhere() {
        let sizes = vec![1024u64, 32 * 1024, 512 * 1024];
        let s = write_bandwidth(&sizes);
        let stores = s.iter().find(|x| x.label == "stores").unwrap();
        let blt = s.iter().find(|x| x.label == "BLT").unwrap();
        for &n in &sizes {
            assert!(
                stores.at(n).unwrap() > blt.at(n).unwrap(),
                "stores beat BLT at {n} B"
            );
        }
        let peak = stores.at(512 * 1024).unwrap();
        assert!(
            (70.0..95.0).contains(&peak),
            "store write peak {peak} MB/s (paper: ~90)"
        );
    }

    #[test]
    fn cached_bulk_read_has_8k_flush_inflection() {
        // Just below 8 KB: per-line flushes; at 8 KB: one batched flush.
        let s = read_bandwidth(&[4 * 1024, 8 * 1024]);
        let cached = s.iter().find(|x| x.label == "cached").unwrap();
        let below = cached.at(4 * 1024).unwrap();
        let at = cached.at(8 * 1024).unwrap();
        assert!(
            at > below,
            "batched flush improves bandwidth: {below} -> {at} MB/s"
        );
    }
}
