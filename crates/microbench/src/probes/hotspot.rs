//! Hot-spot contention probe (extension).
//!
//! The paper's probes run with a single active processor, so target-side
//! contention never shows. Applications are not so polite: all-to-one
//! communication (reductions, shared counters) serializes through the
//! target's shell and memory controller. With the machine's contention
//! model enabled, this probe measures how per-operation cost grows with
//! the number of simultaneous requesters, for fetch&increment (the
//! N-to-1 queue allocator of Section 7.4) and for remote stores.

use crate::report::Series;
use t3d_machine::{Machine, MachineConfig};
use t3d_shell::{AnnexEntry, FuncCode};

/// Average cost (cycles) per fetch&increment when `requesters` nodes hit
/// PE 0's register simultaneously.
pub fn fetch_inc_hotspot_cost(requesters: u32, contention: bool) -> f64 {
    // Machines are power-of-two sized; surplus PEs sit idle.
    let nodes = (requesters + 1).next_power_of_two();
    let cfg = if contention {
        MachineConfig::t3d_contended(nodes)
    } else {
        MachineConfig::t3d(nodes)
    };
    let mut m = Machine::new(cfg);
    let per_node = 8u64;
    for pe in 1..=requesters as usize {
        for _ in 0..per_node {
            let _ = m.fetch_inc(pe, 0, 0);
        }
    }
    let worst = (1..=requesters as usize)
        .map(|pe| m.clock(pe))
        .max()
        .unwrap_or(0);
    worst as f64 / per_node as f64
}

/// Average cost per blocking store when `requesters` nodes write to PE 0
/// versus each writing to a distinct target.
pub fn store_hotspot_cost(requesters: u32, all_to_one: bool) -> f64 {
    // Machines are power-of-two sized; surplus PEs sit idle.
    let nodes = (requesters + 1).next_power_of_two();
    let mut m = Machine::new(MachineConfig::t3d_contended(nodes));
    let per_node = 8u64;
    for pe in 1..=requesters as usize {
        let target = if all_to_one {
            0
        } else {
            (pe + 1) % nodes as usize
        };
        m.annex_set(
            pe,
            1,
            AnnexEntry {
                pe: target as u32,
                func: FuncCode::Uncached,
            },
        );
        for i in 0..per_node {
            let va = m.va(1, 0x1000 + (pe as u64) * 4096 + i * 64);
            m.st8(pe, va, i);
        }
        m.memory_barrier(pe);
        m.wait_write_acks(pe);
    }
    let worst = (1..=requesters as usize)
        .map(|pe| m.clock(pe))
        .max()
        .unwrap_or(0);
    worst as f64 / per_node as f64
}

/// The hot-spot sweep: per-op fetch&increment cost vs requester count,
/// with and without contention modeling.
pub fn hotspot_sweep() -> Vec<Series> {
    let counts = [1u32, 2, 4, 8, 16, 31];
    vec![
        Series {
            label: "f&i, contended shell".into(),
            points: counts
                .iter()
                .map(|&r| (r as u64, fetch_inc_hotspot_cost(r, true)))
                .collect(),
        },
        Series {
            label: "f&i, ideal shell".into(),
            points: counts
                .iter()
                .map(|&r| (r as u64, fetch_inc_hotspot_cost(r, false)))
                .collect(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotspot_grows_with_requesters_only_under_contention() {
        // Compare at the same machine size, so network distance (which
        // grows with the torus) cancels out.
        let ideal_16 = fetch_inc_hotspot_cost(16, false);
        let real_16 = fetch_inc_hotspot_cost(16, true);
        assert!(
            real_16 > ideal_16 * 1.5,
            "contended hot spot queues: {ideal_16:.0} -> {real_16:.0} cy"
        );
        // With a single requester, contention modeling changes nothing.
        let ideal_1 = fetch_inc_hotspot_cost(1, false);
        let real_1 = fetch_inc_hotspot_cost(1, true);
        assert_eq!(ideal_1, real_1, "one requester never queues");
    }

    #[test]
    fn all_to_one_stores_cost_more_than_spread_stores() {
        let one = store_hotspot_cost(8, true);
        let spread = store_hotspot_cost(8, false);
        assert!(
            one > spread,
            "hot-spot stores {one:.0} cy vs spread {spread:.0} cy"
        );
    }

    #[test]
    fn sweep_has_both_series() {
        let s = hotspot_sweep();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].points.len(), s[1].points.len());
    }
}
