//! Figures 4 and 5: remote read and write latency profiles.
//!
//! The local sawtooth probe re-aimed at an adjacent node's memory, in
//! each of the machine's read flavours (uncached, cached) and write
//! forms (blocking raw, Split-C read/write with annex set-up and
//! language overheads).

use crate::probes::{all_strides, strides_for};
use crate::report::StrideProfile;
use splitc::{GlobalPtr, SplitC};
use t3d_machine::{Machine, MachineConfig};
use t3d_shell::{AnnexEntry, FuncCode, ShellConfig};

/// One remote probe flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteOp {
    /// Raw uncached remote loads.
    UncachedRead,
    /// Raw cached remote loads (line fills, incoherent).
    CachedRead,
    /// The Split-C blocking read (annex set-up + uncached load +
    /// overheads).
    SplitcRead,
    /// Raw blocking remote write (store + fence + status poll).
    BlockingWrite,
    /// The Split-C blocking write.
    SplitcWrite,
}

impl RemoteOp {
    fn label(self) -> &'static str {
        match self {
            RemoteOp::UncachedRead => "uncached read",
            RemoteOp::CachedRead => "cached read",
            RemoteOp::SplitcRead => "Split-C read",
            RemoteOp::BlockingWrite => "blocking write",
            RemoteOp::SplitcWrite => "Split-C write",
        }
    }
}

fn probe_raw_cell(m: &mut Machine, op: RemoteOp, size: u64, stride: u64) -> f64 {
    m.reset_timing();
    let func = if op == RemoteOp::CachedRead {
        FuncCode::Cached
    } else {
        FuncCode::Uncached
    };
    m.annex_set(0, 1, AnnexEntry { pe: 1, func });
    for pass in 0..2 {
        // Cached reads must not be satisfied by the previous pass's
        // lines: flush, as the real probe effectively does by sizing.
        if op == RemoteOp::CachedRead {
            m.node_mut(0).port.l1_mut().invalidate_all();
        }
        let t0 = m.clock(0);
        let mut accesses = 0u64;
        let mut a = 0u64;
        while a < size {
            let va = m.va(1, a);
            match op {
                RemoteOp::UncachedRead | RemoteOp::CachedRead => {
                    let _ = m.ld8(0, va);
                }
                RemoteOp::BlockingWrite => {
                    m.st8(0, va, a);
                    m.memory_barrier(0);
                    m.wait_write_acks(0);
                }
                _ => unreachable!("Split-C flavours use probe_splitc_cell"),
            }
            accesses += 1;
            a += stride;
        }
        if pass == 1 {
            return (m.clock(0) - t0) as f64 / accesses as f64;
        }
    }
    unreachable!()
}

fn probe_splitc_cell(sc: &mut SplitC, op: RemoteOp, size: u64, stride: u64) -> f64 {
    sc.machine().reset_timing();
    for pass in 0..2 {
        let r = sc.on(0, |ctx| {
            let t0 = ctx.clock();
            let mut accesses = 0u64;
            let mut a = 0u64;
            while a < size {
                let gp = GlobalPtr::new(1, a);
                match op {
                    RemoteOp::SplitcRead => {
                        let _ = ctx.read_u64(gp);
                    }
                    RemoteOp::SplitcWrite => ctx.write_u64(gp, a),
                    _ => unreachable!("raw flavours use probe_raw_cell"),
                }
                accesses += 1;
                a += stride;
            }
            (ctx.clock() - t0) as f64 / accesses as f64
        });
        if pass == 1 {
            return r;
        }
    }
    unreachable!()
}

/// Runs one remote profile over a (size, stride) grid on a two-node T3D.
pub fn profile(op: RemoteOp, sizes: &[u64], cap_stride: u64) -> StrideProfile {
    let cycle_ns = MachineConfig::t3d(2).cycle_ns();
    let strides = all_strides(sizes, cap_stride);
    let splitc = matches!(op, RemoteOp::SplitcRead | RemoteOp::SplitcWrite);
    let mut m = (!splitc).then(|| Machine::new(MachineConfig::t3d(2)));
    let mut sc = splitc.then(|| SplitC::new(MachineConfig::t3d(2)));
    let mut avg_ns = Vec::new();
    for &size in sizes {
        let valid = strides_for(size, cap_stride);
        let row = strides
            .iter()
            .map(|&st| {
                valid.contains(&st).then(|| {
                    let cy = match (&mut m, &mut sc) {
                        (Some(m), _) => probe_raw_cell(m, op, size, st),
                        (_, Some(sc)) => probe_splitc_cell(sc, op, size, st),
                        _ => unreachable!(),
                    };
                    cy * cycle_ns
                })
            })
            .collect();
        avg_ns.push(row);
    }
    StrideProfile {
        label: format!("remote {}", op.label()),
        sizes: sizes.to_vec(),
        strides,
        avg_ns,
    }
}

/// Figure 4: the three read flavours.
pub fn read_profiles(sizes: &[u64], cap_stride: u64) -> Vec<StrideProfile> {
    vec![
        profile(RemoteOp::UncachedRead, sizes, cap_stride),
        profile(RemoteOp::CachedRead, sizes, cap_stride),
        profile(RemoteOp::SplitcRead, sizes, cap_stride),
    ]
}

/// Figure 5: the two blocking write flavours.
pub fn write_profiles(sizes: &[u64], cap_stride: u64) -> Vec<StrideProfile> {
    vec![
        profile(RemoteOp::BlockingWrite, sizes, cap_stride),
        profile(RemoteOp::SplitcWrite, sizes, cap_stride),
    ]
}

/// Section 4.2's per-hop measurement: uncached read latency versus hop
/// distance on a 4x4x4 torus ("measuring the additional latency through
/// the network reveals roughly a 13 to 20 ns (2-3 cycle) cost per hop").
/// Returns `(hops, avg ns)` and the fitted per-hop one-way cost in
/// cycles.
pub fn hop_sweep() -> (Vec<(u64, f64)>, f64) {
    let mut m = Machine::new(MachineConfig::t3d(64)); // 4x4x4
    let mut points = Vec::new();
    let max_hops = 6u32; // diameter of a 4x4x4 torus
    for hops in 1..=max_hops {
        // Find a node at exactly this distance.
        let target = (0..64u32)
            .find(|&n| m.torus().hops(0, n) == hops)
            .expect("4x4x4 torus has all distances up to 6");
        m.reset_timing();
        m.annex_set(
            0,
            1,
            AnnexEntry {
                pe: target,
                func: FuncCode::Uncached,
            },
        );
        let _ = m.ld8(0, m.va(1, 8)); // TLB warm
        let t0 = m.clock(0);
        let n = 16u64;
        for i in 0..n {
            let _ = m.ld8(0, m.va(1, 0x1000 + i * 32));
        }
        let avg = (m.clock(0) - t0) as f64 / n as f64 * m.cycle_ns();
        points.push((hops as u64, avg));
    }
    // Least-squares slope of latency (cycles) vs hops, halved for the
    // one-way per-hop cost (the probe sees a round trip).
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|(h, _)| *h as f64).sum();
    let sy: f64 = points.iter().map(|(_, ns)| ns / CYCLE_NS).sum();
    let sxy: f64 = points.iter().map(|(h, ns)| *h as f64 * ns / CYCLE_NS).sum();
    let sxx: f64 = points.iter().map(|(h, _)| (*h as f64).powi(2)).sum();
    let slope_rt = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    (points, slope_rt / 2.0)
}

const CYCLE_NS: f64 = 1000.0 / 150.0;

/// Section 4.2's cross-machine comparison: the T3D's remote read against
/// contemporary large-scale shared-memory machines. DASH and KSR1 are
/// modeled as equivalent-latency shells (their remote fill paths cost
/// ~3 µs and ~7.5 µs respectively, per the paper's citation \[23\]).
pub fn mpp_comparison() -> crate::report::Table {
    let mut rows = Vec::new();
    let mut measure = |label: &str, shell_cy: u64, paper: &str| {
        let mut cfg = MachineConfig::t3d(2);
        cfg.shell.remote_read_shell_cy = shell_cy;
        let mut m = Machine::new(cfg);
        m.annex_set(
            0,
            1,
            AnnexEntry {
                pe: 1,
                func: FuncCode::Uncached,
            },
        );
        let _ = m.ld8(0, m.va(1, 8)); // TLB warm
        let t0 = m.clock(0);
        let _ = m.ld8(0, m.va(1, 0));
        let ns = (m.clock(0) - t0) as f64 * m.cycle_ns();
        rows.push(vec![
            label.to_string(),
            format!("{:.2} us", ns / 1000.0),
            paper.to_string(),
        ]);
    };
    measure(
        "CRAY-T3D",
        ShellConfig::t3d().remote_read_shell_cy,
        "~0.61 us",
    );
    measure("DASH (equivalent shell)", 423, "~3 us");
    measure("KSR1 (equivalent shell)", 1_098, "~7.5 us");
    crate::report::Table {
        title: "Remote read latency across MPPs (Section 4.2)".into(),
        headers: vec!["machine".into(), "measured".into(), "paper".into()],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIZES: &[u64] = &[64 * 1024];

    #[test]
    fn uncached_read_is_about_610ns() {
        let p = profile(RemoteOp::UncachedRead, SIZES, 1 << 20);
        let ns = p.at(64 * 1024, 64).unwrap();
        assert!(
            (560.0..680.0).contains(&ns),
            "uncached remote read {ns} ns (paper: ~610)"
        );
    }

    #[test]
    fn cached_read_is_about_765ns_at_line_stride() {
        let p = profile(RemoteOp::CachedRead, SIZES, 1 << 20);
        let ns = p.at(64 * 1024, 32).unwrap();
        assert!(
            (700.0..850.0).contains(&ns),
            "cached remote read {ns} ns (paper: ~765)"
        );
    }

    #[test]
    fn cached_read_amortizes_at_small_strides() {
        // Strides 8/16: the line prefetches the next 3 (or 1) accesses.
        let p = profile(RemoteOp::CachedRead, SIZES, 1 << 20);
        let s8 = p.at(64 * 1024, 8).unwrap();
        let s32 = p.at(64 * 1024, 32).unwrap();
        assert!(
            s8 < s32 / 2.5,
            "stride 8 ({s8} ns) amortizes the fill ({s32} ns)"
        );
    }

    #[test]
    fn splitc_read_is_about_850ns() {
        let p = profile(RemoteOp::SplitcRead, SIZES, 1 << 20);
        let ns = p.at(64 * 1024, 64).unwrap();
        assert!(
            (780.0..950.0).contains(&ns),
            "Split-C read {ns} ns (paper: ~850)"
        );
    }

    #[test]
    fn remote_off_page_adds_about_100ns() {
        let p = profile(RemoteOp::UncachedRead, &[256 * 1024], 1 << 20);
        let on_page = p.at(256 * 1024, 64).unwrap();
        let off_page = p.at(256 * 1024, 16 * 1024).unwrap();
        let delta = off_page - on_page;
        assert!(
            (40.0..130.0).contains(&delta),
            "off-page remote penalty {delta} ns (paper: ~100)"
        );
    }

    #[test]
    fn blocking_write_is_about_850ns() {
        let p = profile(RemoteOp::BlockingWrite, SIZES, 1 << 20);
        let ns = p.at(64 * 1024, 64).unwrap();
        assert!(
            (760.0..950.0).contains(&ns),
            "blocking remote write {ns} ns (paper: ~850)"
        );
    }

    #[test]
    fn splitc_write_is_about_981ns() {
        let p = profile(RemoteOp::SplitcWrite, SIZES, 1 << 20);
        let ns = p.at(64 * 1024, 64).unwrap();
        assert!(
            (880.0..1100.0).contains(&ns),
            "Split-C write {ns} ns (paper: ~981)"
        );
    }

    #[test]
    fn per_hop_cost_is_two_to_three_cycles() {
        let (points, per_hop_cy) = hop_sweep();
        assert_eq!(points.len(), 6);
        // Latency must rise monotonically with distance.
        for w in points.windows(2) {
            assert!(w[1].1 > w[0].1, "latency grows with hops: {points:?}");
        }
        assert!(
            (2.0..=3.0).contains(&per_hop_cy),
            "fitted per-hop cost {per_hop_cy:.2} cy (paper: 2-3)"
        );
    }

    #[test]
    fn mpp_comparison_ranks_the_machines() {
        let t = mpp_comparison();
        let us: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[1].trim_end_matches(" us").parse().unwrap())
            .collect();
        assert!(us[0] < 1.0, "T3D under a microsecond: {} us", us[0]);
        assert!(
            (2.5..3.5).contains(&us[1]),
            "DASH-equivalent ~3 us: {} us",
            us[1]
        );
        assert!(
            (7.0..8.0).contains(&us[2]),
            "KSR-equivalent ~7.5 us: {} us",
            us[2]
        );
        assert!(us[0] < us[1] && us[1] < us[2]);
    }

    #[test]
    fn remote_read_is_three_to_four_times_local_miss() {
        // The paper's headline: remote access < 1 us, only 3-4x a local
        // cache miss.
        let remote = profile(RemoteOp::UncachedRead, SIZES, 1 << 20)
            .at(64 * 1024, 64)
            .unwrap();
        let local = crate::probes::local::read_profile(SIZES, 1 << 20)
            .at(64 * 1024, 64)
            .unwrap();
        let ratio = remote / local;
        assert!((3.0..5.0).contains(&ratio), "remote/local ratio {ratio:.1}");
    }
}
