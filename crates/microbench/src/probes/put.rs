//! Figure 7: non-blocking remote writes and the Split-C `put`.
//!
//! The familiar sawtooth probe issuing *non-blocking* remote stores:
//! below 32-byte strides the write buffer merges; beyond, the shell's
//! ~17-cycle (115 ns) injection interval governs; at 16 KB strides the
//! remote DRAM page misses show through. The Split-C `put` adds annex
//! set-up and its completion checks for an average around 300 ns.

use crate::probes::{all_strides, strides_for};
use crate::report::StrideProfile;
use splitc::{GlobalPtr, SplitC};
use t3d_machine::{Machine, MachineConfig};
use t3d_shell::{AnnexEntry, FuncCode};

fn probe_raw(m: &mut Machine, size: u64, stride: u64) -> f64 {
    m.reset_timing();
    m.annex_set(
        0,
        1,
        AnnexEntry {
            pe: 1,
            func: FuncCode::Uncached,
        },
    );
    for pass in 0..2 {
        let t0 = m.clock(0);
        let mut accesses = 0u64;
        let mut a = 0u64;
        while a < size {
            m.st8(0, m.va(1, a), a);
            accesses += 1;
            a += stride;
        }
        if pass == 1 {
            return (m.clock(0) - t0) as f64 / accesses as f64;
        }
        // Let the burst drain before the measured pass.
        m.memory_barrier(0);
        m.wait_write_acks(0);
    }
    unreachable!()
}

fn probe_put(sc: &mut SplitC, size: u64, stride: u64) -> f64 {
    sc.machine().reset_timing();
    for pass in 0..2 {
        let r = sc.on(0, |ctx| {
            let t0 = ctx.clock();
            let mut accesses = 0u64;
            let mut a = 0u64;
            while a < size {
                ctx.put(GlobalPtr::new(1, a), a);
                accesses += 1;
                a += stride;
            }
            let avg = (ctx.clock() - t0) as f64 / accesses as f64;
            ctx.sync();
            avg
        });
        if pass == 1 {
            return r;
        }
    }
    unreachable!()
}

/// Figure 7: the non-blocking store profile and the Split-C put profile.
pub fn nonblocking_profiles(sizes: &[u64], cap_stride: u64) -> Vec<StrideProfile> {
    let cycle_ns = MachineConfig::t3d(2).cycle_ns();
    let strides = all_strides(sizes, cap_stride);
    let mut m = Machine::new(MachineConfig::t3d(2));
    let mut sc = SplitC::new(MachineConfig::t3d(2));
    let mut raw_rows = Vec::new();
    let mut put_rows = Vec::new();
    for &size in sizes {
        let valid = strides_for(size, cap_stride);
        raw_rows.push(
            strides
                .iter()
                .map(|&st| {
                    valid
                        .contains(&st)
                        .then(|| probe_raw(&mut m, size, st) * cycle_ns)
                })
                .collect(),
        );
        put_rows.push(
            strides
                .iter()
                .map(|&st| {
                    valid
                        .contains(&st)
                        .then(|| probe_put(&mut sc, size, st) * cycle_ns)
                })
                .collect(),
        );
    }
    vec![
        StrideProfile {
            label: "non-blocking remote write".into(),
            sizes: sizes.to_vec(),
            strides: strides.clone(),
            avg_ns: raw_rows,
        },
        StrideProfile {
            label: "Split-C put".into(),
            sizes: sizes.to_vec(),
            strides,
            avg_ns: put_rows,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_is_about_115ns_per_write() {
        let p = &nonblocking_profiles(&[64 * 1024], 1 << 20)[0];
        let ns = p.at(64 * 1024, 64).unwrap();
        assert!(
            (100.0..135.0).contains(&ns),
            "non-blocking write {ns} ns (paper: ~115)"
        );
    }

    #[test]
    fn write_merging_below_line_stride() {
        let p = &nonblocking_profiles(&[64 * 1024], 1 << 20)[0];
        let s8 = p.at(64 * 1024, 8).unwrap();
        let s64 = p.at(64 * 1024, 64).unwrap();
        // Merged lines move 32 B per 53-cycle injection (13.25 cy/word)
        // against 17 cy for unmerged single words.
        assert!(
            s8 < s64 * 0.85,
            "merged writes {s8} ns vs unmerged {s64} ns"
        );
    }

    #[test]
    fn remote_page_misses_show_at_16k_stride() {
        let p = &nonblocking_profiles(&[256 * 1024], 1 << 20)[0];
        let line = p.at(256 * 1024, 64).unwrap();
        let off = p.at(256 * 1024, 16 * 1024).unwrap();
        assert!(off > line, "off-page {off} ns above steady {line} ns");
    }

    #[test]
    fn put_averages_about_300ns() {
        let p = &nonblocking_profiles(&[64 * 1024], 1 << 20)[1];
        let ns = p.at(64 * 1024, 64).unwrap();
        assert!(
            (250.0..360.0).contains(&ns),
            "Split-C put {ns} ns (paper: ~300)"
        );
    }

    #[test]
    fn put_is_well_below_blocking_write() {
        let put = nonblocking_profiles(&[64 * 1024], 1 << 20)[1]
            .at(64 * 1024, 64)
            .unwrap();
        let write = crate::probes::remote::profile(
            crate::probes::remote::RemoteOp::SplitcWrite,
            &[64 * 1024],
            1 << 20,
        )
        .at(64 * 1024, 64)
        .unwrap();
        assert!(
            put * 2.0 < write,
            "put {put} ns vs blocking write {write} ns"
        );
    }
}
