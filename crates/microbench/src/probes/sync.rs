//! The Section 7 synchronization and messaging cost table.
//!
//! Direct probes of every synchronization mechanism: annex update, the
//! native message queue (cheap send, 25 µs interrupt receive, +33 µs
//! handler dispatch), remote fetch&increment, atomic swap, the
//! AM-equivalent queue built from them (deposit 2.9 µs, dispatch
//! 1.5 µs), and the hardware fuzzy barrier.

use crate::report::Table;
use splitc::runtime::AM_ADD_U64;
use splitc::SplitC;
use t3d_machine::{Machine, MachineConfig};
use t3d_shell::{AnnexEntry, FuncCode, MsgQueue, ReceiveMode};

/// One measured cost line.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncCost {
    /// Mechanism name.
    pub name: String,
    /// Measured cost in cycles.
    pub cycles: u64,
    /// The paper's reported value, as printed in Section 7 (for the
    /// side-by-side table).
    pub paper: &'static str,
}

/// Measures every Section 7 mechanism.
pub fn sync_costs() -> Vec<SyncCost> {
    let mut out = Vec::new();
    let mut m = Machine::new(MachineConfig::t3d(2));

    // Annex update.
    let t0 = m.clock(0);
    m.annex_set(
        0,
        1,
        AnnexEntry {
            pe: 1,
            func: FuncCode::Uncached,
        },
    );
    out.push(SyncCost {
        name: "annex register update".into(),
        cycles: m.clock(0) - t0,
        paper: "23 cy",
    });

    // Message send.
    let t0 = m.clock(0);
    m.msg_send(0, 1, [1, 2, 3, 4]);
    out.push(SyncCost {
        name: "message send (PAL)".into(),
        cycles: m.clock(0) - t0,
        paper: "122 cy (813 ns)",
    });

    // Message receive (interrupt only).
    m.advance(1, 10_000);
    let t0 = m.clock(1);
    m.msg_receive(1).expect("delivered");
    out.push(SyncCost {
        name: "message receive interrupt".into(),
        cycles: m.clock(1) - t0,
        paper: "3750 cy (25 us)",
    });

    // Handler dispatch mode: interrupt + switch.
    {
        let cfg = m.config().shell;
        let mut q = MsgQueue::new(&cfg, ReceiveMode::Handler);
        q.deliver(t3d_shell::Message {
            from: 0,
            words: [0; 4],
            arrival: 0,
        });
        let (_, cost) = q.receive(0).expect("delivered");
        out.push(SyncCost {
            name: "message receive + handler switch".into(),
            cycles: cost,
            paper: "8700 cy (25+33 us)",
        });
    }

    // Remote fetch&increment.
    let t0 = m.clock(0);
    let _ = m.fetch_inc(0, 1, 0);
    out.push(SyncCost {
        name: "remote fetch&increment".into(),
        cycles: m.clock(0) - t0,
        paper: "~150 cy (~1 us)",
    });

    // Atomic swap.
    m.annex_set(
        0,
        2,
        AnnexEntry {
            pe: 1,
            func: FuncCode::Swap,
        },
    );
    m.swap_load(0, 7);
    let va = m.va(2, 0x100);
    let t0 = m.clock(0);
    let _ = m.atomic_swap(0, va);
    out.push(SyncCost {
        name: "atomic swap".into(),
        cycles: m.clock(0) - t0,
        paper: "~remote read",
    });

    // Hardware barrier past last arrival.
    {
        let mut m2 = Machine::new(MachineConfig::t3d(2));
        m2.advance(0, 1_000);
        m2.advance(1, 1_000);
        m2.barrier_all();
        out.push(SyncCost {
            name: "hardware barrier (past last arrival)".into(),
            cycles: m2.clock(0) - 1_000,
            paper: "fast (~100s ns)",
        });
    }

    // Fuzzy barrier: how much overlapped work hides in the wait.
    {
        let mut m2 = Machine::new(MachineConfig::t3d(2));
        m2.advance(1, 2_000); // straggler
        m2.fuzzy_barrier_start(0);
        m2.fuzzy_barrier_start(1);
        m2.advance(0, 1_500); // overlapped work on the early arriver
        m2.fuzzy_barrier_end_all();
        // Cost to the early node beyond the straggler's arrival:
        let overhead = m2.clock(0).saturating_sub(2_000);
        out.push(SyncCost {
            name: "fuzzy barrier (1500 cy overlapped work hidden)".into(),
            cycles: overhead,
            paper: "start/end split",
        });
    }

    // AM-equivalent deposit and dispatch.
    {
        let mut sc = SplitC::new(MachineConfig::t3d(2));
        let cell = sc.alloc(8, 8);
        sc.on(0, |ctx| ctx.am_deposit(1, AM_ADD_U64, [cell, 1, 0, 0])); // warm
        sc.on(1, |ctx| {
            ctx.am_poll();
        });
        let dep = sc.on(0, |ctx| {
            let t0 = ctx.clock();
            ctx.am_deposit(1, AM_ADD_U64, [cell, 1, 0, 0]);
            ctx.clock() - t0
        });
        out.push(SyncCost {
            name: "AM-equivalent deposit (5 words)".into(),
            cycles: dep,
            paper: "435 cy (2.9 us)",
        });
        let disp = sc.on(1, |ctx| {
            let t0 = ctx.clock();
            ctx.am_poll();
            ctx.clock() - t0
        });
        out.push(SyncCost {
            name: "AM-equivalent dispatch + access".into(),
            cycles: disp,
            paper: "225 cy (1.5 us)",
        });
    }

    out
}

/// Renders the Section 7 table.
pub fn sync_table() -> Table {
    let costs = sync_costs();
    Table {
        title: "Synchronization & messaging costs (Section 7)".into(),
        headers: vec![
            "mechanism".into(),
            "measured (cy)".into(),
            "measured (us)".into(),
            "paper".into(),
        ],
        rows: costs
            .iter()
            .map(|c| {
                vec![
                    c.name.clone(),
                    c.cycles.to_string(),
                    format!("{:.2}", c.cycles as f64 / 150.0),
                    c.paper.to_string(),
                ]
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost_of(name: &str) -> u64 {
        sync_costs()
            .into_iter()
            .find(|c| c.name.contains(name))
            .map(|c| c.cycles)
            .expect("mechanism probed")
    }

    #[test]
    fn exact_published_costs() {
        assert_eq!(cost_of("annex"), 23);
        assert_eq!(cost_of("message send"), 122);
        assert_eq!(cost_of("receive interrupt"), 3750);
        assert_eq!(cost_of("handler switch"), 3750 + 4950);
    }

    #[test]
    fn fetch_inc_is_about_a_microsecond() {
        let cy = cost_of("fetch&increment");
        assert!((100..=200).contains(&cy), "f&i {cy} cy");
    }

    #[test]
    fn am_deposit_near_2_9_us_and_dispatch_near_1_5_us() {
        let dep = cost_of("deposit");
        let disp = cost_of("dispatch");
        assert!((300..=600).contains(&dep), "deposit {dep} cy (paper 435)");
        assert!(
            (120..=380).contains(&disp),
            "dispatch {disp} cy (paper 225)"
        );
    }

    #[test]
    fn fuzzy_barrier_hides_overlapped_work() {
        let cy = cost_of("fuzzy barrier");
        assert!(
            cy < 200,
            "1500 cycles of work hid inside the wait (overhead {cy} cy)"
        );
    }

    #[test]
    fn am_queue_receive_is_far_cheaper_than_interrupt() {
        // The Section 7 conclusion in one assertion.
        assert!(cost_of("dispatch") * 10 < cost_of("receive interrupt"));
    }

    #[test]
    fn table_renders_all_rows() {
        let t = sync_table();
        assert_eq!(t.rows.len(), sync_costs().len());
        assert!(t.to_string().contains("annex"));
    }
}
