//! Ablation studies: the design-choice what-ifs the paper's analysis
//! implies (Section 9), made runnable.
//!
//! * **Annex policy** — "a single Annex entry could have sufficed":
//!   compare update-always, update-skipping and hashed multi-register
//!   management on PE-interleaved access streams.
//! * **Write merging** — how much of the store bandwidth story is the
//!   merge window.
//! * **Prefetch queue depth** — "the choice of 16 seems to be a
//!   reasonable one": sweep the depth and watch the returns diminish.
//! * **User-level BLT** — "the BLT would be greatly improved if access
//!   were from user level": shrink the 180 µs invocation and watch the
//!   prefetch/BLT crossover collapse.

use crate::report::{Series, Table};
use splitc::{AnnexPolicy, GlobalPtr, SplitC, SplitcConfig};
use t3d_machine::MachineConfig;

/// Average cost (cycles) of a Split-C read when successive reads
/// round-robin over `distinct_pes` target processors, under `policy`.
pub fn annex_policy_read_cost(policy: AnnexPolicy, distinct_pes: usize, reads: usize) -> f64 {
    let mut cfg = SplitcConfig::t3d();
    cfg.annex_policy = policy;
    // Machines are power-of-two sized; surplus PEs sit idle.
    let nodes = (1 + distinct_pes as u32).next_power_of_two();
    let mut sc = SplitC::with_config(MachineConfig::t3d(nodes), cfg);
    let buf = sc.alloc(8 * reads as u64, 8);
    sc.on(0, |ctx| {
        // Warm TLB entries for every target segment.
        for t in 0..distinct_pes {
            let _ = ctx.read_u64(GlobalPtr::new(1 + t as u32, buf));
        }
        let t0 = ctx.clock();
        for i in 0..reads {
            let target = 1 + (i % distinct_pes) as u32;
            let _ = ctx.read_u64(GlobalPtr::new(target, buf + (i as u64) * 8));
        }
        (ctx.clock() - t0) as f64 / reads as f64
    })
}

/// The annex-policy ablation: one series per policy over the number of
/// distinct target PEs in the stream.
pub fn annex_policy_sweep() -> Vec<Series> {
    let policies = [
        ("update always (paper)", AnnexPolicy::SingleRegister),
        ("single, cached", AnnexPolicy::SingleRegisterCached),
        ("hashed multi", AnnexPolicy::HashedMulti),
    ];
    policies
        .into_iter()
        .map(|(label, policy)| Series {
            label: label.to_string(),
            points: [1usize, 2, 4, 8, 16]
                .iter()
                .map(|&k| (k as u64, annex_policy_read_cost(policy, k, 64)))
                .collect(),
        })
        .collect()
}

/// Bulk store bandwidth (MB/s) with and without write merging.
pub fn merge_ablation(bytes: u64) -> [(String, f64); 2] {
    let run = |merge: bool| -> f64 {
        let mut mcfg = MachineConfig::t3d(2);
        mcfg.mem.wbuf.merge = merge;
        let mut sc = SplitC::new(mcfg);
        let src = sc.alloc(bytes, 8);
        let dst = sc.alloc(bytes, 8);
        sc.on(0, |ctx| {
            ctx.bulk_write(GlobalPtr::new(1, dst), src, bytes);
        });
        bytes as f64 / (sc.machine_ref().clock(0) as f64 / 150.0e6) / 1e6
    };
    [
        ("merging (real 21064)".to_string(), run(true)),
        ("no merging (ablated)".to_string(), run(false)),
    ]
}

/// Per-element pipelined read cost (ns) as a function of prefetch queue
/// depth.
pub fn prefetch_depth_sweep(bytes: u64) -> Series {
    let points = [2usize, 4, 8, 16, 32, 64]
        .iter()
        .map(|&depth| {
            let mut mcfg = MachineConfig::t3d(2);
            mcfg.shell.prefetch_depth = depth;
            let mut sc = SplitC::new(mcfg);
            let src = sc.alloc(bytes, 8);
            let dst = sc.alloc(bytes, 8);
            let cy = sc.on(0, |ctx| {
                let t0 = ctx.clock();
                ctx.bulk_read_prefetch(dst, GlobalPtr::new(1, src), bytes);
                ctx.clock() - t0
            });
            (
                depth as u64,
                cy as f64 / (bytes / 8) as f64 * 6.666_666_666_666_667,
            )
        })
        .collect();
    Series {
        label: "prefetch read, ns/word".to_string(),
        points,
    }
}

/// The prefetch-vs-BLT crossover size (bytes) for a given BLT start-up
/// cost, found by doubling the transfer size.
pub fn blt_crossover_for_startup(startup_cy: u64) -> u64 {
    let mut n = 64u64;
    while n <= 16 * 1024 * 1024 {
        let mut mcfg = MachineConfig::t3d(2);
        mcfg.shell.blt_startup_cy = startup_cy;
        let mut sc = SplitC::new(mcfg);
        let src = sc.alloc(n, 8);
        let dst = sc.alloc(n, 8);
        let t_pf = sc.on(0, |ctx| {
            let t0 = ctx.clock();
            ctx.bulk_read_prefetch(dst, GlobalPtr::new(1, src), n);
            ctx.clock() - t0
        });
        let mut mcfg2 = MachineConfig::t3d(2);
        mcfg2.shell.blt_startup_cy = startup_cy;
        let mut sc2 = SplitC::new(mcfg2);
        let src2 = sc2.alloc(n, 8);
        let dst2 = sc2.alloc(n, 8);
        let t_blt = sc2.on(0, |ctx| {
            let t0 = ctx.clock();
            ctx.bulk_read_blt(dst2, GlobalPtr::new(1, src2), n);
            ctx.clock() - t0
        });
        if t_blt < t_pf {
            return n;
        }
        n *= 2;
    }
    n
}

/// Renders the whole ablation report.
pub fn ablation_tables() -> Vec<Table> {
    let mut out = Vec::new();
    out.push(crate::report::series_table(
        "Annex policy ablation (avg Split-C read cycles vs distinct target PEs)",
        "PEs",
        &annex_policy_sweep(),
    ));
    let merge = merge_ablation(64 * 1024);
    out.push(Table {
        title: "Write-merging ablation (64 KB bulk store)".into(),
        headers: vec!["configuration".into(), "MB/s".into()],
        rows: merge
            .iter()
            .map(|(l, v)| vec![l.clone(), format!("{v:.1}")])
            .collect(),
    });
    out.push(crate::report::series_table(
        "Prefetch queue depth ablation (4 KB bulk read)",
        "depth",
        &[prefetch_depth_sweep(4096)],
    ));
    let rows = [27_000u64, 10_000, 3_000, 1_000, 0]
        .iter()
        .map(|&st| {
            vec![
                format!("{:.0} us", st as f64 / 150.0),
                crate::report::human_bytes(blt_crossover_for_startup(st)),
            ]
        })
        .collect();
    out.push(Table {
        title: "BLT start-up ablation: prefetch->BLT crossover size".into(),
        headers: vec!["BLT start-up".into(), "crossover".into()],
        rows,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_register_never_loses_badly() {
        // The paper's conclusion: the table lookup saves little against
        // the 23-cycle update, so one register suffices.
        for k in [1usize, 4, 16] {
            let always = annex_policy_read_cost(AnnexPolicy::SingleRegister, k, 64);
            let hashed = annex_policy_read_cost(AnnexPolicy::HashedMulti, k, 64);
            assert!(
                always < hashed * 1.25,
                "at {k} PEs: update-always {always:.0} cy vs hashed {hashed:.0} cy"
            );
        }
    }

    #[test]
    fn cached_single_register_wins_on_one_target() {
        let always = annex_policy_read_cost(AnnexPolicy::SingleRegister, 1, 64);
        let cached = annex_policy_read_cost(AnnexPolicy::SingleRegisterCached, 1, 64);
        assert!(
            cached < always,
            "skipping the update saves ~23 cy: {cached:.0} vs {always:.0}"
        );
    }

    #[test]
    fn merging_carries_the_store_bandwidth() {
        let [(_, with), (_, without)] = merge_ablation(32 * 1024);
        assert!((85.0..95.0).contains(&with), "merged {with:.1} MB/s");
        assert!(
            without < with * 0.85,
            "unmerged stores lose bandwidth: {without:.1} vs {with:.1} MB/s"
        );
    }

    #[test]
    fn depth_16_captures_most_of_the_pipelining() {
        let s = prefetch_depth_sweep(4096);
        let d4 = s.at(4).unwrap();
        let d16 = s.at(16).unwrap();
        let d64 = s.at(64).unwrap();
        assert!(
            d16 < d4 * 0.75,
            "16 beats 4 clearly: {d16:.0} vs {d4:.0} ns"
        );
        assert!(
            d64 > d16 * 0.85,
            "depth 64 buys little over 16: {d64:.0} vs {d16:.0} ns (paper: 16 is reasonable)"
        );
    }

    #[test]
    fn user_level_blt_would_move_the_crossover() {
        let os_level = blt_crossover_for_startup(27_000);
        let user_level = blt_crossover_for_startup(1_000);
        assert!(
            (8 * 1024..=32 * 1024).contains(&os_level),
            "OS-level crossover {os_level} B (paper: ~16 KB)"
        );
        assert!(
            user_level <= os_level / 8,
            "user-level BLT crossover {user_level} B vs {os_level} B"
        );
    }
}
