//! Cycle-attribution scenarios for the `t3d-perf` harness.
//!
//! Each scenario stimulates one mechanism (like the latency probes do)
//! but returns the profiler's [`PerfReport`] instead of a latency: the
//! interesting output is *where the cycles went*. The suite doubles as
//! the conservation corpus — for every scenario, the sum of all cost
//! classes must equal the elapsed virtual cycles, under both the
//! sequential and the parallel phase driver.

use splitc::{GlobalPtr, SplitC};
use t3d_machine::{EngineMode, Machine, MachineConfig, PerfMode, PerfReport, PhaseDriver};
use t3d_shell::blt::BltDirection;
use t3d_shell::{AnnexEntry, FuncCode};

/// What one scenario execution produced: the attribution report plus a
/// determinism fingerprint of the final machine state.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// The profiler's cycle-attribution report.
    pub report: PerfReport,
    /// FNV-1a checksum over [`Machine::snapshot_region`] (memory bytes
    /// plus the virtual clocks) at scenario end. Identical across phase
    /// drivers and repeated runs; the throughput bench compares it so a
    /// fast-but-wrong engine fails instead of posting a great rate.
    pub checksum: u64,
    /// Host seconds this run spent outside simulation: constructing the
    /// machine (arena zeroing dominates) before the scenario started,
    /// plus snapshotting and checksumming the final state after it
    /// ended. The throughput harness subtracts it from the rate
    /// denominator via [`t3d_perf::measure_split`]; it is host time, so
    /// it is excluded from equality.
    pub setup_secs: f64,
}

impl PartialEq for ScenarioRun {
    /// Equality covers only the deterministic fields — the report and
    /// the state checksum. `setup_secs` is host wall time and varies
    /// run to run.
    fn eq(&self, other: &Self) -> bool {
        self.report == other.report && self.checksum == other.checksum
    }
}

/// One named attribution scenario.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Stable name (the key in `BENCH_micro.json`).
    pub name: &'static str,
    /// Runs the scenario under the given phase driver and time-advance
    /// engine, returning the attribution report and checksum. Both
    /// dimensions are bit-identity contracts: scenarios that never
    /// enter a sharded phase ignore the driver, but every scenario
    /// honours the engine mode.
    pub run: fn(PhaseDriver, EngineMode) -> ScenarioRun,
}

/// Every scenario confines its traffic to the first megabyte of each
/// node, so the checksum region covers all bytes any of them can touch.
const SNAP_BYTES: u64 = 1 << 20;

/// Captures the scenario's result: report plus state fingerprint. The
/// snapshot copy and FNV pass touch [`SNAP_BYTES`] per PE — on a tiny
/// scenario that verification sweep, not the simulation, dominates the
/// host wall time — so its host seconds join the excluded overhead.
fn finish(m: &Machine, setup_secs: f64) -> ScenarioRun {
    let t = std::time::Instant::now();
    let checksum = m.snapshot_region(0, SNAP_BYTES).fnv64();
    ScenarioRun {
        report: m.perf(),
        checksum,
        setup_secs: setup_secs + t.elapsed().as_secs_f64(),
    }
}

/// Every scenario, in report order.
pub fn all() -> &'static [Scenario] {
    &[
        Scenario {
            name: "local.read.stream",
            run: local_read_stream,
        },
        Scenario {
            name: "local.write.burst",
            run: local_write_burst,
        },
        Scenario {
            name: "remote.read.uncached",
            run: remote_read_uncached,
        },
        Scenario {
            name: "remote.read.cached",
            run: remote_read_cached,
        },
        Scenario {
            name: "remote.write.block",
            run: remote_write_block,
        },
        Scenario {
            name: "remote.write.pipeline",
            run: remote_write_pipeline,
        },
        Scenario {
            name: "prefetch.pipeline",
            run: prefetch_pipeline,
        },
        Scenario {
            name: "bulk.blt",
            run: bulk_blt,
        },
        Scenario {
            name: "sync.barrier",
            run: sync_barrier,
        },
        Scenario {
            name: "sync.fetchinc",
            run: sync_fetchinc,
        },
        Scenario {
            name: "msg.pingpong",
            run: msg_pingpong,
        },
        Scenario {
            name: "phase.exchange",
            run: phase_exchange,
        },
        Scenario {
            name: "splitc.getput",
            run: splitc_getput,
        },
    ]
}

/// Node memory for scenario machines. Scenarios confine their traffic
/// to [`SNAP_BYTES`]; the T3D's full 16 MB would only add host time
/// zero-initializing bytes no scenario can reach (memory size gates the
/// range checks, never the timing model, so virtual cycles are
/// unaffected — the throughput bench's cycle gate pins that).
const NODE_MEM: usize = 2 << 20;

fn machine(pes: u32, engine: EngineMode) -> (Machine, f64) {
    let t = std::time::Instant::now();
    let mut cfg = MachineConfig::t3d_with_mem(pes, NODE_MEM);
    cfg.engine = engine;
    let mut m = Machine::new(cfg);
    m.set_perf_mode(PerfMode::Counters);
    (m, t.elapsed().as_secs_f64())
}

fn aim(m: &mut Machine, pe: usize, target: u32, func: FuncCode) -> u64 {
    m.annex_set(pe, 1, AnnexEntry { pe: target, func });
    m.va(1, 0)
}

/// Strided local reads: a miss pass over 16 KB, then a hit pass over the
/// resident prefix — L1 hits, DRAM page hits and misses all appear.
fn local_read_stream(_d: PhaseDriver, engine: EngineMode) -> ScenarioRun {
    let (mut m, setup) = machine(1, engine);
    for i in 0..512u64 {
        let _ = m.ld8(0, i * 32);
    }
    for i in 0..256u64 {
        let _ = m.ld8(0, i * 8);
    }
    finish(&m, setup)
}

/// Local write bursts: merging stores within a line, page-hopping stores
/// that stall the write buffer, and the drain at the barrier.
fn local_write_burst(_d: PhaseDriver, engine: EngineMode) -> ScenarioRun {
    let (mut m, setup) = machine(1, engine);
    for i in 0..128u64 {
        m.st8(0, i * 8, i);
    }
    for i in 0..32u64 {
        m.st8(0, i * 16 * 1024, i);
    }
    m.memory_barrier(0);
    finish(&m, setup)
}

/// The Figure 4 uncached probe, attributed: shell launch, network and
/// remote DRAM should dominate.
fn remote_read_uncached(_d: PhaseDriver, engine: EngineMode) -> ScenarioRun {
    let (mut m, setup) = machine(2, engine);
    let base = aim(&mut m, 0, 1, FuncCode::Uncached);
    for i in 0..64u64 {
        let _ = m.ld8(0, base + i * 64);
    }
    finish(&m, setup)
}

/// Cached remote reads at word stride: one line fill amortized over
/// three L1 hits.
fn remote_read_cached(_d: PhaseDriver, engine: EngineMode) -> ScenarioRun {
    let (mut m, setup) = machine(2, engine);
    let base = aim(&mut m, 0, 1, FuncCode::Cached);
    for i in 0..256u64 {
        let _ = m.ld8(0, base + i * 8);
    }
    finish(&m, setup)
}

/// Blocking remote writes: store, fence, ack wait — every iteration.
fn remote_write_block(_d: PhaseDriver, engine: EngineMode) -> ScenarioRun {
    let (mut m, setup) = machine(2, engine);
    let base = aim(&mut m, 0, 1, FuncCode::Uncached);
    for i in 0..32u64 {
        m.st8(0, base + i * 64, i);
        m.memory_barrier(0);
        m.wait_write_acks(0);
    }
    finish(&m, setup)
}

/// Pipelined remote writes (Figure 7's put idiom): a burst of stores,
/// one fence, one ack wait.
fn remote_write_pipeline(_d: PhaseDriver, engine: EngineMode) -> ScenarioRun {
    let (mut m, setup) = machine(2, engine);
    let base = aim(&mut m, 0, 1, FuncCode::Uncached);
    for i in 0..64u64 {
        m.st8(0, base + i * 64, i);
    }
    m.memory_barrier(0);
    m.wait_write_acks(0);
    finish(&m, setup)
}

/// Prefetch groups (Figure 6's group-of-4 sweep): issue, fence, pop.
fn prefetch_pipeline(_d: PhaseDriver, engine: EngineMode) -> ScenarioRun {
    let (mut m, setup) = machine(2, engine);
    let base = aim(&mut m, 0, 1, FuncCode::Uncached);
    for g in 0..16u64 {
        let mut issued = 0u64;
        for i in 0..4u64 {
            if m.fetch(0, base + (g * 4 + i) * 64) {
                issued += 1;
            }
        }
        m.memory_barrier(0);
        for _ in 0..issued {
            m.pop_prefetch(0).expect("fetched values must pop");
        }
    }
    finish(&m, setup)
}

/// One BLT block write and its completion wait.
fn bulk_blt(_d: PhaseDriver, engine: EngineMode) -> ScenarioRun {
    let (mut m, setup) = machine(2, engine);
    for i in 0..512u64 {
        m.poke_mem(0, 0x8000 + i * 8, &i.to_le_bytes());
    }
    let h = m.blt_start(0, BltDirection::Write, 0x8000, 1, 0x8000, 4096);
    m.blt_wait(0, h);
    finish(&m, setup)
}

/// Skewed barrier episodes: overhead plus wait for the laggard.
fn sync_barrier(_d: PhaseDriver, engine: EngineMode) -> ScenarioRun {
    let (mut m, setup) = machine(4, engine);
    for round in 0..8u64 {
        for pe in 0..4usize {
            m.advance(pe, 50 + (pe as u64) * 37 + round * 11);
        }
        m.barrier_all();
    }
    finish(&m, setup)
}

/// Fetch&increment tickets against a remote register.
fn sync_fetchinc(_d: PhaseDriver, engine: EngineMode) -> ScenarioRun {
    let (mut m, setup) = machine(2, engine);
    for _ in 0..32 {
        let _ = m.fetch_inc(0, 1, 0);
    }
    finish(&m, setup)
}

/// Message ping-pong: the 122-cycle PAL send and the receive dispatch.
fn msg_pingpong(_d: PhaseDriver, engine: EngineMode) -> ScenarioRun {
    let (mut m, setup) = machine(2, engine);
    for round in 0..8u64 {
        m.msg_send(0, 1, [round, 0, 0, 0]);
        let target = m.clock(0) + 10_000;
        let now = m.clock(1);
        m.advance(1, target.saturating_sub(now));
        m.msg_receive(1).expect("ping arrived");
        m.msg_send(1, 0, [round, 1, 0, 0]);
        let target = m.clock(1) + 10_000;
        let now = m.clock(0);
        m.advance(0, target.saturating_sub(now));
        m.msg_receive(0).expect("pong arrived");
    }
    finish(&m, setup)
}

/// A bulk-synchronous neighbour exchange through the sharded engine —
/// the scenario that exercises the parallel driver's attribution.
fn phase_exchange(d: PhaseDriver, engine: EngineMode) -> ScenarioRun {
    let (mut m, setup) = machine(4, engine);
    for _ in 0..4 {
        m.sharded_phase(d, |cpu| {
            let pe = cpu.pe();
            let right = ((pe + 1) % cpu.nodes()) as u32;
            cpu.annex_set(1, right, FuncCode::Uncached);
            let va = cpu.va(1, 0x2000 + pe as u64 * 8);
            cpu.st8(va, (pe as u64) << 8);
            cpu.memory_barrier();
            cpu.wait_write_acks();
        });
        m.barrier_all();
        m.sharded_phase(d, |cpu| {
            let pe = cpu.pe();
            let left = (pe + cpu.nodes() - 1) % cpu.nodes();
            let v = cpu.ld8(0x2000 + left as u64 * 8);
            assert_eq!(v, (left as u64) << 8, "exchange delivered");
        });
        m.barrier_all();
    }
    finish(&m, setup)
}

/// Split-C gets and puts through the parallel phase driver.
fn splitc_getput(d: PhaseDriver, engine: EngineMode) -> ScenarioRun {
    // Full-size nodes: the Split-C runtime anchors its active-message
    // region at the top of memory, so shrinking node memory would move
    // those addresses and change DRAM timing.
    let t = std::time::Instant::now();
    let mut cfg = MachineConfig::t3d(4);
    cfg.engine = engine;
    let mut sc = SplitC::new(cfg);
    let src = sc.alloc(256, 8);
    let dst = sc.alloc(256, 8);
    for pe in 0..4usize {
        for i in 0..8u64 {
            sc.machine().poke8(pe, src + i * 8, pe as u64 * 100 + i);
        }
    }
    sc.machine().set_perf_mode(PerfMode::Counters);
    let setup = t.elapsed().as_secs_f64();
    for _ in 0..2 {
        sc.par_phase_with(d, |ctx| {
            let right = ((ctx.pe() + 1) % ctx.nodes()) as u32;
            for i in 0..8u64 {
                ctx.get(dst + i * 8, GlobalPtr::new(right, src + i * 8));
            }
            ctx.sync();
            ctx.put(GlobalPtr::new(right, dst + 64), ctx.pe() as u64);
            ctx.sync();
        });
        sc.barrier();
    }
    finish(sc.machine_ref(), setup)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_attributes_something() {
        for s in all() {
            let run = (s.run)(PhaseDriver::Seq, EngineMode::Cycle);
            assert!(run.report.total() > 0, "{} attributed no cycles", s.name);
            assert_ne!(run.checksum, 0, "{} produced no fingerprint", s.name);
        }
    }

    #[test]
    fn remote_scenarios_show_remote_cycles() {
        for name in ["remote.read.uncached", "remote.write.block", "bulk.blt"] {
            let s = all().iter().find(|s| s.name == name).unwrap();
            let report = (s.run)(PhaseDriver::Seq, EngineMode::Cycle).report;
            assert!(
                report.remote_share() > 0.2,
                "{name} remote share {:.2}",
                report.remote_share()
            );
        }
    }
}
