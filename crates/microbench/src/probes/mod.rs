//! The probe collection, one module per paper artifact.

pub mod ablation;
pub mod attribution;
pub mod bulk;
pub mod hotspot;
pub mod local;
pub mod prefetch;
pub mod put;
pub mod remote;
pub mod sync;

pub use sync::sync_costs;

/// The default array sizes of the Figure 1/2 sweeps: 4 KB to 8 MB.
pub fn default_sizes() -> Vec<u64> {
    let mut v = Vec::new();
    let mut s = 4 * 1024u64;
    while s <= 8 * 1024 * 1024 {
        v.push(s);
        s *= 2;
    }
    v
}

/// Power-of-two strides from 8 bytes up to `size / 2`.
pub fn strides_for(size: u64, cap: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut s = 8u64;
    while s <= size / 2 && s <= cap {
        v.push(s);
        s *= 2;
    }
    v
}

/// All strides appearing anywhere in a size sweep (for table columns).
pub fn all_strides(sizes: &[u64], cap: u64) -> Vec<u64> {
    let max = sizes.iter().copied().max().unwrap_or(16);
    strides_for(max, cap)
}
