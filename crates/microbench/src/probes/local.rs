//! Figures 1 and 2: local read and write latency profiles.
//!
//! The Saavedra-style sawtooth probe: step through an array of a given
//! size at a given stride and report the average latency per access.
//! Inflection points in the resulting surface reveal the cache size,
//! line size, DRAM page behaviour, bank count, TLB (on the workstation)
//! and write-buffer depth — all *inferred*, exactly as the paper infers
//! them from the real machine.

use crate::probes::{all_strides, strides_for};
use crate::report::StrideProfile;
use t3d_machine::{Machine, MachineConfig};

/// Which memory operation the probe performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// 8-byte loads.
    Read,
    /// 8-byte stores.
    Write,
}

/// Runs the sawtooth probe for one (size, stride) cell and returns the
/// average latency in cycles.
fn probe_cell(m: &mut Machine, op: Op, size: u64, stride: u64) -> f64 {
    m.reset_timing();
    // Two passes: the first warms caches/TLB, the second is measured —
    // the probe's analogue of the paper's repetition loop with overhead
    // subtracted.
    for pass in 0..2 {
        let t0 = m.clock(0);
        let mut accesses = 0u64;
        let mut a = 0u64;
        while a < size {
            match op {
                Op::Read => {
                    let _ = m.ld8(0, a);
                }
                Op::Write => m.st8(0, a, a),
            }
            accesses += 1;
            a += stride;
        }
        if pass == 1 {
            return (m.clock(0) - t0) as f64 / accesses as f64;
        }
    }
    unreachable!("second pass returns");
}

/// The Figure 1 / Figure 2 surface for a machine configuration.
///
/// `cap_stride` bounds the largest stride probed (use `u64::MAX` for the
/// full paper sweep).
pub fn profile(cfg: MachineConfig, op: Op, sizes: &[u64], cap_stride: u64) -> StrideProfile {
    let mut m = Machine::new(cfg);
    let cycle_ns = m.cycle_ns();
    let strides = all_strides(sizes, cap_stride);
    let mut avg_ns = Vec::new();
    for &size in sizes {
        let valid = strides_for(size, cap_stride);
        let row = strides
            .iter()
            .map(|&st| {
                valid
                    .contains(&st)
                    .then(|| probe_cell(&mut m, op, size, st) * cycle_ns)
            })
            .collect();
        avg_ns.push(row);
    }
    StrideProfile {
        label: format!(
            "{} local {}",
            if cfg.mem.l2.is_some() {
                "DEC workstation"
            } else {
                "T3D"
            },
            if op == Op::Read { "read" } else { "write" },
        ),
        sizes: sizes.to_vec(),
        strides,
        avg_ns,
    }
}

/// Figure 1, left: the T3D local read profile.
pub fn read_profile(sizes: &[u64], cap_stride: u64) -> StrideProfile {
    profile(MachineConfig::t3d(1), Op::Read, sizes, cap_stride)
}

/// Figure 1, right: the DEC workstation read profile.
pub fn workstation_read_profile(sizes: &[u64], cap_stride: u64) -> StrideProfile {
    profile(
        MachineConfig::dec_workstation(),
        Op::Read,
        sizes,
        cap_stride,
    )
}

/// Figure 2: the T3D local write profile.
pub fn write_profile(sizes: &[u64], cap_stride: u64) -> StrideProfile {
    profile(MachineConfig::t3d(1), Op::Write, sizes, cap_stride)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sizes() -> Vec<u64> {
        vec![4 * 1024, 8 * 1024, 16 * 1024, 64 * 1024, 256 * 1024]
    }

    #[test]
    fn cached_plateau_is_one_cycle() {
        let p = read_profile(&small_sizes(), 1 << 20);
        for stride in [8, 16, 32, 64] {
            let ns = p.at(4 * 1024, stride).unwrap();
            assert!(
                (6.0..8.0).contains(&ns),
                "4 KB array at stride {stride}: {ns} ns (expect ~6.67)"
            );
        }
        let ns = p.at(8 * 1024, 8).unwrap();
        assert!((6.0..8.0).contains(&ns), "8 KB array still fits: {ns} ns");
    }

    #[test]
    fn memory_plateau_is_145ns() {
        let p = read_profile(&small_sizes(), 1 << 20);
        let ns = p.at(64 * 1024, 32).unwrap();
        assert!(
            (140.0..160.0).contains(&ns),
            "line-stride miss: {ns} ns (expect ~145)"
        );
    }

    #[test]
    fn off_page_plateau_is_205ns_and_same_bank_is_264ns() {
        let p = read_profile(&[256 * 1024], 1 << 20);
        let off_page = p.at(256 * 1024, 16 * 1024).unwrap();
        assert!(
            (195.0..225.0).contains(&off_page),
            "16 KB stride: {off_page} ns (expect ~205)"
        );
        let same_bank = p.at(256 * 1024, 64 * 1024).unwrap();
        assert!(
            (250.0..285.0).contains(&same_bank),
            "64 KB stride: {same_bank} ns (expect ~264)"
        );
        assert!(same_bank > off_page, "the 64 KB stride is the worst case");
    }

    #[test]
    fn intermediate_strides_interpolate() {
        // At stride 8 with a big array: one miss per 4 accesses.
        let p = read_profile(&[64 * 1024], 1 << 20);
        let ns8 = p.at(64 * 1024, 8).unwrap();
        let ns32 = p.at(64 * 1024, 32).unwrap();
        assert!(ns8 < ns32 / 2.0, "stride 8 amortizes the line fill");
    }

    #[test]
    fn workstation_shows_l2_and_slower_memory() {
        let ws = workstation_read_profile(&[64 * 1024, 2 * 1024 * 1024], 1 << 21);
        let t3d = read_profile(&[64 * 1024, 2 * 1024 * 1024], 1 << 21);
        // 64 KB fits the workstation L2 but not the T3D's absent one.
        let ws_l2 = ws.at(64 * 1024, 32).unwrap();
        let t3d_mem = t3d.at(64 * 1024, 32).unwrap();
        assert!(
            ws_l2 < t3d_mem,
            "L2 hit {ws_l2} ns beats T3D memory {t3d_mem} ns"
        );
        // 2 MB busts the L2: the workstation's memory is ~2x slower.
        let ws_mem = ws.at(2 * 1024 * 1024, 32).unwrap();
        assert!(
            ws_mem > 280.0,
            "workstation main memory {ws_mem} ns (expect ~300)"
        );
        assert!(ws_mem > t3d.at(2 * 1024 * 1024, 32).unwrap() * 1.7);
    }

    #[test]
    fn workstation_tlb_inflection_at_8k_stride() {
        // 2 MB array, strides 4K vs 8K: at 8 KB every access is a fresh
        // page and the 32-entry TLB thrashes.
        let ws = workstation_read_profile(&[2 * 1024 * 1024], 1 << 21);
        let s4k = ws.at(2 * 1024 * 1024, 4 * 1024).unwrap();
        let s8k = ws.at(2 * 1024 * 1024, 8 * 1024).unwrap();
        assert!(
            s8k > s4k + 50.0,
            "TLB inflection: 4K stride {s4k} ns vs 8K stride {s8k} ns"
        );
    }

    #[test]
    fn t3d_has_no_tlb_inflection() {
        let p = read_profile(&[2 * 1024 * 1024], 1 << 21);
        let s4k = p.at(2 * 1024 * 1024, 4 * 1024).unwrap();
        let s8k = p.at(2 * 1024 * 1024, 8 * 1024).unwrap();
        assert!(
            (s8k - s4k).abs() < 30.0,
            "huge pages: 4K {s4k} ns vs 8K {s8k} ns should be close"
        );
    }

    #[test]
    fn write_small_stride_is_20ns_and_line_stride_is_35ns() {
        let p = write_profile(&[64 * 1024], 1 << 20);
        let small = p.at(64 * 1024, 8).unwrap();
        assert!(
            (15.0..28.0).contains(&small),
            "merged writes: {small} ns (expect ~20)"
        );
        let line = p.at(64 * 1024, 32).unwrap();
        assert!(
            (30.0..45.0).contains(&line),
            "line-stride writes: {line} ns (expect ~35)"
        );
    }

    #[test]
    fn write_off_page_inflection_at_16k_stride() {
        let p = write_profile(&[256 * 1024], 1 << 20);
        let line = p.at(256 * 1024, 32).unwrap();
        let off = p.at(256 * 1024, 16 * 1024).unwrap();
        assert!(
            off > line + 5.0,
            "off-page writes slower: {line} -> {off} ns"
        );
    }

    #[test]
    fn writes_are_much_cheaper_than_reads_when_missing() {
        let w = write_profile(&[64 * 1024], 1 << 20);
        let r = read_profile(&[64 * 1024], 1 << 20);
        let wn = w.at(64 * 1024, 32).unwrap();
        let rn = r.at(64 * 1024, 32).unwrap();
        assert!(
            wn * 3.0 < rn,
            "write buffer hides latency: write {wn} vs read {rn} ns"
        );
    }
}
