//! Figure 6 and the Section 5.2 cost breakdown: the binding prefetch.
//!
//! The probe issues a *group* of prefetches, fences if the group is
//! smaller than the write-buffer push-out threshold, pops the queue and
//! stores the results locally. Average latency per element falls from
//! ~740 ns for a single prefetch to ~210 ns at the full queue depth of
//! 16 — the pipelining the paper credits with hiding 75% of remote
//! latency. The Split-C `get` adds table management (10 cycles) and
//! annex set-up on top.

use crate::report::{Series, Table};
use splitc::{GlobalPtr, SplitC};
use t3d_machine::{Machine, MachineConfig};
use t3d_shell::{AnnexEntry, FuncCode};

/// Average per-element cost (ns) of a raw prefetch group of size `g`.
pub fn raw_group_cost(m: &mut Machine, g: usize) -> f64 {
    m.reset_timing();
    m.annex_set(
        0,
        1,
        AnnexEntry {
            pe: 1,
            func: FuncCode::Uncached,
        },
    );
    // Warm the TLB for the remote segment.
    let _ = m.ld8(0, m.va(1, 0));
    let t0 = m.clock(0);
    for i in 0..g {
        let ok = m.fetch(0, m.va(1, (i as u64) * 8));
        assert!(ok, "group must fit the 16-entry queue");
    }
    m.memory_barrier(0);
    for i in 0..g {
        let v = m.pop_prefetch(0).expect("fenced");
        m.st8(0, 0x10_0000 + (i as u64) * 8, v);
    }
    (m.clock(0) - t0) as f64 / g as f64 * m.cycle_ns()
}

/// Average per-element cost (ns) of a Split-C `get` group of size `g`.
pub fn splitc_group_cost(sc: &mut SplitC, g: usize) -> f64 {
    sc.machine().reset_timing();
    sc.on(0, |ctx| {
        // Warm TLB.
        let _ = ctx.read_u64(GlobalPtr::new(1, 0));
        let t0 = ctx.clock();
        for i in 0..g {
            ctx.get(
                0x10_0000 + (i as u64) * 8,
                GlobalPtr::new(1, (i as u64) * 8),
            );
        }
        ctx.sync();
        (ctx.clock() - t0) as f64 / g as f64 * 6.666_666_666_666_667
    })
}

/// Average cost (ns) of `g` blocking uncached reads (the Figure 6
/// reference line).
pub fn blocking_group_cost(m: &mut Machine, g: usize) -> f64 {
    m.reset_timing();
    m.annex_set(
        0,
        1,
        AnnexEntry {
            pe: 1,
            func: FuncCode::Uncached,
        },
    );
    let _ = m.ld8(0, m.va(1, 0));
    let t0 = m.clock(0);
    for i in 0..g {
        let v = m.ld8(0, m.va(1, (i as u64) * 8));
        m.st8(0, 0x10_0000 + (i as u64) * 8, v);
    }
    (m.clock(0) - t0) as f64 / g as f64 * m.cycle_ns()
}

/// Figure 6: per-element latency vs group size for raw prefetch,
/// Split-C `get`, and blocking reads.
pub fn group_sweep() -> Vec<Series> {
    let mut m = Machine::new(MachineConfig::t3d(2));
    let mut sc = SplitC::new(MachineConfig::t3d(2));
    let mut raw = Vec::new();
    let mut get = Vec::new();
    let mut blocking = Vec::new();
    for g in 1..=16usize {
        raw.push((g as u64, raw_group_cost(&mut m, g)));
        get.push((g as u64, splitc_group_cost(&mut sc, g)));
        blocking.push((g as u64, blocking_group_cost(&mut m, g)));
    }
    vec![
        Series {
            label: "raw prefetch".into(),
            points: raw,
        },
        Series {
            label: "Split-C get".into(),
            points: get,
        },
        Series {
            label: "blocking read".into(),
            points: blocking,
        },
    ]
}

/// The Section 5.2 cost breakdown table: issue, memory barrier, round
/// trip, pop — measured from the simulated mechanisms.
pub fn cost_breakdown() -> Table {
    let mut m = Machine::new(MachineConfig::t3d(2));
    m.annex_set(
        0,
        1,
        AnnexEntry {
            pe: 1,
            func: FuncCode::Uncached,
        },
    );
    let _ = m.ld8(0, m.va(1, 0)); // warm TLB

    let t0 = m.clock(0);
    m.fetch(0, m.va(1, 8));
    let issue = m.clock(0) - t0;

    let t0 = m.clock(0);
    m.memory_barrier(0);
    let mb = m.clock(0) - t0;

    let t0 = m.clock(0);
    let _ = m.pop_prefetch(0).expect("fenced");
    let pop_plus_wait = m.clock(0) - t0;

    // Pop cost alone: pop immediately after the data must have arrived.
    m.fetch(0, m.va(1, 16));
    m.memory_barrier(0);
    m.advance(0, 10_000);
    let t0 = m.clock(0);
    let _ = m.pop_prefetch(0).expect("arrived long ago");
    let pop = m.clock(0) - t0;

    let round_trip = pop_plus_wait - pop;
    Table {
        title: "Prefetch cost breakdown (Section 5.2; paper: 4 / 4 / 80 / 23 cycles)".into(),
        headers: vec!["component".into(), "cycles".into()],
        rows: vec![
            vec!["prefetch issue".into(), issue.to_string()],
            vec!["memory barrier".into(), mb.to_string()],
            vec!["round trip".into(), round_trip.to_string()],
            vec!["prefetch pop".into(), pop.to_string()],
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_prefetch_slower_than_blocking_read_by_about_15_cycles() {
        let mut m = Machine::new(MachineConfig::t3d(2));
        let pf = raw_group_cost(&mut m, 1);
        let bl = blocking_group_cost(&mut m, 1);
        let delta_cy = (pf - bl) / m.cycle_ns();
        assert!(
            (5.0..35.0).contains(&delta_cy),
            "single prefetch is {delta_cy:.0} cy over a blocking read (paper: ~15)"
        );
    }

    #[test]
    fn group_of_16_costs_about_31_cycles_per_element() {
        let mut m = Machine::new(MachineConfig::t3d(2));
        let ns = raw_group_cost(&mut m, 16);
        let cy = ns / m.cycle_ns();
        assert!(
            (27.0..36.0).contains(&cy),
            "pipelined prefetch {cy:.0} cy (paper: 31)"
        );
    }

    #[test]
    fn latency_mostly_hidden_by_group_16() {
        let mut m = Machine::new(MachineConfig::t3d(2));
        let single = raw_group_cost(&mut m, 1);
        let full = raw_group_cost(&mut m, 16);
        assert!(
            full < single * 0.4,
            "group of 16 ({full:.0} ns) hides most of single-prefetch latency ({single:.0} ns)"
        );
    }

    #[test]
    fn sweep_is_monotone_decreasing_overall() {
        let series = group_sweep();
        let raw = &series[0];
        assert!(raw.points[0].1 > raw.points[15].1 * 2.0);
        // Split-C get sits above raw prefetch at every group size.
        let get = &series[1];
        for (i, (g, ns)) in get.points.iter().enumerate() {
            assert!(
                *ns > raw.points[i].1,
                "get ({ns:.0} ns) above raw ({:.0} ns) at group {g}",
                raw.points[i].1
            );
        }
    }

    #[test]
    fn breakdown_matches_published_components() {
        let t = cost_breakdown();
        let get = |name: &str| -> i64 {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .map(|r| r[1].parse().unwrap())
                .expect("row exists")
        };
        assert_eq!(get("prefetch issue"), 4);
        assert_eq!(get("memory barrier"), 4);
        assert_eq!(get("prefetch pop"), 23);
        let rt = get("round trip");
        assert!((70..=95).contains(&rt), "round trip {rt} cy (paper: 80)");
    }
}
