//! Micro-benchmark suite for the simulated CRAY-T3D.
//!
//! This crate is the reproduction of the paper's gray-box methodology:
//! simple probes that stimulate one mechanism at a time and report
//! average latencies or bandwidths, from which machine parameters are
//! *inferred* rather than assumed. One probe module per figure:
//!
//! | Paper artifact | Probe |
//! |----------------|-------|
//! | Figure 1 (local read, T3D + workstation) | [`probes::local::read_profile`] |
//! | Figure 2 (local write)                   | [`probes::local::write_profile`] |
//! | Figure 4 (remote read)                   | [`probes::remote::read_profiles`] |
//! | Figure 5 (remote write)                  | [`probes::remote::write_profiles`] |
//! | Figure 6 (prefetch group sweep)          | [`probes::prefetch::group_sweep`] |
//! | Figure 7 (non-blocking write / put)      | [`probes::put::nonblocking_profiles`] |
//! | Figure 8 (bulk bandwidth)                | [`probes::bulk::read_bandwidth`], [`probes::bulk::write_bandwidth`] |
//! | Figure 9 (EM3D)                          | re-exported from the `em3d` crate |
//! | §2 local parameter table                 | [`analysis`] |
//! | §5.2 prefetch cost breakdown             | [`probes::prefetch::cost_breakdown`] |
//! | §7 synchronization cost table            | [`probes::sync_costs`] |
//!
//! All probes return plain data ([`report::StrideProfile`],
//! [`report::Series`], [`report::Table`]) that the `t3d-bench` binary
//! renders as text, so the same code drives tests, benches and reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod probes;
pub mod report;

pub use report::{Series, StrideProfile, Table};
