//! `t3d-bench` — regenerates every table and figure of the paper as a
//! text report.
//!
//! Usage: `t3d-bench [fig1|fig2|fig4|fig5|fig6|fig7|fig8|fig9|tab-local|tab-prefetch|tab-sync|tab-mpp|ablations|hotspot|all] [--fast] [--out DIR] [--csv]`
//!
//! `--fast` shrinks the sweeps (for CI); `--out DIR` additionally writes
//! each report to `DIR/<name>.txt`; `--csv` (with `--out`) also writes
//! machine-readable CSV for the figure data.

use std::fmt::Write as _;
use std::io::Write as _;

use em3d::{fig9_sweep, Em3dParams};
use t3d_microbench::probes::{bulk, local, prefetch, put, remote, sync};
use t3d_microbench::report::{series_table, Series};
use t3d_microbench::{analysis, probes};

struct Opts {
    fast: bool,
    out: Option<std::path::PathBuf>,
    csv: bool,
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts {
        fast: false,
        out: None,
        csv: false,
    };
    if let Some(i) = args.iter().position(|a| a == "--fast") {
        args.remove(i);
        opts.fast = true;
    }
    if let Some(i) = args.iter().position(|a| a == "--csv") {
        args.remove(i);
        opts.csv = true;
    }
    if let Some(i) = args.iter().position(|a| a == "--out") {
        args.remove(i);
        if i < args.len() {
            opts.out = Some(args.remove(i).into());
        } else {
            eprintln!("--out requires a directory");
            std::process::exit(2);
        }
    }
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let known = [
        "fig1",
        "fig2",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "tab-local",
        "tab-prefetch",
        "tab-sync",
        "tab-mpp",
        "ablations",
        "hotspot",
        "all",
    ];
    if !known.contains(&cmd) {
        eprintln!("unknown command `{cmd}`; one of: {}", known.join(", "));
        std::process::exit(2);
    }
    let run = |name: &str| cmd == name || cmd == "all";

    if run("fig1") {
        emit(&opts, "fig1", &fig1(&opts));
        let sizes = local_sizes(&opts);
        emit_csv(
            &opts,
            "fig1_t3d",
            &local::read_profile(&sizes, u64::MAX).to_csv(),
        );
        emit_csv(
            &opts,
            "fig1_workstation",
            &local::workstation_read_profile(&sizes, u64::MAX).to_csv(),
        );
    }
    if run("fig2") {
        emit(&opts, "fig2", &fig2(&opts));
        emit_csv(
            &opts,
            "fig2",
            &local::write_profile(&local_sizes(&opts), u64::MAX).to_csv(),
        );
    }
    if run("fig4") {
        emit(&opts, "fig4", &fig4(&opts));
    }
    if run("fig5") {
        emit(&opts, "fig5", &fig5(&opts));
    }
    if run("fig6") {
        emit(&opts, "fig6", &fig6());
        emit_csv(
            &opts,
            "fig6",
            &t3d_microbench::report::series_csv("group", &prefetch::group_sweep()),
        );
    }
    if run("fig7") {
        emit(&opts, "fig7", &fig7(&opts));
    }
    if run("fig8") {
        emit(&opts, "fig8", &fig8(&opts));
        if opts.csv {
            let sizes = bulk::default_transfer_sizes();
            emit_csv(
                &opts,
                "fig8_read",
                &t3d_microbench::report::series_csv("bytes", &bulk::read_bandwidth(&sizes)),
            );
            emit_csv(
                &opts,
                "fig8_write",
                &t3d_microbench::report::series_csv("bytes", &bulk::write_bandwidth(&sizes)),
            );
        }
    }
    if run("fig9") {
        emit(&opts, "fig9", &fig9(&opts));
    }
    if run("tab-local") {
        emit(&opts, "tab-local", &tab_local(&opts));
    }
    if run("tab-prefetch") {
        emit(
            &opts,
            "tab-prefetch",
            &prefetch::cost_breakdown().to_string(),
        );
    }
    if run("tab-sync") {
        emit(&opts, "tab-sync", &sync::sync_table().to_string());
    }
    if run("tab-mpp") {
        emit(&opts, "tab-mpp", &remote::mpp_comparison().to_string());
    }
    if run("hotspot") {
        let series = t3d_microbench::probes::hotspot::hotspot_sweep();
        let mut body = series_table(
            "Hot spot: per-op fetch&increment cost (cycles) vs requesters",
            "requesters",
            &series,
        )
        .to_string();
        body.push_str(&t3d_microbench::report::ascii_plot(
            "\nshape (cycles vs requesters):",
            &series,
            48,
            10,
        ));
        emit(&opts, "hotspot", &body);
    }
    if run("ablations") {
        let body: String = t3d_microbench::probes::ablation::ablation_tables()
            .iter()
            .map(|t| format!("{t}\n"))
            .collect();
        emit(&opts, "ablations", &body);
    }
}

fn emit(opts: &Opts, name: &str, body: &str) {
    println!("{body}");
    if let Some(dir) = &opts.out {
        std::fs::create_dir_all(dir).expect("create output dir");
        let path = dir.join(format!("{name}.txt"));
        let mut f = std::fs::File::create(&path).expect("create report file");
        f.write_all(body.as_bytes()).expect("write report");
        eprintln!("wrote {}", path.display());
    }
}

/// Writes machine-readable CSV next to the text report (with `--csv`
/// and `--out`).
fn emit_csv(opts: &Opts, name: &str, csv: &str) {
    if !opts.csv {
        return;
    }
    let Some(dir) = &opts.out else { return };
    std::fs::create_dir_all(dir).expect("create output dir");
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, csv).expect("write csv");
    eprintln!("wrote {}", path.display());
}

fn local_sizes(opts: &Opts) -> Vec<u64> {
    if opts.fast {
        vec![4 * 1024, 8 * 1024, 16 * 1024, 64 * 1024, 256 * 1024]
    } else {
        probes::default_sizes()
    }
}

fn remote_sizes(opts: &Opts) -> Vec<u64> {
    if opts.fast {
        vec![64 * 1024]
    } else {
        vec![64 * 1024, 256 * 1024, 1024 * 1024]
    }
}

fn fig1(opts: &Opts) -> String {
    let sizes = local_sizes(opts);
    let mut s = String::new();
    let _ = writeln!(s, "{}", local::read_profile(&sizes, u64::MAX).to_table());
    let _ = writeln!(
        s,
        "{}",
        local::workstation_read_profile(&sizes, u64::MAX).to_table()
    );
    s
}

fn fig2(opts: &Opts) -> String {
    local::write_profile(&local_sizes(opts), u64::MAX)
        .to_table()
        .to_string()
}

fn fig4(opts: &Opts) -> String {
    let sizes = remote_sizes(opts);
    let mut s = String::new();
    for p in remote::read_profiles(&sizes, u64::MAX) {
        let _ = writeln!(s, "{}", p.to_table());
    }
    let (points, per_hop) = remote::hop_sweep();
    let _ = writeln!(s, "Uncached read latency vs hop distance (4x4x4 torus):");
    for (h, ns) in points {
        let _ = writeln!(s, "  {h} hops: {ns:.0} ns");
    }
    let _ = writeln!(
        s,
        "  fitted one-way per-hop cost: {per_hop:.1} cycles ({:.0} ns; paper: 2-3 cy / 13-20 ns)",
        per_hop * 6.67
    );
    s
}

fn fig5(opts: &Opts) -> String {
    let sizes = remote_sizes(opts);
    let mut s = String::new();
    for p in remote::write_profiles(&sizes, u64::MAX) {
        let _ = writeln!(s, "{}", p.to_table());
    }
    s
}

fn fig6() -> String {
    let series = prefetch::group_sweep();
    let mut s = series_table(
        "Prefetch group sweep (avg ns per element)",
        "group",
        &series,
    )
    .to_string();
    s.push_str(&t3d_microbench::report::ascii_plot(
        "\nshape (ns vs group size):",
        &series,
        48,
        12,
    ));
    s
}

fn fig7(opts: &Opts) -> String {
    let sizes = remote_sizes(opts);
    let mut s = String::new();
    for p in put::nonblocking_profiles(&sizes, u64::MAX) {
        let _ = writeln!(s, "{}", p.to_table());
    }
    s
}

fn fig8(opts: &Opts) -> String {
    let sizes = if opts.fast {
        vec![8, 32, 64, 128, 1024, 8 * 1024, 32 * 1024, 128 * 1024]
    } else {
        bulk::default_transfer_sizes()
    };
    let mut s = String::new();
    let reads = bulk::read_bandwidth(&sizes);
    let _ = writeln!(
        s,
        "{}",
        series_table("Bulk READ bandwidth (MB/s)", "bytes", &reads)
    );
    let writes = bulk::write_bandwidth(&sizes);
    let _ = writeln!(
        s,
        "{}",
        series_table("Bulk WRITE bandwidth (MB/s)", "bytes", &writes)
    );
    let _ = writeln!(s, "Best read mechanism by size:");
    for &n in &sizes {
        let _ = writeln!(s, "  {:>8} B: {}", n, bulk::best_read_mechanism(&reads, n));
    }
    s
}

fn fig9(opts: &Opts) -> String {
    let (nprocs, params, pcts): (u32, Em3dParams, Vec<f64>) = if opts.fast {
        (4, Em3dParams::tiny(0.0), vec![0.0, 10.0, 40.0])
    } else {
        (
            32,
            Em3dParams::paper(0.0),
            vec![0.0, 2.0, 5.0, 10.0, 20.0, 40.0],
        )
    };
    let sweep = fig9_sweep(nprocs, params, &pcts);
    let series: Vec<Series> = sweep
        .into_iter()
        .map(|(label, pts)| Series {
            label,
            points: pts.into_iter().map(|(pct, us)| (pct as u64, us)).collect(),
        })
        .collect();
    series_table(
        &format!(
            "EM3D: us per edge vs % remote edges ({nprocs} PEs, {} nodes/PE, degree {})",
            params.nodes_per_pe, params.degree
        ),
        "% remote",
        &series,
    )
    .to_string()
}

fn tab_local(opts: &Opts) -> String {
    let sizes = local_sizes(opts);
    let read = local::read_profile(&sizes, u64::MAX);
    let write = local::write_profile(&sizes, u64::MAX);
    let params = analysis::infer_local_params(&read, &write);
    let mut s = analysis::local_params_table(&params).to_string();
    // Streaming bandwidth needs an array beyond every cache level of
    // both machines (the workstation has a 512 KB L2).
    let big = vec![2 * 1024 * 1024u64];
    let _ = writeln!(
        s,
        "\nT3D streaming bandwidth: {:.0} MB/s (paper: ~220)",
        analysis::stream_bandwidth_mb(&local::read_profile(&big, 64))
    );
    let _ = writeln!(
        s,
        "Workstation streaming bandwidth: {:.0} MB/s (paper: ~half the T3D)",
        analysis::stream_bandwidth_mb(&local::workstation_read_profile(&big, 64))
    );
    s
}
