//! Blocking read and write (Section 4).
//!
//! The Split-C `read` appears on the right-hand side of an assignment
//! through a global pointer and blocks until the value arrives; `write`
//! blocks until the hardware acknowledgement returns. The study selects
//! *uncached* loads for read (cached loads would require a 23-cycle
//! flush to stay coherent, wiping out their bandwidth advantage) and the
//! acknowledged store, fenced and polled, for write.
//!
//! Composite costs land on the paper's measurements: read ≈ 128 cycles
//! (850 ns), write ≈ 147 cycles (981 ns), both dominated by the raw
//! remote access plus annex set-up.

use crate::gptr::GlobalPtr;
use crate::op::ScOp;
use crate::runtime::ScCtx;
use t3d_shell::FuncCode;
use t3dsan::{SanOp, WriteKind, NO_REG};

impl ScCtx<'_> {
    /// Blocking read of a 64-bit word through a global pointer.
    pub fn read_u64(&mut self, gp: GlobalPtr) -> u64 {
        self.rec(ScOp::ReadU64 { src: gp });
        self.rt.stats.reads += 1;
        if gp.pe() as usize == self.pe {
            // Local region of the global space: an ordinary load.
            let v = self.m.ld8(self.pe, gp.addr());
            self.san_emit(
                SanOp::Read {
                    target: gp.pe(),
                    addr: gp.addr(),
                    len: 8,
                    reg: NO_REG,
                },
                "read_u64",
            );
            return v;
        }
        let idx = self
            .rt
            .annex
            .ensure(self.m, self.pe, gp.pe(), FuncCode::Uncached);
        let va = self.m.va(idx, gp.addr());
        let v = self.m.ld8(self.pe, va);
        self.m.advance(self.pe, self.cfg.read_overhead_cy);
        self.san_emit(
            SanOp::Read {
                target: gp.pe(),
                addr: gp.addr(),
                len: 8,
                reg: idx as u32,
            },
            "read_u64",
        );
        v
    }

    /// Blocking read of a double.
    pub fn read_f64(&mut self, gp: GlobalPtr) -> f64 {
        f64::from_bits(self.read_u64(gp))
    }

    /// Blocking read through a *cached* remote load. Brings the whole
    /// 32-byte line into the local cache — incoherently. The caller (or
    /// compiler) is responsible for flushing before the line can go
    /// stale; see [`ScCtx::flush_remote_line`]. Kept public because the
    /// bulk-transfer comparison of Figure 8 needs it.
    pub fn read_u64_cached(&mut self, gp: GlobalPtr) -> u64 {
        self.rt.stats.reads += 1;
        if gp.pe() as usize == self.pe {
            let v = self.m.ld8(self.pe, gp.addr());
            self.san_emit(
                SanOp::Read {
                    target: gp.pe(),
                    addr: gp.addr(),
                    len: 8,
                    reg: NO_REG,
                },
                "read_u64_cached",
            );
            return v;
        }
        let idx = self
            .rt
            .annex
            .ensure(self.m, self.pe, gp.pe(), FuncCode::Cached);
        let va = self.m.va(idx, gp.addr());
        let v = self.m.ld8(self.pe, va);
        self.m.advance(self.pe, self.cfg.read_overhead_cy);
        self.san_emit(
            SanOp::CachedRead {
                target: gp.pe(),
                addr: gp.addr(),
                len: 8,
                reg: idx as u32,
            },
            "read_u64_cached",
        );
        v
    }

    /// Flushes the locally cached copy of a remote line (23 cycles —
    /// "equivalent to accessing main memory").
    pub fn flush_remote_line(&mut self, gp: GlobalPtr) {
        // The line may be cached under whichever annex index was used;
        // with the single-register policies that is register 1.
        let idx = self
            .rt
            .annex
            .ensure(self.m, self.pe, gp.pe(), FuncCode::Cached);
        let va = self.m.va(idx, gp.addr());
        let cost = self.m.node_mut(self.pe).port.flush_line(va);
        self.m.advance(self.pe, cost);
        self.san_emit(
            SanOp::CacheFlush {
                target: gp.pe(),
                addr: gp.addr(),
            },
            "flush_remote_line",
        );
    }

    /// Blocking write of a 64-bit word through a global pointer. Waits
    /// for completion whether the target is local or remote, preserving
    /// the language's sequential-consistency story (Section 4.5 explains
    /// why the *local* wait matters too).
    pub fn write_u64(&mut self, gp: GlobalPtr, value: u64) {
        self.rec(ScOp::WriteU64 { dst: gp, value });
        self.rt.stats.writes += 1;
        if gp.pe() as usize == self.pe {
            self.m.st8(self.pe, gp.addr(), value);
            self.m.memory_barrier(self.pe);
            self.san_emit(
                SanOp::Write {
                    target: gp.pe(),
                    addr: gp.addr(),
                    len: 8,
                    kind: WriteKind::Blocking,
                    reg: NO_REG,
                },
                "write_u64",
            );
            return;
        }
        let idx = self
            .rt
            .annex
            .ensure(self.m, self.pe, gp.pe(), FuncCode::Uncached);
        let va = self.m.va(idx, gp.addr());
        self.m.st8(self.pe, va, value);
        // The status bit cannot see writes still in the buffer: fence
        // first (the Section 4.3 subtlety), then poll.
        self.m.memory_barrier(self.pe);
        self.m.wait_write_acks(self.pe);
        self.m.advance(self.pe, self.cfg.write_overhead_cy);
        self.san_emit(
            SanOp::Write {
                target: gp.pe(),
                addr: gp.addr(),
                len: 8,
                kind: WriteKind::Blocking,
                reg: idx as u32,
            },
            "write_u64",
        );
    }

    /// Blocking write of a double.
    pub fn write_f64(&mut self, gp: GlobalPtr, value: f64) {
        self.write_u64(gp, value.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::SplitC;
    use crate::GlobalPtr;
    use t3d_machine::MachineConfig;

    fn sc() -> SplitC {
        SplitC::new(MachineConfig::t3d(2))
    }

    #[test]
    fn remote_read_returns_value_and_costs_about_128_cycles() {
        let mut s = sc();
        let off = s.alloc(64, 8);
        s.machine().poke8(1, off, 777);
        let cost = s.on(0, |ctx| {
            let gp = GlobalPtr::new(1, off);
            let _ = ctx.read_u64(gp); // warm TLB
            let t0 = ctx.clock();
            assert_eq!(ctx.read_u64(gp.local_add(8)), 0);
            ctx.clock() - t0
        });
        assert!(
            (115..=140).contains(&cost),
            "Split-C remote read cost {cost} cy (paper: ~128)"
        );
    }

    #[test]
    fn remote_write_lands_and_costs_about_147_cycles() {
        let mut s = sc();
        let off = s.alloc(64, 8);
        let cost = s.on(0, |ctx| {
            let gp = GlobalPtr::new(1, off);
            ctx.write_u64(gp, 5); // warm TLB
            let t0 = ctx.clock();
            ctx.write_u64(gp.local_add(8), 6);
            ctx.clock() - t0
        });
        assert_eq!(s.machine().peek8(1, off + 8), 6);
        assert!(
            (130..=165).contains(&cost),
            "Split-C remote write cost {cost} cy (paper: ~147)"
        );
    }

    #[test]
    fn local_global_pointer_access_is_cheap() {
        let mut s = sc();
        let off = s.alloc(64, 8);
        s.on(0, |ctx| {
            let gp = GlobalPtr::new(0, off);
            ctx.write_u64(gp, 9);
            let t0 = ctx.clock();
            assert_eq!(ctx.read_u64(gp), 9);
            assert!(ctx.clock() - t0 < 30, "local path avoids the shell");
        });
    }

    #[test]
    fn cached_read_requires_flush_to_see_updates() {
        let mut s = sc();
        let off = s.alloc(64, 8);
        s.machine().poke8(1, off, 1);
        s.on(0, |ctx| {
            let gp = GlobalPtr::new(1, off);
            assert_eq!(ctx.read_u64_cached(gp), 1);
            ctx.machine().poke8(1, off, 2); // owner updates
            assert_eq!(ctx.read_u64_cached(gp), 1, "stale cached line");
            ctx.flush_remote_line(gp);
            assert_eq!(ctx.read_u64_cached(gp), 2);
        });
    }

    #[test]
    fn f64_roundtrip() {
        let mut s = sc();
        let off = s.alloc(8, 8);
        s.on(0, |ctx| {
            let gp = GlobalPtr::new(1, off);
            ctx.write_f64(gp, 2.5);
            assert_eq!(ctx.read_f64(gp), 2.5);
        });
    }
}
