//! Split-C runtime for the simulated CRAY-T3D — the paper's "compiler
//! perspective".
//!
//! Split-C extends C with a global address space over an SPMD thread per
//! processor. This crate is the runtime the paper's gray-box study
//! produces: every language primitive is implemented on the fastest
//! shell mechanism the micro-benchmarks identified, with the semantic
//! workarounds the paper documents:
//!
//! * [`GlobalPtr`] — 64-bit global pointers: PE in the upper 16 bits,
//!   local address in the lower 48, with both *local* and *global*
//!   address arithmetic (Section 3.3).
//! * [`annex`] — annex-register management policies: the single-register
//!   scheme the paper settles on, the caching and hashed multi-register
//!   alternatives it weighs, and the deliberately unsafe multi-register
//!   scheme that reproduces the write-buffer synonym hazard
//!   (Section 3.4).
//! * [`ScCtx::read_u64`] / [`ScCtx::write_u64`] — blocking read and
//!   write on uncached loads and acknowledged stores (Section 4).
//! * [`ScCtx::get`] / [`ScCtx::put`] / [`ScCtx::sync`] — split-phase
//!   access on the binding prefetch queue and non-blocking stores, with
//!   the target-address table the paper describes (Section 5).
//! * [`ScCtx::store_u64`] + [`SplitC::all_store_sync`] /
//!   [`ScCtx::store_sync`] — signaling stores for bulk-synchronous and
//!   message-driven execution (Section 7).
//! * [`bulk`] — bulk transfer with the measured mechanism crossovers:
//!   uncached reads for 8 B, the prefetch queue up to 16 KB, the BLT
//!   beyond; stores for all bulk writes; 7,900 B prefetch/BLT crossover
//!   for non-blocking gets (Section 6).
//! * [`amq`] — the Active-Message-equivalent remote queue built from
//!   fetch&increment plus stores, which replaces the 25 µs interrupt
//!   path (Section 7.4), and on which correct byte writes are built
//!   (Section 4.5).
//!
//! # Example
//!
//! ```
//! use splitc::{GlobalPtr, SplitC};
//! use t3d_machine::MachineConfig;
//!
//! let mut sc = SplitC::new(MachineConfig::t3d(4));
//! let buf = sc.alloc(64, 8);
//! // Every node writes a word on its right neighbour.
//! sc.run_phase(|ctx| {
//!     let right = (ctx.pe() + 1) % ctx.nodes();
//!     let gp = GlobalPtr::new(right as u32, buf);
//!     ctx.write_u64(gp, 1000 + ctx.pe() as u64);
//! });
//! sc.barrier();
//! sc.run_phase(|ctx| {
//!     let left = (ctx.pe() + ctx.nodes() - 1) % ctx.nodes();
//!     let mine = GlobalPtr::new(ctx.pe() as u32, buf);
//!     assert_eq!(ctx.read_u64(mine), 1000 + left as u64);
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amq;
pub mod annex;
pub mod bulk;
pub mod bytewrite;
pub mod coll;
pub mod config;
pub mod getput;
pub mod gptr;
pub mod lock;
pub mod op;
pub mod record;
pub mod runtime;
pub mod rw;
pub mod spread;
pub mod store;

pub use annex::AnnexPolicy;
pub use config::SplitcConfig;
pub use gptr::GlobalPtr;
pub use lock::GlobalLock;
pub use op::{AddrSpan, OpFootprint, ScOp, ScOpKind};
pub use record::RecEvent;
pub use runtime::{NodeRt, ScCtx, SplitC};
pub use spread::SpreadArray;

pub use t3d_machine as machine;

pub use t3dsan::{DiagKind, Diagnostic, Report, SanitizeMode};
