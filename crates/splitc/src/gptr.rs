//! Global pointers: the Section 3 representation.
//!
//! A global pointer is a single 64-bit word — the same size as a local
//! pointer, so *transfer* is free — with the local address in the lower
//! 48 bits and the processor number in the upper 16. The Alpha's byte
//! manipulation instructions make extraction, construction and both
//! flavours of arithmetic fast:
//!
//! * **local addressing** treats the global space as segmented: an
//!   incremented pointer names the next location *on the same
//!   processor*;
//! * **global addressing** treats it as linear with the *processor
//!   varying fastest*, wrapping from the last processor to the next
//!   offset on the first.
//!
//! The meaning of a global pointer is independent of which processor
//! dereferences it, so pointers can be stored in shared data structures.

/// Bits reserved for the local address.
pub const ADDR_BITS: u32 = 48;
const ADDR_MASK: u64 = (1 << ADDR_BITS) - 1;

/// A Split-C global pointer.
///
/// # Example
///
/// ```
/// use splitc::GlobalPtr;
///
/// let p = GlobalPtr::new(3, 0x1000);
/// assert_eq!(p.pe(), 3);
/// assert_eq!(p.addr(), 0x1000);
/// assert_eq!(p.local_add(8).addr(), 0x1008);
/// // Global arithmetic on 4 processors: the PE varies fastest.
/// assert_eq!(p.global_add(1, 8, 4), GlobalPtr::new(0, 0x1008));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct GlobalPtr(u64);

impl GlobalPtr {
    /// The null global pointer (tests equal to 0, like a C pointer).
    pub const NULL: GlobalPtr = GlobalPtr(0);

    /// Constructs a pointer from its components.
    ///
    /// # Panics
    ///
    /// Panics if `addr` needs more than 48 bits.
    pub fn new(pe: u32, addr: u64) -> Self {
        assert!(addr <= ADDR_MASK, "local address exceeds 48 bits");
        GlobalPtr(((pe as u64) << ADDR_BITS) | addr)
    }

    /// The raw 64-bit representation (what would live in a register or a
    /// shared data structure).
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Reconstructs a pointer from its raw bits.
    pub fn from_bits(bits: u64) -> Self {
        GlobalPtr(bits)
    }

    /// Extraction: the processor component.
    pub fn pe(self) -> u32 {
        (self.0 >> ADDR_BITS) as u32
    }

    /// Extraction: the local-address component.
    pub fn addr(self) -> u64 {
        self.0 & ADDR_MASK
    }

    /// Null test (equality with 0, as in C).
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Local addressing: advance `bytes` on the same processor.
    ///
    /// With the T3D virtual-memory layout the address arithmetic can
    /// never overflow into the processor field in a correct program; we
    /// check it.
    ///
    /// # Panics
    ///
    /// Panics if the result overflows the 48-bit address field.
    pub fn local_add(self, bytes: u64) -> Self {
        let addr = self.addr() + bytes;
        assert!(
            addr <= ADDR_MASK,
            "local arithmetic overflowed into the PE field"
        );
        GlobalPtr::new(self.pe(), addr)
    }

    /// Local addressing: retreat `bytes` on the same processor.
    ///
    /// # Panics
    ///
    /// Panics if the result underflows.
    pub fn local_sub(self, bytes: u64) -> Self {
        let addr = self
            .addr()
            .checked_sub(bytes)
            .expect("local arithmetic underflow");
        GlobalPtr::new(self.pe(), addr)
    }

    /// Global addressing: advance `count` elements of `elem_bytes` with
    /// the processor component varying fastest over `nprocs` processors,
    /// wrapping from the last processor to the next offset on the first.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs` is zero or the current PE is out of range.
    pub fn global_add(self, count: u64, elem_bytes: u64, nprocs: u32) -> Self {
        assert!(nprocs > 0, "global addressing needs at least one processor");
        assert!(
            self.pe() < nprocs,
            "PE {} out of range for {nprocs} processors",
            self.pe()
        );
        let linear = self.pe() as u64 + count;
        let pe = (linear % nprocs as u64) as u32;
        let rows = linear / nprocs as u64;
        GlobalPtr::new(pe, self.addr() + rows * elem_bytes)
    }

    /// Index of this pointer in global (processor-fastest) order,
    /// relative to a base offset.
    pub fn global_index(self, base_addr: u64, elem_bytes: u64, nprocs: u32) -> u64 {
        let row = (self.addr() - base_addr) / elem_bytes;
        row * nprocs as u64 + self.pe() as u64
    }
}

impl std::fmt::Display for GlobalPtr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<PE{}:{:#x}>", self.pe(), self.addr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let p = GlobalPtr::new(65_535, ADDR_MASK);
        assert_eq!(p.pe(), 65_535);
        assert_eq!(p.addr(), ADDR_MASK);
        assert_eq!(GlobalPtr::from_bits(p.bits()), p);
    }

    #[test]
    fn null_is_zero() {
        assert!(GlobalPtr::NULL.is_null());
        assert!(GlobalPtr::new(0, 0).is_null());
        assert!(!GlobalPtr::new(0, 8).is_null());
        assert!(!GlobalPtr::new(1, 0).is_null());
    }

    #[test]
    fn local_arithmetic_stays_on_pe() {
        let p = GlobalPtr::new(9, 0x100);
        assert_eq!(p.local_add(0x20).pe(), 9);
        assert_eq!(p.local_add(0x20).local_sub(0x20), p);
    }

    #[test]
    fn global_arithmetic_wraps_processors() {
        let p = GlobalPtr::new(2, 0);
        let q = p.global_add(1, 8, 4);
        assert_eq!((q.pe(), q.addr()), (3, 0));
        let r = q.global_add(1, 8, 4);
        assert_eq!((r.pe(), r.addr()), (0, 8), "wrapped to the next row");
        let s = p.global_add(9, 8, 4);
        assert_eq!((s.pe(), s.addr()), (3, 16));
    }

    #[test]
    fn global_index_inverts_global_add() {
        let base = GlobalPtr::new(0, 0x1000);
        for i in 0..64 {
            let p = base.global_add(i, 8, 4);
            assert_eq!(p.global_index(0x1000, 8, 4), i);
        }
    }

    #[test]
    #[should_panic(expected = "overflowed into the PE field")]
    fn local_overflow_panics() {
        GlobalPtr::new(0, ADDR_MASK).local_add(1);
    }

    #[test]
    #[should_panic(expected = "exceeds 48 bits")]
    fn oversized_addr_panics() {
        GlobalPtr::new(0, 1 << 48);
    }
}
