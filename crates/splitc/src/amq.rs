//! The Active-Message-equivalent remote queue (Section 7.4).
//!
//! The native message queue's receive side costs a 25 µs interrupt, so
//! the paper constructs message passing out of the *fast* shell
//! primitives instead: a fetch&increment on the target allocates a slot
//! in an N-to-1 queue in the target's memory, the sender stores the
//! five-word message (handler id + four arguments) into the slot, and
//! the receiver polls. The measured costs — ~2.9 µs to deposit, ~1.5 µs
//! to dispatch — make this "the full power of poll-based Active
//! Messages", and it is the substrate for correct byte writes and for
//! message-driven `store_sync` notification.
//!
//! Queue slot layout (48 bytes): `[seq, handler, a0, a1, a2, a3]`. The
//! sequence word is written *last*, and its value (ticket + 1) is unique
//! across queue wrap-arounds, so a slot is readable exactly when its
//! sequence matches.

use crate::op::ScOp;
use crate::runtime::{ScCtx, AM_ADD_U64, AM_SLOT_BYTES};
use t3d_shell::FuncCode;
use t3dsan::SanOp;

impl ScCtx<'_> {
    /// Deposits an AM-equivalent message for `target_pe`: handler `id`
    /// with four argument words. The handler runs when the target polls
    /// (explicitly via [`ScCtx::am_poll`], or at the next
    /// [`crate::SplitC::barrier`]).
    ///
    /// # Panics
    ///
    /// Panics if `target_pe` does not exist.
    pub fn am_deposit(&mut self, target_pe: usize, id: u64, args: [u64; 4]) {
        // Only the plain-data add is recorded as itself; the byte/u32
        // repair deposits are recorded by their issuing wrappers.
        if id == AM_ADD_U64 {
            self.rec(ScOp::AmAdd {
                target_pe: target_pe as u32,
                off: args[0],
                delta: args[1],
            });
        }
        assert!(target_pe < self.m.nodes(), "PE {target_pe} out of range");
        self.rt.stats.am_deposits += 1;
        // Allocate a slot with the target's fetch&increment register 0.
        let ticket = self.m.fetch_inc(self.pe, target_pe, 0);
        let slot = ticket % self.cfg.am_slots;
        let base = self.am_region + slot * AM_SLOT_BYTES;
        if target_pe == self.pe {
            // Local deposit: plain stores.
            self.m.st8(self.pe, base + 8, id);
            for (i, a) in args.iter().enumerate() {
                self.m.st8(self.pe, base + 16 + i as u64 * 8, *a);
            }
            self.m.st8(self.pe, base, ticket + 1);
            self.m.memory_barrier(self.pe);
        } else {
            let idx = self
                .rt
                .annex
                .ensure(self.m, self.pe, target_pe as u32, FuncCode::Uncached);
            self.m.st8(self.pe, self.m.va(idx, base + 8), id);
            for (i, a) in args.iter().enumerate() {
                self.m
                    .st8(self.pe, self.m.va(idx, base + 16 + i as u64 * 8), *a);
            }
            // Data words must be visible before the sequence word.
            self.m.memory_barrier(self.pe);
            self.m.wait_write_acks(self.pe);
            self.m.st8(self.pe, self.m.va(idx, base), ticket + 1);
            self.m.memory_barrier(self.pe);
            self.m.wait_write_acks(self.pe);
        }
        self.m.advance(self.pe, self.cfg.am_deposit_overhead_cy);
        self.san_emit(
            SanOp::AmDeposit {
                target: target_pe as u32,
            },
            "am_deposit",
        );
    }

    /// Polls this node's queue, dispatching every message present.
    /// Returns the number dispatched.
    ///
    /// # Panics
    ///
    /// Panics if a message names an unregistered handler.
    pub fn am_poll(&mut self) -> usize {
        let mut dispatched = 0;
        loop {
            let next = self.rt.am_consumed;
            let slot = next % self.cfg.am_slots;
            let base = self.am_region + slot * AM_SLOT_BYTES;
            // The poll is an ordinary (cached) load of the seq word; an
            // arriving store flushes the line, so the next poll re-reads
            // memory.
            let seq = self.m.ld8(self.pe, base);
            if seq != next + 1 {
                // A slot overwritten by a wrapped-around later ticket
                // means deposits outran the polls: the queue overflowed.
                assert!(
                    seq <= next || !(seq - 1 - next).is_multiple_of(self.cfg.am_slots),
                    "AM-equivalent queue on PE {} overflowed: {} slots,                      expected seq {} found {} (poll more often or enlarge                      SplitcConfig::am_slots)",
                    self.pe,
                    self.cfg.am_slots,
                    next + 1,
                    seq
                );
                break;
            }
            let id = self.m.ld8(self.pe, base + 8);
            let mut args = [0u64; 4];
            for (i, a) in args.iter_mut().enumerate() {
                *a = self.m.ld8(self.pe, base + 16 + i as u64 * 8);
            }
            self.rt.am_consumed += 1;
            self.m.advance(self.pe, self.cfg.am_dispatch_overhead_cy);
            let handler = self
                .handlers
                .get(id as usize)
                .and_then(|h| *h)
                .unwrap_or_else(|| panic!("AM handler {id} not registered"));
            handler(self.m, self.pe, args);
            dispatched += 1;
        }
        if dispatched > 0 {
            self.san_emit(
                SanOp::AmDispatch {
                    count: dispatched as u64,
                },
                "am_poll",
            );
        }
        dispatched
    }

    /// Messages this node has consumed from its queue.
    pub fn am_consumed(&self) -> u64 {
        self.rt.am_consumed
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::{SplitC, AM_ADD_U64, AM_USER_BASE};
    use t3d_machine::MachineConfig;

    fn sc() -> SplitC {
        SplitC::new(MachineConfig::t3d(4))
    }

    #[test]
    fn deposit_and_poll_runs_the_handler() {
        let mut s = sc();
        let cell = s.alloc(8, 8);
        s.on(0, |ctx| ctx.am_deposit(1, AM_ADD_U64, [cell, 5, 0, 0]));
        let n = s.on(1, |ctx| ctx.am_poll());
        assert_eq!(n, 1);
        assert_eq!(s.machine().peek8(1, cell), 5);
    }

    #[test]
    fn barrier_drains_queues() {
        let mut s = sc();
        let cell = s.alloc(8, 8);
        s.run_phase(|ctx| {
            let right = (ctx.pe() + 1) % ctx.nodes();
            ctx.am_deposit(right, AM_ADD_U64, [cell, 1, 0, 0]);
        });
        s.barrier();
        for pe in 0..4 {
            assert_eq!(s.machine().peek8(pe, cell), 1, "PE {pe} got its increment");
        }
    }

    #[test]
    fn many_deposits_from_many_senders_all_arrive() {
        let mut s = sc();
        let cell = s.alloc(8, 8);
        for round in 0..8 {
            let _ = round;
            s.run_phase(|ctx| {
                if ctx.pe() != 3 {
                    ctx.am_deposit(3, AM_ADD_U64, [cell, 1, 0, 0]);
                }
            });
        }
        s.barrier();
        assert_eq!(s.machine().peek8(3, cell), 24, "8 rounds x 3 senders");
    }

    #[test]
    fn deposit_costs_about_2_9_us() {
        let mut s = sc();
        let cell = s.alloc(8, 8);
        let cost = s.on(0, |ctx| {
            ctx.am_deposit(1, AM_ADD_U64, [cell, 1, 0, 0]); // warm
            let t0 = ctx.clock();
            ctx.am_deposit(1, AM_ADD_U64, [cell, 1, 0, 0]);
            ctx.clock() - t0
        });
        let us = cost as f64 * 6.667e-3;
        assert!(
            (2.0..4.0).contains(&us),
            "AM deposit cost {us:.2} us (paper: 2.9)"
        );
    }

    #[test]
    fn dispatch_costs_about_1_5_us() {
        let mut s = sc();
        let cell = s.alloc(8, 8);
        s.on(0, |ctx| ctx.am_deposit(1, AM_ADD_U64, [cell, 1, 0, 0]));
        let cost = s.on(1, |ctx| {
            let t0 = ctx.clock();
            ctx.am_poll();
            ctx.clock() - t0
        });
        let us = cost as f64 * 6.667e-3;
        assert!(
            (0.8..2.5).contains(&us),
            "AM dispatch cost {us:.2} us (paper: 1.5)"
        );
    }

    #[test]
    fn user_handlers_dispatch() {
        let mut s = sc();
        let cell = s.alloc(8, 8);
        let id = s.register_handler(AM_USER_BASE, |m, pe, args| {
            m.poke8(pe, args[0], args[1] * args[2]);
        });
        s.on(2, |ctx| ctx.am_deposit(0, id, [cell, 6, 7, 0]));
        s.on(0, |ctx| ctx.am_poll());
        assert_eq!(s.machine().peek8(0, cell), 42);
    }

    #[test]
    #[should_panic(expected = "overflowed")]
    fn queue_overflow_is_detected() {
        let mut s = SplitC::new(MachineConfig::t3d(2));
        let cell = s.alloc(8, 8);
        s.on(0, |ctx| {
            for _ in 0..300 {
                ctx.am_deposit(1, AM_ADD_U64, [cell, 1, 0, 0]);
            }
        });
        s.on(1, |ctx| {
            ctx.am_poll();
        });
    }

    #[test]
    fn empty_poll_is_cheap_and_returns_zero() {
        let mut s = sc();
        let n = s.on(0, |ctx| ctx.am_poll());
        assert_eq!(n, 0);
    }
}
