//! Bulk transfer (Section 6).
//!
//! Four mechanisms can move a block on the T3D — uncached reads, cached
//! reads, the prefetch queue and the BLT — and the paper micro-benchmarks
//! all four (Figure 8) to derive the Split-C policy implemented here:
//!
//! * `bulk_read`: an uncached read for 8 bytes; the prefetch queue up to
//!   the ~16 KB crossover; the BLT beyond it.
//! * `bulk_write`: non-blocking (merging) stores at every size — the
//!   paper finds them strictly superior to the BLT for writes.
//! * `bulk_get`: the prefetch loop below 7,900 bytes (what the BLT could
//!   read during its own 180 µs start-up), a *non-blocking* BLT beyond.
//! * `bulk_put`: non-blocking stores, completion at `sync`.
//!
//! The explicit per-mechanism functions (`bulk_read_uncached`, ...)
//! remain public because the Figure 8 comparison needs them.

use crate::gptr::GlobalPtr;
use crate::op::ScOp;
use crate::runtime::ScCtx;
use t3d_shell::blt::BltDirection;
use t3d_shell::FuncCode;
use t3dsan::{SanOp, WriteKind, NO_REG};

/// Cost of flushing the entire cache in one batched operation, cheaper
/// than per-line flushes beyond ~64 lines (the Figure 8 footnote's 8 KB
/// inflection for cached bulk reads).
const FULL_CACHE_FLUSH_CY: u64 = 1_500;

impl ScCtx<'_> {
    /// Blocking bulk read of `bytes` from `*src` into local memory at
    /// `local_off`, using the measured-best mechanism for the size.
    ///
    /// # Example
    ///
    /// ```
    /// use splitc::{GlobalPtr, SplitC};
    /// use t3d_machine::MachineConfig;
    ///
    /// let mut sc = SplitC::new(MachineConfig::t3d(2));
    /// let src = sc.alloc(1024, 8);
    /// let dst = sc.alloc(1024, 8);
    /// sc.machine().poke8(1, src + 512, 7);
    /// // 1 KB: the runtime picks the prefetch queue automatically.
    /// sc.on(0, |ctx| ctx.bulk_read(dst, GlobalPtr::new(1, src), 1024));
    /// sc.machine().memory_barrier(0);
    /// assert_eq!(sc.machine().peek8(0, dst + 512), 7);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or not a multiple of 8.
    pub fn bulk_read(&mut self, local_off: u64, src: GlobalPtr, bytes: u64) {
        self.rec(ScOp::BulkRead {
            local_off,
            src,
            bytes,
        });
        assert!(
            bytes > 0 && bytes.is_multiple_of(8),
            "bulk transfers move whole words"
        );
        self.rt.stats.bulk_ops += 1;
        if src.pe() as usize == self.pe {
            self.local_copy(local_off, src.addr(), bytes);
        } else if bytes <= 8 {
            // Delegates to read_u64, which emits its own event.
            let v = self.read_u64(src);
            self.m.st8(self.pe, local_off, v);
            return;
        } else if bytes < self.cfg.bulk_blt_read_min {
            self.bulk_read_prefetch(local_off, src, bytes);
        } else {
            self.bulk_read_blt(local_off, src, bytes);
        }
        self.san_emit(
            SanOp::Read {
                target: src.pe(),
                addr: src.addr(),
                len: bytes,
                reg: NO_REG,
            },
            "bulk_read",
        );
    }

    /// Blocking bulk write of `bytes` from local memory at `local_off`
    /// to `*dst` (non-blocking stores, then fence + acknowledge).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or not a multiple of 8.
    pub fn bulk_write(&mut self, dst: GlobalPtr, local_off: u64, bytes: u64) {
        self.rec(ScOp::BulkWrite {
            dst,
            local_off,
            bytes,
        });
        assert!(
            bytes > 0 && bytes.is_multiple_of(8),
            "bulk transfers move whole words"
        );
        self.rt.stats.bulk_ops += 1;
        if dst.pe() as usize == self.pe {
            self.local_copy(dst.addr(), local_off, bytes);
        } else {
            self.bulk_write_stores(dst, local_off, bytes);
            self.m.memory_barrier(self.pe);
            self.m.wait_write_acks(self.pe);
        }
        self.san_emit(
            SanOp::Write {
                target: dst.pe(),
                addr: dst.addr(),
                len: bytes,
                kind: WriteKind::Blocking,
                reg: NO_REG,
            },
            "bulk_write",
        );
    }

    /// Non-blocking bulk get: initiates the transfer; completion at
    /// [`ScCtx::sync`].
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or not a multiple of 8.
    pub fn bulk_get(&mut self, local_off: u64, src: GlobalPtr, bytes: u64) {
        self.rec(ScOp::BulkGet {
            local_off,
            src,
            bytes,
        });
        assert!(
            bytes > 0 && bytes.is_multiple_of(8),
            "bulk transfers move whole words"
        );
        self.rt.stats.bulk_ops += 1;
        if src.pe() as usize == self.pe {
            self.local_copy(local_off, src.addr(), bytes);
        } else if bytes < self.cfg.bulk_get_blt_min {
            // Below the BLT's own start-up budget: the prefetch loop is
            // faster even though it cannot truly overlap (16-deep queue).
            self.bulk_read_prefetch(local_off, src, bytes);
        } else {
            let h = self.m.blt_start(
                self.pe,
                BltDirection::Read,
                local_off,
                src.pe() as usize,
                src.addr(),
                bytes,
            );
            self.rt.pending_blts.push(h.completion);
        }
        self.san_emit(
            SanOp::Read {
                target: src.pe(),
                addr: src.addr(),
                len: bytes,
                reg: NO_REG,
            },
            "bulk_get",
        );
    }

    /// Non-blocking bulk put: non-blocking stores; completion at
    /// [`ScCtx::sync`].
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or not a multiple of 8.
    pub fn bulk_put(&mut self, dst: GlobalPtr, local_off: u64, bytes: u64) {
        self.rec(ScOp::BulkPut {
            dst,
            local_off,
            bytes,
        });
        assert!(
            bytes > 0 && bytes.is_multiple_of(8),
            "bulk transfers move whole words"
        );
        self.rt.stats.bulk_ops += 1;
        if dst.pe() as usize == self.pe {
            self.local_copy(dst.addr(), local_off, bytes);
        } else {
            self.bulk_write_stores(dst, local_off, bytes);
        }
        self.san_emit(
            SanOp::Write {
                target: dst.pe(),
                addr: dst.addr(),
                len: bytes,
                kind: WriteKind::Put,
                reg: NO_REG,
            },
            "bulk_put",
        );
    }

    /// Strided bulk read: gathers `count` elements of `elem_bytes`
    /// spaced `stride_bytes` apart at the source into consecutive local
    /// memory — the strided-array capability of the BLT (Section 6.2).
    /// Uses the prefetch loop per element below the BLT crossover.
    ///
    /// # Panics
    ///
    /// Panics on zero sizes, non-multiple-of-8 element sizes, or a
    /// stride smaller than the element (overlapping windows).
    pub fn bulk_read_strided(
        &mut self,
        local_off: u64,
        src: GlobalPtr,
        count: u64,
        elem_bytes: u64,
        stride_bytes: u64,
    ) -> u64 {
        self.rec(ScOp::BulkReadStrided {
            local_off,
            src,
            count,
            elem_bytes,
            stride_bytes,
        });
        assert!(
            elem_bytes > 0 && elem_bytes.is_multiple_of(8),
            "elements are whole words"
        );
        assert!(count > 0, "strided read must move data");
        // Same precondition as the machine's BLT path, asserted here so
        // every transfer size rejects overlapping windows identically.
        assert!(
            stride_bytes >= elem_bytes,
            "stride must not overlap elements"
        );
        self.rt.stats.bulk_ops += 1;
        let total = count * elem_bytes;
        if src.pe() as usize == self.pe {
            for i in 0..count {
                self.local_copy(
                    local_off + i * elem_bytes,
                    src.addr() + i * stride_bytes,
                    elem_bytes,
                );
            }
        } else if total < self.cfg.bulk_blt_read_min {
            for i in 0..count {
                self.bulk_read_prefetch(
                    local_off + i * elem_bytes,
                    GlobalPtr::new(src.pe(), src.addr() + i * stride_bytes),
                    elem_bytes,
                );
            }
        } else {
            let h = self.m.blt_start_strided(
                self.pe,
                BltDirection::Read,
                local_off,
                src.pe() as usize,
                src.addr(),
                count,
                elem_bytes,
                stride_bytes,
            );
            self.m.blt_wait(self.pe, h);
        }
        // Conservative span: the whole strided extent at the source.
        self.san_emit(
            SanOp::Read {
                target: src.pe(),
                addr: src.addr(),
                len: (count - 1) * stride_bytes + elem_bytes,
                reg: NO_REG,
            },
            "bulk_read_strided",
        );
        total
    }

    /// Strided bulk write: scatters consecutive local elements to
    /// positions `stride_bytes` apart at the destination.
    ///
    /// # Panics
    ///
    /// Panics on zero sizes, non-multiple-of-8 element sizes, or a
    /// stride smaller than the element (overlapping windows).
    pub fn bulk_write_strided(
        &mut self,
        dst: GlobalPtr,
        local_off: u64,
        count: u64,
        elem_bytes: u64,
        stride_bytes: u64,
    ) -> u64 {
        self.rec(ScOp::BulkWriteStrided {
            dst,
            local_off,
            count,
            elem_bytes,
            stride_bytes,
        });
        assert!(
            elem_bytes > 0 && elem_bytes.is_multiple_of(8),
            "elements are whole words"
        );
        assert!(count > 0, "strided write must move data");
        assert!(
            stride_bytes >= elem_bytes,
            "stride must not overlap elements"
        );
        self.rt.stats.bulk_ops += 1;
        let total = count * elem_bytes;
        if dst.pe() as usize == self.pe {
            for i in 0..count {
                self.local_copy(
                    dst.addr() + i * stride_bytes,
                    local_off + i * elem_bytes,
                    elem_bytes,
                );
            }
        } else {
            // Stores win bulk writes at every size; strided stores simply
            // forgo the line merging.
            for i in 0..count {
                self.bulk_write_stores(
                    GlobalPtr::new(dst.pe(), dst.addr() + i * stride_bytes),
                    local_off + i * elem_bytes,
                    elem_bytes,
                );
            }
            self.m.memory_barrier(self.pe);
            self.m.wait_write_acks(self.pe);
        }
        self.san_emit(
            SanOp::Write {
                target: dst.pe(),
                addr: dst.addr(),
                len: (count - 1) * stride_bytes + elem_bytes,
                kind: WriteKind::Blocking,
                reg: NO_REG,
            },
            "bulk_write_strided",
        );
        total
    }

    // ------------------------------------------------------------------
    // Explicit mechanisms (the Figure 8 contenders)
    // ------------------------------------------------------------------

    /// Bulk read via one uncached load per word.
    pub fn bulk_read_uncached(&mut self, local_off: u64, src: GlobalPtr, bytes: u64) {
        let idx = self
            .rt
            .annex
            .ensure(self.m, self.pe, src.pe(), FuncCode::Uncached);
        for w in 0..bytes / 8 {
            let va = self.m.va(idx, src.addr() + w * 8);
            let v = self.m.ld8(self.pe, va);
            self.m.st8(self.pe, local_off + w * 8, v);
            self.m.advance(self.pe, self.cfg.bulk_loop_cy);
        }
    }

    /// Bulk read via cached loads: one line fill serves four words, but
    /// every fetched line must be flushed to preserve coherence — per
    /// line below 8 KB, in one batched whole-cache flush at or above it
    /// (the Figure 8 footnote).
    pub fn bulk_read_cached(&mut self, local_off: u64, src: GlobalPtr, bytes: u64) {
        let idx = self
            .rt
            .annex
            .ensure(self.m, self.pe, src.pe(), FuncCode::Cached);
        let line = 32u64;
        let batched_flush = bytes >= 8 * 1024;
        let mut w = 0u64;
        while w * 8 < bytes {
            let va = self.m.va(idx, src.addr() + w * 8);
            let v = self.m.ld8(self.pe, va);
            self.m.st8(self.pe, local_off + w * 8, v);
            self.m.advance(self.pe, self.cfg.bulk_loop_cy);
            let at_line_end = ((src.addr() + w * 8) % line == line - 8) || (w + 1) * 8 >= bytes;
            if at_line_end && !batched_flush {
                let cost = self.m.node_mut(self.pe).port.flush_line(va);
                self.m.advance(self.pe, cost);
            }
            w += 1;
        }
        if batched_flush {
            self.m.node_mut(self.pe).port.l1_mut().invalidate_all();
            self.m.advance(self.pe, FULL_CACHE_FLUSH_CY);
        }
    }

    /// Bulk read via the binding prefetch queue, pipelined 16 deep.
    pub fn bulk_read_prefetch(&mut self, local_off: u64, src: GlobalPtr, bytes: u64) {
        // Any gets already outstanding would interleave in the FIFO.
        self.drain_gets(true);
        let idx = self
            .rt
            .annex
            .ensure(self.m, self.pe, src.pe(), FuncCode::Uncached);
        let depth = self.m.node(self.pe).prefetch.depth() as u64;
        let words = bytes / 8;
        let mut done = 0u64;
        while done < words {
            let group = depth.min(words - done);
            for i in 0..group {
                let va = self.m.va(idx, src.addr() + (done + i) * 8);
                let ok = self.m.fetch(self.pe, va);
                debug_assert!(ok, "queue drained each group");
                self.m.advance(self.pe, self.cfg.bulk_loop_cy);
            }
            self.m.memory_barrier(self.pe);
            for i in 0..group {
                let v = self.m.pop_prefetch(self.pe).expect("fenced group");
                self.m.st8(self.pe, local_off + (done + i) * 8, v);
            }
            done += group;
        }
    }

    /// Bulk read via the block transfer engine (blocking).
    pub fn bulk_read_blt(&mut self, local_off: u64, src: GlobalPtr, bytes: u64) {
        let h = self.m.blt_start(
            self.pe,
            BltDirection::Read,
            local_off,
            src.pe() as usize,
            src.addr(),
            bytes,
        );
        self.m.blt_wait(self.pe, h);
    }

    /// Bulk write via non-blocking stores (write-merging batches whole
    /// lines through the shell at ~90 MB/s). Does not wait.
    pub fn bulk_write_stores(&mut self, dst: GlobalPtr, local_off: u64, bytes: u64) {
        let idx = self
            .rt
            .annex
            .ensure(self.m, self.pe, dst.pe(), FuncCode::Uncached);
        for w in 0..bytes / 8 {
            let mut buf = [0u8; 8];
            self.m.peek_mem(self.pe, local_off + w * 8, &mut buf);
            // Charge the local load of the source word.
            let va_local = local_off + w * 8;
            let v = self.m.ld8(self.pe, va_local);
            debug_assert_eq!(v.to_le_bytes(), buf);
            let va = self.m.va(idx, dst.addr() + w * 8);
            self.m.st8(self.pe, va, v);
            self.m.advance(self.pe, self.cfg.bulk_loop_cy);
        }
    }

    /// Bulk write via the BLT (blocking) — measured *slower* than stores
    /// at every size; present for the Figure 8 comparison.
    pub fn bulk_write_blt(&mut self, dst: GlobalPtr, local_off: u64, bytes: u64) {
        self.m.memory_barrier(self.pe); // source words must be in memory
        let h = self.m.blt_start(
            self.pe,
            BltDirection::Write,
            local_off,
            dst.pe() as usize,
            dst.addr(),
            bytes,
        );
        self.m.blt_wait(self.pe, h);
    }

    /// Local memory-to-memory copy through the cache hierarchy.
    fn local_copy(&mut self, dst_off: u64, src_off: u64, bytes: u64) {
        for w in 0..bytes / 8 {
            let v = self.m.ld8(self.pe, src_off + w * 8);
            self.m.st8(self.pe, dst_off + w * 8, v);
            self.m.advance(self.pe, self.cfg.bulk_loop_cy);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::SplitC;
    use crate::GlobalPtr;
    use t3d_machine::MachineConfig;

    fn sc() -> SplitC {
        SplitC::new(MachineConfig::t3d(2))
    }

    fn fill(s: &mut SplitC, pe: usize, off: u64, words: u64) {
        for w in 0..words {
            s.machine().poke8(pe, off + w * 8, 0xA000 + w);
        }
    }

    fn check(s: &mut SplitC, pe: usize, off: u64, words: u64) {
        s.machine().memory_barrier(pe); // retire any buffered local stores
        for w in 0..words {
            assert_eq!(s.machine().peek8(pe, off + w * 8), 0xA000 + w, "word {w}");
        }
    }

    #[test]
    fn bulk_read_all_mechanisms_move_the_data() {
        for bytes in [8u64, 64, 1024, 32 * 1024] {
            let mut s = sc();
            let src = s.alloc(bytes, 8);
            let dst = s.alloc(bytes, 8);
            fill(&mut s, 1, src, bytes / 8);
            s.on(0, |ctx| ctx.bulk_read(dst, GlobalPtr::new(1, src), bytes));
            check(&mut s, 0, dst, bytes / 8);
        }
    }

    #[test]
    fn bulk_write_moves_the_data() {
        let mut s = sc();
        let src = s.alloc(4096, 8);
        let dst = s.alloc(4096, 8);
        fill(&mut s, 0, src, 512);
        s.on(0, |ctx| ctx.bulk_write(GlobalPtr::new(1, dst), src, 4096));
        check(&mut s, 1, dst, 512);
    }

    #[test]
    fn prefetch_beats_uncached_beyond_a_few_words() {
        let bytes = 1024u64;
        let mut s = sc();
        let src = s.alloc(bytes, 8);
        let dst = s.alloc(bytes, 8);
        let t_pf = s.on(0, |ctx| {
            let t0 = ctx.clock();
            ctx.bulk_read_prefetch(dst, GlobalPtr::new(1, src), bytes);
            ctx.clock() - t0
        });
        let mut s2 = sc();
        let src2 = s2.alloc(bytes, 8);
        let dst2 = s2.alloc(bytes, 8);
        let t_un = s2.on(0, |ctx| {
            let t0 = ctx.clock();
            ctx.bulk_read_uncached(dst2, GlobalPtr::new(1, src2), bytes);
            ctx.clock() - t0
        });
        assert!(t_pf < t_un / 2, "prefetch {t_pf} cy vs uncached {t_un} cy");
    }

    #[test]
    fn blt_wins_only_above_the_crossover() {
        for (bytes, blt_should_win) in [(8 * 1024u64, false), (64 * 1024, true)] {
            let mut s = sc();
            let src = s.alloc(bytes, 8);
            let dst = s.alloc(bytes, 8);
            let t_pf = s.on(0, |ctx| {
                let t0 = ctx.clock();
                ctx.bulk_read_prefetch(dst, GlobalPtr::new(1, src), bytes);
                ctx.clock() - t0
            });
            let mut s2 = sc();
            let src2 = s2.alloc(bytes, 8);
            let dst2 = s2.alloc(bytes, 8);
            let t_blt = s2.on(0, |ctx| {
                let t0 = ctx.clock();
                ctx.bulk_read_blt(dst2, GlobalPtr::new(1, src2), bytes);
                ctx.clock() - t0
            });
            assert_eq!(
                t_blt < t_pf,
                blt_should_win,
                "at {bytes} B: blt {t_blt} cy vs prefetch {t_pf} cy"
            );
        }
    }

    #[test]
    fn stores_beat_blt_for_writes_at_all_sizes() {
        for bytes in [1024u64, 16 * 1024, 128 * 1024] {
            let mut s = sc();
            let src = s.alloc(bytes, 8);
            let dst = s.alloc(bytes, 8);
            let t_st = s.on(0, |ctx| {
                let t0 = ctx.clock();
                ctx.bulk_write(GlobalPtr::new(1, dst), src, bytes);
                ctx.clock() - t0
            });
            let mut s2 = sc();
            let src2 = s2.alloc(bytes, 8);
            let dst2 = s2.alloc(bytes, 8);
            let t_blt = s2.on(0, |ctx| {
                let t0 = ctx.clock();
                ctx.bulk_write_blt(GlobalPtr::new(1, dst2), src2, bytes);
                ctx.clock() - t0
            });
            assert!(
                t_st < t_blt,
                "at {bytes} B: stores {t_st} cy must beat BLT {t_blt} cy"
            );
        }
    }

    #[test]
    fn bulk_get_is_nonblocking_above_crossover() {
        let bytes = 64 * 1024u64;
        let mut s = sc();
        let src = s.alloc(bytes, 8);
        let dst = s.alloc(bytes, 8);
        fill(&mut s, 1, src, bytes / 8);
        s.on(0, |ctx| {
            let t0 = ctx.clock();
            ctx.bulk_get(dst, GlobalPtr::new(1, src), bytes);
            let initiate = ctx.clock() - t0;
            // Only the OS start-up is charged at initiation.
            assert!(initiate < 30_000, "initiation cost {initiate} cy");
            ctx.sync();
            let total = ctx.clock() - t0;
            assert!(total > initiate, "sync waited for the DMA");
        });
        check(&mut s, 0, dst, bytes / 8);
    }

    #[test]
    fn bulk_put_completes_at_sync() {
        let mut s = sc();
        let src = s.alloc(1024, 8);
        let dst = s.alloc(1024, 8);
        fill(&mut s, 0, src, 128);
        s.on(0, |ctx| {
            ctx.bulk_put(GlobalPtr::new(1, dst), src, 1024);
            ctx.sync();
        });
        check(&mut s, 1, dst, 128);
    }

    #[test]
    fn cached_bulk_read_moves_data_with_flushes() {
        let mut s = sc();
        let bytes = 512u64;
        let src = s.alloc(bytes, 32);
        let dst = s.alloc(bytes, 32);
        fill(&mut s, 1, src, bytes / 8);
        s.on(0, |ctx| {
            ctx.bulk_read_cached(dst, GlobalPtr::new(1, src), bytes);
            // Nothing may remain cached: coherence was preserved.
            // (Lines of the *destination* may be cached; the remote
            // source lines must not be.)
        });
        check(&mut s, 0, dst, bytes / 8);
        // Updating the source and re-reading must see fresh data.
        s.machine().poke8(1, src, 1);
        s.on(0, |ctx| {
            assert_eq!(
                ctx.read_u64(GlobalPtr::new(1, src)),
                1,
                "no stale line survived"
            );
        });
    }

    #[test]
    fn strided_read_gathers_a_column() {
        let mut s = sc();
        // 16x16 matrix of words on PE 1, row-major.
        let mat = s.alloc(16 * 16 * 8, 8);
        let col = s.alloc(16 * 8, 8);
        for r in 0..16u64 {
            for c in 0..16u64 {
                s.machine().poke8(1, mat + (r * 16 + c) * 8, r * 16 + c);
            }
        }
        s.on(0, |ctx| {
            ctx.bulk_read_strided(col, GlobalPtr::new(1, mat + 5 * 8), 16, 8, 16 * 8);
        });
        s.machine().memory_barrier(0);
        for r in 0..16u64 {
            assert_eq!(s.machine().peek8(0, col + r * 8), r * 16 + 5, "row {r}");
        }
    }

    #[test]
    fn strided_write_scatters_a_column() {
        let mut s = sc();
        let mat = s.alloc(16 * 16 * 8, 8);
        let col = s.alloc(16 * 8, 8);
        for r in 0..16u64 {
            s.machine().poke8(0, col + r * 8, 900 + r);
        }
        s.on(0, |ctx| {
            ctx.bulk_write_strided(GlobalPtr::new(1, mat + 2 * 8), col, 16, 8, 16 * 8);
        });
        for r in 0..16u64 {
            assert_eq!(
                s.machine().peek8(1, mat + (r * 16 + 2) * 8),
                900 + r,
                "row {r}"
            );
        }
    }

    #[test]
    fn large_strided_read_uses_the_blt() {
        let mut s = sc();
        let count = 4096u64;
        let src = s.alloc(count * 16, 8);
        let dst = s.alloc(count * 8, 8);
        s.on(0, |ctx| {
            let t0 = ctx.clock();
            ctx.bulk_read_strided(dst, GlobalPtr::new(1, src), count, 8, 16);
            let cost = ctx.clock() - t0;
            assert!(cost >= 27_000, "BLT start-up paid");
            assert_eq!(ctx.machine().op_stats(0).blts, 1, "one BLT invocation");
        });
    }

    #[test]
    #[should_panic(expected = "whole words")]
    fn unaligned_bulk_panics() {
        let mut s = sc();
        let src = s.alloc(16, 8);
        let dst = s.alloc(16, 8);
        s.on(0, |ctx| ctx.bulk_read(dst, GlobalPtr::new(1, src), 12));
    }
}
