//! Annex register management policies (Section 3.4).
//!
//! A key compiler question on the T3D is how to manage the 32 DTB Annex
//! registers. The paper weighs three schemes and settles on the first:
//!
//! * [`AnnexPolicy::SingleRegister`] — use annex register 1 for every
//!   remote access, updating it each time (23 cycles). Simple, safe, and
//!   — given how cheap the update is — never clearly beaten.
//! * [`AnnexPolicy::SingleRegisterCached`] — same, but skip the update
//!   when the compiler can prove the target PE is unchanged (the paper's
//!   "skipping the Annex update if ... successive accesses are to the
//!   same processor").
//! * [`AnnexPolicy::HashedMulti`] — hash the PE over registers 1..31
//!   with a runtime table; costs a memory read and a branch (~10 cycles)
//!   per access, and by construction never creates synonyms (one PE maps
//!   to one register).
//! * [`AnnexPolicy::UnsafeMulti`] — allocate registers round-robin with
//!   no synonym check. This is the scheme the paper shows to be
//!   *incorrect*: two registers can name the same PE, and the write
//!   buffer then admits stale reads. It exists here to reproduce that
//!   probe; do not use it for real programs.

use t3d_machine::MachineOps;
use t3d_shell::{AnnexEntry, FuncCode};

/// How a node assigns annex registers to remote accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnnexPolicy {
    /// One register, updated on every access (the paper's choice).
    #[default]
    SingleRegister,
    /// One register, update skipped when the PE and flavour match.
    SingleRegisterCached,
    /// PE hashed over many registers with a runtime table (10-cycle
    /// lookup); synonym-free by construction.
    HashedMulti,
    /// Round-robin over many registers with no synonym avoidance —
    /// deliberately unsafe, for the Section 3.4 hazard probe.
    UnsafeMulti,
}

/// Per-node annex management state.
#[derive(Debug, Clone)]
pub struct AnnexState {
    policy: AnnexPolicy,
    /// What each register currently holds, as known to the runtime.
    shadow: Vec<Option<(u32, FuncCode)>>,
    /// Next register for round-robin allocation (UnsafeMulti).
    next_rr: usize,
    /// Updates actually performed (instrumentation).
    updates: u64,
    /// Lookups that skipped the update (instrumentation).
    skips: u64,
}

/// Cost of the HashedMulti table lookup: "a memory read and a branch".
const HASH_LOOKUP_CY: u64 = 10;
/// Cost of the SingleRegisterCached same-PE check.
const CACHE_CHECK_CY: u64 = 2;

impl AnnexState {
    /// Creates management state for `registers` annex entries.
    pub fn new(policy: AnnexPolicy, registers: usize) -> Self {
        AnnexState {
            policy,
            shadow: vec![None; registers],
            next_rr: 1,
            updates: 0,
            skips: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> AnnexPolicy {
        self.policy
    }

    /// Ensures some annex register names `(target_pe, func)` and returns
    /// its index, charging the policy's costs to node `pe` on `m`.
    pub fn ensure(
        &mut self,
        m: &mut dyn MachineOps,
        pe: usize,
        target_pe: u32,
        func: FuncCode,
    ) -> usize {
        match self.policy {
            AnnexPolicy::SingleRegister => {
                self.set(m, pe, 1, target_pe, func);
                1
            }
            AnnexPolicy::SingleRegisterCached => {
                m.advance(pe, CACHE_CHECK_CY);
                if self.shadow[1] != Some((target_pe, func)) {
                    self.set(m, pe, 1, target_pe, func);
                } else {
                    self.skips += 1;
                }
                1
            }
            AnnexPolicy::HashedMulti => {
                m.advance(pe, HASH_LOOKUP_CY);
                let idx = 1 + (target_pe as usize % (self.shadow.len() - 1));
                if self.shadow[idx] != Some((target_pe, func)) {
                    self.set(m, pe, idx, target_pe, func);
                } else {
                    self.skips += 1;
                }
                idx
            }
            AnnexPolicy::UnsafeMulti => {
                let idx = self.next_rr;
                self.next_rr = 1 + (self.next_rr % (self.shadow.len() - 1));
                self.set(m, pe, idx, target_pe, func);
                idx
            }
        }
    }

    fn set(
        &mut self,
        m: &mut dyn MachineOps,
        pe: usize,
        idx: usize,
        target_pe: u32,
        func: FuncCode,
    ) {
        m.annex_set(
            pe,
            idx,
            AnnexEntry {
                pe: target_pe,
                func,
            },
        );
        self.shadow[idx] = Some((target_pe, func));
        self.updates += 1;
    }

    /// Annex updates actually performed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Accesses that skipped the update.
    pub fn skips(&self) -> u64 {
        self.skips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t3d_machine::{Machine, MachineConfig};

    fn machine() -> Machine {
        Machine::new(MachineConfig::t3d(4))
    }

    #[test]
    fn single_register_always_updates() {
        let mut m = machine();
        let mut st = AnnexState::new(AnnexPolicy::SingleRegister, 32);
        for _ in 0..3 {
            assert_eq!(st.ensure(&mut m, 0, 2, FuncCode::Uncached), 1);
        }
        assert_eq!(st.updates(), 3);
        assert_eq!(m.clock(0), 3 * 23);
    }

    #[test]
    fn cached_register_skips_repeats() {
        let mut m = machine();
        let mut st = AnnexState::new(AnnexPolicy::SingleRegisterCached, 32);
        st.ensure(&mut m, 0, 2, FuncCode::Uncached);
        st.ensure(&mut m, 0, 2, FuncCode::Uncached);
        st.ensure(&mut m, 0, 3, FuncCode::Uncached);
        assert_eq!(st.updates(), 2);
        assert_eq!(st.skips(), 1);
        // Changing the flavour forces an update too.
        st.ensure(&mut m, 0, 3, FuncCode::Cached);
        assert_eq!(st.updates(), 3);
    }

    #[test]
    fn hashed_multi_is_synonym_free() {
        let mut m = machine();
        let mut st = AnnexState::new(AnnexPolicy::HashedMulti, 32);
        let i2 = st.ensure(&mut m, 0, 2, FuncCode::Uncached);
        let i3 = st.ensure(&mut m, 0, 3, FuncCode::Uncached);
        let i2b = st.ensure(&mut m, 0, 2, FuncCode::Uncached);
        assert_eq!(i2, i2b, "one PE always maps to one register");
        assert_ne!(i2, i3);
        assert_eq!(st.updates(), 2);
        assert_eq!(st.skips(), 1);
        assert!(m.node(0).annex.synonyms_of(2).len() <= 1);
    }

    #[test]
    fn unsafe_multi_creates_synonyms() {
        let mut m = machine();
        let mut st = AnnexState::new(AnnexPolicy::UnsafeMulti, 32);
        let a = st.ensure(&mut m, 0, 2, FuncCode::Uncached);
        let b = st.ensure(&mut m, 0, 2, FuncCode::Uncached);
        assert_ne!(a, b, "round-robin hands out a fresh register");
        assert_eq!(
            m.node(0).annex.synonyms_of(2).len(),
            2,
            "synonym pair exists"
        );
    }

    #[test]
    fn hashed_lookup_is_cheaper_than_update_only_sometimes() {
        // The paper's point: a ~10-cycle lookup saves little against a
        // 23-cycle update, so the single register suffices.
        let mut m = machine();
        let mut st = AnnexState::new(AnnexPolicy::HashedMulti, 32);
        // Alternate PEs: every access still pays lookup, none update
        // after warm-up.
        for _ in 0..4 {
            st.ensure(&mut m, 0, 2, FuncCode::Uncached);
            st.ensure(&mut m, 0, 3, FuncCode::Uncached);
        }
        let hashed = m.clock(0);
        let mut m2 = machine();
        let mut st2 = AnnexState::new(AnnexPolicy::SingleRegister, 32);
        for _ in 0..4 {
            st2.ensure(&mut m2, 0, 2, FuncCode::Uncached);
            st2.ensure(&mut m2, 0, 3, FuncCode::Uncached);
        }
        let single = m2.clock(0);
        assert!(hashed < single, "hashed wins on alternating PEs");
        let ratio = single as f64 / hashed as f64;
        assert!(ratio < 2.0, "but by less than 2x ({ratio:.2})");
    }
}
