//! Spread arrays: Split-C's cyclically distributed global arrays.
//!
//! A spread array `double A[n]::` places element `i` on processor
//! `i % PROCS` at row `i / PROCS` — exactly the "global addressing"
//! layout of Section 3.1, with the processor component varying fastest.

use crate::gptr::GlobalPtr;

/// A cyclically spread global array of fixed-size elements.
///
/// # Example
///
/// ```
/// use splitc::SpreadArray;
///
/// let a = SpreadArray::new(0x1000, 8, 100, 4);
/// assert_eq!(a.gptr(0).pe(), 0);
/// assert_eq!(a.gptr(5).pe(), 1);
/// assert_eq!(a.gptr(5).addr(), 0x1000 + 8); // second row
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpreadArray {
    base: u64,
    elem_bytes: u64,
    len: u64,
    nprocs: u32,
}

impl SpreadArray {
    /// Describes a spread array of `len` elements of `elem_bytes` over
    /// `nprocs` processors, based at symmetric offset `base`.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs` or `elem_bytes` is zero.
    pub fn new(base: u64, elem_bytes: u64, len: u64, nprocs: u32) -> Self {
        assert!(nprocs > 0, "spread array needs processors");
        assert!(elem_bytes > 0, "spread array needs sized elements");
        SpreadArray {
            base,
            elem_bytes,
            len,
            nprocs,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element size in bytes.
    pub fn elem_bytes(&self) -> u64 {
        self.elem_bytes
    }

    /// Bytes each processor must reserve for its slice.
    pub fn bytes_per_node(&self) -> u64 {
        self.len.div_ceil(self.nprocs as u64) * self.elem_bytes
    }

    /// Global pointer to element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn gptr(&self, i: u64) -> GlobalPtr {
        assert!(
            i < self.len,
            "spread index {i} out of bounds ({})",
            self.len
        );
        GlobalPtr::new(self.base_ptr().pe(), self.base).global_add(i, self.elem_bytes, self.nprocs)
    }

    /// Global pointer to element 0.
    pub fn base_ptr(&self) -> GlobalPtr {
        GlobalPtr::new(0, self.base)
    }

    /// The elements of this array owned by processor `pe`, as indices.
    pub fn owned_by(&self, pe: u32) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).filter(move |i| (i % self.nprocs as u64) as u32 == pe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_layout() {
        let a = SpreadArray::new(0x100, 16, 10, 4);
        for i in 0..10 {
            let p = a.gptr(i);
            assert_eq!(p.pe() as u64, i % 4);
            assert_eq!(p.addr(), 0x100 + (i / 4) * 16);
        }
    }

    #[test]
    fn ownership_partition_is_complete_and_disjoint() {
        let a = SpreadArray::new(0, 8, 23, 4);
        let mut seen = [false; 23];
        for pe in 0..4 {
            for i in a.owned_by(pe) {
                assert!(!seen[i as usize], "element {i} owned twice");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bytes_per_node_rounds_up() {
        let a = SpreadArray::new(0, 8, 10, 4);
        assert_eq!(a.bytes_per_node(), 24, "ceil(10/4)=3 elements of 8 bytes");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_index_panics() {
        SpreadArray::new(0, 8, 4, 2).gptr(4);
    }
}
