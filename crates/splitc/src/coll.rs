//! Collective operations over the Split-C runtime.
//!
//! Split-C itself provides only barriers; real programs immediately
//! build broadcasts and reductions on top of the store/get primitives.
//! This module provides the standard binomial-tree collectives the way
//! a T3D library would have: signaling stores for data movement (the
//! fastest primitive, per Section 6.4) with `allStoreSync` rounds as
//! the tree levels' synchronization.
//!
//! All collectives are *driver-level* (called on [`SplitC`], outside
//! phases) because each tree level is a bulk-synchronous phase of its
//! own.

use crate::gptr::GlobalPtr;
use crate::runtime::SplitC;

impl SplitC {
    /// Broadcasts the word at symmetric offset `off` from `root` to the
    /// same offset on every node, in ⌈log₂ P⌉ store rounds.
    ///
    /// # Example
    ///
    /// ```
    /// use splitc::SplitC;
    /// use t3d_machine::MachineConfig;
    ///
    /// let mut sc = SplitC::new(MachineConfig::t3d(8));
    /// let off = sc.alloc(8, 8);
    /// sc.machine().poke8(3, off, 123);
    /// sc.broadcast_u64(3, off);
    /// assert_eq!(sc.machine().peek8(0, off), 123);
    /// ```
    pub fn broadcast_u64(&mut self, root: usize, off: u64) {
        let p = self.nodes();
        assert!(root < p, "root {root} out of range");
        // Rotate ranks so the tree is rooted at `root`.
        let mut have = vec![false; p];
        have[root] = true;
        let mut stride = 1usize;
        while stride < p {
            let senders: Vec<usize> = (0..p).filter(|&n| have[n]).collect();
            for s in senders {
                let virt = (s + p - root) % p;
                let dst_virt = virt + stride;
                if dst_virt < p {
                    let dst = (dst_virt + root) % p;
                    self.on(s, |ctx| {
                        let pe = ctx.pe();
                        let v = ctx.machine().ld8(pe, off);
                        ctx.store_u64(GlobalPtr::new(dst as u32, off), v);
                    });
                    have[dst] = true;
                }
            }
            self.all_store_sync();
            stride *= 2;
        }
    }

    /// Reduces the words at symmetric offset `off` with `op` onto
    /// `root`, in ⌈log₂ P⌉ rounds; returns the result. Other nodes'
    /// words are left holding partial sums (scratch), as library
    /// reductions typically do.
    pub fn reduce_u64(
        &mut self,
        root: usize,
        off: u64,
        scratch_off: u64,
        op: impl Fn(u64, u64) -> u64 + Copy,
    ) -> u64 {
        let p = self.nodes();
        assert!(root < p, "root {root} out of range");
        let mut stride = {
            let mut s = 1usize;
            while s * 2 < p {
                s *= 2;
            }
            s
        };
        while stride >= 1 {
            // Virtual ranks: node (virt + root) % p.
            for virt in 0..p {
                let partner = virt + stride;
                if virt < stride && partner < p {
                    let src = (partner + root) % p;
                    let dst = (virt + root) % p;
                    self.on(src, |ctx| {
                        let pe = ctx.pe();
                        let v = ctx.machine().ld8(pe, off);
                        ctx.store_u64(GlobalPtr::new(dst as u32, scratch_off), v);
                    });
                }
            }
            self.all_store_sync();
            for virt in 0..p {
                let partner = virt + stride;
                if virt < stride && partner < p {
                    let dst = (virt + root) % p;
                    self.on(dst, |ctx| {
                        let pe = ctx.pe();
                        let mine = ctx.machine().ld8(pe, off);
                        let theirs = ctx.machine().ld8(pe, scratch_off);
                        let r = op(mine, theirs);
                        ctx.machine().st8(pe, off, r);
                        ctx.advance(8);
                    });
                }
            }
            self.barrier();
            if stride == 1 {
                break;
            }
            stride /= 2;
        }
        self.machine().peek8(root, off)
    }

    /// All-reduce: reduce onto node 0, then broadcast the result.
    pub fn all_reduce_u64(
        &mut self,
        off: u64,
        scratch_off: u64,
        op: impl Fn(u64, u64) -> u64 + Copy,
    ) -> u64 {
        let v = self.reduce_u64(0, off, scratch_off, op);
        self.broadcast_u64(0, off);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t3d_machine::MachineConfig;

    fn setup(p: u32) -> (SplitC, u64, u64) {
        let mut sc = SplitC::new(MachineConfig::t3d(p));
        let off = sc.alloc(8, 8);
        let scratch = sc.alloc(8, 8);
        (sc, off, scratch)
    }

    // Machine sizes are powers of two (`Machine::try_new` rejects the
    // rest), so the collective sweeps cover the constructible sizes;
    // the binomial trees themselves are size-agnostic.
    #[test]
    fn broadcast_reaches_every_node() {
        for p in [2u32, 4, 8, 16] {
            let (mut sc, off, _) = setup(p);
            sc.machine().poke8(1 % p as usize, off, 4242);
            sc.broadcast_u64(1 % p as usize, off);
            for pe in 0..p as usize {
                assert_eq!(sc.machine().peek8(pe, off), 4242, "P={p} PE={pe}");
            }
        }
    }

    #[test]
    fn reduce_sums_all_contributions() {
        for p in [2u32, 4, 8, 16] {
            let (mut sc, off, scratch) = setup(p);
            for pe in 0..p as usize {
                sc.machine().poke8(pe, off, (pe as u64 + 1) * 10);
            }
            let total = sc.reduce_u64(0, off, scratch, |a, b| a + b);
            let expected: u64 = (1..=p as u64).map(|i| i * 10).sum();
            assert_eq!(total, expected, "P={p}");
        }
    }

    #[test]
    fn reduce_onto_nonzero_root() {
        let (mut sc, off, scratch) = setup(8);
        for pe in 0..8 {
            sc.machine().poke8(pe, off, 1 << pe);
        }
        let total = sc.reduce_u64(5, off, scratch, |a, b| a | b);
        assert_eq!(total, 0xFF);
        assert_eq!(sc.machine().peek8(5, off), 0xFF, "result lands at the root");
    }

    #[test]
    fn all_reduce_max() {
        let (mut sc, off, scratch) = setup(8);
        for pe in 0..8 {
            sc.machine()
                .poke8(pe, off, [3u64, 9, 1, 99, 2, 8, 7, 4][pe]);
        }
        let m = sc.all_reduce_u64(off, scratch, u64::max);
        assert_eq!(m, 99);
        for pe in 0..8 {
            assert_eq!(sc.machine().peek8(pe, off), 99, "every node holds the max");
        }
    }

    #[test]
    fn broadcast_takes_logarithmic_rounds() {
        // 16 nodes: 4 store rounds; time should be far below 15 serial
        // blocking writes from the root.
        let (mut sc, off, _) = setup(16);
        sc.machine().poke8(0, off, 7);
        let t0 = sc.max_clock();
        sc.broadcast_u64(0, off);
        let tree_cy = sc.max_clock() - t0;

        let (mut sc2, off2, _) = setup(16);
        sc2.machine().poke8(0, off2, 7);
        let t0 = sc2.max_clock();
        sc2.on(0, |ctx| {
            for dst in 1..16u32 {
                ctx.write_u64(GlobalPtr::new(dst, off2), 7);
            }
        });
        sc2.barrier();
        let serial_cy = sc2.max_clock() - t0;
        assert!(
            tree_cy < serial_cy,
            "tree broadcast {tree_cy} cy vs serial root {serial_cy} cy"
        );
    }
}
