//! Operation recording: turning executions back into [`ScOp`] streams.
//!
//! With recording enabled ([`crate::SplitC::record_ops`]), every leaf
//! runtime primitive a program issues is appended to its node's log as
//! the [`ScOp`] that would reproduce it, and the global collectives
//! ([`crate::SplitC::barrier`] / [`crate::SplitC::all_store_sync`])
//! append markers to *every* node's log. The result
//! ([`crate::SplitC::take_op_log`]) is a per-PE
//! straight-line-with-barriers program — exactly the shape the
//! `t3d-lint` static analyzer consumes — so any runnable workload
//! (the EM3D versions, examples, user kernels) can be linted without a
//! separate IR front-end.
//!
//! Two properties of the log:
//!
//! * **Leaf ops only.** Composites record their constituents: a
//!   [`ScOp::LockGuardedWrite`] executes as try-acquire / write /
//!   release and is recorded as those three leaves. Convenience
//!   wrappers that delegate (`byte_read` → `read_u64`, small
//!   `bulk_read` → `read_u64`) record both the wrapper and the
//!   delegate, so the log is a *superset* of the issued surface ops
//!   with identical memory footprints.
//! * **No poll pollution.** `am_poll` is not recorded: the global
//!   barrier polls every queue on every node, and logging that would
//!   bury programs under collective bookkeeping. AM traffic is
//!   captured at the deposit side instead ([`ScOp::AmAdd`]).
//!
//! Direct machine access (`ctx.machine()` / `ctx.ops()` peeks and
//! pokes) is below the runtime surface and is not recorded.

use crate::op::ScOp;

/// One entry of a node's recorded stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecEvent {
    /// A runtime primitive, as the op that reproduces it.
    Op(ScOp),
    /// The node participated in a global [`crate::SplitC::barrier`].
    Barrier,
    /// The node participated in a global
    /// [`crate::SplitC::all_store_sync`] (followed by its barrier).
    AllStoreSync,
    /// An SPMD phase ([`crate::SplitC::run_phase`] /
    /// [`crate::SplitC::par_phase`]) ended here. Phases are *sequenced*
    /// against each other — effects of an earlier phase are analyzed
    /// before any effect of a later one — without creating the
    /// happens-before edges a barrier does, which is exactly the
    /// distinction the static analyzer needs for barrier-free
    /// message-driven programs (the EM3D `storeSync` version).
    PhaseEnd,
}

/// A node's recording state: off by default, free when disabled.
#[derive(Debug, Clone, Default)]
pub(crate) struct RecLog {
    pub(crate) enabled: bool,
    pub(crate) events: Vec<RecEvent>,
}

impl RecLog {
    #[inline]
    pub(crate) fn push(&mut self, ev: RecEvent) {
        if self.enabled {
            self.events.push(ev);
        }
    }
}
