//! A first-class operation surface for driving the runtime uniformly.
//!
//! [`ScOp`] reifies every Split-C primitive — blocking read/write,
//! split-phase get/put/sync, signaling stores, bulk transfers, byte and
//! word sub-accesses, AM-queue traffic and locks — as one plain-data
//! enum, and [`ScCtx::exec_op`] executes any of them. Generated
//! programs (the `t3d-fuzz` differential fuzzer) and replay tooling use
//! this to compose the full primitive surface without a closure per op;
//! because `ScOp` is `Copy + Debug`, an op list *is* a self-contained,
//! printable reproducer.
//!
//! Two composite lock ops exist so that a statically-known op list can
//! express the conditional shapes locks are actually used in:
//! [`ScOp::LockGuardedWrite`] (try-acquire, write under the lock,
//! release — skipped wholesale when the lock is busy) and
//! [`ScOp::LockFreeIfHeld`] (release only when the word is held, so
//! replaying a shrunken list can never trip the "released a lock that
//! was not held" assertion).

use crate::gptr::GlobalPtr;
use crate::lock::GlobalLock;
use crate::runtime::{ScCtx, AM_ADD_U64};

/// One Split-C primitive invocation, as plain data.
///
/// Executed by [`ScCtx::exec_op`]; ops that produce a value return it as
/// `Some(u64)` (booleans widen to 0/1), pure effects return `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScOp {
    /// Charge `cycles` of local computation.
    Advance {
        /// Cycles to charge.
        cycles: u64,
    },
    /// Blocking read of a 64-bit word.
    ReadU64 {
        /// Word to read.
        src: GlobalPtr,
    },
    /// Blocking write of a 64-bit word.
    WriteU64 {
        /// Word to write.
        dst: GlobalPtr,
        /// Value stored.
        value: u64,
    },
    /// Read of an aligned 32-bit sub-word.
    ReadU32 {
        /// Location read (4-byte aligned).
        src: GlobalPtr,
    },
    /// Write of an aligned 32-bit sub-word (remote goes via the AM
    /// queue).
    WriteU32 {
        /// Location written (4-byte aligned).
        dst: GlobalPtr,
        /// Value stored.
        value: u32,
    },
    /// Read of a single byte.
    ByteRead {
        /// Byte read.
        src: GlobalPtr,
    },
    /// Correct byte write (remote goes via the AM queue).
    ByteWrite {
        /// Byte written.
        dst: GlobalPtr,
        /// Value stored.
        value: u8,
    },
    /// Split-phase get into `local_off`; completes at [`ScOp::Sync`].
    Get {
        /// Local landing offset.
        local_off: u64,
        /// Remote word fetched.
        src: GlobalPtr,
    },
    /// Split-phase put.
    Put {
        /// Word written.
        dst: GlobalPtr,
        /// Value stored.
        value: u64,
    },
    /// Completes all outstanding gets and puts of this PE.
    Sync,
    /// Signaling store (counts toward the target's `store_sync`).
    StoreU64 {
        /// Word written.
        dst: GlobalPtr,
        /// Value stored.
        value: u64,
    },
    /// Waits until `bytes` more store data has arrived here.
    StoreSync {
        /// Bytes of store traffic to wait for.
        bytes: u64,
    },
    /// Blocking bulk read.
    BulkRead {
        /// Local landing offset.
        local_off: u64,
        /// First remote word.
        src: GlobalPtr,
        /// Whole-word byte count.
        bytes: u64,
    },
    /// Blocking bulk write.
    BulkWrite {
        /// First remote word written.
        dst: GlobalPtr,
        /// Local source offset.
        local_off: u64,
        /// Whole-word byte count.
        bytes: u64,
    },
    /// Non-blocking bulk get; completes at [`ScOp::Sync`].
    BulkGet {
        /// Local landing offset.
        local_off: u64,
        /// First remote word.
        src: GlobalPtr,
        /// Whole-word byte count.
        bytes: u64,
    },
    /// Non-blocking bulk put; completes at [`ScOp::Sync`].
    BulkPut {
        /// First remote word written.
        dst: GlobalPtr,
        /// Local source offset.
        local_off: u64,
        /// Whole-word byte count.
        bytes: u64,
    },
    /// Strided bulk read (gather).
    BulkReadStrided {
        /// Local landing offset (elements packed densely).
        local_off: u64,
        /// First remote element.
        src: GlobalPtr,
        /// Number of elements.
        count: u64,
        /// Element size in bytes (whole words).
        elem_bytes: u64,
        /// Remote stride in bytes.
        stride_bytes: u64,
    },
    /// Strided bulk write (scatter).
    BulkWriteStrided {
        /// First remote element written.
        dst: GlobalPtr,
        /// Local source offset (elements packed densely).
        local_off: u64,
        /// Number of elements.
        count: u64,
        /// Element size in bytes (whole words).
        elem_bytes: u64,
        /// Remote stride in bytes.
        stride_bytes: u64,
    },
    /// AM-queue remote add: deposits an [`AM_ADD_U64`] message that adds
    /// `delta` to the word at `off` on `target_pe` when it polls.
    AmAdd {
        /// Queue owner.
        target_pe: u32,
        /// Local offset of the word on the target.
        off: u64,
        /// Added (wrapping) at dispatch time.
        delta: u64,
    },
    /// Polls this PE's AM queue; returns the number dispatched.
    AmPoll,
    /// Try-acquire of the lock at `word`; returns 1 when acquired.
    LockTryAcquire {
        /// The lock word.
        word: GlobalPtr,
    },
    /// Release of the lock at `word` (panics when not held).
    LockRelease {
        /// The lock word.
        word: GlobalPtr,
    },
    /// Functional probe of the lock word; returns 1 when held.
    LockIsHeld {
        /// The lock word.
        word: GlobalPtr,
    },
    /// Composite: try-acquire `word`; when acquired, write `value` to
    /// `dst` and release. Returns 1 when the write happened, 0 when the
    /// lock was busy.
    LockGuardedWrite {
        /// The lock word.
        word: GlobalPtr,
        /// Word written inside the critical section.
        dst: GlobalPtr,
        /// Value stored.
        value: u64,
    },
    /// Composite: release `word` only when it is currently held.
    /// Returns 1 when a release happened.
    LockFreeIfHeld {
        /// The lock word.
        word: GlobalPtr,
    },
}

impl ScCtx<'_> {
    /// Executes one [`ScOp`] on this PE, returning its value (if the
    /// primitive produces one).
    ///
    /// # Example
    ///
    /// ```
    /// use splitc::{GlobalPtr, ScOp, SplitC};
    /// use t3d_machine::MachineConfig;
    ///
    /// let mut sc = SplitC::new(MachineConfig::t3d(2));
    /// let cell = sc.alloc(8, 8);
    /// let gp = GlobalPtr::new(1, cell);
    /// sc.on(0, |ctx| {
    ///     ctx.exec_op(&ScOp::WriteU64 { dst: gp, value: 7 });
    ///     assert_eq!(ctx.exec_op(&ScOp::ReadU64 { src: gp }), Some(7));
    /// });
    /// ```
    pub fn exec_op(&mut self, op: &ScOp) -> Option<u64> {
        match *op {
            ScOp::Advance { cycles } => {
                self.advance(cycles);
                None
            }
            ScOp::ReadU64 { src } => Some(self.read_u64(src)),
            ScOp::WriteU64 { dst, value } => {
                self.write_u64(dst, value);
                None
            }
            ScOp::ReadU32 { src } => Some(self.read_u32(src) as u64),
            ScOp::WriteU32 { dst, value } => {
                self.write_u32(dst, value);
                None
            }
            ScOp::ByteRead { src } => Some(self.byte_read(src) as u64),
            ScOp::ByteWrite { dst, value } => {
                self.byte_write(dst, value);
                None
            }
            ScOp::Get { local_off, src } => {
                self.get(local_off, src);
                None
            }
            ScOp::Put { dst, value } => {
                self.put(dst, value);
                None
            }
            ScOp::Sync => {
                self.sync();
                None
            }
            ScOp::StoreU64 { dst, value } => {
                self.store_u64(dst, value);
                None
            }
            ScOp::StoreSync { bytes } => {
                self.store_sync(bytes);
                None
            }
            ScOp::BulkRead {
                local_off,
                src,
                bytes,
            } => {
                self.bulk_read(local_off, src, bytes);
                None
            }
            ScOp::BulkWrite {
                dst,
                local_off,
                bytes,
            } => {
                self.bulk_write(dst, local_off, bytes);
                None
            }
            ScOp::BulkGet {
                local_off,
                src,
                bytes,
            } => {
                self.bulk_get(local_off, src, bytes);
                None
            }
            ScOp::BulkPut {
                dst,
                local_off,
                bytes,
            } => {
                self.bulk_put(dst, local_off, bytes);
                None
            }
            ScOp::BulkReadStrided {
                local_off,
                src,
                count,
                elem_bytes,
                stride_bytes,
            } => {
                self.bulk_read_strided(local_off, src, count, elem_bytes, stride_bytes);
                None
            }
            ScOp::BulkWriteStrided {
                dst,
                local_off,
                count,
                elem_bytes,
                stride_bytes,
            } => {
                self.bulk_write_strided(dst, local_off, count, elem_bytes, stride_bytes);
                None
            }
            ScOp::AmAdd {
                target_pe,
                off,
                delta,
            } => {
                self.am_deposit(target_pe as usize, AM_ADD_U64, [off, delta, 0, 0]);
                None
            }
            ScOp::AmPoll => Some(self.am_poll() as u64),
            ScOp::LockTryAcquire { word } => {
                Some(self.lock_try_acquire(GlobalLock::new(word)) as u64)
            }
            ScOp::LockRelease { word } => {
                self.lock_release(GlobalLock::new(word));
                None
            }
            ScOp::LockIsHeld { word } => Some(self.lock_is_held(GlobalLock::new(word)) as u64),
            ScOp::LockGuardedWrite { word, dst, value } => {
                let lock = GlobalLock::new(word);
                if self.lock_try_acquire(lock) {
                    self.write_u64(dst, value);
                    self.lock_release(lock);
                    Some(1)
                } else {
                    Some(0)
                }
            }
            ScOp::LockFreeIfHeld { word } => {
                let lock = GlobalLock::new(word);
                if self.lock_is_held(lock) {
                    self.lock_release(lock);
                    Some(1)
                } else {
                    Some(0)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::SplitC;
    use t3d_machine::MachineConfig;

    fn sc() -> SplitC {
        SplitC::new(MachineConfig::t3d(4))
    }

    #[test]
    fn rw_ops_match_direct_calls() {
        let mut s = sc();
        let a = s.alloc(64, 8);
        let gp = GlobalPtr::new(1, a);
        s.on(0, |ctx| {
            ctx.exec_op(&ScOp::WriteU64 {
                dst: gp,
                value: 0x1122_3344_5566_7788,
            });
            assert_eq!(
                ctx.exec_op(&ScOp::ReadU64 { src: gp }),
                Some(0x1122_3344_5566_7788)
            );
            assert_eq!(ctx.exec_op(&ScOp::ReadU32 { src: gp }), Some(0x5566_7788));
            assert_eq!(ctx.exec_op(&ScOp::ByteRead { src: gp }), Some(0x88));
            ctx.exec_op(&ScOp::WriteU32 {
                dst: gp.local_add(4),
                value: 0xAABB_CCDD,
            });
            ctx.exec_op(&ScOp::ByteWrite {
                dst: gp,
                value: 0x99,
            });
        });
        s.barrier();
        assert_eq!(s.machine().peek8(1, a), 0xAABB_CCDD_5566_7799);
    }

    #[test]
    fn split_phase_and_store_ops() {
        let mut s = sc();
        let a = s.alloc(64, 8);
        s.machine().poke8(2, a, 424242);
        s.on(0, |ctx| {
            ctx.exec_op(&ScOp::Get {
                local_off: a + 8,
                src: GlobalPtr::new(2, a),
            });
            ctx.exec_op(&ScOp::Put {
                dst: GlobalPtr::new(3, a),
                value: 5,
            });
            ctx.exec_op(&ScOp::Sync);
            ctx.exec_op(&ScOp::StoreU64 {
                dst: GlobalPtr::new(1, a),
                value: 6,
            });
        });
        s.barrier();
        s.on(1, |ctx| ctx.exec_op(&ScOp::StoreSync { bytes: 8 }));
        assert_eq!(s.machine().peek8(0, a + 8), 424242);
        assert_eq!(s.machine().peek8(3, a), 5);
        assert_eq!(s.machine().peek8(1, a), 6);
    }

    #[test]
    fn bulk_ops_move_data() {
        let mut s = sc();
        let a = s.alloc(256, 8);
        for w in 0..4 {
            s.machine().poke8(1, a + w * 8, 100 + w);
        }
        s.on(0, |ctx| {
            ctx.exec_op(&ScOp::BulkRead {
                local_off: a,
                src: GlobalPtr::new(1, a),
                bytes: 32,
            });
            ctx.exec_op(&ScOp::BulkWrite {
                dst: GlobalPtr::new(2, a),
                local_off: a,
                bytes: 32,
            });
            ctx.exec_op(&ScOp::BulkGet {
                local_off: a + 64,
                src: GlobalPtr::new(1, a),
                bytes: 16,
            });
            ctx.exec_op(&ScOp::BulkPut {
                dst: GlobalPtr::new(3, a),
                local_off: a,
                bytes: 16,
            });
            ctx.exec_op(&ScOp::Sync);
            ctx.exec_op(&ScOp::BulkReadStrided {
                local_off: a + 128,
                src: GlobalPtr::new(1, a),
                count: 2,
                elem_bytes: 8,
                stride_bytes: 16,
            });
            ctx.exec_op(&ScOp::BulkWriteStrided {
                dst: GlobalPtr::new(2, a + 64),
                local_off: a,
                count: 2,
                elem_bytes: 8,
                stride_bytes: 24,
            });
        });
        s.barrier();
        for w in 0..4 {
            assert_eq!(s.machine().peek8(0, a + w * 8), 100 + w);
            assert_eq!(s.machine().peek8(2, a + w * 8), 100 + w);
        }
        assert_eq!(s.machine().peek8(0, a + 64), 100);
        assert_eq!(s.machine().peek8(0, a + 72), 101);
        assert_eq!(s.machine().peek8(3, a), 100);
        assert_eq!(s.machine().peek8(3, a + 8), 101);
        assert_eq!(s.machine().peek8(0, a + 128), 100);
        assert_eq!(s.machine().peek8(0, a + 136), 102);
        assert_eq!(s.machine().peek8(2, a + 64), 100);
        assert_eq!(s.machine().peek8(2, a + 88), 101);
    }

    #[test]
    fn am_and_lock_ops() {
        let mut s = sc();
        let a = s.alloc(64, 8);
        let lock_word = GlobalPtr::new(0, a + 8);
        s.on(1, |ctx| {
            ctx.exec_op(&ScOp::AmAdd {
                target_pe: 0,
                off: a,
                delta: 9,
            });
        });
        s.on(0, |ctx| {
            assert_eq!(ctx.exec_op(&ScOp::AmPoll), Some(1));
            assert_eq!(ctx.exec_op(&ScOp::LockIsHeld { word: lock_word }), Some(0));
            assert_eq!(
                ctx.exec_op(&ScOp::LockTryAcquire { word: lock_word }),
                Some(1)
            );
            assert_eq!(ctx.exec_op(&ScOp::LockIsHeld { word: lock_word }), Some(1));
            ctx.exec_op(&ScOp::LockRelease { word: lock_word });
        });
        assert_eq!(s.machine().peek8(0, a), 9);
    }

    #[test]
    fn composite_lock_ops_are_conditional() {
        let mut s = sc();
        let a = s.alloc(64, 8);
        let word = GlobalPtr::new(1, a);
        let dst = GlobalPtr::new(2, a + 8);
        // Free lock: guarded write goes through and releases.
        let r = s.on(0, |ctx| {
            ctx.exec_op(&ScOp::LockGuardedWrite {
                word,
                dst,
                value: 77,
            })
        });
        assert_eq!(r, Some(1));
        assert_eq!(s.machine().peek8(2, a + 8), 77);
        // Held lock: guarded write is skipped wholesale.
        s.on(3, |ctx| {
            assert_eq!(ctx.exec_op(&ScOp::LockTryAcquire { word }), Some(1))
        });
        let r = s.on(0, |ctx| {
            ctx.exec_op(&ScOp::LockGuardedWrite {
                word,
                dst,
                value: 1,
            })
        });
        assert_eq!(r, Some(0));
        assert_eq!(s.machine().peek8(2, a + 8), 77, "busy path wrote nothing");
        // Conditional free: releases once, then is a no-op.
        assert_eq!(
            s.on(0, |ctx| ctx.exec_op(&ScOp::LockFreeIfHeld { word })),
            Some(1)
        );
        assert_eq!(
            s.on(0, |ctx| ctx.exec_op(&ScOp::LockFreeIfHeld { word })),
            Some(0)
        );
    }

    #[test]
    fn advance_charges_time() {
        let mut s = sc();
        s.on(0, |ctx| {
            let t0 = ctx.clock();
            ctx.exec_op(&ScOp::Advance { cycles: 123 });
            assert_eq!(ctx.clock(), t0 + 123);
        });
    }
}
