//! A first-class operation surface for driving the runtime uniformly.
//!
//! [`ScOp`] reifies every Split-C primitive — blocking read/write,
//! split-phase get/put/sync, signaling stores, bulk transfers, byte and
//! word sub-accesses, AM-queue traffic and locks — as one plain-data
//! enum, and [`ScCtx::exec_op`] executes any of them. Generated
//! programs (the `t3d-fuzz` differential fuzzer) and replay tooling use
//! this to compose the full primitive surface without a closure per op;
//! because `ScOp` is `Copy + Debug`, an op list *is* a self-contained,
//! printable reproducer.
//!
//! Two composite lock ops exist so that a statically-known op list can
//! express the conditional shapes locks are actually used in:
//! [`ScOp::LockGuardedWrite`] (try-acquire, write under the lock,
//! release — skipped wholesale when the lock is busy) and
//! [`ScOp::LockFreeIfHeld`] (release only when the word is held, so
//! replaying a shrunken list can never trip the "released a lock that
//! was not held" assertion).

use crate::gptr::GlobalPtr;
use crate::lock::GlobalLock;
use crate::runtime::{ScCtx, AM_ADD_U64};
use t3d_machine::MachineConfig;

/// One Split-C primitive invocation, as plain data.
///
/// Executed by [`ScCtx::exec_op`]; ops that produce a value return it as
/// `Some(u64)` (booleans widen to 0/1), pure effects return `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScOp {
    /// Charge `cycles` of local computation.
    Advance {
        /// Cycles to charge.
        cycles: u64,
    },
    /// Blocking read of a 64-bit word.
    ReadU64 {
        /// Word to read.
        src: GlobalPtr,
    },
    /// Blocking write of a 64-bit word.
    WriteU64 {
        /// Word to write.
        dst: GlobalPtr,
        /// Value stored.
        value: u64,
    },
    /// Read of an aligned 32-bit sub-word.
    ReadU32 {
        /// Location read (4-byte aligned).
        src: GlobalPtr,
    },
    /// Write of an aligned 32-bit sub-word (remote goes via the AM
    /// queue).
    WriteU32 {
        /// Location written (4-byte aligned).
        dst: GlobalPtr,
        /// Value stored.
        value: u32,
    },
    /// Read of a single byte.
    ByteRead {
        /// Byte read.
        src: GlobalPtr,
    },
    /// Correct byte write (remote goes via the AM queue).
    ByteWrite {
        /// Byte written.
        dst: GlobalPtr,
        /// Value stored.
        value: u8,
    },
    /// Split-phase get into `local_off`; completes at [`ScOp::Sync`].
    Get {
        /// Local landing offset.
        local_off: u64,
        /// Remote word fetched.
        src: GlobalPtr,
    },
    /// Split-phase put.
    Put {
        /// Word written.
        dst: GlobalPtr,
        /// Value stored.
        value: u64,
    },
    /// Completes all outstanding gets and puts of this PE.
    Sync,
    /// Signaling store (counts toward the target's `store_sync`).
    StoreU64 {
        /// Word written.
        dst: GlobalPtr,
        /// Value stored.
        value: u64,
    },
    /// Waits until `bytes` more store data has arrived here.
    StoreSync {
        /// Bytes of store traffic to wait for.
        bytes: u64,
    },
    /// Blocking bulk read.
    BulkRead {
        /// Local landing offset.
        local_off: u64,
        /// First remote word.
        src: GlobalPtr,
        /// Whole-word byte count.
        bytes: u64,
    },
    /// Blocking bulk write.
    BulkWrite {
        /// First remote word written.
        dst: GlobalPtr,
        /// Local source offset.
        local_off: u64,
        /// Whole-word byte count.
        bytes: u64,
    },
    /// Non-blocking bulk get; completes at [`ScOp::Sync`].
    BulkGet {
        /// Local landing offset.
        local_off: u64,
        /// First remote word.
        src: GlobalPtr,
        /// Whole-word byte count.
        bytes: u64,
    },
    /// Non-blocking bulk put; completes at [`ScOp::Sync`].
    BulkPut {
        /// First remote word written.
        dst: GlobalPtr,
        /// Local source offset.
        local_off: u64,
        /// Whole-word byte count.
        bytes: u64,
    },
    /// Strided bulk read (gather).
    BulkReadStrided {
        /// Local landing offset (elements packed densely).
        local_off: u64,
        /// First remote element.
        src: GlobalPtr,
        /// Number of elements.
        count: u64,
        /// Element size in bytes (whole words).
        elem_bytes: u64,
        /// Remote stride in bytes.
        stride_bytes: u64,
    },
    /// Strided bulk write (scatter).
    BulkWriteStrided {
        /// First remote element written.
        dst: GlobalPtr,
        /// Local source offset (elements packed densely).
        local_off: u64,
        /// Number of elements.
        count: u64,
        /// Element size in bytes (whole words).
        elem_bytes: u64,
        /// Remote stride in bytes.
        stride_bytes: u64,
    },
    /// AM-queue remote add: deposits an [`AM_ADD_U64`] message that adds
    /// `delta` to the word at `off` on `target_pe` when it polls.
    AmAdd {
        /// Queue owner.
        target_pe: u32,
        /// Local offset of the word on the target.
        off: u64,
        /// Added (wrapping) at dispatch time.
        delta: u64,
    },
    /// Polls this PE's AM queue; returns the number dispatched.
    AmPoll,
    /// Try-acquire of the lock at `word`; returns 1 when acquired.
    LockTryAcquire {
        /// The lock word.
        word: GlobalPtr,
    },
    /// Release of the lock at `word` (panics when not held).
    LockRelease {
        /// The lock word.
        word: GlobalPtr,
    },
    /// Functional probe of the lock word; returns 1 when held.
    LockIsHeld {
        /// The lock word.
        word: GlobalPtr,
    },
    /// Composite: try-acquire `word`; when acquired, write `value` to
    /// `dst` and release. Returns 1 when the write happened, 0 when the
    /// lock was busy.
    LockGuardedWrite {
        /// The lock word.
        word: GlobalPtr,
        /// Word written inside the critical section.
        dst: GlobalPtr,
        /// Value stored.
        value: u64,
    },
    /// Composite: release `word` only when it is currently held.
    /// Returns 1 when a release happened.
    LockFreeIfHeld {
        /// The lock word.
        word: GlobalPtr,
    },
}

/// The discriminant of an [`ScOp`], for static consumers (the `t3d-lint`
/// analyzer, op-kind histograms, shrinker heuristics) that classify ops
/// without destructuring them.
///
/// [`ScOp::kind`] maps every variant exhaustively, so adding an `ScOp`
/// variant without extending this enum (and [`ScOpKind::ALL`]) is a
/// compile error rather than a silently unanalyzed op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // mirrors ScOp variant-for-variant
pub enum ScOpKind {
    Advance,
    ReadU64,
    WriteU64,
    ReadU32,
    WriteU32,
    ByteRead,
    ByteWrite,
    Get,
    Put,
    Sync,
    StoreU64,
    StoreSync,
    BulkRead,
    BulkWrite,
    BulkGet,
    BulkPut,
    BulkReadStrided,
    BulkWriteStrided,
    AmAdd,
    AmPoll,
    LockTryAcquire,
    LockRelease,
    LockIsHeld,
    LockGuardedWrite,
    LockFreeIfHeld,
}

impl ScOpKind {
    /// Every kind, in [`ScOp`] declaration order.
    pub const ALL: [ScOpKind; 25] = [
        ScOpKind::Advance,
        ScOpKind::ReadU64,
        ScOpKind::WriteU64,
        ScOpKind::ReadU32,
        ScOpKind::WriteU32,
        ScOpKind::ByteRead,
        ScOpKind::ByteWrite,
        ScOpKind::Get,
        ScOpKind::Put,
        ScOpKind::Sync,
        ScOpKind::StoreU64,
        ScOpKind::StoreSync,
        ScOpKind::BulkRead,
        ScOpKind::BulkWrite,
        ScOpKind::BulkGet,
        ScOpKind::BulkPut,
        ScOpKind::BulkReadStrided,
        ScOpKind::BulkWriteStrided,
        ScOpKind::AmAdd,
        ScOpKind::AmPoll,
        ScOpKind::LockTryAcquire,
        ScOpKind::LockRelease,
        ScOpKind::LockIsHeld,
        ScOpKind::LockGuardedWrite,
        ScOpKind::LockFreeIfHeld,
    ];

    /// The variant name (stable, used in histograms and reports).
    pub fn name(self) -> &'static str {
        match self {
            ScOpKind::Advance => "Advance",
            ScOpKind::ReadU64 => "ReadU64",
            ScOpKind::WriteU64 => "WriteU64",
            ScOpKind::ReadU32 => "ReadU32",
            ScOpKind::WriteU32 => "WriteU32",
            ScOpKind::ByteRead => "ByteRead",
            ScOpKind::ByteWrite => "ByteWrite",
            ScOpKind::Get => "Get",
            ScOpKind::Put => "Put",
            ScOpKind::Sync => "Sync",
            ScOpKind::StoreU64 => "StoreU64",
            ScOpKind::StoreSync => "StoreSync",
            ScOpKind::BulkRead => "BulkRead",
            ScOpKind::BulkWrite => "BulkWrite",
            ScOpKind::BulkGet => "BulkGet",
            ScOpKind::BulkPut => "BulkPut",
            ScOpKind::BulkReadStrided => "BulkReadStrided",
            ScOpKind::BulkWriteStrided => "BulkWriteStrided",
            ScOpKind::AmAdd => "AmAdd",
            ScOpKind::AmPoll => "AmPoll",
            ScOpKind::LockTryAcquire => "LockTryAcquire",
            ScOpKind::LockRelease => "LockRelease",
            ScOpKind::LockIsHeld => "LockIsHeld",
            ScOpKind::LockGuardedWrite => "LockGuardedWrite",
            ScOpKind::LockFreeIfHeld => "LockFreeIfHeld",
        }
    }
}

/// A contiguous byte range on one PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrSpan {
    /// Owning PE.
    pub pe: u32,
    /// First byte (local address).
    pub addr: u64,
    /// Length in bytes.
    pub bytes: u64,
}

impl AddrSpan {
    /// Whether two spans share at least one byte on the same PE.
    pub fn overlaps(&self, other: &AddrSpan) -> bool {
        self.pe == other.pe
            && self.addr < other.addr + other.bytes
            && other.addr < self.addr + self.bytes
    }
}

/// The memory footprint of one [`ScOp`]: what it reads and what it
/// writes (may-write for conditional composites), plus whether any span
/// falls outside the machine.
///
/// Strided transfers report their whole remote span, gaps included —
/// the same conservative treatment the sanitizer's span events use.
/// Lock-word traffic contributes no spans: lock words are
/// synchronization state, and counting them as data would make every
/// contended critical section look like a data race.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpFootprint {
    /// Byte ranges the op reads.
    pub reads: Vec<AddrSpan>,
    /// Byte ranges the op writes (or may write).
    pub writes: Vec<AddrSpan>,
    /// Whether any span references a PE outside the machine or bytes
    /// past the end of a node's memory.
    pub oob: bool,
}

impl ScOp {
    /// The discriminant of this op (exhaustive; see [`ScOpKind`]).
    pub fn kind(&self) -> ScOpKind {
        match self {
            ScOp::Advance { .. } => ScOpKind::Advance,
            ScOp::ReadU64 { .. } => ScOpKind::ReadU64,
            ScOp::WriteU64 { .. } => ScOpKind::WriteU64,
            ScOp::ReadU32 { .. } => ScOpKind::ReadU32,
            ScOp::WriteU32 { .. } => ScOpKind::WriteU32,
            ScOp::ByteRead { .. } => ScOpKind::ByteRead,
            ScOp::ByteWrite { .. } => ScOpKind::ByteWrite,
            ScOp::Get { .. } => ScOpKind::Get,
            ScOp::Put { .. } => ScOpKind::Put,
            ScOp::Sync => ScOpKind::Sync,
            ScOp::StoreU64 { .. } => ScOpKind::StoreU64,
            ScOp::StoreSync { .. } => ScOpKind::StoreSync,
            ScOp::BulkRead { .. } => ScOpKind::BulkRead,
            ScOp::BulkWrite { .. } => ScOpKind::BulkWrite,
            ScOp::BulkGet { .. } => ScOpKind::BulkGet,
            ScOp::BulkPut { .. } => ScOpKind::BulkPut,
            ScOp::BulkReadStrided { .. } => ScOpKind::BulkReadStrided,
            ScOp::BulkWriteStrided { .. } => ScOpKind::BulkWriteStrided,
            ScOp::AmAdd { .. } => ScOpKind::AmAdd,
            ScOp::AmPoll => ScOpKind::AmPoll,
            ScOp::LockTryAcquire { .. } => ScOpKind::LockTryAcquire,
            ScOp::LockRelease { .. } => ScOpKind::LockRelease,
            ScOp::LockIsHeld { .. } => ScOpKind::LockIsHeld,
            ScOp::LockGuardedWrite { .. } => ScOpKind::LockGuardedWrite,
            ScOp::LockFreeIfHeld { .. } => ScOpKind::LockFreeIfHeld,
        }
    }

    /// The byte ranges this op touches when issued by `pe` on a machine
    /// shaped like `cfg` (exhaustive; see [`OpFootprint`]).
    pub fn touched_addrs(&self, pe: u32, cfg: &MachineConfig) -> OpFootprint {
        let mut fp = OpFootprint::default();
        let strided_span = |count: u64, elem: u64, stride: u64| -> Option<u64> {
            count
                .checked_sub(1)
                .and_then(|c| c.checked_mul(stride))
                .and_then(|s| s.checked_add(elem))
        };
        {
            let mut read =
                |p: u32, addr: u64, bytes: u64| fp.reads.push(AddrSpan { pe: p, addr, bytes });
            let mut write =
                |p: u32, addr: u64, bytes: u64| fp.writes.push(AddrSpan { pe: p, addr, bytes });
            match *self {
                ScOp::Advance { .. }
                | ScOp::Sync
                | ScOp::StoreSync { .. }
                | ScOp::AmPoll
                // Lock words are synchronization, not data (see above).
                | ScOp::LockTryAcquire { .. }
                | ScOp::LockRelease { .. }
                | ScOp::LockIsHeld { .. }
                | ScOp::LockFreeIfHeld { .. } => {}
                ScOp::ReadU64 { src } => read(src.pe(), src.addr(), 8),
                ScOp::ReadU32 { src } => read(src.pe(), src.addr(), 4),
                ScOp::ByteRead { src } => read(src.pe(), src.addr(), 1),
                ScOp::WriteU64 { dst, .. } | ScOp::Put { dst, .. } | ScOp::StoreU64 { dst, .. } => {
                    write(dst.pe(), dst.addr(), 8);
                }
                ScOp::WriteU32 { dst, .. } => write(dst.pe(), dst.addr(), 4),
                ScOp::ByteWrite { dst, .. } => write(dst.pe(), dst.addr(), 1),
                ScOp::Get { local_off, src } => {
                    read(src.pe(), src.addr(), 8);
                    write(pe, local_off, 8);
                }
                ScOp::BulkRead {
                    local_off,
                    src,
                    bytes,
                }
                | ScOp::BulkGet {
                    local_off,
                    src,
                    bytes,
                } => {
                    read(src.pe(), src.addr(), bytes);
                    write(pe, local_off, bytes);
                }
                ScOp::BulkWrite {
                    dst,
                    local_off,
                    bytes,
                }
                | ScOp::BulkPut {
                    dst,
                    local_off,
                    bytes,
                } => {
                    read(pe, local_off, bytes);
                    write(dst.pe(), dst.addr(), bytes);
                }
                ScOp::BulkReadStrided {
                    local_off,
                    src,
                    count,
                    elem_bytes,
                    stride_bytes,
                } => {
                    let span = strided_span(count, elem_bytes, stride_bytes);
                    read(src.pe(), src.addr(), span.unwrap_or(u64::MAX));
                    write(pe, local_off, count.saturating_mul(elem_bytes));
                }
                ScOp::BulkWriteStrided {
                    dst,
                    local_off,
                    count,
                    elem_bytes,
                    stride_bytes,
                } => {
                    let span = strided_span(count, elem_bytes, stride_bytes);
                    read(pe, local_off, count.saturating_mul(elem_bytes));
                    write(dst.pe(), dst.addr(), span.unwrap_or(u64::MAX));
                }
                ScOp::AmAdd { target_pe, off, .. } => {
                    // Fetched, added to, and rewritten when the target polls.
                    read(target_pe, off, 8);
                    write(target_pe, off, 8);
                }
                ScOp::LockGuardedWrite { dst, .. } => write(dst.pe(), dst.addr(), 8),
            }
        }
        let nodes = cfg.nodes();
        let mem = cfg.mem.mem_bytes as u64;
        fp.oob = fp
            .reads
            .iter()
            .chain(&fp.writes)
            .any(|s| s.pe >= nodes || s.addr.checked_add(s.bytes).is_none_or(|end| end > mem));
        fp
    }
}

impl ScCtx<'_> {
    /// Executes one [`ScOp`] on this PE, returning its value (if the
    /// primitive produces one).
    ///
    /// # Example
    ///
    /// ```
    /// use splitc::{GlobalPtr, ScOp, SplitC};
    /// use t3d_machine::MachineConfig;
    ///
    /// let mut sc = SplitC::new(MachineConfig::t3d(2));
    /// let cell = sc.alloc(8, 8);
    /// let gp = GlobalPtr::new(1, cell);
    /// sc.on(0, |ctx| {
    ///     ctx.exec_op(&ScOp::WriteU64 { dst: gp, value: 7 });
    ///     assert_eq!(ctx.exec_op(&ScOp::ReadU64 { src: gp }), Some(7));
    /// });
    /// ```
    pub fn exec_op(&mut self, op: &ScOp) -> Option<u64> {
        match *op {
            ScOp::Advance { cycles } => {
                self.advance(cycles);
                None
            }
            ScOp::ReadU64 { src } => Some(self.read_u64(src)),
            ScOp::WriteU64 { dst, value } => {
                self.write_u64(dst, value);
                None
            }
            ScOp::ReadU32 { src } => Some(self.read_u32(src) as u64),
            ScOp::WriteU32 { dst, value } => {
                self.write_u32(dst, value);
                None
            }
            ScOp::ByteRead { src } => Some(self.byte_read(src) as u64),
            ScOp::ByteWrite { dst, value } => {
                self.byte_write(dst, value);
                None
            }
            ScOp::Get { local_off, src } => {
                self.get(local_off, src);
                None
            }
            ScOp::Put { dst, value } => {
                self.put(dst, value);
                None
            }
            ScOp::Sync => {
                self.sync();
                None
            }
            ScOp::StoreU64 { dst, value } => {
                self.store_u64(dst, value);
                None
            }
            ScOp::StoreSync { bytes } => {
                self.store_sync(bytes);
                None
            }
            ScOp::BulkRead {
                local_off,
                src,
                bytes,
            } => {
                self.bulk_read(local_off, src, bytes);
                None
            }
            ScOp::BulkWrite {
                dst,
                local_off,
                bytes,
            } => {
                self.bulk_write(dst, local_off, bytes);
                None
            }
            ScOp::BulkGet {
                local_off,
                src,
                bytes,
            } => {
                self.bulk_get(local_off, src, bytes);
                None
            }
            ScOp::BulkPut {
                dst,
                local_off,
                bytes,
            } => {
                self.bulk_put(dst, local_off, bytes);
                None
            }
            ScOp::BulkReadStrided {
                local_off,
                src,
                count,
                elem_bytes,
                stride_bytes,
            } => {
                self.bulk_read_strided(local_off, src, count, elem_bytes, stride_bytes);
                None
            }
            ScOp::BulkWriteStrided {
                dst,
                local_off,
                count,
                elem_bytes,
                stride_bytes,
            } => {
                self.bulk_write_strided(dst, local_off, count, elem_bytes, stride_bytes);
                None
            }
            ScOp::AmAdd {
                target_pe,
                off,
                delta,
            } => {
                self.am_deposit(target_pe as usize, AM_ADD_U64, [off, delta, 0, 0]);
                None
            }
            ScOp::AmPoll => Some(self.am_poll() as u64),
            ScOp::LockTryAcquire { word } => {
                Some(self.lock_try_acquire(GlobalLock::new(word)) as u64)
            }
            ScOp::LockRelease { word } => {
                self.lock_release(GlobalLock::new(word));
                None
            }
            ScOp::LockIsHeld { word } => Some(self.lock_is_held(GlobalLock::new(word)) as u64),
            ScOp::LockGuardedWrite { word, dst, value } => {
                let lock = GlobalLock::new(word);
                if self.lock_try_acquire(lock) {
                    self.write_u64(dst, value);
                    self.lock_release(lock);
                    Some(1)
                } else {
                    Some(0)
                }
            }
            ScOp::LockFreeIfHeld { word } => {
                let lock = GlobalLock::new(word);
                if self.lock_is_held(lock) {
                    self.lock_release(lock);
                    Some(1)
                } else {
                    Some(0)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::SplitC;
    use t3d_machine::MachineConfig;

    fn sc() -> SplitC {
        SplitC::new(MachineConfig::t3d(4))
    }

    #[test]
    fn rw_ops_match_direct_calls() {
        let mut s = sc();
        let a = s.alloc(64, 8);
        let gp = GlobalPtr::new(1, a);
        s.on(0, |ctx| {
            ctx.exec_op(&ScOp::WriteU64 {
                dst: gp,
                value: 0x1122_3344_5566_7788,
            });
            assert_eq!(
                ctx.exec_op(&ScOp::ReadU64 { src: gp }),
                Some(0x1122_3344_5566_7788)
            );
            assert_eq!(ctx.exec_op(&ScOp::ReadU32 { src: gp }), Some(0x5566_7788));
            assert_eq!(ctx.exec_op(&ScOp::ByteRead { src: gp }), Some(0x88));
            ctx.exec_op(&ScOp::WriteU32 {
                dst: gp.local_add(4),
                value: 0xAABB_CCDD,
            });
            ctx.exec_op(&ScOp::ByteWrite {
                dst: gp,
                value: 0x99,
            });
        });
        s.barrier();
        assert_eq!(s.machine().peek8(1, a), 0xAABB_CCDD_5566_7799);
    }

    #[test]
    fn split_phase_and_store_ops() {
        let mut s = sc();
        let a = s.alloc(64, 8);
        s.machine().poke8(2, a, 424242);
        s.on(0, |ctx| {
            ctx.exec_op(&ScOp::Get {
                local_off: a + 8,
                src: GlobalPtr::new(2, a),
            });
            ctx.exec_op(&ScOp::Put {
                dst: GlobalPtr::new(3, a),
                value: 5,
            });
            ctx.exec_op(&ScOp::Sync);
            ctx.exec_op(&ScOp::StoreU64 {
                dst: GlobalPtr::new(1, a),
                value: 6,
            });
        });
        s.barrier();
        s.on(1, |ctx| ctx.exec_op(&ScOp::StoreSync { bytes: 8 }));
        assert_eq!(s.machine().peek8(0, a + 8), 424242);
        assert_eq!(s.machine().peek8(3, a), 5);
        assert_eq!(s.machine().peek8(1, a), 6);
    }

    #[test]
    fn bulk_ops_move_data() {
        let mut s = sc();
        let a = s.alloc(256, 8);
        for w in 0..4 {
            s.machine().poke8(1, a + w * 8, 100 + w);
        }
        s.on(0, |ctx| {
            ctx.exec_op(&ScOp::BulkRead {
                local_off: a,
                src: GlobalPtr::new(1, a),
                bytes: 32,
            });
            ctx.exec_op(&ScOp::BulkWrite {
                dst: GlobalPtr::new(2, a),
                local_off: a,
                bytes: 32,
            });
            ctx.exec_op(&ScOp::BulkGet {
                local_off: a + 64,
                src: GlobalPtr::new(1, a),
                bytes: 16,
            });
            ctx.exec_op(&ScOp::BulkPut {
                dst: GlobalPtr::new(3, a),
                local_off: a,
                bytes: 16,
            });
            ctx.exec_op(&ScOp::Sync);
            ctx.exec_op(&ScOp::BulkReadStrided {
                local_off: a + 128,
                src: GlobalPtr::new(1, a),
                count: 2,
                elem_bytes: 8,
                stride_bytes: 16,
            });
            ctx.exec_op(&ScOp::BulkWriteStrided {
                dst: GlobalPtr::new(2, a + 64),
                local_off: a,
                count: 2,
                elem_bytes: 8,
                stride_bytes: 24,
            });
        });
        s.barrier();
        for w in 0..4 {
            assert_eq!(s.machine().peek8(0, a + w * 8), 100 + w);
            assert_eq!(s.machine().peek8(2, a + w * 8), 100 + w);
        }
        assert_eq!(s.machine().peek8(0, a + 64), 100);
        assert_eq!(s.machine().peek8(0, a + 72), 101);
        assert_eq!(s.machine().peek8(3, a), 100);
        assert_eq!(s.machine().peek8(3, a + 8), 101);
        assert_eq!(s.machine().peek8(0, a + 128), 100);
        assert_eq!(s.machine().peek8(0, a + 136), 102);
        assert_eq!(s.machine().peek8(2, a + 64), 100);
        assert_eq!(s.machine().peek8(2, a + 88), 101);
    }

    #[test]
    fn am_and_lock_ops() {
        let mut s = sc();
        let a = s.alloc(64, 8);
        let lock_word = GlobalPtr::new(0, a + 8);
        s.on(1, |ctx| {
            ctx.exec_op(&ScOp::AmAdd {
                target_pe: 0,
                off: a,
                delta: 9,
            });
        });
        s.on(0, |ctx| {
            assert_eq!(ctx.exec_op(&ScOp::AmPoll), Some(1));
            assert_eq!(ctx.exec_op(&ScOp::LockIsHeld { word: lock_word }), Some(0));
            assert_eq!(
                ctx.exec_op(&ScOp::LockTryAcquire { word: lock_word }),
                Some(1)
            );
            assert_eq!(ctx.exec_op(&ScOp::LockIsHeld { word: lock_word }), Some(1));
            ctx.exec_op(&ScOp::LockRelease { word: lock_word });
        });
        assert_eq!(s.machine().peek8(0, a), 9);
    }

    #[test]
    fn composite_lock_ops_are_conditional() {
        let mut s = sc();
        let a = s.alloc(64, 8);
        let word = GlobalPtr::new(1, a);
        let dst = GlobalPtr::new(2, a + 8);
        // Free lock: guarded write goes through and releases.
        let r = s.on(0, |ctx| {
            ctx.exec_op(&ScOp::LockGuardedWrite {
                word,
                dst,
                value: 77,
            })
        });
        assert_eq!(r, Some(1));
        assert_eq!(s.machine().peek8(2, a + 8), 77);
        // Held lock: guarded write is skipped wholesale.
        s.on(3, |ctx| {
            assert_eq!(ctx.exec_op(&ScOp::LockTryAcquire { word }), Some(1))
        });
        let r = s.on(0, |ctx| {
            ctx.exec_op(&ScOp::LockGuardedWrite {
                word,
                dst,
                value: 1,
            })
        });
        assert_eq!(r, Some(0));
        assert_eq!(s.machine().peek8(2, a + 8), 77, "busy path wrote nothing");
        // Conditional free: releases once, then is a no-op.
        assert_eq!(
            s.on(0, |ctx| ctx.exec_op(&ScOp::LockFreeIfHeld { word })),
            Some(1)
        );
        assert_eq!(
            s.on(0, |ctx| ctx.exec_op(&ScOp::LockFreeIfHeld { word })),
            Some(0)
        );
    }

    /// One op per variant, covering the whole surface (the fixture for
    /// the kind()/touched_addrs() exhaustiveness tests below).
    fn one_of_each() -> Vec<ScOp> {
        let gp = GlobalPtr::new(1, 0x100);
        vec![
            ScOp::Advance { cycles: 5 },
            ScOp::ReadU64 { src: gp },
            ScOp::WriteU64 { dst: gp, value: 1 },
            ScOp::ReadU32 { src: gp },
            ScOp::WriteU32 { dst: gp, value: 2 },
            ScOp::ByteRead { src: gp },
            ScOp::ByteWrite { dst: gp, value: 3 },
            ScOp::Get {
                local_off: 0x40,
                src: gp,
            },
            ScOp::Put { dst: gp, value: 4 },
            ScOp::Sync,
            ScOp::StoreU64 { dst: gp, value: 5 },
            ScOp::StoreSync { bytes: 8 },
            ScOp::BulkRead {
                local_off: 0x40,
                src: gp,
                bytes: 32,
            },
            ScOp::BulkWrite {
                dst: gp,
                local_off: 0x40,
                bytes: 32,
            },
            ScOp::BulkGet {
                local_off: 0x40,
                src: gp,
                bytes: 32,
            },
            ScOp::BulkPut {
                dst: gp,
                local_off: 0x40,
                bytes: 32,
            },
            ScOp::BulkReadStrided {
                local_off: 0x40,
                src: gp,
                count: 4,
                elem_bytes: 8,
                stride_bytes: 24,
            },
            ScOp::BulkWriteStrided {
                dst: gp,
                local_off: 0x40,
                count: 4,
                elem_bytes: 8,
                stride_bytes: 24,
            },
            ScOp::AmAdd {
                target_pe: 1,
                off: 0x100,
                delta: 6,
            },
            ScOp::AmPoll,
            ScOp::LockTryAcquire { word: gp },
            ScOp::LockRelease { word: gp },
            ScOp::LockIsHeld { word: gp },
            ScOp::LockGuardedWrite {
                word: gp,
                dst: GlobalPtr::new(2, 0x200),
                value: 7,
            },
            ScOp::LockFreeIfHeld { word: gp },
        ]
    }

    #[test]
    fn every_variant_has_a_distinct_kind_in_declaration_order() {
        let ops = one_of_each();
        assert_eq!(
            ops.len(),
            ScOpKind::ALL.len(),
            "fixture covers every variant"
        );
        for (op, &kind) in ops.iter().zip(ScOpKind::ALL.iter()) {
            assert_eq!(op.kind(), kind, "{op:?}");
        }
        let names: std::collections::HashSet<&str> =
            ScOpKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), ScOpKind::ALL.len(), "names are unique");
        for (op, &kind) in ops.iter().zip(ScOpKind::ALL.iter()) {
            assert!(
                format!("{op:?}").starts_with(kind.name()),
                "name {:?} matches the Debug form of {op:?}",
                kind.name()
            );
        }
    }

    #[test]
    fn every_variant_has_a_footprint() {
        let cfg = MachineConfig::t3d(4);
        for op in one_of_each() {
            let fp = op.touched_addrs(0, &cfg);
            assert!(!fp.oob, "in-bounds fixture op flagged oob: {op:?}");
            match op.kind() {
                // Pure control / synchronization: no data spans.
                ScOpKind::Advance
                | ScOpKind::Sync
                | ScOpKind::StoreSync
                | ScOpKind::AmPoll
                | ScOpKind::LockTryAcquire
                | ScOpKind::LockRelease
                | ScOpKind::LockIsHeld
                | ScOpKind::LockFreeIfHeld => {
                    assert!(fp.reads.is_empty() && fp.writes.is_empty(), "{op:?}");
                }
                ScOpKind::ReadU64 | ScOpKind::ReadU32 | ScOpKind::ByteRead => {
                    assert!(!fp.reads.is_empty() && fp.writes.is_empty(), "{op:?}");
                }
                ScOpKind::WriteU64
                | ScOpKind::WriteU32
                | ScOpKind::ByteWrite
                | ScOpKind::Put
                | ScOpKind::StoreU64
                | ScOpKind::LockGuardedWrite => {
                    assert!(fp.reads.is_empty() && !fp.writes.is_empty(), "{op:?}");
                }
                // Transfers and the AM add read one side, write the other.
                _ => {
                    assert!(!fp.reads.is_empty() && !fp.writes.is_empty(), "{op:?}");
                }
            }
        }
    }

    #[test]
    fn footprints_are_byte_accurate() {
        let cfg = MachineConfig::t3d(4);
        let gp = GlobalPtr::new(1, 0x100);
        let get = ScOp::Get {
            local_off: 0x40,
            src: gp,
        };
        let fp = get.touched_addrs(3, &cfg);
        assert_eq!(
            fp.reads,
            vec![AddrSpan {
                pe: 1,
                addr: 0x100,
                bytes: 8
            }]
        );
        assert_eq!(
            fp.writes,
            vec![AddrSpan {
                pe: 3,
                addr: 0x40,
                bytes: 8
            }],
            "landing is a write on the issuer"
        );
        // Strided spans cover the gaps (4 elems, stride 24, elem 8 → 80 B).
        let strided = ScOp::BulkReadStrided {
            local_off: 0x40,
            src: gp,
            count: 4,
            elem_bytes: 8,
            stride_bytes: 24,
        };
        let fp = strided.touched_addrs(0, &cfg);
        assert_eq!(fp.reads[0].bytes, 3 * 24 + 8);
        assert_eq!(fp.writes[0].bytes, 32, "landing is dense");
    }

    #[test]
    fn out_of_bounds_spans_are_flagged() {
        let cfg = MachineConfig::t3d(2);
        let mem = cfg.mem.mem_bytes as u64;
        let past_end = ScOp::ReadU64 {
            src: GlobalPtr::new(1, mem - 4),
        };
        assert!(
            past_end.touched_addrs(0, &cfg).oob,
            "read straddles the end"
        );
        let bad_pe = ScOp::WriteU64 {
            dst: GlobalPtr::new(7, 0x100),
            value: 0,
        };
        assert!(bad_pe.touched_addrs(0, &cfg).oob, "PE 7 of 2");
        let wrap = ScOp::BulkReadStrided {
            local_off: 0x40,
            src: GlobalPtr::new(1, 0x100),
            count: u64::MAX,
            elem_bytes: 8,
            stride_bytes: 8,
        };
        assert!(wrap.touched_addrs(0, &cfg).oob, "overflowing span is oob");
        let in_bounds = ScOp::ByteRead {
            src: GlobalPtr::new(1, mem - 1),
        };
        assert!(!in_bounds.touched_addrs(0, &cfg).oob, "last byte is fine");
    }

    #[test]
    fn advance_charges_time() {
        let mut s = sc();
        s.on(0, |ctx| {
            let t0 = ctx.clock();
            ctx.exec_op(&ScOp::Advance { cycles: 123 });
            assert_eq!(ctx.clock(), t0 + 123);
        });
    }
}
