//! Signaling stores (Section 7).
//!
//! The `:=` operator stores a value into a global location with
//! *extremely weak* completion semantics: the issuer is not told when it
//! completes, enabling one-way, heavily pipelined communication.
//! Completion is detected either globally (`allStoreSync` — see
//! [`crate::SplitC::all_store_sync`]) for bulk-synchronous programs, or
//! locally (`storeSync(n)`, [`ScCtx::store_sync`]) — the receiver waits
//! until `n` bytes have been stored into its region — for message-driven
//! programs.
//!
//! The T3D has no store that avoids acknowledgement, so a store is
//! "essentially a put" whose completion wait is simply deferred; the
//! data-counting receiver side is built on the arrival log the machine
//! keeps for incoming remote writes.

use crate::gptr::GlobalPtr;
use crate::op::ScOp;
use crate::runtime::ScCtx;
use t3d_shell::FuncCode;
use t3dsan::{SanOp, WriteKind, NO_REG};

impl ScCtx<'_> {
    /// Signaling store of a 64-bit word (`*gp := value`). One-way: no
    /// completion wait here.
    ///
    /// # Example
    ///
    /// ```
    /// use splitc::{GlobalPtr, SplitC};
    /// use t3d_machine::MachineConfig;
    ///
    /// let mut sc = SplitC::new(MachineConfig::t3d(4));
    /// let cell = sc.alloc(8, 8);
    /// sc.run_phase(|ctx| {
    ///     let right = (ctx.pe() + 1) % ctx.nodes();
    ///     ctx.store_u64(GlobalPtr::new(right as u32, cell), 9);
    /// });
    /// sc.all_store_sync(); // bulk-synchronous completion
    /// assert_eq!(sc.machine().peek8(2, cell), 9);
    /// ```
    pub fn store_u64(&mut self, gp: GlobalPtr, value: u64) {
        self.rec(ScOp::StoreU64 { dst: gp, value });
        self.rt.stats.stores += 1;
        if gp.pe() as usize == self.pe {
            self.m.st8(self.pe, gp.addr(), value);
            self.m.advance(self.pe, self.cfg.store_check_cy);
            self.san_emit(
                SanOp::Write {
                    target: gp.pe(),
                    addr: gp.addr(),
                    len: 8,
                    kind: WriteKind::Store,
                    reg: NO_REG,
                },
                "store_u64",
            );
            return;
        }
        let idx = self
            .rt
            .annex
            .ensure(self.m, self.pe, gp.pe(), FuncCode::Uncached);
        let va = self.m.va(idx, gp.addr());
        self.m.st8(self.pe, va, value);
        self.m.advance(self.pe, self.cfg.store_check_cy);
        self.san_emit(
            SanOp::Write {
                target: gp.pe(),
                addr: gp.addr(),
                len: 8,
                kind: WriteKind::Store,
                reg: idx as u32,
            },
            "store_u64",
        );
    }

    /// Signaling store of a double.
    pub fn store_f64(&mut self, gp: GlobalPtr, value: f64) {
        self.store_u64(gp, value.to_bits());
    }

    /// `storeSync(bytes)`: returns once `bytes` further bytes (beyond
    /// any previously awaited) have been stored into this node's region
    /// of the address space. Supports message-driven execution.
    ///
    /// # Panics
    ///
    /// Panics if the data can never arrive (the senders have already
    /// executed and stored less than requested) — a deadlock in the
    /// program being simulated.
    pub fn store_sync(&mut self, bytes: u64) {
        self.rec(ScOp::StoreSync { bytes });
        let target = self.rt.store_watermark + bytes;
        let t = self.m.arrival_time_of(self.pe, target).unwrap_or_else(|| {
            panic!(
                "storeSync deadlock on PE {}: waiting for {} bytes, fewer ever stored",
                self.pe, target
            )
        });
        self.rt.store_watermark = target;
        let now = self.m.clock(self.pe);
        let wait = t.saturating_sub(now);
        self.m.advance(self.pe, wait + self.cfg.store_sync_check_cy);
        self.san_emit(SanOp::StoreSyncWait, "store_sync");
    }

    /// Bytes of store data that have arrived but not yet been awaited.
    pub fn store_bytes_pending(&self) -> u64 {
        let now = self.m.clock(self.pe);
        self.m
            .node(self.pe)
            .bytes_arrived_by(now)
            .saturating_sub(self.rt.store_watermark)
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::SplitC;
    use crate::GlobalPtr;
    use t3d_machine::MachineConfig;

    fn sc() -> SplitC {
        SplitC::new(MachineConfig::t3d(4))
    }

    #[test]
    fn stores_complete_by_all_store_sync() {
        let mut s = sc();
        let buf = s.alloc(4 * 8, 8);
        s.run_phase(|ctx| {
            let right = (ctx.pe() + 1) % ctx.nodes();
            let gp = GlobalPtr::new(right as u32, buf + ctx.pe() as u64 * 8);
            ctx.store_u64(gp, 500 + ctx.pe() as u64);
        });
        s.all_store_sync();
        s.run_phase(|ctx| {
            let left = (ctx.pe() + ctx.nodes() - 1) % ctx.nodes();
            let mine = GlobalPtr::new(ctx.pe() as u32, buf + left as u64 * 8);
            assert_eq!(ctx.read_u64(mine), 500 + left as u64);
        });
    }

    #[test]
    fn store_is_cheaper_than_blocking_write() {
        let mut s = sc();
        let buf = s.alloc(256 * 64, 8);
        let store_avg = s.on(0, |ctx| {
            ctx.store_u64(GlobalPtr::new(1, buf), 0); // warm
            let t0 = ctx.clock();
            for i in 1..=64u64 {
                ctx.store_u64(GlobalPtr::new(1, buf + i * 64), i);
            }
            (ctx.clock() - t0) as f64 / 64.0
        });
        let write_avg = s.on(2, |ctx| {
            ctx.write_u64(GlobalPtr::new(3, buf), 0); // warm
            let t0 = ctx.clock();
            for i in 1..=64u64 {
                ctx.write_u64(GlobalPtr::new(3, buf + i * 64), i);
            }
            (ctx.clock() - t0) as f64 / 64.0
        });
        assert!(
            store_avg * 2.0 < write_avg,
            "pipelined stores ({store_avg:.0} cy) should be far cheaper than \
             blocking writes ({write_avg:.0} cy)"
        );
    }

    #[test]
    fn store_sync_waits_for_the_counted_bytes() {
        let mut s = sc();
        let buf = s.alloc(64 * 8, 8);
        // PE 0 stores 4 words to PE 1.
        s.on(0, |ctx| {
            for i in 0..4u64 {
                ctx.store_u64(GlobalPtr::new(1, buf + i * 8), i);
            }
            // Flush them out so the arrivals get logged.
            ctx.machine().memory_barrier(0);
        });
        s.on(1, |ctx| {
            ctx.store_sync(32);
            assert!(ctx.clock() > 0, "waiting advanced the clock");
        });
    }

    #[test]
    #[should_panic(expected = "storeSync deadlock")]
    fn store_sync_detects_deadlock() {
        let mut s = sc();
        s.on(1, |ctx| ctx.store_sync(8));
    }

    #[test]
    fn successive_store_syncs_count_fresh_bytes() {
        let mut s = sc();
        let buf = s.alloc(64 * 8, 8);
        s.on(0, |ctx| {
            for i in 0..4u64 {
                ctx.store_u64(GlobalPtr::new(1, buf + i * 8), i);
            }
            ctx.machine().memory_barrier(0);
        });
        s.on(1, |ctx| {
            ctx.store_sync(16);
            ctx.store_sync(16);
            assert_eq!(ctx.store_bytes_pending(), 0);
        });
    }
}
