//! The Split-C runtime proper: per-node state, the SPMD driver, the
//! symmetric heap and the global barrier.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::annex::AnnexState;
use crate::config::SplitcConfig;
use crate::op::ScOp;
use crate::record::{RecEvent, RecLog};
use t3d_machine::{Machine, MachineConfig, MachineOps, PhaseDriver};
use t3dsan::{Report, SanEvent, SanLog, SanOp, SanitizeMode, Sanitizer};

/// An Active-Message-equivalent handler: runs at the *receiving* node
/// against its machine backend (the whole machine in direct mode, the
/// node's own shard in a sharded phase). Arguments are the four payload
/// words.
pub type AmHandler = fn(&mut dyn MachineOps, usize, [u64; 4]);

/// Reserved handler id: write one byte (`args = [offset, value, 0, 0]`).
/// This is the paper's correct byte-write (Section 4.5 / 7.4).
pub const AM_BYTE_WRITE: u64 = 0;
/// Reserved handler id: add to a 64-bit word (`args = [offset, delta]`).
pub const AM_ADD_U64: u64 = 1;
/// Reserved handler id: write a 32-bit word (`args = [offset, value]`) —
/// the same partial-word repair as byte writes (Section 4.5), since the
/// Alpha has no sub-64-bit stores either way.
pub const AM_WRITE_U32: u64 = 2;
/// First handler id available to applications.
pub const AM_USER_BASE: u64 = 8;

/// Bytes per AM-equivalent queue slot (seq, handler, four args). Every
/// deposit moves this many bytes of remote-write traffic to the target,
/// which the static analyzer counts toward the `storeSync` watermark.
pub const AM_SLOT_BYTES: u64 = 48;

/// Per-node runtime state.
#[derive(Debug, Clone)]
pub struct NodeRt {
    /// Annex register management.
    pub annex: AnnexState,
    /// Target local addresses of outstanding gets, in issue order — the
    /// runtime table of Section 5.4.
    pub pending_gets: Vec<u64>,
    /// Bytes of arrived store data already consumed by `store_sync`.
    pub store_watermark: u64,
    /// Completion times of outstanding non-blocking BLT transfers.
    pub pending_blts: Vec<u64>,
    /// Messages consumed from this node's AM-equivalent queue.
    pub am_consumed: u64,
    /// Operation counters (instrumentation).
    pub stats: RtStats,
    /// Sanitizer event log (empty and free when the sanitizer is off).
    pub(crate) san: SanLog,
    /// Recorded op stream (empty and free when recording is off).
    pub(crate) rec: RecLog,
}

/// Operation counters for one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RtStats {
    /// Blocking reads issued.
    pub reads: u64,
    /// Blocking writes issued.
    pub writes: u64,
    /// Gets issued.
    pub gets: u64,
    /// Puts issued.
    pub puts: u64,
    /// Signaling stores issued.
    pub stores: u64,
    /// Bulk operations issued.
    pub bulk_ops: u64,
    /// AM-equivalent deposits issued.
    pub am_deposits: u64,
    /// Lock operations issued (acquire attempts and releases).
    pub lock_ops: u64,
}

impl RtStats {
    /// Total runtime primitives issued, across every counter. Useful for
    /// auditing that no primitive escapes instrumentation: a program that
    /// issues a known number of operations must see exactly that total.
    pub fn total(&self) -> u64 {
        self.reads
            + self.writes
            + self.gets
            + self.puts
            + self.stores
            + self.bulk_ops
            + self.am_deposits
            + self.lock_ops
    }
}

impl NodeRt {
    fn new(cfg: &SplitcConfig, annex_registers: usize) -> Self {
        NodeRt {
            annex: AnnexState::new(cfg.annex_policy, annex_registers),
            pending_gets: Vec::new(),
            store_watermark: 0,
            pending_blts: Vec::new(),
            am_consumed: 0,
            stats: RtStats::default(),
            san: SanLog::new(cfg.sanitize.is_on()),
            rec: RecLog::default(),
        }
    }
}

/// The Split-C program environment: a machine plus runtime state, a
/// symmetric heap and the SPMD phase driver.
#[derive(Debug)]
pub struct SplitC {
    pub(crate) m: Machine,
    pub(crate) cfg: SplitcConfig,
    rts: Vec<NodeRt>,
    handlers: Vec<Option<AmHandler>>,
    alloc_next: u64,
    am_region: u64,
    san: Option<Sanitizer>,
}

impl SplitC {
    /// Builds a runtime over a freshly constructed machine with the
    /// default (paper) Split-C configuration.
    pub fn new(mcfg: MachineConfig) -> Self {
        Self::with_config(mcfg, SplitcConfig::t3d())
    }

    /// Builds a runtime with an explicit Split-C configuration. The
    /// `T3D_SAN` environment variable overrides `cfg.sanitize`
    /// (`1`/`collect`, `2`/`panic`, `0`/`off`).
    pub fn with_config(mcfg: MachineConfig, cfg: SplitcConfig) -> Self {
        let mut cfg = cfg;
        cfg.sanitize = SanitizeMode::effective(cfg.sanitize);
        let m = Machine::new(mcfg);
        let n = m.nodes();
        let annex_regs = mcfg.shell.annex_entries;
        let am_region = mcfg.mem.mem_bytes as u64 - cfg.am_slots * AM_SLOT_BYTES;
        let mut handlers: Vec<Option<AmHandler>> = vec![None; AM_USER_BASE as usize];
        handlers[AM_BYTE_WRITE as usize] = Some(|m, pe, args| {
            let mut word = [0u8; 1];
            word[0] = args[1] as u8;
            m.poke_mem(pe, args[0], &word);
        });
        handlers[AM_ADD_U64 as usize] = Some(|m, pe, args| {
            let v = m.peek8(pe, args[0]).wrapping_add(args[1]);
            m.poke8(pe, args[0], v);
        });
        handlers[AM_WRITE_U32 as usize] = Some(|m, pe, args| {
            m.poke_mem(pe, args[0], &(args[1] as u32).to_le_bytes());
        });
        let san = cfg
            .sanitize
            .is_on()
            .then(|| Sanitizer::with_line_bytes(n, cfg.sanitize, mcfg.mem.l1.line as u64));
        SplitC {
            rts: (0..n).map(|_| NodeRt::new(&cfg, annex_regs)).collect(),
            handlers,
            alloc_next: 0x100, // leave a null page
            am_region,
            cfg,
            m,
            san,
        }
    }

    /// The Split-C configuration in force.
    pub fn config(&self) -> &SplitcConfig {
        &self.cfg
    }

    /// The underlying machine.
    pub fn machine(&mut self) -> &mut Machine {
        &mut self.m
    }

    /// Immutable machine access.
    pub fn machine_ref(&self) -> &Machine {
        &self.m
    }

    /// Number of processors.
    pub fn nodes(&self) -> usize {
        self.m.nodes()
    }

    /// Base offset of the AM-equivalent queue region (instrumentation).
    pub fn am_region(&self) -> u64 {
        self.am_region
    }

    /// Allocates `bytes` at the same local offset on *every* node (the
    /// symmetric heap backing spread arrays and statics). Returns the
    /// offset.
    ///
    /// # Panics
    ///
    /// Panics if the heap would collide with the AM queue region, or if
    /// `align` is not a power of two.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.alloc_next + align - 1) & !(align - 1);
        assert!(
            base + bytes <= self.am_region,
            "symmetric heap exhausted: {} + {} > {}",
            base,
            bytes,
            self.am_region
        );
        self.alloc_next = base + bytes;
        base
    }

    /// Registers an application AM-equivalent handler under `id`
    /// (≥ [`AM_USER_BASE`]). Returns the id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is reserved or already taken.
    pub fn register_handler(&mut self, id: u64, handler: AmHandler) -> u64 {
        assert!(
            id >= AM_USER_BASE,
            "handler ids below {AM_USER_BASE} are reserved"
        );
        let idx = id as usize;
        if self.handlers.len() <= idx {
            self.handlers.resize(idx + 1, None);
        }
        assert!(
            self.handlers[idx].is_none(),
            "handler {id} already registered"
        );
        self.handlers[idx] = Some(handler);
        id
    }

    /// Runs one SPMD phase: the closure executes once per node in node
    /// order, against a [`ScCtx`].
    pub fn run_phase<F: FnMut(&mut ScCtx)>(&mut self, mut f: F) {
        for pe in 0..self.m.nodes() {
            self.on(pe, |ctx| f(ctx));
        }
        for rt in &mut self.rts {
            rt.rec.push(RecEvent::PhaseEnd);
        }
    }

    /// Runs one SPMD phase through the sharded engine, with the driver
    /// chosen by the `T3D_PAR` environment variable (see
    /// [`PhaseDriver::from_env`]): nodes execute concurrently on a
    /// thread pool, bit-identical to the sequential shard order.
    ///
    /// Unlike [`SplitC::run_phase`], the closure is `Fn + Sync` and may
    /// not use [`ScCtx::machine`] — only the per-node Split-C
    /// operations. See the `t3d_machine::phase` docs for the
    /// bulk-synchronous contract phase bodies must follow.
    pub fn par_phase(&mut self, f: impl Fn(&mut ScCtx) + Sync) {
        self.par_phase_with(PhaseDriver::from_env(), f);
    }

    /// [`SplitC::par_phase`] with an explicit driver (e.g.
    /// [`PhaseDriver::Seq`] as the determinism oracle).
    /// Panics from phase bodies (and the sanitizer's panic mode)
    /// propagate only after the per-node runtime state is restored: the
    /// runtime stays in a defined state, usable for further phases.
    pub fn par_phase_with(&mut self, driver: PhaseDriver, f: impl Fn(&mut ScCtx) + Sync) {
        let mut rts = std::mem::take(&mut self.rts);
        let result = {
            let cfg = &self.cfg;
            let handlers = &self.handlers;
            let am_region = self.am_region;
            let m = &mut self.m;
            let rts = &mut rts;
            catch_unwind(AssertUnwindSafe(move || {
                m.sharded_phase_zip(driver, rts, |ops, pe, rt| {
                    let mut ctx = ScCtx {
                        m: ops,
                        rt,
                        cfg,
                        handlers,
                        am_region,
                        pe,
                    };
                    f(&mut ctx);
                });
            }))
        };
        self.rts = rts;
        for rt in &mut self.rts {
            rt.rec.push(RecEvent::PhaseEnd);
        }
        self.drain_san_logs();
        match result {
            Ok(()) => self.san_check(),
            Err(p) => resume_unwind(p),
        }
    }

    /// Runs a closure as node `pe` (single-node probes and setup).
    ///
    /// Panics from the closure (and the sanitizer's panic mode)
    /// propagate only after the node's runtime state is restored — the
    /// runtime stays usable, with every counter drained to where the
    /// program actually got.
    pub fn on<R>(&mut self, pe: usize, f: impl FnOnce(&mut ScCtx) -> R) -> R {
        let mut rt = std::mem::replace(
            &mut self.rts[pe],
            NodeRt::new(&self.cfg, self.m.config().shell.annex_entries),
        );
        let result = {
            let mut ctx = ScCtx {
                m: &mut self.m,
                rt: &mut rt,
                cfg: &self.cfg,
                handlers: &self.handlers,
                am_region: self.am_region,
                pe,
            };
            catch_unwind(AssertUnwindSafe(move || f(&mut ctx)))
        };
        self.rts[pe] = rt;
        self.drain_san_logs();
        match result {
            Ok(r) => {
                self.san_check();
                r
            }
            Err(p) => resume_unwind(p),
        }
    }

    /// Enables or disables op recording on every node (see the
    /// [`crate::record`] module docs). Enabling does not clear an
    /// existing log; use [`SplitC::take_op_log`] to drain it.
    pub fn record_ops(&mut self, on: bool) {
        for rt in &mut self.rts {
            rt.rec.enabled = on;
        }
    }

    /// Drains and returns every node's recorded stream (index = PE).
    pub fn take_op_log(&mut self) -> Vec<Vec<RecEvent>> {
        self.rts
            .iter_mut()
            .map(|rt| std::mem::take(&mut rt.rec.events))
            .collect()
    }

    /// Global barrier: drains every node's AM-equivalent queue (so
    /// deposited handlers run), fences all writes and aligns all clocks.
    pub fn barrier(&mut self) {
        for rt in &mut self.rts {
            rt.rec.push(RecEvent::Barrier);
        }
        for pe in 0..self.m.nodes() {
            self.on(pe, |ctx| ctx.am_poll());
        }
        self.m.barrier_all();
        if let Some(san) = &mut self.san {
            san.global_barrier();
            san.check();
        }
    }

    /// `all_store_sync`: returns when all stores issued before it have
    /// completed, machine-wide (Section 7.1) — a fence plus
    /// acknowledgement wait on every node, then the hardware barrier.
    pub fn all_store_sync(&mut self) {
        for rt in &mut self.rts {
            rt.rec.push(RecEvent::AllStoreSync);
        }
        for pe in 0..self.m.nodes() {
            self.m.memory_barrier(pe);
            self.m.wait_write_acks(pe);
            self.m.advance(pe, self.cfg.store_sync_check_cy);
        }
        self.barrier();
    }

    /// Drains every node's sanitizer event log into the analyzer,
    /// merged by `(time, pe, seq)` — the same total order the sharded
    /// phase engine imposes on its effect log, so sequential and
    /// parallel drivers analyze an identical stream.
    fn drain_san_logs(&mut self) {
        if let Some(san) = &mut self.san {
            let logs: Vec<Vec<SanEvent>> = self.rts.iter_mut().map(|rt| rt.san.drain()).collect();
            san.ingest_logs(logs);
        }
    }

    /// In panic mode, aborts on findings not yet reported (the runtime
    /// is in a defined state by the time this runs).
    fn san_check(&mut self) {
        if let Some(san) = &mut self.san {
            san.check();
        }
    }

    /// The hazard analyzer's findings so far, or `None` when the
    /// sanitizer is off. Call after draining phases (findings are
    /// ingested at `on`/phase exits and barriers).
    pub fn san_report(&self) -> Option<Report> {
        self.san.as_ref().map(|s| s.report())
    }

    /// The analyzer itself (`None` when off).
    pub fn sanitizer(&self) -> Option<&Sanitizer> {
        self.san.as_ref()
    }

    /// A node's operation counters.
    pub fn stats(&self, pe: usize) -> RtStats {
        self.rts[pe].stats
    }

    /// The maximum clock across nodes (elapsed virtual time).
    pub fn max_clock(&self) -> u64 {
        (0..self.m.nodes())
            .map(|pe| self.m.clock(pe))
            .max()
            .unwrap_or(0)
    }
}

/// The per-node Split-C execution context: what a compiled Split-C
/// function body sees.
pub struct ScCtx<'a> {
    pub(crate) m: &'a mut dyn MachineOps,
    pub(crate) rt: &'a mut NodeRt,
    pub(crate) cfg: &'a SplitcConfig,
    pub(crate) handlers: &'a [Option<AmHandler>],
    pub(crate) am_region: u64,
    pub(crate) pe: usize,
}

impl ScCtx<'_> {
    /// This node's id (`MYPROC` in Split-C).
    pub fn pe(&self) -> usize {
        self.pe
    }

    /// Number of processors (`PROCS` in Split-C).
    pub fn nodes(&self) -> usize {
        self.m.nodes()
    }

    /// This node's virtual time in cycles.
    pub fn clock(&self) -> u64 {
        self.m.clock(self.pe)
    }

    /// This node's virtual time in nanoseconds.
    pub fn clock_ns(&self) -> f64 {
        self.m.clock(self.pe) as f64 * self.m.cycle_ns()
    }

    /// Charges local computation cycles.
    pub fn advance(&mut self, cycles: u64) {
        self.m.advance(self.pe, cycles);
    }

    /// The underlying machine (escape hatch for probes).
    ///
    /// # Panics
    ///
    /// Panics inside a sharded phase ([`SplitC::par_phase`]), where
    /// whole-machine access would break shard isolation; use the per-op
    /// methods instead.
    pub fn machine(&mut self) -> &mut Machine {
        self.m
            .as_machine()
            .expect("whole-machine access is not available inside a sharded phase")
    }

    /// The operation backend this context is bound to.
    pub fn ops(&mut self) -> &mut dyn MachineOps {
        self.m
    }

    /// The runtime state of this node (instrumentation).
    pub fn rt(&self) -> &NodeRt {
        self.rt
    }

    /// Records one sanitizer event stamped with this node's clock
    /// (free when the sanitizer is off; never touches the machine).
    pub(crate) fn san_emit(&mut self, op: SanOp, source: &'static str) {
        if self.rt.san.is_enabled() {
            let t = self.m.clock(self.pe);
            self.rt.san.push(self.pe as u32, t, op, source);
        }
    }

    /// Records one op on this node's stream (free when recording is
    /// off). Called at the entry of every leaf runtime primitive.
    #[inline]
    pub(crate) fn rec(&mut self, op: ScOp) {
        self.rt.rec.push(RecEvent::Op(op));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc() -> SplitC {
        SplitC::new(MachineConfig::t3d(4))
    }

    #[test]
    fn alloc_is_symmetric_and_aligned() {
        let mut s = sc();
        let a = s.alloc(100, 8);
        let b = s.alloc(8, 64);
        assert_eq!(a % 8, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 100);
    }

    #[test]
    #[should_panic(expected = "symmetric heap exhausted")]
    fn alloc_cannot_reach_am_region() {
        let mut s = sc();
        let huge = s.m.config().mem.mem_bytes as u64;
        s.alloc(huge, 8);
    }

    #[test]
    fn run_phase_visits_all_nodes_in_order() {
        let mut s = sc();
        let mut seen = Vec::new();
        s.run_phase(|ctx| seen.push(ctx.pe()));
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn on_returns_a_value() {
        let mut s = sc();
        let v = s.on(2, |ctx| ctx.pe() * 10);
        assert_eq!(v, 20);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_handler_ids_rejected() {
        let mut s = sc();
        s.register_handler(0, |_, _, _| {});
    }

    #[test]
    fn par_phase_matches_its_sequential_oracle() {
        use crate::gptr::GlobalPtr;
        let run = |driver: PhaseDriver| {
            let mut s = sc();
            let buf = s.alloc(64, 8);
            let mut out = Vec::new();
            s.par_phase_with(driver, |ctx| {
                let right = ((ctx.pe() + 1) % ctx.nodes()) as u32;
                ctx.put(GlobalPtr::new(right, buf), 500 + ctx.pe() as u64);
                ctx.sync();
            });
            s.barrier();
            s.run_phase(|ctx| {
                let left = (ctx.pe() + ctx.nodes() - 1) % ctx.nodes();
                let pe = ctx.pe();
                assert_eq!(ctx.machine().peek8(pe, buf), 500 + left as u64);
            });
            for pe in 0..4 {
                out.push(s.machine_ref().clock(pe));
            }
            out
        };
        assert_eq!(run(PhaseDriver::Seq), run(PhaseDriver::Par(4)));
    }

    #[test]
    #[should_panic(expected = "not available inside a sharded phase")]
    fn whole_machine_access_is_denied_in_a_sharded_phase() {
        let mut s = sc();
        s.par_phase_with(PhaseDriver::Seq, |ctx| {
            if ctx.pe() == 0 {
                let _ = ctx.machine();
            }
        });
    }

    #[test]
    fn barrier_aligns_clocks() {
        let mut s = sc();
        s.run_phase(|ctx| ctx.advance(ctx.pe() as u64 * 100));
        s.barrier();
        let clocks: Vec<u64> = (0..4).map(|pe| s.machine_ref().clock(pe)).collect();
        assert!(clocks.windows(2).all(|w| w[0] == w[1]));
    }
}
