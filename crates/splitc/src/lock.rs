//! Global locks built on the shell's atomic swap.
//!
//! The paper lists the atomic swap among the shell's synchronization
//! provisions (Section 1.2). The classic use is a test-and-set lock on
//! a word in the global address space: swap in a 1; the lock was ours
//! if the old value was 0.
//!
//! The deterministic phase-sequential driver cannot *spin* on a lock
//! held by a node that runs later in the same phase, so the API is
//! non-blocking: [`ScCtx::lock_try_acquire`] either takes the lock or
//! reports it busy, and programs structure retries across phases.

use crate::gptr::GlobalPtr;
use crate::op::ScOp;
use crate::runtime::ScCtx;
use t3d_shell::FuncCode;
use t3dsan::SanOp;

/// A lock word in the global address space (0 = free, 1 = held).
///
/// # Example
///
/// ```
/// use splitc::{GlobalLock, GlobalPtr, SplitC};
/// use t3d_machine::MachineConfig;
///
/// let mut sc = SplitC::new(MachineConfig::t3d(4));
/// let lock = GlobalLock::new(GlobalPtr::new(0, sc.alloc(8, 8)));
/// sc.on(1, |ctx| {
///     assert!(ctx.lock_try_acquire(lock));
///     // ... critical section ...
///     ctx.lock_release(lock);
/// });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalLock {
    word: GlobalPtr,
}

impl GlobalLock {
    /// Wraps an (allocated, zero-initialized) global word as a lock.
    pub fn new(word: GlobalPtr) -> Self {
        GlobalLock { word }
    }

    /// The lock word's location.
    pub fn word(&self) -> GlobalPtr {
        self.word
    }
}

impl ScCtx<'_> {
    /// Attempts to take `lock` with one atomic swap. Returns `true` on
    /// acquisition.
    pub fn lock_try_acquire(&mut self, lock: GlobalLock) -> bool {
        self.rec(ScOp::LockTryAcquire { word: lock.word() });
        self.rt.stats.lock_ops += 1;
        let gp = lock.word();
        let va = if gp.pe() as usize == self.pe {
            gp.addr()
        } else {
            let idx = self
                .rt
                .annex
                .ensure(self.m, self.pe, gp.pe(), FuncCode::Swap);
            self.m.va(idx, gp.addr())
        };
        self.m.swap_load(self.pe, 1);
        let acquired = self.m.atomic_swap(self.pe, va) == 0;
        if acquired {
            self.san_emit(
                SanOp::LockAcquire {
                    target: gp.pe(),
                    addr: gp.addr(),
                },
                "lock_try_acquire",
            );
        }
        acquired
    }

    /// Releases `lock`.
    ///
    /// # Panics
    ///
    /// Panics if the lock was not held (releasing a free lock is a
    /// program bug this simulator surfaces immediately).
    pub fn lock_release(&mut self, lock: GlobalLock) {
        self.rec(ScOp::LockRelease { word: lock.word() });
        self.rt.stats.lock_ops += 1;
        let gp = lock.word();
        let va = if gp.pe() as usize == self.pe {
            gp.addr()
        } else {
            let idx = self
                .rt
                .annex
                .ensure(self.m, self.pe, gp.pe(), FuncCode::Swap);
            self.m.va(idx, gp.addr())
        };
        self.m.swap_load(self.pe, 0);
        let old = self.m.atomic_swap(self.pe, va);
        assert_eq!(old, 1, "released a lock that was not held");
        self.san_emit(
            SanOp::LockRelease {
                target: gp.pe(),
                addr: gp.addr(),
            },
            "lock_release",
        );
    }

    /// Whether `lock` is currently held (functional peek; no timing).
    pub fn lock_is_held(&self, lock: GlobalLock) -> bool {
        let gp = lock.word();
        let mut b = [0u8; 8];
        self.m
            .node(gp.pe() as usize)
            .port
            .peek_mem(gp.addr(), &mut b);
        u64::from_le_bytes(b) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::SplitC;
    use t3d_machine::MachineConfig;

    fn setup() -> (SplitC, GlobalLock) {
        let mut sc = SplitC::new(MachineConfig::t3d(4));
        let off = sc.alloc(8, 8);
        (sc, GlobalLock::new(GlobalPtr::new(2, off)))
    }

    #[test]
    fn acquire_release_cycle() {
        let (mut sc, lock) = setup();
        sc.on(0, |ctx| {
            assert!(ctx.lock_try_acquire(lock));
            assert!(ctx.lock_is_held(lock));
            ctx.lock_release(lock);
            assert!(!ctx.lock_is_held(lock));
        });
    }

    #[test]
    fn contention_is_mutually_exclusive() {
        let (mut sc, lock) = setup();
        assert!(sc.on(0, |ctx| ctx.lock_try_acquire(lock)));
        assert!(
            !sc.on(1, |ctx| ctx.lock_try_acquire(lock)),
            "second taker fails"
        );
        assert!(!sc.on(3, |ctx| ctx.lock_try_acquire(lock)));
        sc.on(0, |ctx| ctx.lock_release(lock));
        assert!(sc.on(1, |ctx| ctx.lock_try_acquire(lock)), "free again");
    }

    #[test]
    fn acquisition_costs_an_atomic_roundtrip() {
        let (mut sc, lock) = setup();
        let cost = sc.on(0, |ctx| {
            let t0 = ctx.clock();
            ctx.lock_try_acquire(lock);
            ctx.clock() - t0
        });
        assert!(
            (100..300).contains(&cost),
            "lock acquire cost {cost} cy (~1 us)"
        );
    }

    #[test]
    #[should_panic(expected = "not held")]
    fn double_release_panics() {
        let (mut sc, lock) = setup();
        sc.on(0, |ctx| {
            ctx.lock_try_acquire(lock);
            ctx.lock_release(lock);
            ctx.lock_release(lock);
        });
    }

    #[test]
    fn critical_section_across_phases() {
        // A counter protected by the lock: each node increments once,
        // retrying in later phases if the lock was busy.
        let mut sc = SplitC::new(MachineConfig::t3d(4));
        let lock_off = sc.alloc(8, 8);
        let counter = sc.alloc(8, 8);
        let lock = GlobalLock::new(GlobalPtr::new(0, lock_off));
        let mut done = [false; 4];
        for _round in 0..8 {
            for (pe, done_flag) in done.iter_mut().enumerate() {
                if *done_flag {
                    continue;
                }
                *done_flag = sc.on(pe, |ctx| {
                    if !ctx.lock_try_acquire(lock) {
                        return false;
                    }
                    let v = ctx.read_u64(GlobalPtr::new(0, counter));
                    ctx.write_u64(GlobalPtr::new(0, counter), v + 1);
                    ctx.lock_release(lock);
                    true
                });
            }
            sc.barrier();
        }
        assert!(done.iter().all(|&d| d));
        assert_eq!(sc.machine().peek8(0, counter), 4);
    }
}
