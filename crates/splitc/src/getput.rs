//! Split-phase `get` and `put` (Section 5).
//!
//! `get` initiates a non-blocking fetch of a remote word into a local
//! address; `put` initiates a non-blocking write; `sync` waits for all
//! outstanding split-phase operations. On the T3D:
//!
//! * `get` maps onto the binding prefetch. Because the hardware queue is
//!   a FIFO with no addresses, the runtime keeps a table of target local
//!   addresses in issue order (10 cycles per entry) and drains it —
//!   fence, pop, 3-cycle local store — at `sync` or when 16 are
//!   outstanding.
//! * `put` is the non-blocking acknowledged store plus "a few additional
//!   checks"; `sync` fences and waits on the status bit. Average cost in
//!   a pipelined loop: ~45 cycles (300 ns), Figure 7.

use crate::gptr::GlobalPtr;
use crate::op::ScOp;
use crate::runtime::ScCtx;
use t3d_shell::FuncCode;
use t3dsan::{SanOp, WriteKind, NO_REG};

impl ScCtx<'_> {
    /// Split-phase read: initiates a fetch of `*gp` into local offset
    /// `local_off`. The local word is undefined until [`ScCtx::sync`].
    ///
    /// # Example
    ///
    /// ```
    /// use splitc::{GlobalPtr, SplitC};
    /// use t3d_machine::MachineConfig;
    ///
    /// let mut sc = SplitC::new(MachineConfig::t3d(2));
    /// let src = sc.alloc(8, 8);
    /// let dst = sc.alloc(8, 8);
    /// sc.machine().poke8(1, src, 42);
    /// sc.on(0, |ctx| {
    ///     ctx.get(dst, GlobalPtr::new(1, src));
    ///     ctx.sync(); // the prefetch completes here
    ///     assert_eq!(ctx.machine().peek8(0, dst), 42);
    /// });
    /// ```
    pub fn get(&mut self, local_off: u64, gp: GlobalPtr) {
        self.rec(ScOp::Get { local_off, src: gp });
        self.rt.stats.gets += 1;
        if gp.pe() as usize == self.pe {
            // Local get degenerates to a copy.
            let v = self.m.ld8(self.pe, gp.addr());
            self.m.st8(self.pe, local_off, v);
            self.san_emit(
                SanOp::Read {
                    target: gp.pe(),
                    addr: gp.addr(),
                    len: 8,
                    reg: NO_REG,
                },
                "get",
            );
            return;
        }
        // The hardware queue holds 16; drain when full, as the runtime
        // described in Section 5.4 does.
        if self.rt.pending_gets.len() == self.m.node(self.pe).prefetch.depth() {
            self.drain_gets(true);
            // The auto-drain fences and pops but does not ack-wait: gets
            // complete, puts may still be in flight.
            self.san_emit(SanOp::GetDrain, "get");
        }
        let idx = self
            .rt
            .annex
            .ensure(self.m, self.pe, gp.pe(), FuncCode::Uncached);
        let va = self.m.va(idx, gp.addr());
        let issued = self.m.fetch(self.pe, va);
        debug_assert!(issued, "queue was drained above");
        self.m.advance(self.pe, self.cfg.get_table_cy);
        self.rt.pending_gets.push(local_off);
        self.san_emit(
            SanOp::GetIssue {
                target: gp.pe(),
                addr: gp.addr(),
                len: 8,
                local_off,
                reg: idx as u32,
            },
            "get",
        );
    }

    /// Split-phase write: initiates a non-blocking store of `value` to
    /// `*gp`. Completion is awaited by [`ScCtx::sync`].
    ///
    /// # Example
    ///
    /// ```
    /// use splitc::{GlobalPtr, SplitC};
    /// use t3d_machine::MachineConfig;
    ///
    /// let mut sc = SplitC::new(MachineConfig::t3d(2));
    /// let cell = sc.alloc(128, 8);
    /// sc.on(0, |ctx| {
    ///     for i in 0..16 {
    ///         ctx.put(GlobalPtr::new(1, cell + i * 8), i); // pipelined
    ///     }
    ///     ctx.sync(); // one wait for all sixteen
    /// });
    /// assert_eq!(sc.machine().peek8(1, cell + 40), 5);
    /// ```
    pub fn put(&mut self, gp: GlobalPtr, value: u64) {
        self.rec(ScOp::Put { dst: gp, value });
        self.rt.stats.puts += 1;
        if gp.pe() as usize == self.pe {
            self.m.st8(self.pe, gp.addr(), value);
            self.m.advance(self.pe, self.cfg.put_check_cy);
            self.san_emit(
                SanOp::Write {
                    target: gp.pe(),
                    addr: gp.addr(),
                    len: 8,
                    kind: WriteKind::Put,
                    reg: NO_REG,
                },
                "put",
            );
            return;
        }
        let idx = self
            .rt
            .annex
            .ensure(self.m, self.pe, gp.pe(), FuncCode::Uncached);
        let va = self.m.va(idx, gp.addr());
        self.m.st8(self.pe, va, value);
        self.m.advance(self.pe, self.cfg.put_check_cy);
        self.san_emit(
            SanOp::Write {
                target: gp.pe(),
                addr: gp.addr(),
                len: 8,
                kind: WriteKind::Put,
                reg: idx as u32,
            },
            "put",
        );
    }

    /// Split-phase write of a double.
    pub fn put_f64(&mut self, gp: GlobalPtr, value: f64) {
        self.put(gp, value.to_bits());
    }

    /// Waits for every outstanding `get`, `put` and non-blocking bulk
    /// operation issued by this node.
    pub fn sync(&mut self) {
        self.rec(ScOp::Sync);
        self.drain_gets(false);
        // The fence performed in drain (or here, if no gets) pushes puts
        // out of the write buffer; then the status bit covers them.
        self.m.memory_barrier(self.pe);
        self.m.wait_write_acks(self.pe);
        // Outstanding non-blocking BLTs (bulk_get/bulk_put) also complete.
        let pending = std::mem::take(&mut self.rt.pending_blts);
        for completion in pending {
            let now = self.m.clock(self.pe);
            if completion > now {
                self.m.advance(self.pe, completion - now);
            }
        }
        self.san_emit(SanOp::GetSync, "sync");
    }

    /// Fences and drains the get table: pops each prefetch in order and
    /// stores it to its recorded local address.
    pub(crate) fn drain_gets(&mut self, _auto: bool) {
        if self.rt.pending_gets.is_empty() {
            return;
        }
        self.m.memory_barrier(self.pe);
        let pending = std::mem::take(&mut self.rt.pending_gets);
        for local_off in pending {
            let v = self
                .m
                .pop_prefetch(self.pe)
                .expect("gets were fenced, the queue must pop");
            // The 3-cycle local store that completes the get (the store
            // issue cost of the simulated write).
            self.m.st8(self.pe, local_off, v);
        }
    }

    /// Number of gets outstanding (instrumentation).
    pub fn gets_outstanding(&self) -> usize {
        self.rt.pending_gets.len()
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::SplitC;
    use crate::GlobalPtr;
    use t3d_machine::MachineConfig;

    fn sc() -> SplitC {
        SplitC::new(MachineConfig::t3d(2))
    }

    #[test]
    fn get_sync_delivers_values() {
        let mut s = sc();
        let src = s.alloc(16 * 8, 8);
        let dst = s.alloc(16 * 8, 8);
        for i in 0..16u64 {
            s.machine().poke8(1, src + i * 8, 100 + i);
        }
        s.on(0, |ctx| {
            for i in 0..16u64 {
                ctx.get(dst + i * 8, GlobalPtr::new(1, src + i * 8));
            }
            ctx.sync();
            for i in 0..16u64 {
                assert_eq!(ctx.machine().peek8(0, dst + i * 8), 100 + i);
            }
        });
    }

    #[test]
    fn seventeenth_get_drains_automatically() {
        let mut s = sc();
        let src = s.alloc(32 * 8, 8);
        let dst = s.alloc(32 * 8, 8);
        s.on(0, |ctx| {
            for i in 0..17u64 {
                ctx.get(dst + i * 8, GlobalPtr::new(1, src + i * 8));
            }
            assert_eq!(ctx.gets_outstanding(), 1, "16 drained, 1 pending");
            ctx.sync();
            assert_eq!(ctx.gets_outstanding(), 0);
        });
    }

    #[test]
    fn pipelined_gets_beat_blocking_reads() {
        let mut s = sc();
        let src = s.alloc(16 * 8, 8);
        let dst = s.alloc(16 * 8, 8);
        let get_cost = s.on(0, |ctx| {
            let t0 = ctx.clock();
            for i in 0..16u64 {
                ctx.get(dst + i * 8, GlobalPtr::new(1, src + i * 8));
            }
            ctx.sync();
            ctx.clock() - t0
        });
        let mut s2 = sc();
        let src2 = s2.alloc(16 * 8, 8);
        let read_cost = s2.on(0, |ctx| {
            let t0 = ctx.clock();
            for i in 0..16u64 {
                let _ = ctx.read_u64(GlobalPtr::new(1, src2 + i * 8));
            }
            ctx.clock() - t0
        });
        assert!(
            get_cost < read_cost,
            "16 pipelined gets ({get_cost} cy) must beat 16 blocking reads ({read_cost} cy)"
        );
    }

    #[test]
    fn put_average_cost_is_about_45_cycles() {
        let mut s = sc();
        let dst = s.alloc(256 * 64, 8);
        let avg = s.on(0, |ctx| {
            // Warm up annex/TLB.
            ctx.put(GlobalPtr::new(1, dst), 0);
            let t0 = ctx.clock();
            let n = 128u64;
            for i in 1..=n {
                ctx.put(GlobalPtr::new(1, dst + i * 64), i);
            }
            (ctx.clock() - t0) as f64 / n as f64
        });
        assert!(
            (38.0..55.0).contains(&avg),
            "put average {avg} cy (paper: ~45)"
        );
    }

    #[test]
    fn puts_complete_at_sync() {
        let mut s = sc();
        let dst = s.alloc(64, 8);
        s.on(0, |ctx| {
            ctx.put(GlobalPtr::new(1, dst), 42);
            ctx.sync();
        });
        assert_eq!(s.machine().peek8(1, dst), 42);
    }

    #[test]
    fn local_get_and_put_work() {
        let mut s = sc();
        let a = s.alloc(8, 8);
        let b = s.alloc(8, 8);
        s.on(0, |ctx| {
            ctx.put(GlobalPtr::new(0, a), 7);
            ctx.sync();
            ctx.get(b, GlobalPtr::new(0, a));
            ctx.sync();
            assert_eq!(ctx.machine().peek8(0, b), 7);
        });
    }
}
