//! Byte writes: the Section 4.5 semantic mismatch, and its repair.
//!
//! The Alpha 21064 has no byte store; a byte write compiles to a
//! read-modify-write of the containing word. On a multiprocessor this is
//! a race: two processors updating *different bytes of the same word*
//! can clobber each other, and the load-locked/store-conditional pair
//! that would normally fix it "was consumed by annex manipulation".
//!
//! * [`ScCtx::byte_write_naive`] is the broken compilation — remote
//!   read, modify, remote write — kept so the hazard is reproducible.
//! * [`ScCtx::byte_write`] is the paper's repair: ship the update to the
//!   owning processor through the AM-equivalent queue, where it applies
//!   atomically (one writer: the owner).

use crate::gptr::GlobalPtr;
use crate::op::ScOp;
use crate::runtime::{ScCtx, AM_BYTE_WRITE, AM_WRITE_U32};

impl ScCtx<'_> {
    /// Correct byte write: applied atomically at the owner via the
    /// AM-equivalent queue. Takes effect when the owner polls (at the
    /// latest, the next [`crate::SplitC::barrier`]).
    pub fn byte_write(&mut self, gp: GlobalPtr, value: u8) {
        self.rec(ScOp::ByteWrite { dst: gp, value });
        if gp.pe() as usize == self.pe {
            // The owner can update its own byte without a race.
            let word_off = gp.addr() & !7;
            let shift = (gp.addr() & 7) * 8;
            let w = self.m.ld8(self.pe, word_off);
            let w = (w & !(0xFFu64 << shift)) | ((value as u64) << shift);
            self.m.st8(self.pe, word_off, w);
            return;
        }
        self.am_deposit(
            gp.pe() as usize,
            AM_BYTE_WRITE,
            [gp.addr(), value as u64, 0, 0],
        );
    }

    /// The broken compilation of a remote byte write: blocking read of
    /// the containing word, byte insert, blocking write back. Two nodes
    /// doing this to different bytes of one word can lose an update.
    pub fn byte_write_naive(&mut self, gp: GlobalPtr, value: u8) {
        let word = GlobalPtr::new(gp.pe(), gp.addr() & !7);
        let shift = (gp.addr() & 7) * 8;
        let w = self.read_u64(word);
        let w = (w & !(0xFFu64 << shift)) | ((value as u64) << shift);
        self.write_u64(word, w);
    }

    /// Blocking byte read (uncached word read + extract).
    pub fn byte_read(&mut self, gp: GlobalPtr) -> u8 {
        let word = GlobalPtr::new(gp.pe(), gp.addr() & !7);
        let shift = (gp.addr() & 7) * 8;
        (self.read_u64(word) >> shift) as u8
    }

    /// Correct 32-bit write: applied atomically at the owner via the
    /// AM-equivalent queue (like [`ScCtx::byte_write`], because the
    /// Alpha has no sub-64-bit stores).
    ///
    /// # Panics
    ///
    /// Panics if the address is not 4-byte aligned.
    pub fn write_u32(&mut self, gp: GlobalPtr, value: u32) {
        self.rec(ScOp::WriteU32 { dst: gp, value });
        assert_eq!(gp.addr() % 4, 0, "u32 writes must be 4-byte aligned");
        if gp.pe() as usize == self.pe {
            let word_off = gp.addr() & !7;
            let shift = (gp.addr() & 7) * 8;
            let w = self.m.ld8(self.pe, word_off);
            let w = (w & !(0xFFFF_FFFFu64 << shift)) | ((value as u64) << shift);
            self.m.st8(self.pe, word_off, w);
            return;
        }
        self.am_deposit(
            gp.pe() as usize,
            AM_WRITE_U32,
            [gp.addr(), value as u64, 0, 0],
        );
    }

    /// Blocking 32-bit read (uncached word read + extract).
    ///
    /// # Panics
    ///
    /// Panics if the address is not 4-byte aligned.
    pub fn read_u32(&mut self, gp: GlobalPtr) -> u32 {
        assert_eq!(gp.addr() % 4, 0, "u32 reads must be 4-byte aligned");
        let word = GlobalPtr::new(gp.pe(), gp.addr() & !7);
        let shift = (gp.addr() & 7) * 8;
        (self.read_u64(word) >> shift) as u32
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::SplitC;
    use crate::GlobalPtr;
    use t3d_machine::MachineConfig;

    fn sc() -> SplitC {
        SplitC::new(MachineConfig::t3d(4))
    }

    #[test]
    fn owner_byte_write_is_direct() {
        let mut s = sc();
        let buf = s.alloc(8, 8);
        s.on(0, |ctx| {
            ctx.byte_write(GlobalPtr::new(0, buf + 3), 0xAB);
            assert_eq!(ctx.byte_read(GlobalPtr::new(0, buf + 3)), 0xAB);
        });
    }

    #[test]
    fn naive_concurrent_byte_writes_clobber() {
        // Section 4.5: PEs 1 and 2 update different bytes of PE 0's word
        // "at the same time" (same phase, interleaved read-modify-write);
        // one update is lost.
        let mut s = sc();
        let buf = s.alloc(8, 8);
        // Interleave: both read the original word, then both write.
        let w1 = s.on(1, |ctx| {
            let w = ctx.read_u64(GlobalPtr::new(0, buf));
            (w & !0xFF) | 0x11
        });
        let w2 = s.on(2, |ctx| {
            let w = ctx.read_u64(GlobalPtr::new(0, buf));
            (w & !0xFF00) | 0x2200
        });
        s.on(1, |ctx| ctx.write_u64(GlobalPtr::new(0, buf), w1));
        s.on(2, |ctx| ctx.write_u64(GlobalPtr::new(0, buf), w2));
        s.barrier();
        let w = s.machine().peek8(0, buf);
        assert_ne!(
            w, 0x2211,
            "the interleaved read-modify-writes must NOT both survive"
        );
        assert_eq!(w, 0x2200, "PE 2's write clobbered PE 1's byte");
    }

    #[test]
    fn am_byte_writes_from_many_nodes_all_survive() {
        let mut s = sc();
        let buf = s.alloc(8, 8);
        s.run_phase(|ctx| {
            if ctx.pe() != 0 {
                let b = ctx.pe() as u64;
                ctx.byte_write(GlobalPtr::new(0, buf + b), 0x10 * b as u8);
            }
        });
        s.barrier();
        let w = s.machine().peek8(0, buf);
        assert_eq!(w & 0xFF, 0, "byte 0 untouched");
        assert_eq!((w >> 8) & 0xFF, 0x10);
        assert_eq!((w >> 16) & 0xFF, 0x20);
        assert_eq!(
            (w >> 24) & 0xFF,
            0x30,
            "all three concurrent byte writes survived"
        );
    }

    #[test]
    fn concurrent_u32_halves_both_survive() {
        let mut s = sc();
        let buf = s.alloc(8, 8);
        s.on(1, |ctx| ctx.write_u32(GlobalPtr::new(0, buf), 0x1111_2222));
        s.on(2, |ctx| {
            ctx.write_u32(GlobalPtr::new(0, buf + 4), 0x3333_4444)
        });
        s.barrier();
        assert_eq!(s.machine().peek8(0, buf), 0x3333_4444_1111_2222);
    }

    #[test]
    fn u32_roundtrip_and_alignment() {
        let mut s = sc();
        let buf = s.alloc(8, 8);
        s.on(0, |ctx| {
            ctx.write_u32(GlobalPtr::new(0, buf + 4), 77);
            assert_eq!(ctx.read_u32(GlobalPtr::new(0, buf + 4)), 77);
        });
        s.on(1, |ctx| ctx.write_u32(GlobalPtr::new(0, buf), 55));
        s.barrier();
        let got = s.on(2, |ctx| ctx.read_u32(GlobalPtr::new(0, buf)));
        assert_eq!(got, 55);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_u32_panics() {
        let mut s = sc();
        let buf = s.alloc(8, 8);
        s.on(0, |ctx| ctx.write_u32(GlobalPtr::new(1, buf + 2), 1));
    }

    #[test]
    fn byte_read_extracts_the_right_byte() {
        let mut s = sc();
        let buf = s.alloc(8, 8);
        s.machine().poke8(1, buf, 0x0807060504030201);
        s.on(0, |ctx| {
            for i in 0..8u64 {
                assert_eq!(ctx.byte_read(GlobalPtr::new(1, buf + i)), (i + 1) as u8);
            }
        });
    }
}
