//! Split-C runtime cost and policy configuration.
//!
//! The fixed per-operation overheads here are the *software* cycles the
//! paper attributes to the language implementation on top of the raw
//! shell mechanisms (address manipulation, the get table, completion
//! checks). They are calibrated so the composite Split-C costs land on
//! the published measurements: read ≈ 128 cy (850 ns), write ≈ 147 cy
//! (981 ns), put ≈ 45 cy (300 ns), get table management 10 cy, local
//! store of a completed get 3 cy.

use crate::annex::AnnexPolicy;
use t3dsan::SanitizeMode;

/// Runtime configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitcConfig {
    /// Annex management policy (Section 3.4).
    pub annex_policy: AnnexPolicy,
    /// Software overhead of a blocking read beyond annex + uncached load
    /// (PE extraction, address insertion, result placement).
    pub read_overhead_cy: u64,
    /// Software overhead of a blocking write beyond annex + store +
    /// fence + acknowledgement wait.
    pub write_overhead_cy: u64,
    /// Cost of the get-table update and lookup ("10 cycles",
    /// Section 5.4).
    pub get_table_cy: u64,
    /// Cost of the local store that completes a get ("3 cycles").
    pub get_local_store_cy: u64,
    /// The "few additional checks" of a put beyond annex + store.
    pub put_check_cy: u64,
    /// Per-store software overhead of the signaling store (same checks
    /// as put).
    pub store_check_cy: u64,
    /// Completion-check overhead of `storeSync` / `allStoreSync`.
    pub store_sync_check_cy: u64,
    /// Bulk read switches from the prefetch queue to the BLT at this
    /// size ("about 16 KB", Section 6.3).
    pub bulk_blt_read_min: u64,
    /// Non-blocking bulk get switches from the prefetch queue to the BLT
    /// at this size ("7,900 bytes").
    pub bulk_get_blt_min: u64,
    /// Per-iteration software overhead of the bulk-transfer loops.
    pub bulk_loop_cy: u64,
    /// Software overhead of depositing an Active-Message-equivalent
    /// five-word message (total deposit ≈ 2.9 µs, Section 7.4).
    pub am_deposit_overhead_cy: u64,
    /// Software overhead of dispatching one received AM-equivalent
    /// message (total ≈ 1.5 µs).
    pub am_dispatch_overhead_cy: u64,
    /// Number of slots in each node's AM-equivalent queue.
    pub am_slots: u64,
    /// Hazard-sanitizer behaviour. Left at `Off`, the `T3D_SAN`
    /// environment variable chooses the mode at runtime construction;
    /// an explicit setting here always wins (see the `t3dsan` crate).
    pub sanitize: SanitizeMode,
}

impl SplitcConfig {
    /// The calibrated T3D implementation the paper arrives at.
    pub fn t3d() -> Self {
        SplitcConfig {
            annex_policy: AnnexPolicy::SingleRegister,
            read_overhead_cy: 14,
            write_overhead_cy: 5,
            get_table_cy: 10,
            get_local_store_cy: 3,
            put_check_cy: 19,
            store_check_cy: 19,
            store_sync_check_cy: 10,
            bulk_blt_read_min: 16 * 1024,
            bulk_get_blt_min: 7_900,
            bulk_loop_cy: 2,
            am_deposit_overhead_cy: 120,
            am_dispatch_overhead_cy: 90,
            am_slots: 256,
            sanitize: SanitizeMode::Off,
        }
    }
}

impl Default for SplitcConfig {
    fn default() -> Self {
        SplitcConfig::t3d()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_software_costs() {
        let c = SplitcConfig::t3d();
        assert_eq!(c.get_table_cy, 10);
        assert_eq!(c.get_local_store_cy, 3);
        assert_eq!(c.bulk_blt_read_min, 16 * 1024);
        assert_eq!(c.bulk_get_blt_min, 7_900);
        assert_eq!(c.annex_policy, AnnexPolicy::SingleRegister);
    }
}
