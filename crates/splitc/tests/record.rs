//! The op recorder turns executions back into per-PE `ScOp` streams.

use splitc::{GlobalLock, GlobalPtr, RecEvent, ScOp, SplitC};
use t3d_machine::MachineConfig;

fn machine() -> (SplitC, u64) {
    let mut sc = SplitC::new(MachineConfig::t3d(4));
    let base = sc.alloc(512, 8);
    (sc, base)
}

#[test]
fn recording_is_off_by_default() {
    let (mut sc, base) = machine();
    sc.run_phase(|ctx| {
        let gp = GlobalPtr::new((ctx.pe() as u32 + 1) % 4, base);
        ctx.write_u64(gp, 7);
    });
    sc.barrier();
    assert!(sc.take_op_log().iter().all(Vec::is_empty));
}

#[test]
fn leaf_ops_round_trip_through_the_log() {
    let (mut sc, base) = machine();
    sc.record_ops(true);
    sc.run_phase(|ctx| {
        let right = (ctx.pe() as u32 + 1) % 4;
        let gp = GlobalPtr::new(right, base);
        ctx.write_u64(gp, ctx.pe() as u64);
        ctx.get(base + 64, gp);
        ctx.sync();
        ctx.put(gp, 9);
        ctx.sync();
    });
    sc.barrier();
    let log = sc.take_op_log();
    assert_eq!(log.len(), 4);
    for (pe, events) in log.iter().enumerate() {
        let right = (pe as u32 + 1) % 4;
        let gp = GlobalPtr::new(right, base);
        assert_eq!(
            events,
            &vec![
                RecEvent::Op(ScOp::WriteU64 {
                    dst: gp,
                    value: pe as u64
                }),
                RecEvent::Op(ScOp::Get {
                    local_off: base + 64,
                    src: gp
                }),
                RecEvent::Op(ScOp::Sync),
                RecEvent::Op(ScOp::Put { dst: gp, value: 9 }),
                RecEvent::Op(ScOp::Sync),
                RecEvent::PhaseEnd,
                RecEvent::Barrier,
            ],
        );
    }
    // take_op_log drains: a second take is empty.
    assert!(sc.take_op_log().iter().all(Vec::is_empty));
}

#[test]
fn collectives_mark_every_node_uniformly() {
    let (mut sc, base) = machine();
    sc.record_ops(true);
    sc.run_phase(|ctx| {
        let right = (ctx.pe() as u32 + 1) % 4;
        ctx.store_u64(GlobalPtr::new(right, base), 1);
    });
    sc.all_store_sync();
    let log = sc.take_op_log();
    for events in &log {
        // The phase end is marked, then all_store_sync logs its own
        // marker, and its internal global barrier adds one more.
        assert_eq!(
            &events[1..],
            &[
                RecEvent::PhaseEnd,
                RecEvent::AllStoreSync,
                RecEvent::Barrier
            ],
        );
        assert!(matches!(events[0], RecEvent::Op(ScOp::StoreU64 { .. })));
    }
}

#[test]
fn composites_record_their_leaves() {
    let (mut sc, base) = machine();
    sc.record_ops(true);
    let word = GlobalPtr::new(1, base);
    let dst = GlobalPtr::new(2, base + 64);
    sc.on(0, |ctx| {
        ctx.exec_op(&ScOp::LockGuardedWrite {
            word,
            dst,
            value: 5,
        });
    });
    let log = sc.take_op_log();
    assert_eq!(
        log[0],
        vec![
            RecEvent::Op(ScOp::LockTryAcquire { word }),
            RecEvent::Op(ScOp::WriteU64 { dst, value: 5 }),
            RecEvent::Op(ScOp::LockRelease { word }),
        ],
    );
}

#[test]
fn wrappers_record_a_superset_with_identical_footprints() {
    let (mut sc, base) = machine();
    sc.record_ops(true);
    let src = GlobalPtr::new(1, base);
    sc.on(0, |ctx| {
        // byte_read delegates to read_u64 on the containing word: the
        // log records the delegate, whose read span covers the byte.
        ctx.byte_read(GlobalPtr::new(1, base + 3));
        // Remote byte_write travels the AM queue but is recorded at the
        // issuing wrapper, not as an AmAdd.
        ctx.byte_write(GlobalPtr::new(1, base + 8), 0xAB);
        ctx.exec_op(&ScOp::AmAdd {
            target_pe: 1,
            off: base + 16,
            delta: 2,
        });
        // An 8-byte bulk_read delegates to read_u64: both recorded.
        ctx.bulk_read(base + 64, src, 8);
    });
    let log = sc.take_op_log();
    assert_eq!(
        log[0],
        vec![
            RecEvent::Op(ScOp::ReadU64 { src }),
            RecEvent::Op(ScOp::ByteWrite {
                dst: GlobalPtr::new(1, base + 8),
                value: 0xAB
            }),
            RecEvent::Op(ScOp::AmAdd {
                target_pe: 1,
                off: base + 16,
                delta: 2
            }),
            RecEvent::Op(ScOp::BulkRead {
                local_off: base + 64,
                src,
                bytes: 8
            }),
            RecEvent::Op(ScOp::ReadU64 { src }),
        ],
    );
}

#[test]
fn lock_probes_are_not_recorded() {
    let (mut sc, base) = machine();
    sc.record_ops(true);
    let lock = GlobalLock::new(GlobalPtr::new(1, base));
    sc.on(0, |ctx| {
        assert!(!ctx.lock_is_held(lock));
        assert!(ctx.lock_try_acquire(lock));
        ctx.lock_release(lock);
    });
    let log = sc.take_op_log();
    assert_eq!(log[0].len(), 2);
}
