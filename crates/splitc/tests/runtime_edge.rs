//! Edge-case tests for the Split-C runtime: mixed split-phase traffic,
//! policy switching, misuse detection.

use splitc::{AnnexPolicy, GlobalPtr, SplitC, SplitcConfig, SpreadArray};
use t3d_machine::MachineConfig;

fn sc(p: u32) -> SplitC {
    SplitC::new(MachineConfig::t3d(p))
}

#[test]
fn mixed_gets_puts_and_bulk_complete_at_one_sync() {
    let mut s = sc(4);
    let src = s.alloc(4096, 8);
    let dst = s.alloc(4096, 8);
    for i in 0..64u64 {
        s.machine().poke8(1, src + i * 8, 100 + i);
        s.machine().poke8(2, src + i * 8, 200 + i);
    }
    s.on(0, |ctx| {
        // Interleave everything before a single sync.
        for i in 0..8u64 {
            ctx.get(dst + i * 8, GlobalPtr::new(1, src + i * 8));
        }
        ctx.put(GlobalPtr::new(3, dst), 777);
        ctx.bulk_get(dst + 64, GlobalPtr::new(2, src), 256);
        for i in 8..16u64 {
            ctx.get(dst + i * 8 + 512, GlobalPtr::new(1, src + i * 8));
        }
        ctx.sync();
    });
    s.machine().memory_barrier(0);
    for i in 0..8u64 {
        assert_eq!(s.machine().peek8(0, dst + i * 8), 100 + i, "first gets");
    }
    for i in 0..32u64 {
        assert_eq!(s.machine().peek8(0, dst + 64 + i * 8), 200 + i, "bulk get");
    }
    for i in 8..16u64 {
        assert_eq!(
            s.machine().peek8(0, dst + i * 8 + 512),
            100 + i,
            "later gets"
        );
    }
    assert_eq!(s.machine().peek8(3, dst), 777, "put landed");
}

#[test]
fn more_gets_than_queue_depth_in_one_burst() {
    let mut s = sc(2);
    let n = 100u64;
    let src = s.alloc(n * 8, 8);
    let dst = s.alloc(n * 8, 8);
    for i in 0..n {
        s.machine().poke8(1, src + i * 8, i * 3);
    }
    s.on(0, |ctx| {
        for i in 0..n {
            ctx.get(dst + i * 8, GlobalPtr::new(1, src + i * 8));
        }
        ctx.sync();
        assert_eq!(ctx.gets_outstanding(), 0);
    });
    s.machine().memory_barrier(0);
    for i in 0..n {
        assert_eq!(s.machine().peek8(0, dst + i * 8), i * 3, "get {i}");
    }
}

#[test]
fn sync_with_nothing_outstanding_is_cheap_and_safe() {
    let mut s = sc(2);
    s.on(0, |ctx| {
        let t0 = ctx.clock();
        ctx.sync();
        assert!(ctx.clock() - t0 < 30, "empty sync is a fence + poll");
    });
}

#[test]
fn cached_policy_pays_once_per_target_run() {
    let mut cfg = SplitcConfig::t3d();
    cfg.annex_policy = AnnexPolicy::SingleRegisterCached;
    let mut s = SplitC::with_config(MachineConfig::t3d(4), cfg);
    let buf = s.alloc(512, 8);
    let (updates, skips) = s.on(0, |ctx| {
        for i in 0..8u64 {
            let _ = ctx.read_u64(GlobalPtr::new(1, buf + i * 8));
        }
        for i in 0..8u64 {
            let _ = ctx.read_u64(GlobalPtr::new(2, buf + i * 8));
        }
        (ctx.rt().annex.updates(), ctx.rt().annex.skips())
    });
    assert_eq!(updates, 2, "one update per target run");
    assert_eq!(skips, 14);
}

#[test]
fn spread_array_roundtrip_through_runtime() {
    let mut s = sc(4);
    let n = 64u64;
    let a = SpreadArray::new(s.alloc(n * 8 / 4 + 8, 8), 8, n, 4);
    s.on(0, |ctx| {
        for i in 0..n {
            ctx.write_u64(a.gptr(i), i * i);
        }
    });
    s.barrier();
    s.run_phase(|ctx| {
        for i in a.owned_by(ctx.pe() as u32) {
            let pe = ctx.pe();
            assert_eq!(ctx.machine().ld8(pe, a.gptr(i).addr()), i * i);
        }
    });
}

#[test]
fn store_bytes_pending_tracks_arrivals() {
    let mut s = sc(2);
    let buf = s.alloc(64, 8);
    s.on(0, |ctx| {
        for i in 0..4u64 {
            ctx.store_u64(GlobalPtr::new(1, buf + i * 8), i);
        }
        let pe = ctx.pe();
        ctx.machine().memory_barrier(pe);
    });
    s.on(1, |ctx| {
        // Advance past all arrivals, then observe.
        ctx.advance(100_000);
        assert_eq!(ctx.store_bytes_pending(), 32);
        ctx.store_sync(32);
        assert_eq!(ctx.store_bytes_pending(), 0);
    });
}

#[test]
#[should_panic(expected = "not registered")]
fn unregistered_handler_panics_at_dispatch() {
    let mut s = sc(2);
    s.on(0, |ctx| ctx.am_deposit(1, 99, [0, 0, 0, 0]));
    s.on(1, |ctx| {
        ctx.am_poll();
    });
}

#[test]
fn stats_count_per_operation_kind() {
    let mut s = sc(2);
    let buf = s.alloc(256, 8);
    s.on(0, |ctx| {
        let _ = ctx.read_u64(GlobalPtr::new(1, buf));
        ctx.write_u64(GlobalPtr::new(1, buf), 1);
        ctx.get(buf + 8, GlobalPtr::new(1, buf));
        ctx.put(GlobalPtr::new(1, buf + 16), 2);
        ctx.store_u64(GlobalPtr::new(1, buf + 24), 3);
        ctx.bulk_read(buf + 32, GlobalPtr::new(1, buf), 64);
        ctx.sync();
    });
    let st = s.stats(0);
    assert_eq!(st.reads, 1);
    assert_eq!(st.writes, 1);
    assert_eq!(st.gets, 1);
    assert_eq!(st.puts, 1);
    assert_eq!(st.stores, 1);
    assert_eq!(st.bulk_ops, 1);
}

#[test]
fn collectives_compose_with_phases() {
    // Reduce a per-node value computed in a phase, then use the result
    // in the next phase.
    let mut s = sc(8);
    let val = s.alloc(8, 8);
    let scratch = s.alloc(8, 8);
    s.run_phase(|ctx| {
        let pe = ctx.pe();
        ctx.machine().st8(pe, val, (pe as u64 + 1) * 7);
        ctx.machine().memory_barrier(pe);
    });
    let sum = s.all_reduce_u64(val, scratch, |a, b| a + b);
    assert_eq!(sum, (1..=8u64).map(|i| i * 7).sum::<u64>());
    s.run_phase(|ctx| {
        let pe = ctx.pe();
        assert_eq!(
            ctx.machine().ld8(pe, val),
            sum,
            "every node holds the total"
        );
    });
}
