//! Audit of the runtime's operation counters: a program that issues a
//! known number of primitives must be counted exactly — every Split-C
//! primitive family (rw / getput / store / bulk / amq / lock) bumps its
//! counter, and nothing is double-counted.

use splitc::{GlobalLock, GlobalPtr, SplitC};
use t3d_machine::MachineConfig;

#[test]
fn every_primitive_family_is_counted_exactly() {
    let mut sc = SplitC::new(MachineConfig::t3d(4));
    let lock_off = sc.alloc(8, 8);
    let cell = sc.alloc(256, 8);
    let scratch = sc.alloc(256, 8);
    let lock = GlobalLock::new(GlobalPtr::new(2, lock_off));
    for i in 0..8u64 {
        sc.machine().poke8(1, cell + i * 8, 10 + i);
    }

    sc.on(0, |ctx| {
        // rw: 3 reads (2 uncached + 1 cached), 2 writes.
        let a = ctx.read_u64(GlobalPtr::new(1, cell));
        let b = ctx.read_u64(GlobalPtr::new(1, cell + 8));
        let c = ctx.read_u64_cached(GlobalPtr::new(1, cell + 16));
        ctx.write_u64(GlobalPtr::new(1, scratch), a + b);
        ctx.write_u64(GlobalPtr::new(3, scratch), c);
        // getput: 3 gets, 2 puts, one sync (sync is completion, not an op).
        for i in 0..3u64 {
            ctx.get(scratch + 64 + i * 8, GlobalPtr::new(1, cell + i * 8));
        }
        ctx.put(GlobalPtr::new(3, scratch + 8), 7);
        ctx.put(GlobalPtr::new(3, scratch + 16), 8);
        ctx.sync();
        // store: 2 signaling stores.
        ctx.store_u64(GlobalPtr::new(1, scratch + 32), 1);
        ctx.store_u64(GlobalPtr::new(1, scratch + 40), 2);
        // bulk: 1 bulk_read + 1 bulk_put.
        ctx.bulk_read(scratch + 96, GlobalPtr::new(1, cell), 32);
        ctx.bulk_put(GlobalPtr::new(3, scratch + 64), scratch + 96, 32);
        ctx.sync();
        // amq: 1 deposit.
        ctx.am_deposit(1, splitc::runtime::AM_ADD_U64, [scratch + 48, 5, 0, 0]);
        // lock: acquire + release = 2 lock ops.
        assert!(ctx.lock_try_acquire(lock));
        ctx.lock_release(lock);
    });

    let s = sc.stats(0);
    assert_eq!(s.reads, 3, "read_u64/read_u64_cached");
    assert_eq!(s.writes, 2, "write_u64");
    assert_eq!(s.gets, 3, "get");
    assert_eq!(s.puts, 2, "put");
    assert_eq!(s.stores, 2, "store_u64");
    assert_eq!(s.bulk_ops, 2, "bulk_read + bulk_put");
    assert_eq!(s.am_deposits, 1, "am_deposit");
    assert_eq!(s.lock_ops, 2, "lock acquire + release");
    assert_eq!(s.total(), 17, "no primitive escapes the audit");

    // Nothing ran on the other nodes, so nothing may be counted there.
    for pe in 1..4 {
        assert_eq!(sc.stats(pe).total(), 0, "PE {pe} issued nothing");
    }
}
