//! A tiny JSON value type, renderer and parser.
//!
//! The repo is dependency-free by policy (the container is offline), so
//! the exporters hand-roll JSON. The subset implemented is exactly what
//! the perf documents need: objects, arrays, strings, integers, floats,
//! booleans and null, with deterministic rendering (object keys are
//! emitted in insertion order by the builders, which always insert in a
//! fixed order).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (rendered without a decimal point).
    Int(i64),
    /// A float (rendered with enough precision to round-trip).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keys are kept sorted (BTreeMap) so rendering is
    /// deterministic regardless of insertion order.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Borrow as an object map, if this is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array, if this is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As an integer: `Int` directly, or a `Float` with integral value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// As a float (`Int` widens losslessly enough for perf data).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders pretty-printed JSON with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // `{:?}` round-trips f64; ensure a decimal marker so
                    // the value reads back as a float.
                    let s = format!("{f:?}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !map.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Returns a human-readable error with a byte
/// offset on malformed input.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| format!("bad number at byte {start}"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| format!("bad number at byte {start}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| format!("unterminated string at byte {}", self.pos))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self
                        .peek()
                        .ok_or_else(|| format!("bad escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(format!("bad \\u escape at byte {}", self.pos));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs don't occur in perf docs;
                            // map lone surrogates to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(format!("bad utf-8 at byte {start}"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| format!("bad utf-8 at byte {start}"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn utf8_len(b: u8) -> usize {
    if b < 0x80 {
        1
    } else if b & 0xe0 == 0xc0 {
        2
    } else if b & 0xf0 == 0xe0 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_document() {
        let v = Value::obj(vec![
            ("name", Value::Str("remote.read".into())),
            ("cycles", Value::Int(912)),
            ("ratio", Value::Float(0.25)),
            ("ok", Value::Bool(true)),
            (
                "tags",
                Value::Arr(vec![Value::Str("a \"quoted\"\n".into()), Value::Null]),
            ),
        ]);
        let compact = v.render();
        let pretty = v.render_pretty();
        assert_eq!(parse(&compact).unwrap(), v);
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn rendering_is_deterministic() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), Value::Int(2));
        m.insert("a".to_string(), Value::Int(1));
        assert_eq!(Value::Obj(m).render(), "{\"a\":1,\"b\":2}");
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Value::Int(42).render(), "42");
        assert_eq!(Value::Float(42.0).render(), "42.0");
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("42.0").unwrap(), Value::Float(42.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
    }

    #[test]
    fn unicode_survives() {
        let v = Value::Str("μs per edge → ok".into());
        assert_eq!(parse(&v.render()).unwrap(), v);
        assert_eq!(
            parse("\"\\u00b5s\"").unwrap(),
            Value::Str("\u{00b5}s".into())
        );
    }
}
