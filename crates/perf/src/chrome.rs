//! Chrome-trace (`chrome://tracing` / Perfetto) timeline export.
//!
//! Virtual cycles map 1:1 onto the trace's microsecond timestamps: one
//! simulated cycle renders as one "µs", which keeps the timeline's
//! relative geometry exact without inventing a wall-clock mapping.

use crate::json::Value;

/// One complete (`"ph":"X"`) span on the timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Event name shown on the slice.
    pub name: String,
    /// Category (Chrome lets the viewer filter on it); e.g. `"event"`
    /// for tracer events, `"phase"` for program phases.
    pub cat: String,
    /// Track id: the PE number for per-PE rows, or a large sentinel for
    /// machine-wide rows (phases, barriers).
    pub tid: u64,
    /// Start time in virtual cycles.
    pub start: u64,
    /// Duration in virtual cycles (instant events render as 1 so they
    /// stay visible).
    pub dur: u64,
}

/// Builds a Chrome-trace JSON document from spans.
pub fn chrome_trace(spans: &[Span]) -> Value {
    let events = spans
        .iter()
        .map(|s| {
            Value::obj(vec![
                ("name", Value::Str(s.name.clone())),
                ("cat", Value::Str(s.cat.clone())),
                ("ph", Value::Str("X".to_string())),
                ("ts", Value::Int(s.start as i64)),
                ("dur", Value::Int(s.dur.max(1) as i64)),
                ("pid", Value::Int(0)),
                ("tid", Value::Int(s.tid as i64)),
            ])
        })
        .collect();
    Value::obj(vec![
        ("traceEvents", Value::Arr(events)),
        ("displayTimeUnit", Value::Str("ms".to_string())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_complete_events() {
        let doc = chrome_trace(&[
            Span {
                name: "ld.remote".into(),
                cat: "event".into(),
                tid: 3,
                start: 120,
                dur: 0,
            },
            Span {
                name: "push".into(),
                cat: "phase".into(),
                tid: 10_000,
                start: 0,
                dur: 500,
            },
        ]);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
        // zero-duration events are widened to stay visible
        assert_eq!(events[0].get("dur").unwrap().as_i64(), Some(1));
        assert_eq!(events[1].get("tid").unwrap().as_i64(), Some(10_000));
        // the document must parse back (it is written to disk verbatim)
        assert!(crate::json::parse(&doc.render_pretty()).is_ok());
    }
}
